package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"

	"baryon/internal/config"
	"baryon/internal/service"
)

func testDaemon(t *testing.T) (*service.Service, string) {
	t.Helper()
	cfg := config.Scaled()
	cfg.AccessesPerCore = 1000
	s, err := service.New(service.Options{BaseConfig: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(s, context.Background()))
	t.Cleanup(srv.Close)
	return s, srv.URL
}

var reportRe = regexp.MustCompile(`requests=(\d+) errors=(\d+) hits=(\d+) collapsed=(\d+) misses=(\d+) hitRate=([\d.]+)`)

// TestLoadgenAgainstService runs the harness against an in-process daemon
// and checks the report: no errors, the repeated jobs were served without
// re-simulating, and byte verification passes.
func TestLoadgenAgainstService(t *testing.T) {
	s, url := testDaemon(t)
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", url, "-clients", "3", "-requests", "24", "-seeds", "2",
		"-accesses", "1000", "-verify-bytes", "-min-hit-rate", "0.5",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	m := reportRe.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no report line in output: %s", out.String())
	}
	requests, _ := strconv.Atoi(m[1])
	errors, _ := strconv.Atoi(m[2])
	misses, _ := strconv.Atoi(m[3+2])
	if requests != 24 || errors != 0 {
		t.Fatalf("report %q: want 24 requests, 0 errors", m[0])
	}
	// 24 requests over a 2-job mix cost at most 2 simulations; everything
	// else must be a hit or collapse.
	if sims := s.Simulations(); sims > 2 {
		t.Fatalf("%d simulations for a 2-job mix", sims)
	}
	if misses > 2 {
		t.Fatalf("%d misses for a 2-job mix", misses)
	}
	if !bytes.Contains(out.Bytes(), []byte("latency_us:")) {
		t.Fatalf("no latency summary in output: %s", out.String())
	}
}

// TestLoadgenHitRateGate checks -min-hit-rate fails a cold single request
// (hit rate 0) with a diagnostic.
func TestLoadgenHitRateGate(t *testing.T) {
	_, url := testDaemon(t)
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", url, "-clients", "1", "-requests", "1", "-seeds", "1",
		"-accesses", "1000", "-min-hit-rate", "0.5",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !bytes.Contains(errb.Bytes(), []byte("hit rate")) {
		t.Fatalf("no hit-rate diagnostic: %s", errb.String())
	}
}

// TestLoadgenBadFlags pins the usage-error paths.
func TestLoadgenBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-clients", "2"}, &out, &errb); code != 2 {
		t.Fatalf("missing -addr: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-addr", "http://x", "-requests", "0"}, &out, &errb); code != 2 {
		t.Fatalf("zero requests: exit %d, want 2", code)
	}
}
