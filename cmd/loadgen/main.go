// Command loadgen load-tests a running baryonsimd: concurrent clients drive
// a seeded mix of jobs through the synchronous run endpoint and the harness
// reports how the service fared — cache hit rate, singleflight collapses,
// overload rejections and retries, and the client-observed latency
// distribution.
//
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -clients 8 -requests 200
//
// With -verify-bytes every response is checked against the first response
// seen for the same spec hash, proving cache- and collapse-served bundles
// are byte-identical to simulated ones. -min-hit-rate turns the harness
// into a gate: exit non-zero unless enough requests were served without a
// simulation.
//
// With -overload R the harness switches to an open-loop arrival process:
// requests launch at R per second regardless of completions, the shape that
// actually drives a server past capacity (a closed loop self-throttles).
// The client retries 429/503 rejections with capped exponential backoff and
// full jitter, honoring Retry-After; -max-reject-rate then gates on the
// fraction of requests that still failed after retries — with admission
// control and a deterministic cache behind it, an overloaded service should
// converge to zero.
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"baryon/internal/service"
	"baryon/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags in, report to
// stdout, diagnostics to stderr, exit code out.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "base URL of the daemon, e.g. http://127.0.0.1:8080 (required)")
	clients := fs.Int("clients", 4, "concurrent client goroutines (closed loop; ignored with -overload)")
	requests := fs.Int("requests", 100, "total requests across all clients")
	designs := fs.String("designs", "Baryon", "comma-separated design mix")
	workloads := fs.String("workloads", "505.mcf_r", "comma-separated workload mix")
	seeds := fs.Int("seeds", 4, "distinct seeds in the job mix (mix size = designs x workloads x seeds)")
	accesses := fs.Int("accesses", 2000, "accesses per core for every job (0 = daemon default)")
	mode := fs.String("mode", "", "job mode: cache|flat (empty = daemon default)")
	seed := fs.Uint64("seed", 1, "RNG seed for the request sequence")
	timeout := fs.Duration("timeout", 0, "overall wall-clock budget (0 = none)")
	verifyBytes := fs.Bool("verify-bytes", false, "assert responses with equal spec hashes are byte-identical")
	minHitRate := fs.Float64("min-hit-rate", -1, "fail unless at least this fraction of requests was served without simulating (-1 = off)")
	overload := fs.Float64("overload", 0, "open-loop arrival rate in requests/sec; launches requests on a clock instead of waiting for completions (0 = closed loop)")
	maxRejectRate := fs.Float64("max-reject-rate", -1, "fail if more than this fraction of requests still failed after retries (-1 = off: any error fails)")
	retries := fs.Int("retries", 5, "max attempts per request including the first; rejections back off with jitter honoring Retry-After (1 = no retries)")
	dumpDir := fs.String("dump-dir", "", "write the first response body per spec hash into this directory as <hash>.json (byte-identity across runs)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" {
		fmt.Fprintln(stderr, "loadgen: -addr is required")
		return 2
	}
	if *clients < 1 || *requests < 1 || *seeds < 1 {
		fmt.Fprintln(stderr, "loadgen: -clients, -requests and -seeds must be >= 1")
		return 2
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *dumpDir != "" {
		if err := os.MkdirAll(*dumpDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 2
		}
	}

	// The job mix is the cartesian product of designs, workloads and seeds;
	// the request sequence samples it with a seeded RNG, so a given flag set
	// always replays the same load.
	var mix []service.Job
	for _, d := range strings.Split(*designs, ",") {
		for _, w := range strings.Split(*workloads, ",") {
			for s := 0; s < *seeds; s++ {
				mix = append(mix, service.Job{
					Design:   strings.TrimSpace(d),
					Workload: strings.TrimSpace(w),
					Seed:     uint64(s + 1),
					Mode:     *mode,
					Accesses: *accesses,
				})
			}
		}
	}
	rng := rand.New(rand.NewSource(int64(*seed)))
	sequence := make([]service.Job, *requests)
	for i := range sequence {
		sequence[i] = mix[rng.Intn(len(mix))]
	}

	client := &service.Client{
		Base:  strings.TrimRight(*addr, "/"),
		Retry: service.RetryPolicy{MaxAttempts: *retries, Disable: *retries <= 1},
	}
	var (
		tallyMu sync.Mutex
		hits    int
		collaps int
		misses  int
		errors  int
		hist    = sim.NewStats().Histogram("loadgen.lat.us")
		// firstBundle maps spec hash -> digest of the first response body,
		// the reference every later same-hash response must match.
		firstBundle sync.Map
		dumped      sync.Map
		mismatches  []string
	)
	oneRequest := func(job service.Job) {
		start := time.Now()
		bundle, status, hash, err := client.RunSync(ctx, job)
		lat := uint64(time.Since(start).Microseconds())
		tallyMu.Lock()
		hist.Observe(lat)
		if err != nil {
			errors++
			// stderr may be a plain buffer in tests; keep writes under the
			// tally lock so concurrent requests don't race on it.
			fmt.Fprintf(stderr, "loadgen: %s/%s seed %d: %v\n", job.Design, job.Workload, job.Seed, err)
			tallyMu.Unlock()
			return
		}
		switch status {
		case "hit":
			hits++
		case "collapsed":
			collaps++
		default:
			misses++
		}
		tallyMu.Unlock()
		if *verifyBytes {
			sum := sha256.Sum256(bundle)
			if prev, loaded := firstBundle.LoadOrStore(hash, sum); loaded && prev != sum {
				tallyMu.Lock()
				mismatches = append(mismatches, hash)
				tallyMu.Unlock()
			}
		}
		if *dumpDir != "" {
			if _, loaded := dumped.LoadOrStore(hash, true); !loaded {
				name := strings.ReplaceAll(hash, ":", "-") + ".json"
				if werr := os.WriteFile(filepath.Join(*dumpDir, name), bundle, 0o644); werr != nil {
					tallyMu.Lock()
					fmt.Fprintf(stderr, "loadgen: dump %s: %v\n", name, werr)
					tallyMu.Unlock()
				}
			}
		}
	}

	var wg sync.WaitGroup
	sent := 0
	if *overload > 0 {
		// Open loop: arrivals on a clock, one goroutine per request. This
		// is deliberately not admission-controlled on the client side — the
		// point is to push the server past capacity and watch it shed load
		// with 429s instead of falling over.
		interval := time.Duration(float64(time.Second) / *overload)
	arrive:
		for _, job := range sequence {
			wg.Add(1)
			go func(j service.Job) {
				defer wg.Done()
				oneRequest(j)
			}(job)
			sent++
			if sent == len(sequence) {
				break
			}
			select {
			case <-time.After(interval):
			case <-ctx.Done():
				break arrive
			}
		}
	} else {
		next := make(chan service.Job)
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for job := range next {
					oneRequest(job)
				}
			}()
		}
	feed:
		for _, job := range sequence {
			select {
			case next <- job:
				sent++
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
	}
	wg.Wait()

	if sent < *requests {
		fmt.Fprintf(stderr, "loadgen: cancelled after %d/%d requests\n", sent, *requests)
	}
	hitRate := 0.0
	if sent > 0 {
		hitRate = float64(hits+collaps) / float64(sent)
	}
	// One machine-readable line: scripts/serve_smoke.sh and
	// scripts/chaos_smoke.sh grep these fields.
	fmt.Fprintf(stdout, "requests=%d errors=%d hits=%d collapsed=%d misses=%d hitRate=%.2f rejected=%d retries=%d\n",
		sent, errors, hits, collaps, misses, hitRate, client.Rejected(), client.Retries())
	fmt.Fprintf(stdout, "latency_us: %s\n", hist.Summary())

	fail := false
	if ctx.Err() != nil {
		fail = true
	}
	if *maxRejectRate >= 0 {
		rejectRate := 0.0
		if sent > 0 {
			rejectRate = float64(errors) / float64(sent)
		}
		if rejectRate > *maxRejectRate {
			fail = true
			fmt.Fprintf(stderr, "loadgen: FAIL: %.2f of requests failed after retries, above the allowed %.2f\n",
				rejectRate, *maxRejectRate)
		}
	} else if errors > 0 {
		fail = true
	}
	if len(mismatches) > 0 {
		fail = true
		fmt.Fprintf(stderr, "loadgen: FAIL: %d hash(es) returned non-identical bundle bytes: %s\n",
			len(mismatches), strings.Join(mismatches, ", "))
	}
	if *minHitRate >= 0 && hitRate < *minHitRate {
		fail = true
		fmt.Fprintf(stderr, "loadgen: FAIL: hit rate %.2f below required %.2f\n", hitRate, *minHitRate)
	}
	if fail {
		return 1
	}
	return 0
}
