package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"baryon/internal/report"
)

// writeSpec writes a JSON DesignSpec with a unique name to dir and returns
// its path. BlockBytes 0 passes load-time validation but panics in the
// factory — the poisoned-pair shape the resilient sweep must contain.
func writePoisonedSpec(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name+".json")
	spec := `{"name": "` + name + `", "kind": "baryon", "overrides": {"blockBytes": 0}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// parseCSV asserts the sweep output is valid CSV and returns the rows
// (header included). encoding/csv errors on ragged rows, so a truncated or
// corrupt flush fails here.
func parseCSV(t *testing.T, out []byte) [][]string {
	t.Helper()
	rows, err := csv.NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("sweep emitted invalid CSV: %v\noutput:\n%s", err, out)
	}
	if len(rows) == 0 {
		t.Fatal("sweep emitted no CSV at all")
	}
	return rows
}

func statusCounts(rows [][]string) map[string]int {
	counts := map[string]int{}
	for _, row := range rows[1:] {
		counts[row[4]]++ // status column
	}
	return counts
}

// TestSweepPanicIsolation runs a small sweep with one poisoned design: the
// healthy runs complete with ok rows, the poisoned run gets an error row,
// the per-pair error reaches stderr, and the exit status is non-zero.
func TestSweepPanicIsolation(t *testing.T) {
	spec := writePoisonedSpec(t, t.TempDir(), "Poisoned-SweepErr")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-workloads", "505.mcf_r",
		"-designs", "Simple",
		"-design-files", spec,
		"-accesses", "500",
	}, &out, &errb)
	if code == 0 {
		t.Fatalf("sweep with a poisoned design exited 0\nstderr: %s", errb.String())
	}
	rows := parseCSV(t, out.Bytes())
	counts := statusCounts(rows)
	if counts["ok"] != 1 || counts["error"] != 1 {
		t.Fatalf("status counts = %v, want 1 ok + 1 error\ncsv:\n%s", counts, out.String())
	}
	if !strings.Contains(errb.String(), "Poisoned-SweepErr") {
		t.Fatalf("stderr does not report the failed pair:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "1 ok, 1 failed, 0 cancelled") {
		t.Fatalf("stderr missing summary:\n%s", errb.String())
	}
}

// TestSweepGracefulCancellation starts a long sweep with a poisoned pair and
// a short -timeout: the command must still flush a valid partial CSV with
// the error row and cancelled rows, report the counts, and exit non-zero —
// the automated form of the mid-run SIGINT contract (main wires SIGINT to
// the same context this test cancels via the timeout).
func TestSweepGracefulCancellation(t *testing.T) {
	spec := writePoisonedSpec(t, t.TempDir(), "Poisoned-SweepCancel")
	var out, errb bytes.Buffer
	start := time.Now()
	code := run(context.Background(), []string{
		"-workloads", "505.mcf_r",
		"-designs", "Simple,UnisonCache",
		"-design-files", spec,
		"-accesses", "300000",
		"-seeds", "1,2,3",
		"-parallel", "3", // every pair of a seed starts, so the poisoned one panics before the timeout
		"-timeout", "2s",
	}, &out, &errb)
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("cancelled sweep still took %s", elapsed)
	}
	if code == 0 {
		t.Fatalf("cancelled sweep exited 0\nstderr: %s", errb.String())
	}
	rows := parseCSV(t, out.Bytes())
	counts := statusCounts(rows)
	if counts["error"] == 0 {
		t.Fatalf("poisoned pair not reported: %v\ncsv:\n%s", counts, out.String())
	}
	if counts["cancelled"] == 0 {
		t.Fatalf("no cancelled rows after timeout: %v\ncsv:\n%s", counts, out.String())
	}
	if !strings.Contains(errb.String(), "cancelled") {
		t.Fatalf("stderr missing cancellation summary:\n%s", errb.String())
	}
}

// TestSweepBundleDir checks -bundle-dir: every ok run writes one re-readable
// bundle, and a failed run writes none.
func TestSweepBundleDir(t *testing.T) {
	spec := writePoisonedSpec(t, t.TempDir(), "Poisoned-SweepBundle")
	dir := filepath.Join(t.TempDir(), "bundles")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-workloads", "505.mcf_r",
		"-designs", "Simple,Baryon",
		"-design-files", spec,
		"-accesses", "500",
		"-seeds", "1,2",
		"-bundle-dir", dir,
	}, &out, &errb)
	if code == 0 {
		t.Fatal("sweep with a poisoned design exited 0")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 2 healthy designs x 2 seeds; the poisoned pairs write nothing.
	if len(entries) != 4 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("expected 4 bundles, found %d: %v", len(entries), names)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".bundle.json") {
			t.Fatalf("unexpected file %q in bundle dir", e.Name())
		}
		b, err := report.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if b.Spec.Workload != "505.mcf_r" || b.Cycles == 0 {
			t.Fatalf("bundle %s incomplete: %+v", e.Name(), b.Spec)
		}
	}
}

// TestSweepCleanRun pins the healthy path: all rows ok, exit 0.
func TestSweepCleanRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-workloads", "505.mcf_r",
		"-designs", "Simple",
		"-accesses", "500",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("clean sweep exited %d\nstderr: %s", code, errb.String())
	}
	rows := parseCSV(t, out.Bytes())
	counts := statusCounts(rows)
	if counts["ok"] != 1 || len(counts) != 1 {
		t.Fatalf("status counts = %v, want only ok rows", counts)
	}
}
