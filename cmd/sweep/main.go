// Command sweep runs a cartesian sweep over workloads and designs and emits
// one CSV row per run — the raw material for custom plots and regression
// tracking.
//
//	go run ./cmd/sweep -designs Baryon,DICE -workloads 505.mcf_r,pr.twi
//	go run ./cmd/sweep -mode flat -designs Hybrid2,Baryon-FA > flat.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"baryon/internal/config"
	"baryon/internal/experiment"
	"baryon/internal/trace"
)

func main() {
	designs := flag.String("designs", "Simple,UnisonCache,DICE,Baryon-64B,Baryon",
		"comma-separated design list")
	designFiles := flag.String("design-files", "",
		"comma-separated JSON DesignSpec files; loaded designs are appended to the sweep")
	workloads := flag.String("workloads", "", "comma-separated workload list (default: all)")
	mode := flag.String("mode", "cache", "cache|flat")
	accesses := flag.Int("accesses", 0, "accesses per core (0 = config default)")
	seeds := flag.String("seeds", "1", "comma-separated seeds (rows per seed)")
	parallel := flag.Int("parallel", 0, "worker count for concurrent runs (0 = GOMAXPROCS)")
	flag.Parse()

	experiment.SetParallelism(*parallel)

	cfg := config.Scaled()
	if *accesses > 0 {
		cfg.AccessesPerCore = *accesses
	}
	if *mode == "flat" {
		cfg.Mode = config.ModeFlat
	}

	var ws []trace.Workload
	if *workloads == "" {
		ws = trace.All()
	} else {
		for _, name := range strings.Split(*workloads, ",") {
			w, ok := trace.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
				os.Exit(2)
			}
			ws = append(ws, w)
		}
	}

	// Validate the design list before any output: an unknown design would
	// otherwise panic inside the factory halfway through the CSV.
	var ds []string
	for _, d := range strings.Split(*designs, ",") {
		d = strings.TrimSpace(d)
		if !experiment.IsDesign(d) {
			fmt.Fprintln(os.Stderr, experiment.UnknownDesignError(d))
			os.Exit(2)
		}
		ds = append(ds, d)
	}
	if *designFiles != "" {
		for _, path := range strings.Split(*designFiles, ",") {
			spec, err := experiment.LoadSpecFile(strings.TrimSpace(path))
			if err != nil {
				fmt.Fprintf(os.Stderr, "loading design file: %v\n", err)
				os.Exit(2)
			}
			ds = append(ds, spec.Name)
		}
	}

	var seedList []uint64
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad seed %q\n", s)
			os.Exit(2)
		}
		seedList = append(seedList, v)
	}

	out := csv.NewWriter(os.Stdout)
	header := []string{"workload", "design", "mode", "seed", "cycles",
		"instructions", "ipc", "fastServeRate", "bloatFactor",
		"fastBytes", "slowBytes", "energyPJ",
		"memLatP50", "memLatP99", "memLatMax"}
	if err := out.Write(header); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, seed := range seedList {
		cfg.Seed = seed
		// One seed's whole workload x design grid fans out across the
		// worker pool; rows come back in the serial order.
		pairs := make([]experiment.Pair, 0, len(ws)*len(ds))
		for _, w := range ws {
			for _, d := range ds {
				pairs = append(pairs, experiment.Pair{Cfg: cfg, Workload: w, Design: d})
			}
		}
		results := experiment.RunPairs(pairs)
		for i, res := range results {
			row := []string{
				res.Workload, pairs[i].Design, cfg.Mode.String(),
				strconv.FormatUint(seed, 10),
				strconv.FormatUint(res.Cycles, 10),
				strconv.FormatUint(res.Instructions, 10),
				fmt.Sprintf("%.4f", res.IPC()),
				fmt.Sprintf("%.4f", res.FastServeRate),
				fmt.Sprintf("%.4f", res.BloatFactor),
				strconv.FormatUint(res.FastBytes, 10),
				strconv.FormatUint(res.SlowBytes, 10),
				fmt.Sprintf("%.0f", res.EnergyPJ),
				fmt.Sprintf("%.1f", res.Measured.MemLat.P50),
				fmt.Sprintf("%.1f", res.Measured.MemLat.P99),
				strconv.FormatUint(res.Measured.MemLat.Max, 10),
			}
			if err := out.Write(row); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		out.Flush()
	}
	out.Flush()
	if err := out.Error(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
