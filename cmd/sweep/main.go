// Command sweep runs a cartesian sweep over workloads and designs and emits
// one CSV row per run — the raw material for custom plots and regression
// tracking.
//
//	go run ./cmd/sweep -designs Baryon,DICE -workloads 505.mcf_r,pr.twi
//	go run ./cmd/sweep -mode flat -designs Hybrid2,Baryon-FA > flat.csv
//
// The sweep is resilient: a run that fails (bad design spec, panic in a
// controller) emits an error row and the rest of the grid completes; SIGINT,
// SIGTERM or -timeout cancel the remaining runs gracefully, flushing every
// completed row before exiting. The exit status is 0 only when every run
// succeeded.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"baryon/internal/config"
	"baryon/internal/experiment"
	"baryon/internal/service"
	"baryon/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags in, CSV to stdout,
// diagnostics to stderr, exit code out. Cancelling ctx (the signal handler,
// -timeout, or a test) stops new runs and flushes the partial CSV.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	designs := fs.String("designs", "Simple,UnisonCache,DICE,Baryon-64B,Baryon",
		"comma-separated design list")
	workloads := fs.String("workloads", "", "comma-separated workload list (default: all)")
	mode := fs.String("mode", "cache", "cache|flat")
	accesses := fs.Int("accesses", 0, "accesses per core (0 = config default)")
	seeds := fs.String("seeds", "1", "comma-separated seeds (rows per seed)")
	common := service.RegisterFlags(fs,
		service.FlagTimeout|service.FlagBundleDir|service.FlagDesignFiles|service.FlagParallel,
		"overall wall-clock budget (0 = none); on expiry the sweep flushes completed rows and exits non-zero")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The shared service-layer lifecycle: -timeout deadline, -parallel pool
	// size, -design-files registration, -bundle-dir observer.
	ctx, cleanup, err := common.Setup(ctx, stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer cleanup()

	cfg := config.Scaled()
	if *accesses > 0 {
		cfg.AccessesPerCore = *accesses
	}
	if *mode == "flat" {
		cfg.Mode = config.ModeFlat
	}

	var ws []trace.Workload
	if *workloads == "" {
		ws = trace.All()
	} else {
		for _, name := range strings.Split(*workloads, ",") {
			w, ok := trace.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(stderr, "unknown workload %q\n", name)
				return 2
			}
			ws = append(ws, w)
		}
	}

	// Validate the design list before any output: an unknown design would
	// otherwise waste the whole sweep on error rows.
	var ds []string
	for _, d := range strings.Split(*designs, ",") {
		d = strings.TrimSpace(d)
		if !experiment.IsDesign(d) {
			fmt.Fprintln(stderr, experiment.UnknownDesignError(d))
			return 2
		}
		ds = append(ds, d)
	}
	for _, spec := range common.Specs {
		ds = append(ds, spec.Name)
	}

	var seedList []uint64
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(stderr, "bad seed %q\n", s)
			return 2
		}
		seedList = append(seedList, v)
	}

	out := csv.NewWriter(stdout)
	header := []string{"workload", "design", "mode", "seed", "status", "cycles",
		"instructions", "ipc", "fastServeRate", "bloatFactor",
		"fastBytes", "slowBytes", "energyPJ",
		"memLatP50", "memLatP99", "memLatMax", "tiers", "tierBytes", "error"}
	if err := out.Write(header); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var okCount, failed, cancelled int
	for _, seed := range seedList {
		cfg.Seed = seed
		// One seed's whole workload x design grid fans out across the
		// worker pool; rows come back in the serial order.
		pairs := make([]experiment.Pair, 0, len(ws)*len(ds))
		for _, w := range ws {
			for _, d := range ds {
				pairs = append(pairs, experiment.Pair{Cfg: cfg, Workload: w, Design: d})
			}
		}
		results := experiment.RunPairsCtx(ctx, pairs)
		for i, pr := range results {
			res := pr.Result
			status := "ok"
			switch {
			case pr.Err == nil:
				okCount++
			case errors.Is(pr.Err, context.Canceled) || errors.Is(pr.Err, context.DeadlineExceeded):
				status = "cancelled"
				cancelled++
			default:
				status = "error"
				failed++
			}
			row := []string{
				pairs[i].Workload.Name, pairs[i].Design, cfg.Mode.String(),
				strconv.FormatUint(seed, 10),
				status,
				strconv.FormatUint(res.Cycles, 10),
				strconv.FormatUint(res.Instructions, 10),
				fmt.Sprintf("%.4f", res.IPC()),
				fmt.Sprintf("%.4f", res.FastServeRate),
				fmt.Sprintf("%.4f", res.BloatFactor),
				strconv.FormatUint(res.FastBytes, 10),
				strconv.FormatUint(res.SlowBytes, 10),
				fmt.Sprintf("%.0f", res.EnergyPJ),
				fmt.Sprintf("%.1f", res.Measured.MemLat.P50),
				fmt.Sprintf("%.1f", res.Measured.MemLat.P99),
				strconv.FormatUint(res.Measured.MemLat.Max, 10),
				strings.Join(res.TierNames, "+"),
				tierBytesCell(res.TierBytes),
				errorCell(pr.Err),
			}
			if err := out.Write(row); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if pr.Err != nil && status == "error" {
				fmt.Fprintf(stderr, "sweep: %s/%s seed %d failed: %s\n",
					pairs[i].Workload.Name, pairs[i].Design, seed, firstLine(pr.Err.Error()))
			}
		}
		out.Flush()
		if ctx.Err() != nil {
			break
		}
	}
	out.Flush()
	if err := out.Error(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "sweep: %d ok, %d failed, %d cancelled\n", okCount, failed, cancelled)
	if failed > 0 || cancelled > 0 || ctx.Err() != nil {
		return 1
	}
	return 0
}

// tierBytesCell renders the per-tier traffic breakdown as a ";"-joined cell
// (empty on classic two-tier runs, like the tiers column).
func tierBytesCell(b []uint64) string {
	if len(b) == 0 {
		return ""
	}
	parts := make([]string, len(b))
	for i, v := range b {
		parts[i] = strconv.FormatUint(v, 10)
	}
	return strings.Join(parts, ";")
}

// errorCell renders an error as a single-line CSV cell; panics carry a
// multi-line stack we collapse to the headline.
func errorCell(err error) string {
	if err == nil {
		return ""
	}
	return firstLine(err.Error())
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
