// Command tracegen dumps the head of a workload's memory access stream in a
// simple text format (address, read/write, instruction gap), useful for
// inspecting the synthetic workloads or feeding external tools.
//
//	go run ./cmd/tracegen -workload pr.twi -n 30
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"baryon/internal/config"
	"baryon/internal/trace"
)

func main() {
	workload := flag.String("workload", "505.mcf_r", "workload name")
	core := flag.Int("core", 0, "core whose stream to dump")
	n := flag.Int("n", 50, "number of accesses")
	seed := flag.Uint64("seed", 1, "stream seed")
	replay := flag.Bool("replay", false, "emit the machine-readable replay format for all 16 cores (core op addr gap)")
	flag.Parse()

	w, ok := trace.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	cfg := config.Scaled()
	fp2k := (cfg.FastBytes - cfg.StageBytes) / 2048
	s := w.NewStream(*core, fp2k, *seed)

	out := bufio.NewWriter(os.Stdout)
	if *replay {
		fmt.Fprintf(out, "# %s replay trace, %d accesses per core\n", w.Name, *n)
		for c := 0; c < 16; c++ {
			s := w.NewStream(c, fp2k, *seed)
			for i := 0; i < *n; i++ {
				if err := trace.WriteReplayRecord(out, c, s.Next()); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		flushOrExit(out)
		return
	}
	fmt.Fprintf(out, "# %s core=%d footprint=%d blocks\n", w.Name, *core, w.Blocks(fp2k))
	for i := 0; i < *n; i++ {
		a := s.Next()
		op := "R"
		if a.Write {
			op = "W"
		}
		fmt.Fprintf(out, "%s 0x%012x gap=%d block=%d sub=%d\n",
			op, a.Addr, a.Gap, a.Addr/2048, a.Addr%2048/256)
	}
	flushOrExit(out)
}

// flushOrExit drains the buffered writer; a deferred Flush would silently
// swallow a full disk or closed pipe, so surface the error in the exit code.
func flushOrExit(out *bufio.Writer) {
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
