// Command tracecheck validates a Chrome trace_event JSON file emitted by
// baryonsim -trace-out: the file must be valid JSON, contain trace events,
// and every fully-sampled request must carry at least -min-phases distinct
// span phases (issue, cache levels, controller decision, device service,
// completion). CI runs it after a short traced run to keep the trace format
// honest.
//
//	go run ./cmd/tracecheck -min-phases 5 trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// traceFile mirrors the subset of the Chrome trace_event JSON object format
// that tracecheck inspects.
type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

type traceEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Args *traceArgs `json:"args"`
}

type traceArgs struct {
	Req uint64 `json:"req"`
}

func main() {
	minPhases := flag.Int("min-phases", 5, "minimum distinct span phases required on the deepest request")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-phases N] trace.json")
		os.Exit(2)
	}

	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !json.Valid(raw) {
		fmt.Fprintf(os.Stderr, "%s: not valid JSON\n", flag.Arg(0))
		os.Exit(1)
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	if len(tf.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "%s: no trace events\n", flag.Arg(0))
		os.Exit(1)
	}

	// Group span phases per request ID. Only events that carry a request tag
	// participate; the deepest request (an LLC miss that walked the whole
	// plane) must show at least -min-phases distinct phase names.
	phases := make(map[uint64]map[string]bool)
	for _, e := range tf.TraceEvents {
		if e.Args == nil {
			continue
		}
		set := phases[e.Args.Req]
		if set == nil {
			set = make(map[string]bool)
			phases[e.Args.Req] = set
		}
		set[e.Name] = true
	}
	if len(phases) == 0 {
		fmt.Fprintf(os.Stderr, "%s: no request-tagged events\n", flag.Arg(0))
		os.Exit(1)
	}
	best := 0
	for _, set := range phases {
		if len(set) > best {
			best = len(set)
		}
	}
	if best < *minPhases {
		fmt.Fprintf(os.Stderr, "%s: deepest request has %d distinct phases, want >= %d\n",
			flag.Arg(0), best, *minPhases)
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d events, %d sampled requests, deepest request %d phases)\n",
		flag.Arg(0), len(tf.TraceEvents), len(phases), best)
}
