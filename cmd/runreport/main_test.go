package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"baryon/internal/config"
	"baryon/internal/experiment"
	"baryon/internal/report"
	"baryon/internal/trace"
)

// writeBundle runs one quick simulation and writes its bundle into dir,
// returning the file path.
func writeBundle(t *testing.T, dir, design string, seed uint64, mutate func(*report.Bundle)) string {
	t.Helper()
	cfg := config.Scaled()
	cfg.AccessesPerCore = 800
	cfg.Seed = seed
	w, _ := trace.ByName("505.mcf_r")
	spec, ok := experiment.Lookup(design)
	if !ok {
		t.Fatalf("unknown design %q", design)
	}
	res := experiment.RunOne(cfg, w, design)
	key, err := report.Key(spec, cfg, w.Name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := report.New(key, res)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(&b)
	}
	path := filepath.Join(dir, report.FileName(key))
	if err := report.WriteFile(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunreportSelfDiff(t *testing.T) {
	dir := t.TempDir()
	path := writeBundle(t, dir, "Simple", 1, nil)
	code, out, errw := runCLI(t, path, path)
	if code != 0 {
		t.Fatalf("self-diff exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errw)
	}
	if !strings.Contains(out, "1 clean, 0 differing, 0 unmatched") {
		t.Fatalf("summary wrong:\n%s", out)
	}
}

func TestRunreportDetectsRegression(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeBundle(t, dirA, "Simple", 1, nil)
	writeBundle(t, dirB, "Simple", 1, func(b *report.Bundle) {
		b.Counters["hierarchy.llcMisses"] += 50
	})
	code, out, _ := runCLI(t, dirA, dirB)
	if code != 1 {
		t.Fatalf("regression diff exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "hierarchy.llcMisses") {
		t.Fatalf("finding does not name the regressed counter:\n%s", out)
	}

	// Within tolerance the same pair is clean.
	code, out, _ = runCLI(t, "-tol", "0.5", "-pct-tol", "0.5", dirA, dirB)
	if code != 0 {
		t.Fatalf("tolerant diff exit %d, want 0\n%s", code, out)
	}
}

func TestRunreportDirectoryPairing(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeBundle(t, dirA, "Simple", 1, nil)
	writeBundle(t, dirA, "Simple", 2, nil)
	writeBundle(t, dirB, "Simple", 1, nil)
	// Seed 2 exists only on side A: unmatched, non-zero exit.
	code, out, _ := runCLI(t, dirA, dirB)
	if code != 1 {
		t.Fatalf("unmatched diff exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "ONLY-A") || !strings.Contains(out, "1 clean, 0 differing, 1 unmatched") {
		t.Fatalf("unmatched pair not reported:\n%s", out)
	}
}

func TestRunreportUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatal("no args should exit 2")
	}
	if code, _, _ := runCLI(t, "one-path-only"); code != 2 {
		t.Fatal("one arg should exit 2")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "x.bundle.json"), []byte("{not json"), 0o644)
	if code, _, _ := runCLI(t, dir, dir); code != 2 {
		t.Fatal("corrupt bundle should exit 2")
	}
	if code, _, _ := runCLI(t, t.TempDir(), t.TempDir()); code != 2 {
		t.Fatal("empty directory should exit 2")
	}
}
