// Command runreport diffs deterministic run-report bundles (see
// internal/report): two bundle files, or two directories of them matched by
// design/workload/seed. It prints every out-of-tolerance metric change and
// exits non-zero when any pair regressed, which makes it the regression
// gate between two commits' bundle artifacts:
//
//	go run ./cmd/runreport old.bundle.json new.bundle.json
//	go run ./cmd/runreport -tol 0.01 -pct-tol 0.02 baseline/ current/
//
// With zero tolerances (the default) the comparison demands exact equality —
// the right setting for checking that one commit's runs are deterministic.
// Exit status: 0 all pairs clean, 1 differences or unmatched bundles, 2
// usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"baryon/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags in, report to
// stdout, diagnostics to stderr, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("runreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tol", 0, "allowed relative change of integer metrics (counters, cycles); 0 = exact")
	pctTol := fs.Float64("pct-tol", 0, "allowed relative change of float metrics (rates, percentiles); 0 = exact")
	quiet := fs.Bool("q", false, "print only regressed pairs and the summary line")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: runreport [flags] <a.bundle.json|dirA> <b.bundle.json|dirB>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	tolerance := report.Tolerance{CounterRel: *tol, PctRel: *pctTol}

	pathA, pathB := fs.Arg(0), fs.Arg(1)
	bundlesA, err := loadSide(pathA)
	if err != nil {
		fmt.Fprintf(stderr, "runreport: %v\n", err)
		return 2
	}
	bundlesB, err := loadSide(pathB)
	if err != nil {
		fmt.Fprintf(stderr, "runreport: %v\n", err)
		return 2
	}

	// Pair bundles by design/workload/seed identity; bundles present on one
	// side only are themselves findings (a run disappeared or appeared).
	var clean, dirty, unmatched int
	for _, id := range unionIDs(bundlesA, bundlesB) {
		a, okA := bundlesA[id]
		b, okB := bundlesB[id]
		switch {
		case !okA:
			fmt.Fprintf(stdout, "ONLY-B   %s (no baseline bundle)\n", id)
			unmatched++
		case !okB:
			fmt.Fprintf(stdout, "ONLY-A   %s (bundle missing on right side)\n", id)
			unmatched++
		default:
			r := report.Diff(a, b, tolerance)
			if r.Clean() {
				clean++
				if !*quiet {
					fmt.Fprintf(stdout, "OK       %s (spec match: %v)\n", id, r.SpecMatch)
				}
				continue
			}
			dirty++
			fmt.Fprintf(stdout, "DIFF     %s (%d findings, spec match: %v)\n", id, len(r.Findings), r.SpecMatch)
			for _, f := range r.Findings {
				fmt.Fprintf(stdout, "  %s\n", f)
			}
		}
	}
	fmt.Fprintf(stdout, "runreport: %d clean, %d differing, %d unmatched\n", clean, dirty, unmatched)
	if dirty > 0 || unmatched > 0 {
		return 1
	}
	return 0
}

// loadSide loads one comparison side: a single bundle file, or every
// *.bundle.json in a directory, keyed by pair identity.
func loadSide(path string) (map[string]report.Bundle, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]report.Bundle)
	if !info.IsDir() {
		b, err := report.ReadFile(path)
		if err != nil {
			return nil, err
		}
		out[b.PairID()] = b
		return out, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".bundle.json") {
			continue
		}
		b, err := report.ReadFile(filepath.Join(path, e.Name()))
		if err != nil {
			return nil, err
		}
		if prev, dup := out[b.PairID()]; dup && prev.SpecHash != b.SpecHash {
			return nil, fmt.Errorf("%s: two bundles claim pair %s with different spec hashes", path, b.PairID())
		}
		out[b.PairID()] = b
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no *.bundle.json files", path)
	}
	return out, nil
}

func unionIDs(a, b map[string]report.Bundle) []string {
	seen := make(map[string]struct{}, len(a)+len(b))
	var out []string
	for id := range a {
		seen[id] = struct{}{}
		out = append(out, id)
	}
	for id := range b {
		if _, ok := seen[id]; !ok {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
