// Command baryonsimd serves simulations as a job service over HTTP/JSON:
// submit a job, stream its status while it runs, fetch its canonical result
// bundle. Jobs are content-addressed by their spec hash — re-submitting an
// identical job is served from the result cache byte-identically without
// re-simulating, and concurrent identical submissions collapse into one
// simulation.
//
//	go run ./cmd/baryonsimd -addr 127.0.0.1:8080 -cache-dir /var/tmp/baryon
//	curl -s -X POST http://127.0.0.1:8080/api/v1/run \
//	    -d '{"design":"Baryon","workload":"505.mcf_r","seed":1,"accesses":20000}'
//
// On SIGINT/SIGTERM the daemon drains: new submissions get 503, in-flight
// jobs finish (bounded by -drain-timeout), then it exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"baryon/internal/config"
	"baryon/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 1024, "in-memory result cache capacity in entries")
	cacheDir := flag.String("cache-dir", "", "persist result bundles to this directory; a restarted daemon re-serves them")
	accesses := flag.Int("accesses", 0, "base accesses per core for jobs that leave accesses unset (0 = config default)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "wall-clock budget for in-flight jobs after a shutdown signal")
	maxQueue := flag.Int("max-queue", 256, "max accepted-but-unfinished async jobs; beyond it submissions get 429 + Retry-After (0 = unbounded)")
	maxSyncWaiters := flag.Int("max-sync-waiters", 64, "max synchronous cache-miss requests waiting for a simulation; beyond it requests get 429 + Retry-After (0 = unbounded)")
	requestTimeout := flag.Duration("request-timeout", 0, "default and maximum per-request execution budget; clients lower it via the X-Baryon-Deadline header (0 = none)")
	writeTimeout := flag.Duration("write-timeout", time.Minute, "per-response write deadline: a slower client has its connection dropped (0 = none)")
	common := service.RegisterFlags(flag.CommandLine, service.FlagDesignFiles, "")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Setup registers -design-files specs so clients can run custom designs
	// by name. No timeout flag: the daemon runs until signalled.
	_, cleanup, err := common.Setup(ctx, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer cleanup()

	cfg := config.Scaled()
	if *accesses > 0 {
		cfg.AccessesPerCore = *accesses
	}
	svc, err := service.New(service.Options{
		Workers:        *workers,
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		BaseConfig:     &cfg,
		MaxQueue:       *maxQueue,
		MaxSyncWaiters: *maxSyncWaiters,
		Log:            os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The address announcement is a contract: scripts/serve_smoke.sh parses
	// this exact line to find an ephemeral port.
	fmt.Fprintf(os.Stderr, "baryonsimd listening on http://%s\n", ln.Addr())

	// Async jobs run on runCtx, not the signal context: a drain lets them
	// finish and only cancels them if the drain budget expires.
	runCtx, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()
	handler := service.NewHandlerOpts(svc, service.HandlerOptions{
		RunCtx:         runCtx,
		RequestTimeout: *requestTimeout,
		WriteTimeout:   *writeTimeout,
		Log:            os.Stderr,
	})
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "baryonsimd: serve: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "baryonsimd: draining (shutdown signal received)")
	svc.Drain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "baryonsimd: shutdown: %v\n", err)
	}
	if err := svc.Wait(dctx); err != nil {
		cancelRuns()
		fmt.Fprintln(os.Stderr, "baryonsimd: drain budget expired; cancelling in-flight jobs")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "baryonsimd: drained cleanly")
}
