// Command benchjson runs the repository's hot-path benchmarks under a fixed
// iteration plan (-count repeats at a pinned -benchtime, so runs are
// comparable across machines and commits), aggregates the repeats into one
// JSON summary, and optionally enforces an allocation-regression threshold
// against a committed baseline. CI runs it on every push and uploads the
// summary as an artifact, which makes the benchmark trajectory of the hot
// path machine-checked rather than eyeballed.
//
//	go run ./cmd/benchjson -out BENCH_singlerun.json \
//	    -baseline BENCH_baseline.json -threshold 0.10
//
// Aggregation: ns/op, B/op and allocs/op take the minimum across repeats
// (the least-noise estimator for a deterministic workload — every repeat
// does identical work, so the minimum is the run least disturbed by the
// machine). Custom b.ReportMetric values take the mean, since metrics like
// speedup-vs-serial are ratios that wobble in both directions.
//
// The threshold check compares allocs/op only: allocation counts are exact
// for a deterministic benchmark, so a >10% delta is a real regression, not
// scheduler noise — unlike wall-clock time, which shared CI runners make
// untrustworthy as a hard gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// benchResult aggregates one benchmark's repeats.
type benchResult struct {
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// report is the JSON document benchjson emits and compares against.
type report struct {
	Bench      string                  `json:"bench"`
	Count      int                     `json:"count"`
	Benchtime  string                  `json:"benchtime"`
	Benchmarks map[string]*benchResult `json:"benchmarks"`
}

func main() {
	benchRe := flag.String("bench", "SingleRun|CompressPipeline", "benchmark regexp passed to go test -bench")
	count := flag.Int("count", 5, "repeats per benchmark (go test -count)")
	benchtime := flag.String("benchtime", "2x", "fixed iteration budget (go test -benchtime)")
	pkg := flag.String("pkg", ".", "package holding the benchmarks")
	out := flag.String("out", "BENCH_singlerun.json", "output JSON path")
	baseline := flag.String("baseline", "", "baseline JSON to check allocs/op against (optional)")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional allocs/op regression vs baseline")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *benchRe, "-benchmem",
		"-count", strconv.Itoa(*count), "-benchtime", *benchtime, *pkg)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	os.Stdout.Write(outBytes)
	if err != nil {
		fatalf("go test -bench failed: %v", err)
	}

	rep := &report{
		Bench: *benchRe, Count: *count, Benchtime: *benchtime,
		Benchmarks: map[string]*benchResult{},
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		name, res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		mergeResult(rep.Benchmarks, name, res)
	}
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmark lines matched %q", *benchRe)
	}
	finishMeans(rep.Benchmarks)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encoding report: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks x %d runs)\n", *out, len(rep.Benchmarks), *count)

	if *baseline != "" {
		if err := checkBaseline(rep, *baseline, *threshold); err != nil {
			fatalf("%v", err)
		}
	}
}

// parseBenchLine parses one "BenchmarkName N v1 unit1 v2 unit2 ..." result
// line; non-benchmark lines report ok=false. The -P GOMAXPROCS suffix is
// stripped so names are stable across machines.
func parseBenchLine(line string) (string, *benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := &benchResult{Runs: 1, Metrics: map[string]float64{}}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			res.Metrics[unit] = v
		}
		seen = true
	}
	return name, res, seen
}

// mergeResult folds one repeat into the aggregate: minima for the standard
// units, running sums for custom metrics (divided into means later).
func mergeResult(all map[string]*benchResult, name string, r *benchResult) {
	agg, ok := all[name]
	if !ok {
		all[name] = r
		return
	}
	agg.Runs++
	agg.NsPerOp = minF(agg.NsPerOp, r.NsPerOp)
	agg.BytesPerOp = minF(agg.BytesPerOp, r.BytesPerOp)
	agg.AllocsPerOp = minF(agg.AllocsPerOp, r.AllocsPerOp)
	for k, v := range r.Metrics {
		agg.Metrics[k] += v
	}
}

func finishMeans(all map[string]*benchResult) {
	for _, agg := range all {
		for k := range agg.Metrics {
			agg.Metrics[k] /= float64(agg.Runs)
		}
		if len(agg.Metrics) == 0 {
			agg.Metrics = nil
		}
	}
}

func minF(a, b float64) float64 {
	if b < a {
		return b
	}
	return a
}

// checkBaseline fails if any benchmark present in both reports regressed
// its allocs/op by more than threshold. The +0.5 slack keeps zero- and
// near-zero-allocation baselines from tripping on a single stray object.
func checkBaseline(cur *report, path string, threshold float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline %s: %v", path, err)
	}
	var base report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	checked, failed := 0, 0
	for _, name := range names {
		b, ok := base.Benchmarks[name]
		if !ok {
			continue
		}
		checked++
		got, limit := cur.Benchmarks[name].AllocsPerOp, b.AllocsPerOp*(1+threshold)+0.5
		if got > limit {
			failed++
			fmt.Fprintf(os.Stderr, "benchjson: %s allocs/op regressed: %.0f > limit %.1f (baseline %.0f)\n",
				name, got, limit, b.AllocsPerOp)
		} else {
			fmt.Printf("benchjson: %s allocs/op %.0f within limit %.1f (baseline %.0f)\n",
				name, got, limit, b.AllocsPerOp)
		}
	}
	if checked == 0 {
		return fmt.Errorf("baseline %s shares no benchmarks with this run", path)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed allocs/op beyond %.0f%%", failed, threshold*100)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
