// Command experiments regenerates every table and figure of the paper's
// evaluation section. By default it runs everything; -only selects a single
// experiment and -quick shrinks the per-core access budget for a fast pass.
//
//	go run ./cmd/experiments            # full regeneration (~10-20 minutes)
//	go run ./cmd/experiments -quick     # fast pass
//	go run ./cmd/experiments -only fig9
//
// The runner is resilient: an experiment that fails is reported and skipped
// while the rest complete; SIGINT, SIGTERM or -timeout stop the current
// experiment gracefully and flush everything already rendered. The exit
// status is 0 only when every selected experiment completed.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"baryon/internal/config"
	"baryon/internal/experiment"
	"baryon/internal/service"
)

func main() {
	quick := flag.Bool("quick", false, "use a reduced access budget per core")
	only := flag.String("only", "", "run a single experiment: tablei|fig3a|fig3b|fig4|fig9|fig10|fig11|fig12|fig13a-d|energy|assoc|subblock|cpack|remapcache|slowmem|llcprefetch|osvshw|ddrfidelity|taillat|resilience|cxl")
	seed := flag.Uint64("seed", 1, "simulation seed")
	common := service.RegisterFlags(flag.CommandLine,
		service.FlagTimeout|service.FlagBundleDir|service.FlagParallel,
		"overall wall-clock budget (0 = none); on expiry remaining experiments are cancelled and the exit status is non-zero")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The shared service-layer lifecycle: -timeout deadline, -parallel pool
	// size, -bundle-dir observer.
	ctx, cleanup, err := common.Setup(ctx, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer cleanup()
	// The figure harnesses run through the legacy strict entry points;
	// installing the command's context makes all of them cancellable at the
	// worker-pool level.
	experiment.SetRunContext(ctx)

	cfg := config.Scaled()
	cfg.Seed = *seed
	if *quick {
		cfg.AccessesPerCore = 8000
	}

	type exp struct {
		name string
		run  func() *experiment.Table
	}
	experiments := []exp{
		{"tablei", func() *experiment.Table { return experiment.TableI() }},
		{"fig3a", func() *experiment.Table { _, t := experiment.Fig3a(cfg); return t }},
		{"fig3b", func() *experiment.Table { _, t := experiment.Fig3b(cfg); return t }},
		{"fig4", func() *experiment.Table { _, t := experiment.Fig4(cfg); return t }},
		{"fig9", func() *experiment.Table { _, t := experiment.Fig9(cfg); return t }},
		{"fig10", func() *experiment.Table { _, t := experiment.Fig10(cfg); return t }},
		{"fig11", func() *experiment.Table { _, t := experiment.Fig11(cfg); return t }},
		{"fig12", func() *experiment.Table { _, t := experiment.Fig12(cfg); return t }},
		{"fig13a", func() *experiment.Table { _, t := experiment.Fig13a(cfg); return t }},
		{"fig13b", func() *experiment.Table { _, t := experiment.Fig13b(cfg); return t }},
		{"fig13c", func() *experiment.Table { _, t := experiment.Fig13c(cfg); return t }},
		{"fig13d", func() *experiment.Table { _, t := experiment.Fig13d(cfg); return t }},
		{"energy", func() *experiment.Table { _, t := experiment.Energy(cfg); return t }},
		{"assoc", func() *experiment.Table { _, t := experiment.AssocSweep(cfg); return t }},
		{"subblock", func() *experiment.Table { _, t := experiment.SubBlockSweep(cfg); return t }},
		{"cpack", func() *experiment.Table { _, t := experiment.CompressorComparison(cfg); return t }},
		{"remapcache", func() *experiment.Table { _, t := experiment.RemapCacheSweep(cfg); return t }},
		{"slowmem", func() *experiment.Table { _, t := experiment.SlowMemSweep(cfg); return t }},
		{"llcprefetch", func() *experiment.Table { _, t := experiment.PrefetchAblation(cfg); return t }},
		{"osvshw", func() *experiment.Table { _, t := experiment.OSvsHW(cfg); return t }},
		{"ddrfidelity", func() *experiment.Table { _, t := experiment.DDRFidelitySweep(cfg); return t }},
		{"taillat", func() *experiment.Table { return experiment.TailLatency(cfg) }},
		{"resilience", func() *experiment.Table { _, t := experiment.Resilience(cfg); return t }},
		{"cxl", func() *experiment.Table { _, t := experiment.CXLSweep(cfg); return t }},
	}

	// Buffer stdout and check the flush: a deferred or implicit flush would
	// silently drop tables on a full disk or broken pipe.
	out := bufio.NewWriter(os.Stdout)
	ran, failed, skipped := 0, 0, 0
	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		if ctx.Err() != nil {
			skipped++
			continue
		}
		start := time.Now()
		table, err := runIsolated(e.run)
		if err != nil {
			// A cancelled worker pool surfaces as a panic from the strict
			// entry points; classify it by the context state.
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "[%s cancelled after %.1fs]\n", e.name, time.Since(start).Seconds())
				skipped++
				continue
			}
			failed++
			fmt.Fprintf(os.Stderr, "[%s FAILED after %.1fs: %s]\n",
				e.name, time.Since(start).Seconds(), firstLine(err.Error()))
			continue
		}
		table.Render(out)
		if err := out.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", e.name, time.Since(start).Seconds())
		ran++
	}
	if ran+failed+skipped == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "experiments: %d ok, %d failed, %d cancelled\n", ran, failed, skipped)
	if failed > 0 || skipped > 0 || ctx.Err() != nil {
		os.Exit(1)
	}
}

// runIsolated runs one experiment harness behind a panic boundary so a bad
// run (or a cancelled worker pool escalating through the strict entry
// points) fails only that experiment.
func runIsolated(run func() *experiment.Table) (t *experiment.Table, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%v", rec)
		}
	}()
	return run(), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
