package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validDoc = "# TYPE a counter\na_total 1\n# EOF\n"

func runLint(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

func TestOmlintFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.metrics.txt")
	if err := os.WriteFile(path, []byte(validDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, errw := runLint(t, "", path); code != 0 || !strings.Contains(out, "OK") {
		t.Fatalf("valid file: exit %d\nstdout: %s\nstderr: %s", code, out, errw)
	}
	// An invalid document (no # EOF) is a lint failure, not a usage error.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("a_total 1\n"), 0o644)
	if code, _, errw := runLint(t, "", bad); code != 1 {
		t.Fatalf("invalid file: exit %d, want 1\nstderr: %s", code, errw)
	}
}

func TestOmlintStdin(t *testing.T) {
	// Both no-args and the conventional "-" read stdin.
	for _, args := range [][]string{nil, {"-"}} {
		if code, out, errw := runLint(t, validDoc, args...); code != 0 || !strings.Contains(out, "<stdin>") {
			t.Fatalf("args %v: exit %d\nstdout: %s\nstderr: %s", args, code, out, errw)
		}
	}
}

func TestOmlintURL(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(validDoc))
	}))
	defer srv.Close()
	if code, out, errw := runLint(t, "", "-url", srv.URL); code != 0 || !strings.Contains(out, "OK") {
		t.Fatalf("url scrape: exit %d\nstdout: %s\nstderr: %s", code, out, errw)
	}
	srv.Close()
	// A dead endpoint is a fetch error: exit 2, distinct from lint failures.
	if code, _, _ := runLint(t, "", "-url", srv.URL); code != 2 {
		t.Fatal("dead endpoint should exit 2")
	}
}

func TestOmlintUsageErrors(t *testing.T) {
	if code, _, _ := runLint(t, "", "a", "b"); code != 2 {
		t.Fatal("two file args should exit 2")
	}
	if code, _, _ := runLint(t, "", "-url", "http://x", "file"); code != 2 {
		t.Fatal("-url with a file arg should exit 2")
	}
	if code, _, _ := runLint(t, "", "/nonexistent/path"); code != 2 {
		t.Fatal("unreadable file should exit 2")
	}
}
