// Command omlint validates an OpenMetrics text exposition — a file, stdin,
// or a live /metrics endpoint — against the subset of the format this
// repository emits: name/label syntax, TYPE-before-samples, family
// contiguity, histogram bucket monotonicity and the mandatory # EOF
// terminator. It is the scrape-side check of `make metrics-smoke`, kept
// in-repo so CI needs no external Prometheus tooling.
//
//	go run ./cmd/omlint run.metrics.txt
//	go run ./cmd/omlint -url http://127.0.0.1:8080/metrics
//	baryonsim -metrics-out /dev/stdout | go run ./cmd/omlint
//
// With -dump the validated exposition is echoed to stdout after linting,
// so shell harnesses can lint and grep a live endpoint in one request.
//
// Exit status: 0 valid, 1 invalid, 2 usage or fetch error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"baryon/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("omlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "fetch the exposition from this URL instead of a file")
	timeout := fs.Duration("timeout", 10*time.Second, "fetch timeout for -url")
	dump := fs.String("dump", "", "echo the exposition to stdout after linting: 'ok' only when valid, 'always' even when invalid")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: omlint [-url URL] [file]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var (
		in   io.Reader
		name string
	)
	switch {
	case *url != "":
		if fs.NArg() != 0 {
			fs.Usage()
			return 2
		}
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*url)
		if err != nil {
			fmt.Fprintf(stderr, "omlint: %v\n", err)
			return 2
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(stderr, "omlint: %s: HTTP %s\n", *url, resp.Status)
			return 2
		}
		in, name = resp.Body, *url
	case fs.NArg() == 1 && fs.Arg(0) != "-":
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "omlint: %v\n", err)
			return 2
		}
		defer f.Close()
		in, name = f, fs.Arg(0)
	case fs.NArg() == 0 || fs.Arg(0) == "-":
		in, name = stdin, "<stdin>"
	default:
		fs.Usage()
		return 2
	}

	if *dump != "" && *dump != "ok" && *dump != "always" {
		fmt.Fprintf(stderr, "omlint: -dump must be 'ok' or 'always'\n")
		return 2
	}
	if *dump != "" {
		// The input may be a one-shot stream (HTTP body, stdin); buffer it so
		// the same bytes can be linted and then echoed.
		raw, err := io.ReadAll(in)
		if err != nil {
			fmt.Fprintf(stderr, "omlint: %s: %v\n", name, err)
			return 2
		}
		in = bytes.NewReader(raw)
		lintErr := obs.LintOpenMetrics(in)
		if lintErr == nil || *dump == "always" {
			stdout.Write(raw)
		}
		if lintErr != nil {
			fmt.Fprintf(stderr, "omlint: %s: %v\n", name, lintErr)
			return 1
		}
		fmt.Fprintf(stderr, "omlint: %s: OK\n", name)
		return 0
	}

	if err := obs.LintOpenMetrics(in); err != nil {
		fmt.Fprintf(stderr, "omlint: %s: %v\n", name, err)
		return 1
	}
	fmt.Fprintf(stdout, "omlint: %s: OK\n", name)
	return 0
}
