// Command baryonsim runs one workload against one hybrid-memory design and
// prints the headline metrics plus (optionally) every raw counter.
//
//	go run ./cmd/baryonsim -workload 505.mcf_r -design Baryon
//	go run ./cmd/baryonsim -workload YCSB-A -design Hybrid2 -mode flat -v
//	go run ./cmd/baryonsim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"

	"baryon/internal/config"
	"baryon/internal/cpu"
	"baryon/internal/experiment"
	"baryon/internal/obs"
	"baryon/internal/report"
	"baryon/internal/service"
	"baryon/internal/trace"
)

func main() {
	workload := flag.String("workload", "505.mcf_r", "workload name (see -list)")
	workloadFile := flag.String("workload-file", "", "JSON file with a custom workload definition")
	traceFile := flag.String("trace-file", "", "replay a recorded trace file (see cmd/tracegen -replay)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	design := flag.String("design", "Baryon", "design name (built-in or loaded via -design-file)")
	mode := flag.String("mode", "cache", "cache|flat")
	accesses := flag.Int("accesses", 0, "accesses per core (0 = config default)")
	warmup := flag.Int("warmup", 0, "warmup accesses per core before measurement (0 = cold start)")
	epoch := flag.Int("epoch", 0, "collect an epoch snapshot every N accesses (0 = off)")
	epochCSV := flag.String("epoch-csv", "", "write the epoch time-series as CSV to this file (- for stdout)")
	epochJSONL := flag.String("epoch-jsonl", "", "write the epoch time-series as JSONL to this file (- for stdout)")
	metricsOut := flag.String("metrics-out", "", "write the run's final OpenMetrics exposition to this file (- for stdout)")
	bundleOut := flag.String("bundle-out", "", "write the deterministic run-report bundle (see cmd/runreport) to this file (- for stdout)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	traceOut := flag.String("trace-out", "", "write sampled request lifecycles as Chrome trace_event JSON to this file (enables tracing)")
	traceSample := flag.Uint64("trace-sample", 64, "with -trace-out, sample 1 in N requests (1 = every request)")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar and /runz live run status on this address (e.g. localhost:6060)")
	stallTimeout := flag.Duration("stall-timeout", 0, "abort if the run makes no progress for this long (0 = off)")
	verbose := flag.Bool("v", false, "dump every raw counter")
	list := flag.Bool("list", false, "list workloads and exit")
	common := service.RegisterFlags(flag.CommandLine,
		service.FlagTimeout|service.FlagDesignFile,
		"wall-clock budget for the run (0 = none); on expiry the run stops and exits non-zero")
	flag.Parse()

	if *list {
		for _, w := range trace.All() {
			fmt.Printf("%-18s footprint=%.1fx fast, writeRatio=%.2f, util=%.2f\n",
				w.Name, w.FootprintFactor, w.WriteRatio, w.BlockUtil)
		}
		return
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	// The shared service-layer lifecycle: -timeout deadline and -design-file
	// registration.
	ctx, cleanup, err := common.Setup(ctx, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer cleanup()

	// A custom design from -design-file joins the registry before any name
	// validation; unless -design was set explicitly, it is also the design
	// that runs.
	if len(common.Specs) > 0 {
		designSet := false
		flag.Visit(func(f *flag.Flag) { designSet = designSet || f.Name == "design" })
		if !designSet {
			*design = common.Specs[0].Name
		}
	}

	// Validate choice flags up front so a typo fails with a usage message
	// instead of a zero-value run or a late panic.
	if !experiment.IsDesign(*design) {
		fmt.Fprintln(os.Stderr, experiment.UnknownDesignError(*design))
		os.Exit(2)
	}
	if *mode != "cache" && *mode != "flat" {
		fmt.Fprintf(os.Stderr, "unknown mode %q; valid modes: cache, flat\n", *mode)
		os.Exit(2)
	}
	if *warmup < 0 || *epoch < 0 {
		fmt.Fprintln(os.Stderr, "-warmup and -epoch must be >= 0")
		os.Exit(2)
	}
	if (*epochCSV != "" || *epochJSONL != "") && *epoch == 0 {
		fmt.Fprintln(os.Stderr, "-epoch-csv/-epoch-jsonl require -epoch > 0")
		os.Exit(2)
	}
	if *metricsOut == "-" && *bundleOut == "-" {
		fmt.Fprintln(os.Stderr, "-metrics-out and -bundle-out cannot both write to stdout")
		os.Exit(2)
	}
	if *traceSample == 0 {
		fmt.Fprintln(os.Stderr, "-trace-sample must be >= 1")
		os.Exit(2)
	}

	var w trace.Workload
	if *workloadFile != "" {
		var err error
		w, err = trace.LoadFile(*workloadFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading %s: %v\n", *workloadFile, err)
			os.Exit(2)
		}
	} else {
		var ok bool
		w, ok = trace.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *workload)
			os.Exit(2)
		}
	}
	cfg := config.Scaled()
	cfg.Seed = *seed
	if *accesses > 0 {
		cfg.AccessesPerCore = *accesses
	}
	cfg.WarmupAccessesPerCore = *warmup
	cfg.EpochAccesses = *epoch
	if *mode == "flat" {
		cfg.Mode = config.ModeFlat
	}
	// Validate the run's device topology (the design's overrides applied to
	// the base config) up front, so an unknown tier preset fails here with
	// the registered-preset list instead of deep in construction.
	if spec, ok := experiment.Lookup(*design); ok {
		if err := experiment.ValidateSpec(spec, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var src trace.Source
	if *traceFile != "" {
		rep, err := trace.LoadReplayFile(*traceFile, *traceFile, w.Mix)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading trace: %v\n", err)
			os.Exit(2)
		}
		src = rep
	}

	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.NewTracer(*traceSample, 0)
	}
	var in *obs.Introspector
	if *debugAddr != "" || *stallTimeout > 0 {
		in = &obs.Introspector{}
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "debug listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/runz\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, obs.NewDebugMux(in)); err != nil {
				fmt.Fprintf(os.Stderr, "debug listener: %v\n", err)
			}
		}()
	}

	// The service layer owns the run lifecycle: validation, stall watchdog,
	// tracer/introspector attachment, cancellation.
	res, runErr := service.RunSingle(ctx, service.SingleRun{
		Cfg:           cfg,
		Workload:      w,
		Source:        src,
		Design:        *design,
		StallTimeout:  *stallTimeout,
		Tracer:        tr,
		Introspector:  in,
		StallWarnings: os.Stderr,
	})
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "run stopped early: %v (reporting partial metrics)\n", runErr)
	}
	if tr != nil {
		if err := writeTrace(*traceOut, tr); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := tr.WriteFlameSummary(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "trace summary: %v\n", err)
			os.Exit(1)
		}
	}
	writeEpochs(res, *epochCSV, experiment.WriteEpochCSV)
	writeEpochs(res, *epochJSONL, experiment.WriteEpochJSONL)
	if *metricsOut != "" {
		if err := writeMetricsOut(*metricsOut, res, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *bundleOut != "" {
		if runErr != nil {
			// A partial run's counters are interleaving-dependent; a bundle of
			// them would defeat the determinism contract.
			fmt.Fprintln(os.Stderr, "-bundle-out: skipping bundle for a partial run")
		} else if err := writeBundleOut(*bundleOut, *design, cfg, res); err != nil {
			fmt.Fprintf(os.Stderr, "writing bundle: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsOut == "-" || *bundleOut == "-" {
		// stdout is carrying a machine-readable export; skip the run report
		// so the stream stays parseable (pipe straight into cmd/omlint or
		// cmd/runreport).
		if runErr != nil {
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		out := map[string]any{
			"workload":      res.Workload,
			"design":        res.Design,
			"mode":          cfg.Mode.String(),
			"cycles":        res.Cycles,
			"instructions":  res.Instructions,
			"ipc":           res.IPC(),
			"fastServeRate": res.FastServeRate,
			"bloatFactor":   res.BloatFactor,
			"fastBytes":     res.FastBytes,
			"slowBytes":     res.SlowBytes,
			"energyPJ":      res.EnergyPJ,
		}
		if len(res.TierNames) > 0 {
			out["tiers"] = res.TierNames
			out["tierBytes"] = res.TierBytes
		}
		if cfg.WarmupAccessesPerCore > 0 {
			out["warmup"] = res.Warmup
			out["measured"] = res.Measured
		}
		if len(res.Epochs) > 0 {
			out["epochs"] = res.Epochs
		}
		if len(res.Latency) > 0 {
			out["latency"] = res.Latency
		}
		if *verbose {
			counters := map[string]uint64{}
			for _, name := range res.Stats.Names() {
				counters[name] = res.Stats.Get(name)
			}
			out["counters"] = counters
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if runErr != nil {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("workload:        %s\n", res.Workload)
	fmt.Printf("design:          %s (%s mode)\n", res.Design, cfg.Mode)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("instructions:    %d (IPC %.3f)\n", res.Instructions, res.IPC())
	fmt.Printf("fast serve rate: %.1f%%\n", 100*res.FastServeRate)
	fmt.Printf("bloat factor:    %.2f\n", res.BloatFactor)
	fmt.Printf("fast traffic:    %.1f MB\n", float64(res.FastBytes)/(1<<20))
	fmt.Printf("slow traffic:    %.1f MB\n", float64(res.SlowBytes)/(1<<20))
	for i, name := range res.TierNames {
		fmt.Printf("  tier %d %-12s %.1f MB\n", i, name+":", float64(res.TierBytes[i])/(1<<20))
	}
	fmt.Printf("memory energy:   %.2f mJ\n", res.EnergyPJ/1e9)
	if cfg.WarmupAccessesPerCore > 0 {
		fmt.Printf("warmup window:   %d accesses, IPC %.3f, fast serve %.1f%%\n",
			res.Warmup.Accesses, res.Warmup.IPC(), 100*res.Warmup.FastServeRate)
	}
	if len(res.Epochs) > 0 {
		fmt.Printf("epochs:          %d (every %d accesses)\n", len(res.Epochs), cfg.EpochAccesses)
	}
	if m, ok := res.Latency["hierarchy.lat.demand"]; ok {
		fmt.Printf("demand latency:  p50 %.0f, p99 %.0f, p99.9 %.0f, max %d cycles\n",
			m.P50, m.P99, m.P999, m.Max)
	}
	if *verbose {
		if len(res.Latency) > 0 {
			fmt.Println("\nlatency histograms (cycles):")
			names := make([]string, 0, len(res.Latency))
			for name := range res.Latency {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				m := res.Latency[name]
				fmt.Printf("  %-28s n=%-9d mean=%-8.1f p50=%-7.0f p90=%-7.0f p99=%-7.0f p99.9=%-7.0f max=%d\n",
					name, m.Count, m.Mean, m.P50, m.P90, m.P99, m.P999, m.Max)
			}
		}
		fmt.Println("\ncounters:")
		fmt.Print(res.Stats.String())
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// writeMetricsOut renders the run's measurement-window registry delta as
// OpenMetrics text ("-" = stdout), labelled with the run identity — the
// end-of-run counterpart of the live /metrics endpoint.
func writeMetricsOut(path string, res cpu.Result, cfg config.Config) error {
	snap := res.Stats.Delta(res.MeasureStart)
	opts := obs.OMOptions{Labels: []obs.OMLabel{
		{Key: "design", Value: res.Design},
		{Key: "workload", Value: res.Workload},
		{Key: "seed", Value: strconv.FormatUint(cfg.Seed, 10)},
	}}
	if path == "-" {
		return obs.WriteOpenMetrics(os.Stdout, snap, opts)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteOpenMetrics(f, snap, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeBundleOut writes the run's deterministic report bundle ("-" =
// stdout): the canonical spec key plus the full measurement-window metric
// state, in the byte-stable shape cmd/runreport diffs.
func writeBundleOut(path, design string, cfg config.Config, res cpu.Result) error {
	b, err := service.BundleFor(design, cfg, res)
	if err != nil {
		return err
	}
	if path == "-" {
		data, err := b.MarshalCanonical()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	return report.WriteFile(path, b)
}

// writeTrace dumps the tracer's ring buffer as Chrome trace_event JSON
// (load via chrome://tracing or https://ui.perfetto.dev).
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeEpochs serialises the epoch series to path ("-" = stdout) with the
// given writer; a no-op when path is empty.
func writeEpochs(res cpu.Result, path string, write func(io.Writer, cpu.Result) error) {
	if path == "" {
		return
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := write(w, res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
