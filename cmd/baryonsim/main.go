// Command baryonsim runs one workload against one hybrid-memory design and
// prints the headline metrics plus (optionally) every raw counter.
//
//	go run ./cmd/baryonsim -workload 505.mcf_r -design Baryon
//	go run ./cmd/baryonsim -workload YCSB-A -design Hybrid2 -mode flat -v
//	go run ./cmd/baryonsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"baryon/internal/config"
	"baryon/internal/cpu"
	"baryon/internal/experiment"
	"baryon/internal/trace"
)

func main() {
	workload := flag.String("workload", "505.mcf_r", "workload name (see -list)")
	workloadFile := flag.String("workload-file", "", "JSON file with a custom workload definition")
	traceFile := flag.String("trace-file", "", "replay a recorded trace file (see cmd/tracegen -replay)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	design := flag.String("design", "Baryon", "Simple|UnisonCache|DICE|Baryon|Baryon-64B|Baryon-FA|Hybrid2")
	mode := flag.String("mode", "cache", "cache|flat")
	accesses := flag.Int("accesses", 0, "accesses per core (0 = config default)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "dump every raw counter")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range trace.All() {
			fmt.Printf("%-18s footprint=%.1fx fast, writeRatio=%.2f, util=%.2f\n",
				w.Name, w.FootprintFactor, w.WriteRatio, w.BlockUtil)
		}
		return
	}

	var w trace.Workload
	if *workloadFile != "" {
		var err error
		w, err = trace.LoadFile(*workloadFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading %s: %v\n", *workloadFile, err)
			os.Exit(2)
		}
	} else {
		var ok bool
		w, ok = trace.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *workload)
			os.Exit(2)
		}
	}
	cfg := config.Scaled()
	cfg.Seed = *seed
	if *accesses > 0 {
		cfg.AccessesPerCore = *accesses
	}
	if *mode == "flat" {
		cfg.Mode = config.ModeFlat
	}

	var res cpu.Result
	if *traceFile != "" {
		rep, err := trace.LoadReplayFile(*traceFile, *traceFile, w.Mix)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading trace: %v\n", err)
			os.Exit(2)
		}
		r := cpu.NewRunnerSource(cfg, rep, experiment.Factory(*design))
		res = r.Run()
		res.Design = *design
	} else {
		res = experiment.RunOne(cfg, w, *design)
	}
	if *jsonOut {
		out := map[string]any{
			"workload":      res.Workload,
			"design":        res.Design,
			"mode":          cfg.Mode.String(),
			"cycles":        res.Cycles,
			"instructions":  res.Instructions,
			"ipc":           res.IPC(),
			"fastServeRate": res.FastServeRate,
			"bloatFactor":   res.BloatFactor,
			"fastBytes":     res.FastBytes,
			"slowBytes":     res.SlowBytes,
			"energyPJ":      res.EnergyPJ,
		}
		if *verbose {
			counters := map[string]uint64{}
			for _, name := range res.Stats.Names() {
				counters[name] = res.Stats.Get(name)
			}
			out["counters"] = counters
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("workload:        %s\n", res.Workload)
	fmt.Printf("design:          %s (%s mode)\n", res.Design, cfg.Mode)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("instructions:    %d (IPC %.3f)\n", res.Instructions, res.IPC())
	fmt.Printf("fast serve rate: %.1f%%\n", 100*res.FastServeRate)
	fmt.Printf("bloat factor:    %.2f\n", res.BloatFactor)
	fmt.Printf("fast traffic:    %.1f MB\n", float64(res.FastBytes)/(1<<20))
	fmt.Printf("slow traffic:    %.1f MB\n", float64(res.SlowBytes)/(1<<20))
	fmt.Printf("memory energy:   %.2f mJ\n", res.EnergyPJ/1e9)
	if *verbose {
		fmt.Println("\ncounters:")
		fmt.Print(res.Stats.String())
	}
}
