// Package baryon's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation section. Each benchmark regenerates its
// experiment at a reduced access budget and reports the experiment's
// headline metric via b.ReportMetric, so `go test -bench=. -benchmem`
// doubles as a fast end-to-end regeneration pass. The full-budget
// regeneration lives in cmd/experiments.
package baryon

import (
	"testing"
	"time"

	"baryon/internal/compress"
	"baryon/internal/compress/pipeline"
	"baryon/internal/config"
	"baryon/internal/cpu"
	"baryon/internal/experiment"
	"baryon/internal/obs"
	"baryon/internal/trace"
)

// benchConfig returns the scaled configuration with a benchmark-friendly
// access budget.
func benchConfig() config.Config {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 4000
	return cfg
}

func BenchmarkTableI_Metadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.TableI()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig3_StageBreakdown(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, _ := experiment.Fig3a(cfg)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		// Report the mean committed-state hit ratio (the paper's headline:
		// post-commit misses drop below ~5%).
		sum := 0.0
		for _, r := range rows {
			sum += r.Breakdown.CHits
		}
		b.ReportMetric(sum/float64(len(rows)), "C-hit-ratio")
	}
}

func BenchmarkFig4_StagePhase(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, _ := experiment.Fig4(cfg)
		if len(res.Boxes) != 10 {
			b.Fatal("bad bucket count")
		}
		// The paper's claim: MPKI drops substantially from the first to the
		// second half of the stage phase.
		b.ReportMetric(res.Boxes[0].P50, "p50-mpki-start")
		b.ReportMetric(res.Boxes[9].P50, "p50-mpki-end")
	}
}

func BenchmarkFig9_CacheMode(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		m, _ := experiment.Fig9(cfg)
		b.ReportMetric(m.GeoMean[experiment.DesignBaryon], "baryon-geomean")
		b.ReportMetric(m.GeoMean[experiment.DesignUnison], "unison-geomean")
		b.ReportMetric(m.GeoMean[experiment.DesignDICE], "dice-geomean")
	}
}

func BenchmarkFig10_FlatMode(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		m, _ := experiment.Fig10(cfg)
		b.ReportMetric(m.GeoMean[experiment.DesignBaryonFA], "fa-over-hybrid2")
	}
}

func BenchmarkFig11_ServeBloat(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, _ := experiment.Fig11(cfg)
		if len(rows) != len(trace.All()) {
			b.Fatal("missing workloads")
		}
	}
}

func BenchmarkFig12_CompressionAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, _ := experiment.Fig12(cfg)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig13a_TwoLevelReplacement(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.Fig13a(cfg)
	}
}

func BenchmarkFig13b_SuperBlockSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.Fig13b(cfg)
	}
}

func BenchmarkFig13c_StageSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.Fig13c(cfg)
	}
}

func BenchmarkFig13d_CommitPolicy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.Fig13d(cfg)
	}
}

func BenchmarkEnergy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, _ := experiment.Energy(cfg)
		b.ReportMetric(res.SavingsVsUnison, "saving-vs-unison")
		b.ReportMetric(res.SavingsVsDICE, "saving-vs-dice")
	}
}

func BenchmarkExtra_AssocSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.AssocSweep(cfg)
	}
}

func BenchmarkExtra_SubBlockSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.SubBlockSweep(cfg)
	}
}

func BenchmarkExtra_CompressorComparison(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.CompressorComparison(cfg)
	}
}

func BenchmarkExtra_RemapCacheSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, _ := experiment.RemapCacheSweep(cfg)
		// Report the biggest cache's mean hit rate (paper: >90%).
		sum, n := 0.0, 0
		for _, r := range rows {
			if r.Sets == 256 {
				sum += r.HitRate
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "remap-hit-rate-32kB")
		}
	}
}

// BenchmarkFig9Parallel measures the worker-pool engine: a serial Fig9
// regeneration is timed once before the timer starts, then the parallel runs
// are measured, and the ratio is reported as speedup-vs-serial (1.0 on a
// single-CPU machine, approaching the worker count on larger ones).
func BenchmarkFig9Parallel(b *testing.B) {
	cfg := benchConfig()
	defer experiment.SetParallelism(0)

	experiment.SetParallelism(1)
	serialStart := time.Now()
	experiment.Fig9(cfg)
	serial := time.Since(serialStart)

	experiment.SetParallelism(0) // GOMAXPROCS workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.Fig9(cfg)
	}
	parallel := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-vs-serial")
	b.ReportMetric(float64(experiment.Parallelism()), "workers")
}

// BenchmarkSingleRun measures the simulator's own throughput on one
// (workload, design) pair — useful for tracking the harness's performance.
// Tracing is disabled here; the observability hooks must keep this within
// noise of the pre-tracing baseline (nil-check fast path).
func BenchmarkSingleRun(b *testing.B) {
	cfg := benchConfig()
	w, _ := trace.ByName("505.mcf_r")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiment.RunOne(cfg, w, experiment.DesignBaryon)
		if res.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
}

// pipelineCorpus builds a deterministic writeback-style batch: nRanges
// sub-block ranges of 256 bytes each, mixing zero, small-delta and noise
// content so fit checks exercise both cheap accepts and full-algorithm
// rejections.
func pipelineCorpus(nRanges int) [][]byte {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	ranges := make([][]byte, nRanges)
	for i := range ranges {
		buf := make([]byte, 256)
		switch i % 3 {
		case 0: // zeros — cheapest accept
		case 1: // small deltas from a shared base — BDI-friendly
			base := next()
			for o := 0; o < len(buf); o += 8 {
				v := base + uint64(o)
				for k := 0; k < 8; k++ {
					buf[o+k] = byte(v >> (8 * k))
				}
			}
		default: // noise — every algorithm must run to completion and fail
			for o := 0; o < len(buf); o += 8 {
				v := next()
				for k := 0; k < 8; k++ {
					buf[o+k] = byte(v >> (8 * k))
				}
			}
		}
		ranges[i] = buf
	}
	return ranges
}

// BenchmarkCompressPipeline measures the fit-check arena over a
// writeback-sized batch of CF-2 ranges: the serial (workers=1) arena is
// timed before the timer starts, the parallel arena is measured, and the
// ratio is reported as speedup-vs-serial (1.0 on a single-CPU machine).
func BenchmarkCompressPipeline(b *testing.B) {
	comp := compress.New(true)
	ranges := pipelineCorpus(512)
	drive := func(a *pipeline.Arena, rounds int) {
		for r := 0; r < rounds; r++ {
			a.Begin()
			for _, rg := range ranges {
				a.AddChunked(rg, 128, 64)
			}
			a.Run()
			for g := range ranges {
				_ = a.Fits(g)
			}
		}
	}

	serialArena := pipeline.New(comp, 1)
	drive(serialArena, 1) // warm the arena's task storage
	serialStart := time.Now()
	drive(serialArena, 8)
	serial := time.Since(serialStart) / 8

	par := pipeline.New(comp, 0)
	drive(par, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drive(par, 1)
	}
	parallel := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-vs-serial")
	b.ReportMetric(float64(par.Workers()), "workers")
}

// BenchmarkSingleRunSteadyState isolates the post-construction hot path:
// one runner is warmed outside the timer, then fixed windows are replayed
// on the same Stepper. steady-allocs/window is the testing.AllocsPerRun
// count for one whole window; the pooled buffers and slabs keep it orders
// of magnitude below a cold run's allocation count.
func BenchmarkSingleRunSteadyState(b *testing.B) {
	cfg := benchConfig()
	w, _ := trace.ByName("505.mcf_r")
	r := cpu.NewRunner(cfg, w, experiment.Factory(experiment.DesignBaryon))
	s := r.Stepper()
	s.Window(cfg.AccessesPerCore) // fill caches, buffer pools and slabs
	const windowPerCore = 1000
	steady := testing.AllocsPerRun(5, func() { s.Window(windowPerCore) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Window(windowPerCore)
	}
	b.ReportMetric(steady, "steady-allocs/window")
	if s.Accesses() == 0 {
		b.Fatal("no accesses")
	}
}

// BenchmarkSingleRunTraced is the same run with the request-lifecycle
// tracer attached at the default 1-in-64 sampling; the delta against
// BenchmarkSingleRun is the cost of tracing.
func BenchmarkSingleRunTraced(b *testing.B) {
	cfg := benchConfig()
	w, _ := trace.ByName("505.mcf_r")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := cpu.NewRunner(cfg, w, experiment.Factory(experiment.DesignBaryon))
		r.SetTracer(obs.NewTracer(64, 0))
		res := r.Run()
		if res.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
}
