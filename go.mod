module baryon

go 1.22
