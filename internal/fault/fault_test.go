package fault

import (
	"testing"

	"baryon/internal/sim"
)

func newTestInjector(p Params, correct int, seed uint64) (*Injector, *sim.Stats) {
	st := sim.NewStats()
	return NewInjector(p, correct, seed, st.Scope("dev")), st
}

// TestDeterminism pins the determinism contract: the same params, seed and
// access sequence produce identical fault counters.
func TestDeterminism(t *testing.T) {
	run := func() string {
		in, st := newTestInjector(Params{BER: 1e-3}, 1, 42)
		for i := 0; i < 2000; i++ {
			addr := uint64(i%64) * 64
			in.OnRead(addr, 64)
			if i%3 == 0 {
				in.OnWrite(addr, 64)
			}
		}
		return st.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	in, st := newTestInjector(Params{BER: 1e-3}, 1, 43)
	for i := 0; i < 2000; i++ {
		in.OnRead(uint64(i%64)*64, 64)
	}
	if st.Get("dev.fault.flips") == 0 {
		t.Fatal("BER 1e-3 over 2000 line reads never flipped a bit")
	}
}

// TestECCClassification checks the budget boundary: flip counts at or below
// the correction budget classify as Corrected, above as Uncorrectable.
func TestECCClassification(t *testing.T) {
	// A stuck-at line always exceeds the budget (correct+1 flips).
	in, st := newTestInjector(Params{StuckAt: []Region{{Addr: 0, Size: 64}}}, 2, 1)
	if got := in.OnRead(0, 64); got != Uncorrectable {
		t.Fatalf("stuck-at line classified %v, want Uncorrectable", got)
	}
	if st.Get("dev.fault.uncorrectable") != 1 || st.Get("dev.fault.stuckAtHits") != 1 {
		t.Fatalf("counters after stuck-at read: %s", st.String())
	}
	// Lines outside the stuck-at region with zero BER never fault.
	if got := in.OnRead(64, 64); got != None {
		t.Fatalf("clean line classified %v, want None", got)
	}
	// With a very high BER every line flips more bits than any sane budget.
	hot, _ := newTestInjector(Params{BER: 0.5}, 1, 1)
	if got := hot.OnRead(0, 64); got != Uncorrectable {
		t.Fatalf("BER 0.5 read classified %v, want Uncorrectable", got)
	}
	// Suppressed reads never fault regardless of params.
	hot.Suppress(true)
	if got := hot.OnRead(0, 64); got != None {
		t.Fatalf("suppressed read classified %v, want None", got)
	}
}

// TestQuarantine checks that quarantined lines stop faulting and remaps are
// counted once per line.
func TestQuarantine(t *testing.T) {
	in, st := newTestInjector(Params{StuckAt: []Region{{Addr: 0, Size: 128}}}, 1, 1)
	if got := in.OnRead(0, 128); got != Uncorrectable {
		t.Fatalf("stuck-at read classified %v", got)
	}
	in.Quarantine(0, 128)
	in.Quarantine(0, 128) // idempotent
	if got := in.QuarantinedLines(); got != 2 {
		t.Fatalf("QuarantinedLines = %d, want 2", got)
	}
	if got := st.Get("dev.fault.remaps"); got != 2 {
		t.Fatalf("remaps = %d, want 2", got)
	}
	if got := in.OnRead(0, 128); got != None {
		t.Fatalf("quarantined read classified %v, want None", got)
	}
}

// TestWearRamp checks the endurance model: lines below WearUnit writes keep
// the base BER, and each wear step adds WearRBERStep.
func TestWearRamp(t *testing.T) {
	in, st := newTestInjector(Params{WearUnit: 10, WearRBERStep: 1e-3}, 1, 1)
	if got := in.lineBER(0); got != 0 {
		t.Fatalf("fresh line BER = %g, want 0", got)
	}
	for i := 0; i < 25; i++ {
		in.OnWrite(0, 64)
	}
	// 25 writes / WearUnit 10 = 2 wear steps.
	if got, want := in.lineBER(0), 2e-3; got != want {
		t.Fatalf("worn line BER = %g, want %g", got, want)
	}
	if got := st.Get("dev.fault.wearSteps"); got != 2 {
		t.Fatalf("wearSteps = %d, want 2", got)
	}
	if got := st.Get("dev.fault.wearWrites"); got != 25 {
		t.Fatalf("wearWrites = %d, want 25", got)
	}
	// An unworn neighbour is unaffected.
	if got := in.lineBER(1); got != 0 {
		t.Fatalf("neighbour line BER = %g, want 0", got)
	}
}

// TestEnabled pins the zero-value-disables contract of Params and Config.
func TestEnabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero Config reports enabled")
	}
	cases := []Params{
		{BER: 1e-9},
		{StuckAt: []Region{{Addr: 0, Size: 64}}},
		{WearUnit: 10, WearRBERStep: 1e-6},
	}
	for i, p := range cases {
		if !p.Enabled() {
			t.Fatalf("case %d: params %+v report disabled", i, p)
		}
	}
	if (&Params{WearUnit: 10}).Enabled() {
		t.Fatal("wear unit without a RBER step reports enabled")
	}
	if got := c.CorrectBits(); got != 1 {
		t.Fatalf("default CorrectBits = %d, want 1", got)
	}
	if got := c.RetryPenaltyCycles(); got != 64 {
		t.Fatalf("default RetryPenaltyCycles = %d, want 64", got)
	}
	if got := c.RemapPenaltyCycles(); got != 512 {
		t.Fatalf("default RemapPenaltyCycles = %d, want 512", got)
	}
}
