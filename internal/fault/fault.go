// Package fault models device-level reliability for the hybrid memory
// system: seeded, deterministic injection of transient read bit-flips,
// stuck-at regions and wear-driven raw-bit-error growth on NVM, filtered
// through a per-64B-line ECC detect/correct budget. The injector attaches to
// a mem.Device; the controller-side degradation path (corrected-error
// retries with timing penalty, uncorrectable-error line remap/quarantine)
// lives in hybrid.Engine, so every design — Baryon and the baselines —
// inherits the same failure semantics instead of silently corrupting data.
//
// Determinism contract: a run's fault stream is a pure function of
// (fault.Config, run seed, access sequence). With the zero Config the
// injector is never constructed, no RNG values are drawn and no counters are
// registered, so a fault-free run is byte-identical to a build without this
// package.
package fault

import "baryon/internal/sim"

// lineBits is the ECC protection granularity: one 64 B line.
const lineBits = 64 * 8

// Region is a half-open physical address range [Addr, Addr+Size) on one
// device.
type Region struct {
	Addr uint64 `json:"addr"`
	Size uint64 `json:"size"`
}

func (r Region) contains(addr uint64) bool {
	return addr >= r.Addr && addr < r.Addr+r.Size
}

// Params is the fault model of one device.
type Params struct {
	// BER is the transient raw bit error rate per bit per read. Each 64 B
	// line read draws its flip count from a Poisson with mean 512*BER.
	BER float64 `json:"ber,omitempty"`
	// StuckAt lists regions whose lines always fail uncorrectably until the
	// controller quarantines them (manufacturing defects, dead rows).
	StuckAt []Region `json:"stuckAt,omitempty"`
	// WearUnit is the number of writes to one line per wear step; 0 disables
	// wear tracking.
	WearUnit uint64 `json:"wearUnit,omitempty"`
	// WearRBERStep is the raw bit error rate added per wear step — the
	// endurance-driven RBER ramp of NVM cells.
	WearRBERStep float64 `json:"wearRBERStep,omitempty"`
}

// Enabled reports whether the params describe any fault source.
func (p *Params) Enabled() bool {
	return p.BER > 0 || len(p.StuckAt) > 0 || (p.WearUnit > 0 && p.WearRBERStep > 0)
}

// Config configures fault injection for one run: a per-device model plus the
// shared ECC and degradation-path parameters. The zero value disables
// everything.
type Config struct {
	Fast Params `json:"fast,omitempty"`
	Slow Params `json:"slow,omitempty"`

	// Tiers, when non-empty, replaces Fast/Slow wholesale with per-tier
	// params indexed by engine tier (0 = fast). Tiers beyond the list get
	// the zero (disabled) params. A partial merge with Fast/Slow would be
	// ambiguous, so like Overrides.Fault the list wins outright.
	Tiers []Params `json:"tiers,omitempty"`

	// ECCCorrectBits is the per-64B-line correction budget: up to this many
	// flipped bits are corrected (with a retry penalty), more are
	// uncorrectable and force a line remap. 0 defaults to 1 (SECDED-like).
	ECCCorrectBits int `json:"eccCorrectBits,omitempty"`

	// RetryPenalty is the extra latency (cycles) of a corrected-error retry
	// beyond the re-read itself. 0 defaults to 64.
	RetryPenalty uint64 `json:"retryPenalty,omitempty"`
	// RemapPenalty is the controller overhead (cycles) of quarantining a
	// line and redirecting it to a spare after an uncorrectable error.
	// 0 defaults to 512.
	RemapPenalty uint64 `json:"remapPenalty,omitempty"`

	// Seed salts the per-device fault RNG; it is mixed with the run seed so
	// fault streams can be varied independently of the workload.
	Seed uint64 `json:"seed,omitempty"`
}

// Enabled reports whether any device has a fault source configured.
func (c *Config) Enabled() bool {
	if len(c.Tiers) > 0 {
		for i := range c.Tiers {
			if c.Tiers[i].Enabled() {
				return true
			}
		}
		return false
	}
	return c.Fast.Enabled() || c.Slow.Enabled()
}

// ForTier returns the fault params of engine tier i: Tiers[i] when the
// per-tier list is set (zero params beyond its length), otherwise the
// classic Fast/Slow mapping for tiers 0/1 and disabled for the rest.
func (c *Config) ForTier(i int) Params {
	if len(c.Tiers) > 0 {
		if i < len(c.Tiers) {
			return c.Tiers[i]
		}
		return Params{}
	}
	switch i {
	case 0:
		return c.Fast
	case 1:
		return c.Slow
	}
	return Params{}
}

// CorrectBits returns the effective ECC correction budget.
func (c *Config) CorrectBits() int {
	if c.ECCCorrectBits <= 0 {
		return 1
	}
	return c.ECCCorrectBits
}

// RetryPenaltyCycles returns the effective corrected-retry penalty.
func (c *Config) RetryPenaltyCycles() uint64 {
	if c.RetryPenalty == 0 {
		return 64
	}
	return c.RetryPenalty
}

// RemapPenaltyCycles returns the effective uncorrectable-remap penalty.
func (c *Config) RemapPenaltyCycles() uint64 {
	if c.RemapPenalty == 0 {
		return 512
	}
	return c.RemapPenalty
}

// Class is the ECC outcome of one access.
type Class uint8

// Access outcomes, ordered by severity.
const (
	// None: every line of the access read back clean.
	None Class = iota
	// Corrected: at least one line had flips within the ECC budget; the
	// engine retries the read with a timing penalty.
	Corrected
	// Uncorrectable: at least one line exceeded the ECC budget; the engine
	// quarantines the line and refetches from the remapped spare.
	Uncorrectable
)

func (c Class) String() string {
	switch c {
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	}
	return "none"
}

// Injector injects faults for one device. It is single-goroutine, like the
// device and the run that own it.
type Injector struct {
	p       Params
	correct int
	rng     *sim.RNG

	// wear counts writes per line (lineAddr/64 -> writes).
	wear map[uint64]uint64
	// quarantined lines have been remapped to healthy spares by the
	// controller; they no longer fault.
	quarantined map[uint64]struct{}

	suppress bool

	checked, flips        *sim.Counter
	corrected, uncorrect  *sim.Counter
	stuckHits, remaps     *sim.Counter
	retries               *sim.Counter
	wearWrites, wearSteps *sim.Counter
}

// NewInjector builds an injector for one device. seed should mix the run
// seed, the config salt and a per-device constant; scope is the device's
// stats scope (counters register under "<device>.fault.*").
func NewInjector(p Params, correctBits int, seed uint64, scope *sim.Stats) *Injector {
	s := scope.Scope("fault")
	return &Injector{
		p:           p,
		correct:     correctBits,
		rng:         sim.NewRNG(seed),
		wear:        make(map[uint64]uint64),
		quarantined: make(map[uint64]struct{}),
		checked:     s.Counter("checked"),
		flips:       s.Counter("flips"),
		corrected:   s.Counter("corrected"),
		uncorrect:   s.Counter("uncorrectable"),
		stuckHits:   s.Counter("stuckAtHits"),
		remaps:      s.Counter("remaps"),
		retries:     s.Counter("retries"),
		wearWrites:  s.Counter("wearWrites"),
		wearSteps:   s.Counter("wearSteps"),
	}
}

// Suppress toggles injection off during ECC retries and remap refetches (the
// retried read is served from corrected data or a healthy spare).
func (in *Injector) Suppress(on bool) { in.suppress = on }

// CountRetry records one corrected-error retry issued by the engine.
func (in *Injector) CountRetry() { in.retries.Inc() }

// OnWrite advances the wear counters for every line of a write. Wear is
// tracked for demand and background writes alike: fills, migrations and
// writebacks age NVM cells exactly like demand stores.
func (in *Injector) OnWrite(addr, size uint64) {
	if in.p.WearUnit == 0 {
		return
	}
	for line := addr / 64; line <= (addr+size-1)/64; line++ {
		in.wear[line]++
		in.wearWrites.Inc()
		if in.wear[line]%in.p.WearUnit == 0 {
			in.wearSteps.Inc()
		}
	}
}

// OnRead draws the fault outcome for a read of [addr, addr+size): per 64 B
// line it samples transient flips from the line's effective RBER (base +
// wear ramp), adds the stuck-at contribution, and classifies the flip count
// against the ECC budget. The access outcome is the worst line's. Suppressed
// or quarantined lines never fault.
func (in *Injector) OnRead(addr, size uint64) Class {
	if in.suppress || size == 0 {
		return None
	}
	worst := None
	for line := addr / 64; line <= (addr+size-1)/64; line++ {
		in.checked.Inc()
		if _, q := in.quarantined[line]; q {
			continue
		}
		flips := 0
		if ber := in.lineBER(line); ber > 0 {
			flips = in.rng.Poisson(float64(lineBits) * ber)
		}
		if in.stuckAt(line * 64) {
			// A stuck-at line fails beyond any ECC budget until remapped.
			in.stuckHits.Inc()
			flips += in.correct + 1
		}
		if flips == 0 {
			continue
		}
		in.flips.Add(uint64(flips))
		if flips <= in.correct {
			in.corrected.Inc()
			if worst < Corrected {
				worst = Corrected
			}
		} else {
			in.uncorrect.Inc()
			worst = Uncorrectable
		}
	}
	return worst
}

// lineBER returns the line's effective raw bit error rate: the transient
// base rate plus the wear-driven ramp.
func (in *Injector) lineBER(line uint64) float64 {
	ber := in.p.BER
	if in.p.WearUnit > 0 && in.p.WearRBERStep > 0 {
		if w := in.wear[line]; w >= in.p.WearUnit {
			ber += in.p.WearRBERStep * float64(w/in.p.WearUnit)
		}
	}
	return ber
}

func (in *Injector) stuckAt(addr uint64) bool {
	for _, r := range in.p.StuckAt {
		if r.contains(addr) {
			return true
		}
	}
	return false
}

// Quarantine remaps every line of [addr, addr+size) to a healthy spare after
// an uncorrectable error: the lines stop faulting and one remap is counted
// per newly quarantined line.
func (in *Injector) Quarantine(addr, size uint64) {
	if size == 0 {
		return
	}
	for line := addr / 64; line <= (addr+size-1)/64; line++ {
		if _, q := in.quarantined[line]; q {
			continue
		}
		in.quarantined[line] = struct{}{}
		in.remaps.Inc()
	}
}

// QuarantinedLines returns the number of lines currently remapped to spares.
func (in *Injector) QuarantinedLines() int { return len(in.quarantined) }
