package core

import "baryon/internal/hybrid"

// Access implements the Baryon access flow of Fig. 6. addr is line-aligned;
// for writes, data carries the new 64 B content (writes are LLC writebacks
// and are posted — they return immediately while their traffic is accounted
// in the background).
func (c *Controller) Access(now uint64, addr uint64, write bool, data []byte) hybrid.Result {
	c.seq++
	c.ctr.accesses.Inc()
	if write {
		c.ctr.writes.Inc()
	} else {
		c.ctr.reads.Inc()
	}

	b := c.blockOf(addr) % c.geom.osBlocks
	s := c.subOf(addr)
	line := int(addr % c.geom.subBytes / hybrid.CachelineSize)
	super := c.superOf(b)
	blkOff := c.blkOff(b)

	// Metadata phase: the stage tag array and the remap cache are searched
	// in parallel (Section III-D); stage hits have priority.
	stageT := now + c.cfg.StageTagLatency

	ssi := c.stageSetIdx(super)
	c.ageStageSet(ssi)
	sw, slot := c.stageFind(ssi, super, blkOff, s)
	if sw >= 0 {
		c.traceDecision(now, "stageHit")
		return c.caseStageHit(now, stageT, ssi, sw, slot, b, s, line, write, data)
	}

	// Remap path (needed because the stage tag array missed the sub-block).
	rmT := c.remapLookup(now, super)
	ri := &c.remap[b]

	switch {
	case ri.z:
		c.traceDecision(now, "zeroBlock")
		return c.caseZeroBlock(now, rmT, b, s, line, write, data)
	case ri.remap&(1<<s) != 0:
		c.traceDecision(now, "fastHit")
		return c.caseFastHit(now, rmT, ri, b, s, line, write, data)
	case ri.valid():
		c.traceDecision(now, "fastSubMiss")
		return c.caseFastSubMiss(now, rmT, b, s, line, write, data)
	}

	// The block is not committed; is it staged (some other sub-block)?
	if bw := c.stageFindBlock(ssi, super, blkOff); bw >= 0 {
		c.traceDecision(now, "stageSubMiss")
		return c.caseStageSubMiss(now, stageT, ssi, bw, b, s, line, write, data)
	}
	c.traceDecision(now, "blockMiss")
	return c.caseBlockMiss(now, maxU64(stageT, rmT), ssi, b, s, line, write, data)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// remapLookup models the remap cache probe and, on a miss, the off-chip
// table read in fast memory. It returns the cycle at which the remap entry
// is known.
func (c *Controller) remapLookup(now uint64, super hybrid.SuperBlockID) uint64 {
	t := now + c.cfg.RemapCacheLatency
	if c.rcache.Lookup(uint64(super)) {
		return t
	}
	t = c.eng.FastRead(t, c.tableBase+uint64(super)*16, 64)
	if c.rcache.Insert(uint64(super)) {
		// Dirty victim line written back to the off-chip table.
		c.eng.FillFast(now, c.tableBase+uint64(super)*16, 64)
	}
	return t
}

// metaUpdate records a remap-entry update: absorbed on chip when the line is
// cached, otherwise written through to the table in fast memory.
func (c *Controller) metaUpdate(now uint64, super hybrid.SuperBlockID) {
	if !c.rcache.MarkDirty(uint64(super)) {
		c.eng.FillFast(now, c.tableBase+uint64(super)*16, 64)
	}
}

// --- Case 1: block in stage area, sub-block hit ------------------------

func (c *Controller) caseStageHit(now, stageT uint64, ssi, sw, slot int, b uint64, s, line int, write bool, data []byte) hybrid.Result {
	sm, fr := c.stageDir.Way(ssi, sw)
	sm.LastUse = c.seq
	c.stageState[ssi].mruWay = sw
	c.ctr.stageHits.Inc()
	c.recordStageEvent(fr, false)

	rg := fr.tag.Slots[slot]

	if rg.Zero {
		if !write {
			c.ctr.servedZero.Inc()
			c.ctr.servedFast.Inc()
			c.ctr.latStageHit.Observe(stageT - now)
			return hybrid.Result{Done: stageT, ServedByFast: true, Data: zeroLine()}
		}
		// Writing non-zero data to an all-zero block: drop the zero
		// descriptor and restage the written sub-block with real content.
		c.store.WriteLine(b*c.geom.blockBytes+uint64(s)*c.geom.subBytes+uint64(line)*64, data)
		c.removeStageSlot(fr, slot)
		c.stageInsertRange(now, ssi, sw, b, s, true)
		return hybrid.Result{Done: now}
	}

	start := int(rg.SubOff)
	cf := int(rg.CF)
	lineInRange := (s-start)*c.geom.linesPerSub + line

	if !write {
		devAddr := c.stageFrameAddr(ssi, sw, slot)
		done := c.eng.FastRead(stageT, devAddr, c.readXferBytes(cf))
		if cf > 1 {
			done += c.cfg.DecompressLatency
			c.ctr.decompressions.Inc()
		}
		c.ctr.servedFast.Inc()
		c.ctr.latStageHit.Observe(done - now)
		lineData := fr.data[slot][lineInRange*64 : lineInRange*64+64]
		res := hybrid.Result{Done: done, ServedByFast: true, Data: lineData}
		res.Prefetched = c.chunkPrefetch(b, start, cf, lineInRange, fr.data[slot])
		return res
	}

	// Write hit in the stage area: update content, recompress; a CF change
	// removes and reinserts the range as if newly fetched (Section III-D).
	copy(fr.data[slot][lineInRange*64:], data)
	if c.rangeStillFits(fr.data[slot], cf) {
		fr.tag.Slots[slot].Dirty = true
		c.eng.FillFast(now, c.stageFrameAddr(ssi, sw, slot), 64)
		return hybrid.Result{Done: now}
	}
	c.ctr.stageWriteOverflow.Inc()
	c.restageOverflowedRange(now, ssi, sw, slot, b)
	return hybrid.Result{Done: now}
}

// rangeStillFits checks whether updated range content still compresses into
// one sub-block slot at its current CF.
func (c *Controller) rangeStillFits(content []byte, cf int) bool {
	if cf == 1 {
		return true
	}
	return c.rangeFits(content, cf)
}

// rangeFits adapts compress.RangeFits to the controller's sub-block size
// (256 B default, 64 B for Baryon-64B). The trial runs on the engine's
// fit-check arena, which fans the per-chunk checks of aligned mode across
// the shared worker pool; the verdict is byte-identical to evaluating them
// serially (pure predicates, index-slotted results).
func (c *Controller) rangeFits(content []byte, cf int) bool {
	if cf == 1 {
		return true
	}
	if c.cfg.CompressionOff {
		return false
	}
	a := c.arena
	a.Begin()
	g := c.addRangeFit(content, cf)
	a.Run()
	return a.Fits(g)
}

// addRangeFit queues one range's fit trial on the arena and returns its
// group handle: in aligned mode each 64*cf-byte chunk must independently
// compress into one cacheline (Fig. 7); otherwise the whole range must fit
// one sub-block slot. Callers batching several ranges (frame evictions)
// call this between Begin and Run; rangeFits wraps the single-range case.
func (c *Controller) addRangeFit(content []byte, cf int) int {
	if !c.cfg.CachelineAligned {
		return c.arena.AddWhole(content, int(c.geom.subBytes))
	}
	return c.arena.AddChunked(content, 64*cf, 64)
}

// restageOverflowedRange removes the overflowed range and reinserts its
// sub-blocks (with their freshest content) as newly fetched ranges.
func (c *Controller) restageOverflowedRange(now uint64, ssi, sw, slot int, b uint64) {
	fr := c.stageDir.Payload(ssi, sw)
	rg := fr.tag.Slots[slot]
	content := fr.data[slot]
	// Push the freshest content into the canonical store first; reinsertion
	// refetches from there.
	for i := 0; i < int(rg.CF); i++ {
		copy(c.slowSub(b, int(rg.SubOff)+i), content[uint64(i)*c.geom.subBytes:])
		c.clearHints(b, int(rg.SubOff)+i)
	}
	c.removeStageSlot(fr, slot)
	for i := 0; i < int(rg.CF); i++ {
		sub := int(rg.SubOff) + i
		if _, sl := c.stageFind(ssi, fr.tag.Super, int(rg.BlkOff), sub); sl >= 0 {
			continue // already covered by a reinserted neighbour
		}
		c.stageInsertRange(now, ssi, sw, b, sub, true)
	}
}

// --- Z-block service ----------------------------------------------------

// zeroLineBuf backs every zero-line result; consumers treat Result.Data as
// read-only, so one shared buffer serves all controllers.
var zeroLineBuf [hybrid.CachelineSize]byte

func zeroLine() []byte { return zeroLineBuf[:] }

// copyStoreLine copies the canonical content of one line into the
// controller's line scratch, valid until the next Access.
func (c *Controller) copyStoreLine(lineAddr uint64) []byte {
	copy(c.lineScratch[:], c.store.Bytes(lineAddr, 64))
	return c.lineScratch[:]
}

func (c *Controller) caseZeroBlock(now, rmT uint64, b uint64, s, line int, write bool, data []byte) hybrid.Result {
	if !write {
		c.ctr.servedZero.Inc()
		c.ctr.servedFast.Inc()
		c.ctr.fastHits.Inc()
		c.ctr.latFastHit.Observe(rmT - now)
		return hybrid.Result{Done: rmT, ServedByFast: true, Data: zeroLine()}
	}
	// A non-zero write invalidates Z; the block falls back to the slow
	// memory until it is staged again.
	ri := &c.remap[b]
	ri.z = false
	ri.way = -1
	c.metaUpdate(now, c.superOf(b))
	c.store.WriteLine(b*c.geom.blockBytes+uint64(s)*c.geom.subBytes+uint64(line)*64, data)
	c.clearHints(b, s)
	c.eng.WriteSlowBG(now, c.slowAddr(b, s), 64)
	return hybrid.Result{Done: now}
}

// --- Case 2: block committed, sub-block hit -----------------------------

func (c *Controller) caseFastHit(now, rmT uint64, ri *remapInfo, b uint64, s, line int, write bool, data []byte) hybrid.Result {
	super := c.superOf(b)
	si := c.setIdx(super)
	m, fr := c.fastDir.Way(si, int(ri.way))
	m.LastUse = c.seq
	idx := findOcc(fr, uint8(c.blkOff(b)), uint8(s))
	if idx < 0 {
		panic("core: remap bit set but no committed range")
	}
	rg := &fr.occ[idx]
	start := int(rg.subOff)
	cf := int(rg.cf)
	lineInRange := (s-start)*c.geom.linesPerSub + line
	c.ctr.fastHits.Inc()

	if !write {
		devAddr := c.frameAddr(si, int(ri.way), idx)
		done := c.eng.FastRead(rmT, devAddr, c.readXferBytes(cf))
		if cf > 1 {
			done += c.cfg.DecompressLatency
			c.ctr.decompressions.Inc()
		}
		c.ctr.servedFast.Inc()
		c.ctr.latFastHit.Observe(done - now)
		lineData := rg.data[lineInRange*64 : lineInRange*64+64]
		res := hybrid.Result{Done: done, ServedByFast: true, Data: lineData}
		res.Prefetched = c.chunkPrefetch(b, start, cf, lineInRange, rg.data)
		return res
	}

	// Committed layouts are frozen (Rule 4): a write that no longer fits
	// evicts the whole block to slow memory.
	copy(rg.data[lineInRange*64:], data)
	if c.rangeStillFits(rg.data, cf) {
		rg.dirty = true
		c.eng.FillFast(now, c.frameAddr(si, int(ri.way), idx), 64)
		return hybrid.Result{Done: now}
	}
	c.ctr.fastOverflow.Inc()
	c.evictCommittedBlock(now, si, int(ri.way), b, true)
	return hybrid.Result{Done: now}
}

// --- Case 4: block committed, sub-block miss -> bypass to slow ----------

func (c *Controller) caseFastSubMiss(now, rmT uint64, b uint64, s, line int, write bool, data []byte) hybrid.Result {
	c.ctr.fastSubMiss.Inc()
	lineAddr := b*c.geom.blockBytes + uint64(s)*c.geom.subBytes + uint64(line)*64
	var res hybrid.Result
	if write {
		c.store.WriteLine(lineAddr, data)
		c.clearHints(b, s)
		c.eng.WriteSlowBG(now, c.slowAddr(b, s)+uint64(line)*64, 64)
		res = hybrid.Result{Done: now}
	} else {
		done := c.eng.SlowRead(rmT, c.slowAddr(b, s)+uint64(line)*64, 64)
		c.ctr.servedSlow.Inc()
		c.ctr.latSlowPath.Observe(done - now)
		res = hybrid.Result{Done: done, Data: c.copyStoreLine(lineAddr)}
	}
	if !c.cfg.UseStageArea {
		// Without a stage area there is no frozen-layout rule to respect:
		// the new sub-block is inserted directly, re-sorting the frame
		// (the costly behaviour Fig. 13(c)'s "no stage" bar shows).
		c.directInsertSub(now, b, s, write)
	}
	return res
}

// --- Case 3: block staged, sub-block miss -------------------------------

func (c *Controller) caseStageSubMiss(now, stageT uint64, ssi, sw int, b uint64, s, line int, write bool, data []byte) hybrid.Result {
	fr := c.stageDir.Payload(ssi, sw)
	fr.tag.MissCnt = satAdd16(fr.tag.MissCnt, 1)
	st := &c.stageState[ssi]
	if st.mruWay == sw {
		st.mruMissCnt++
	}
	c.ctr.stageSubMiss.Inc()
	c.recordStageEvent(fr, true)

	lineAddr := b*c.geom.blockBytes + uint64(s)*c.geom.subBytes + uint64(line)*64
	var res hybrid.Result
	if write {
		c.store.WriteLine(lineAddr, data)
		c.clearHints(b, s)
		res = hybrid.Result{Done: now}
	} else {
		done := c.eng.SlowRead(stageT, c.slowAddr(b, s)+uint64(line)*64, 64)
		c.ctr.servedSlow.Inc()
		c.ctr.latSlowPath.Observe(done - now)
		res = hybrid.Result{Done: done, Data: c.copyStoreLine(lineAddr)}
	}
	// Background: stage the maximal compressible range around s (Rule 3
	// pins it to the same physical block as the block's other ranges).
	c.stageInsertRange(now, ssi, sw, b, s, write)
	return res
}

// --- Case 5: block miss everywhere --------------------------------------

func (c *Controller) caseBlockMiss(now, metaT uint64, ssi int, b uint64, s, line int, write bool, data []byte) hybrid.Result {
	c.stageState[ssi].mruMissCnt++
	c.ctr.blockMiss.Inc()

	lineAddr := b*c.geom.blockBytes + uint64(s)*c.geom.subBytes + uint64(line)*64
	var res hybrid.Result
	if write {
		c.store.WriteLine(lineAddr, data)
		c.clearHints(b, s)
		res = hybrid.Result{Done: now}
	} else {
		done := c.eng.SlowRead(metaT, c.slowAddr(b, s)+uint64(line)*64, 64)
		c.ctr.servedSlow.Inc()
		c.ctr.latSlowPath.Observe(done - now)
		res = hybrid.Result{Done: done, Data: c.copyStoreLine(lineAddr)}
	}

	if !c.cfg.UseStageArea {
		c.directInsert(now, b, s, write)
		return res
	}

	super := c.superOf(b)
	blkOff := c.blkOff(b)
	// Find stage ways already holding this super-block; pick one at random
	// when several exist (Section III-D, case 5). stageWays is at most 8,
	// so the candidate list lives on the stack.
	var candidates [8]int
	nc := 0
	for w := 0; w < c.geom.stageWays; w++ {
		if fr := c.stageDir.Payload(ssi, w); fr.tag.Valid && fr.tag.Super == super {
			candidates[nc] = w
			nc++
		}
	}
	var sw int
	switch nc {
	case 0:
		sw = c.stageAllocate(now, ssi, super)
		if sw < 0 {
			return res // stage allocation impossible (all ways mid-operation)
		}
	case 1:
		sw = candidates[0]
	default:
		sw = candidates[c.rng.Intn(nc)]
	}
	_ = blkOff
	c.stageInsertRange(now, ssi, sw, b, s, write)
	c.prefetchHintedRanges(now, ssi, sw, b, s)
	return res
}

// prefetchHintedRanges re-stages the ranges a previously evicted block left
// behind in compressed form: the CF2/CF4 bits kept by the fast-to-slow
// compressed writeback act as slow-to-stage prefetching hints when the block
// is fetched again (Section III-F).
func (c *Controller) prefetchHintedRanges(now uint64, ssi, sw int, b uint64, demanded int) {
	if !c.cfg.CompressedWriteback || !c.cfg.UseStageArea {
		return
	}

	super := c.superOf(b)
	blkOff := c.blkOff(b)
	for q := 0; q < 2; q++ {
		if c.cf4Hint[b]&(1<<q) != 0 && demanded/4 != q {
			if w, _ := c.stageFind(ssi, super, blkOff, q*4); w < 0 {
				c.stageInsertRange(now, ssi, sw, b, q*4, false)
			}
		}
	}
	for p := 0; p < 4; p++ {
		if c.cf2Hint[b]&(1<<p) != 0 && demanded/2 != p {
			if w, _ := c.stageFind(ssi, super, blkOff, p*2); w < 0 {
				c.stageInsertRange(now, ssi, sw, b, p*2, false)
			}
		}
	}
}

func satAdd16(a uint16, d uint16) uint16 {
	if a > 0xFFFF-d {
		return 0xFFFF
	}
	return a + d
}

// readXferBytes is the fast-memory transfer size of a compressed read hit:
// 64 B with cacheline-aligned compression, but the whole compressed
// sub-block without it, since the chunk boundaries inside the compressed
// stream are unknown (Fig. 7 left).
func (c *Controller) readXferBytes(cf int) uint64 {
	if cf <= 1 || c.cfg.CachelineAligned {
		return 64
	}
	return c.geom.subBytes
}

// chunkPrefetch returns the cachelines decoded alongside the demanded one.
// With cacheline-aligned compression one 64 B transfer decodes into cf
// lines; without it the whole compressed range must be transferred and every
// line of the range is decoded (bandwidth waste and LLC pollution, Fig. 7).
func (c *Controller) chunkPrefetch(b uint64, start, cf, lineInRange int, content []byte) []hybrid.PrefetchedLine {
	if cf <= 1 {
		return nil
	}
	rangeBase := b*c.geom.blockBytes + uint64(start)*c.geom.subBytes
	var first, count int
	if c.cfg.CachelineAligned {
		first = lineInRange / cf * cf
		count = cf
	} else {
		first = 0
		count = cf * c.geom.linesPerSub
	}
	out := c.prefetchScratch[:0]
	for k := first; k < first+count; k++ {
		if k == lineInRange {
			continue
		}
		out = append(out, hybrid.PrefetchedLine{
			Addr: rangeBase + uint64(k)*64,
			Data: content[k*64 : k*64+64],
		})
	}
	c.prefetchScratch = out
	return out
}

// clearHints invalidates the compressed-writeback hints covering sub s.
func (c *Controller) clearHints(b uint64, s int) {
	c.cf2Hint[b] &^= 1 << (s / 2)
	c.cf4Hint[b] &^= 1 << (s / 4)
}
