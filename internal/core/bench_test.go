package core

import (
	"testing"

	"baryon/internal/datagen"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

// BenchmarkAccess measures the controller's raw simulation throughput on a
// mixed read/write stream — the hot loop of every experiment in this
// repository.
func BenchmarkAccess(b *testing.B) {
	cfg := testConfig()
	mix := datagen.UniformMix()
	store := hybrid.NewStore(func(blk hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		datagen.Filler(mix)(uint64(blk), dst)
	})
	c := New(cfg, store, sim.NewStats())
	rng := sim.NewRNG(1)
	footprint := cfg.OSBlocks() * cfg.BlockBytes / 4
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		addr := rng.Uint64n(footprint) &^ 63
		if i%4 == 0 {
			c.Access(now, addr, true, data)
		} else {
			c.Access(now, addr, false, nil)
		}
		now += 40
	}
}

// BenchmarkAccessHot measures the fast-path (hit-dominated) throughput.
func BenchmarkAccessHot(b *testing.B) {
	cfg := testConfig()
	store := hybrid.NewStore(nil)
	cfg.ZeroBlockOpt = false
	c := New(cfg, store, sim.NewStats())
	// Warm a small hot set.
	for blk := uint64(0); blk < 32; blk++ {
		for s := uint64(0); s < 4; s++ {
			c.Access(blk*100, blk*cfg.BlockBytes+s*256, false, nil)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := uint64(1 << 20)
	for i := 0; i < b.N; i++ {
		blk := uint64(i) % 32
		c.Access(now, blk*cfg.BlockBytes+uint64(i%4)*256, false, nil)
		now += 40
	}
}
