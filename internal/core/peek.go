package core

import "baryon/internal/hybrid"

// PeekLine returns the current canonical content of the 64 B line at addr
// with no timing or statistics side effects. It walks the same priority
// order as the access flow (stage area, then committed fast memory, then
// slow memory), so integrity tests can compare the full data plane against a
// functional reference.
func (c *Controller) PeekLine(addr uint64) []byte {
	addr = hybrid.LineAddr(addr)
	b := c.blockOf(addr) % c.geom.osBlocks
	s := c.subOf(addr)
	line := int(addr % c.geom.subBytes / hybrid.CachelineSize)
	super := c.superOf(b)
	blkOff := c.blkOff(b)

	ssi := c.stageSetIdx(super)
	if w, slot := c.stageFind(ssi, super, blkOff, s); w >= 0 {
		fr := c.stageDir.Payload(ssi, w)
		rg := fr.tag.Slots[slot]
		if rg.Zero {
			return zeroLine()
		}
		lineInRange := (s-int(rg.SubOff))*c.geom.linesPerSub + line
		return fr.data[slot][lineInRange*64 : lineInRange*64+64]
	}

	ri := &c.remap[b]
	switch {
	case ri.z:
		return zeroLine()
	case ri.remap&(1<<s) != 0:
		si := c.setIdx(super)
		_, fr := c.fastDir.Way(si, int(ri.way))
		idx := findOcc(fr, uint8(blkOff), uint8(s))
		if idx < 0 {
			panic("core: PeekLine found remap bit without committed range")
		}
		rg := &fr.occ[idx]
		lineInRange := (s-int(rg.subOff))*c.geom.linesPerSub + line
		return rg.data[lineInRange*64 : lineInRange*64+64]
	}
	return c.store.Bytes(addr, 64)
}

// CheckInvariants validates the structural rules on demand (tests call this
// after access storms):
//
//	Rule 1: every frame holds ranges of a single super-block (by
//	        construction of the types; checked via remap consistency),
//	Rule 3: all committed sub-blocks of a block live in one frame,
//	Rule 4: committed layouts are sorted by (blkOff, subOff),
//	plus: remap entries and frame occupancy agree.
//
// It returns a description of the first violation, or "".
func (c *Controller) CheckInvariants() string {
	for si := 0; si < int(c.geom.sets); si++ {
		for wi := 0; wi < c.geom.ways; wi++ {
			m, f := c.fastDir.Way(si, wi)
			if !m.Valid {
				continue
			}
			if len(f.occ) > 8 {
				return "frame holds more than 8 slots"
			}
			for i := 1; i < len(f.occ); i++ {
				a, b := f.occ[i-1], f.occ[i]
				if a.blkOff > b.blkOff || (a.blkOff == b.blkOff && a.subOff >= b.subOff) {
					return "frame occupancy not sorted (Rule 4)"
				}
			}
			for i := range f.occ {
				rg := &f.occ[i]
				b := c.blockID(hybrid.SuperBlockID(m.Key), rg.blkOff)
				ri := &c.remap[b]
				if ri.way != int32(wi) {
					return "occupied range's remap entry points elsewhere (Rule 3)"
				}
				for s := rg.subOff; s < rg.subOff+rg.cf; s++ {
					if ri.remap&(1<<s) == 0 {
						return "occupied sub-block missing from remap bits"
					}
				}
			}
		}
	}
	// Every set remap bit must have a backing range.
	for b := range c.remap {
		ri := &c.remap[b]
		if ri.remap == 0 || ri.z {
			continue
		}
		super := c.superOf(uint64(b))
		m, f := c.fastDir.Way(c.setIdx(super), int(ri.way))
		if !m.Valid || hybrid.SuperBlockID(m.Key) != super {
			return "remap entry points at a frame of another super-block (Rule 1)"
		}
		for s := 0; s < 8; s++ {
			if ri.remap&(1<<s) != 0 && findOcc(f, uint8(c.blkOff(uint64(b))), uint8(s)) < 0 {
				return "remap bit set without a committed range"
			}
		}
	}
	return ""
}
