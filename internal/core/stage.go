package core

import (
	"baryon/internal/hybrid"
	"baryon/internal/metadata"
)

// This file implements the stage area of Section III-E: range staging with
// slow-to-stage prefetching, the two-level (FIFO sub-block / LRU block)
// replacement policy, and counter ageing.

// ageStageSet right-shifts the set's miss counters every 10000 accesses, as
// the paper's ageing rule prescribes.
func (c *Controller) ageStageSet(ssi int) {
	st := &c.stageState[ssi]
	st.accSinceAge++
	if st.accSinceAge < c.cfg.StageAgeInterval {
		return
	}
	st.accSinceAge = 0
	st.mruMissCnt >>= 1
	for w := 0; w < c.geom.stageWays; w++ {
		c.stageDir.Payload(ssi, w).tag.MissCnt >>= 1
	}
}

// stageFind locates the (way, slot) whose range covers sub-block s of the
// block at blkOff within super, or (-1, -1).
func (c *Controller) stageFind(ssi int, super hybrid.SuperBlockID, blkOff, s int) (int, int) {
	for w := 0; w < c.geom.stageWays; w++ {
		fr := c.stageDir.Payload(ssi, w)
		if !fr.tag.Valid || fr.tag.Super != super {
			continue
		}
		if slot := fr.tag.FindRange(blkOff, s); slot >= 0 {
			return w, slot
		}
	}
	return -1, -1
}

// stageFindBlock returns a way staging any range of the given block, or -1.
// Rule 3 guarantees at most one such way.
func (c *Controller) stageFindBlock(ssi int, super hybrid.SuperBlockID, blkOff int) int {
	for w := 0; w < c.geom.stageWays; w++ {
		fr := c.stageDir.Payload(ssi, w)
		if fr.tag.Valid && fr.tag.Super == super && fr.tag.HasBlock(blkOff) {
			return w
		}
	}
	return -1
}

// removeStageSlot clears one slot (no writeback; callers handle data) and
// recycles its range buffer. Callers that move the buffer to another frame
// must nil fr.data[slot] first, or the moved buffer would be recycled while
// still referenced.
func (c *Controller) removeStageSlot(fr *stageFrame, slot int) {
	fr.tag.Slots[slot] = metadata.Range{}
	c.freeRangeBuf(fr.data[slot])
	fr.data[slot] = nil
}

// stageVictimSlot applies the sub-block half of the two-level policy
// (hybrid.SlotFIFO): it frees and returns a slot in the frame, writing the
// victim range back to slow memory if dirty.
func (c *Controller) stageVictimSlot(now uint64, ssi, sw int) int {
	fr := c.stageDir.Payload(ssi, sw)
	slot, next := hybrid.SlotFIFO(fr.tag.FIFO, 8, func(i int) bool { return fr.tag.Slots[i].Valid })
	fr.tag.FIFO = next
	c.ctr.subReplacements.Inc()
	c.writebackStageSlot(now, fr, slot)
	c.removeStageSlot(fr, slot)
	return slot
}

// writebackStageSlot pushes a dirty range's content to the canonical store
// and charges the slow-memory write traffic (compressed when the
// optimisation of Section III-F applies). The fit trial runs lazily;
// batched eviction paths precompute it and call writebackStageSlotFit.
func (c *Controller) writebackStageSlot(now uint64, fr *stageFrame, slot int) {
	rg := fr.tag.Slots[slot]
	if !rg.Valid || rg.Zero || !rg.Dirty {
		return
	}
	fit := c.cfg.CompressedWriteback && int(rg.CF) > 1 && c.rangeFits(fr.data[slot], int(rg.CF))
	c.writebackStageSlotFit(now, fr, slot, fit)
}

// writebackStageSlotFit is writebackStageSlot with the compressed-writeback
// fit verdict precomputed (frame evictions batch the trials of all dirty
// slots through the arena before writing any of them back).
func (c *Controller) writebackStageSlotFit(now uint64, fr *stageFrame, slot int, fit bool) {
	rg := fr.tag.Slots[slot]
	if !rg.Valid || rg.Zero || !rg.Dirty {
		return
	}
	b := c.blockID(fr.tag.Super, rg.BlkOff)
	content := fr.data[slot]
	for i := 0; i < int(rg.CF); i++ {
		copy(c.slowSub(b, int(rg.SubOff)+i), content[uint64(i)*c.geom.subBytes:])
		c.clearHints(b, int(rg.SubOff)+i)
	}
	c.writeRangeToSlowFit(now, b, int(rg.SubOff), int(rg.CF), fit)
}

// writeRangeToSlow accounts the slow-device traffic of writing a range back,
// keeping it compressed when enabled and recording the CF hint for future
// slow-to-stage prefetching.
func (c *Controller) writeRangeToSlow(now uint64, b uint64, subOff, cf int, content []byte) {
	fit := c.cfg.CompressedWriteback && cf > 1 && c.rangeFits(content, cf)
	c.writeRangeToSlowFit(now, b, subOff, cf, fit)
}

// writeRangeToSlowFit is writeRangeToSlow with the fit trial hoisted out,
// so eviction paths can evaluate a whole frame's trials in one parallel
// arena batch. The verdict is a pure function of the range content, which
// the caller reads before any store mutation, so precomputing it cannot
// change the outcome.
func (c *Controller) writeRangeToSlowFit(now uint64, b uint64, subOff, cf int, compressed bool) {
	bytes := uint64(cf) * c.geom.subBytes
	if compressed {
		bytes = c.geom.subBytes
		switch cf {
		case 2:
			c.cf2Hint[b] |= 1 << (subOff / 2)
		case 4:
			c.cf4Hint[b] |= 1 << (subOff / 4)
		}
		c.ctr.compressedWritebacks.Inc()
	}
	wbDone := c.eng.WriteSlowBG(now, c.slowAddr(b, subOff), bytes)
	c.ctr.latWriteback.Observe(wbDone - now)
	if t := c.eng.Tracer(); t != nil {
		t.Span("writeback", "", now, wbDone)
	}
}

// chooseRange picks the maximal contiguous aligned range containing sub s of
// block b that (a) does not overlap sub-blocks already staged for b and
// (b) compresses into one sub-block slot. It returns (start, cf).
func (c *Controller) chooseRange(ssi int, super hybrid.SuperBlockID, blkOff int, b uint64, s int) (int, int) {
	if c.cfg.CompressionOff {
		return s, 1
	}
	present := func(sub int) bool {
		w, slot := c.stageFind(ssi, super, blkOff, sub)
		return w >= 0 && slot >= 0
	}
	for _, cf := range []int{4, 2} {
		start := s &^ (cf - 1)
		ok := true
		for i := start; i < start+cf; i++ {
			if i != s && present(i) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// A matching CF hint means the data already sits compressed and
		// grouped in slow memory; no trial is needed (Section III-F).
		hinted := (cf == 2 && c.cf2Hint[b]&(1<<(start/2)) != 0) ||
			(cf == 4 && c.cf4Hint[b]&(1<<(start/4)) != 0)
		if hinted {
			return start, cf
		}
		content := c.rangeContentScratch(b, start, cf)
		if c.rangeFits(content, cf) {
			return start, cf
		}
	}
	return s, 1
}

// rangeContent copies the canonical content of cf sub-blocks starting at
// subOff of block b. The returned buffer is owned by the caller and may be
// kept (range buffers move between frames and must own their storage); it
// comes from the controller's per-CF free list when one is available.
func (c *Controller) rangeContent(b uint64, subOff, cf int) []byte {
	return c.fillRange(c.newRangeBuf(cf), b, subOff, cf)
}

// newRangeBuf returns an owned buffer of cf sub-blocks, recycling a freed
// one when possible. Buffers are pooled by exact length (cf in {1,2,4}), so
// flat mode's many CF-1 resident buffers never bloat to 4*subBytes. Pool
// misses carve from a per-CF slab, so growing the resident set costs one
// allocation per rangeSlabBufs buffers rather than one per buffer.
func (c *Controller) newRangeBuf(cf int) []byte {
	pool := &c.rangePool[cf]
	if n := len(*pool); n > 0 {
		buf := (*pool)[n-1]
		(*pool)[n-1] = nil
		*pool = (*pool)[:n-1]
		return buf
	}
	size := uint64(cf) * c.geom.subBytes
	slab := &c.rangeSlab[cf]
	if uint64(len(*slab)) < size {
		*slab = make([]byte, rangeSlabBufs*size)
	}
	buf := (*slab)[:size:size]
	*slab = (*slab)[size:]
	return buf
}

// rangeSlabBufs is the number of range buffers carved from one slab chunk.
const rangeSlabBufs = 64

// freeRangeBuf returns a dead range buffer to its CF class's free list. The
// buffer may still back the previous Access's Result.Data — reuse only
// happens through a later rangeContent call, which the hybrid.Result
// lifetime contract permits.
func (c *Controller) freeRangeBuf(buf []byte) {
	if buf == nil {
		return
	}
	cf := uint64(len(buf)) / c.geom.subBytes
	c.rangePool[cf] = append(c.rangePool[cf], buf)
}

// rangeContentScratch assembles the same bytes into the controller's trial
// scratch. Only fit trials may use it — the buffer is recycled on the next
// trial, so it must never be installed in a frame.
func (c *Controller) rangeContentScratch(b uint64, subOff, cf int) []byte {
	if c.trialScratch == nil {
		c.trialScratch = make([]byte, 4*c.geom.subBytes)
	}
	return c.fillRange(c.trialScratch[:uint64(cf)*c.geom.subBytes], b, subOff, cf)
}

func (c *Controller) fillRange(out []byte, b uint64, subOff, cf int) []byte {
	for i := 0; i < cf; i++ {
		copy(out[uint64(i)*c.geom.subBytes:], c.slowSub(b, subOff+i))
	}
	return out
}

// blockAllZero reports whether block b's full canonical content is zero.
func (c *Controller) blockAllZero(b uint64) bool {
	for s := 0; s < 8; s++ {
		if !c.comp.IsZero(c.slowSub(b, s)) {
			return false
		}
	}
	return true
}

// stageInsertRange stages the maximal range around sub s of block b into the
// stage frame (ssi, sw), applying the two-level replacement policy when the
// frame is full. dirty marks freshly written data.
func (c *Controller) stageInsertRange(now uint64, ssi, sw int, b uint64, s int, dirty bool) {
	super := c.superOf(b)
	blkOff := c.blkOff(b)
	// Rule 3: if the block already has staged ranges, they pin the frame —
	// re-resolve rather than trusting the caller, since an intervening
	// block-level replacement may have moved them.
	if pinned := c.stageFindBlock(ssi, super, blkOff); pinned >= 0 {
		sw = pinned
	}
	fr := c.stageDir.Payload(ssi, sw)
	if !fr.tag.Valid || fr.tag.Super != super {
		panic("core: stageInsertRange into a frame of another super-block")
	}

	// Z-bit: an all-zero block is staged as a single descriptor with no
	// data movement at all.
	if c.cfg.ZeroBlockOpt && !dirty && !fr.tag.HasBlock(blkOff) && c.blockAllZero(b) {
		slot := fr.tag.FreeSlot()
		if slot < 0 {
			slot = c.stageFullSlot(now, ssi, &sw, b)
			if slot < 0 {
				return
			}
			fr = c.stageDir.Payload(ssi, sw)
		}
		fr.tag.Slots[slot] = metadata.Range{Valid: true, CF: 4, Zero: true, BlkOff: uint8(blkOff)}
		fr.data[slot] = nil
		return
	}

	start, cf := c.chooseRange(ssi, super, blkOff, b, s)
	content := c.rangeContent(b, start, cf)

	slot := fr.tag.FreeSlot()
	if slot < 0 {
		slot = c.stageFullSlot(now, ssi, &sw, b)
		if slot < 0 {
			return
		}
		fr = c.stageDir.Payload(ssi, sw)
	}

	fr.tag.Slots[slot] = metadata.Range{
		Valid: true, CF: uint8(cf), Dirty: dirty,
		BlkOff: uint8(blkOff), SubOff: uint8(start),
	}
	fr.data[slot] = content
	c.ctr.rangeFetches.Inc()
	c.ctr.rangeCFSum.Add(uint64(cf))

	// Traffic: the range is fetched from slow memory (one compressed
	// sub-block when a CF hint applies, the raw range otherwise) and written
	// into the stage region of fast memory.
	fetch := uint64(cf) * c.geom.subBytes
	if c.cfg.CompressedWriteback &&
		((cf == 2 && c.cf2Hint[b]&(1<<(start/2)) != 0) || (cf == 4 && c.cf4Hint[b]&(1<<(start/4)) != 0)) {
		fetch = c.geom.subBytes
	}
	if fetch > 64 {
		c.eng.FetchSlow(now, c.slowAddr(b, start), fetch-64) // demanded line already charged
	}
	c.eng.FillFast(now, c.stageFrameAddr(ssi, sw, slot), c.geom.subBytes)
}

// stageFullSlot resolves a full target frame with the two-level policy of
// Fig. 8: if the frame is the set's block-level victim, do a sub-block
// (SlotFIFO) replacement inside it; otherwise evict the victim way at block
// level (through the selective commit policy), re-tag it for this
// super-block, move block b's existing ranges into it (Rule 3), and return
// a free slot there. sw is updated to the frame finally holding the block.
// Returns -1 when the single-way corner case cannot free a slot.
func (c *Controller) stageFullSlot(now uint64, ssi int, sw *int, b uint64) int {
	lru := c.stageDir.Victim(ssi, c.stageRep)

	if !c.cfg.TwoLevelReplacement || lru == *sw || c.geom.stageWays == 1 {
		// Sub-block-level replacement within the current frame.
		return c.stageVictimSlot(now, ssi, *sw)
	}

	// Block-level replacement: the victim way is committed or evicted, then
	// reused for this super-block.
	c.ctr.blockReplacements.Inc()
	c.finishStageFrame(now, ssi, lru)

	super := c.superOf(b)
	blkOff := c.blkOff(b)
	oldW := *sw
	old := c.stageDir.Payload(ssi, oldW)
	nm, nw := c.stageDir.Way(ssi, lru)
	nw.tag = metadata.StageTag{Valid: true, Super: super}
	nw.data = [8][]byte{}
	*nm = hybrid.WayMeta{Key: uint64(super), Valid: true, LastUse: c.seq, AllocSeq: c.seq}
	nw.events = nw.events[:0]
	nw.accesses = 0
	nw.instStart = c.instructionsSeen

	// Move b's ranges to the new frame to keep Rule 3 (the move also gives
	// re-grouping a chance to reduce fragmentation, as the paper notes).
	// Slots are scanned in ascending order, matching BlockRanges.
	slot := 0
	for oldSlot := range old.tag.Slots {
		if r := old.tag.Slots[oldSlot]; !r.Valid || int(r.BlkOff) != blkOff {
			continue
		}
		nw.tag.Slots[slot] = old.tag.Slots[oldSlot]
		nw.data[slot] = old.data[oldSlot]
		old.data[oldSlot] = nil // ownership moved; removeStageSlot must not recycle
		c.removeStageSlot(old, oldSlot)
		// Intra-fast-memory move traffic.
		c.eng.FillFast(now, c.stageFrameAddr(ssi, lru, slot), c.geom.subBytes)
		slot++
	}
	*sw = lru
	if slot >= 8 {
		// The block alone fills the frame; fall back to a sub-block victim.
		return c.stageVictimSlot(now, ssi, lru)
	}
	return slot // first free slot after the moved ranges
}

// stageAllocate performs a block-level replacement to obtain a fresh frame
// for super (case 5 with no frame holding the super-block). It returns the
// way index, or -1 if allocation failed.
func (c *Controller) stageAllocate(now uint64, ssi int, super hybrid.SuperBlockID) int {
	w := c.stageDir.Victim(ssi, c.stageRep)
	m, fr := c.stageDir.Way(ssi, w)
	if fr.tag.Valid {
		c.ctr.blockReplacements.Inc()
		c.finishStageFrame(now, ssi, w)
	}
	fr.tag = metadata.StageTag{Valid: true, Super: super}
	fr.data = [8][]byte{}
	*m = hybrid.WayMeta{Key: uint64(super), Valid: true, LastUse: c.seq, AllocSeq: c.seq}
	fr.events = fr.events[:0]
	fr.accesses = 0
	fr.instStart = c.instructionsSeen
	return w
}
