package core

import (
	"math/bits"

	"baryon/internal/config"
	"baryon/internal/hybrid"
	"baryon/internal/metadata"
)

// This file implements the selective commit policy (Section III-E, Eq. 1),
// the commit operation itself (layout sorting and the compact remap format
// of Rule 4), fast-area evictions, and the flat-scheme swap mechanics of
// Section III-F.

// finishStageFrame retires stage frame (ssi, w): it either commits the frame
// to the cache/flat area or evicts it to slow memory, then clears it.
func (c *Controller) finishStageFrame(now uint64, ssi, w int) {
	sm, fr := c.stageDir.Way(ssi, w)
	if !fr.tag.Valid {
		return
	}
	c.emitStagePhase(fr)

	si := c.setIdx(fr.tag.Super)

	slotsNeeded := 0
	dirtyStage := 0
	for _, rg := range fr.tag.Slots {
		if rg.Valid && !rg.Zero {
			slotsNeeded++
			if rg.Dirty {
				dirtyStage++
			}
		}
	}

	// Target selection: append into a frame already holding this super-block
	// when it has room (this is how one super-block ends up spanning
	// multiple physical blocks only when needed), else the area's
	// replacement victim (LRU for low-associative, FIFO for fully
	// associative, Section III-E).
	appendW := -1
	for wi := 0; wi < c.geom.ways; wi++ {
		m, f := c.fastDir.Way(si, wi)
		if m.Valid && hybrid.SuperBlockID(m.Key) == fr.tag.Super &&
			len(f.occ)+slotsNeeded <= 8 {
			appendW = wi
			break
		}
	}
	victimW := appendW
	dirtyVictim := 0
	if victimW < 0 {
		victimW = c.fastDir.Victim(si, c.fastRep)
		vm, v := c.fastDir.Way(si, victimW)
		if vm.Valid {
			if c.cfg.Mode == config.ModeFlat {
				dirtyVictim = len(v.occ) // all sub-blocks swap in flat mode
			} else {
				for _, rg := range v.occ {
					if rg.dirty {
						dirtyVictim++
					}
				}
			}
		}
	}

	if c.shouldCommit(ssi, fr, dirtyStage, dirtyVictim) &&
		c.flatCommitFeasible(si, fr, victimW, appendW >= 0) {
		c.commitStageFrame(now, ssi, w, si, victimW, appendW >= 0)
	} else {
		c.evictStageFrame(now, ssi, w)
	}
	fr.tag = metadata.StageTag{}
	// Commit moved its slots' buffers into the committed frame (and nil'd
	// them); whatever is left is dead and goes back to the pool.
	for slot := range fr.data {
		c.freeRangeBuf(fr.data[slot])
		fr.data[slot] = nil
	}
	fr.events = fr.events[:0]
	sm.Valid = false
}

// shouldCommit evaluates Eq. 1: B = k*(MRUMissCnt/assoc - MissCnt) +
// (#Dirty_stage - #Dirty_cache/flat); commit when B >= 0.
func (c *Controller) shouldCommit(ssi int, fr *stageFrame, dirtyStage, dirtyVictim int) bool {
	if c.cfg.CommitAll {
		return true
	}
	stability := float64(c.stageState[ssi].mruMissCnt)/float64(c.geom.stageWays) - float64(fr.tag.MissCnt)
	if c.cfg.CommitK < 0 { // k = infinity: stability only
		return stability >= 0
	}
	benefit := c.cfg.CommitK*stability + float64(dirtyStage-dirtyVictim)
	return benefit >= 0
}

// flatCommitFeasible verifies the flat-scheme invariant of Section III-F:
// swapping the victim's original content out requires at least one block's
// worth of free slow sub-block spaces within the committing super-block.
func (c *Controller) flatCommitFeasible(si int, fr *stageFrame, victimW int, appending bool) bool {
	if c.cfg.Mode != config.ModeFlat || appending {
		return true
	}
	vm, v := c.fastDir.Way(si, victimW)
	if !vm.Valid {
		return true // empty frame, nothing to swap out
	}
	// Victim holds its native block and that block is resident: its content
	// must spread into the super-block's freed slow spaces.
	if !c.frameHoldsNative(vm, v) {
		return true // victim data returns to its original slow locations
	}
	free := 0
	for _, rg := range fr.tag.Slots {
		if !rg.Valid {
			continue
		}
		if rg.Zero {
			free += config.SubBlocksPerBlock
		} else {
			free += int(rg.CF)
		}
	}
	// Plus spaces freed by blocks of this super already committed elsewhere.
	base := uint64(fr.tag.Super) * c.geom.superBlocks
	for off := uint64(0); off < c.geom.superBlocks; off++ {
		b := base + off
		if b < uint64(len(c.remap)) {
			ri := &c.remap[b]
			if ri.z {
				free += config.SubBlocksPerBlock
			} else {
				free += bits.OnesCount8(ri.remap)
			}
		}
	}
	if free < config.SubBlocksPerBlock {
		c.ctr.commitAborts.Inc()
		return false
	}
	return true
}

// frameHoldsNative reports whether a flat-mode frame still holds its native
// block's content.
func (c *Controller) frameHoldsNative(m *hybrid.WayMeta, f *fastFrame) bool {
	if c.cfg.Mode != config.ModeFlat {
		return false
	}
	ri := &c.remap[f.native]
	return ri.remap != 0 && m.Valid && uint64(c.superOf(f.native)) == m.Key &&
		findOcc(f, uint8(c.blkOff(f.native)), 0) >= 0
}

// evictStageFrame writes the frame's dirty ranges back to slow memory. The
// compressed-writeback fit trials of every dirty slot are evaluated first
// in one parallel arena batch, then the writebacks consume the verdicts in
// slot order — the same order and outcomes as trial-per-slot serially.
func (c *Controller) evictStageFrame(now uint64, ssi, w int) {
	fr := c.stageDir.Payload(ssi, w)
	var fits [8]bool
	c.stageFitBatch(fr, &fits)
	for slot := range fr.tag.Slots {
		c.writebackStageSlotFit(now, fr, slot, fits[slot])
	}
	c.ctr.evictsToSlow.Inc()
}

// stageFitBatch precomputes the compressed-writeback fit verdict of every
// dirty CF>1 slot of fr in a single arena batch. Slots whose writeback
// cannot be compressed (clean, zero, CF 1, or the optimisation disabled)
// keep fits[slot] == false, matching the short-circuit of the lazy path.
func (c *Controller) stageFitBatch(fr *stageFrame, fits *[8]bool) {
	if !c.cfg.CompressedWriteback || c.cfg.CompressionOff {
		return
	}
	a := c.arena
	a.Begin()
	var groups [8]int
	queued := false
	for slot, rg := range fr.tag.Slots {
		groups[slot] = -1
		if !rg.Valid || rg.Zero || !rg.Dirty || rg.CF <= 1 {
			continue
		}
		groups[slot] = c.addRangeFit(fr.data[slot], int(rg.CF))
		queued = true
	}
	if !queued {
		return
	}
	a.Run()
	for slot, g := range groups {
		if g >= 0 {
			fits[slot] = a.Fits(g)
		}
	}
}

// commitStageFrame moves the frame's contents into the cache/flat area:
// the victim frame is evicted (or an existing same-super frame appended to),
// the ranges are sorted into the frozen dense layout of Rule 4, and the
// remap entries are rewritten in the compact format.
func (c *Controller) commitStageFrame(now uint64, ssi, w, si, targetW int, appending bool) {
	fr := c.stageDir.Payload(ssi, w)
	tm, target := c.fastDir.Way(si, targetW)

	if !appending && tm.Valid {
		c.evictFastFrame(now, si, targetW)
	}

	commitDone := now
	if !appending || !tm.Valid {
		*tm = hybrid.WayMeta{Key: uint64(fr.tag.Super), Valid: true}
		target.occ = resetOcc(target.occ) // keep capacity; eviction freed the buffers
	} else {
		// Appending rewrites the frame's dense layout (a re-sort).
		c.ctr.resortRewrites.Inc()
		commitDone = maxU64(commitDone,
			c.eng.FillFast(now, c.frameAddr(si, targetW, 0), uint64(len(target.occ))*c.geom.subBytes))
	}
	tm.LastUse = c.seq
	tm.AllocSeq = c.seq
	c.ensureOccCap(target)

	// Gather the committed ranges; Z-descriptors become Z remap entries.
	for slot, rg := range fr.tag.Slots {
		if !rg.Valid {
			continue
		}
		if rg.Zero {
			b := c.blockID(fr.tag.Super, rg.BlkOff)
			ri := &c.remap[b]
			*ri = remapInfo{z: true, way: -1}
			continue
		}
		target.occ = append(target.occ, occRange{
			blkOff: rg.BlkOff, subOff: rg.SubOff, cf: rg.CF,
			dirty: rg.Dirty, data: fr.data[slot],
		})
		fr.data[slot] = nil // ownership moved to the committed frame
		// Traffic: stage read + cache/flat-area write, both in fast memory.
		commitDone = maxU64(commitDone,
			c.eng.ReadFastBG(now, c.stageFrameAddr(ssi, w, slot), c.geom.subBytes))
	}
	sortOcc(target.occ)
	commitDone = maxU64(commitDone,
		c.eng.FillFast(now, c.frameAddr(si, targetW, 0), uint64(len(target.occ))*c.geom.subBytes))
	c.ctr.latCommit.Observe(commitDone - now)
	if t := c.eng.Tracer(); t != nil {
		t.Span("commit", "", now, commitDone)
	}

	// Rewrite the remap entries of every block present in the target frame.
	c.rebuildRemap(si, targetW)
	c.metaUpdate(now, fr.tag.Super)
	c.ctr.commits.Inc()
	for wi, m := range c.fastDir.SetMeta(si) {
		if wi != targetW && m.Valid && hybrid.SuperBlockID(m.Key) == fr.tag.Super {
			c.ctr.multiFrameSupers.Inc()
			break
		}
	}
}

// sortOcc orders ranges by (blkOff, subOff): the frozen sorted layout.
// Insertion sort — a frame holds at most 8 ranges and sort.Slice's
// reflection swapper allocates per call. Keys are unique within a frame, so
// the order is identical to any comparison sort.
func sortOcc(occ []occRange) {
	for i := 1; i < len(occ); i++ {
		for j := i; j > 0 && occLess(&occ[j], &occ[j-1]); j-- {
			occ[j], occ[j-1] = occ[j-1], occ[j]
		}
	}
}

func occLess(a, b *occRange) bool {
	if a.blkOff != b.blkOff {
		return a.blkOff < b.blkOff
	}
	return a.subOff < b.subOff
}

// ensureOccCap gives a frame its permanent occ backing on first touch,
// carved from the controller's shared slab. A frame holds at most
// SubBlocksPerBlock ranges, so the capacity never needs to grow and the
// append sites below never reallocate.
func (c *Controller) ensureOccCap(f *fastFrame) {
	if cap(f.occ) != 0 {
		return
	}
	const ways = config.SubBlocksPerBlock
	if len(c.occSlab) < ways {
		c.occSlab = make([]occRange, 64*ways)
	}
	f.occ = c.occSlab[:0:ways]
	c.occSlab = c.occSlab[ways:]
}

// resetOcc drops every entry (the caller has dealt with the buffers) and
// returns the empty slice with its capacity kept for reuse.
func resetOcc(occ []occRange) []occRange {
	for i := range occ {
		occ[i] = occRange{}
	}
	return occ[:0]
}

// findOcc returns the index of the range covering (blkOff, sub), or -1.
func findOcc(f *fastFrame, blkOff, sub uint8) int {
	for i := range f.occ {
		rg := &f.occ[i]
		if rg.blkOff == blkOff && sub >= rg.subOff && sub < rg.subOff+rg.cf {
			return i
		}
	}
	return -1
}

// rebuildRemap recomputes the remap entries of every block stored in frame
// (si, way) from its occupancy (the architectural metadata the compact
// format encodes).
func (c *Controller) rebuildRemap(si, way int) {
	m, f := c.fastDir.Way(si, way)
	super := hybrid.SuperBlockID(m.Key)
	for i := range f.occ {
		rg := &f.occ[i]
		b := c.blockID(super, rg.BlkOffU8())
		ri := &c.remap[b]
		// Reset the entry on the block's first range. occ holds at most 8
		// entries, so a linear scan of the prefix beats any allocated set.
		first := true
		for j := 0; j < i; j++ {
			if f.occ[j].blkOff == rg.blkOff {
				first = false
				break
			}
		}
		if first {
			ri.remap, ri.cf2, ri.cf4, ri.z = 0, 0, 0, false
			ri.way = int32(way)
		}
		for s := rg.subOff; s < rg.subOff+rg.cf; s++ {
			ri.remap |= 1 << s
		}
		switch rg.cf {
		case 2:
			ri.cf2 |= 1 << (rg.subOff / 2)
		case 4:
			ri.cf4 |= 1 << (rg.subOff / 4)
		}
	}
}

// BlkOffU8 returns the range's block offset (helper for rebuildRemap).
func (rg *occRange) BlkOffU8() uint8 { return rg.blkOff }

// evictFastFrame evicts every block committed in frame (si, way) to slow
// memory, handling the flat-scheme swap mechanics.
func (c *Controller) evictFastFrame(now uint64, si, way int) {
	m, f := c.fastDir.Way(si, way)
	if !m.Valid {
		return
	}
	super := hybrid.SuperBlockID(m.Key)
	flat := c.cfg.Mode == config.ModeFlat
	nativeResident := c.frameHoldsNative(m, f)

	// Batch the compressed-writeback fit trials of every range that will
	// write back below. The verdicts are pure functions of the range
	// contents, which the store copies below do not alter, so evaluating
	// them up front in parallel matches the lazy serial outcome exactly.
	var fits [8]bool
	if c.cfg.CompressedWriteback && !c.cfg.CompressionOff {
		a := c.arena
		a.Begin()
		var groups [8]int
		queued := false
		for i := range f.occ {
			groups[i] = -1
			rg := &f.occ[i]
			if int(rg.cf) <= 1 || (flat && c.blockID(super, rg.blkOff) == f.native) {
				continue
			}
			if !flat && !rg.dirty {
				continue
			}
			groups[i] = c.addRangeFit(rg.data, int(rg.cf))
			queued = true
		}
		if queued {
			a.Run()
			for i := range f.occ {
				if groups[i] >= 0 {
					fits[i] = a.Fits(groups[i])
				}
			}
		}
	}

	if flat && !nativeResident && len(f.occ) > 0 {
		// Three-way swap (Section III-F): the frame's original content is
		// spread over the super-block; rearranging it so the evicted
		// committed blocks can return to their original slow locations
		// costs one extra block move in slow memory.
		c.ctr.swapThreeWay.Inc()
		c.eng.FetchSlow(now, c.slowAddr(f.native, 0), c.geom.blockBytes)
		c.eng.WriteSlowBG(now, c.slowAddr(f.native, 0), c.geom.blockBytes)
	}

	for i := range f.occ {
		rg := &f.occ[i]
		b := c.blockID(super, rg.blkOff)
		isNative := flat && b == f.native
		// Push content back to the canonical store.
		for k := 0; k < int(rg.cf); k++ {
			copy(c.slowSub(b, int(rg.subOff)+k), rg.data[uint64(k)*c.geom.subBytes:])
			if rg.dirty {
				c.clearHints(b, int(rg.subOff)+k)
			}
		}
		switch {
		case isNative:
			// Handled below as a single spread write.
		case flat:
			// Migrated blocks swap back entirely (all sub-blocks move).
			c.writeRangeToSlowFit(now, b, int(rg.subOff), int(rg.cf), fits[i])
		case rg.dirty:
			c.writeRangeToSlowFit(now, b, int(rg.subOff), int(rg.cf), fits[i])
		}
	}
	if nativeResident {
		// Spread the native block into the freed slow sub-block spaces.
		c.ctr.swapSpread.Inc()
		c.eng.WriteSlowBG(now, c.slowAddr(f.native, 0), c.geom.blockBytes)
	}

	// Clear the remap entries of every block that lived here, and recycle
	// the range buffers (the canonical store holds the content now).
	for i := range f.occ {
		b := c.blockID(super, f.occ[i].blkOff)
		ri := &c.remap[b]
		if ri.way == int32(way) {
			*ri = remapInfo{way: -1}
		}
		c.freeRangeBuf(f.occ[i].data)
	}
	c.metaUpdate(now, super)
	*m = hybrid.WayMeta{}
	f.occ = resetOcc(f.occ)
}

// evictCommittedBlock evicts a single block from its committed frame
// (the whole-block eviction of case 2 write overflows). The frozen dense
// layout forces the remaining ranges to be compacted, which we charge as
// fast-memory move traffic.
func (c *Controller) evictCommittedBlock(now uint64, si, way int, b uint64, overflow bool) {
	m, f := c.fastDir.Way(si, way)
	blkOff := uint8(c.blkOff(b))
	kept := f.occ[:0]
	moved := 0
	removed := 0
	for i := range f.occ {
		rg := f.occ[i]
		if rg.blkOff != blkOff {
			if removed > 0 {
				moved++
			}
			kept = append(kept, rg)
			continue
		}
		removed++
		for k := 0; k < int(rg.cf); k++ {
			copy(c.slowSub(b, int(rg.subOff)+k), rg.data[uint64(k)*c.geom.subBytes:])
			if rg.dirty {
				c.clearHints(b, int(rg.subOff)+k)
			}
		}
		if rg.dirty || c.cfg.Mode == config.ModeFlat {
			c.writeRangeToSlow(now, b, int(rg.subOff), int(rg.cf), rg.data)
		}
		c.freeRangeBuf(rg.data)
	}
	f.occ = kept
	if moved > 0 {
		c.ctr.resortRewrites.Inc()
		c.eng.FillFast(now, c.frameAddr(si, way, 0), uint64(moved)*c.geom.subBytes)
	}
	ri := &c.remap[b]
	*ri = remapInfo{way: -1}
	if len(f.occ) == 0 && !(c.cfg.Mode == config.ModeFlat && c.frameHoldsNative(m, f)) {
		*m = hybrid.WayMeta{} // occ is already empty; native stays with the frame
	}
	c.rebuildRemapSafe(si, way)
	c.metaUpdate(now, c.superOf(b))
}

// rebuildRemapSafe re-derives remap entries after a partial eviction when
// the frame is still valid.
func (c *Controller) rebuildRemapSafe(si, way int) {
	if m, _ := c.fastDir.Way(si, way); m.Valid {
		c.rebuildRemap(si, way)
	}
}

// directInsert implements the no-stage-area ablation of Fig. 13(c): fetched
// ranges are inserted straight into the committed area, and every insertion
// re-sorts the frozen layout of its frame.
func (c *Controller) directInsert(now uint64, b uint64, s int, dirty bool) {
	super := c.superOf(b)
	si := c.setIdx(super)

	// Choose the range (no stage-overlap concerns: the block is absent).
	start, cf := s, 1
	for _, try := range []int{4, 2} {
		st := s &^ (try - 1)
		if c.rangeFits(c.rangeContentScratch(b, st, try), try) {
			start, cf = st, try
			break
		}
	}
	content := c.rangeContent(b, start, cf)

	targetW := -1
	for wi := 0; wi < c.geom.ways; wi++ {
		m, f := c.fastDir.Way(si, wi)
		if m.Valid && hybrid.SuperBlockID(m.Key) == super && len(f.occ) < 8 {
			targetW = wi
			break
		}
	}
	if targetW < 0 {
		targetW = c.fastDir.Victim(si, c.fastRep)
		tm, tf := c.fastDir.Way(si, targetW)
		if tm.Valid {
			c.evictFastFrame(now, si, targetW)
		}
		native, occ := tf.native, resetOcc(tf.occ)
		*tm = hybrid.WayMeta{Key: uint64(super), Valid: true}
		*tf = fastFrame{native: native, occ: occ}
	}
	m, f := c.fastDir.Way(si, targetW)
	m.LastUse = c.seq
	m.AllocSeq = c.seq
	c.ensureOccCap(f)
	f.occ = append(f.occ, occRange{blkOff: uint8(c.blkOff(b)), subOff: uint8(start), cf: uint8(cf), dirty: dirty, data: content})
	sortOcc(f.occ)
	// Every insertion re-sorts the dense layout: rewrite the frame.
	c.ctr.resortRewrites.Inc()
	c.eng.FetchSlow(now, c.slowAddr(b, start), uint64(cf)*c.geom.subBytes)
	c.eng.FillFast(now, c.frameAddr(si, targetW, 0), uint64(len(f.occ))*c.geom.subBytes)
	c.rebuildRemap(si, targetW)
	c.metaUpdate(now, super)
}

// directInsertSub (no-stage ablation) adds one more range of an already
// committed block into its frame, re-sorting the dense layout.
func (c *Controller) directInsertSub(now uint64, b uint64, s int, dirty bool) {
	ri := &c.remap[b]
	if ri.way < 0 {
		return
	}
	super := c.superOf(b)
	si := c.setIdx(super)
	m, f := c.fastDir.Way(si, int(ri.way))
	if !m.Valid || len(f.occ) >= 8 {
		return
	}
	start, cf := s, 1
	for _, try := range []int{4, 2} {
		st := s &^ (try - 1)
		overlaps := false
		for i := st; i < st+try; i++ {
			if i != s && ri.remap&(1<<i) != 0 {
				overlaps = true
				break
			}
		}
		if overlaps {
			continue
		}
		if c.rangeFits(c.rangeContentScratch(b, st, try), try) {
			start, cf = st, try
			break
		}
	}
	c.ensureOccCap(f)
	f.occ = append(f.occ, occRange{blkOff: uint8(c.blkOff(b)), subOff: uint8(start), cf: uint8(cf), dirty: dirty, data: c.rangeContent(b, start, cf)})
	sortOcc(f.occ)
	c.ctr.resortRewrites.Inc()
	c.eng.FetchSlow(now, c.slowAddr(b, start), uint64(cf)*c.geom.subBytes)
	c.eng.FillFast(now, c.frameAddr(si, int(ri.way), 0), uint64(len(f.occ))*c.geom.subBytes)
	c.rebuildRemap(si, int(ri.way))
	c.metaUpdate(now, super)
}
