package core

import (
	"math/bits"
	"sort"

	"baryon/internal/config"
	"baryon/internal/hybrid"
	"baryon/internal/metadata"
)

// This file implements the selective commit policy (Section III-E, Eq. 1),
// the commit operation itself (layout sorting and the compact remap format
// of Rule 4), fast-area evictions, and the flat-scheme swap mechanics of
// Section III-F.

// finishStageFrame retires stage frame (ssi, w): it either commits the frame
// to the cache/flat area or evicts it to slow memory, then clears it.
func (c *Controller) finishStageFrame(now uint64, ssi, w int) {
	sm, fr := c.stageDir.Way(ssi, w)
	if !fr.tag.Valid {
		return
	}
	c.emitStagePhase(fr)

	si := c.setIdx(fr.tag.Super)

	slotsNeeded := 0
	dirtyStage := 0
	for _, rg := range fr.tag.Slots {
		if rg.Valid && !rg.Zero {
			slotsNeeded++
			if rg.Dirty {
				dirtyStage++
			}
		}
	}

	// Target selection: append into a frame already holding this super-block
	// when it has room (this is how one super-block ends up spanning
	// multiple physical blocks only when needed), else the area's
	// replacement victim (LRU for low-associative, FIFO for fully
	// associative, Section III-E).
	appendW := -1
	for wi := 0; wi < c.geom.ways; wi++ {
		m, f := c.fastDir.Way(si, wi)
		if m.Valid && hybrid.SuperBlockID(m.Key) == fr.tag.Super &&
			len(f.occ)+slotsNeeded <= 8 {
			appendW = wi
			break
		}
	}
	victimW := appendW
	dirtyVictim := 0
	if victimW < 0 {
		victimW = c.fastDir.Victim(si, c.fastRep)
		vm, v := c.fastDir.Way(si, victimW)
		if vm.Valid {
			if c.cfg.Mode == config.ModeFlat {
				dirtyVictim = len(v.occ) // all sub-blocks swap in flat mode
			} else {
				for _, rg := range v.occ {
					if rg.dirty {
						dirtyVictim++
					}
				}
			}
		}
	}

	if c.shouldCommit(ssi, fr, dirtyStage, dirtyVictim) &&
		c.flatCommitFeasible(si, fr, victimW, appendW >= 0) {
		c.commitStageFrame(now, ssi, w, si, victimW, appendW >= 0)
	} else {
		c.evictStageFrame(now, ssi, w)
	}
	fr.tag = metadata.StageTag{}
	fr.data = [8][]byte{}
	fr.events = fr.events[:0]
	sm.Valid = false
}

// shouldCommit evaluates Eq. 1: B = k*(MRUMissCnt/assoc - MissCnt) +
// (#Dirty_stage - #Dirty_cache/flat); commit when B >= 0.
func (c *Controller) shouldCommit(ssi int, fr *stageFrame, dirtyStage, dirtyVictim int) bool {
	if c.cfg.CommitAll {
		return true
	}
	stability := float64(c.stageState[ssi].mruMissCnt)/float64(c.geom.stageWays) - float64(fr.tag.MissCnt)
	if c.cfg.CommitK < 0 { // k = infinity: stability only
		return stability >= 0
	}
	benefit := c.cfg.CommitK*stability + float64(dirtyStage-dirtyVictim)
	return benefit >= 0
}

// flatCommitFeasible verifies the flat-scheme invariant of Section III-F:
// swapping the victim's original content out requires at least one block's
// worth of free slow sub-block spaces within the committing super-block.
func (c *Controller) flatCommitFeasible(si int, fr *stageFrame, victimW int, appending bool) bool {
	if c.cfg.Mode != config.ModeFlat || appending {
		return true
	}
	vm, v := c.fastDir.Way(si, victimW)
	if !vm.Valid {
		return true // empty frame, nothing to swap out
	}
	// Victim holds its native block and that block is resident: its content
	// must spread into the super-block's freed slow spaces.
	if !c.frameHoldsNative(vm, v) {
		return true // victim data returns to its original slow locations
	}
	free := 0
	for _, rg := range fr.tag.Slots {
		if !rg.Valid {
			continue
		}
		if rg.Zero {
			free += config.SubBlocksPerBlock
		} else {
			free += int(rg.CF)
		}
	}
	// Plus spaces freed by blocks of this super already committed elsewhere.
	base := uint64(fr.tag.Super) * c.geom.superBlocks
	for off := uint64(0); off < c.geom.superBlocks; off++ {
		b := base + off
		if b < uint64(len(c.remap)) {
			ri := &c.remap[b]
			if ri.z {
				free += config.SubBlocksPerBlock
			} else {
				free += bits.OnesCount8(ri.remap)
			}
		}
	}
	if free < config.SubBlocksPerBlock {
		c.ctr.commitAborts.Inc()
		return false
	}
	return true
}

// frameHoldsNative reports whether a flat-mode frame still holds its native
// block's content.
func (c *Controller) frameHoldsNative(m *hybrid.WayMeta, f *fastFrame) bool {
	if c.cfg.Mode != config.ModeFlat {
		return false
	}
	ri := &c.remap[f.native]
	return ri.remap != 0 && m.Valid && uint64(c.superOf(f.native)) == m.Key &&
		findOcc(f, uint8(c.blkOff(f.native)), 0) >= 0
}

// evictStageFrame writes the frame's dirty ranges back to slow memory.
func (c *Controller) evictStageFrame(now uint64, ssi, w int) {
	fr := c.stageDir.Payload(ssi, w)
	for slot := range fr.tag.Slots {
		c.writebackStageSlot(now, fr, slot)
	}
	c.ctr.evictsToSlow.Inc()
}

// commitStageFrame moves the frame's contents into the cache/flat area:
// the victim frame is evicted (or an existing same-super frame appended to),
// the ranges are sorted into the frozen dense layout of Rule 4, and the
// remap entries are rewritten in the compact format.
func (c *Controller) commitStageFrame(now uint64, ssi, w, si, targetW int, appending bool) {
	fr := c.stageDir.Payload(ssi, w)
	tm, target := c.fastDir.Way(si, targetW)

	if !appending && tm.Valid {
		c.evictFastFrame(now, si, targetW)
	}

	commitDone := now
	if !appending || !tm.Valid {
		native := target.native
		*tm = hybrid.WayMeta{Key: uint64(fr.tag.Super), Valid: true}
		*target = fastFrame{native: native}
	} else {
		// Appending rewrites the frame's dense layout (a re-sort).
		c.ctr.resortRewrites.Inc()
		commitDone = maxU64(commitDone,
			c.eng.FillFast(now, c.frameAddr(si, targetW, 0), uint64(len(target.occ))*c.geom.subBytes))
	}
	tm.LastUse = c.seq
	tm.AllocSeq = c.seq

	// Gather the committed ranges; Z-descriptors become Z remap entries.
	for slot, rg := range fr.tag.Slots {
		if !rg.Valid {
			continue
		}
		if rg.Zero {
			b := c.blockID(fr.tag.Super, rg.BlkOff)
			ri := &c.remap[b]
			*ri = remapInfo{z: true, way: -1}
			continue
		}
		target.occ = append(target.occ, occRange{
			blkOff: rg.BlkOff, subOff: rg.SubOff, cf: rg.CF,
			dirty: rg.Dirty, data: fr.data[slot],
		})
		// Traffic: stage read + cache/flat-area write, both in fast memory.
		commitDone = maxU64(commitDone,
			c.eng.ReadFastBG(now, c.stageFrameAddr(ssi, w, slot), c.geom.subBytes))
	}
	sortOcc(target.occ)
	commitDone = maxU64(commitDone,
		c.eng.FillFast(now, c.frameAddr(si, targetW, 0), uint64(len(target.occ))*c.geom.subBytes))
	c.ctr.latCommit.Observe(commitDone - now)
	if t := c.eng.Tracer(); t != nil {
		t.Span("commit", "", now, commitDone)
	}

	// Rewrite the remap entries of every block present in the target frame.
	c.rebuildRemap(si, targetW)
	c.metaUpdate(now, fr.tag.Super)
	c.ctr.commits.Inc()
	for wi, m := range c.fastDir.SetMeta(si) {
		if wi != targetW && m.Valid && hybrid.SuperBlockID(m.Key) == fr.tag.Super {
			c.ctr.multiFrameSupers.Inc()
			break
		}
	}
}

// sortOcc orders ranges by (blkOff, subOff): the frozen sorted layout.
func sortOcc(occ []occRange) {
	sort.Slice(occ, func(i, j int) bool {
		if occ[i].blkOff != occ[j].blkOff {
			return occ[i].blkOff < occ[j].blkOff
		}
		return occ[i].subOff < occ[j].subOff
	})
}

// findOcc returns the index of the range covering (blkOff, sub), or -1.
func findOcc(f *fastFrame, blkOff, sub uint8) int {
	for i := range f.occ {
		rg := &f.occ[i]
		if rg.blkOff == blkOff && sub >= rg.subOff && sub < rg.subOff+rg.cf {
			return i
		}
	}
	return -1
}

// rebuildRemap recomputes the remap entries of every block stored in frame
// (si, way) from its occupancy (the architectural metadata the compact
// format encodes).
func (c *Controller) rebuildRemap(si, way int) {
	m, f := c.fastDir.Way(si, way)
	super := hybrid.SuperBlockID(m.Key)
	perBlock := map[uint8]*remapInfo{}
	for i := range f.occ {
		rg := &f.occ[i]
		b := c.blockID(super, rg.BlkOffU8())
		ri := &c.remap[b]
		if perBlock[rg.blkOff] == nil {
			ri.remap, ri.cf2, ri.cf4, ri.z = 0, 0, 0, false
			ri.way = int32(way)
			perBlock[rg.blkOff] = ri
		}
		for s := rg.subOff; s < rg.subOff+rg.cf; s++ {
			ri.remap |= 1 << s
		}
		switch rg.cf {
		case 2:
			ri.cf2 |= 1 << (rg.subOff / 2)
		case 4:
			ri.cf4 |= 1 << (rg.subOff / 4)
		}
	}
}

// BlkOffU8 returns the range's block offset (helper for rebuildRemap).
func (rg *occRange) BlkOffU8() uint8 { return rg.blkOff }

// evictFastFrame evicts every block committed in frame (si, way) to slow
// memory, handling the flat-scheme swap mechanics.
func (c *Controller) evictFastFrame(now uint64, si, way int) {
	m, f := c.fastDir.Way(si, way)
	if !m.Valid {
		return
	}
	super := hybrid.SuperBlockID(m.Key)
	flat := c.cfg.Mode == config.ModeFlat
	nativeResident := c.frameHoldsNative(m, f)

	if flat && !nativeResident && len(f.occ) > 0 {
		// Three-way swap (Section III-F): the frame's original content is
		// spread over the super-block; rearranging it so the evicted
		// committed blocks can return to their original slow locations
		// costs one extra block move in slow memory.
		c.ctr.swapThreeWay.Inc()
		c.eng.FetchSlow(now, c.slowAddr(f.native, 0), c.geom.blockBytes)
		c.eng.WriteSlowBG(now, c.slowAddr(f.native, 0), c.geom.blockBytes)
	}

	for i := range f.occ {
		rg := &f.occ[i]
		b := c.blockID(super, rg.blkOff)
		isNative := flat && b == f.native
		// Push content back to the canonical store.
		for k := 0; k < int(rg.cf); k++ {
			copy(c.slowSub(b, int(rg.subOff)+k), rg.data[uint64(k)*c.geom.subBytes:])
			if rg.dirty {
				c.clearHints(b, int(rg.subOff)+k)
			}
		}
		switch {
		case isNative:
			// Handled below as a single spread write.
		case flat:
			// Migrated blocks swap back entirely (all sub-blocks move).
			c.writeRangeToSlow(now, b, int(rg.subOff), int(rg.cf), rg.data)
		case rg.dirty:
			c.writeRangeToSlow(now, b, int(rg.subOff), int(rg.cf), rg.data)
		}
	}
	if nativeResident {
		// Spread the native block into the freed slow sub-block spaces.
		c.ctr.swapSpread.Inc()
		c.eng.WriteSlowBG(now, c.slowAddr(f.native, 0), c.geom.blockBytes)
	}

	// Clear the remap entries of every block that lived here.
	for i := range f.occ {
		b := c.blockID(super, f.occ[i].blkOff)
		ri := &c.remap[b]
		if ri.way == int32(way) {
			*ri = remapInfo{way: -1}
		}
	}
	c.metaUpdate(now, super)
	native := f.native
	*m = hybrid.WayMeta{}
	*f = fastFrame{native: native}
}

// evictCommittedBlock evicts a single block from its committed frame
// (the whole-block eviction of case 2 write overflows). The frozen dense
// layout forces the remaining ranges to be compacted, which we charge as
// fast-memory move traffic.
func (c *Controller) evictCommittedBlock(now uint64, si, way int, b uint64, overflow bool) {
	m, f := c.fastDir.Way(si, way)
	blkOff := uint8(c.blkOff(b))
	kept := f.occ[:0]
	moved := 0
	removed := 0
	for i := range f.occ {
		rg := f.occ[i]
		if rg.blkOff != blkOff {
			if removed > 0 {
				moved++
			}
			kept = append(kept, rg)
			continue
		}
		removed++
		for k := 0; k < int(rg.cf); k++ {
			copy(c.slowSub(b, int(rg.subOff)+k), rg.data[uint64(k)*c.geom.subBytes:])
			if rg.dirty {
				c.clearHints(b, int(rg.subOff)+k)
			}
		}
		if rg.dirty || c.cfg.Mode == config.ModeFlat {
			c.writeRangeToSlow(now, b, int(rg.subOff), int(rg.cf), rg.data)
		}
	}
	f.occ = kept
	if moved > 0 {
		c.ctr.resortRewrites.Inc()
		c.eng.FillFast(now, c.frameAddr(si, way, 0), uint64(moved)*c.geom.subBytes)
	}
	ri := &c.remap[b]
	*ri = remapInfo{way: -1}
	if len(f.occ) == 0 && !(c.cfg.Mode == config.ModeFlat && c.frameHoldsNative(m, f)) {
		native := f.native
		*m = hybrid.WayMeta{}
		*f = fastFrame{native: native}
	}
	c.rebuildRemapSafe(si, way)
	c.metaUpdate(now, c.superOf(b))
}

// rebuildRemapSafe re-derives remap entries after a partial eviction when
// the frame is still valid.
func (c *Controller) rebuildRemapSafe(si, way int) {
	if m, _ := c.fastDir.Way(si, way); m.Valid {
		c.rebuildRemap(si, way)
	}
}

// directInsert implements the no-stage-area ablation of Fig. 13(c): fetched
// ranges are inserted straight into the committed area, and every insertion
// re-sorts the frozen layout of its frame.
func (c *Controller) directInsert(now uint64, b uint64, s int, dirty bool) {
	super := c.superOf(b)
	si := c.setIdx(super)

	// Choose the range (no stage-overlap concerns: the block is absent).
	start, cf := s, 1
	for _, try := range []int{4, 2} {
		st := s &^ (try - 1)
		if c.rangeFits(c.rangeContentScratch(b, st, try), try) {
			start, cf = st, try
			break
		}
	}
	content := c.rangeContent(b, start, cf)

	targetW := -1
	for wi := 0; wi < c.geom.ways; wi++ {
		m, f := c.fastDir.Way(si, wi)
		if m.Valid && hybrid.SuperBlockID(m.Key) == super && len(f.occ) < 8 {
			targetW = wi
			break
		}
	}
	if targetW < 0 {
		targetW = c.fastDir.Victim(si, c.fastRep)
		tm, tf := c.fastDir.Way(si, targetW)
		if tm.Valid {
			c.evictFastFrame(now, si, targetW)
		}
		native := tf.native
		*tm = hybrid.WayMeta{Key: uint64(super), Valid: true}
		*tf = fastFrame{native: native}
	}
	m, f := c.fastDir.Way(si, targetW)
	m.LastUse = c.seq
	m.AllocSeq = c.seq
	f.occ = append(f.occ, occRange{blkOff: uint8(c.blkOff(b)), subOff: uint8(start), cf: uint8(cf), dirty: dirty, data: content})
	sortOcc(f.occ)
	// Every insertion re-sorts the dense layout: rewrite the frame.
	c.ctr.resortRewrites.Inc()
	c.eng.FetchSlow(now, c.slowAddr(b, start), uint64(cf)*c.geom.subBytes)
	c.eng.FillFast(now, c.frameAddr(si, targetW, 0), uint64(len(f.occ))*c.geom.subBytes)
	c.rebuildRemap(si, targetW)
	c.metaUpdate(now, super)
}

// directInsertSub (no-stage ablation) adds one more range of an already
// committed block into its frame, re-sorting the dense layout.
func (c *Controller) directInsertSub(now uint64, b uint64, s int, dirty bool) {
	ri := &c.remap[b]
	if ri.way < 0 {
		return
	}
	super := c.superOf(b)
	si := c.setIdx(super)
	m, f := c.fastDir.Way(si, int(ri.way))
	if !m.Valid || len(f.occ) >= 8 {
		return
	}
	start, cf := s, 1
	for _, try := range []int{4, 2} {
		st := s &^ (try - 1)
		overlaps := false
		for i := st; i < st+try; i++ {
			if i != s && ri.remap&(1<<i) != 0 {
				overlaps = true
				break
			}
		}
		if overlaps {
			continue
		}
		if c.rangeFits(c.rangeContentScratch(b, st, try), try) {
			start, cf = st, try
			break
		}
	}
	f.occ = append(f.occ, occRange{blkOff: uint8(c.blkOff(b)), subOff: uint8(start), cf: uint8(cf), dirty: dirty, data: c.rangeContent(b, start, cf)})
	sortOcc(f.occ)
	c.ctr.resortRewrites.Inc()
	c.eng.FetchSlow(now, c.slowAddr(b, start), uint64(cf)*c.geom.subBytes)
	c.eng.FillFast(now, c.frameAddr(si, int(ri.way), 0), uint64(len(f.occ))*c.geom.subBytes)
	c.rebuildRemap(si, int(ri.way))
	c.metaUpdate(now, super)
}
