// Package core implements Baryon, the paper's contribution: a hybrid memory
// controller that combines memory compression and data sub-blocking with a
// small stage area in fast memory, a dual-format metadata scheme (on-chip
// stage tag array + compact remap table with a super-block-granularity remap
// cache), two-level stage replacement, and a stability-aware selective
// commit policy. The controller supports the cache and flat schemes, a
// fully-associative variant (Baryon-FA), and the 64 B sub-blocking variant
// (Baryon-64B), plus every ablation knob the evaluation section sweeps.
package core

import (
	"baryon/internal/compress"
	"baryon/internal/compress/pipeline"
	"baryon/internal/config"
	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/metadata"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// occRange is one committed range occupying one physical sub-block slot of a
// fast-memory frame (Rule 2: contiguous and aligned; Rule 4: the slice is
// kept sorted and dense).
type occRange struct {
	blkOff uint8
	subOff uint8
	cf     uint8
	zero   bool
	dirty  bool
	data   []byte // cf*subBytes of uncompressed content; nil when zero
}

// fastFrame is the payload of one cache/flat-area way in the kit's tag
// directory (hybrid.Dir): the committed ranges of a single super-block
// (Rule 1 — the super-block's ID is the way's key) plus, in flat mode, the
// OS block homed at this frame. Validity and the LRU/FIFO ranks live in the
// directory's WayMeta.
type fastFrame struct {
	occ    []occRange // sorted by (blkOff, subOff), at most 8 slots
	native uint64     // flat mode: the OS block homed at this frame
}

// stageFrame is the payload of one stage-area way: the architectural stage
// tag entry, the staged range content, and the Fig. 3/4 instrumentation.
// The recency/age ranks of the two-level replacement policy live in the
// directory's WayMeta, whose Valid bit mirrors tag.Valid.
type stageFrame struct {
	tag  metadata.StageTag
	data [8][]byte // uncompressed range content per slot

	// Instrumentation for Figs. 3 and 4.
	events    []bool // per-access miss record during this stage phase
	accesses  uint32
	instStart uint64 // instruction clock at allocation (for MPKI)
}

// stageSetState is the per-set half of the stage area's two-level policy:
// the MRU-way stability counters of Eq. 1 and the ageing interval.
type stageSetState struct {
	mruMissCnt  uint32
	mruWay      int
	accSinceAge uint32
}

// remapInfo is the simulator-side remap table entry: the architectural
// 2-byte fields plus the resolved way index (which the hardware derives from
// the Pointer field; we keep it explicit to support the fully-associative
// variant whose pointer is wider).
type remapInfo struct {
	remap uint8
	cf2   uint8
	cf4   uint8
	z     bool
	way   int32 // way within the block's set; -1 when nothing is remapped
}

func (r *remapInfo) valid() bool { return r.remap != 0 || r.z }

// Controller is the Baryon memory controller.
type Controller struct {
	cfg  config.Config
	geom geometry
	comp *compress.Compressor
	rng  *sim.RNG

	eng *hybrid.Engine

	store *hybrid.Store // canonical content of every OS block

	fastDir *hybrid.Dir[fastFrame]
	fastRep hybrid.Replacer

	stageDir   *hybrid.Dir[stageFrame]
	stageState []stageSetState
	stageRep   hybrid.Replacer

	remap  []remapInfo
	rcache *metadata.RemapCache

	// cfHints remembers ranges written back to slow memory in compressed
	// form (Section III-F): bit i of cf4Hint marks quad i, bit i of cf2Hint
	// marks pair i. Indexed by OS block.
	cf2Hint, cf4Hint []uint8

	seq uint64 // monotonic sequence for LRU/FIFO ordering

	stats *sim.Stats
	ctr   counters

	instr Instrumentation

	// instructionsSeen approximates retired instructions for MPKI-based
	// statistics; the runner advances it via AddInstructions.
	instructionsSeen uint64

	// deviceRegion bases (fast device address space).
	stageBase, tableBase uint64

	// arena batches the compression fit trials of the access flow — the
	// aligned per-chunk checks of rangeFits and the compressed-writeback
	// verdicts of frame evictions — across the shared worker pool of
	// compress/pipeline. Output is byte-identical at any worker count.
	arena *pipeline.Arena

	// Per-controller scratch reused across Access calls to keep the hot
	// path allocation-free. lineScratch backs the Data of slow-memory
	// reads, prefetchScratch backs Result.Prefetched, and trialScratch
	// holds range content assembled only for fit trials. Results handed
	// out through these buffers are valid until the next Access, which is
	// the contract hybrid.Result documents.
	lineScratch     [hybrid.CachelineSize]byte
	prefetchScratch []hybrid.PrefetchedLine
	trialScratch    []byte

	// rangePool recycles range content buffers by CF class (index = cf;
	// buffer length = cf*subBytes). Range buffers move between stage
	// frames and committed frames and must own their storage, so every
	// site that drops a range's last reference returns the buffer here
	// (freeRangeBuf) and rangeContent draws from the pool first. A reused
	// buffer may still back the previous Access's Result.Data, which the
	// hybrid.Result contract allows.
	rangePool [5][][]byte
	// rangeSlab backs pool misses: fresh buffers are carved from these
	// per-CF slabs in rangeSlabBufs-buffer chunks.
	rangeSlab [5][]byte
	// occSlab backs first-touch occ slices: a fast frame holds at most
	// SubBlocksPerBlock ranges, so each frame gets one full-capacity slice
	// carved here and keeps it (resetOcc preserves capacity) forever.
	occSlab []occRange
}

// geometry captures the per-variant sizes (Baryon vs Baryon-64B).
type geometry struct {
	blockBytes  uint64
	subBytes    uint64
	linesPerSub int
	superBlocks uint64 // blocks per super-block
	sets        uint64
	ways        int
	stageSets   uint64
	stageWays   int
	osBlocks    uint64
	fastBlocks  uint64
}

type counters struct {
	accesses, reads, writes             *sim.Counter
	servedFast, servedSlow, servedZero  *sim.Counter
	stageHits, stageSubMiss, blockMiss  *sim.Counter
	stageWriteOverflow, fastOverflow    *sim.Counter
	fastHits, fastSubMiss               *sim.Counter
	commits, evictsToSlow, commitAborts *sim.Counter
	subReplacements, blockReplacements  *sim.Counter
	decompressions, rangeFetches        *sim.Counter
	rangeCFSum                          *sim.Counter
	swapSpread, swapThreeWay            *sim.Counter
	resortRewrites                      *sim.Counter
	compressedWritebacks                *sim.Counter
	multiFrameSupers                    *sim.Counter

	// Per-access-class latency histograms (read critical path) and the
	// background commit/writeback stall distributions.
	latStageHit, latFastHit, latSlowPath *sim.Histogram
	latCommit, latWriteback              *sim.Histogram
}

// New builds a Baryon controller over the canonical store. The store must
// outlive the controller; stats receives all counters.
func New(cfg config.Config, store *hybrid.Store, stats *sim.Stats) *Controller {
	c := &Controller{
		cfg:   cfg,
		comp:  &compress.Compressor{Aligned: cfg.CachelineAligned, WithCPack: cfg.UseCPack},
		rng:   sim.NewRNG(cfg.Seed ^ 0xBA51C0DE),
		store: store,
		stats: stats,
	}
	g := &c.geom
	g.blockBytes = cfg.BlockBytes
	g.subBytes = cfg.BlockBytes / config.SubBlocksPerBlock
	g.linesPerSub = int(g.subBytes / hybrid.CachelineSize)
	g.superBlocks = uint64(cfg.SuperBlockBlocks)
	g.sets = cfg.Sets()
	g.ways = cfg.WaysPerSet()
	g.stageSets = cfg.StageSets()
	g.stageWays = 4
	g.osBlocks = cfg.OSBlocks()
	g.fastBlocks = cfg.FastBlocks()

	// The tier list comes from the config (empty Tiers canonicalizes to the
	// classic DDR4-over-SlowMemory pair). A resolve error here is a
	// programming error: user-facing paths run Config.Validate first.
	specs, err := cfg.TierSpecs()
	if err != nil {
		panic(err)
	}
	c.eng = hybrid.NewEngineTiers(specs, stats)
	c.arena = c.eng.InitCompression(c.comp, cfg.CompressWorkers)

	c.fastDir = hybrid.NewDirSets[fastFrame](g.sets, g.ways)
	c.fastRep = hybrid.Replacer(hybrid.LRU{})
	if cfg.FullyAssociative {
		c.fastRep = hybrid.FIFO{}
	}
	c.stageDir = hybrid.NewDirSets[stageFrame](g.stageSets, g.stageWays)
	c.stageRep = hybrid.TwoLevelBlock{}
	c.stageState = make([]stageSetState, g.stageSets)
	for i := range c.stageState {
		c.stageState[i].mruWay = -1
	}
	c.remap = make([]remapInfo, g.osBlocks)
	for i := range c.remap {
		c.remap[i].way = -1
	}
	c.cf2Hint = make([]uint8, g.osBlocks)
	c.cf4Hint = make([]uint8, g.osBlocks)
	c.rcache = metadata.NewRemapCache(cfg.RemapCacheSets, cfg.RemapCacheWays, stats.Scope("remapCache"))

	c.stageBase = g.fastBlocks * g.blockBytes
	c.tableBase = c.stageBase + cfg.StageBlocks()*g.blockBytes

	c.initCounters()
	if cfg.Mode == config.ModeFlat {
		c.initFlatResidents()
	}
	return c
}

func (c *Controller) initCounters() {
	s := c.stats.Scope("baryon")
	c.ctr = counters{
		accesses:             s.Counter("accesses"),
		reads:                s.Counter("reads"),
		writes:               s.Counter("writes"),
		servedFast:           s.Counter("servedFast"),
		servedSlow:           s.Counter("servedSlow"),
		servedZero:           s.Counter("servedZero"),
		stageHits:            s.Counter("stage.hits"),
		stageSubMiss:         s.Counter("stage.subMisses"),
		blockMiss:            s.Counter("blockMisses"),
		stageWriteOverflow:   s.Counter("stage.writeOverflows"),
		fastOverflow:         s.Counter("fast.writeOverflows"),
		fastHits:             s.Counter("fast.hits"),
		fastSubMiss:          s.Counter("fast.subMisses"),
		commits:              s.Counter("commits"),
		evictsToSlow:         s.Counter("evictsToSlow"),
		commitAborts:         s.Counter("commitAborts"),
		subReplacements:      s.Counter("subReplacements"),
		blockReplacements:    s.Counter("blockReplacements"),
		decompressions:       s.Counter("decompressions"),
		rangeFetches:         s.Counter("rangeFetches"),
		rangeCFSum:           s.Counter("rangeCFSum"),
		swapSpread:           s.Counter("swap.spread"),
		swapThreeWay:         s.Counter("swap.threeWay"),
		resortRewrites:       s.Counter("resortRewrites"),
		compressedWritebacks: s.Counter("compressedWritebacks"),
		multiFrameSupers:     s.Counter("multiFrameSupers"),
	}
	// Histogram registration order is part of the report format: the stage
	// histogram precedes the engine's fastHit/slowPath pair, commit and
	// writeback follow.
	c.ctr.latStageHit = s.Histogram("lat.stageHit")
	c.ctr.latFastHit, c.ctr.latSlowPath = c.eng.InstrumentLatency(s)
	c.ctr.latCommit = s.Histogram("lat.commit")
	c.ctr.latWriteback = s.Histogram("lat.writeback")
}

// SetTracer attaches a request-lifecycle tracer to the controller and its
// devices. Nil detaches.
func (c *Controller) SetTracer(t *obs.Tracer) { c.eng.SetTracer(t) }

// traceDecision records the controller's access-flow case for the current
// sampled request as an instant event (no-op when tracing is off).
func (c *Controller) traceDecision(now uint64, cat string) { c.eng.Decision(now, cat) }

// initFlatResidents fills every flat-area frame with its native OS block,
// fully present and uncompressed (the paper's flat mode places blocks in
// fast memory until the space is used up).
func (c *Controller) initFlatResidents() {
	for q := uint64(0); q < c.geom.sets; q++ {
		for w := 0; w < c.geom.ways; w++ {
			b := q*c.geom.superBlocks + uint64(w)
			if b >= c.geom.osBlocks {
				continue
			}
			m, f := c.fastDir.Way(int(q), w)
			m.Valid = true
			m.Key = uint64(c.superOf(b))
			f.native = b
			f.occ = nil
			c.ensureOccCap(f)
			for s := 0; s < config.SubBlocksPerBlock; s++ {
				data := c.newRangeBuf(1)
				copy(data, c.slowSub(b, s))
				f.occ = append(f.occ, occRange{
					blkOff: uint8(c.blkOff(b)), subOff: uint8(s), cf: 1, data: data,
				})
			}
			r := &c.remap[b]
			r.remap = 0xFF
			r.way = int32(w)
		}
	}
}

// --- geometry helpers -------------------------------------------------

func (c *Controller) blockOf(addr uint64) uint64 { return addr / c.geom.blockBytes }
func (c *Controller) subOf(addr uint64) int {
	return int(addr % c.geom.blockBytes / c.geom.subBytes)
}
func (c *Controller) superOf(b uint64) hybrid.SuperBlockID {
	return hybrid.SuperBlockID(b / c.geom.superBlocks)
}
func (c *Controller) blkOff(b uint64) int { return int(b % c.geom.superBlocks) }
func (c *Controller) setIdx(super hybrid.SuperBlockID) int {
	return int(uint64(super) % c.geom.sets)
}
func (c *Controller) stageSetIdx(super hybrid.SuperBlockID) int {
	return int(uint64(super) % c.geom.stageSets)
}
func (c *Controller) blockID(super hybrid.SuperBlockID, blkOff uint8) uint64 {
	return uint64(super)*c.geom.superBlocks + uint64(blkOff)
}

// slowSub returns the canonical content of sub-block s of block b.
func (c *Controller) slowSub(b uint64, s int) []byte {
	return c.store.Bytes(b*c.geom.blockBytes+uint64(s)*c.geom.subBytes, int(c.geom.subBytes))
}

// slowAddr maps block b to a slow-device address for timing purposes.
func (c *Controller) slowAddr(b uint64, s int) uint64 {
	return b*c.geom.blockBytes + uint64(s)*c.geom.subBytes
}

// frameAddr maps (set, way, slot) to a fast-device address.
func (c *Controller) frameAddr(setIdx, way, slot int) uint64 {
	frame := uint64(setIdx)*uint64(c.geom.ways) + uint64(way)
	return frame*c.geom.blockBytes + uint64(slot)*c.geom.subBytes
}

// stageFrameAddr maps (stage set, way, slot) to a fast-device address in the
// stage region.
func (c *Controller) stageFrameAddr(setIdx, way, slot int) uint64 {
	frame := uint64(setIdx)*uint64(c.geom.stageWays) + uint64(way)
	return c.stageBase + frame*c.geom.blockBytes + uint64(slot)*c.geom.subBytes
}

// Engine returns the shared migration/writeback engine (hybrid.EngineProvider).
func (c *Controller) Engine() *hybrid.Engine { return c.eng }

// Name identifies the configuration for reports.
func (c *Controller) Name() string {
	switch {
	case c.cfg.FullyAssociative:
		return "Baryon-FA"
	case c.cfg.SubBlockBytes == 64:
		return "Baryon-64B"
	default:
		return "Baryon"
	}
}

// Stats returns the controller's counters.
func (c *Controller) Stats() *sim.Stats { return c.stats }

// MeanRangeCF returns the average quantised compression factor of staged
// ranges (the Fig. 12 metric), read through the controller's typed counter
// handles.
func (c *Controller) MeanRangeCF() float64 {
	return sim.Ratio(c.ctr.rangeCFSum.Value(), c.ctr.rangeFetches.Value())
}

// RemapCacheHitRate returns the remap cache's hit rate (Section III-B
// sizing claim).
func (c *Controller) RemapCacheHitRate() float64 { return c.rcache.HitRate() }

// FastDevice and SlowDevice expose the devices for traffic/energy reports.
func (c *Controller) FastDevice() *mem.Device { return c.eng.Fast() }

// SlowDevice returns the slow-memory device model.
func (c *Controller) SlowDevice() *mem.Device { return c.eng.Slow() }

// AddInstructions advances the retired-instruction clock used by MPKI
// statistics (called by the CPU runner).
func (c *Controller) AddInstructions(n uint64) { c.instructionsSeen += n }
