package core

import "baryon/internal/sim"

// Instrumentation collects the research-grade statistics behind Figs. 3
// and 4 of the paper. It is optional: a zero value disables sampling and
// costs nothing on the access path beyond a nil check.
type Instrumentation struct {
	// StagePhase, when non-nil, receives per-decile MPKI observations of
	// sampled stage phases (Fig. 4).
	StagePhase *StagePhaseSampler
}

// SetInstrumentation installs samplers; pass a zero Instrumentation to
// disable.
func (c *Controller) SetInstrumentation(in Instrumentation) { c.instr = in }

// StagePhaseSampler aggregates the miss-rate trajectory of stage phases,
// normalised to each phase's own length as in Fig. 4: bucket i covers
// relative time [i/N, (i+1)/N) of the phase.
type StagePhaseSampler struct {
	// Buckets holds one sample distribution per normalised-time decile.
	Buckets [10]sim.Sample
	// MaxPhases caps the number of sampled phases (the paper samples 1k).
	MaxPhases int
	// MinAccesses filters out phases too short to be meaningful.
	MinAccesses int

	phases int
}

// NewStagePhaseSampler mirrors the paper's methodology: 1k sampled blocks,
// phases with at least 20 accesses.
func NewStagePhaseSampler() *StagePhaseSampler {
	return &StagePhaseSampler{MaxPhases: 1000, MinAccesses: 20}
}

// Phases returns how many stage phases have been sampled.
func (sp *StagePhaseSampler) Phases() int { return sp.phases }

// Merge folds another sampler's observations into sp, letting independent
// runs sample into private samplers (one per workload, safe to run
// concurrently) that are combined deterministically afterwards.
func (sp *StagePhaseSampler) Merge(o *StagePhaseSampler) {
	for i := range sp.Buckets {
		sp.Buckets[i].Merge(&o.Buckets[i])
	}
	sp.phases += o.phases
}

// observe folds one finished phase into the deciles. events[i] records
// whether the i-th access during the phase missed; instrTotal approximates
// instructions retired across the phase.
func (sp *StagePhaseSampler) observe(events []bool, instrTotal uint64) {
	if sp.phases >= sp.MaxPhases || len(events) < sp.MinAccesses || instrTotal == 0 {
		return
	}
	sp.phases++
	n := len(events)
	instrPerBucket := float64(instrTotal) / float64(len(sp.Buckets))
	if instrPerBucket <= 0 {
		return
	}
	for bkt := range sp.Buckets {
		lo := bkt * n / len(sp.Buckets)
		hi := (bkt + 1) * n / len(sp.Buckets)
		misses := 0
		for i := lo; i < hi; i++ {
			if events[i] {
				misses++
			}
		}
		mpki := float64(misses) / (instrPerBucket / 1000)
		sp.Buckets[bkt].Observe(mpki)
	}
}

// maxStageEvents bounds the per-frame event log; phases longer than this are
// subsampled by simply truncating (the stability signal saturates well
// before).
const maxStageEvents = 4096

// recordStageEvent logs one access to a staged block for Fig. 4 sampling.
func (c *Controller) recordStageEvent(fr *stageFrame, miss bool) {
	fr.accesses++
	if c.instr.StagePhase == nil {
		return
	}
	if len(fr.events) < maxStageEvents {
		fr.events = append(fr.events, miss)
	}
}

// emitStagePhase flushes a finished stage phase into the sampler.
func (c *Controller) emitStagePhase(fr *stageFrame) {
	if c.instr.StagePhase == nil {
		return
	}
	c.instr.StagePhase.observe(fr.events, c.instructionsSeen-fr.instStart)
}

// StageBreakdown summarises the access-type ratios of Fig. 3 for blocks
// resident in the stage area (S) and blocks committed to the cache/flat
// area (C).
type StageBreakdown struct {
	SHits, SReadMisses, SWriteOverflows float64
	CHits, CReadMisses, CWriteOverflows float64
}

// Breakdown computes the Fig. 3 ratios from the controller's counters.
func (c *Controller) Breakdown() StageBreakdown {
	sTotal := float64(c.ctr.stageHits.Value() + c.ctr.stageSubMiss.Value() + c.ctr.stageWriteOverflow.Value())
	cTotal := float64(c.ctr.fastHits.Value() + c.ctr.fastSubMiss.Value() + c.ctr.fastOverflow.Value())
	bd := StageBreakdown{}
	if sTotal > 0 {
		bd.SHits = float64(c.ctr.stageHits.Value()) / sTotal
		bd.SReadMisses = float64(c.ctr.stageSubMiss.Value()) / sTotal
		bd.SWriteOverflows = float64(c.ctr.stageWriteOverflow.Value()) / sTotal
	}
	if cTotal > 0 {
		bd.CHits = float64(c.ctr.fastHits.Value()) / cTotal
		bd.CReadMisses = float64(c.ctr.fastSubMiss.Value()) / cTotal
		bd.CWriteOverflows = float64(c.ctr.fastOverflow.Value()) / cTotal
	}
	return bd
}
