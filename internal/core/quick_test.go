package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"baryon/internal/config"
	"baryon/internal/datagen"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

// integrityErr is the non-fatal core integrity check used by property
// tests: it drives random traffic and returns the first divergence from the
// functional reference, or nil.
func integrityErr(cfg config.Config, accesses int, seed uint64) error {
	mix := datagen.UniformMix()
	store := hybrid.NewStore(func(b hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		datagen.Filler(mix)(uint64(b), dst)
	})
	c := New(cfg, store, sim.NewStats())
	ref := newRef(mix)
	rng := sim.NewRNG(seed)
	footprint := cfg.OSBlocks() * cfg.BlockBytes / 4
	now := uint64(0)
	for i := 0; i < accesses; i++ {
		addr := rng.Uint64n(footprint) &^ 63
		c.AddInstructions(8)
		if rng.Bool(0.35) {
			data := make([]byte, 64)
			for j := range data {
				data[j] = byte(rng.Uint32())
			}
			if rng.Bool(0.5) {
				for j := range data {
					data[j] = 0
				}
			}
			ref.write(addr, data)
			c.Access(now, addr, true, data)
		} else {
			res := c.Access(now, addr, false, nil)
			if !bytes.Equal(res.Data, ref.line(addr)) {
				return fmt.Errorf("access %d at %#x: read diverged", i, addr)
			}
		}
		now += 40
	}
	if msg := c.CheckInvariants(); msg != "" {
		return fmt.Errorf("invariant: %s", msg)
	}
	return nil
}

// TestIntegrityRandomConfigsQuick property-tests the whole controller: any
// combination of the design knobs must preserve data integrity and the
// structural invariants under random traffic.
func TestIntegrityRandomConfigsQuick(t *testing.T) {
	f := func(seed uint16, flags uint8, k uint8) bool {
		cfg := testConfig()
		cfg.CachelineAligned = flags&1 == 0
		cfg.ZeroBlockOpt = flags&2 == 0
		cfg.CompressedWriteback = flags&4 == 0
		cfg.TwoLevelReplacement = flags&8 == 0
		cfg.UseStageArea = flags&16 == 0
		if flags&32 != 0 {
			cfg.Mode = config.ModeFlat
		}
		if flags&64 != 0 {
			cfg.FullyAssociative = true
		}
		if flags&128 != 0 {
			cfg.BlockBytes, cfg.SubBlockBytes = 512, 64
		}
		cfg.CommitK = float64(k%6) - 1 // -1 (inf) .. 4
		if err := integrityErr(cfg, 3000, uint64(seed)); err != nil {
			t.Logf("flags=%08b k=%d seed=%d: %v", flags, k, seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrityRandomGeometryQuick sweeps the shape parameters (super-block
// grouping, associativity, stage size) under the same integrity property.
func TestIntegrityRandomGeometryQuick(t *testing.T) {
	f := func(seed uint16, super, assoc, stage uint8) bool {
		cfg := testConfig()
		cfg.SuperBlockBlocks = []int{1, 2, 4, 8, 16, 32}[int(super)%6]
		cfg.Assoc = []int{1, 2, 4, 8}[int(assoc)%4]
		cfg.StageBytes = []uint64{32 << 10, 64 << 10, 128 << 10, 256 << 10}[int(stage)%4]
		if err := integrityErr(cfg, 3000, uint64(seed)); err != nil {
			t.Logf("super=%d assoc=%d stage=%d seed=%d: %v",
				cfg.SuperBlockBlocks, cfg.Assoc, cfg.StageBytes, seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
