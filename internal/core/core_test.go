package core

import (
	"bytes"
	"fmt"
	"testing"

	"baryon/internal/config"
	"baryon/internal/datagen"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

// testConfig returns a tiny configuration that still exercises every
// structure: multiple sets, a small stage area, heavy conflict pressure.
func testConfig() config.Config {
	c := config.Scaled()
	c.FastBytes = 1 << 20    // 1 MB fast
	c.StageBytes = 128 << 10 // 64 stage frames, 16 sets
	c.SlowBytes = 8 << 20    // 8 MB slow
	c.AccessesPerCore = 0
	return c
}

// refModel is the functional reference: the latest value of every line.
type refModel struct {
	mix    datagen.Mix
	writes map[uint64][]byte
}

func newRef(mix datagen.Mix) *refModel {
	return &refModel{mix: mix, writes: make(map[uint64][]byte)}
}

func (r *refModel) line(addr uint64) []byte {
	if d, ok := r.writes[addr]; ok {
		return d
	}
	var blk [hybrid.BlockSize]byte
	sb := hybrid.BlockOf(addr)
	datagen.Filler(r.mix)(uint64(sb), &blk)
	off := addr % hybrid.BlockSize
	return blk[off : off+64]
}

func (r *refModel) write(addr uint64, data []byte) {
	r.writes[addr] = append([]byte(nil), data...)
}

// runIntegrity drives random traffic at the controller and verifies that
// every read and every prefetched line matches the reference, that
// PeekLine agrees for every touched line, and that the structural
// invariants hold.
func runIntegrity(t *testing.T, cfg config.Config, accesses int, seed uint64) *Controller {
	t.Helper()
	mix := datagen.UniformMix()
	store := hybrid.NewStore(func(b hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		datagen.Filler(mix)(uint64(b), dst)
	})
	stats := sim.NewStats()
	c := New(cfg, store, stats)
	ref := newRef(mix)
	rng := sim.NewRNG(seed)

	osBytes := cfg.OSBlocks() * cfg.BlockBytes
	footprint := osBytes / 4 // concentrate traffic to force evictions
	touched := make(map[uint64]bool)
	now := uint64(0)
	for i := 0; i < accesses; i++ {
		addr := (rng.Uint64n(footprint)) &^ 63
		write := rng.Bool(0.3)
		c.AddInstructions(10)
		if write {
			data := make([]byte, 64)
			for j := range data {
				data[j] = byte(rng.Uint32())
			}
			// Keep some writes compressible so CF transitions both ways.
			if rng.Bool(0.5) {
				for j := range data {
					data[j] = 0
				}
				data[0] = byte(rng.Uint32())
			}
			ref.write(addr, data)
			c.Access(now, addr, true, data)
		} else {
			res := c.Access(now, addr, false, nil)
			if !bytes.Equal(res.Data, ref.line(addr)) {
				t.Fatalf("access %d: read %x mismatch\n got %x\nwant %x", i, addr, res.Data, ref.line(addr))
			}
			for _, p := range res.Prefetched {
				if !bytes.Equal(p.Data, ref.line(p.Addr)) {
					t.Fatalf("access %d: prefetched line %x mismatch", i, p.Addr)
				}
			}
		}
		touched[addr] = true
		now += 50
		if i%2048 == 2047 {
			if msg := c.CheckInvariants(); msg != "" {
				t.Fatalf("access %d: invariant violated: %s", i, msg)
			}
		}
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatalf("final invariant violated: %s", msg)
	}
	for addr := range touched {
		if got := c.PeekLine(addr); !bytes.Equal(got, ref.line(addr)) {
			t.Fatalf("PeekLine(%x) mismatch\n got %x\nwant %x", addr, got, ref.line(addr))
		}
	}
	return c
}

func TestIntegrityCacheMode(t *testing.T) {
	c := runIntegrity(t, testConfig(), 30000, 42)
	if c.Stats().Get("baryon.commits") == 0 {
		t.Fatal("no commits happened; test did not exercise the commit path")
	}
	if c.Stats().Get("baryon.fast.hits") == 0 {
		t.Fatal("no committed-area hits; test did not exercise case 2")
	}
}

func TestIntegrityFlatMode(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = config.ModeFlat
	c := runIntegrity(t, cfg, 30000, 43)
	if c.Stats().Get("baryon.swap.spread")+c.Stats().Get("baryon.swap.threeWay") == 0 {
		t.Fatal("flat mode never swapped")
	}
}

func TestIntegrityFullyAssociative(t *testing.T) {
	cfg := testConfig()
	cfg.FullyAssociative = true
	runIntegrity(t, cfg, 20000, 44)
}

func TestIntegrityFlatFullyAssociative(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = config.ModeFlat
	cfg.FullyAssociative = true
	runIntegrity(t, cfg, 20000, 45)
}

func TestIntegrity64BVariant(t *testing.T) {
	cfg := testConfig()
	cfg.BlockBytes = 512
	cfg.SubBlockBytes = 64
	runIntegrity(t, cfg, 20000, 46)
}

func TestIntegrityUnaligned(t *testing.T) {
	cfg := testConfig()
	cfg.CachelineAligned = false
	runIntegrity(t, cfg, 20000, 47)
}

func TestIntegrityNoZeroOpt(t *testing.T) {
	cfg := testConfig()
	cfg.ZeroBlockOpt = false
	runIntegrity(t, cfg, 20000, 48)
}

func TestIntegrityNoStageArea(t *testing.T) {
	cfg := testConfig()
	cfg.UseStageArea = false
	runIntegrity(t, cfg, 20000, 49)
}

func TestIntegrityNoTwoLevel(t *testing.T) {
	cfg := testConfig()
	cfg.TwoLevelReplacement = false
	runIntegrity(t, cfg, 20000, 50)
}

func TestIntegrityCommitAll(t *testing.T) {
	cfg := testConfig()
	cfg.CommitAll = true
	runIntegrity(t, cfg, 20000, 51)
}

func TestIntegrityKInfinity(t *testing.T) {
	cfg := testConfig()
	cfg.CommitK = -1
	runIntegrity(t, cfg, 20000, 52)
}

func TestIntegrityNoCompressedWriteback(t *testing.T) {
	cfg := testConfig()
	cfg.CompressedWriteback = false
	runIntegrity(t, cfg, 20000, 53)
}

func TestZeroBlockService(t *testing.T) {
	// An all-zero store: reads must be served as zeros and the Z path used.
	cfg := testConfig()
	store := hybrid.NewStore(nil) // zero fill
	stats := sim.NewStats()
	c := New(cfg, store, stats)
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		addr := uint64(i%512) * 64
		res := c.Access(now, addr, false, nil)
		for _, b := range res.Data {
			if b != 0 {
				t.Fatal("zero block served non-zero data")
			}
		}
		now += 50
	}
	if stats.Get("baryon.servedZero") == 0 {
		t.Fatal("Z-bit path never used on an all-zero store")
	}
}

func TestCounterSanity(t *testing.T) {
	c := runIntegrity(t, testConfig(), 15000, 54)
	s := c.Stats()
	if s.Get("baryon.accesses") != 15000 {
		t.Fatalf("accesses=%d, want 15000", s.Get("baryon.accesses"))
	}
	reads := s.Get("baryon.reads")
	served := s.Get("baryon.servedFast") + s.Get("baryon.servedSlow")
	if served != reads {
		t.Fatalf("served (%d) != reads (%d)", served, reads)
	}
	for _, name := range []string{"DDR4-3200.bytesRead", "NVM.bytesRead", "baryon.stage.hits"} {
		if s.Get(name) == 0 {
			t.Fatalf("counter %s is zero", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	collect := func() string {
		c := runIntegrity(t, testConfig(), 8000, 99)
		return c.Stats().String()
	}
	if a, b := collect(), collect(); a != b {
		t.Fatalf("two identical runs diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestNameVariants(t *testing.T) {
	cases := []struct {
		mut  func(*config.Config)
		want string
	}{
		{func(c *config.Config) {}, "Baryon"},
		{func(c *config.Config) { c.FullyAssociative = true }, "Baryon-FA"},
		{func(c *config.Config) { c.BlockBytes = 512; c.SubBlockBytes = 64 }, "Baryon-64B"},
	}
	for _, tc := range cases {
		cfg := testConfig()
		tc.mut(&cfg)
		c := New(cfg, hybrid.NewStore(nil), sim.NewStats())
		if got := c.Name(); got != tc.want {
			t.Errorf("Name()=%q, want %q", got, tc.want)
		}
	}
}

func TestTableIBudgets(t *testing.T) {
	// Section III-B storage claims at paper scale: stage tag array 448 kB,
	// remap table ~0.1% of capacity, remap cache 32 kB.
	cfg := config.PaperScale()
	if got := cfg.StageTagArrayBytes(); got != 448*1024 {
		t.Fatalf("stage tag array = %d B, want 448 kB", got)
	}
	table := cfg.RemapTableBytes()
	total := cfg.FastBytes + cfg.SlowBytes
	frac := float64(table) / float64(total)
	if frac > 0.002 || frac < 0.0004 {
		t.Fatalf("remap table fraction %.5f, want ~0.001", frac)
	}
	if sets := cfg.StageSets(); sets != 8192 {
		t.Fatalf("stage sets = %d, want 8192 (Table I)", sets)
	}
}

func ExampleController_Name() {
	c := New(testConfig(), hybrid.NewStore(nil), sim.NewStats())
	fmt.Println(c.Name())
	// Output: Baryon
}
