package core

import (
	"bytes"
	"testing"

	"baryon/internal/config"
	"baryon/internal/datagen"
	"baryon/internal/hybrid"
	"baryon/internal/metadata"
	"baryon/internal/sim"
)

// stormController drives mixed traffic and returns the controller for
// white-box inspection.
func stormController(t *testing.T, cfg config.Config, accesses int, seed uint64) *Controller {
	t.Helper()
	mix := datagen.UniformMix()
	store := hybrid.NewStore(func(b hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		datagen.Filler(mix)(uint64(b), dst)
	})
	c := New(cfg, store, sim.NewStats())
	rng := sim.NewRNG(seed)
	footprint := cfg.OSBlocks() * cfg.BlockBytes / 4
	now := uint64(0)
	for i := 0; i < accesses; i++ {
		addr := rng.Uint64n(footprint) &^ 63
		c.AddInstructions(8)
		if rng.Bool(0.3) {
			data := make([]byte, 64)
			for j := range data {
				data[j] = byte(rng.Uint32())
			}
			c.Access(now, addr, true, data)
		} else {
			c.Access(now, addr, false, nil)
		}
		now += 40
	}
	return c
}

// TestRemapPositionMatchesMetadataDecode cross-checks the simulator's
// committed layout against the paper's architectural position calculation:
// building the 2-byte remap entries for a super-block and running the
// prefix-sum decode (Fig. 5(e)) must yield exactly the slot index where the
// simulator stored each range.
func TestRemapPositionMatchesMetadataDecode(t *testing.T) {
	cfg := testConfig()
	c := stormController(t, cfg, 25000, 77)

	checked := 0
	for si := 0; si < int(c.geom.sets); si++ {
		for wi := 0; wi < c.geom.ways; wi++ {
			m, f := c.fastDir.Way(si, wi)
			if !m.Valid {
				continue
			}
			// Build the architectural entries of this frame's super-block,
			// restricted to blocks stored in this way.
			var se metadata.SuperEntries
			for off := 0; off < int(c.geom.superBlocks); off++ {
				b := c.blockID(hybrid.SuperBlockID(m.Key), uint8(off))
				if b >= uint64(len(c.remap)) {
					continue
				}
				ri := &c.remap[b]
				if ri.way != int32(wi) || ri.z {
					continue
				}
				se[off] = metadata.RemapEntry{
					Remap: ri.remap, CF2: ri.cf2, CF4: ri.cf4,
					Pointer: uint8(wi) & 3,
				}
			}
			for idx := range f.occ {
				rg := &f.occ[idx]
				got := se.SlotPosition(int(rg.blkOff), int(rg.subOff))
				if got != idx {
					t.Fatalf("set %d way %d: range (blk %d, sub %d) at slot %d but decode says %d",
						si, wi, rg.blkOff, rg.subOff, idx, got)
				}
				checked++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d ranges checked; storm too small", checked)
	}
}

// TestStageTagEncodeMatchesState round-trips live stage tag entries through
// the 14-byte hardware encoding.
func TestStageTagEncodeMatchesState(t *testing.T) {
	cfg := testConfig()
	c := stormController(t, cfg, 15000, 78)
	live := 0
	for si := 0; si < int(c.geom.stageSets); si++ {
		for wi := 0; wi < c.geom.stageWays; wi++ {
			tag := &c.stageDir.Payload(si, wi).tag
			if !tag.Valid {
				continue
			}
			enc := tag.Encode()
			dec := metadata.DecodeStageTag(enc)
			// The tag field is truncated to 21 bits by the encoding.
			if dec.Slots != tag.Slots || dec.FIFO != tag.FIFO {
				t.Fatalf("stage tag round trip mismatch:\n got %+v\nwant %+v", dec, tag)
			}
			live++
		}
	}
	if live == 0 {
		t.Fatal("no live stage entries")
	}
}

func TestCommitAllNeverEvicts(t *testing.T) {
	cfg := testConfig()
	cfg.CommitAll = true
	c := stormController(t, cfg, 15000, 79)
	if c.Stats().Get("baryon.evictsToSlow") != 0 {
		t.Fatal("commit-all still evicted stage frames to slow memory")
	}
	if c.Stats().Get("baryon.commits") == 0 {
		t.Fatal("no commits at all")
	}
}

// TestWriteOverflowEvictsWholeBlock builds the case-2 overflow scenario
// directly: a compressible range is committed, then a write makes it
// incompressible; the whole block must fall back to slow memory and reads
// must still return the new data (Rule 4 consequence, Section III-D).
func TestWriteOverflowEvictsWholeBlock(t *testing.T) {
	cfg := testConfig()
	store := hybrid.NewStore(nil) // all-zero: maximally compressible
	cfg.ZeroBlockOpt = false      // force real CF-4 ranges, not Z entries
	c := New(cfg, store, sim.NewStats())

	// Touch a block until staged and committed: read it, then storm other
	// supers in the same stage set to force the commit.
	target := uint64(3 * cfg.BlockBytes)
	now := uint64(0)
	c.Access(now, target, false, nil)
	ssi := c.stageSetIdx(c.superOf(3))
	for i := uint64(1); i < 40; i++ {
		super := uint64(c.geom.stageSets)*i + uint64(ssi)
		b := super * c.geom.superBlocks
		if b >= c.geom.osBlocks {
			break
		}
		now += 100
		c.Access(now, b*cfg.BlockBytes, false, nil)
	}
	if c.remap[3].remap == 0 {
		t.Skip("block was not committed by the storm; scenario not reachable at this size")
	}
	before := c.Stats().Get("baryon.fast.writeOverflows")

	// Write incompressible data into the committed compressed range.
	rng := sim.NewRNG(5)
	data := make([]byte, 64)
	for j := range data {
		data[j] = byte(rng.Uint32())
	}
	now += 100
	c.Access(now, target, true, data)

	if got := c.Stats().Get("baryon.fast.writeOverflows"); got != before+1 {
		t.Fatalf("write overflows %d, want %d", got, before+1)
	}
	if c.remap[3].valid() {
		t.Fatal("overflowed block still committed")
	}
	if got := c.PeekLine(target); !bytes.Equal(got, data) {
		t.Fatal("overflow lost the written data")
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated after overflow: %s", msg)
	}
}

// TestCompressedWriteback verifies the Section III-F optimisation: dirty
// compressible ranges leave hints behind, and refetching the block uses
// them (compressed transfers and hint-driven prefetch).
func TestCompressedWriteback(t *testing.T) {
	cfg := testConfig()
	c := stormController(t, cfg, 25000, 80)
	if c.Stats().Get("baryon.compressedWritebacks") == 0 {
		t.Fatal("no compressed writebacks despite compressible traffic")
	}
	hints := 0
	for b := range c.cf2Hint {
		if c.cf2Hint[b] != 0 || c.cf4Hint[b] != 0 {
			hints++
		}
	}
	if hints == 0 {
		t.Fatal("no CF hints recorded")
	}
}

func TestNoCompressedWritebackNoHints(t *testing.T) {
	cfg := testConfig()
	cfg.CompressedWriteback = false
	c := stormController(t, cfg, 15000, 81)
	if c.Stats().Get("baryon.compressedWritebacks") != 0 {
		t.Fatal("compressed writebacks despite the option being off")
	}
	for b := range c.cf2Hint {
		if c.cf2Hint[b] != 0 || c.cf4Hint[b] != 0 {
			t.Fatal("hints recorded despite the option being off")
		}
	}
}

// TestStageBreakdownImproves checks the Fig. 3 property on a single
// controller: committed blocks miss less than staged ones. The property is
// a locality property, so the traffic must revisit blocks with consistent
// footprints (uniform-random traffic has no predictable footprint and would
// not — and should not — show it).
func TestStageBreakdownImproves(t *testing.T) {
	cfg := testConfig()
	mix := datagen.UniformMix()
	store := hybrid.NewStore(func(b hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		datagen.Filler(mix)(uint64(b), dst)
	})
	c := New(cfg, store, sim.NewStats())
	rng := sim.NewRNG(82)
	hotBlocks := cfg.OSBlocks() / 16
	now := uint64(0)
	for i := 0; i < 8000; i++ {
		// Visit a hot block: touch the same 3 sub-blocks it always uses.
		b := rng.Uint64n(hotBlocks)
		for s := uint64(0); s < 3; s++ {
			for l := uint64(0); l < 2; l++ {
				c.AddInstructions(8)
				c.Access(now, b*cfg.BlockBytes+s*256+l*64, false, nil)
				now += 40
			}
		}
	}
	bd := c.Breakdown()
	if bd.CHits == 0 {
		t.Fatal("no committed activity")
	}
	if bd.CReadMisses+bd.CWriteOverflows >= bd.SReadMisses+bd.SWriteOverflows {
		t.Fatalf("committed blocks (%.2f) not more stable than staged (%.2f)",
			bd.CReadMisses+bd.CWriteOverflows, bd.SReadMisses+bd.SWriteOverflows)
	}
}

// TestTwoLevelReplacementUsesMultipleFrames verifies that the block-level
// path actually spreads a super-block's data across frames (Fig. 8).
func TestTwoLevelReplacementUsesMultipleFrames(t *testing.T) {
	cfg := testConfig()
	c := stormController(t, cfg, 25000, 83)
	if c.Stats().Get("baryon.blockReplacements") == 0 {
		t.Fatal("no block-level replacements")
	}
	cfg2 := testConfig()
	cfg2.TwoLevelReplacement = false
	c2 := stormController(t, cfg2, 25000, 83)
	if c2.Stats().Get("baryon.subReplacements") <= c.Stats().Get("baryon.subReplacements") {
		t.Fatal("disabling block-level replacement did not increase sub-block replacements")
	}
}

func TestFlatModeInitialResidency(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = config.ModeFlat
	store := hybrid.NewStore(nil)
	c := New(cfg, store, sim.NewStats())
	// Every flat-area frame starts holding its native block, fully present.
	res := c.Access(0, 0, false, nil) // OS block 0 is fast-native
	if !res.ServedByFast {
		t.Fatal("native block not resident at start")
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatalf("initial flat state invalid: %s", msg)
	}
}

func TestFlatSwapsHappen(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = config.ModeFlat
	c := stormController(t, cfg, 30000, 84)
	spread := c.Stats().Get("baryon.swap.spread")
	three := c.Stats().Get("baryon.swap.threeWay")
	if spread == 0 {
		t.Fatal("no spread swaps in flat mode")
	}
	t.Logf("spread=%d threeWay=%d aborts=%d", spread, three, c.Stats().Get("baryon.commitAborts"))
}

// TestMultiFrameSupers checks that one super-block can occupy several fast
// frames when its hot data exceed one frame (the paper observes 1.12% of
// cases; the storm makes them common enough to observe).
func TestMultiFrameSupers(t *testing.T) {
	cfg := testConfig()
	c := stormController(t, cfg, 40000, 85)
	if c.Stats().Get("baryon.multiFrameSupers") == 0 {
		t.Skip("storm produced no multi-frame supers at this size")
	}
}
