package service

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// CacheStats is a point-in-time view of the result store's counters.
type CacheStats struct {
	// Hits counts lookups served from memory, DiskHits the subset of hits
	// that had to be reloaded from the on-disk bundle directory first.
	Hits, DiskHits uint64
	// Misses counts lookups that found nothing anywhere.
	Misses uint64
	// Evictions counts in-memory entries dropped by the LRU bound (disk
	// copies are never evicted).
	Evictions uint64
	// Entries is the current in-memory entry count.
	Entries int
}

// Cache is the content-addressed result store: canonical bundle bytes keyed
// by the spec hash, held in a bounded in-memory LRU with an optional
// write-through on-disk bundle directory. Because bundle bytes are
// canonical, a hit is byte-identical to re-running the simulation; because
// the disk layer is keyed by the same hash, a restarted daemon serves its
// predecessor's results cold (cold-start reload).
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // MRU at front
	m   map[string]*list.Element // hash -> *cacheEntry element
	dir string

	hits, diskHits, misses, evictions uint64
}

type cacheEntry struct {
	hash string
	data []byte
}

// defaultCacheEntries bounds the in-memory LRU when the caller does not.
const defaultCacheEntries = 1024

// NewCache builds a store holding up to entries bundles in memory
// (entries <= 0 selects the default) and, when dir is non-empty, mirroring
// every stored bundle into dir for persistence across restarts.
func NewCache(entries int, dir string) (*Cache, error) {
	if entries <= 0 {
		entries = defaultCacheEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Cache{
		cap: entries,
		ll:  list.New(),
		m:   make(map[string]*list.Element),
		dir: dir,
	}, nil
}

// Get returns the stored canonical bundle bytes for hash, consulting memory
// first and the on-disk directory second (promoting a disk hit into
// memory). The returned slice is shared and must not be modified.
func (c *Cache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.m[hash]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	// The disk read happens outside the mutex so one cold lookup never
	// stalls concurrent Get/Put/Stats calls; the map is re-checked after
	// reacquiring in case a concurrent fill won the race.
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(hash)); err == nil {
			c.mu.Lock()
			defer c.mu.Unlock()
			if el, ok := c.m[hash]; ok {
				c.ll.MoveToFront(el)
				c.hits++
				return el.Value.(*cacheEntry).data, true
			}
			c.hits++
			c.diskHits++
			c.insert(hash, data)
			return data, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores the canonical bundle bytes for hash, writing through to the
// on-disk directory when one is configured. Storing the same hash again is
// a no-op refresh (identical hash implies identical bytes).
func (c *Cache) Put(hash string, data []byte) error {
	c.mu.Lock()
	c.insert(hash, data)
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil
	}
	// Write-then-rename so a crashed daemon never leaves a torn bundle a
	// cold-start reload would serve.
	tmp := c.path(hash) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path(hash))
}

// insert adds or refreshes the in-memory entry. Caller holds the mutex.
func (c *Cache) insert(hash string, data []byte) {
	if el, ok := c.m[hash]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).data = data
		return
	}
	c.m[hash] = c.ll.PushFront(&cacheEntry{hash: hash, data: data})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).hash)
		c.evictions++
	}
}

// Stats returns the store's current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		DiskHits:  c.diskHits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
	}
}

// path maps a spec hash ("sha256:<hex>") to its bundle file in the disk
// directory; the ':' is rewritten so names stay portable.
func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, fmt.Sprintf("%s.bundle.json", strings.ReplaceAll(hash, ":", "-")))
}
