package service

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"baryon/internal/report"
)

// CacheStats is a point-in-time view of the result store's counters.
type CacheStats struct {
	// Hits counts lookups served from memory, DiskHits the subset of hits
	// that had to be reloaded from the on-disk bundle directory first.
	Hits, DiskHits uint64
	// Misses counts lookups that found nothing anywhere.
	Misses uint64
	// Evictions counts in-memory entries dropped by the LRU bound (disk
	// copies are never evicted).
	Evictions uint64
	// Entries is the current in-memory entry count.
	Entries int
	// Corrupt counts disk entries that failed verification (bad trailer,
	// truncated bytes, spec-hash mismatch); Quarantined counts the subset
	// successfully moved into the quarantine/ subdirectory. A corrupt entry
	// is a miss: the job recomputes and the store rewrites it.
	Corrupt, Quarantined uint64
	// DiskErrors counts failed disk operations (write, rename, read errors
	// other than not-exist). Any disk-write failure flips Degraded.
	DiskErrors uint64
	// Degraded reports the store is running memory-only: the last disk
	// write failed, so results are served but not persisted. A later
	// successful write clears it.
	Degraded bool
	// RecoveredTmp counts orphaned *.tmp files the startup recovery scan
	// swept from the bundle directory (artifacts of a crash mid-write).
	RecoveredTmp uint64
}

// storeTrailerPrefix opens the integrity trailer line appended to every
// on-disk bundle: "#baryon-store sha256:<hex>\n" where the digest covers
// every preceding byte. The '#' keeps the file a line-oriented artifact a
// human can still inspect; JSON tooling that reads one value ignores it.
const storeTrailerPrefix = "#baryon-store sha256:"

// quarantineDir is the subdirectory of the bundle directory that corrupt
// entries are moved into (and startup counts).
const quarantineDir = "quarantine"

// Cache is the content-addressed result store: canonical bundle bytes keyed
// by the spec hash, held in a bounded in-memory LRU with an optional
// write-through on-disk bundle directory. Because bundle bytes are
// canonical, a hit is byte-identical to re-running the simulation; because
// the disk layer is keyed by the same hash, a restarted daemon serves its
// predecessor's results cold (cold-start reload).
//
// The disk layer is verified and crash-safe: every file carries a sha256
// trailer and is re-verified on read (trailer digest plus a recomputation
// of the bundle's canonical spec hash against its key), writes fsync
// before the publishing rename, corrupt or truncated files are moved to
// quarantine/ and treated as misses (the deterministic run recomputes
// byte-identical bytes), and a failed disk write degrades the store to
// memory-only instead of failing the job.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // MRU at front
	m   map[string]*list.Element // hash -> *cacheEntry element
	dir string
	fs  storeFS
	log io.Writer

	hits, diskHits, misses, evictions uint64
	corrupt, quarantined, diskErrors  uint64
	recoveredTmp                      uint64
	degraded                          bool
}

type cacheEntry struct {
	hash string
	data []byte
}

// defaultCacheEntries bounds the in-memory LRU when the caller does not.
const defaultCacheEntries = 1024

// StoreConfig configures a Cache beyond the entry bound and directory:
// where recovery and degradation messages go, and (for tests) the
// filesystem seam.
type StoreConfig struct {
	// Entries bounds the in-memory LRU (<= 0 selects the default).
	Entries int
	// Dir, when non-empty, write-through persists bundles for cold-start
	// reload across restarts.
	Dir string
	// Log receives one-line recovery and degradation diagnostics
	// (nil = os.Stderr).
	Log io.Writer
	// FS overrides the filesystem (nil = the real one); tests inject a
	// FaultFS here to exercise IO failure paths.
	FS storeFS
}

// NewCache builds a store holding up to entries bundles in memory
// (entries <= 0 selects the default) and, when dir is non-empty, mirroring
// every stored bundle into dir for persistence across restarts.
func NewCache(entries int, dir string) (*Cache, error) {
	return NewStore(StoreConfig{Entries: entries, Dir: dir})
}

// NewStore builds a Cache from a full StoreConfig and, when a directory is
// configured, runs the startup recovery scan: orphaned *.tmp files (a crash
// mid-write) are deleted, quarantined entries are counted, and a one-line
// summary is logged.
func NewStore(cfg StoreConfig) (*Cache, error) {
	entries := cfg.Entries
	if entries <= 0 {
		entries = defaultCacheEntries
	}
	sfs := cfg.FS
	if sfs == nil {
		sfs = osFS{}
	}
	logw := cfg.Log
	if logw == nil {
		logw = os.Stderr
	}
	c := &Cache{
		cap: entries,
		ll:  list.New(),
		m:   make(map[string]*list.Element),
		dir: cfg.Dir,
		fs:  sfs,
		log: logw,
	}
	if c.dir != "" {
		if err := sfs.MkdirAll(c.dir); err != nil {
			return nil, err
		}
		c.recoverDir()
	}
	return c, nil
}

// recoverDir is the startup recovery scan over the bundle directory: sweep
// orphaned *.tmp files a crashed predecessor left mid-write, count existing
// bundles and quarantined entries, and log one summary line.
func (c *Cache) recoverDir() {
	names, err := c.fs.ReadDir(c.dir)
	if err != nil {
		c.diskErrors++
		fmt.Fprintf(c.log, "service: store recovery: reading %s: %v\n", c.dir, err)
		return
	}
	var swept, failed, bundles int
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, ".tmp"):
			if err := c.fs.Remove(filepath.Join(c.dir, name)); err != nil {
				c.diskErrors++
				failed++
			} else {
				swept++
			}
		case strings.HasSuffix(name, ".bundle.json"):
			bundles++
		}
	}
	c.recoveredTmp = uint64(swept)
	quarantined := 0
	if qnames, err := c.fs.ReadDir(filepath.Join(c.dir, quarantineDir)); err == nil {
		quarantined = len(qnames)
	}
	fmt.Fprintf(c.log, "service: store recovery: %d bundle(s) on disk, swept %d orphaned tmp file(s), %d quarantined entr(ies)\n",
		bundles, swept, quarantined)
	if failed > 0 {
		fmt.Fprintf(c.log, "service: store recovery: failed to remove %d tmp file(s)\n", failed)
	}
}

// Get returns the stored canonical bundle bytes for hash, consulting memory
// first and the on-disk directory second (promoting a verified disk hit
// into memory). The returned slice is shared and must not be modified.
func (c *Cache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.m[hash]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, true
	}
	dir := c.dir
	c.mu.Unlock()
	// The disk read happens outside the mutex so one cold lookup never
	// stalls concurrent Get/Put/Stats calls; the map is re-checked after
	// reacquiring in case a concurrent fill won the race.
	if dir != "" {
		if data, ok := c.loadDisk(hash); ok {
			c.mu.Lock()
			defer c.mu.Unlock()
			if el, ok := c.m[hash]; ok {
				c.ll.MoveToFront(el)
				c.hits++
				return el.Value.(*cacheEntry).data, true
			}
			c.hits++
			c.diskHits++
			c.insert(hash, data)
			return data, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// loadDisk reads and verifies hash's on-disk entry. Anything that fails
// verification — unreadable trailer, digest mismatch, undecodable bundle,
// spec hash not matching the filename key — is quarantined and reported as
// a miss: the deterministic run recomputes identical bytes and Put rewrites
// the entry.
func (c *Cache) loadDisk(hash string) ([]byte, bool) {
	raw, err := c.fs.ReadFile(c.path(hash))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.mu.Lock()
			c.diskErrors++
			c.mu.Unlock()
			fmt.Fprintf(c.log, "service: store: reading %s: %v\n", c.path(hash), err)
		}
		return nil, false
	}
	data, err := verifyStoreBytes(hash, raw)
	if err != nil {
		c.quarantine(hash, err)
		return nil, false
	}
	return data, true
}

// verifyStoreBytes checks one on-disk store entry end to end and returns
// the bundle bytes it carries: the sha256 trailer must match the preceding
// bytes (catches torn/flipped/truncated writes), the bundle must decode
// under the strict schema, and its canonical spec hash — both the recorded
// field and a recomputation from the embedded spec key — must equal the
// hash the entry is filed under (catches renamed or cross-wired entries).
func verifyStoreBytes(hash string, raw []byte) ([]byte, error) {
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		return nil, errors.New("store entry is truncated (no trailer line)")
	}
	idx := bytes.LastIndexByte(raw[:len(raw)-1], '\n')
	trailer := string(raw[idx+1 : len(raw)-1])
	if !strings.HasPrefix(trailer, storeTrailerPrefix) {
		return nil, errors.New("store entry has no integrity trailer")
	}
	data := raw[:idx+1]
	sum := sha256.Sum256(data)
	if want := strings.TrimPrefix(trailer, "#baryon-store "); want != "sha256:"+hex.EncodeToString(sum[:]) {
		return nil, errors.New("store entry digest mismatch (torn or corrupted write)")
	}
	b, err := report.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("store entry bundle: %w", err)
	}
	if b.SpecHash != hash {
		return nil, fmt.Errorf("store entry carries spec hash %s, filed under %s", b.SpecHash, hash)
	}
	recomputed, err := b.Spec.Hash()
	if err != nil {
		return nil, fmt.Errorf("store entry spec rehash: %w", err)
	}
	if recomputed != hash {
		return nil, fmt.Errorf("store entry spec rehashes to %s, filed under %s", recomputed, hash)
	}
	return data, nil
}

// quarantine moves hash's corrupt on-disk entry into the quarantine/
// subdirectory (preserving the bytes for post-mortem) and counts it. A
// failed move deletes the file instead: a corrupt entry must never be
// served again either way.
func (c *Cache) quarantine(hash string, cause error) {
	c.mu.Lock()
	c.corrupt++
	c.mu.Unlock()
	src := c.path(hash)
	qdir := filepath.Join(c.dir, quarantineDir)
	moved := false
	if err := c.fs.MkdirAll(qdir); err == nil {
		if err := c.fs.Rename(src, filepath.Join(qdir, filepath.Base(src))); err == nil {
			moved = true
		}
	}
	if !moved {
		if err := c.fs.Remove(src); err != nil {
			c.mu.Lock()
			c.diskErrors++
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	if moved {
		c.quarantined++
	}
	c.mu.Unlock()
	fmt.Fprintf(c.log, "service: store: quarantined %s (moved=%v): %v\n", filepath.Base(src), moved, cause)
}

// Put stores the canonical bundle bytes for hash, writing through to the
// on-disk directory when one is configured. Storing the same hash again is
// a no-op refresh (identical hash implies identical bytes). A disk-write
// failure never fails the caller: the result stays served from memory, the
// store flips to degraded (memory-only) mode, and the failure is counted
// and logged — the next successful write clears degradation.
func (c *Cache) Put(hash string, data []byte) {
	c.mu.Lock()
	c.insert(hash, data)
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return
	}
	// Write+fsync then rename so a crashed daemon never leaves a torn
	// bundle under its published name; the trailer lets a reader detect
	// the (now only theoretical) torn case anyway.
	entry := appendStoreTrailer(data)
	tmp := c.path(hash) + ".tmp"
	err := c.fs.WriteFileSync(tmp, entry)
	if err == nil {
		err = c.fs.Rename(tmp, c.path(hash))
		if err != nil {
			// Don't leave the orphan for the next recovery scan if we can
			// help it; ignore a failed cleanup (the scan sweeps it later).
			_ = c.fs.Remove(tmp)
		}
	}
	c.mu.Lock()
	wasDegraded := c.degraded
	if err != nil {
		c.diskErrors++
		c.degraded = true
	} else {
		c.degraded = false
	}
	c.mu.Unlock()
	if err != nil && !wasDegraded {
		fmt.Fprintf(c.log, "service: store: disk write failed, serving memory-only until writes recover: %v\n", err)
	}
	if err == nil && wasDegraded {
		fmt.Fprintf(c.log, "service: store: disk writes recovered, persistence restored\n")
	}
}

// appendStoreTrailer renders the on-disk entry for bundle bytes: the bytes
// themselves followed by the sha256 integrity trailer line.
func appendStoreTrailer(data []byte) []byte {
	sum := sha256.Sum256(data)
	entry := make([]byte, 0, len(data)+len(storeTrailerPrefix)+2*sha256.Size+1)
	entry = append(entry, data...)
	entry = append(entry, storeTrailerPrefix...)
	entry = append(entry, hex.EncodeToString(sum[:])...)
	entry = append(entry, '\n')
	return entry
}

// insert adds or refreshes the in-memory entry. Caller holds the mutex.
func (c *Cache) insert(hash string, data []byte) {
	if el, ok := c.m[hash]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).data = data
		return
	}
	c.m[hash] = c.ll.PushFront(&cacheEntry{hash: hash, data: data})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).hash)
		c.evictions++
	}
}

// Degraded reports whether the store is currently memory-only (last disk
// write failed).
func (c *Cache) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Stats returns the store's current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:         c.hits,
		DiskHits:     c.diskHits,
		Misses:       c.misses,
		Evictions:    c.evictions,
		Entries:      c.ll.Len(),
		Corrupt:      c.corrupt,
		Quarantined:  c.quarantined,
		DiskErrors:   c.diskErrors,
		Degraded:     c.degraded,
		RecoveredTmp: c.recoveredTmp,
	}
}

// path maps a spec hash ("sha256:<hex>") to its bundle file in the disk
// directory; the ':' is rewritten so names stay portable.
func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, fmt.Sprintf("%s.bundle.json", strings.ReplaceAll(hash, ":", "-")))
}
