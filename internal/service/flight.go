package service

import (
	"context"
	"sync"
)

// flightGroup collapses concurrent calls for the same key into one
// execution: the first caller runs fn, every concurrent duplicate waits for
// that result. It is the stdlib-only core of golang.org/x/sync's
// singleflight, specialised to Outcome and made context-aware — a waiter
// whose ctx dies stops waiting (the leader keeps running; its result still
// lands in the cache for later callers).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	out  Outcome
	err  error
}

// do runs fn for key unless an identical call is already in flight, in
// which case it waits and returns that call's result with shared=true.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (Outcome, error)) (out Outcome, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if call, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.out, true, call.err
		case <-ctx.Done():
			return Outcome{}, true, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.m[key] = call
	g.mu.Unlock()

	call.out, call.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(call.done)
	return call.out, false, call.err
}
