// Package service is the shared run-orchestration core every command
// launches simulations through: one Job type (design + workload + seed +
// run-shape overrides, canonicalized and content-addressed by the
// internal/report spec hash), a bounded worker pool built on
// experiment.RunPairsCtx, singleflight collapsing of concurrent identical
// submissions, and a content-addressed result store whose hits return
// byte-identical bundles without simulating. cmd/baryonsim, cmd/sweep and
// cmd/experiments share its flag plumbing and single-run wiring;
// cmd/baryonsimd serves its HTTP API; cmd/loadgen drives that API.
//
// The cache is sound because runs are deterministic: the spec hash covers
// the full design spec plus the effective run shape (mode, access budget,
// warmup/epoch windows, seed, workload), and bundle bytes are canonical
// (internal/report's determinism contract), so two jobs with equal hashes
// would simulate to byte-identical bundles — serving the stored bytes is
// indistinguishable from re-running.
package service

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/experiment"
	"baryon/internal/report"
	"baryon/internal/trace"
)

// Job is one simulation request: a registered design, a named workload, the
// seed and the run-shape knobs. It is the wire schema of cmd/baryonsimd's
// submit endpoints. Anything beyond the run shape — device topologies,
// compression knobs, fault injection — belongs in the design spec, which the
// spec hash covers in full; that keeps every field that can change a result
// inside the cache key.
type Job struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	// Mode is "cache" or "flat"; empty keeps the base config's mode.
	Mode string `json:"mode,omitempty"`
	// Accesses is the per-core access budget (0 = base config default).
	Accesses int `json:"accesses,omitempty"`
	// Warmup is the per-core warmup window before measurement (0 = cold).
	Warmup int `json:"warmup,omitempty"`
	// Epoch collects a time-series snapshot every N accesses (0 = off).
	Epoch int `json:"epoch,omitempty"`
}

// Resolved is a validated, canonicalized job: the registered spec, the
// workload, the effective configuration, and the content-address (the
// canonical spec hash) identical requests share.
type Resolved struct {
	Job  Job
	Spec experiment.DesignSpec
	W    trace.Workload
	Cfg  config.Config
	Key  report.SpecKey
	Hash string
}

// resolve validates j against the design/workload registries and base, and
// computes its content-address. Two invocations that reach the same
// effective run through different spellings (e.g. an explicit access budget
// equal to the default) resolve to the same hash, because the key records
// effective post-override values.
func (j Job) resolve(base config.Config) (Resolved, error) {
	if j.Design == "" {
		return Resolved{}, fmt.Errorf("service: job has no design")
	}
	spec, ok := experiment.Lookup(j.Design)
	if !ok {
		return Resolved{}, experiment.UnknownDesignError(j.Design)
	}
	if j.Workload == "" {
		return Resolved{}, fmt.Errorf("service: job has no workload")
	}
	w, ok := trace.ByName(j.Workload)
	if !ok {
		return Resolved{}, fmt.Errorf("service: unknown workload %q", j.Workload)
	}
	if j.Accesses < 0 || j.Warmup < 0 || j.Epoch < 0 {
		return Resolved{}, fmt.Errorf("service: accesses, warmup and epoch must be >= 0")
	}
	cfg := base
	cfg.Seed = j.Seed
	switch j.Mode {
	case "":
	case "cache":
		cfg.Mode = config.ModeCache
	case "flat":
		cfg.Mode = config.ModeFlat
	default:
		return Resolved{}, fmt.Errorf("service: unknown mode %q (want cache or flat)", j.Mode)
	}
	if j.Accesses > 0 {
		cfg.AccessesPerCore = j.Accesses
	}
	cfg.WarmupAccessesPerCore = j.Warmup
	cfg.EpochAccesses = j.Epoch
	if err := experiment.ValidateSpec(spec, cfg); err != nil {
		return Resolved{}, err
	}
	key, err := report.Key(spec, cfg, w.Name)
	if err != nil {
		return Resolved{}, err
	}
	hash, err := key.Hash()
	if err != nil {
		return Resolved{}, err
	}
	return Resolved{Job: j, Spec: spec, W: w, Cfg: cfg, Key: key, Hash: hash}, nil
}
