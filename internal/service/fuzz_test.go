package service

import (
	"encoding/json"
	"strings"
	"testing"

	"baryon/internal/config"
)

// FuzzJobDecode throws arbitrary bytes at the HTTP job-decoding surface —
// the strict JSON decode every /api/v1/run and /api/v1/jobs body passes
// through, followed by Resolve against the base config. Nothing here may
// panic; every accepted job must resolve to a well-formed content-address
// or a client error.
func FuzzJobDecode(f *testing.F) {
	f.Add(`{"design":"Baryon","workload":"505.mcf_r","seed":1}`)
	f.Add(`{"design":"Baryon","workload":"505.mcf_r","mode":"flat","accesses":1000,"warmup":10}`)
	f.Add(`{"design":"NoSuchDesign","workload":"505.mcf_r"}`)
	f.Add(`{"design":"Baryon","workload":"505.mcf_r","cacheWays":4}`)
	f.Add(`{"design":"Baryon","workload":"505.mcf_r","seed":18446744073709551615}`)
	f.Add(`{`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	cfg := config.Scaled()
	cfg.AccessesPerCore = 1000
	s, err := New(Options{BaseConfig: &cfg})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		var job Job
		if err := dec.Decode(&job); err != nil {
			t.Skip() // malformed or unknown-field JSON: rejected at the handler
		}
		r, err := s.Resolve(job)
		if err != nil {
			return // client error, the 400 path
		}
		if !strings.HasPrefix(r.Hash, "sha256:") || len(r.Hash) != len("sha256:")+64 {
			t.Fatalf("accepted job resolved to a malformed content-address %q", r.Hash)
		}
	})
}

// FuzzStoreVerify throws arbitrary bytes at the verified disk-entry parser:
// verifyStoreBytes must never panic, and must only accept bytes whose
// trailer digest, bundle decode and spec hash all agree with the filed key.
func FuzzStoreVerify(f *testing.F) {
	key := "sha256:" + strings.Repeat("ab", 32)
	f.Add(key, []byte("{}\n"+storeTrailerPrefix+strings.Repeat("00", 32)+"\n"))
	f.Add(key, []byte(storeTrailerPrefix+"\n"))
	f.Add(key, []byte("bundle with no trailer"))
	f.Add(key, []byte{})
	f.Add(key, appendStoreTrailer([]byte("{\"schema\":1}\n")))
	f.Fuzz(func(t *testing.T, hash string, raw []byte) {
		data, err := verifyStoreBytes(hash, raw)
		if err != nil {
			return
		}
		// Accepted bytes must round-trip: re-appending the trailer to the
		// returned bundle bytes reproduces a verifiable entry.
		if _, err := verifyStoreBytes(hash, appendStoreTrailer(data)); err != nil {
			t.Fatalf("accepted entry fails re-verification: %v", err)
		}
	})
}
