package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"baryon/internal/config"
	"baryon/internal/report"
)

// quickConfig is a base configuration small enough that a full simulation
// finishes in well under a second.
func quickConfig() config.Config {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 1200
	return cfg
}

func quickService(t *testing.T, opts Options) *Service {
	t.Helper()
	if opts.BaseConfig == nil {
		cfg := quickConfig()
		opts.BaseConfig = &cfg
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var quickJob = Job{Design: "Baryon", Workload: "505.mcf_r", Seed: 1}

// fakeBundle builds a minimal valid store entry: canonical bundle bytes
// whose recorded and recomputed spec hash agree, so the verified disk layer
// accepts it without running a simulation.
func fakeBundle(t *testing.T, seed uint64) (hash string, data []byte) {
	t.Helper()
	key := report.SpecKey{Workload: "synthetic", Seed: seed}
	h, err := key.Hash()
	if err != nil {
		t.Fatal(err)
	}
	b := report.Bundle{
		Schema:   report.SchemaVersion,
		SpecHash: h,
		Spec:     key,
		Counters: map[string]uint64{"x": seed},
		Floats:   map[string]float64{},
	}
	d, err := b.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	return h, d
}

// TestRunCacheHit pins the core cache contract: the second identical
// submission is a hit, costs no simulation, and returns byte-identical
// bundle bytes.
func TestRunCacheHit(t *testing.T) {
	s := quickService(t, Options{})
	ctx := context.Background()
	first, err := s.Run(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if first.ServedWithoutSim() {
		t.Fatalf("first run reported cacheHit=%v collapsed=%v, want a simulation", first.CacheHit, first.Collapsed)
	}
	if first.Result == nil {
		t.Fatal("first run carries no in-memory Result")
	}
	second, err := s.Run(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second identical run was not a cache hit")
	}
	if !bytes.Equal(first.Bundle, second.Bundle) {
		t.Fatalf("cache hit returned different bytes (%d vs %d)", len(first.Bundle), len(second.Bundle))
	}
	if first.Hash != second.Hash {
		t.Fatalf("hashes differ: %s vs %s", first.Hash, second.Hash)
	}
	if n := s.Simulations(); n != 1 {
		t.Fatalf("two identical runs cost %d simulations, want 1", n)
	}
	// A different seed is a different content-address and simulates again.
	job2 := quickJob
	job2.Seed = 2
	third, err := s.Run(ctx, job2)
	if err != nil {
		t.Fatal(err)
	}
	if third.ServedWithoutSim() {
		t.Fatal("different seed was served from the cache")
	}
	if third.Hash == first.Hash {
		t.Fatal("seed change did not change the content-address")
	}
}

// TestSingleflightCollapse submits N identical jobs concurrently and checks
// they collapse into exactly one simulation, all returning identical bytes.
func TestSingleflightCollapse(t *testing.T) {
	s := quickService(t, Options{Workers: 2})
	const n = 8
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		outs []Outcome
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := s.Run(context.Background(), quickJob)
			if err != nil {
				t.Errorf("run: %v", err)
				return
			}
			mu.Lock()
			outs = append(outs, out)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(outs) != n {
		t.Fatalf("%d/%d runs succeeded", len(outs), n)
	}
	if sims := s.Simulations(); sims != 1 {
		t.Fatalf("%d identical concurrent runs cost %d simulations, want 1", n, sims)
	}
	served := 0
	for _, out := range outs {
		if out.ServedWithoutSim() {
			served++
		}
		if !bytes.Equal(out.Bundle, outs[0].Bundle) {
			t.Fatal("collapsed submissions returned different bundle bytes")
		}
	}
	if served != n-1 {
		t.Fatalf("%d of %d runs served without simulating, want %d", served, n, n-1)
	}
}

// TestCacheLRUEviction bounds the in-memory store: with capacity 2, the
// least recently used entry is evicted and re-misses.
func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	put := func(h string) { c.Put(h, []byte(h+"-bytes")) }
	put("sha256:a")
	put("sha256:b")
	if _, ok := c.Get("sha256:a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	put("sha256:c") // evicts b
	if _, ok := c.Get("sha256:b"); ok {
		t.Fatal("LRU entry b survived past capacity")
	}
	for _, h := range []string{"sha256:a", "sha256:c"} {
		data, ok := c.Get(h)
		if !ok || string(data) != h+"-bytes" {
			t.Fatalf("entry %s lost or corrupted (%q, %v)", h, data, ok)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and 2 entries", st)
	}
}

// TestDiskColdStartReload restarts the service over the same bundle
// directory and checks the successor serves the predecessor's result without
// simulating, byte-identically.
func TestDiskColdStartReload(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1 := quickService(t, Options{CacheDir: dir})
	first, err := s1.Run(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}

	s2 := quickService(t, Options{CacheDir: dir})
	second, err := s2.Run(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("cold-start run was not served from the disk store")
	}
	if !bytes.Equal(first.Bundle, second.Bundle) {
		t.Fatal("cold-start reload returned different bundle bytes")
	}
	if s2.Simulations() != 0 {
		t.Fatal("cold-start reload still simulated")
	}
	if st := s2.Cache().Stats(); st.DiskHits != 1 {
		t.Fatalf("cache stats = %+v, want 1 disk hit", st)
	}
	// An in-memory eviction falls back to the disk copy too.
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("sha256:filler", []byte("filler")) // evicts nothing yet; hash below evicts it
	if _, ok := c.Get(first.Hash); !ok {
		t.Fatal("disk copy not served after eviction")
	}
}

// TestCacheConcurrentDiskGet checks the disk-reload path under concurrency:
// the cold read happens outside the cache mutex, so racing lookups must all
// return the correct bytes and settle on one in-memory entry.
func TestCacheConcurrentDiskGet(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, want := fakeBundle(t, 7)
	seed.Put(hash, want)

	c, err := NewCache(4, dir) // cold: memory empty, bundle on disk
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, ok := c.Get(hash)
			if !ok || !bytes.Equal(data, want) {
				t.Errorf("concurrent disk get = %q, %v", data, ok)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits != n || st.Misses != 0 {
		t.Fatalf("stats = %+v, want %d hits and 0 misses", st, n)
	}
	if st.DiskHits < 1 || st.DiskHits > n {
		t.Fatalf("diskHits = %d, want within [1, %d]", st.DiskHits, n)
	}
	if st.Entries != 1 {
		t.Fatalf("%d in-memory entries after racing fills, want 1", st.Entries)
	}
}

// TestResolveRejects pins the client-error paths of job validation.
func TestResolveRejects(t *testing.T) {
	s := quickService(t, Options{})
	cases := []struct {
		name string
		job  Job
	}{
		{"no design", Job{Workload: "505.mcf_r"}},
		{"unknown design", Job{Design: "NoSuchDesign", Workload: "505.mcf_r"}},
		{"no workload", Job{Design: "Baryon"}},
		{"unknown workload", Job{Design: "Baryon", Workload: "nope"}},
		{"bad mode", Job{Design: "Baryon", Workload: "505.mcf_r", Mode: "turbo"}},
		{"negative warmup", Job{Design: "Baryon", Workload: "505.mcf_r", Warmup: -1}},
	}
	for _, tc := range cases {
		if _, err := s.Resolve(tc.job); err == nil {
			t.Errorf("%s: resolved without error", tc.name)
		}
	}
	// Spelling the default explicitly resolves to the same hash as leaving
	// it unset: the key records effective values.
	a, err := s.Resolve(quickJob)
	if err != nil {
		t.Fatal(err)
	}
	explicit := quickJob
	explicit.Mode = "cache"
	explicit.Accesses = quickConfig().AccessesPerCore
	b, err := s.Resolve(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("equivalent jobs hash differently: %s vs %s", a.Hash, b.Hash)
	}
}

// TestSubmitAsync covers the daemon's job table: submit, poll to done,
// fetch the result, and dedupe of repeated submissions.
func TestSubmitAsync(t *testing.T) {
	s := quickService(t, Options{})
	ctx := context.Background()
	st, err := s.Submit(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hash == "" || (st.State != StateQueued && st.State != StateRunning) {
		t.Fatalf("fresh submission status = %+v", st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, ok := s.Status(st.Hash)
		if !ok {
			t.Fatal("submitted job vanished")
		}
		if cur.State == StateDone {
			break
		}
		if cur.State == StateFailed {
			t.Fatalf("job failed: %s", cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	data, ok := s.ResultBytes(st.Hash)
	if !ok || len(data) == 0 {
		t.Fatal("no result bytes for a done job")
	}
	// Re-submitting the identical job reuses the table entry.
	again, err := s.Submit(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if again.Hash != st.Hash || again.State != StateDone {
		t.Fatalf("resubmission status = %+v, want done %s", again, st.Hash)
	}
	if s.Simulations() != 1 {
		t.Fatalf("dedupe failed: %d simulations", s.Simulations())
	}
}

// TestSyncRunFinishesJobTable is the regression test for the stale-"running"
// bug: a synchronous miss creates a job-table entry, and once the run
// returns, that entry must be done — and a later async Submit of the same
// job must see it as done instead of finding a stuck entry it won't relaunch.
func TestSyncRunFinishesJobTable(t *testing.T) {
	s := quickService(t, Options{})
	ctx := context.Background()
	out, err := s.Run(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if out.ServedWithoutSim() {
		t.Fatalf("first run did not simulate: %+v", out)
	}
	st, ok := s.Status(out.Hash)
	if !ok {
		t.Fatal("no status for a synchronously completed hash")
	}
	if st.State != StateDone {
		t.Fatalf("after sync run, Status = %q, want %q", st.State, StateDone)
	}
	// A subsequent Submit of the identical job must report done immediately:
	// the old bug left the entry "running" forever, so a polling client hung.
	sub, err := s.Submit(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if sub.State != StateDone {
		t.Fatalf("Submit after sync run = %q, want %q", sub.State, StateDone)
	}
	if n := s.Simulations(); n != 1 {
		t.Fatalf("%d simulations, want 1", n)
	}
}

// TestJobTableBounded pins the retention bound: finished job-table entries
// beyond the cap are evicted, and their status is still served from the
// result store.
func TestJobTableBounded(t *testing.T) {
	s := quickService(t, Options{CacheEntries: 2})
	ctx := context.Background()
	var hashes []string
	for seed := uint64(1); seed <= 5; seed++ {
		job := quickJob
		job.Seed = seed
		out, err := s.Run(ctx, job)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, out.Hash)
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 2 {
		t.Fatalf("job table holds %d finished entries, want <= 2 (the cache cap)", n)
	}
	// The newest hash survived both bounds and still reports done from the
	// table or the store.
	st, ok := s.Status(hashes[len(hashes)-1])
	if !ok || st.State != StateDone {
		t.Fatalf("newest hash status = %+v, %v; want done", st, ok)
	}
}

// TestDrainWaitRace hammers the Drain+Wait vs. submission race under the
// race detector: after Wait returns, no accepted job may still be starting,
// and every submission either ran or was refused with ErrDraining.
func TestDrainWaitRace(t *testing.T) {
	for i := 0; i < 20; i++ {
		s := quickService(t, Options{})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				<-start
				job := quickJob
				job.Seed = seed
				if _, err := s.Run(context.Background(), job); err != nil && !errors.Is(err, ErrDraining) {
					t.Errorf("run: %v", err)
				}
			}(uint64(g + 1))
		}
		close(start)
		s.Drain()
		wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := s.Wait(wctx); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		cancel()
		simsAtWait := s.Simulations()
		wg.Wait()
		if sims := s.Simulations(); sims != simsAtWait {
			t.Fatalf("a job started after Wait returned (%d -> %d simulations)", simsAtWait, sims)
		}
	}
}

// TestDrainRejects checks a draining service refuses new work but completes
// what it accepted.
func TestDrainRejects(t *testing.T) {
	s := quickService(t, Options{})
	ctx := context.Background()
	if _, err := s.Run(ctx, quickJob); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, err := s.Run(ctx, quickJob); !errors.Is(err, ErrDraining) {
		t.Fatalf("Run after Drain: %v, want ErrDraining", err)
	}
	if _, err := s.Submit(ctx, quickJob); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain: %v, want ErrDraining", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Wait(wctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestStatusFromStoreAfterRestart: a hash simulated by a previous process
// (same cache dir) reports done even though this process never ran it.
func TestStatusFromStoreAfterRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := quickService(t, Options{CacheDir: dir})
	out, err := s1.Run(context.Background(), quickJob)
	if err != nil {
		t.Fatal(err)
	}
	s2 := quickService(t, Options{CacheDir: dir})
	st, ok := s2.Status(out.Hash)
	if !ok || st.State != StateDone {
		t.Fatalf("restarted status = %+v, %v; want done", st, ok)
	}
	if _, ok := s2.Status("sha256:unknown"); ok {
		t.Fatal("unknown hash reported a status")
	}
}

// fillWorkers occupies every worker-pool slot so the next simulation blocks
// at the pool, and returns the (idempotent) release function.
func fillWorkers(s *Service) func() {
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for i := 0; i < cap(s.sem); i++ {
				<-s.sem
			}
		})
	}
}

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSyncAdmissionBound pins the sync-waiter bound: with the pool saturated
// and the one allowed waiter parked, the next cache-miss run is refused with
// ErrOverloaded immediately — but a cache hit is never refused.
func TestSyncAdmissionBound(t *testing.T) {
	s := quickService(t, Options{Workers: 1, MaxSyncWaiters: 1})
	ctx := context.Background()
	release := fillWorkers(s)
	t.Cleanup(release)

	done := make(chan error, 1)
	go func() {
		_, err := s.Run(ctx, quickJob)
		done <- err
	}()
	waitCond(t, "the first run to park as a sync waiter", func() bool {
		return s.syncWaiters.Load() == 1
	})
	over := quickJob
	over.Seed = 2
	if _, err := s.Run(ctx, over); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("run past the waiter bound: %v, want ErrOverloaded", err)
	}
	if n := s.admissionRejected.Load(); n != 1 {
		t.Fatalf("admission.rejected = %d, want 1", n)
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("parked run failed after workers freed: %v", err)
	}

	// Saturate the bound again; a hit for the now-cached job must still land:
	// serving stored bytes parks nothing.
	release2 := fillWorkers(s)
	t.Cleanup(release2)
	done2 := make(chan error, 1)
	go func() {
		miss := quickJob
		miss.Seed = 3
		_, err := s.Run(ctx, miss)
		done2 <- err
	}()
	waitCond(t, "the second waiter to park", func() bool {
		return s.syncWaiters.Load() == 1
	})
	out, err := s.Run(ctx, quickJob)
	if err != nil || !out.CacheHit {
		t.Fatalf("cache hit refused at the waiter bound: %+v, %v", out, err)
	}
	release2()
	if err := <-done2; err != nil {
		t.Fatalf("second parked run: %v", err)
	}
}

// TestAsyncQueueBound pins the async admission bound: beyond MaxQueue
// accepted-but-unfinished submissions, Submit refuses with ErrOverloaded;
// identical re-submissions reuse the existing entry and are never refused;
// once the queue drains, the refused job is admitted.
func TestAsyncQueueBound(t *testing.T) {
	s := quickService(t, Options{Workers: 1, MaxQueue: 1})
	ctx := context.Background()
	release := fillWorkers(s)
	t.Cleanup(release)

	st, err := s.Submit(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	over := quickJob
	over.Seed = 2
	if _, err := s.Submit(ctx, over); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit past the queue bound: %v, want ErrOverloaded", err)
	}
	if _, err := s.Submit(ctx, quickJob); err != nil {
		t.Fatalf("identical re-submission refused: %v", err)
	}
	if n := s.admissionRejected.Load(); n != 1 {
		t.Fatalf("admission.rejected = %d, want 1", n)
	}

	release()
	waitCond(t, "the accepted job to finish", func() bool {
		cur, ok := s.Status(st.Hash)
		return ok && cur.State == StateDone
	})
	waitCond(t, "the refused job to be admitted", func() bool {
		_, err := s.Submit(ctx, over)
		if err != nil && !errors.Is(err, ErrOverloaded) {
			t.Fatalf("resubmit: %v", err)
		}
		return err == nil
	})
}

// TestDrainUnderRejectedSubmissions drives Drain concurrently with a burst of
// submissions against a full queue: every refusal must be ErrOverloaded or
// ErrDraining, Wait must return, and the one accepted job must complete.
func TestDrainUnderRejectedSubmissions(t *testing.T) {
	s := quickService(t, Options{Workers: 1, MaxQueue: 1})
	ctx := context.Background()
	release := fillWorkers(s)
	t.Cleanup(release)

	st, err := s.Submit(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			<-start
			job := quickJob
			job.Seed = seed
			if _, err := s.Submit(ctx, job); err != nil &&
				!errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrDraining) {
				t.Errorf("submit seed %d: %v", seed, err)
			}
		}(uint64(g + 2))
	}
	close(start)
	s.Drain()
	release()
	wg.Wait()
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.Wait(wctx); err != nil {
		t.Fatalf("Wait under rejected submissions: %v", err)
	}
	cur, ok := s.Status(st.Hash)
	if !ok || cur.State != StateDone {
		t.Fatalf("accepted job after drain = %+v, %v; want done", cur, ok)
	}
}

// TestDeadlineExceededCounted: a run whose budget expires while queued for a
// worker fails with DeadlineExceeded and increments the deadline counter.
func TestDeadlineExceededCounted(t *testing.T) {
	s := quickService(t, Options{Workers: 1})
	release := fillWorkers(s)
	t.Cleanup(release)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Run(ctx, quickJob); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("run with an expired budget: %v, want DeadlineExceeded", err)
	}
	if n := s.deadlinesExceeded.Load(); n != 1 {
		t.Fatalf("deadline.exceeded = %d, want 1", n)
	}
}

// TestWorkerPoolBounds floods a single-worker service with distinct jobs and
// checks they all complete (the pool queues rather than rejects).
func TestWorkerPoolBounds(t *testing.T) {
	s := quickService(t, Options{Workers: 1})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			job := quickJob
			job.Seed = seed
			if _, err := s.Run(context.Background(), job); err != nil {
				errs <- fmt.Errorf("seed %d: %w", seed, err)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sims := s.Simulations(); sims != 4 {
		t.Fatalf("%d simulations, want 4 distinct", sims)
	}
}
