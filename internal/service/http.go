package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"baryon/internal/experiment"
	"baryon/internal/obs"
	"baryon/internal/trace"
)

// HTTP API of cmd/baryonsimd. All bodies are JSON; result payloads are the
// canonical report-bundle bytes, byte-identical for identical jobs whether
// simulated, collapsed or cache-served.
//
//	POST /api/v1/run          run a job synchronously, respond with its bundle
//	POST /api/v1/jobs         submit a job asynchronously
//	GET  /api/v1/jobs/{hash}  job status (live progress while running)
//	GET  /api/v1/jobs/{hash}/result  the completed job's bundle
//	GET  /api/v1/designs      registered design names
//	GET  /api/v1/workloads    workload names
//	GET  /metrics             cache/queue gauges (OpenMetrics)
//	GET  /healthz             liveness (503 while draining)
const (
	// CacheHeader reports how a synchronous run was served: "miss" (this
	// request simulated), "hit" (result store) or "collapsed" (rode an
	// identical in-flight request).
	CacheHeader = "X-Baryon-Cache"
	// HashHeader carries the job's content-address on run/result responses.
	HashHeader = "X-Baryon-Spec-Hash"

	omContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// NewHandler builds the daemon's HTTP API over s. runCtx bounds
// asynchronously submitted jobs (the daemon passes its lifetime context);
// synchronous runs are bounded by their request's context.
func NewHandler(s *Service, runCtx context.Context) http.Handler {
	if runCtx == nil {
		runCtx = context.Background()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/run", func(w http.ResponseWriter, r *http.Request) {
		job, ok := decodeJob(w, r)
		if !ok {
			return
		}
		res, err := s.Resolve(job)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		out, err := s.RunResolved(r.Context(), res)
		switch {
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(HashHeader, out.Hash)
		w.Header().Set(CacheHeader, cacheStatus(out))
		w.Write(out.Bundle)
	})
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		job, ok := decodeJob(w, r)
		if !ok {
			return
		}
		st, err := s.Submit(runCtx, job)
		switch {
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /api/v1/jobs/{hash}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("hash"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("hash")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /api/v1/jobs/{hash}/result", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		data, ok := s.ResultBytes(hash)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no result for %q (pending, failed or never submitted)", hash))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(HashHeader, hash)
		w.Write(data)
	})
	mux.HandleFunc("GET /api/v1/designs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, experiment.Designs())
	})
	mux.HandleFunc("GET /api/v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		names := []string{}
		for _, wl := range trace.All() {
			names = append(names, wl.Name)
		}
		writeJSON(w, http.StatusOK, names)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", omContentType)
		if err := obs.WriteOpenMetrics(w, s.MetricsSnapshot(), obs.OMOptions{}); err != nil {
			fmt.Fprintf(w, "# rendering error: %v\n", err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			httpError(w, http.StatusServiceUnavailable, ErrDraining)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// cacheStatus renders the CacheHeader value for an outcome.
func cacheStatus(out Outcome) string {
	switch {
	case out.CacheHit:
		return "hit"
	case out.Collapsed:
		return "collapsed"
	}
	return "miss"
}

func decodeJob(w http.ResponseWriter, r *http.Request) (Job, bool) {
	var job Job
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job: %w", err))
		return Job{}, false
	}
	return job, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// --- Client --------------------------------------------------------------

// Client is the Go client of the daemon's API, used by cmd/loadgen and the
// in-process tests.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// RunSync executes a job via POST /api/v1/run and returns the bundle bytes,
// the cache status ("miss", "hit" or "collapsed") and the spec hash.
func (c *Client) RunSync(ctx context.Context, job Job) (bundle []byte, status, hash string, err error) {
	body, err := json.Marshal(job)
	if err != nil {
		return nil, "", "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/api/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, "", "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, "", "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", "", fmt.Errorf("run: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return data, resp.Header.Get(CacheHeader), resp.Header.Get(HashHeader), nil
}

// Submit enqueues a job via POST /api/v1/jobs.
func (c *Client) Submit(ctx context.Context, job Job) (JobStatus, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return JobStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var st JobStatus
	if err := c.doJSON(req, http.StatusAccepted, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Status fetches a submitted job's status by hash.
func (c *Client) Status(ctx context.Context, hash string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/api/v1/jobs/"+hash, nil)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := c.doJSON(req, http.StatusOK, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Result fetches a completed job's bundle bytes by hash.
func (c *Client) Result(ctx context.Context, hash string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/api/v1/jobs/"+hash+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

func (c *Client) doJSON(req *http.Request, want int, dst any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, dst)
}
