package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"baryon/internal/experiment"
	"baryon/internal/obs"
	"baryon/internal/trace"
)

// HTTP API of cmd/baryonsimd. All bodies are JSON; result payloads are the
// canonical report-bundle bytes, byte-identical for identical jobs whether
// simulated, collapsed or cache-served.
//
//	POST /api/v1/run          run a job synchronously, respond with its bundle
//	POST /api/v1/jobs         submit a job asynchronously
//	GET  /api/v1/jobs/{hash}  job status (live progress while running)
//	GET  /api/v1/jobs/{hash}/result  the completed job's bundle
//	GET  /api/v1/designs      registered design names
//	GET  /api/v1/workloads    workload names
//	GET  /metrics             cache/queue gauges (OpenMetrics)
//	GET  /healthz             liveness (503 while draining)
const (
	// CacheHeader reports how a synchronous run was served: "miss" (this
	// request simulated), "hit" (result store) or "collapsed" (rode an
	// identical in-flight request).
	CacheHeader = "X-Baryon-Cache"
	// HashHeader carries the job's content-address on run/result responses.
	HashHeader = "X-Baryon-Spec-Hash"
	// DeadlineHeader lets a client cap one request's execution budget as a
	// Go duration string ("30s"); the server clamps it to its own
	// -request-timeout when one is configured.
	DeadlineHeader = "X-Baryon-Deadline"

	omContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// HandlerOptions configures NewHandlerOpts beyond the service itself.
type HandlerOptions struct {
	// RunCtx bounds asynchronously submitted jobs (the daemon passes its
	// lifetime context, not a request's); nil = context.Background().
	RunCtx context.Context
	// RequestTimeout is the default and maximum per-request execution
	// budget: requests without a DeadlineHeader get it, requests with one
	// are clamped to it (0 = no server-side budget).
	RequestTimeout time.Duration
	// WriteTimeout bounds how long one response write may block on a slow
	// client before the connection is dropped (0 = no bound). Applied via
	// the connection write deadline just before the response body goes out,
	// so a stalled reader cannot pin a handler goroutine forever.
	WriteTimeout time.Duration
	// Log receives panic reports from the recovery middleware
	// (nil = os.Stderr).
	Log io.Writer
}

// NewHandler builds the daemon's HTTP API over s with default options.
// runCtx bounds asynchronously submitted jobs (the daemon passes its
// lifetime context); synchronous runs are bounded by their request's
// context.
func NewHandler(s *Service, runCtx context.Context) http.Handler {
	return NewHandlerOpts(s, HandlerOptions{RunCtx: runCtx})
}

// requestBudget derives one request's execution context from the default
// budget and the client's DeadlineHeader, clamped to the server cap.
func requestBudget(parent context.Context, r *http.Request, cap time.Duration) (context.Context, context.CancelFunc, error) {
	budget := cap
	if h := r.Header.Get(DeadlineHeader); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			return nil, nil, fmt.Errorf("invalid %s header %q (want a positive Go duration like \"30s\")", DeadlineHeader, h)
		}
		if cap == 0 || d < cap {
			budget = d
		}
	}
	if budget <= 0 {
		return parent, func() {}, nil
	}
	ctx, cancel := context.WithTimeout(parent, budget)
	return ctx, cancel, nil
}

// NewHandlerOpts builds the daemon's HTTP API over s. The returned handler
// wraps every route in the failure-containment middleware: a handler panic
// becomes a 500 instead of killing the daemon, and slow clients are bounded
// by the write deadline.
func NewHandlerOpts(s *Service, opts HandlerOptions) http.Handler {
	runCtx := opts.RunCtx
	if runCtx == nil {
		runCtx = context.Background()
	}
	logw := opts.Log
	if logw == nil {
		logw = os.Stderr
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/run", func(w http.ResponseWriter, r *http.Request) {
		job, ok := decodeJob(w, r)
		if !ok {
			return
		}
		res, err := s.Resolve(job)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel, err := requestBudget(r.Context(), r, opts.RequestTimeout)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		defer cancel()
		out, err := s.RunResolved(ctx, res)
		switch {
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
			httpError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
			httpError(w, http.StatusTooManyRequests, err)
			return
		case errors.Is(err, context.DeadlineExceeded):
			httpError(w, http.StatusGatewayTimeout, fmt.Errorf("request deadline exceeded: %w", err))
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(HashHeader, out.Hash)
		w.Header().Set(CacheHeader, cacheStatus(out))
		w.Write(out.Bundle)
	})
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		job, ok := decodeJob(w, r)
		if !ok {
			return
		}
		// An async job's budget nests inside the daemon-lifetime context,
		// not the request's: the submitting connection may close long
		// before the job runs.
		ctx := runCtx
		if r.Header.Get(DeadlineHeader) != "" {
			bctx, cancel, err := requestBudget(runCtx, r, opts.RequestTimeout)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			// Not deferred: the budget must keep ticking after this handler
			// returns, until the job's deadline fires; the watcher then
			// releases the context's resources.
			go func() { <-bctx.Done(); cancel() }()
			ctx = bctx
		}
		st, err := s.Submit(ctx, job)
		switch {
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
			httpError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
			httpError(w, http.StatusTooManyRequests, err)
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /api/v1/jobs/{hash}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("hash"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("hash")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /api/v1/jobs/{hash}/result", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		data, ok := s.ResultBytes(hash)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no result for %q (pending, failed or never submitted)", hash))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(HashHeader, hash)
		w.Write(data)
	})
	mux.HandleFunc("GET /api/v1/designs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, experiment.Designs())
	})
	mux.HandleFunc("GET /api/v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		names := []string{}
		for _, wl := range trace.All() {
			names = append(names, wl.Name)
		}
		writeJSON(w, http.StatusOK, names)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", omContentType)
		if err := obs.WriteOpenMetrics(w, s.MetricsSnapshot(), obs.OMOptions{}); err != nil {
			fmt.Fprintf(w, "# rendering error: %v\n", err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			httpError(w, http.StatusServiceUnavailable, ErrDraining)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return withMiddleware(mux, opts.WriteTimeout, logw)
}

// withMiddleware wraps the whole mux in the failure-containment layer:
// a panicking handler answers 500 (and is logged with its stack) instead of
// tearing down the daemon's serve loop, and the connection write deadline
// bounds how long a slow or stalled client can pin a handler goroutine.
func withMiddleware(next http.Handler, writeTimeout time.Duration, logw io.Writer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				fmt.Fprintf(logw, "service: http panic serving %s %s: %v\n%s\n",
					r.Method, r.URL.Path, p, debug.Stack())
				// Best-effort: if the handler already wrote headers this is
				// a no-op on a broken response, which the client sees as
				// truncated — still contained to one request.
				httpError(w, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", p))
			}
		}()
		if writeTimeout > 0 {
			w = &deadlineWriter{ResponseWriter: w, rc: http.NewResponseController(w), timeout: writeTimeout}
		}
		next.ServeHTTP(w, r)
	})
}

// deadlineWriter arms the connection write deadline at the first byte of
// the response, not at request start: compute time (a long simulation) is
// bounded by the request budget, while the write deadline bounds only how
// long a slow or stalled client may take to drain the response.
type deadlineWriter struct {
	http.ResponseWriter
	rc      *http.ResponseController
	timeout time.Duration
	armed   bool
}

func (d *deadlineWriter) arm() {
	if !d.armed {
		d.armed = true
		// An unsupported underlying writer (some test recorders) is not an
		// error we can act on; the deadline is then simply absent.
		_ = d.rc.SetWriteDeadline(time.Now().Add(d.timeout))
	}
}

func (d *deadlineWriter) WriteHeader(code int) {
	d.arm()
	d.ResponseWriter.WriteHeader(code)
}

func (d *deadlineWriter) Write(p []byte) (int, error) {
	d.arm()
	return d.ResponseWriter.Write(p)
}

// Unwrap lets http.ResponseController reach the underlying writer through
// this wrapper.
func (d *deadlineWriter) Unwrap() http.ResponseWriter { return d.ResponseWriter }

// cacheStatus renders the CacheHeader value for an outcome.
func cacheStatus(out Outcome) string {
	switch {
	case out.CacheHit:
		return "hit"
	case out.Collapsed:
		return "collapsed"
	}
	return "miss"
}

func decodeJob(w http.ResponseWriter, r *http.Request) (Job, bool) {
	var job Job
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job: %w", err))
		return Job{}, false
	}
	return job, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// --- Client --------------------------------------------------------------

// RetryPolicy shapes the Client's backoff loop. The zero value retries:
// tests that must observe single-attempt behavior set Disable.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call, first included
	// (0 = default 5; 1 = a single try, no retries).
	MaxAttempts int
	// BaseDelay is the cap of the first backoff step (0 = 100ms); each
	// retry doubles the cap up to MaxDelay (0 = 5s), and the actual delay
	// is drawn uniformly from [0, cap) — "full jitter", so a thundering
	// herd of rejected clients decorrelates instead of re-colliding.
	BaseDelay, MaxDelay time.Duration
	// Disable turns the client into a single-attempt client.
	Disable bool
	// Sleep overrides the backoff wait (tests count and skip real delays);
	// nil sleeps on a timer, aborting early if ctx dies.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Client is the Go client of the daemon's API, used by cmd/loadgen and the
// in-process tests. It retries overload rejections (429/503, honoring the
// server's Retry-After hint) and transport errors (a restarting daemon)
// with capped exponential backoff and full jitter: because jobs are
// content-addressed and runs deterministic, a retried request converges to
// the byte-identical answer the first attempt would have produced.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Retry shapes the backoff loop (zero value = defaults on).
	Retry RetryPolicy
	// Deadline, when positive, is sent as the DeadlineHeader execution
	// budget on every request.
	Deadline time.Duration

	retries, rejected atomic.Uint64
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Retries reports how many retry attempts this client has made (attempts
// beyond the first, across all calls).
func (c *Client) Retries() uint64 { return c.retries.Load() }

// Rejected reports how many overload rejections (HTTP 429/503) this client
// has observed, including ones later resolved by a retry.
func (c *Client) Rejected() uint64 { return c.rejected.Load() }

// retryable reports whether an HTTP status is worth retrying: overload and
// drain rejections are transient by construction.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// do runs one API call through the retry loop: fresh request per attempt
// (the body is re-sent from bytes), overload rejections and transport
// errors back off and retry, anything else returns immediately.
func (c *Client) do(ctx context.Context, method, path string, body []byte, want int) (data []byte, hdr http.Header, err error) {
	pol := c.Retry
	attempts := pol.MaxAttempts
	if pol.Disable {
		attempts = 1
	} else if attempts <= 0 {
		attempts = 5
	}
	base := pol.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := pol.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	sleep := pol.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		var status int
		data, hdr, status, err = c.once(ctx, method, path, body)
		retryAfter := time.Duration(0)
		switch {
		case err != nil:
			// Transport error: the daemon may be restarting; retryable
			// unless our own context is done.
			if ctx.Err() != nil {
				return nil, nil, err
			}
			lastErr = err
		case status == want:
			return data, hdr, nil
		case retryable(status):
			c.rejected.Add(1)
			lastErr = fmt.Errorf("%s %s: HTTP %d: %s", method, path, status, strings.TrimSpace(string(data)))
			if ra, raErr := strconv.Atoi(hdr.Get("Retry-After")); raErr == nil && ra > 0 {
				retryAfter = time.Duration(ra) * time.Second
			}
		default:
			return nil, nil, fmt.Errorf("%s %s: HTTP %d: %s", method, path, status, strings.TrimSpace(string(data)))
		}
		if attempt == attempts-1 {
			break
		}
		// Capped exponential backoff with full jitter, floored at the
		// server's Retry-After hint when it gave one.
		cap := base << attempt
		if cap > maxDelay || cap <= 0 {
			cap = maxDelay
		}
		delay := time.Duration(rand.Int63n(int64(cap) + 1))
		if retryAfter > delay {
			delay = retryAfter
		}
		if err := sleep(ctx, delay); err != nil {
			return nil, nil, fmt.Errorf("%w (after %v)", err, lastErr)
		}
	}
	return nil, nil, lastErr
}

// once performs a single HTTP attempt and fully drains the response.
func (c *Client) once(ctx context.Context, method, path string, body []byte) ([]byte, http.Header, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Deadline > 0 {
		req.Header.Set(DeadlineHeader, c.Deadline.String())
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, 0, err
	}
	return data, resp.Header, resp.StatusCode, nil
}

// RunSync executes a job via POST /api/v1/run and returns the bundle bytes,
// the cache status ("miss", "hit" or "collapsed") and the spec hash.
func (c *Client) RunSync(ctx context.Context, job Job) (bundle []byte, status, hash string, err error) {
	body, err := json.Marshal(job)
	if err != nil {
		return nil, "", "", err
	}
	data, hdr, err := c.do(ctx, http.MethodPost, "/api/v1/run", body, http.StatusOK)
	if err != nil {
		return nil, "", "", err
	}
	return data, hdr.Get(CacheHeader), hdr.Get(HashHeader), nil
}

// Submit enqueues a job via POST /api/v1/jobs.
func (c *Client) Submit(ctx context.Context, job Job) (JobStatus, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return JobStatus{}, err
	}
	data, _, err := c.do(ctx, http.MethodPost, "/api/v1/jobs", body, http.StatusAccepted)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Status fetches a submitted job's status by hash.
func (c *Client) Status(ctx context.Context, hash string) (JobStatus, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+hash, nil, http.StatusOK)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Result fetches a completed job's bundle bytes by hash.
func (c *Client) Result(ctx context.Context, hash string) ([]byte, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+hash+"/result", nil, http.StatusOK)
	if err != nil {
		return nil, err
	}
	return data, nil
}
