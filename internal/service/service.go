package service

import (
	"container/list"
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"baryon/internal/config"
	"baryon/internal/cpu"
	"baryon/internal/experiment"
	"baryon/internal/obs"
	"baryon/internal/report"
	"baryon/internal/sim"
)

// ErrDraining is returned for submissions after Drain: the service is
// shutting down and accepts no new work.
var ErrDraining = errors.New("service: draining, not accepting new jobs")

// ErrOverloaded is returned when admission control refuses a submission:
// the async queue or the sync-waiter pool is full. Because runs are
// deterministic and content-addressed, a rejected request loses nothing —
// retrying after backoff converges to the identical answer (the HTTP layer
// answers 429 with a Retry-After hint; the Client honors it).
var ErrOverloaded = errors.New("service: overloaded, retry later")

// Options configures a Service.
type Options struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// CacheEntries bounds the in-memory result LRU (0 = default).
	CacheEntries int
	// CacheDir, when non-empty, persists every result bundle on disk so a
	// restarted service serves its predecessor's results (cold-start
	// reload).
	CacheDir string
	// BaseConfig is the configuration jobs override (nil = config.Scaled()).
	BaseConfig *config.Config
	// MaxQueue bounds accepted-but-unfinished async submissions; beyond it
	// Submit returns ErrOverloaded instead of queueing without limit
	// (0 = unbounded).
	MaxQueue int
	// MaxSyncWaiters bounds synchronous cache-miss submissions waiting for
	// a simulation; beyond it Run returns ErrOverloaded (0 = unbounded).
	// Cache hits are never refused — serving stored bytes is cheap.
	MaxSyncWaiters int
	// Log receives the store's recovery and degradation diagnostics
	// (nil = os.Stderr).
	Log io.Writer
}

// Outcome is the result of one job submission.
type Outcome struct {
	// Hash is the job's content-address (the canonical spec hash).
	Hash string
	// Bundle is the canonical report-bundle bytes — byte-identical whether
	// freshly simulated or served from the store.
	Bundle []byte
	// CacheHit reports the bundle came from the result store; no
	// simulation ran for this call.
	CacheHit bool
	// Collapsed reports this call rode an identical in-flight submission
	// (singleflight); the one simulation was charged to another call.
	Collapsed bool
	// Result carries the full in-memory metrics and is set only when this
	// call executed the simulation itself.
	Result *cpu.Result
}

// ServedWithoutSim reports whether this submission cost zero simulations.
func (o Outcome) ServedWithoutSim() bool { return o.CacheHit || o.Collapsed }

// Service is the shared run-service core: resolve, cache, collapse, and
// simulate jobs under a bounded worker pool.
type Service struct {
	base    config.Config
	cache   *Cache
	flight  flightGroup
	sem     chan struct{}
	workers int

	maxQueue       int
	maxSyncWaiters int

	mu       sync.Mutex
	jobs     map[string]*jobState
	finished *list.List // finished jobStates, oldest at front
	jobsCap  int        // bound on retained finished entries

	draining atomic.Bool
	wg       sync.WaitGroup

	submitted, completed, failed    atomic.Uint64
	simulations, collapsed, waiting atomic.Uint64

	asyncPending, syncWaiters            atomic.Int64
	admissionRejected, deadlinesExceeded atomic.Uint64
}

// New builds a Service.
func New(opts Options) (*Service, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache, err := NewStore(StoreConfig{Entries: opts.CacheEntries, Dir: opts.CacheDir, Log: opts.Log})
	if err != nil {
		return nil, err
	}
	base := config.Scaled()
	if opts.BaseConfig != nil {
		base = *opts.BaseConfig
	}
	return &Service{
		base:           base,
		cache:          cache,
		sem:            make(chan struct{}, workers),
		workers:        workers,
		maxQueue:       opts.MaxQueue,
		maxSyncWaiters: opts.MaxSyncWaiters,
		jobs:           make(map[string]*jobState),
		finished:       list.New(),
		// The job table keeps as many finished entries as the cache keeps
		// bundles; beyond that, Status falls back to the result store.
		jobsCap: cache.cap,
	}, nil
}

// acquire registers one unit of in-flight work, refusing when the service is
// draining. The re-check after wg.Add closes the race with Drain+Wait: work
// that passes the second check either completed its Add before Wait could
// observe a zero counter, or is rejected here — Wait never returns while an
// accepted job is still starting.
func (s *Service) acquire() bool {
	if s.draining.Load() {
		return false
	}
	s.wg.Add(1)
	if s.draining.Load() {
		s.wg.Done()
		return false
	}
	return true
}

// Cache exposes the underlying result store (read-mostly: metrics, tests).
func (s *Service) Cache() *Cache { return s.cache }

// Resolve validates and canonicalizes a job against the service's base
// configuration. Errors are client errors (unknown design/workload, bad
// mode or windows).
func (s *Service) Resolve(job Job) (Resolved, error) { return job.resolve(s.base) }

// Run executes one job synchronously: result-store hit, collapse into an
// identical in-flight submission, or a fresh simulation on the worker pool.
func (s *Service) Run(ctx context.Context, job Job) (Outcome, error) {
	r, err := s.Resolve(job)
	if err != nil {
		return Outcome{}, err
	}
	return s.RunResolved(ctx, r)
}

// RunResolved is Run for a pre-resolved job.
func (s *Service) RunResolved(ctx context.Context, r Resolved) (Outcome, error) {
	if !s.acquire() {
		return Outcome{}, ErrDraining
	}
	defer s.wg.Done()
	return s.runAccepted(ctx, r, true)
}

// runAccepted executes an already-accepted job; the caller holds the
// work unit (acquire) that keeps Wait from returning early. sync marks
// request-scoped callers, which the MaxSyncWaiters admission bound applies
// to (async work is bounded at Submit instead).
func (s *Service) runAccepted(ctx context.Context, r Resolved, sync bool) (Outcome, error) {
	s.submitted.Add(1)
	if data, ok := s.cache.Get(r.Hash); ok {
		s.completed.Add(1)
		return Outcome{Hash: r.Hash, Bundle: data, CacheHit: true}, nil
	}
	// Admission control for the sync path: a cache miss parks this caller
	// (its goroutine, connection and buffers) until a simulation finishes;
	// past the configured bound the memory-safe answer is "retry later",
	// never an unbounded pile of waiters.
	if sync && s.maxSyncWaiters > 0 {
		if n := s.syncWaiters.Add(1); n > int64(s.maxSyncWaiters) {
			s.syncWaiters.Add(-1)
			s.admissionRejected.Add(1)
			s.failed.Add(1)
			return Outcome{}, ErrOverloaded
		}
		defer s.syncWaiters.Add(-1)
	}
	out, shared, err := s.flight.do(ctx, r.Hash, func() (Outcome, error) {
		return s.simulate(ctx, r)
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.deadlinesExceeded.Add(1)
		}
		s.failed.Add(1)
		return Outcome{}, err
	}
	if shared {
		// Followers share only the immutable bundle bytes, never the
		// leader's live Stats registry.
		s.collapsed.Add(1)
		s.completed.Add(1)
		return Outcome{Hash: r.Hash, Bundle: out.Bundle, Collapsed: true}, nil
	}
	s.completed.Add(1)
	return out, nil
}

// simulate runs r on the worker pool and stores its canonical bundle. It is
// only ever entered once per in-flight hash (flightGroup).
func (s *Service) simulate(ctx context.Context, r Resolved) (Outcome, error) {
	s.waiting.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.waiting.Add(^uint64(0))
	case <-ctx.Done():
		s.waiting.Add(^uint64(0))
		return Outcome{}, ctx.Err()
	}
	defer func() { <-s.sem }()
	s.simulations.Add(1)

	st := s.state(r)
	st.setRunning()
	out, err := s.runPair(ctx, r, st)
	// Record the terminal state here, where the run actually ends: the sync
	// path (Run/RunResolved) has no Submit goroutine to finish the table
	// entry, and without this a completed synchronous miss would report
	// "running" forever.
	if st.finish(out, err) {
		s.retire(st)
	}
	return out, err
}

// runPair executes the resolved job as a one-pair batch and stores its
// canonical bundle in the result store.
func (s *Service) runPair(ctx context.Context, r Resolved, st *jobState) (Outcome, error) {
	pair := experiment.Pair{
		Cfg:      r.Cfg,
		Workload: r.W,
		Design:   r.Job.Design,
		Obs:      &experiment.RunObs{Introspector: st.intro},
	}
	// A one-pair batch through the shared pool entry point buys the same
	// per-pair panic isolation sweeps get: a controller bug fails the job,
	// not the server.
	pr := experiment.RunPairsCtx(ctx, []experiment.Pair{pair})[0]
	if pr.Err != nil {
		return Outcome{}, pr.Err
	}
	b, err := report.New(r.Key, pr.Result)
	if err != nil {
		return Outcome{}, err
	}
	data, err := b.MarshalCanonical()
	if err != nil {
		return Outcome{}, err
	}
	// Put never fails the job: a disk-write failure degrades the store to
	// memory-only (counted, logged, visible on /metrics) while this result
	// is served from memory like any other.
	s.cache.Put(r.Hash, data)
	return Outcome{Hash: r.Hash, Bundle: data, Result: &pr.Result}, nil
}

// --- Async submissions (the daemon's job table) --------------------------

// Job lifecycle states reported by Status.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Progress is the compact live view of a running job, distilled from the
// runner's Introspector snapshots.
type Progress struct {
	Phase          string    `json:"phase"`
	Accesses       uint64    `json:"accesses"`
	TargetAccesses uint64    `json:"targetAccesses"`
	Cycles         uint64    `json:"cycles"`
	Instructions   uint64    `json:"instructions"`
	UpdatedAt      time.Time `json:"updatedAt"`
}

// JobStatus is the serializable status snapshot of one submitted job.
type JobStatus struct {
	Hash      string    `json:"hash"`
	Job       Job       `json:"job"`
	State     string    `json:"state"`
	CacheHit  bool      `json:"cacheHit,omitempty"`
	Collapsed bool      `json:"collapsed,omitempty"`
	Error     string    `json:"error,omitempty"`
	Progress  *Progress `json:"progress,omitempty"`
}

// jobState tracks one hash's lifecycle. The introspector is created with
// the state so status readers can stream progress while the run is live.
type jobState struct {
	mu        sync.Mutex
	hash      string
	job       Job
	state     string
	cacheHit  bool
	collapsed bool
	errMsg    string
	intro     *obs.Introspector
}

func (st *jobState) setRunning() {
	st.mu.Lock()
	if st.state == StateQueued {
		st.state = StateRunning
	}
	st.mu.Unlock()
}

// finish records the terminal state and reports whether this call performed
// the transition. Once done or failed the entry is immutable: a simulate
// leader and a Submit goroutine may both call finish for the same hash, and
// the first (the run that actually ended) wins.
func (st *jobState) finish(out Outcome, err error) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state == StateDone || st.state == StateFailed {
		return false
	}
	if err != nil {
		st.state = StateFailed
		st.errMsg = err.Error()
		return true
	}
	st.state = StateDone
	st.cacheHit = out.CacheHit
	st.collapsed = out.Collapsed
	return true
}

func (st *jobState) status() JobStatus {
	st.mu.Lock()
	js := JobStatus{
		Hash:      st.hash,
		Job:       st.job,
		State:     st.state,
		CacheHit:  st.cacheHit,
		Collapsed: st.collapsed,
		Error:     st.errMsg,
	}
	st.mu.Unlock()
	if js.State == StateRunning {
		if rs := st.intro.Latest(); rs != nil {
			js.Progress = &Progress{
				Phase:          rs.Phase,
				Accesses:       rs.Accesses,
				TargetAccesses: rs.TargetAccesses,
				Cycles:         rs.Cycles,
				Instructions:   rs.Instructions,
				UpdatedAt:      rs.UpdatedAt,
			}
		}
	}
	return js
}

// state returns (creating if needed) the job table entry for r.
func (s *Service) state(r Resolved) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.jobs[r.Hash]
	if !ok {
		st = &jobState{hash: r.Hash, job: r.Job, state: StateQueued, intro: &obs.Introspector{}}
		s.jobs[r.Hash] = st
	}
	return st
}

// retire enrolls a finished jobState in the bounded retention list and
// evicts the oldest finished entries beyond the bound, keeping the job table
// from growing without limit in a long-running daemon. Only the caller that
// performed the finish transition retires an entry, so each appears at most
// once. Eviction re-checks identity: a failed hash resubmitted (and so
// replaced in the map) is not clobbered by its predecessor's retirement.
func (s *Service) retire(st *jobState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished.PushBack(st)
	for s.finished.Len() > s.jobsCap {
		el := s.finished.Front()
		s.finished.Remove(el)
		old := el.Value.(*jobState)
		if cur, ok := s.jobs[old.hash]; ok && cur == old {
			delete(s.jobs, old.hash)
		}
	}
}

// Submit enqueues a job asynchronously and returns its immediate status.
// The job is content-addressed: submitting an identical job returns the
// existing entry (done, running or queued) instead of a duplicate; a failed
// entry is retried. ctx bounds the job's whole execution — the daemon
// passes its lifetime context, not the HTTP request's.
func (s *Service) Submit(ctx context.Context, job Job) (JobStatus, error) {
	if s.draining.Load() {
		return JobStatus{}, ErrDraining
	}
	r, err := s.Resolve(job)
	if err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	st, ok := s.jobs[r.Hash]
	launch := false
	if !ok || st.status().State == StateFailed {
		st = &jobState{hash: r.Hash, job: r.Job, state: StateQueued, intro: &obs.Introspector{}}
		s.jobs[r.Hash] = st
		launch = true
	}
	s.mu.Unlock()
	if launch {
		rollback := func() {
			s.mu.Lock()
			if cur, ok := s.jobs[r.Hash]; ok && cur == st {
				delete(s.jobs, r.Hash)
			}
			s.mu.Unlock()
		}
		// Admission control for the async path: every accepted submission
		// is a goroutine plus a job-table entry until it finishes, so the
		// queue bound is what keeps a load spike from growing the heap
		// without limit. Add-then-check keeps the bound exact under
		// concurrent submissions. Identical re-submissions never get here —
		// they reuse the existing entry above and cost nothing.
		if s.maxQueue > 0 {
			if n := s.asyncPending.Add(1); n > int64(s.maxQueue) {
				s.asyncPending.Add(-1)
				s.admissionRejected.Add(1)
				rollback()
				return JobStatus{}, ErrOverloaded
			}
		} else {
			s.asyncPending.Add(1)
		}
		if !s.acquire() {
			// Drain raced the submission: roll back the queued entry (if
			// still ours) instead of leaving a job no goroutine will run.
			s.asyncPending.Add(-1)
			rollback()
			return JobStatus{}, ErrDraining
		}
		go func() {
			defer s.wg.Done()
			defer s.asyncPending.Add(-1)
			// runAccepted, not RunResolved: this goroutine already holds an
			// accepted work unit, and a Drain between Submit and here must
			// not fail a job the service promised to run.
			out, err := s.runAccepted(ctx, r, false)
			if st.finish(out, err) {
				s.retire(st)
			}
		}()
	}
	return st.status(), nil
}

// Status returns the status of a previously submitted hash. A hash that was
// never submitted this process — or whose finished table entry was evicted
// by the retention bound — but whose bundle is in the result store reports
// as done (the store outlives the job table across restarts and evictions).
// Evicted failed entries report not-found; resubmitting retries them.
func (s *Service) Status(hash string) (JobStatus, bool) {
	s.mu.Lock()
	st, ok := s.jobs[hash]
	s.mu.Unlock()
	if ok {
		return st.status(), true
	}
	if _, ok := s.cache.Get(hash); ok {
		return JobStatus{Hash: hash, State: StateDone, CacheHit: true}, true
	}
	return JobStatus{}, false
}

// ResultBytes returns the canonical bundle bytes for a completed hash.
func (s *Service) ResultBytes(hash string) ([]byte, bool) {
	return s.cache.Get(hash)
}

// Drain stops the service accepting new submissions; in-flight jobs keep
// running. Wait blocks until they finish.
func (s *Service) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Wait blocks until every accepted job has finished, or ctx expires.
func (s *Service) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// MetricsSnapshot renders the service's cache and queue gauges as a
// registry snapshot for the PR 8 OpenMetrics path (obs.WriteOpenMetrics).
func (s *Service) MetricsSnapshot() sim.Snapshot {
	st := sim.NewStats()
	cs := s.cache.Stats()
	st.Counter("cache.hits").Add(cs.Hits)
	st.Counter("cache.diskHits").Add(cs.DiskHits)
	st.Counter("cache.misses").Add(cs.Misses)
	st.Counter("cache.evictions").Add(cs.Evictions)
	st.Counter("cache.entries").Add(uint64(cs.Entries))
	st.Counter("cache.corrupt").Add(cs.Corrupt)
	st.Counter("cache.quarantined").Add(cs.Quarantined)
	st.Counter("cache.diskError").Add(cs.DiskErrors)
	st.Counter("cache.recoveredTmp").Add(cs.RecoveredTmp)
	if cs.Degraded {
		st.Counter("cache.degraded").Add(1)
	} else {
		st.Counter("cache.degraded").Add(0)
	}
	st.Counter("jobs.submitted").Add(s.submitted.Load())
	st.Counter("jobs.completed").Add(s.completed.Load())
	st.Counter("jobs.failed").Add(s.failed.Load())
	st.Counter("jobs.collapsed").Add(s.collapsed.Load())
	st.Counter("jobs.simulations").Add(s.simulations.Load())
	st.Counter("queue.running").Add(uint64(len(s.sem)))
	st.Counter("queue.waiting").Add(s.waiting.Load())
	st.Counter("queue.queued").Add(uint64(max(0, s.asyncPending.Load())))
	st.Counter("queue.syncWaiters").Add(uint64(max(0, s.syncWaiters.Load())))
	st.Counter("admission.rejected").Add(s.admissionRejected.Load())
	st.Counter("deadline.exceeded").Add(s.deadlinesExceeded.Load())
	return st.Snapshot()
}

// RetryAfter suggests how many seconds a rejected client should back off
// before resubmitting, scaled to the current backlog per worker. It is the
// value behind the HTTP Retry-After header on 429/503 responses.
func (s *Service) RetryAfter() int {
	backlog := int(s.waiting.Load()) + int(s.asyncPending.Load())
	secs := 1 + backlog/s.workers
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Simulations reports how many simulations have actually executed — the
// denominator of every "identical requests cost one simulation" claim.
func (s *Service) Simulations() uint64 { return s.simulations.Load() }
