package service

import (
	"context"
	"fmt"
	"io"
	"time"

	"baryon/internal/config"
	"baryon/internal/cpu"
	"baryon/internal/experiment"
	"baryon/internal/obs"
	"baryon/internal/report"
	"baryon/internal/trace"
)

// SingleRun describes one instrumented foreground simulation — the shared
// core behind cmd/baryonsim: spec validation, timeout and stall-watchdog
// wiring, tracer and introspector attachment. It bypasses the result cache
// (a foreground run may replay arbitrary trace files and custom workloads
// the content-address cannot cover).
type SingleRun struct {
	Cfg      config.Config
	Workload trace.Workload
	// Source optionally replays a recorded trace instead of the workload's
	// synthetic generator.
	Source trace.Source
	Design string

	// Timeout bounds the run's wall clock (0 = none).
	Timeout time.Duration
	// StallTimeout aborts the run when the introspector's progress
	// heartbeats freeze for this long (0 = off).
	StallTimeout time.Duration

	// Tracer and Introspector attach live instrumentation; when
	// StallTimeout needs an introspector and none is given, one is created
	// internally.
	Tracer       *obs.Tracer
	Introspector *obs.Introspector
	// StallWarnings receives the watchdog's diagnostic line (nil = none).
	StallWarnings io.Writer
}

// RunSingle executes one foreground run with the request's timeout,
// watchdog and instrumentation wired. Like cpu.Runner.RunCtx it returns the
// partial metrics alongside the error when the run is cut short.
func RunSingle(ctx context.Context, req SingleRun) (cpu.Result, error) {
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	in := req.Introspector
	if req.StallTimeout > 0 {
		if in == nil {
			in = &obs.Introspector{}
		}
		// The watchdog watches the introspector's progress heartbeats and
		// cancels the run when they freeze: a wedged run dies with a
		// diagnostic instead of hanging forever.
		ctx2, cancel := context.WithCancel(ctx)
		defer cancel()
		ctx = ctx2
		wd := obs.NewWatchdog(in, req.StallTimeout, func(last *obs.RunStatus) {
			if req.StallWarnings != nil {
				if last != nil {
					fmt.Fprintf(req.StallWarnings, "stall watchdog: no progress for %s (stuck at %d/%d accesses, phase %s, last update %s)\n",
						req.StallTimeout, last.Accesses, last.TargetAccesses, last.Phase,
						last.UpdatedAt.Format(time.RFC3339))
				} else {
					fmt.Fprintf(req.StallWarnings, "stall watchdog: no progress for %s (no status ever published)\n", req.StallTimeout)
				}
			}
			cancel()
		})
		defer wd.Stop()
	}
	pair := experiment.Pair{
		Cfg:      req.Cfg,
		Workload: req.Workload,
		Design:   req.Design,
		Source:   req.Source,
	}
	if req.Tracer != nil || in != nil {
		pair.Obs = &experiment.RunObs{Tracer: req.Tracer, Introspector: in}
	}
	return experiment.RunPairCtx(ctx, pair)
}

// BundleFor builds the deterministic report bundle for a completed run of a
// registered design — the shared bundle-emission path of the CLIs.
func BundleFor(design string, cfg config.Config, res cpu.Result) (report.Bundle, error) {
	spec, ok := experiment.Lookup(design)
	if !ok {
		return report.Bundle{}, fmt.Errorf("design %q not registered", design)
	}
	key, err := report.Key(spec, cfg, res.Workload)
	if err != nil {
		return report.Bundle{}, err
	}
	return report.New(key, res)
}
