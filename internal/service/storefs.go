package service

import (
	"fmt"
	"os"
	"sync"
)

// storeFS is the filesystem seam under the result store's disk layer. Every
// IO the store performs goes through this interface, so the fault-injecting
// FaultFS can exercise each failure path deterministically in unit tests —
// torn writes, failed renames, unreadable files — without touching a real
// disk's error behavior.
type storeFS interface {
	MkdirAll(dir string) error
	ReadFile(path string) ([]byte, error)
	// WriteFileSync creates (or truncates) path, writes data and fsyncs the
	// file before closing, so a rename that follows publishes fully-durable
	// bytes — a crash after the rename can never expose a torn bundle.
	WriteFileSync(path string, data []byte) error
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
}

// osFS is the real-filesystem storeFS.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) WriteFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	// fsync before close: the subsequent rename must only ever publish
	// bytes that are durable, or a crash between rename and writeback
	// would leave a named-but-torn bundle.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// FaultFS wraps a storeFS and fails selected operations on demand — the
// deterministic fault injector behind the store's IO-failure tests. Arm an
// operation with Fail and every call of that kind returns the given error
// until Heal; the underlying filesystem is not touched by failed calls, so
// a test can simulate a full disk (writes fail, reads succeed) or a
// read-corrupting medium precisely and repeatably.
//
// Operation names: "mkdir", "read", "write", "rename", "remove", "readdir".
type FaultFS struct {
	// FS is the wrapped filesystem (nil = the real one).
	FS storeFS

	mu   sync.Mutex
	fail map[string]error
	ops  map[string]int
}

// Fail arms op: every subsequent call of that operation returns err.
func (f *FaultFS) Fail(op string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail == nil {
		f.fail = make(map[string]error)
	}
	if err == nil {
		err = fmt.Errorf("faultfs: injected %s failure", op)
	}
	f.fail[op] = err
}

// Heal disarms op; subsequent calls pass through again.
func (f *FaultFS) Heal(op string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.fail, op)
}

// Ops reports how many calls of op were attempted (failed or not).
func (f *FaultFS) Ops(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops[op]
}

// check counts the attempt and returns the armed error, if any.
func (f *FaultFS) check(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ops == nil {
		f.ops = make(map[string]int)
	}
	f.ops[op]++
	return f.fail[op]
}

func (f *FaultFS) inner() storeFS {
	if f.FS != nil {
		return f.FS
	}
	return osFS{}
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.check("mkdir"); err != nil {
		return err
	}
	return f.inner().MkdirAll(dir)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.check("read"); err != nil {
		return nil, err
	}
	return f.inner().ReadFile(path)
}

func (f *FaultFS) WriteFileSync(path string, data []byte) error {
	if err := f.check("write"); err != nil {
		return err
	}
	return f.inner().WriteFileSync(path, data)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check("rename"); err != nil {
		return err
	}
	return f.inner().Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if err := f.check("remove"); err != nil {
		return err
	}
	return f.inner().Remove(path)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.check("readdir"); err != nil {
		return nil, err
	}
	return f.inner().ReadDir(dir)
}
