package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"baryon/internal/obs"
)

func testServer(t *testing.T) (*Service, *Client) {
	t.Helper()
	s := quickService(t, Options{})
	srv := httptest.NewServer(NewHandler(s, context.Background()))
	t.Cleanup(srv.Close)
	return s, &Client{Base: srv.URL}
}

// TestHTTPRunSync drives the synchronous endpoint twice and checks the
// cache header transitions miss -> hit with byte-identical bodies.
func TestHTTPRunSync(t *testing.T) {
	_, c := testServer(t)
	ctx := context.Background()
	first, status, hash, err := c.RunSync(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if status != "miss" {
		t.Fatalf("first run cache status %q, want miss", status)
	}
	if !strings.HasPrefix(hash, "sha256:") {
		t.Fatalf("malformed hash header %q", hash)
	}
	second, status2, hash2, err := c.RunSync(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if status2 != "hit" {
		t.Fatalf("second run cache status %q, want hit", status2)
	}
	if hash2 != hash || !bytes.Equal(first, second) {
		t.Fatal("cache-served response differs from the simulated one")
	}
}

// TestHTTPSubmitPollResult covers the async path end to end over the wire.
func TestHTTPSubmitPollResult(t *testing.T) {
	_, c := testServer(t)
	ctx := context.Background()
	st, err := c.Submit(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State != StateDone {
		if st.State == StateFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if st, err = c.Status(ctx, st.Hash); err != nil {
			t.Fatal(err)
		}
	}
	data, err := c.Result(ctx, st.Hash)
	if err != nil {
		t.Fatal(err)
	}
	sync, _, _, err := c.RunSync(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, sync) {
		t.Fatal("async result differs from the synchronous bundle")
	}
}

// TestHTTPErrors pins the failure-path status codes.
func TestHTTPErrors(t *testing.T) {
	s, c := testServer(t)
	ctx := context.Background()

	if _, _, _, err := c.RunSync(ctx, Job{Design: "NoSuch", Workload: "505.mcf_r"}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("bad design: %v, want 400", err)
	}
	if _, err := c.Status(ctx, "sha256:unknown"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown status: %v, want 404", err)
	}
	if _, err := c.Result(ctx, "sha256:unknown"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown result: %v, want 404", err)
	}
	// An unknown field is a client error, not silently ignored: job schema
	// growth must never make old daemons mis-key new submissions.
	resp, err := http.Post(c.Base+"/api/v1/run", "application/json",
		strings.NewReader(`{"design":"Baryon","workload":"505.mcf_r","cacheWays":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown job field: %d, want 400", resp.StatusCode)
	}

	s.Drain()
	if _, _, _, err := c.RunSync(ctx, quickJob); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("draining run: %v, want 503", err)
	}
	resp, err = http.Get(c.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPMetricsLint scrapes /metrics after traffic and runs the exposition
// through the in-repo OpenMetrics linter.
func TestHTTPMetricsLint(t *testing.T) {
	_, c := testServer(t)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, _, _, err := c.RunSync(ctx, quickJob); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("content type %q", ct)
	}
	if err := obs.LintOpenMetrics(resp.Body); err != nil {
		t.Fatalf("/metrics is not valid OpenMetrics: %v", err)
	}
}

// TestHTTPCatalogs checks the designs and workloads listings are non-empty
// and contain the canonical entries.
func TestHTTPCatalogs(t *testing.T) {
	_, c := testServer(t)
	for path, want := range map[string]string{
		"/api/v1/designs":   `"Baryon"`,
		"/api/v1/workloads": `"505.mcf_r"`,
	} {
		resp, err := http.Get(c.Base + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), want) {
			t.Fatalf("%s: status %d body %s", path, resp.StatusCode, buf.String())
		}
	}
}
