package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"baryon/internal/obs"
)

// testServer serves a default service; the returned client is single-attempt
// (Retry disabled) so error-path tests observe raw status codes instead of
// backoff loops. Retry behavior has its own tests below.
func testServer(t *testing.T) (*Service, *Client) {
	t.Helper()
	return testServerOpts(t, Options{}, HandlerOptions{})
}

func testServerOpts(t *testing.T, sopts Options, hopts HandlerOptions) (*Service, *Client) {
	t.Helper()
	s := quickService(t, sopts)
	if hopts.RunCtx == nil {
		hopts.RunCtx = context.Background()
	}
	srv := httptest.NewServer(NewHandlerOpts(s, hopts))
	t.Cleanup(srv.Close)
	return s, &Client{Base: srv.URL, Retry: RetryPolicy{Disable: true}}
}

// TestHTTPRunSync drives the synchronous endpoint twice and checks the
// cache header transitions miss -> hit with byte-identical bodies.
func TestHTTPRunSync(t *testing.T) {
	_, c := testServer(t)
	ctx := context.Background()
	first, status, hash, err := c.RunSync(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if status != "miss" {
		t.Fatalf("first run cache status %q, want miss", status)
	}
	if !strings.HasPrefix(hash, "sha256:") {
		t.Fatalf("malformed hash header %q", hash)
	}
	second, status2, hash2, err := c.RunSync(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if status2 != "hit" {
		t.Fatalf("second run cache status %q, want hit", status2)
	}
	if hash2 != hash || !bytes.Equal(first, second) {
		t.Fatal("cache-served response differs from the simulated one")
	}
}

// TestHTTPSubmitPollResult covers the async path end to end over the wire.
func TestHTTPSubmitPollResult(t *testing.T) {
	_, c := testServer(t)
	ctx := context.Background()
	st, err := c.Submit(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State != StateDone {
		if st.State == StateFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if st, err = c.Status(ctx, st.Hash); err != nil {
			t.Fatal(err)
		}
	}
	data, err := c.Result(ctx, st.Hash)
	if err != nil {
		t.Fatal(err)
	}
	sync, _, _, err := c.RunSync(ctx, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, sync) {
		t.Fatal("async result differs from the synchronous bundle")
	}
}

// TestHTTPErrors pins the failure-path status codes.
func TestHTTPErrors(t *testing.T) {
	s, c := testServer(t)
	ctx := context.Background()

	if _, _, _, err := c.RunSync(ctx, Job{Design: "NoSuch", Workload: "505.mcf_r"}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("bad design: %v, want 400", err)
	}
	if _, err := c.Status(ctx, "sha256:unknown"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown status: %v, want 404", err)
	}
	if _, err := c.Result(ctx, "sha256:unknown"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown result: %v, want 404", err)
	}
	// An unknown field is a client error, not silently ignored: job schema
	// growth must never make old daemons mis-key new submissions.
	resp, err := http.Post(c.Base+"/api/v1/run", "application/json",
		strings.NewReader(`{"design":"Baryon","workload":"505.mcf_r","cacheWays":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown job field: %d, want 400", resp.StatusCode)
	}

	s.Drain()
	if _, _, _, err := c.RunSync(ctx, quickJob); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("draining run: %v, want 503", err)
	}
	resp, err = http.Get(c.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPMetricsLint scrapes /metrics after traffic and runs the exposition
// through the in-repo OpenMetrics linter.
func TestHTTPMetricsLint(t *testing.T) {
	_, c := testServer(t)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, _, _, err := c.RunSync(ctx, quickJob); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("content type %q", ct)
	}
	if err := obs.LintOpenMetrics(resp.Body); err != nil {
		t.Fatalf("/metrics is not valid OpenMetrics: %v", err)
	}
}

// TestHTTPOverload429 saturates the sync-waiter bound over the wire and
// checks the refusal is a 429 carrying a Retry-After hint.
func TestHTTPOverload429(t *testing.T) {
	s, c := testServerOpts(t, Options{Workers: 1, MaxSyncWaiters: 1}, HandlerOptions{})
	release := fillWorkers(s)
	t.Cleanup(release)

	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.RunSync(context.Background(), quickJob)
		done <- err
	}()
	waitCond(t, "the first request to park as a sync waiter", func() bool {
		return s.syncWaiters.Load() == 1
	})
	body, err := json.Marshal(Job{Design: "Baryon", Workload: "505.mcf_r", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.Base+"/api/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded run: HTTP %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("parked request failed after workers freed: %v", err)
	}
}

// TestHTTPDeadline pins the per-request budget: an expired X-Baryon-Deadline
// answers 504, a malformed one 400, and the Client's Deadline field sends the
// header on every request.
func TestHTTPDeadline(t *testing.T) {
	s, c := testServerOpts(t, Options{Workers: 1}, HandlerOptions{})
	release := fillWorkers(s)
	t.Cleanup(release)

	body, err := json.Marshal(quickJob)
	if err != nil {
		t.Fatal(err)
	}
	post := func(deadline string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, c.Base+"/api/v1/run", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(DeadlineHeader, deadline)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("30ms"); resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: HTTP %d, want 504", resp.StatusCode)
	}
	if resp := post("soon"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline: HTTP %d, want 400", resp.StatusCode)
	}
	if n := s.deadlinesExceeded.Load(); n != 1 {
		t.Fatalf("deadline.exceeded = %d, want 1", n)
	}
	// The client-side knob reaches the same path.
	c.Deadline = 30 * time.Millisecond
	if _, _, _, err := c.RunSync(context.Background(), quickJob); err == nil ||
		!strings.Contains(err.Error(), "504") {
		t.Fatalf("client deadline: %v, want 504", err)
	}
}

// TestPanicMiddleware: a panicking handler answers 500 with the panic logged
// (stack included) instead of tearing down the server.
func TestPanicMiddleware(t *testing.T) {
	var log bytes.Buffer
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), time.Second, &log)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/panics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: HTTP %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(body.String(), "internal panic") {
		t.Fatalf("500 body %q lacks the panic marker", body.String())
	}
	if !strings.Contains(log.String(), "boom") || !strings.Contains(log.String(), "goroutine") {
		t.Fatalf("panic log lacks message or stack: %s", log.String())
	}
	// The server survived: a second request is served normally.
	resp2, err := http.Get(srv.URL + "/again")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
}

// TestClientRetryConvergence: a client hitting transient 429s backs off
// (honoring Retry-After as the floor) and converges to the byte-identical
// answer the first attempt would have produced.
func TestClientRetryConvergence(t *testing.T) {
	s := quickService(t, Options{})
	inner := NewHandler(s, context.Background())
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/run" && calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, "injected overload", http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	var delays []time.Duration
	c := &Client{Base: srv.URL, Retry: RetryPolicy{
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}}
	bundle, status, _, err := c.RunSync(context.Background(), quickJob)
	if err != nil {
		t.Fatalf("retrying run: %v", err)
	}
	if status != "miss" {
		t.Fatalf("converged status %q, want miss", status)
	}
	if got, want := c.Rejected(), uint64(2); got != want {
		t.Fatalf("client rejected = %d, want %d", got, want)
	}
	if got, want := c.Retries(), uint64(2); got != want {
		t.Fatalf("client retries = %d, want %d", got, want)
	}
	if len(delays) != 2 {
		t.Fatalf("%d backoff sleeps, want 2", len(delays))
	}
	for i, d := range delays {
		if d < 7*time.Second {
			t.Fatalf("sleep %d = %v, below the 7s Retry-After floor", i, d)
		}
	}
	direct, err := s.Run(context.Background(), quickJob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bundle, direct.Bundle) {
		t.Fatal("retried response differs from the direct bundle bytes")
	}
}

// TestClientRetryExhaustion: a persistently overloaded server exhausts the
// attempt budget and the last rejection surfaces as the error.
func TestClientRetryExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "still overloaded", http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	var sleeps int
	c := &Client{Base: srv.URL, Retry: RetryPolicy{
		MaxAttempts: 3,
		Sleep: func(ctx context.Context, d time.Duration) error {
			sleeps++
			return nil
		},
	}}
	_, _, _, err := c.RunSync(context.Background(), quickJob)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("exhausted retries: %v, want a 503 error", err)
	}
	if sleeps != 2 || c.Retries() != 2 || c.Rejected() != 3 {
		t.Fatalf("sleeps=%d retries=%d rejected=%d, want 2/2/3", sleeps, c.Retries(), c.Rejected())
	}
}

// TestHTTPCatalogs checks the designs and workloads listings are non-empty
// and contain the canonical entries.
func TestHTTPCatalogs(t *testing.T) {
	_, c := testServer(t)
	for path, want := range map[string]string{
		"/api/v1/designs":   `"Baryon"`,
		"/api/v1/workloads": `"505.mcf_r"`,
	} {
		resp, err := http.Get(c.Base + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), want) {
			t.Fatalf("%s: status %d body %s", path, resp.StatusCode, buf.String())
		}
	}
}
