package service

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStoreCorruptionQuarantined covers the verified disk layer: every way a
// store entry can rot — truncation, a flipped byte, a stripped trailer, a
// valid entry filed under the wrong hash — must read as a miss, move the file
// into quarantine/, and self-heal on the next Put with recomputed bytes.
func TestStoreCorruptionQuarantined(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			raw := mustRead(t, path)
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(t *testing.T, path string) {
			raw := mustRead(t, path)
			raw[len(raw)/3] ^= 0x40
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"no trailer", func(t *testing.T, path string) {
			raw := mustRead(t, path)
			idx := bytes.LastIndexByte(raw[:len(raw)-1], '\n')
			if err := os.WriteFile(path, raw[:idx+1], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"cross-wired", func(t *testing.T, path string) {
			// A perfectly valid entry — for a different spec. The trailer
			// digest passes; only the spec-hash check can catch it.
			_, other := fakeBundle(t, 99)
			if err := os.WriteFile(path, appendStoreTrailer(other), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var log bytes.Buffer
			seed, err := NewStore(StoreConfig{Dir: dir, Log: &log})
			if err != nil {
				t.Fatal(err)
			}
			hash, data := fakeBundle(t, 1)
			seed.Put(hash, data)
			tc.corrupt(t, seed.path(hash))

			c, err := NewStore(StoreConfig{Dir: dir, Log: &log})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(hash); ok {
				t.Fatal("corrupt store entry was served")
			}
			st := c.Stats()
			if st.Corrupt != 1 || st.Quarantined != 1 {
				t.Fatalf("stats = %+v, want 1 corrupt and 1 quarantined", st)
			}
			if _, err := os.Stat(seed.path(hash)); !errors.Is(err, fs.ErrNotExist) {
				t.Fatal("corrupt entry still under its published name")
			}
			qnames, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(qnames) != 1 {
				t.Fatalf("quarantine dir: %v, %d entries, want 1", err, len(qnames))
			}
			if !strings.Contains(log.String(), "quarantined") {
				t.Fatalf("no quarantine diagnostic in log: %s", log.String())
			}
			// Self-heal: the deterministic run recomputes identical bytes, Put
			// rewrites the entry, and a fresh store verifies it clean.
			c.Put(hash, data)
			c2, err := NewStore(StoreConfig{Dir: dir, Log: &log})
			if err != nil {
				t.Fatal(err)
			}
			got, ok := c2.Get(hash)
			if !ok || !bytes.Equal(got, data) {
				t.Fatal("rewritten entry not served byte-identically")
			}
			if st := c2.Stats(); st.Corrupt != 0 {
				t.Fatalf("healed store still reports corruption: %+v", st)
			}
		})
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestStoreRecoverySweepsTmp is the kill-mid-write test: a crashed writer
// leaves an orphaned *.tmp in the bundle directory, and the next startup's
// recovery scan must sweep it, count it, log a summary, and leave intact
// entries untouched.
func TestStoreRecoverySweepsTmp(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, data := fakeBundle(t, 1)
	seed.Put(hash, data)
	// What a kill -9 between WriteFileSync and Rename leaves behind.
	tmp := filepath.Join(dir, "sha256-feedface.bundle.json.tmp")
	if err := os.WriteFile(tmp, []byte("torn half-written bundle"), 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	c, err := NewStore(StoreConfig{Dir: dir, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("orphaned tmp file survived the recovery scan")
	}
	if st := c.Stats(); st.RecoveredTmp != 1 {
		t.Fatalf("stats = %+v, want 1 recovered tmp", st)
	}
	if !strings.Contains(log.String(), "store recovery") ||
		!strings.Contains(log.String(), "swept 1 orphaned tmp") {
		t.Fatalf("recovery summary missing from log: %s", log.String())
	}
	got, ok := c.Get(hash)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("intact entry lost across recovery")
	}
}

// TestStorePutDiskFailureDegrades is the write-through regression test: a
// failing disk write must never fail the job — the result is served from
// memory, the store flips to degraded mode (counted and logged), and the
// next successful write restores persistence.
func TestStorePutDiskFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	var log bytes.Buffer
	c, err := NewStore(StoreConfig{Dir: dir, Log: &log, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	hash, data := fakeBundle(t, 1)

	ffs.Fail("write", errors.New("disk full"))
	c.Put(hash, data)
	got, ok := c.Get(hash)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("result not served from memory after a disk-write failure")
	}
	if !c.Degraded() {
		t.Fatal("store not degraded after a disk-write failure")
	}
	st := c.Stats()
	if st.DiskErrors != 1 || !st.Degraded {
		t.Fatalf("stats = %+v, want 1 disk error and degraded", st)
	}
	if !strings.Contains(log.String(), "memory-only") {
		t.Fatalf("no degradation diagnostic in log: %s", log.String())
	}
	if _, err := os.Stat(c.path(hash)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("failed write still published a file")
	}

	ffs.Heal("write")
	hash2, data2 := fakeBundle(t, 2)
	c.Put(hash2, data2)
	if c.Degraded() {
		t.Fatal("store still degraded after a successful write")
	}
	if !strings.Contains(log.String(), "recovered") {
		t.Fatalf("no recovery diagnostic in log: %s", log.String())
	}
	// The healed write is durable: a fresh store over the same dir serves it.
	c2, err := NewStore(StoreConfig{Dir: dir, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := c2.Get(hash2)
	if !ok || !bytes.Equal(got2, data2) {
		t.Fatal("post-recovery entry not durable")
	}
}

// TestStorePutRenameFailureCleansTmp: a failed publishing rename degrades the
// store and removes its tmp file instead of leaving an orphan.
func TestStorePutRenameFailureCleansTmp(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	var log bytes.Buffer
	c, err := NewStore(StoreConfig{Dir: dir, Log: &log, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	hash, data := fakeBundle(t, 1)
	ffs.Fail("rename", nil)
	c.Put(hash, data)
	if !c.Degraded() {
		t.Fatal("store not degraded after a rename failure")
	}
	if _, err := os.Stat(c.path(hash) + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("failed rename left its tmp file behind")
	}
	if _, ok := c.Get(hash); !ok {
		t.Fatal("result lost from memory")
	}
}

// TestStoreReadErrorCounted: a disk read failing with anything other than
// not-exist is a counted disk error and a miss — not a quarantine (the bytes
// might be fine; the medium hiccuped).
func TestStoreReadErrorCounted(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	seed, err := NewStore(StoreConfig{Dir: dir, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	hash, data := fakeBundle(t, 1)
	seed.Put(hash, data)

	ffs := &FaultFS{}
	c, err := NewStore(StoreConfig{Dir: dir, Log: &log, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	ffs.Fail("read", errors.New("io pressure"))
	if _, ok := c.Get(hash); ok {
		t.Fatal("unreadable entry was served")
	}
	st := c.Stats()
	if st.DiskErrors < 1 {
		t.Fatalf("stats = %+v, want a counted disk error", st)
	}
	if st.Corrupt != 0 || st.Quarantined != 0 {
		t.Fatalf("read error mis-filed as corruption: %+v", st)
	}
	ffs.Heal("read")
	got, ok := c.Get(hash)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("entry not served after the read fault healed")
	}
}
