package service

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"baryon/internal/experiment"
	"baryon/internal/report"
)

// FlagOpt selects which of the shared CLI flags RegisterFlags installs.
// The -timeout/-bundle-dir/-design-file plumbing used to be copied across
// cmd/baryonsim, cmd/sweep and cmd/experiments; it lives here once now.
type FlagOpt uint

const (
	// FlagTimeout registers -timeout (overall wall-clock budget).
	FlagTimeout FlagOpt = 1 << iota
	// FlagBundleDir registers -bundle-dir (per-run report bundles).
	FlagBundleDir
	// FlagDesignFile registers the singular -design-file (cmd/baryonsim).
	FlagDesignFile
	// FlagDesignFiles registers the plural -design-files (cmd/sweep).
	FlagDesignFiles
	// FlagParallel registers -parallel (experiment worker count).
	FlagParallel
)

// Flags holds the parsed values of the shared CLI flags.
type Flags struct {
	Timeout   time.Duration
	BundleDir string
	Parallel  int

	// Specs are the designs loaded from -design-file/-design-files by
	// Setup, already registered and runnable by name.
	Specs []experiment.DesignSpec

	which       FlagOpt
	designFiles string
}

// RegisterFlags installs the selected shared flags on fs. timeoutUsage is
// the full -timeout help text (each command describes its own expiry
// behavior); ignored unless FlagTimeout is selected.
func RegisterFlags(fs *flag.FlagSet, which FlagOpt, timeoutUsage string) *Flags {
	f := &Flags{which: which}
	if which&FlagTimeout != 0 {
		fs.DurationVar(&f.Timeout, "timeout", 0, timeoutUsage)
	}
	if which&FlagBundleDir != 0 {
		fs.StringVar(&f.BundleDir, "bundle-dir", "",
			"write one deterministic report bundle per successful run into this directory (diff with cmd/runreport)")
	}
	if which&FlagDesignFile != 0 {
		fs.StringVar(&f.designFiles, "design-file", "",
			"JSON DesignSpec file defining a custom design (runs it unless -design overrides)")
	}
	if which&FlagDesignFiles != 0 {
		fs.StringVar(&f.designFiles, "design-files", "",
			"comma-separated JSON DesignSpec files; loaded designs are appended to the sweep")
	}
	if which&FlagParallel != 0 {
		fs.IntVar(&f.Parallel, "parallel", 0, "worker count for concurrent runs (0 = GOMAXPROCS)")
	}
	return f
}

// Setup applies the parsed flags to a command lifecycle: wraps ctx in the
// -timeout deadline, installs -parallel on the experiment pool, loads and
// registers every -design-file(s) spec (exposed as Specs), and installs the
// -bundle-dir pair observer. The returned cleanup cancels the deadline and
// removes this command's observer (other owners' observers are untouched);
// it is safe to skip on process exit.
func (f *Flags) Setup(ctx context.Context, errw io.Writer) (context.Context, func(), error) {
	cancel := context.CancelFunc(func() {})
	if f.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, f.Timeout)
	}
	if f.which&FlagParallel != 0 {
		experiment.SetParallelism(f.Parallel)
	}
	if f.designFiles != "" {
		for _, path := range strings.Split(f.designFiles, ",") {
			spec, err := experiment.LoadSpecFile(strings.TrimSpace(path))
			if err != nil {
				cancel()
				return ctx, func() {}, fmt.Errorf("loading design file: %w", err)
			}
			f.Specs = append(f.Specs, spec)
		}
	}
	cleanup := func() { cancel() }
	if f.BundleDir != "" {
		h, err := report.ObservePairs(f.BundleDir, errw)
		if err != nil {
			cancel()
			return ctx, func() {}, fmt.Errorf("bundle dir: %w", err)
		}
		cleanup = func() {
			h.Remove()
			cancel()
		}
	}
	return ctx, cleanup, nil
}
