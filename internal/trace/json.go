package trace

import (
	"encoding/json"
	"fmt"
	"os"
)

// workloadJSON is the on-disk representation of a Workload, with the
// pattern spelled out as a string for hand-editing.
type workloadJSON struct {
	Name            string     `json:"name"`
	Pattern         string     `json:"pattern"`
	FootprintFactor float64    `json:"footprintFactor"`
	Shared          bool       `json:"shared,omitempty"`
	BlockUtil       float64    `json:"blockUtil"`
	WriteRatio      float64    `json:"writeRatio"`
	BurstLines      int        `json:"burstLines,omitempty"`
	GapMean         uint32     `json:"gapMean"`
	ZipfTheta       float64    `json:"zipfTheta,omitempty"`
	MixWeights      [5]float64 `json:"mixWeights"`
}

var patternNames = map[Pattern]string{
	PatternStream: "stream",
	PatternRandom: "random",
	PatternZipf:   "zipf",
	PatternGraph:  "graph",
	PatternKV:     "kv",
}

// MarshalJSON implements json.Marshaler for Workload.
func (w Workload) MarshalJSON() ([]byte, error) {
	return json.Marshal(workloadJSON{
		Name:            w.Name,
		Pattern:         patternNames[w.Pattern],
		FootprintFactor: w.FootprintFactor,
		Shared:          w.Shared,
		BlockUtil:       w.BlockUtil,
		WriteRatio:      w.WriteRatio,
		BurstLines:      w.BurstLines,
		GapMean:         w.GapMean,
		ZipfTheta:       w.ZipfTheta,
		MixWeights:      w.Mix.Weights,
	})
}

// UnmarshalJSON implements json.Unmarshaler for Workload.
func (w *Workload) UnmarshalJSON(data []byte) error {
	var j workloadJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	pattern := Pattern(0xFF)
	for p, name := range patternNames {
		if name == j.Pattern {
			pattern = p
		}
	}
	if pattern == 0xFF {
		return fmt.Errorf("trace: unknown pattern %q", j.Pattern)
	}
	if j.Name == "" {
		return fmt.Errorf("trace: workload needs a name")
	}
	if j.FootprintFactor <= 0 {
		return fmt.Errorf("trace: %s: footprintFactor must be positive", j.Name)
	}
	if j.BlockUtil <= 0 || j.BlockUtil > 1 {
		return fmt.Errorf("trace: %s: blockUtil must be in (0, 1]", j.Name)
	}
	if j.WriteRatio < 0 || j.WriteRatio > 1 {
		return fmt.Errorf("trace: %s: writeRatio must be in [0, 1]", j.Name)
	}
	if j.GapMean == 0 {
		return fmt.Errorf("trace: %s: gapMean must be positive", j.Name)
	}
	w.Name = j.Name
	w.Pattern = pattern
	w.FootprintFactor = j.FootprintFactor
	w.Shared = j.Shared
	w.BlockUtil = j.BlockUtil
	w.WriteRatio = j.WriteRatio
	w.BurstLines = j.BurstLines
	w.GapMean = j.GapMean
	w.ZipfTheta = j.ZipfTheta
	w.Mix.Weights = j.MixWeights
	return nil
}

// LoadFile reads one custom workload definition from a JSON file, so users
// can model their own applications without recompiling (see cmd/baryonsim's
// -workload-file flag).
func LoadFile(path string) (Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Workload{}, err
	}
	var w Workload
	if err := json.Unmarshal(data, &w); err != nil {
		return Workload{}, err
	}
	return w, nil
}
