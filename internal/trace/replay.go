package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"baryon/internal/datagen"
)

// Streamer produces one core's access sequence. *Stream (the synthetic
// generator) and replay cursors both implement it.
type Streamer interface {
	Next() Access
}

// Source provides per-core access streams plus the value mix the canonical
// store should be filled with. Workload is the synthetic implementation;
// Replay feeds recorded traces, so real application traces (or dumps from
// cmd/tracegen) can drive every controller in this repository.
type Source interface {
	SourceName() string
	ValueMix() datagen.Mix
	Streams(cores int, fastBlocks uint64, seed uint64) []Streamer
}

// SourceName implements Source for Workload.
func (w Workload) SourceName() string { return w.Name }

// ValueMix implements Source for Workload.
func (w Workload) ValueMix() datagen.Mix { return w.Mix }

// Streams implements Source for Workload.
func (w Workload) Streams(cores int, fastBlocks uint64, seed uint64) []Streamer {
	out := make([]Streamer, cores)
	for c := 0; c < cores; c++ {
		out[c] = w.NewStream(c, fastBlocks, seed)
	}
	return out
}

// Replay is a recorded trace: per-core access sequences replayed verbatim
// (wrapping around when a core's records run out).
type Replay struct {
	Name string
	Mix  datagen.Mix
	// PerCore holds each core's recorded accesses; cores beyond the
	// recorded set replay existing cores round-robin.
	PerCore [][]Access
}

// SourceName implements Source.
func (r *Replay) SourceName() string { return r.Name }

// ValueMix implements Source.
func (r *Replay) ValueMix() datagen.Mix { return r.Mix }

// Streams implements Source.
func (r *Replay) Streams(cores int, _ uint64, _ uint64) []Streamer {
	out := make([]Streamer, cores)
	for c := 0; c < cores; c++ {
		recs := r.PerCore[c%len(r.PerCore)]
		out[c] = &replayCursor{recs: recs}
	}
	return out
}

type replayCursor struct {
	recs []Access
	pos  int
}

// Next implements Streamer, wrapping at the end of the recording.
func (rc *replayCursor) Next() Access {
	if len(rc.recs) == 0 {
		return Access{Gap: 1}
	}
	a := rc.recs[rc.pos]
	rc.pos = (rc.pos + 1) % len(rc.recs)
	return a
}

// The trace-file format is one record per line:
//
//	<core> <R|W> <hex-address> <gap>
//
// with '#' comment lines ignored. cmd/tracegen -replay-format emits it and
// ParseReplay consumes it, so external tools only need to print four fields.

// WriteReplayRecord formats one record line.
func WriteReplayRecord(w io.Writer, core int, a Access) error {
	op := "R"
	if a.Write {
		op = "W"
	}
	_, err := fmt.Fprintf(w, "%d %s 0x%x %d\n", core, op, a.Addr, a.Gap)
	return err
}

// ParseReplay reads a trace file into a Replay with the given value mix.
func ParseReplay(r io.Reader, name string, mix datagen.Mix) (*Replay, error) {
	perCore := map[int][]Access{}
	maxCore := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		core, err := strconv.Atoi(fields[0])
		if err != nil || core < 0 {
			return nil, fmt.Errorf("trace: line %d: bad core %q", lineNo, fields[0])
		}
		var write bool
		switch fields[1] {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[1])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[2])
		}
		gap, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, fields[3])
		}
		perCore[core] = append(perCore[core], Access{Addr: addr, Write: write, Gap: uint32(gap)})
		if core > maxCore {
			maxCore = core
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxCore < 0 {
		return nil, fmt.Errorf("trace: no records")
	}
	rep := &Replay{Name: name, Mix: mix}
	for c := 0; c <= maxCore; c++ {
		if len(perCore[c]) == 0 {
			return nil, fmt.Errorf("trace: core %d has no records", c)
		}
		rep.PerCore = append(rep.PerCore, perCore[c])
	}
	return rep, nil
}

// LoadReplayFile reads a trace file from disk.
func LoadReplayFile(path, name string, mix datagen.Mix) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseReplay(f, name, mix)
}
