package trace

import (
	"bytes"
	"strings"
	"testing"

	"baryon/internal/datagen"
)

const sampleTrace = `# comment line
0 R 0x1000 5
0 W 0x1040 3
1 R 0x2000 7

1 R 0x2040 2
`

func TestParseReplay(t *testing.T) {
	rep, err := ParseReplay(strings.NewReader(sampleTrace), "t", datagen.UniformMix())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerCore) != 2 {
		t.Fatalf("cores=%d", len(rep.PerCore))
	}
	if len(rep.PerCore[0]) != 2 || len(rep.PerCore[1]) != 2 {
		t.Fatalf("record counts %d/%d", len(rep.PerCore[0]), len(rep.PerCore[1]))
	}
	a := rep.PerCore[0][1]
	if !a.Write || a.Addr != 0x1040 || a.Gap != 3 {
		t.Fatalf("record %+v", a)
	}
}

func TestParseReplayErrors(t *testing.T) {
	cases := map[string]string{
		"bad fields": "0 R 0x1000\n",
		"bad core":   "x R 0x1000 5\n",
		"bad op":     "0 Z 0x1000 5\n",
		"bad addr":   "0 R zz 5\n",
		"bad gap":    "0 R 0x1000 -1\n",
		"empty":      "# nothing\n",
		"core gap":   "1 R 0x1000 5\n", // core 0 missing
	}
	for name, body := range cases {
		if _, err := ParseReplay(strings.NewReader(body), "t", datagen.UniformMix()); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestReplayWriteParseRoundTrip(t *testing.T) {
	w, _ := ByName("505.mcf_r")
	var buf bytes.Buffer
	var want []Access
	s := w.NewStream(0, 1024, 1)
	for i := 0; i < 200; i++ {
		a := s.Next()
		want = append(want, a)
		if err := WriteReplayRecord(&buf, 0, a); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ParseReplay(&buf, "rt", w.Mix)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.PerCore[0]
	if len(got) != len(want) {
		t.Fatalf("records %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReplayStreamsWrapAndSpread(t *testing.T) {
	rep := &Replay{
		Name: "r", Mix: datagen.UniformMix(),
		PerCore: [][]Access{{{Addr: 64, Gap: 1}, {Addr: 128, Gap: 2}}},
	}
	streams := rep.Streams(3, 0, 0)
	if len(streams) != 3 {
		t.Fatalf("streams=%d", len(streams))
	}
	s := streams[2] // beyond the recorded set: replays core 0
	if a := s.Next(); a.Addr != 64 {
		t.Fatalf("first=%+v", a)
	}
	s.Next()
	if a := s.Next(); a.Addr != 64 {
		t.Fatalf("no wrap: %+v", a)
	}
}

func TestWorkloadImplementsSource(t *testing.T) {
	var src Source = Workload{Name: "x", GapMean: 4, FootprintFactor: 1, BlockUtil: 1}
	if src.SourceName() != "x" {
		t.Fatal("name")
	}
	streams := src.Streams(2, 512, 1)
	if len(streams) != 2 {
		t.Fatal("streams")
	}
	streams[0].Next()
}
