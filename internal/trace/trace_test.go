package trace

import (
	"testing"

	"baryon/internal/hybrid"
)

const testFastBlocks = 4096

func TestAllWorkloadsWellFormed(t *testing.T) {
	for _, w := range All() {
		if w.Name == "" || w.FootprintFactor <= 0 || w.GapMean == 0 {
			t.Fatalf("malformed workload %+v", w)
		}
		if w.BlockUtil <= 0 || w.BlockUtil > 1 {
			t.Fatalf("%s: BlockUtil %f out of range", w.Name, w.BlockUtil)
		}
		if w.WriteRatio < 0 || w.WriteRatio > 1 {
			t.Fatalf("%s: WriteRatio %f out of range", w.Name, w.WriteRatio)
		}
	}
	if len(All()) != 16 {
		t.Fatalf("suite has %d workloads, want 16 (paper's count)", len(All()))
	}
}

func TestStreamsStayInFootprint(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			limit := w.Blocks(testFastBlocks) * hybrid.BlockSize
			for core := 0; core < 16; core += 5 {
				s := w.NewStream(core, testFastBlocks, 1)
				for i := 0; i < 3000; i++ {
					a := s.Next()
					if a.Addr >= limit {
						t.Fatalf("core %d access %#x beyond footprint %#x", core, a.Addr, limit)
					}
					if a.Addr%hybrid.CachelineSize != 0 {
						t.Fatalf("unaligned access %#x", a.Addr)
					}
				}
			}
		})
	}
}

func TestWriteRatioApproximatelyHonoured(t *testing.T) {
	for _, name := range []string{"519.lbm_r", "YCSB-B"} {
		w, _ := ByName(name)
		s := w.NewStream(0, testFastBlocks, 1)
		writes := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if s.Next().Write {
				writes++
			}
		}
		got := float64(writes) / n
		if got < w.WriteRatio*0.4 || got > w.WriteRatio*2.0+0.02 {
			t.Fatalf("%s: write fraction %.3f vs configured %.3f", name, got, w.WriteRatio)
		}
	}
}

func TestBlockUtilRespected(t *testing.T) {
	// A workload with BlockUtil 0.25 must touch at most 2 of 8 sub-blocks
	// in any single block.
	w, _ := ByName("557.xz_r")
	s := w.NewStream(0, testFastBlocks, 1)
	subs := map[uint64]map[int]bool{}
	for i := 0; i < 50000; i++ {
		a := s.Next()
		b := a.Addr / hybrid.BlockSize
		if subs[b] == nil {
			subs[b] = map[int]bool{}
		}
		subs[b][hybrid.SubOf(a.Addr)] = true
	}
	maxSubs := 0
	for _, set := range subs {
		if len(set) > maxSubs {
			maxSubs = len(set)
		}
	}
	if maxSubs > 2 {
		t.Fatalf("xz (util 0.25) touched %d sub-blocks in one block", maxSubs)
	}
}

func TestStreamPatternIsSequentialish(t *testing.T) {
	w, _ := ByName("549.fotonik3d_r")
	s := w.NewStream(0, testFastBlocks, 1)
	var prev uint64
	increasing := 0
	const n = 5000
	for i := 0; i < n; i++ {
		a := s.Next()
		if i > 0 && a.Addr > prev {
			increasing++
		}
		prev = a.Addr
	}
	if float64(increasing)/n < 0.9 {
		t.Fatalf("stream pattern only %.2f increasing", float64(increasing)/n)
	}
}

func TestZipfPatternSkewed(t *testing.T) {
	w, _ := ByName("505.mcf_r")
	s := w.NewStream(0, testFastBlocks, 1)
	counts := map[uint64]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		counts[s.Next().Addr/hybrid.BlockSize]++
	}
	// The hottest block should be visited far more than the mean.
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(len(counts))
	if float64(max) < 5*mean {
		t.Fatalf("zipf skew too weak: max %d vs mean %.1f", max, mean)
	}
}

func TestKVRecordGranularity(t *testing.T) {
	w, _ := ByName("YCSB-A")
	s := w.NewStream(0, testFastBlocks, 1)
	// KV accesses walk records: consecutive accesses within a record are
	// 64 B apart.
	adjacent := 0
	var prev uint64
	const n = 10000
	for i := 0; i < n; i++ {
		a := s.Next()
		if i > 0 && a.Addr == prev+64 {
			adjacent++
		}
		prev = a.Addr
	}
	if float64(adjacent)/n < 0.5 {
		t.Fatalf("KV record scans missing: only %.2f adjacent", float64(adjacent)/n)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("505.mcf_r"); !ok {
		t.Fatal("known workload missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown workload found")
	}
}

func TestRepresentativeSubset(t *testing.T) {
	repr := Representative()
	if len(repr) == 0 {
		t.Fatal("empty representative set")
	}
	for _, w := range repr {
		if _, ok := ByName(w.Name); !ok {
			t.Fatalf("representative %s not in suite", w.Name)
		}
	}
}

func TestGapBounds(t *testing.T) {
	for _, w := range All() {
		s := w.NewStream(0, testFastBlocks, 1)
		for i := 0; i < 1000; i++ {
			g := s.Next().Gap
			if g < w.GapMean/2 || g > w.GapMean/2+w.GapMean {
				t.Fatalf("%s: gap %d outside [%d, %d]", w.Name, g, w.GapMean/2, w.GapMean/2+w.GapMean)
			}
		}
	}
}
