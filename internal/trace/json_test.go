package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWorkloadJSONRoundTrip(t *testing.T) {
	for _, w := range All() {
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", w.Name, err)
		}
		var back Workload
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", w.Name, err)
		}
		if back != w {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", w.Name, back, w)
		}
	}
}

func TestWorkloadJSONValidation(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"bad pattern", `{"name":"x","pattern":"nope","footprintFactor":1,"blockUtil":0.5,"writeRatio":0,"gapMean":5}`},
		{"missing name", `{"pattern":"zipf","footprintFactor":1,"blockUtil":0.5,"writeRatio":0,"gapMean":5}`},
		{"bad footprint", `{"name":"x","pattern":"zipf","footprintFactor":0,"blockUtil":0.5,"writeRatio":0,"gapMean":5}`},
		{"bad util", `{"name":"x","pattern":"zipf","footprintFactor":1,"blockUtil":2,"writeRatio":0,"gapMean":5}`},
		{"bad writeRatio", `{"name":"x","pattern":"zipf","footprintFactor":1,"blockUtil":0.5,"writeRatio":1.5,"gapMean":5}`},
		{"zero gap", `{"name":"x","pattern":"zipf","footprintFactor":1,"blockUtil":0.5,"writeRatio":0,"gapMean":0}`},
		{"not json", `{`},
	}
	for _, tc := range cases {
		var w Workload
		if err := json.Unmarshal([]byte(tc.body), &w); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.json")
	body := `{
		"name": "my-app",
		"pattern": "zipf",
		"footprintFactor": 2.0,
		"blockUtil": 0.5,
		"writeRatio": 0.2,
		"burstLines": 4,
		"gapMean": 8,
		"zipfTheta": 0.8,
		"mixWeights": [1, 1, 1, 1, 1]
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "my-app" || w.Pattern != PatternZipf || w.ZipfTheta != 0.8 {
		t.Fatalf("loaded %+v", w)
	}
	// The loaded workload must produce a usable stream.
	s := w.NewStream(0, 1024, 1)
	for i := 0; i < 100; i++ {
		s.Next()
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
