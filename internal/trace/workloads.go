package trace

import "baryon/internal/datagen"

// The workload suite of Section IV-A, recast as synthetic generators. The
// parameters are calibrated to the per-workload properties the paper reports
// or that follow from the benchmarks' known behaviour:
//
//   - FootprintFactor reproduces footprint-vs-fast-memory pressure (SPEC
//     5.8-13.4 GB against 4 GB fast memory => 1.45x-3.35x; GAP up to 8.6x).
//   - Mix reproduces compression factors (lbm ~1.0, fotonik3d ~2.4,
//     YCSB zero-heavy, etc.).
//   - BlockUtil and BurstLines reproduce spatial locality (xz low,
//     streaming codes high).
//   - WriteRatio reproduces write intensity (lbm very high, YCSB-A 50 %).

func mix(zero, smallInt, pointer, flt, random float64) datagen.Mix {
	return datagen.Mix{Weights: [5]float64{zero, smallInt, pointer, flt, random}}
}

// SPEC returns the SPEC CPU2017-like workloads (rate mode: private copies).
func SPEC() []Workload {
	return []Workload{
		{Name: "505.mcf_r", Pattern: PatternZipf, FootprintFactor: 2.6, BlockUtil: 0.50,
			WriteRatio: 0.25, BurstLines: 8, GapMean: 6, ZipfTheta: 0.85, Mix: mix(1, 3, 4, 0, 2)},
		{Name: "519.lbm_r", Pattern: PatternStream, FootprintFactor: 1.5, BlockUtil: 1.0,
			WriteRatio: 0.50, BurstLines: 8, GapMean: 5, Mix: mix(0, 0, 0, 1, 9)},
		{Name: "520.omnetpp_r", Pattern: PatternZipf, FootprintFactor: 2.6, BlockUtil: 0.40,
			WriteRatio: 0.30, BurstLines: 6, GapMean: 8, ZipfTheta: 0.85, Mix: mix(1, 2, 5, 0, 2)},
		{Name: "557.xz_r", Pattern: PatternZipf, FootprintFactor: 2.0, BlockUtil: 0.25,
			WriteRatio: 0.35, BurstLines: 1, GapMean: 7, ZipfTheta: 0.80, Mix: mix(1, 4, 0, 1, 4)},
		{Name: "549.fotonik3d_r", Pattern: PatternStream, FootprintFactor: 3.3, BlockUtil: 1.0,
			WriteRatio: 0.25, BurstLines: 8, GapMean: 5, Mix: mix(3, 2, 0, 5, 0)},
		{Name: "503.bwaves_r", Pattern: PatternStream, FootprintFactor: 2.8, BlockUtil: 0.9,
			WriteRatio: 0.20, BurstLines: 6, GapMean: 6, Mix: mix(1, 1, 0, 5, 3)},
		{Name: "507.cactuBSSN_r", Pattern: PatternZipf, FootprintFactor: 2.2, BlockUtil: 0.6,
			WriteRatio: 0.30, BurstLines: 6, GapMean: 7, ZipfTheta: 0.82, Mix: mix(1, 2, 1, 4, 2)},
		{Name: "554.roms_r", Pattern: PatternStream, FootprintFactor: 2.1, BlockUtil: 0.9,
			WriteRatio: 0.25, BurstLines: 6, GapMean: 6, Mix: mix(2, 1, 0, 5, 2)},
	}
}

// GAP returns the graph workloads (shared footprint, 16 threads).
func GAP() []Workload {
	return []Workload{
		{Name: "pr.twi", Pattern: PatternGraph, FootprintFactor: 8.0, Shared: true, BlockUtil: 0.35,
			WriteRatio: 0.15, BurstLines: 6, GapMean: 6, ZipfTheta: 0.95, Mix: mix(1, 4, 1, 3, 1)},
		{Name: "pr.web", Pattern: PatternGraph, FootprintFactor: 6.0, Shared: true, BlockUtil: 0.45,
			WriteRatio: 0.15, BurstLines: 6, GapMean: 6, ZipfTheta: 0.90, Mix: mix(1, 4, 1, 3, 1)},
		{Name: "cc.twi", Pattern: PatternGraph, FootprintFactor: 8.0, Shared: true, BlockUtil: 0.35,
			WriteRatio: 0.25, BurstLines: 6, GapMean: 5, ZipfTheta: 0.95, Mix: mix(2, 5, 0, 1, 2)},
		{Name: "cc.web", Pattern: PatternGraph, FootprintFactor: 6.0, Shared: true, BlockUtil: 0.45,
			WriteRatio: 0.25, BurstLines: 6, GapMean: 5, ZipfTheta: 0.90, Mix: mix(2, 5, 0, 1, 2)},
	}
}

// DNN returns the OneDNN inference workloads (shared weight tensors).
func DNN() []Workload {
	return []Workload{
		{Name: "resnet50", Pattern: PatternStream, FootprintFactor: 3.6, Shared: true, BlockUtil: 1.0,
			WriteRatio: 0.10, BurstLines: 8, GapMean: 9, Mix: mix(1, 1, 0, 6, 2)},
		{Name: "resnext50", Pattern: PatternStream, FootprintFactor: 4.5, Shared: true, BlockUtil: 1.0,
			WriteRatio: 0.10, BurstLines: 8, GapMean: 9, Mix: mix(1, 1, 0, 6, 2)},
	}
}

// YCSB returns the memcached+YCSB workloads (30 M 1 kB records in the
// paper; scaled with the footprint factor here).
func YCSB() []Workload {
	return []Workload{
		{Name: "YCSB-A", Pattern: PatternKV, FootprintFactor: 10.0, Shared: true, BlockUtil: 0.5,
			WriteRatio: 0.50, GapMean: 10, ZipfTheta: 0.99, Mix: mix(4, 3, 1, 0, 2)},
		{Name: "YCSB-B", Pattern: PatternKV, FootprintFactor: 10.0, Shared: true, BlockUtil: 0.5,
			WriteRatio: 0.05, GapMean: 10, ZipfTheta: 0.99, Mix: mix(4, 3, 1, 0, 2)},
	}
}

// All returns the full 16-workload suite in the paper's presentation order.
func All() []Workload {
	var out []Workload
	out = append(out, SPEC()...)
	out = append(out, GAP()...)
	out = append(out, DNN()...)
	out = append(out, YCSB()...)
	return out
}

// Representative returns the per-domain subset used by the analysis figures
// (Figs. 11-13 use representative workloads from each domain).
func Representative() []Workload {
	byName := make(map[string]Workload)
	for _, w := range All() {
		byName[w.Name] = w
	}
	names := []string{"505.mcf_r", "520.omnetpp_r", "549.fotonik3d_r", "pr.twi", "resnet50", "YCSB-A"}
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		out = append(out, byName[n])
	}
	return out
}

// ByName returns the workload with the given name, or false.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
