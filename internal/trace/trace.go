// Package trace generates the memory access streams that substitute for the
// paper's workloads (SPEC CPU2017 rate mode, GAP graph kernels, OneDNN
// inference, memcached+YCSB). Each workload is described by an access
// pattern (streaming, uniform random, Zipfian, graph traversal, key-value),
// a footprint relative to fast-memory capacity, a block-utilisation factor
// (which fraction of each 2 kB block the program actually touches — the
// property sub-blocking exploits), a write ratio, and a value-class mix for
// internal/datagen (the property compression exploits). Streams are
// deterministic per (workload, core, seed).
package trace

import (
	"baryon/internal/datagen"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

// Pattern selects the address-generation behaviour of a workload.
type Pattern uint8

// Supported access patterns.
const (
	// PatternStream sweeps the footprint sequentially (lbm, fotonik3d,
	// bwaves, DNN weight streaming).
	PatternStream Pattern = iota
	// PatternRandom touches uniformly random blocks (mcf pointer chasing,
	// xz dictionary probing).
	PatternRandom
	// PatternZipf touches blocks with a Zipfian popularity (omnetpp event
	// structures, cactuBSSN).
	PatternZipf
	// PatternGraph alternates a sequential vertex-array sweep with bursts of
	// Zipf-distributed edge-target accesses (GAP pagerank/cc).
	PatternGraph
	// PatternKV accesses whole 1 kB records under a Zipfian key popularity
	// (memcached+YCSB).
	PatternKV
)

// Access is one memory reference in a trace.
type Access struct {
	Addr  uint64
	Write bool
	// Gap is the number of non-memory instructions executed before this
	// access (used for timing and for per-kilo-instruction statistics).
	Gap uint32
}

// Workload describes one benchmark's memory behaviour.
type Workload struct {
	Name string
	// Pattern is the address-generation behaviour.
	Pattern Pattern
	// FootprintFactor is the data footprint as a multiple of fast-memory
	// capacity (the paper's workloads range from ~1.4x to ~8.6x).
	FootprintFactor float64
	// Shared is true when all cores share one footprint (GAP, DNN, YCSB);
	// false gives each core a private copy (SPEC rate mode).
	Shared bool
	// BlockUtil is the fraction of each block's eight sub-blocks the
	// program touches (sub-blocking headroom).
	BlockUtil float64
	// WriteRatio is the fraction of accesses that are stores.
	WriteRatio float64
	// BurstLines is the mean number of consecutive cachelines touched per
	// location (spatial locality within a sub-block/record).
	BurstLines int
	// GapMean is the mean non-memory instruction gap between accesses.
	GapMean uint32
	// ZipfTheta is the skew for Zipfian patterns.
	ZipfTheta float64
	// Mix is the value-class distribution that sets compressibility.
	Mix datagen.Mix
}

// Blocks returns the workload footprint in 2 kB blocks for a fast memory of
// fastBlocks blocks.
func (w *Workload) Blocks(fastBlocks uint64) uint64 {
	n := uint64(float64(fastBlocks) * w.FootprintFactor)
	if n == 0 {
		n = 1
	}
	return n
}

// Stream produces the access sequence of one core.
type Stream struct {
	w        *Workload
	rng      *sim.RNG
	zipf     *sim.Zipf
	base     uint64   // first block of this core's region
	blocks   uint64   // region size in blocks
	seqPtr   uint64   // streaming position (line granularity)
	pending  []uint64 // remaining addresses of the current block visit
	pendHead int      // consumed prefix of pending (popped by index, not reslice)
	burstWr  bool
	scanMode bool // PatternGraph: alternates scan and random phases
	scanLeft int
}

// NewStream returns core's deterministic access stream. fastBlocks sizes the
// footprint; streams of the same (workload, core, seed) are identical.
func (w *Workload) NewStream(core int, fastBlocks uint64, seed uint64) *Stream {
	rng := sim.NewRNG(seed ^ uint64(core)*0x9E3779B97F4A7C15 ^ hashName(w.Name))
	total := w.Blocks(fastBlocks)
	s := &Stream{w: w, rng: rng}
	if w.Shared {
		s.base, s.blocks = 0, total
	} else {
		per := total / 16
		if per == 0 {
			per = 1
		}
		s.base, s.blocks = uint64(core)*per, per
	}
	switch w.Pattern {
	case PatternZipf, PatternGraph:
		// Popularity is drawn at 16 kB (super-block) granularity: hot data
		// structures span multiple blocks, so neighbouring blocks tend to be
		// hot together — the spatial clustering super-block metadata
		// schemes (and footprint prediction) rely on.
		units := s.blocks / hotClusterBlocks
		if units == 0 {
			units = 1
		}
		s.zipf = sim.NewZipf(rng, units, w.ZipfTheta, true)
	case PatternKV:
		// Records are laid out in insertion order, so hot records are
		// contiguous in rank order (no scrambling): hot pages cluster.
		s.zipf = sim.NewZipf(rng, s.blocks*2, w.ZipfTheta, false)
	}
	return s
}

// hotClusterBlocks is the spatial clustering granularity of Zipfian
// popularity, in 2 kB blocks (16 kB regions).
const hotClusterBlocks = 8

// zipfBlock samples a block with super-block-clustered popularity.
func (s *Stream) zipfBlock() uint64 {
	cluster := s.zipf.Next()
	b := cluster*hotClusterBlocks + uint64(s.rng.Intn(hotClusterBlocks))
	if b >= s.blocks {
		b = s.blocks - 1
	}
	return s.base + b
}

// zipfVisit visits a Zipf-chosen block and, with region-level temporal
// locality, chains visits to neighbouring blocks of the same 16 kB region:
// programs that touch one 2 kB block of an array chunk or arena typically
// touch its neighbours in the same window. This is the spatial clustering
// super-block metadata schemes amortise over.
func (s *Stream) zipfVisit(visit int) uint64 {
	cluster := s.zipf.Next()
	start := s.rng.Intn(hotClusterBlocks)
	chain := 1 + s.rng.Intn(3)
	var first uint64
	for j := 0; j < chain; j++ {
		b := cluster*hotClusterBlocks + uint64((start+j)%hotClusterBlocks)
		if b >= s.blocks {
			b = s.blocks - 1
		}
		addr := s.visitBlock(s.base+b, visit)
		if j == 0 {
			first = addr
		} else {
			// The chained block's first access also goes through pending.
			s.pending = append(s.pending, addr)
		}
	}
	return first
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// allowedSubs returns the deterministic set of sub-blocks the program uses
// in this block, as a contiguous wrap-around range (start, count).
func (s *Stream) allowedSubs(block uint64) (int, int) {
	count := int(s.w.BlockUtil*hybrid.SubBlocks + 0.5)
	if count < 1 {
		count = 1
	}
	if count > hybrid.SubBlocks {
		count = hybrid.SubBlocks
	}
	start := int(hash(block) % hybrid.SubBlocks)
	return start, count
}

func hash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// visitBlock builds a block visit: n accesses spread across the block's
// live (allowed) sub-blocks, the way real code touches several fields and
// regions of a page in a short window. This intra-visit spatial locality is
// what footprint accumulation (Unison's history, Baryon's stage phase)
// exploits; without it no sub-blocked design can learn useful footprints.
func (s *Stream) visitBlock(block uint64, n int) uint64 {
	start, count := s.allowedSubs(block)
	var first uint64
	emitted, subIdx := 0, 0
	for emitted < n {
		sub := (start + subIdx%count) % hybrid.SubBlocks
		subIdx++
		// Touch a consecutive run of lines within the sub-block: programs
		// use most of a 256 B region once they touch it (the premise behind
		// the paper's sub-block size choice).
		runLen := 1 + s.rng.Intn(hybrid.LinesPerSub)
		l0 := s.rng.Intn(hybrid.LinesPerSub - runLen + 1)
		for k := 0; k < runLen && emitted < n; k++ {
			addr := block*hybrid.BlockSize + uint64(sub)*hybrid.SubBlockSize + uint64(l0+k)*hybrid.CachelineSize
			if emitted == 0 {
				first = addr
			} else {
				s.pending = append(s.pending, addr)
			}
			emitted++
		}
	}
	return first
}

// Next returns the stream's next access. Streams are unbounded; the runner
// decides the access budget.
func (s *Stream) Next() Access {
	gap := s.w.GapMean/2 + uint32(s.rng.Intn(int(s.w.GapMean)+1))
	if s.pendHead < len(s.pending) {
		addr := s.pending[s.pendHead]
		s.pendHead++
		write := s.burstWr && s.rng.Bool(0.7)
		return Access{Addr: addr, Write: write, Gap: gap}
	}
	// Queue drained: recycle its capacity for this visit's appends instead
	// of letting the popped prefix strand it.
	s.pending = s.pending[:0]
	s.pendHead = 0

	var addr uint64
	write := s.rng.Bool(s.w.WriteRatio)
	visit := 1
	if s.w.BurstLines > 1 {
		visit = 1 + s.rng.Intn(s.w.BurstLines)
	}
	switch s.w.Pattern {
	case PatternStream:
		addr = s.nextStreamLine()
		// Streams advance linearly; emit the next lines as the visit.
		for i := 1; i < visit; i++ {
			s.pending = append(s.pending, s.nextStreamLine())
		}
	case PatternRandom:
		addr = s.visitBlock(s.base+s.rng.Uint64n(s.blocks), visit)
	case PatternZipf:
		addr = s.zipfVisit(visit)
	case PatternGraph:
		if s.scanLeft == 0 {
			s.scanMode = !s.scanMode
			if s.scanMode {
				s.scanLeft = 8 // vertex-array scan burst
			} else {
				s.scanLeft = 56 // irregular edge-target accesses dominate
			}
		}
		s.scanLeft--
		if s.scanMode {
			addr = s.nextStreamLine()
		} else {
			addr = s.zipfVisit(visit)
		}
	case PatternKV:
		rec := s.zipf.Next()
		base := (s.base*hybrid.BlockSize + rec*1024) &^ (hybrid.CachelineSize - 1)
		// Whole-record operations: reads scan part of the record, writes
		// rewrite most of it.
		n := 4 + s.rng.Intn(8)
		if write {
			n = 12
		}
		for i := 1; i < n; i++ {
			s.pending = append(s.pending, base+uint64(i)*hybrid.CachelineSize)
		}
		addr = base
	}
	s.burstWr = write
	return Access{Addr: addr, Write: write, Gap: gap}
}

// nextStreamLine advances the sequential sweep, skipping sub-blocks outside
// the block's allowed set and wrapping at the region end.
func (s *Stream) nextStreamLine() uint64 {
	for {
		lineIdx := s.seqPtr
		s.seqPtr++
		totalLines := s.blocks * hybrid.BlockSize / hybrid.CachelineSize
		if s.seqPtr >= totalLines {
			s.seqPtr = 0
		}
		addr := (s.base*hybrid.BlockSize + lineIdx*hybrid.CachelineSize)
		block := addr / hybrid.BlockSize
		sub := int(addr % hybrid.BlockSize / hybrid.SubBlockSize)
		start, count := s.allowedSubs(block)
		if inRange(sub, start, count) {
			return addr
		}
	}
}

func inRange(sub, start, count int) bool {
	for i := 0; i < count; i++ {
		if (start+i)%hybrid.SubBlocks == sub {
			return true
		}
	}
	return false
}
