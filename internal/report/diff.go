package report

import (
	"fmt"
	"math"
	"sort"
)

// Tolerance bounds how far two bundles may drift before a difference counts
// as a finding. Zero tolerances demand exact equality — the right setting
// for same-commit determinism checks; regression gates across commits
// usually allow a small relative slack.
type Tolerance struct {
	// CounterRel is the allowed relative change of integer metrics
	// (counters, cycle/instruction totals, histogram counts).
	CounterRel float64
	// PctRel is the allowed relative change of float metrics (rates,
	// energy, histogram percentiles and means).
	PctRel float64
}

// Finding is one out-of-tolerance difference between two bundles.
type Finding struct {
	// Kind classifies the metric: "headline", "counter", "float", "hist" or
	// "spec" (identity mismatch, e.g. comparing different designs).
	Kind string `json:"kind"`
	// Key names the metric ("counter hierarchy.llcMisses", "hist
	// hierarchy.lat.demand p99", ...).
	Key string `json:"key"`
	// A and B are the two sides' values (A is the baseline).
	A float64 `json:"a"`
	B float64 `json:"b"`
	// Rel is the relative change |B-A| / max(|A|,|B|), 1 when one side is
	// zero and the other is not.
	Rel float64 `json:"rel"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%-8s %-40s %g -> %g (%+.2f%%)", f.Kind, f.Key, f.A, f.B, 100*relSigned(f.A, f.B))
}

// Report is the outcome of diffing two bundles.
type Report struct {
	PairID    string    `json:"pairId"`
	HashA     string    `json:"hashA,omitempty"`
	HashB     string    `json:"hashB,omitempty"`
	SpecMatch bool      `json:"specMatch"`
	Findings  []Finding `json:"findings,omitempty"`
}

// Clean reports whether the diff found no out-of-tolerance differences.
func (r Report) Clean() bool { return len(r.Findings) == 0 }

// rel returns the symmetric relative difference of a and b: 0 when equal,
// |b-a| / max(|a|,|b|) otherwise (so a zero-vs-nonzero change is 1).
func rel(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(b-a) / den
}

// relSigned is rel with the sign of the change (for display only).
func relSigned(a, b float64) float64 {
	r := rel(a, b)
	if b < a {
		return -r
	}
	return r
}

// Diff compares two bundles and reports every metric whose relative change
// exceeds the tolerance. Metrics present on only one side diff against zero.
// A spec-hash mismatch is recorded (SpecMatch=false) but is not itself a
// finding: diffing deliberately different runs — two commits, two designs —
// is the tool's main use.
func Diff(a, b Bundle, tol Tolerance) Report {
	r := Report{
		PairID:    a.PairID(),
		HashA:     a.SpecHash,
		HashB:     b.SpecHash,
		SpecMatch: a.SpecHash == b.SpecHash,
	}
	add := func(kind, key string, va, vb, allowed float64) {
		if d := rel(va, vb); d > allowed {
			r.Findings = append(r.Findings, Finding{Kind: kind, Key: key, A: va, B: vb, Rel: d})
		}
	}

	add("headline", "cycles", float64(a.Cycles), float64(b.Cycles), tol.CounterRel)
	add("headline", "instructions", float64(a.Instructions), float64(b.Instructions), tol.CounterRel)
	add("headline", "ipc", a.IPC, b.IPC, tol.PctRel)
	add("headline", "fastServeRate", a.FastServeRate, b.FastServeRate, tol.PctRel)
	add("headline", "bloatFactor", a.BloatFactor, b.BloatFactor, tol.PctRel)
	add("headline", "energyPJ", a.EnergyPJ, b.EnergyPJ, tol.PctRel)
	add("headline", "fastBytes", float64(a.FastBytes), float64(b.FastBytes), tol.CounterRel)
	add("headline", "slowBytes", float64(a.SlowBytes), float64(b.SlowBytes), tol.CounterRel)
	add("headline", "cxlLinkBytes", float64(a.CXLLinkBytes), float64(b.CXLLinkBytes), tol.CounterRel)
	add("headline", "cxlInternalBytes", float64(a.CXLInternalBytes), float64(b.CXLInternalBytes), tol.CounterRel)

	tiersA, tiersB := tierMap(a.Tiers), tierMap(b.Tiers)
	for _, name := range unionKeys(tiersA, tiersB) {
		add("headline", "tier "+name, float64(tiersA[name]), float64(tiersB[name]), tol.CounterRel)
	}

	for _, name := range unionKeys(a.Counters, b.Counters) {
		add("counter", name, float64(a.Counters[name]), float64(b.Counters[name]), tol.CounterRel)
	}
	for _, name := range unionKeys(a.Floats, b.Floats) {
		add("float", name, a.Floats[name], b.Floats[name], tol.PctRel)
	}
	for _, name := range unionKeys(a.Hists, b.Hists) {
		ha, hb := a.Hists[name], b.Hists[name]
		add("hist", name+" count", float64(ha.Count), float64(hb.Count), tol.CounterRel)
		add("hist", name+" mean", ha.Mean, hb.Mean, tol.PctRel)
		add("hist", name+" p50", ha.P50, hb.P50, tol.PctRel)
		add("hist", name+" p90", ha.P90, hb.P90, tol.PctRel)
		add("hist", name+" p99", ha.P99, hb.P99, tol.PctRel)
		add("hist", name+" p99.9", ha.P999, hb.P999, tol.PctRel)
		add("hist", name+" max", float64(ha.Max), float64(hb.Max), tol.PctRel)
	}
	return r
}

func tierMap(ts []TierTraffic) map[string]uint64 {
	if len(ts) == 0 {
		return nil
	}
	m := make(map[string]uint64, len(ts))
	for _, t := range ts {
		m[t.Name] = t.Bytes
	}
	return m
}

// unionKeys returns the sorted union of both maps' keys, so findings come
// out in a deterministic order regardless of which side a metric lives on.
func unionKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]struct{}, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for k := range a {
		seen[k] = struct{}{}
		out = append(out, k)
	}
	for k := range b {
		if _, ok := seen[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
