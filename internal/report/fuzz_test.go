package report

import (
	"testing"
)

// FuzzBundleDecode throws arbitrary bytes at the strict bundle decoder — the
// single entry point for untrusted bundle bytes (files on disk, store
// entries, HTTP result bodies). Decode must never panic, and any bytes it
// accepts must re-encode canonically and decode again to the same identity.
func FuzzBundleDecode(f *testing.F) {
	valid := func(seed uint64) []byte {
		key := SpecKey{Workload: "synthetic", Seed: seed}
		h, err := key.Hash()
		if err != nil {
			f.Fatal(err)
		}
		b := Bundle{
			Schema:   SchemaVersion,
			SpecHash: h,
			Spec:     key,
			Counters: map[string]uint64{"x": seed},
			Floats:   map[string]float64{"y": 0.5},
		}
		data, err := b.MarshalCanonical()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	good := valid(1)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":2}`))
	f.Add([]byte(`{"schema":1,"bogusField":true}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Decode(data)
		if err != nil {
			return
		}
		out, err := b.MarshalCanonical()
		if err != nil {
			t.Fatalf("accepted bundle fails to re-marshal: %v", err)
		}
		b2, err := Decode(out)
		if err != nil {
			t.Fatalf("canonical re-encode fails to decode: %v", err)
		}
		if b2.SpecHash != b.SpecHash || b2.Schema != b.Schema {
			t.Fatal("bundle identity changed across a canonical round-trip")
		}
	})
}
