package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"baryon/internal/config"
	"baryon/internal/experiment"
	"baryon/internal/trace"
)

func quickConfig() config.Config {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 1200
	cfg.WarmupAccessesPerCore = 300
	cfg.Seed = 1
	return cfg
}

func buildBundle(t *testing.T, cfg config.Config, workload, design string) Bundle {
	t.Helper()
	w, ok := trace.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %q", workload)
	}
	spec, ok := experiment.Lookup(design)
	if !ok {
		t.Fatalf("unknown design %q", design)
	}
	res := experiment.RunOne(cfg, w, design)
	key, err := Key(spec, cfg, workload)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(key, res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBundleDeterminism pins the acceptance contract: two identical runs
// produce byte-identical bundle files with equal spec hashes.
func TestBundleDeterminism(t *testing.T) {
	cfg := quickConfig()
	a := buildBundle(t, cfg, "505.mcf_r", "Baryon")
	b := buildBundle(t, cfg, "505.mcf_r", "Baryon")
	if a.SpecHash != b.SpecHash {
		t.Fatalf("spec hashes differ: %s vs %s", a.SpecHash, b.SpecHash)
	}
	if !strings.HasPrefix(a.SpecHash, "sha256:") || len(a.SpecHash) != len("sha256:")+64 {
		t.Fatalf("malformed spec hash %q", a.SpecHash)
	}
	ba, err := a.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatalf("identical runs produced different bundle bytes (%d vs %d bytes)", len(ba), len(bb))
	}
	// And a different seed changes the hash (the key actually covers it).
	cfg2 := cfg
	cfg2.Seed = 2
	c := buildBundle(t, cfg2, "505.mcf_r", "Baryon")
	if c.SpecHash == a.SpecHash {
		t.Fatal("seed change did not change the spec hash")
	}
}

// TestBundleMeasurementWindow checks the bundle's counter map is the
// measurement-window delta: with warmup on, the summed device traffic
// counters equal the headline Fast/SlowBytes (which exclude warmup).
func TestBundleMeasurementWindow(t *testing.T) {
	b := buildBundle(t, quickConfig(), "505.mcf_r", "Baryon")
	var devBytes uint64
	for name, v := range b.Counters {
		if strings.HasSuffix(name, ".bytesRead") || strings.HasSuffix(name, ".bytesWritten") {
			if dev := strings.SplitN(name, ".", 2)[0]; !strings.Contains(dev, ".") {
				devBytes += v
			}
		}
	}
	if want := b.FastBytes + b.SlowBytes; devBytes != want {
		t.Fatalf("bundle device counters sum to %d, headline traffic is %d — counters are not the measurement window", devBytes, want)
	}
	if b.Cycles == 0 || len(b.Counters) == 0 || len(b.Hists) == 0 {
		t.Fatalf("bundle incomplete: cycles=%d counters=%d hists=%d", b.Cycles, len(b.Counters), len(b.Hists))
	}
	if b.Spec.Run.WarmupAccessesPerCore == nil || *b.Spec.Run.WarmupAccessesPerCore != 300 {
		t.Fatalf("run-shape key missing warmup: %+v", b.Spec.Run)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	b := buildBundle(t, quickConfig(), "505.mcf_r", "Simple")
	dir := t.TempDir()
	path := filepath.Join(dir, FileName(b.Spec))
	if err := WriteFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecHash != b.SpecHash || got.Cycles != b.Cycles || len(got.Counters) != len(b.Counters) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Re-marshalling a loaded bundle reproduces the original bytes.
	orig, _ := b.MarshalCanonical()
	reread, _ := got.MarshalCanonical()
	if !bytes.Equal(orig, reread) {
		t.Fatal("round-tripped bundle marshals differently")
	}

	// Corrupt schema and unknown fields fail loudly.
	data, _ := os.ReadFile(path)
	bad := bytes.Replace(data, []byte(`"schema": 1`), []byte(`"schema": 99`), 1)
	badPath := filepath.Join(dir, "bad.bundle.json")
	os.WriteFile(badPath, bad, 0o644)
	if _, err := ReadFile(badPath); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("foreign schema accepted: %v", err)
	}
	unk := bytes.Replace(data, []byte(`"schema": 1`), []byte(`"schema": 1, "wallClock": "2026-01-01"`), 1)
	os.WriteFile(badPath, unk, 0o644)
	if _, err := ReadFile(badPath); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestDiffSelfClean(t *testing.T) {
	b := buildBundle(t, quickConfig(), "505.mcf_r", "Baryon")
	r := Diff(b, b, Tolerance{})
	if !r.Clean() {
		t.Fatalf("self-diff not clean: %+v", r.Findings)
	}
	if !r.SpecMatch {
		t.Fatal("self-diff reports spec mismatch")
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	a := buildBundle(t, quickConfig(), "505.mcf_r", "Baryon")
	b := a
	b.Counters = make(map[string]uint64, len(a.Counters))
	for k, v := range a.Counters {
		b.Counters[k] = v
	}
	b.Counters["hierarchy.llcMisses"] += 100
	r := Diff(a, b, Tolerance{})
	if r.Clean() {
		t.Fatal("injected counter regression not detected")
	}
	found := false
	for _, f := range r.Findings {
		if f.Kind == "counter" && f.Key == "hierarchy.llcMisses" {
			found = true
		}
	}
	if !found {
		t.Fatalf("regression not attributed to the tampered counter: %+v", r.Findings)
	}

	// The same change passes under a generous tolerance.
	if r := Diff(a, b, Tolerance{CounterRel: 0.5, PctRel: 0.5}); !r.Clean() {
		t.Fatalf("tolerance not applied: %+v", r.Findings)
	}
}

func TestDiffMissingMetric(t *testing.T) {
	a := buildBundle(t, quickConfig(), "505.mcf_r", "Simple")
	b := a
	b.Counters = make(map[string]uint64, len(a.Counters))
	for k, v := range a.Counters {
		b.Counters[k] = v
	}
	delete(b.Counters, "hierarchy.llcMisses")
	r := Diff(a, b, Tolerance{})
	if r.Clean() {
		t.Fatal("missing counter not detected (should diff against zero)")
	}
}

// TestObservePairs runs a small batch through the experiment pool with the
// bundle observer installed and checks every successful pair wrote its
// bundle, re-readable and pairable.
func TestObservePairs(t *testing.T) {
	dir := t.TempDir()
	var errBuf bytes.Buffer
	h, err := ObservePairs(dir, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Remove()

	cfg := quickConfig()
	w, _ := trace.ByName("505.mcf_r")
	pairs := []experiment.Pair{
		{Cfg: cfg, Workload: w, Design: "Simple"},
		{Cfg: cfg, Workload: w, Design: "Baryon"},
	}
	for _, pr := range experiment.RunPairsCtx(t.Context(), pairs) {
		if pr.Err != nil {
			t.Fatal(pr.Err)
		}
	}
	if errBuf.Len() > 0 {
		t.Fatalf("observer reported errors:\n%s", errBuf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expected 2 bundles, found %d", len(entries))
	}
	for _, e := range entries {
		b, err := ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if b.Spec.Workload != "505.mcf_r" {
			t.Fatalf("bundle %s has workload %q", e.Name(), b.Spec.Workload)
		}
	}
}
