package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"baryon/internal/experiment"
)

// ObservePairs installs an experiment pair observer (see
// experiment.AddPairObserver) that writes one bundle per successful run into
// dir, named by FileName. Distinct pairs write distinct files, so the
// observer is safe under the experiment worker pool without locking; bundle
// build or write failures are reported to errw and do not affect the runs
// themselves. Callers uninstall by calling Remove on the returned handle
// when the batch is done; other observers installed concurrently (e.g. by a
// job server sharing the process) are unaffected.
func ObservePairs(dir string, errw io.Writer) (*experiment.ObserverHandle, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	h := experiment.AddPairObserver(func(p experiment.Pair, pr experiment.PairResult) {
		spec, ok := experiment.Lookup(p.Design)
		if !ok {
			fmt.Fprintf(errw, "report: design %q not registered, no bundle written\n", p.Design)
			return
		}
		key, err := Key(spec, p.Cfg, p.Workload.Name)
		if err != nil {
			fmt.Fprintf(errw, "report: %v\n", err)
			return
		}
		b, err := New(key, pr.Result)
		if err != nil {
			fmt.Fprintf(errw, "report: %v\n", err)
			return
		}
		if err := WriteFile(filepath.Join(dir, FileName(key)), b); err != nil {
			fmt.Fprintf(errw, "report: %v\n", err)
		}
	})
	return h, nil
}
