package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"baryon/internal/experiment"
)

// ObservePairs installs an experiment pair observer (see
// experiment.SetPairObserver) that writes one bundle per successful run into
// dir, named by FileName. Distinct pairs write distinct files, so the
// observer is safe under the experiment worker pool without locking; bundle
// build or write failures are reported to errw and do not affect the runs
// themselves. Callers uninstall with experiment.SetPairObserver(nil) when
// the batch is done.
func ObservePairs(dir string, errw io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	experiment.SetPairObserver(func(p experiment.Pair, pr experiment.PairResult) {
		spec, ok := experiment.Lookup(p.Design)
		if !ok {
			fmt.Fprintf(errw, "report: design %q not registered, no bundle written\n", p.Design)
			return
		}
		key, err := Key(spec, p.Cfg, p.Workload.Name)
		if err != nil {
			fmt.Fprintf(errw, "report: %v\n", err)
			return
		}
		b, err := New(key, pr.Result)
		if err != nil {
			fmt.Fprintf(errw, "report: %v\n", err)
			return
		}
		if err := WriteFile(filepath.Join(dir, FileName(key)), b); err != nil {
			fmt.Fprintf(errw, "report: %v\n", err)
		}
	})
	return nil
}
