// Package report builds, serialises and compares deterministic run-report
// bundles: one canonical JSON artifact per (design, workload, seed,
// overrides) simulation. A bundle carries the run's identity as a canonical
// spec hash plus the full measurement-window metric state — every counter,
// float accumulator and histogram summary, the per-tier traffic breakdown
// and the CXL link/internal split — and nothing else.
//
// Determinism contract: a bundle contains no wall-clock, hostname, process
// or ordering-dependent state of any kind. Field order is fixed by the
// struct declarations, map keys are sorted by encoding/json, and floats use
// Go's shortest round-trip encoding, so two runs of the same spec produce
// byte-identical bundle files. Anything volatile (timing, environment)
// belongs next to the bundle — a log line, a CI artifact name — never in
// it. The spec hash is therefore a valid content-address for a run cache:
// same hash, same bundle bytes.
package report

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"baryon/internal/config"
	"baryon/internal/cpu"
	"baryon/internal/experiment"
	"baryon/internal/sim"
)

// SchemaVersion is the bundle format version; bump on incompatible change.
const SchemaVersion = 1

// SpecKey is the canonical identity of one run: the full design spec
// (controller kind + config overrides + policy), the run-level configuration
// delta beyond the design, the workload and the seed. Hashing its canonical
// JSON yields the content-address two runs share iff they simulate the same
// thing.
type SpecKey struct {
	Design   experiment.DesignSpec `json:"design"`
	Run      config.Overrides      `json:"run"`
	Workload string                `json:"workload"`
	Seed     uint64                `json:"seed"`
}

// Key builds the SpecKey for one run. The Run section records the effective
// run-shape values — mode, access budget, warmup and epoch windows — after
// the design's own overrides are applied to cfg, so two invocations that
// reach the same effective configuration through different flag spellings
// get the same key.
func Key(spec experiment.DesignSpec, cfg config.Config, workload string) (SpecKey, error) {
	eff := cfg
	if err := spec.Overrides.Apply(&eff); err != nil {
		return SpecKey{}, fmt.Errorf("report: design %q overrides: %w", spec.Name, err)
	}
	return SpecKey{
		Design: spec,
		Run: config.Overrides{
			Mode:                  config.Ptr(eff.Mode.String()),
			AccessesPerCore:       config.Ptr(eff.AccessesPerCore),
			WarmupAccessesPerCore: config.Ptr(eff.WarmupAccessesPerCore),
			EpochAccesses:         config.Ptr(eff.EpochAccesses),
		},
		Workload: workload,
		Seed:     eff.Seed,
	}, nil
}

// CanonicalJSON returns the canonical byte encoding of the key: compact
// JSON with declaration-ordered fields and sorted map keys — the exact
// bytes the spec hash covers.
func (k SpecKey) CanonicalJSON() ([]byte, error) { return json.Marshal(k) }

// Hash returns the canonical spec hash, "sha256:" + hex of the SHA-256 of
// CanonicalJSON. This is the key a content-addressed run cache indexes on.
func (k SpecKey) Hash() (string, error) {
	data, err := k.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// TierTraffic is one tier's traffic total in a bundle.
type TierTraffic struct {
	Name  string `json:"name"`
	Bytes uint64 `json:"bytes"`
}

// EpochsRef references a run's epoch time-series without inlining it: the
// bundle stays small and byte-stable while pointing at the (separately
// written) series artifact.
type EpochsRef struct {
	Count int `json:"count"`
	// Series is the relative path of the epoch CSV/JSONL artifact, when the
	// caller wrote one alongside the bundle.
	Series string `json:"series,omitempty"`
}

// Bundle is the deterministic run-report artifact. All metric sections are
// measurement-window deltas (warmup excluded), matching the Result headline
// accounting.
type Bundle struct {
	Schema   int     `json:"schema"`
	SpecHash string  `json:"specHash"`
	Spec     SpecKey `json:"spec"`

	Cycles        uint64  `json:"cycles"`
	Instructions  uint64  `json:"instructions"`
	IPC           float64 `json:"ipc"`
	FastServeRate float64 `json:"fastServeRate"`
	BloatFactor   float64 `json:"bloatFactor"`
	EnergyPJ      float64 `json:"energyPJ"`
	FastBytes     uint64  `json:"fastBytes"`
	SlowBytes     uint64  `json:"slowBytes"`

	// Tiers is the per-tier traffic breakdown of N-tier runs (empty on the
	// classic two-tier pair); the CXL fields split expander traffic into
	// host-link and expander-internal bytes.
	Tiers            []TierTraffic `json:"tiers,omitempty"`
	CXLLinkBytes     uint64        `json:"cxlLinkBytes,omitempty"`
	CXLInternalBytes uint64        `json:"cxlInternalBytes,omitempty"`

	// Counters/Floats are the full measurement-window registry deltas;
	// Hists digests every non-empty histogram into the standard percentile
	// summary.
	Counters map[string]uint64          `json:"counters"`
	Floats   map[string]float64         `json:"floats"`
	Hists    map[string]sim.HistSummary `json:"hists,omitempty"`

	Epochs *EpochsRef `json:"epochs,omitempty"`
}

// New builds the bundle for one completed run: the key's hash plus the
// measurement-window delta of every registered metric.
func New(key SpecKey, res cpu.Result) (Bundle, error) {
	if res.Stats == nil {
		return Bundle{}, fmt.Errorf("report: result for %s/%s has no stats registry", key.Design.Name, key.Workload)
	}
	hash, err := key.Hash()
	if err != nil {
		return Bundle{}, err
	}
	d := res.Stats.Delta(res.MeasureStart)
	b := Bundle{
		Schema:        SchemaVersion,
		SpecHash:      hash,
		Spec:          key,
		Cycles:        res.Cycles,
		Instructions:  res.Instructions,
		IPC:           res.IPC(),
		FastServeRate: res.FastServeRate,
		BloatFactor:   res.BloatFactor,
		EnergyPJ:      res.EnergyPJ,
		FastBytes:     res.FastBytes,
		SlowBytes:     res.SlowBytes,

		CXLLinkBytes:     res.Measured.CXLLinkBytes,
		CXLInternalBytes: res.Measured.CXLInternalBytes,

		Counters: make(map[string]uint64),
		Floats:   make(map[string]float64),
		Hists:    make(map[string]sim.HistSummary),
	}
	for _, name := range d.CounterNames() {
		b.Counters[name] = d.Get(name)
	}
	for _, name := range d.FloatNames() {
		b.Floats[name] = d.GetFloat(name)
	}
	for _, name := range d.HistNames() {
		h, _ := d.Hist(name)
		if h.Count() == 0 {
			continue
		}
		b.Hists[name] = h.Summary()
	}
	for i, name := range res.TierNames {
		b.Tiers = append(b.Tiers, TierTraffic{Name: name, Bytes: res.TierBytes[i]})
	}
	if len(res.Epochs) > 0 {
		b.Epochs = &EpochsRef{Count: len(res.Epochs)}
	}
	return b, nil
}

// MarshalCanonical renders the bundle as its canonical file bytes: indented
// JSON with a trailing newline. Two bundles of identical content marshal to
// identical bytes.
func (b Bundle) MarshalCanonical() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the bundle's canonical bytes to path.
func WriteFile(path string, b Bundle) error {
	data, err := b.MarshalCanonical()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Decode parses bundle bytes, rejecting unknown fields and foreign schema
// versions so corrupt or future-format data fails loudly instead of
// diffing as a wall of spurious findings. It is the single strict entry
// point for untrusted bundle bytes (files, cache entries, fuzz inputs).
func Decode(data []byte) (Bundle, error) {
	var b Bundle
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Bundle{}, err
	}
	if b.Schema != SchemaVersion {
		return Bundle{}, fmt.Errorf("bundle schema %d, this build reads %d", b.Schema, SchemaVersion)
	}
	return b, nil
}

// ReadFile loads a bundle via Decode's strict parsing.
func ReadFile(path string) (Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Bundle{}, err
	}
	b, err := Decode(data)
	if err != nil {
		return Bundle{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// PairID is the human identity bundles are matched by when diffing
// directories: design, workload, seed (the spec hash also covers the run
// shape, which a cross-commit comparison deliberately ignores).
func (b Bundle) PairID() string {
	return fmt.Sprintf("%s/%s/seed%d", b.Spec.Design.Name, b.Spec.Workload, b.Spec.Seed)
}

// FileName returns the conventional bundle file name for the key:
// "<design>__<workload>__seed<seed>.bundle.json" with path-hostile
// characters sanitised.
func FileName(key SpecKey) string {
	return fmt.Sprintf("%s__%s__seed%d.bundle.json",
		sanitize(key.Design.Name), sanitize(key.Workload), key.Seed)
}

// sanitize rewrites a name for file-system use: anything outside
// [A-Za-z0-9._-] becomes '-'.
func sanitize(s string) string {
	var out strings.Builder
	out.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out.WriteByte(c)
		default:
			out.WriteByte('-')
		}
	}
	return out.String()
}
