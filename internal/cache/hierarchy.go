package cache

import (
	"fmt"

	"baryon/internal/hybrid"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// HierarchyConfig sizes the cache levels. Sets/ways follow Table I; the LLC
// is scaled with the memory system (see internal/config).
type HierarchyConfig struct {
	Cores int
	L1    Config // per core
	L2    Config // per core
	LLC   Config // shared, inclusive
	// InstallPrefetched controls whether decompression by-products are
	// installed in the LLC (memory-to-LLC prefetching, Section III-E).
	InstallPrefetched bool
}

// DefaultHierarchy returns the Table I hierarchy scaled by llcKB (Table I
// uses 16 MB for a 4 GB fast memory; scaled runs shrink it proportionally).
func DefaultHierarchy(cores, llcKB int) HierarchyConfig {
	llcLines := llcKB * 1024 / hybrid.CachelineSize
	return HierarchyConfig{
		Cores: cores,
		// L1D: 8-way 64 kB, 4-cycle.
		L1: Config{Name: "L1", Sets: 128, Ways: 8, Latency: 4},
		// L2: 8-way 1 MB, 9-cycle (scaled to 64 kB per core to keep the
		// L2:LLC ratio at scaled memory sizes).
		L2: Config{Name: "L2", Sets: 128, Ways: 8, Latency: 9},
		// LLC: 16-way shared, 38-cycle.
		LLC:               Config{Name: "LLC", Sets: llcLines / 16, Ways: 16, Latency: 38},
		InstallPrefetched: true,
	}
}

// Hierarchy drives per-core L1/L2 and a shared LLC in front of one memory
// controller. LineData supplies the current functional content of a line for
// dirty writebacks (owned by the run harness).
type Hierarchy struct {
	cfg  HierarchyConfig
	l1   []*Cache
	l2   []*Cache
	llc  *Cache
	ctrl hybrid.Controller

	// LineData returns the 64 B functional content of a line for writebacks.
	LineData func(addr uint64) []byte

	llcMisses, llcWritebacks, prefetchInstalls *sim.Counter
	demandLines, servedFast, servedSlow        *sim.Counter

	// Per-access-class completion latency histograms and the whole-plane
	// demand latency, observed on every Access.
	latL1, latL2, latLLC        *sim.Histogram
	latMemFast, latMemSlow, lat *sim.Histogram

	tracer *obs.Tracer
}

// NewHierarchy builds the cache stack in front of ctrl. Every level —
// including each core's private L1/L2 — registers its counters on the run
// registry behind stats: the per-core levels live under "l1.coreK." and
// "l2.coreK." scopes, so their hit/miss counts survive the run and
// participate in snapshots instead of vanishing into private collections.
func NewHierarchy(cfg HierarchyConfig, ctrl hybrid.Controller, stats *sim.Stats) *Hierarchy {
	h := &Hierarchy{cfg: cfg, ctrl: ctrl}
	h.l1 = make([]*Cache, cfg.Cores)
	h.l2 = make([]*Cache, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		l1cfg, l2cfg := cfg.L1, cfg.L2
		l1cfg.Name, l2cfg.Name = "", ""
		h.l1[i] = New(l1cfg, stats.Scope(fmt.Sprintf("l1.core%d", i)))
		h.l2[i] = New(l2cfg, stats.Scope(fmt.Sprintf("l2.core%d", i)))
	}
	h.llc = New(cfg.LLC, stats)
	s := stats.Scope("hierarchy")
	h.llcMisses = s.Counter("llcMisses")
	h.llcWritebacks = s.Counter("llcWritebacks")
	h.prefetchInstalls = s.Counter("prefetchInstalls")
	h.demandLines = s.Counter("demandLines")
	h.servedFast = s.Counter("servedFast")
	h.servedSlow = s.Counter("servedSlow")
	h.latL1 = s.Histogram("lat.l1Hit")
	h.latL2 = s.Histogram("lat.l2Hit")
	h.latLLC = s.Histogram("lat.llcHit")
	h.latMemFast = s.Histogram("lat.memFast")
	h.latMemSlow = s.Histogram("lat.memSlow")
	h.lat = s.Histogram("lat.demand")
	return h
}

// SetTracer attaches a request-lifecycle tracer to the hierarchy and, when
// the controller supports it, propagates it downstream. Nil detaches.
func (h *Hierarchy) SetTracer(t *obs.Tracer) {
	h.tracer = t
	if sink, ok := h.ctrl.(obs.TracerSink); ok {
		sink.SetTracer(t)
	}
}

// Counters exposes the hierarchy's typed counter handles so the run loop
// reads its own metrics (and window deltas) without string-keyed lookups.
type Counters struct {
	LLCMisses, LLCWritebacks      *sim.Counter
	PrefetchInstalls, DemandLines *sim.Counter
	ServedFast, ServedSlow        *sim.Counter
	// DemandLat is the whole-plane demand completion-latency histogram
	// ("hierarchy.lat.demand"), exposed so the run loop can take window
	// deltas of it next to the counters.
	DemandLat *sim.Histogram
}

// Counters returns the hierarchy's typed counter handles.
func (h *Hierarchy) Counters() Counters {
	return Counters{
		LLCMisses: h.llcMisses, LLCWritebacks: h.llcWritebacks,
		PrefetchInstalls: h.prefetchInstalls, DemandLines: h.demandLines,
		ServedFast: h.servedFast, ServedSlow: h.servedSlow,
		DemandLat: h.lat,
	}
}

// Level returns the per-core L1 or L2 cache (level 1 or 2) for tests and
// instrumentation.
func (h *Hierarchy) Level(level, core int) *Cache {
	if level == 1 {
		return h.l1[core]
	}
	return h.l2[core]
}

// LLC returns the shared last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// Controller returns the memory controller behind the hierarchy.
func (h *Hierarchy) Controller() hybrid.Controller { return h.ctrl }

// Access performs one 64 B load or store for core at cycle now and returns
// the completion cycle. Stores are write-allocate; the caller is responsible
// for updating the functional data plane.
func (h *Hierarchy) Access(core int, now uint64, addr uint64, write bool) uint64 {
	addr = hybrid.LineAddr(addr)
	h.demandLines.Inc()
	l1, l2 := h.l1[core], h.l2[core]

	if l1.Access(addr, write) {
		done := now + h.cfg.L1.Latency
		h.latL1.Observe(done - now)
		h.lat.Observe(done - now)
		if h.tracer != nil {
			h.tracer.Span("L1", "hit", now, done)
		}
		return done
	}
	lat := h.cfg.L1.Latency
	if h.tracer != nil {
		h.tracer.Span("L1", "miss", now, now+lat)
	}
	if l2.Access(addr, false) {
		h.fillL1(core, addr, write, now)
		done := now + lat + h.cfg.L2.Latency
		h.latL2.Observe(done - now)
		h.lat.Observe(done - now)
		if h.tracer != nil {
			h.tracer.Span("L2", "hit", now+lat, done)
		}
		return done
	}
	if h.tracer != nil {
		h.tracer.Span("L2", "miss", now+lat, now+lat+h.cfg.L2.Latency)
	}
	lat += h.cfg.L2.Latency
	if h.llc.Access(addr, false) {
		h.fillL2(core, addr, now)
		h.fillL1(core, addr, write, now)
		done := now + lat + h.cfg.LLC.Latency
		h.latLLC.Observe(done - now)
		h.lat.Observe(done - now)
		if h.tracer != nil {
			h.tracer.Span("LLC", "hit", now+lat, done)
		}
		return done
	}
	if h.tracer != nil {
		h.tracer.Span("LLC", "miss", now+lat, now+lat+h.cfg.LLC.Latency)
	}
	lat += h.cfg.LLC.Latency
	h.llcMisses.Inc()

	res := h.ctrl.Access(now+lat, addr, false, nil)
	if res.ServedByFast {
		h.servedFast.Inc()
		h.latMemFast.Observe(res.Done - now)
	} else {
		h.servedSlow.Inc()
		h.latMemSlow.Observe(res.Done - now)
	}
	h.lat.Observe(res.Done - now)
	if h.tracer != nil {
		cat := "slow"
		if res.ServedByFast {
			cat = "fast"
		}
		h.tracer.Span("ctrl", cat, now+lat, res.Done)
	}
	h.installLLC(addr, false, now)
	if h.cfg.InstallPrefetched {
		for _, p := range res.Prefetched {
			if p.Addr != addr && !h.llc.Probe(p.Addr) {
				h.installLLC(p.Addr, false, now)
				h.prefetchInstalls.Inc()
			}
		}
	}
	h.fillL2(core, addr, now)
	h.fillL1(core, addr, write, now)
	return res.Done
}

// fillL1 installs into a core's L1; a displaced dirty victim propagates its
// dirtiness to the L2 copy (present by inclusion).
func (h *Hierarchy) fillL1(core int, addr uint64, dirty bool, now uint64) {
	v := h.l1[core].Install(addr, dirty)
	if v.Valid && v.Dirty {
		if !h.l2[core].MarkDirty(v.Addr) {
			// Inclusion was broken by a concurrent back-invalidate path;
			// write the line back directly.
			h.writeback(v.Addr, now)
		}
	}
}

// fillL2 installs into a core's L2, back-invalidating the L1 copy of any
// displaced victim and propagating dirtiness to the LLC.
func (h *Hierarchy) fillL2(core int, addr uint64, now uint64) {
	v := h.l2[core].Install(addr, false)
	if !v.Valid {
		return
	}
	_, l1Dirty := h.l1[core].Invalidate(v.Addr)
	if v.Dirty || l1Dirty {
		if !h.llc.MarkDirty(v.Addr) {
			h.writeback(v.Addr, now)
		}
	}
}

// installLLC installs into the shared LLC, back-invalidating all upper-level
// copies of the victim and writing it back if dirty anywhere.
func (h *Hierarchy) installLLC(addr uint64, dirty bool, now uint64) {
	v := h.llc.Install(addr, dirty)
	if !v.Valid {
		return
	}
	anyDirty := v.Dirty
	for core := 0; core < h.cfg.Cores; core++ {
		if _, d := h.l1[core].Invalidate(v.Addr); d {
			anyDirty = true
		}
		if _, d := h.l2[core].Invalidate(v.Addr); d {
			anyDirty = true
		}
	}
	if anyDirty {
		h.writeback(v.Addr, now)
	}
}

func (h *Hierarchy) writeback(addr uint64, now uint64) {
	h.llcWritebacks.Inc()
	var data []byte
	if h.LineData != nil {
		data = h.LineData(addr)
	}
	h.ctrl.Access(now, addr, true, data)
}

// Flush writes every dirty line in the hierarchy back to the memory
// controller and invalidates all levels, leaving the controller's data plane
// equal to the functional image. Used by integrity tests and at end of runs.
func (h *Hierarchy) Flush(now uint64) {
	seen := make(map[uint64]bool)
	for core := 0; core < h.cfg.Cores; core++ {
		for _, a := range h.l1[core].DirtyLines() {
			seen[a] = true
		}
		for _, a := range h.l2[core].DirtyLines() {
			seen[a] = true
		}
	}
	for _, a := range h.llc.DirtyLines() {
		seen[a] = true
	}
	for a := range seen {
		h.writeback(a, now)
	}
	for core := 0; core < h.cfg.Cores; core++ {
		for _, a := range h.l1[core].Lines() {
			h.l1[core].Invalidate(a)
		}
		for _, a := range h.l2[core].Lines() {
			h.l2[core].Invalidate(a)
		}
	}
	for _, a := range h.llc.Lines() {
		h.llc.Invalidate(a)
	}
}
