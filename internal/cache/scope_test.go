package cache

import "testing"

// TestHierarchyRegistersPerCoreLevels pins the fix for the dropped per-core
// stats: every core's L1/L2 must register its counters on the run registry
// under "l1.coreK."/"l2.coreK." scopes, visible from the root view.
func TestHierarchyRegistersPerCoreLevels(t *testing.T) {
	_, _, stats := newTestHierarchy(t)
	names := map[string]bool{}
	for _, n := range stats.Names() {
		names[n] = true
	}
	for _, want := range []string{
		"l1.core0.hits", "l1.core0.misses",
		"l1.core1.hits", "l1.core1.misses",
		"l2.core0.hits", "l2.core0.misses",
		"l2.core1.hits", "l2.core1.misses",
		"LLC.hits", "LLC.misses",
	} {
		if !names[want] {
			t.Errorf("root Stats.Names() missing %q", want)
		}
	}
}

// TestHierarchyPerCoreCountersCount checks the scoped counters actually
// accumulate per-core traffic, and match the typed accessors.
func TestHierarchyPerCoreCountersCount(t *testing.T) {
	h, _, stats := newTestHierarchy(t)
	h.Access(0, 0, 0x1000, false)   // core 0: L1 miss, fills all levels
	h.Access(0, 200, 0x1000, false) // core 0: L1 hit
	h.Access(1, 400, 0x1000, false) // core 1: L1 miss, LLC hit

	if got := stats.Get("l1.core0.hits"); got != 1 {
		t.Errorf("l1.core0.hits = %d, want 1", got)
	}
	if got := stats.Get("l1.core0.misses"); got != 1 {
		t.Errorf("l1.core0.misses = %d, want 1", got)
	}
	if got := stats.Get("l1.core1.misses"); got != 1 {
		t.Errorf("l1.core1.misses = %d, want 1", got)
	}
	if got := stats.Get("l1.core1.hits"); got != 0 {
		t.Errorf("l1.core1.hits = %d, want 0", got)
	}
	// Typed accessors read the same counters.
	if h.Level(1, 0).Hits().Value() != stats.Get("l1.core0.hits") {
		t.Error("Level(1,0).Hits() disagrees with registry")
	}
	if h.LLC().Hits().Value() != stats.Get("LLC.hits") {
		t.Error("LLC().Hits() disagrees with registry")
	}
}
