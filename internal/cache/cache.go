// Package cache models the processor-side cache hierarchy of Table I:
// per-core L1/L2 and a shared, inclusive LLC with back-invalidation, all
// metadata-only (the functional data plane lives in the memory controller
// and the run harness). Dirty LLC evictions become memory-controller writes;
// LLC misses become controller reads; decompression by-products can be
// installed as free prefetches (Section III-E, memory-to-LLC prefetching).
package cache

import (
	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

// Config describes one cache level.
type Config struct {
	Name    string
	Sets    int
	Ways    int
	Latency uint64 // access latency in cycles
}

// cacheLine is the per-way payload in the kit's tag directory; the line
// address, valid bit and LRU rank live in the directory's WayMeta.
type cacheLine struct {
	dirty bool
}

// Cache is one set-associative, LRU, write-back cache level on the shared
// controller-kit directory (hybrid.Dir + hybrid.LRU).
type Cache struct {
	cfg  Config
	dir  *hybrid.Dir[cacheLine]
	rep  hybrid.Replacer
	tick uint64

	hits, misses *sim.Counter
}

// New builds a cache and registers hit/miss counters in stats under the
// level's name scope. A config with an empty Name registers bare
// "hits"/"misses", for callers that hand in an already-scoped view.
func New(cfg Config, stats *sim.Stats) *Cache {
	c := &Cache{
		cfg: cfg,
		dir: hybrid.NewDirSets[cacheLine](uint64(cfg.Sets), cfg.Ways),
		rep: hybrid.LRU{},
	}
	s := stats.Scope(cfg.Name)
	c.hits = s.Counter("hits")
	c.misses = s.Counter("misses")
	return c
}

// Hits returns the typed handle of the level's hit counter.
func (c *Cache) Hits() *sim.Counter { return c.hits }

// Misses returns the typed handle of the level's miss counter.
func (c *Cache) Misses() *sim.Counter { return c.misses }

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) int {
	return int((addr / hybrid.CachelineSize) % uint64(c.cfg.Sets))
}

func (c *Cache) find(addr uint64) (int, int) {
	si := c.index(addr)
	return si, c.dir.Lookup(si, addr)
}

// Access looks up the line at addr (line-aligned), updating LRU and
// counters. If write is true and the line hits, it is marked dirty.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.tick++
	if si, w := c.find(addr); w >= 0 {
		m, line := c.dir.Way(si, w)
		m.LastUse = c.tick
		if write {
			line.dirty = true
		}
		c.hits.Inc()
		return true
	}
	c.misses.Inc()
	return false
}

// Probe reports presence without LRU or counter side effects.
func (c *Cache) Probe(addr uint64) bool {
	_, w := c.find(addr)
	return w >= 0
}

// Victim describes a line displaced by Install.
type Victim struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Install inserts the line at addr (line-aligned), evicting the LRU way if
// the set is full. It returns the displaced victim, if any. Installing an
// already-present line just refreshes it.
func (c *Cache) Install(addr uint64, dirty bool) Victim {
	c.tick++
	si, w := c.find(addr)
	if w >= 0 {
		m, line := c.dir.Way(si, w)
		m.LastUse = c.tick
		line.dirty = line.dirty || dirty
		return Victim{}
	}
	vw := c.dir.Victim(si, c.rep)
	m, line := c.dir.Way(si, vw)
	v := Victim{}
	if m.Valid {
		v = Victim{Addr: m.Key, Dirty: line.dirty, Valid: true}
	}
	*m = hybrid.WayMeta{Key: addr, Valid: true, LastUse: c.tick}
	*line = cacheLine{dirty: dirty}
	return v
}

// MarkDirty sets the dirty bit if the line is present and reports presence.
func (c *Cache) MarkDirty(addr uint64) bool {
	if si, w := c.find(addr); w >= 0 {
		c.dir.Payload(si, w).dirty = true
		return true
	}
	return false
}

// Invalidate removes the line if present, reporting (present, wasDirty).
func (c *Cache) Invalidate(addr uint64) (bool, bool) {
	if si, w := c.find(addr); w >= 0 {
		m, line := c.dir.Way(si, w)
		dirty := line.dirty
		*m = hybrid.WayMeta{}
		*line = cacheLine{}
		return true, dirty
	}
	return false, false
}

// DirtyLines returns the addresses of all dirty lines (used by Flush).
func (c *Cache) DirtyLines() []uint64 {
	var out []uint64
	for si := 0; si < c.cfg.Sets; si++ {
		for w := 0; w < c.cfg.Ways; w++ {
			if m, line := c.dir.Way(si, w); m.Valid && line.dirty {
				out = append(out, m.Key)
			}
		}
	}
	return out
}

// Lines returns the addresses of all valid lines.
func (c *Cache) Lines() []uint64 {
	var out []uint64
	for si := 0; si < c.cfg.Sets; si++ {
		for w := 0; w < c.cfg.Ways; w++ {
			if m, _ := c.dir.Way(si, w); m.Valid {
				out = append(out, m.Key)
			}
		}
	}
	return out
}
