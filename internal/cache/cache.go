// Package cache models the processor-side cache hierarchy of Table I:
// per-core L1/L2 and a shared, inclusive LLC with back-invalidation, all
// metadata-only (the functional data plane lives in the memory controller
// and the run harness). Dirty LLC evictions become memory-controller writes;
// LLC misses become controller reads; decompression by-products can be
// installed as free prefetches (Section III-E, memory-to-LLC prefetching).
package cache

import (
	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

// Config describes one cache level.
type Config struct {
	Name    string
	Sets    int
	Ways    int
	Latency uint64 // access latency in cycles
}

type entry struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// Cache is one set-associative, LRU, write-back cache level.
type Cache struct {
	cfg  Config
	sets [][]entry
	tick uint64

	hits, misses *sim.Counter
}

// New builds a cache and registers hit/miss counters in stats under the
// level's name scope. A config with an empty Name registers bare
// "hits"/"misses", for callers that hand in an already-scoped view.
func New(cfg Config, stats *sim.Stats) *Cache {
	c := &Cache{cfg: cfg}
	c.sets = make([][]entry, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]entry, cfg.Ways)
	}
	s := stats.Scope(cfg.Name)
	c.hits = s.Counter("hits")
	c.misses = s.Counter("misses")
	return c
}

// Hits returns the typed handle of the level's hit counter.
func (c *Cache) Hits() *sim.Counter { return c.hits }

// Misses returns the typed handle of the level's miss counter.
func (c *Cache) Misses() *sim.Counter { return c.misses }

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) uint64 {
	return (addr / hybrid.CachelineSize) % uint64(c.cfg.Sets)
}

func (c *Cache) find(addr uint64) *entry {
	set := c.sets[c.index(addr)]
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			return &set[i]
		}
	}
	return nil
}

// Access looks up the line at addr (line-aligned), updating LRU and
// counters. If write is true and the line hits, it is marked dirty.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.tick++
	if e := c.find(addr); e != nil {
		e.lastUse = c.tick
		if write {
			e.dirty = true
		}
		c.hits.Inc()
		return true
	}
	c.misses.Inc()
	return false
}

// Probe reports presence without LRU or counter side effects.
func (c *Cache) Probe(addr uint64) bool { return c.find(addr) != nil }

// Victim describes a line displaced by Install.
type Victim struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Install inserts the line at addr (line-aligned), evicting the LRU way if
// the set is full. It returns the displaced victim, if any. Installing an
// already-present line just refreshes it.
func (c *Cache) Install(addr uint64, dirty bool) Victim {
	c.tick++
	if e := c.find(addr); e != nil {
		e.lastUse = c.tick
		e.dirty = e.dirty || dirty
		return Victim{}
	}
	set := c.sets[c.index(addr)]
	victimIdx := 0
	for i := range set {
		if !set[i].valid {
			victimIdx = i
			break
		}
		if set[i].lastUse < set[victimIdx].lastUse {
			victimIdx = i
		}
	}
	v := Victim{}
	if set[victimIdx].valid {
		v = Victim{Addr: set[victimIdx].tag, Dirty: set[victimIdx].dirty, Valid: true}
	}
	set[victimIdx] = entry{tag: addr, valid: true, dirty: dirty, lastUse: c.tick}
	return v
}

// MarkDirty sets the dirty bit if the line is present and reports presence.
func (c *Cache) MarkDirty(addr uint64) bool {
	if e := c.find(addr); e != nil {
		e.dirty = true
		return true
	}
	return false
}

// Invalidate removes the line if present, reporting (present, wasDirty).
func (c *Cache) Invalidate(addr uint64) (bool, bool) {
	if e := c.find(addr); e != nil {
		dirty := e.dirty
		*e = entry{}
		return true, dirty
	}
	return false, false
}

// DirtyLines returns the addresses of all dirty lines (used by Flush).
func (c *Cache) DirtyLines() []uint64 {
	var out []uint64
	for _, set := range c.sets {
		for _, e := range set {
			if e.valid && e.dirty {
				out = append(out, e.tag)
			}
		}
	}
	return out
}

// Lines returns the addresses of all valid lines.
func (c *Cache) Lines() []uint64 {
	var out []uint64
	for _, set := range c.sets {
		for _, e := range set {
			if e.valid {
				out = append(out, e.tag)
			}
		}
	}
	return out
}
