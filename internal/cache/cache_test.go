package cache

import (
	"testing"

	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

func newTestCache(sets, ways int) (*Cache, *sim.Stats) {
	stats := sim.NewStats()
	return New(Config{Name: "t", Sets: sets, Ways: ways, Latency: 1}, stats), stats
}

func TestCacheHitMiss(t *testing.T) {
	c, stats := newTestCache(4, 2)
	if c.Access(0, false) {
		t.Fatal("cold hit")
	}
	c.Install(0, false)
	if !c.Access(0, false) {
		t.Fatal("installed line missed")
	}
	if stats.Get("t.hits") != 1 || stats.Get("t.misses") != 1 {
		t.Fatalf("hits=%d misses=%d", stats.Get("t.hits"), stats.Get("t.misses"))
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := newTestCache(1, 2)
	c.Install(0*64, false)
	c.Install(1*64, false)
	c.Access(0, false) // make line 0 MRU
	v := c.Install(2*64, false)
	if !v.Valid || v.Addr != 1*64 {
		t.Fatalf("evicted %+v, want line 1 (LRU)", v)
	}
	if !c.Probe(0) || c.Probe(64) || !c.Probe(128) {
		t.Fatal("wrong lines resident")
	}
}

func TestCacheDirtyTracking(t *testing.T) {
	c, _ := newTestCache(1, 1)
	c.Install(0, false)
	c.Access(0, true) // write marks dirty
	v := c.Install(64, false)
	if !v.Valid || !v.Dirty {
		t.Fatalf("dirty victim lost: %+v", v)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c, _ := newTestCache(2, 2)
	c.Install(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatal("invalidate lost state")
	}
	if present, _ := c.Invalidate(0); present {
		t.Fatal("double invalidate")
	}
}

func TestDirtyLines(t *testing.T) {
	c, _ := newTestCache(4, 2)
	c.Install(0, true)
	c.Install(64, false)
	c.Install(128, true)
	d := c.DirtyLines()
	if len(d) != 2 {
		t.Fatalf("dirty lines %v", d)
	}
}

// controller stub records accesses for hierarchy tests.
type stubCtrl struct {
	stats  *sim.Stats
	reads  []uint64
	writes []uint64
}

func (s *stubCtrl) Access(now uint64, addr uint64, write bool, data []byte) hybrid.Result {
	if write {
		s.writes = append(s.writes, addr)
		return hybrid.Result{Done: now}
	}
	s.reads = append(s.reads, addr)
	return hybrid.Result{
		Done: now + 100, ServedByFast: true, Data: make([]byte, 64),
		Prefetched: []hybrid.PrefetchedLine{{Addr: addr ^ 64, Data: make([]byte, 64)}},
	}
}
func (s *stubCtrl) Stats() *sim.Stats { return s.stats }
func (s *stubCtrl) Name() string      { return "stub" }

func newTestHierarchy(t *testing.T) (*Hierarchy, *stubCtrl, *sim.Stats) {
	t.Helper()
	stats := sim.NewStats()
	ctrl := &stubCtrl{stats: stats}
	cfg := HierarchyConfig{
		Cores:             2,
		L1:                Config{Name: "L1", Sets: 2, Ways: 2, Latency: 1},
		L2:                Config{Name: "L2", Sets: 4, Ways: 2, Latency: 4},
		LLC:               Config{Name: "LLC", Sets: 8, Ways: 2, Latency: 10},
		InstallPrefetched: true,
	}
	h := NewHierarchy(cfg, ctrl, stats)
	h.LineData = func(addr uint64) []byte { return make([]byte, 64) }
	return h, ctrl, stats
}

func TestHierarchyMissGoesToController(t *testing.T) {
	h, ctrl, stats := newTestHierarchy(t)
	done := h.Access(0, 0, 0x1000, false)
	if len(ctrl.reads) != 1 {
		t.Fatalf("controller saw %d reads", len(ctrl.reads))
	}
	if done < 100 {
		t.Fatalf("latency %d too small", done)
	}
	if stats.Get("hierarchy.llcMisses") != 1 {
		t.Fatal("llc miss not counted")
	}
	// Second access: L1 hit, no controller traffic.
	h.Access(0, 200, 0x1000, false)
	if len(ctrl.reads) != 1 {
		t.Fatal("hit went to controller")
	}
}

func TestHierarchyPrefetchInstall(t *testing.T) {
	h, ctrl, stats := newTestHierarchy(t)
	h.Access(0, 0, 0x1000, false)
	// The stub prefetches addr^64; accessing it must hit the LLC, not the
	// controller.
	h.Access(1, 100, 0x1000^64, false)
	if len(ctrl.reads) != 1 {
		t.Fatalf("prefetched line missed LLC: reads=%v", ctrl.reads)
	}
	if stats.Get("hierarchy.prefetchInstalls") != 1 {
		t.Fatal("prefetch install not counted")
	}
}

func TestHierarchyWritebackOnFlush(t *testing.T) {
	h, ctrl, _ := newTestHierarchy(t)
	h.Access(0, 0, 0x2000, true)
	if len(ctrl.writes) != 0 {
		t.Fatal("write reached controller before eviction")
	}
	h.Flush(1000)
	if len(ctrl.writes) != 1 || ctrl.writes[0] != 0x2000 {
		t.Fatalf("flush writebacks: %v", ctrl.writes)
	}
}

func TestHierarchyDirtyEviction(t *testing.T) {
	h, ctrl, _ := newTestHierarchy(t)
	// Write one line, then stream enough lines through the same LLC set to
	// force its eviction; the dirty data must reach the controller.
	h.Access(0, 0, 0x0, true)
	for i := 1; i <= 4; i++ {
		// LLC has 8 sets: stride 8*64 stays in set 0.
		h.Access(0, uint64(i*100), uint64(i*8*64), false)
	}
	if len(ctrl.writes) == 0 {
		t.Fatal("dirty line never written back")
	}
}

func TestHierarchyServeCounters(t *testing.T) {
	h, _, stats := newTestHierarchy(t)
	h.Access(0, 0, 0x3000, false)
	if stats.Get("hierarchy.servedFast") != 1 {
		t.Fatal("servedFast not counted")
	}
}

func TestDefaultHierarchyShape(t *testing.T) {
	cfg := DefaultHierarchy(16, 64)
	if cfg.Cores != 16 {
		t.Fatal("cores wrong")
	}
	llcLines := cfg.LLC.Sets * cfg.LLC.Ways
	if llcLines*hybrid.CachelineSize != 64*1024 {
		t.Fatalf("LLC capacity %d B, want 64 kB", llcLines*hybrid.CachelineSize)
	}
}
