package experiment

import (
	"baryon/internal/config"
	"baryon/internal/core"
	"baryon/internal/cpu"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// Fig4Result is the stage-phase MPKI distribution of Fig. 4: one box
// (5/25/50/75/95 percentiles) per normalised-time bucket across sampled
// stage phases.
type Fig4Result struct {
	Boxes  []sim.Box
	Phases int
}

// Fig4 reproduces Fig. 4: stage-area MPKI trajectories of sampled blocks,
// normalised to each block's stage-phase length. The paper's observation —
// an order-of-magnitude MPKI drop by the mid-phase that stays low — is the
// justification for the stage area and the selective commit policy.
func Fig4(cfg config.Config) (Fig4Result, *Table) {
	// Each workload samples into a private sampler so the runs can execute
	// concurrently; the samplers are merged in workload order afterwards
	// (percentiles sort, so the merged boxes are order-independent anyway).
	workloads := trace.SPEC()[:4]
	samplers := make([]*core.StagePhaseSampler, len(workloads))
	forEach(len(workloads), func(i int) {
		samplers[i] = core.NewStagePhaseSampler()
		r := cpu.NewRunner(cfg, workloads[i], Factory(DesignBaryon))
		ctrl := r.Controller().(*core.Controller)
		ctrl.SetInstrumentation(core.Instrumentation{StagePhase: samplers[i]})
		r.Run()
	})
	sampler := samplers[0]
	for _, o := range samplers[1:] {
		sampler.Merge(o)
	}
	agg := Fig4Result{}
	t := &Table{
		Title:  "Fig 4: stage-phase MPKI distribution vs normalised phase time",
		Header: []string{"x", "p5", "p25", "p50", "p75", "p95"},
		Notes: []string{
			"paper: MPKI drops by an order of magnitude by x=0.5 and stays low;",
			"a high p95 tail persists, motivating the selective commit policy",
		},
	}
	for i := range sampler.Buckets {
		box := sampler.Buckets[i].Box()
		agg.Boxes = append(agg.Boxes, box)
		x := (float64(i) + 0.5) / float64(len(sampler.Buckets))
		t.AddRow(f2(x), f2(box.P5), f2(box.P25), f2(box.P50), f2(box.P75), f2(box.P95))
	}
	agg.Phases = sampler.Phases()
	return agg, t
}
