package experiment

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/trace"
)

// Fig13Row is one (workload, configuration point) outcome, with performance
// normalised to the default Baryon configuration.
type Fig13Row struct {
	Workload string
	Point    string
	Speedup  float64
}

// sweep runs the representative workloads over configuration points — the
// full (workload, point) grid fans out across the worker pool — and
// normalises each workload to its named baseline point.
func sweep(cfg config.Config, points []string, mut func(*config.Config, string), baseline string) ([]Fig13Row, map[string][]string) {
	var rows []Fig13Row
	cells := map[string][]string{}
	workloads := trace.Representative()
	pairs := make([]Pair, 0, len(workloads)*len(points))
	for _, w := range workloads {
		for _, p := range points {
			c := cfg
			mut(&c, p)
			pairs = append(pairs, Pair{Cfg: c, Workload: w, Design: DesignBaryon})
		}
	}
	results := RunPairs(pairs)
	for wi, w := range workloads {
		base := 0.0
		perPoint := map[string]float64{}
		for pi, p := range points {
			cycles := float64(results[wi*len(points)+pi].Cycles)
			perPoint[p] = cycles
			if p == baseline {
				base = cycles
			}
		}
		row := []string{w.Name}
		for _, p := range points {
			sp := base / perPoint[p]
			rows = append(rows, Fig13Row{Workload: w.Name, Point: p, Speedup: sp})
			row = append(row, f2(sp))
		}
		cells[w.Name] = row
	}
	return rows, cells
}

func sweepTable(cfg config.Config, title string, notes []string, points []string, mut func(*config.Config, string), baseline string) ([]Fig13Row, *Table) {
	rows, cells := sweep(cfg, points, mut, baseline)
	t := &Table{Title: title, Header: append([]string{"workload"}, points...), Notes: notes}
	for _, w := range trace.Representative() {
		t.AddRow(cells[w.Name]...)
	}
	return rows, t
}

// Fig13a reproduces Fig. 13(a): disabling block-level replacements (so a
// super-block is confined to one stage frame) versus the two-level policy.
func Fig13a(cfg config.Config) ([]Fig13Row, *Table) {
	points := []string{"two-level", "sub-block-only"}
	return sweepTable(cfg,
		"Fig 13(a): two-level stage replacement vs sub-block-only",
		[]string{"paper: sub-block-only loses about 25%"},
		points,
		func(c *config.Config, p string) { c.TwoLevelReplacement = p == "two-level" },
		"two-level")
}

// Fig13b reproduces Fig. 13(b): the super-block size sweep (in blocks).
func Fig13b(cfg config.Config) ([]Fig13Row, *Table) {
	points := []string{"1", "2", "8", "32"}
	return sweepTable(cfg,
		"Fig 13(b): super-block size in blocks (default 8)",
		[]string{"paper: 8 blocks suffices; very large super-blocks add conflict misses"},
		points,
		func(c *config.Config, p string) { fmt.Sscanf(p, "%d", &c.SuperBlockBlocks) },
		"8")
}

// Fig13c reproduces Fig. 13(c): the stage-area size sweep plus the
// no-stage-area configuration.
func Fig13c(cfg config.Config) ([]Fig13Row, *Table) {
	base := cfg.StageBytes
	points := []string{"1/8", "1/4", "1/2", "1x", "2x", "none"}
	return sweepTable(cfg,
		"Fig 13(c): stage-area size (fractions of default) and no-stage ablation",
		[]string{
			"paper: 8 MB is enough for some workloads; 64 MB gives up to 24% more;",
			"removing the stage area loses 34.5% on average (constant re-sorting)",
		},
		points,
		func(c *config.Config, p string) {
			switch p {
			case "1/8":
				c.StageBytes = base / 8
			case "1/4":
				c.StageBytes = base / 4
			case "1/2":
				c.StageBytes = base / 2
			case "1x":
				c.StageBytes = base
			case "2x":
				c.StageBytes = base * 2
			case "none":
				c.UseStageArea = false
			}
		},
		"1x")
}

// Fig13d reproduces Fig. 13(d): the selective-commit parameter k, the two
// degenerate policies (k=0 write-cost-only, k=inf stability-only) and the
// commit-all policy.
func Fig13d(cfg config.Config) ([]Fig13Row, *Table) {
	points := []string{"k=0", "k=1", "k=2", "k=4", "k=inf", "commit-all"}
	return sweepTable(cfg,
		"Fig 13(d): selective commit policy parameter",
		[]string{
			"paper: k in {1,2,4} performs similarly and beats k=0, k=inf and commit-all",
		},
		points,
		func(c *config.Config, p string) {
			switch p {
			case "k=0":
				c.CommitK = 0
			case "k=1":
				c.CommitK = 1
			case "k=2":
				c.CommitK = 2
			case "k=4":
				c.CommitK = 4
			case "k=inf":
				c.CommitK = -1
			case "commit-all":
				c.CommitAll = true
			}
		},
		"k=4")
}
