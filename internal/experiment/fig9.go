package experiment

import (
	"baryon/internal/config"
	"baryon/internal/cpu"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// PerfRow is one workload's results across designs.
type PerfRow struct {
	Workload string
	// Speedup maps design name to speedup over the row's baseline.
	Speedup map[string]float64
	// Results keeps the full metrics per design.
	Results map[string]cpu.Result
}

// PerfMatrix is a full performance comparison (Figs. 9 and 10).
type PerfMatrix struct {
	Designs  []string
	Baseline string
	Rows     []PerfRow
	// GeoMean maps design name to the geometric-mean speedup.
	GeoMean map[string]float64
}

// runMatrix executes every (workload, design) pair — fanned out across the
// worker pool — and normalises each row to its baseline design.
func runMatrix(cfg config.Config, workloads []trace.Workload, designs []string, baseline string) PerfMatrix {
	m := PerfMatrix{Designs: designs, Baseline: baseline, GeoMean: map[string]float64{}}
	per := map[string][]float64{}
	grid := RunMatrix(cfg, workloads, designs)
	for wi, w := range workloads {
		row := PerfRow{Workload: w.Name, Speedup: map[string]float64{}, Results: map[string]cpu.Result{}}
		var base float64
		for di, d := range designs {
			res := grid[wi][di]
			row.Results[d] = res
			if d == baseline {
				base = float64(res.Cycles)
			}
		}
		for _, d := range designs {
			sp := base / float64(row.Results[d].Cycles)
			row.Speedup[d] = sp
			per[d] = append(per[d], sp)
		}
		m.Rows = append(m.Rows, row)
	}
	for _, d := range designs {
		m.GeoMean[d] = sim.GeoMean(per[d])
	}
	return m
}

// Fig9Designs is the cache-mode comparison set of Fig. 9.
var Fig9Designs = []string{DesignSimple, DesignUnison, DesignDICE, DesignBaryon64B, DesignBaryon}

// Fig9 reproduces Fig. 9: cache-mode performance of Unison Cache, DICE,
// Baryon-64B and Baryon across the whole suite, normalised to the Simple
// DRAM cache.
func Fig9(cfg config.Config) (PerfMatrix, *Table) {
	cfg.Mode = config.ModeCache
	m := runMatrix(cfg, trace.All(), Fig9Designs, DesignSimple)
	t := &Table{
		Title:  "Fig 9: cache-mode speedup over Simple",
		Header: append([]string{"workload"}, Fig9Designs...),
		Notes: []string{
			"paper: Baryon outperforms Unison by 1.38x and DICE by 1.27x on average;",
			"lbm is the one workload where Unison wins (incompressible, write-heavy)",
		},
	}
	for _, row := range m.Rows {
		cells := []string{row.Workload}
		for _, d := range Fig9Designs {
			cells = append(cells, f2(row.Speedup[d]))
		}
		t.AddRow(cells...)
	}
	cells := []string{"geomean"}
	for _, d := range Fig9Designs {
		cells = append(cells, f3(m.GeoMean[d]))
	}
	t.AddRow(cells...)
	return m, t
}

// Fig10Designs is the flat-mode comparison of Fig. 10.
var Fig10Designs = []string{DesignHybrid2, DesignBaryonFA}

// Fig10 reproduces Fig. 10: fully-associative flat-mode performance of
// Baryon-FA normalised to Hybrid2.
func Fig10(cfg config.Config) (PerfMatrix, *Table) {
	cfg.Mode = config.ModeFlat
	m := runMatrix(cfg, trace.All(), Fig10Designs, DesignHybrid2)
	t := &Table{
		Title:  "Fig 10: flat-mode speedup of Baryon-FA over Hybrid2",
		Header: []string{"workload", "Baryon-FA/Hybrid2", "srFA", "srH2"},
		Notes: []string{
			"paper: 1.18x on average and up to 2.50x",
		},
	}
	for _, row := range m.Rows {
		t.AddRow(row.Workload, f2(row.Speedup[DesignBaryonFA]),
			pct(row.Results[DesignBaryonFA].FastServeRate), pct(row.Results[DesignHybrid2].FastServeRate))
	}
	t.AddRow("geomean", f3(m.GeoMean[DesignBaryonFA]), "", "")
	return m, t
}
