package experiment

import (
	"fmt"
	"strconv"
	"strings"

	"baryon/internal/config"
	"baryon/internal/mem"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// CXLRow is one (design, link bandwidth) cell of the CXL experiment.
type CXLRow struct {
	Workload string
	Design   string
	// LinkBW is the expander link bandwidth in bytes per CPU cycle.
	LinkBW float64
	Cycles uint64
	// Speedup is over UnisonCache at the same link bandwidth, so the series
	// reads as "what does smarter management buy once the far tier sits
	// behind a link this narrow".
	Speedup       float64
	FastServeRate float64
	// LinkMB/InternalMB split the expander's traffic: the link always moves
	// raw lines while IBEX-style expander-side compression shrinks only the
	// internal path, so InternalMB <= LinkMB measures what the compressor
	// saved inside the device.
	LinkMB, InternalMB float64
	P99                float64
}

// CXLLinkBandwidths is the swept expander link bandwidth in bytes/cycle:
// from a starved x2-equivalent link up to one matching the DDR4 channel.
var CXLLinkBandwidths = []float64{2, 4, 8, 16}

// CXLDesigns is the comparison set behind the link: the paper's headline
// designs, with UnisonCache as the per-bandwidth baseline.
var CXLDesigns = []string{DesignUnison, DesignDICE, DesignBaryon}

// cxlSweepTiers is the swept topology: the built-ins' DRAM+NVM+CXL split
// (see cxlTiers) with the expander's link bandwidth as the free variable.
// The IBEX preset keeps expander-side compression on, so the sweep also
// shows the internal-path savings at every operating point.
func cxlSweepTiers(linkBW float64) []config.TierConfig {
	return []config.TierConfig{
		{Preset: "ddr4"},
		{Preset: "nvm", Bytes: 8 << 20},
		{Preset: "cxl-ibex", CXL: &mem.CXLParams{
			LinkLatencyCycles:     96,
			LinkBytesPerCycle:     linkBW,
			InternalBytesPerCycle: 12,
			Compression:           "best",
		}},
	}
}

// CXLSweep measures the designs' sensitivity to the expander link: for each
// link bandwidth it runs Baryon against the Unison/DICE baselines on the
// three-tier DRAM+NVM+CXL topology and reports cycles, speedup over
// UnisonCache at the same bandwidth, and the expander's link vs internal
// traffic. Runs are deterministic per cfg.Seed.
func CXLSweep(cfg config.Config) ([]CXLRow, *Table) {
	w := trace.Representative()[0]
	pairs := make([]Pair, 0, len(CXLDesigns)*len(CXLLinkBandwidths))
	for _, bw := range CXLLinkBandwidths {
		for _, d := range CXLDesigns {
			c := cfg
			c.Tiers = cxlSweepTiers(bw)
			pairs = append(pairs, Pair{Cfg: c, Workload: w, Design: d})
		}
	}
	results := RunPairs(pairs)

	var rows []CXLRow
	t := &Table{
		Title: "CXL: far tier behind an expander link, sweeping link bandwidth (" + w.Name + ")",
		Header: []string{"linkBpC", "design", "cycles", "speedup", "fastServeRate",
			"linkMB", "internalMB", "memLatP99"},
		Notes: []string{
			"topology: DDR4 + 8 MB NVM window + CXL-IBEX expander catch-all (96-cycle flit latency);",
			"speedups are over UnisonCache at the same link bandwidth;",
			"the link always moves raw 64B lines - internalMB < linkMB is what expander-side compression saved",
		},
	}
	for i, res := range results {
		p := pairs[i]
		bw := p.Cfg.Tiers[2].CXL.LinkBytesPerCycle
		if p.Design == DesignUnison && res.Cycles == 0 {
			panic("experiment: cxl baseline run produced zero cycles")
		}
		row := CXLRow{
			Workload:      p.Workload.Name,
			Design:        p.Design,
			LinkBW:        bw,
			Cycles:        res.Cycles,
			FastServeRate: res.FastServeRate,
			LinkMB:        float64(sumCounterSuffix(res.Stats, ".cxlLinkBytes")) / (1 << 20),
			InternalMB:    float64(sumCounterSuffix(res.Stats, ".cxlInternalBytes")) / (1 << 20),
			P99:           res.Measured.MemLat.P99,
		}
		// The Unison run at this bandwidth is the first of its triplet.
		base := results[i-i%len(CXLDesigns)]
		if res.Cycles > 0 {
			row.Speedup = float64(base.Cycles) / float64(res.Cycles)
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%.0f", row.LinkBW), row.Design,
			strconv.FormatUint(row.Cycles, 10),
			f3(row.Speedup), pct(row.FastServeRate),
			fmt.Sprintf("%.2f", row.LinkMB), fmt.Sprintf("%.2f", row.InternalMB),
			fmt.Sprintf("%.1f", row.P99))
	}
	return rows, t
}

// sumCounterSuffix totals every counter whose name ends in suffix across a
// run's registry (the expander's device name depends on the tier preset, so
// rows match by suffix rather than hardcoding it).
func sumCounterSuffix(st *sim.Stats, suffix string) uint64 {
	var total uint64
	for _, n := range st.Names() {
		if strings.HasSuffix(n, suffix) {
			total += st.Get(n)
		}
	}
	return total
}
