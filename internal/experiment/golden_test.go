package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"baryon/internal/config"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the experiment golden file")

// goldenConfig is the fixed configuration behind the golden file: small
// enough for test time, large enough that every design sees capacity
// pressure. It must never change, or the golden comparison loses its
// meaning as a cross-refactor byte-identity check.
func goldenConfig() config.Config {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 2000
	cfg.Seed = 1
	return cfg
}

// goldenTables renders the representative subset of the cmd/experiments
// output that the golden file pins down: the static Table I plus the three
// figure families that read counters through every layer of the metrics
// plane (hierarchy serve counters, device traffic/energy, controller CFs).
func goldenTables() []byte {
	cfg := goldenConfig()
	var buf bytes.Buffer
	for _, run := range []func() *Table{
		func() *Table { return TableI() },
		func() *Table { _, t := Fig9(cfg); return t },
		func() *Table { _, t := Fig11(cfg); return t },
		func() *Table { _, t := Fig12(cfg); return t },
		func() *Table { _, t := Energy(cfg); return t },
	} {
		run().Render(&buf)
	}
	return buf.Bytes()
}

// TestExperimentTablesGolden locks the default-config experiment output:
// with warmup disabled and epochs off, the tables must stay byte-identical
// across refactors of the statistics plane. Regenerate deliberately with
//
//	go test ./internal/experiment -run Golden -update-golden
func TestExperimentTablesGolden(t *testing.T) {
	path := filepath.Join("testdata", "tables_quick.golden")
	got := goldenTables()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		n := len(gl)
		if len(wl) < n {
			n = len(wl)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("experiment tables diverge from golden at line %d:\n got: %s\nwant: %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("experiment tables diverge from golden in length: got %d lines, want %d", len(gl), len(wl))
	}
}
