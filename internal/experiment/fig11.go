package experiment

import (
	"baryon/internal/config"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// Fig11Row holds the serve-rate and bandwidth-bloat metrics of one workload
// across the cache-mode designs (Fig. 11).
type Fig11Row struct {
	Workload  string
	ServeRate map[string]float64
	Bloat     map[string]float64
}

// Fig11Designs is the analysis set of Fig. 11.
var Fig11Designs = []string{DesignUnison, DesignDICE, DesignBaryon}

// Fig11 reproduces Fig. 11: the fraction of memory accesses served by fast
// memory (left; higher is better) and the bandwidth bloat factor — fast
// memory traffic over useful LLC fill traffic (right; lower is better) —
// for representative workloads plus the geometric mean of the whole suite.
func Fig11(cfg config.Config) ([]Fig11Row, *Table) {
	var rows []Fig11Row
	t := &Table{
		Title:  "Fig 11: fast-memory serve rate (left) / bandwidth bloat factor (right)",
		Header: []string{"workload", "sr.Unison", "sr.DICE", "sr.Baryon", "bl.Unison", "bl.DICE", "bl.Baryon"},
		Notes: []string{
			"paper pr.twi: serve rates 37%/44%/77%; bloat 3.2/2.4/1.8;",
			"this reproduction matches the serve-rate ordering; Baryon's bloat runs",
			"higher than the paper's because stage/commit churn is relatively larger",
			"at the scaled-down stage size (see EXPERIMENTS.md)",
		},
	}
	serveAll := map[string][]float64{}
	bloatAll := map[string][]float64{}
	repr := map[string]bool{}
	for _, w := range trace.Representative() {
		repr[w.Name] = true
	}
	var reprRows []Fig11Row
	workloads := trace.All()
	grid := RunMatrix(cfg, workloads, Fig11Designs)
	for wi, w := range workloads {
		row := Fig11Row{Workload: w.Name, ServeRate: map[string]float64{}, Bloat: map[string]float64{}}
		for di, d := range Fig11Designs {
			res := grid[wi][di]
			row.ServeRate[d] = res.FastServeRate
			row.Bloat[d] = res.BloatFactor
			serveAll[d] = append(serveAll[d], res.FastServeRate)
			bloatAll[d] = append(bloatAll[d], res.BloatFactor)
		}
		rows = append(rows, row)
		if repr[w.Name] {
			reprRows = append(reprRows, row)
			t.AddRow(w.Name,
				pct(row.ServeRate[DesignUnison]), pct(row.ServeRate[DesignDICE]), pct(row.ServeRate[DesignBaryon]),
				f2(row.Bloat[DesignUnison]), f2(row.Bloat[DesignDICE]), f2(row.Bloat[DesignBaryon]))
		}
	}
	t.AddRow("geomean(all)",
		pct(sim.GeoMean(serveAll[DesignUnison])), pct(sim.GeoMean(serveAll[DesignDICE])), pct(sim.GeoMean(serveAll[DesignBaryon])),
		f2(sim.GeoMean(bloatAll[DesignUnison])), f2(sim.GeoMean(bloatAll[DesignDICE])), f2(sim.GeoMean(bloatAll[DesignBaryon])))
	return rows, t
}
