package experiment

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/trace"
)

// TailLatencyDesigns is the design set of the tail-latency comparison: the
// two strongest cache-mode baselines against Baryon.
var TailLatencyDesigns = []string{DesignUnison, DesignDICE, DesignBaryon}

// TailLatency reports the demand completion-latency distribution per design
// on the representative workloads: the means the paper's figures report hide
// the bimodality Baryon's mechanisms create (stage hits vs. slow-path NVM
// reads), which the percentile spread makes visible. All values are cycles,
// measured over the post-warmup window via histogram window deltas.
func TailLatency(cfg config.Config) *Table {
	t := &Table{
		Title:  "Tail latency: demand completion latency per design (cycles)",
		Header: []string{"workload", "design", "mean", "p50", "p90", "p99", "p99.9", "max"},
		Notes: []string{
			"whole-plane latency (cache hits included); percentile estimates carry",
			"the 12.5% relative error of the log-linear histogram buckets, max is exact;",
			"see EXPERIMENTS.md \"Tail-latency methodology\"",
		},
	}
	workloads := trace.Representative()
	grid := RunMatrix(cfg, workloads, TailLatencyDesigns)
	for wi, w := range workloads {
		for di, d := range TailLatencyDesigns {
			m := grid[wi][di].Measured.MemLat
			t.AddRow(w.Name, d,
				fmt.Sprintf("%.1f", m.Mean),
				fmt.Sprintf("%.0f", m.P50),
				fmt.Sprintf("%.0f", m.P90),
				fmt.Sprintf("%.0f", m.P99),
				fmt.Sprintf("%.0f", m.P999),
				fmt.Sprintf("%d", m.Max))
		}
	}
	return t
}
