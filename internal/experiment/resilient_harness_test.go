package experiment

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"baryon/internal/config"
	"baryon/internal/trace"
)

// registerPoisonedDesign registers a design that passes every load-time and
// spec-level validation but panics inside the controller factory (BlockBytes
// 0 divides by zero in the geometry math) — the shape of bug panic isolation
// exists for. Each test registers its own name; the registry is global.
func registerPoisonedDesign(t *testing.T, name string) {
	t.Helper()
	err := Register(DesignSpec{
		Name:      name,
		Kind:      KindBaryon,
		Overrides: config.Overrides{BlockBytes: config.Ptr[uint64](0)},
	})
	if err != nil {
		t.Fatalf("registering poisoned design: %v", err)
	}
}

// TestPanicIsolation runs a grid with one poisoned pair and checks that the
// panic is contained to its slot while every other pair completes.
func TestPanicIsolation(t *testing.T) {
	registerPoisonedDesign(t, "Poisoned-Isolation")
	cfg := parallelConfig()
	w, _ := trace.ByName("505.mcf_r")
	pairs := []Pair{
		{Cfg: cfg, Workload: w, Design: DesignSimple},
		{Cfg: cfg, Workload: w, Design: "Poisoned-Isolation"},
		{Cfg: cfg, Workload: w, Design: DesignBaryon},
	}
	out := RunPairsCtx(context.Background(), pairs)
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "panicked") {
		t.Fatalf("poisoned pair error = %v, want captured panic", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil {
			t.Fatalf("healthy pair %d failed: %v", i, out[i].Err)
		}
		if out[i].Result.Cycles == 0 {
			t.Fatalf("healthy pair %d produced no result", i)
		}
	}
}

// TestRunOneCtxErrors pins the error (not panic) contract of the validated
// entry point.
func TestRunOneCtxErrors(t *testing.T) {
	cfg := parallelConfig()
	w, _ := trace.ByName("505.mcf_r")
	if _, err := RunOneCtx(context.Background(), cfg, w, "No-Such-Design"); err == nil {
		t.Fatal("unknown design did not error")
	}
	// A replacement knob on a kind without one is a spec-level error.
	if err := Register(DesignSpec{
		Name:   "BadKnob-Baryon",
		Kind:   KindBaryon,
		Policy: PolicySpec{Replacement: "lru"},
	}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := RunOneCtx(context.Background(), cfg, w, "BadKnob-Baryon"); err == nil ||
		!strings.Contains(err.Error(), "replacement-policy") {
		t.Fatalf("bad knob error = %v, want replacement-policy error", err)
	}
	// A pre-cancelled context refuses to run at all.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOneCtx(done, cfg, w, DesignSimple); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run error = %v, want context.Canceled", err)
	}
}

// TestCancellationMidSweep cancels a sweep partway through and checks the
// per-pair outcomes: pairs cut short or never started report the context's
// error, and the call returns promptly instead of finishing the grid.
func TestCancellationMidSweep(t *testing.T) {
	cfg := parallelConfig()
	cfg.AccessesPerCore = 200000 // long enough that cancellation lands mid-run
	w, _ := trace.ByName("505.mcf_r")
	var pairs []Pair
	for i := 0; i < 8; i++ {
		pairs = append(pairs, Pair{Cfg: cfg, Workload: w, Design: DesignSimple})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out := RunPairsCtx(ctx, pairs)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled sweep still took %s", elapsed)
	}
	cancelledCount := 0
	for _, pr := range out {
		if errors.Is(pr.Err, context.Canceled) {
			cancelledCount++
		}
	}
	if cancelledCount == 0 {
		t.Fatal("no pair observed the cancellation")
	}
}

// TestLegacyRunPairsStrict pins the legacy contract: per-pair errors
// escalate to a panic rather than being silently dropped.
func TestLegacyRunPairsStrict(t *testing.T) {
	registerPoisonedDesign(t, "Poisoned-Legacy")
	cfg := parallelConfig()
	w, _ := trace.ByName("505.mcf_r")
	defer func() {
		if recover() == nil {
			t.Fatal("RunPairs with a poisoned pair did not panic")
		}
	}()
	RunPairs([]Pair{{Cfg: cfg, Workload: w, Design: "Poisoned-Legacy"}})
}
