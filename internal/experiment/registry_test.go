package experiment

import (
	"testing"

	"baryon/internal/trace"
)

// TestRunPairsRegistriesNotShared enforces the registry concurrency
// contract (see sim.Stats and DESIGN.md): RunPairs gets goroutine safety by
// giving every job its own registry, never by locking one. If two jobs ever
// shared a registry the race detector would fire on the counter increments;
// this test additionally pins the structural property that every result
// carries a distinct registry, so a future "reuse the registry across jobs"
// optimisation cannot land silently.
func TestRunPairsRegistriesNotShared(t *testing.T) {
	cfg := parallelConfig()
	w, _ := trace.ByName("505.mcf_r")
	pairs := make([]Pair, 0, 8)
	for i := 0; i < 4; i++ {
		pairs = append(pairs,
			Pair{Cfg: cfg, Workload: w, Design: DesignBaryon},
			Pair{Cfg: cfg, Workload: w, Design: DesignDICE})
	}
	results := RunPairs(pairs)
	if len(results) != len(pairs) {
		t.Fatalf("%d results for %d pairs", len(results), len(pairs))
	}
	seen := map[any]int{}
	for i, res := range results {
		if res.Stats == nil {
			t.Fatalf("result %d has no registry", i)
		}
		if j, dup := seen[res.Stats]; dup {
			t.Fatalf("results %d and %d share a sim.Stats registry", j, i)
		}
		seen[res.Stats] = i
	}
}
