package experiment

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/metadata"
	"baryon/internal/sim"
)

// TableI renders the Table I system configuration and verifies the paper's
// metadata storage budgets at full (paper) scale: a 448 kB stage tag array,
// a 32 kB remap cache, and a remap table of about 0.1% of system capacity.
func TableI() *Table {
	paper := config.PaperScale()
	scaled := config.Scaled()
	rc := metadata.NewRemapCache(paper.RemapCacheSets, paper.RemapCacheWays, sim.NewStats())

	t := &Table{
		Title:  "Table I: system configuration and metadata budgets",
		Header: []string{"parameter", "paper scale", "scaled runs"},
	}
	row := func(name, p, s string) { t.AddRow(name, p, s) }
	row("cores", fmt.Sprint(paper.Cores), fmt.Sprint(scaled.Cores))
	row("fast memory (DDR4-3200)", byteSize(paper.FastBytes), byteSize(scaled.FastBytes))
	row("slow memory (NVM)", byteSize(paper.SlowBytes), byteSize(scaled.SlowBytes))
	row("stage area", byteSize(paper.StageBytes), byteSize(scaled.StageBytes))
	row("stage sets x ways", fmt.Sprintf("%d x 4", paper.StageSets()), fmt.Sprintf("%d x 4", scaled.StageSets()))
	row("block / sub-block / super", "2kB / 256B / 16kB", "2kB / 256B / 16kB")
	row("associativity", fmt.Sprint(paper.Assoc), fmt.Sprint(scaled.Assoc))
	row("LLC", byteSize(uint64(paper.LLCKB)*1024), byteSize(uint64(scaled.LLCKB)*1024))
	row("stage tag array (14B/entry)", byteSize(paper.StageTagArrayBytes()), byteSize(scaled.StageTagArrayBytes()))
	row("remap table (2B/block)", byteSize(paper.RemapTableBytes()), byteSize(scaled.RemapTableBytes()))
	row("remap table / capacity", fmt.Sprintf("%.3f%%",
		100*float64(paper.RemapTableBytes())/float64(paper.FastBytes+paper.SlowBytes)), "")
	row("remap cache (256x8, 16B lines)", byteSize(uint64(rc.StorageBytes())), "same")
	row("stage tag latency", fmt.Sprintf("%d cycles", paper.StageTagLatency), "same")
	row("remap cache latency", fmt.Sprintf("%d cycles", paper.RemapCacheLatency), "same")
	row("decompression latency", fmt.Sprintf("%d cycles", paper.DecompressLatency), "same")
	t.Notes = append(t.Notes,
		"paper budgets: stage tag 448 kB, remap cache 32 kB, table ~0.1% of capacity",
		fmt.Sprintf("total controller SRAM at paper scale: %s",
			byteSize(paper.StageTagArrayBytes()+uint64(rc.StorageBytes()))))
	return t
}
