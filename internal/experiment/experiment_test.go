package experiment

import (
	"strings"
	"testing"

	"baryon/internal/config"
	"baryon/internal/trace"
)

// quickConfig keeps experiment tests fast while exercising every code path.
func quickConfig() config.Config {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 1500
	return cfg
}

func TestFactoryAllDesigns(t *testing.T) {
	cfg := quickConfig()
	w, _ := trace.ByName("505.mcf_r")
	for _, d := range []string{DesignSimple, DesignUnison, DesignDICE,
		DesignBaryon, DesignBaryon64B, DesignBaryonFA, DesignHybrid2} {
		res := RunOne(cfg, w, d)
		if res.Cycles == 0 {
			t.Fatalf("%s: no cycles", d)
		}
		if res.Design != d {
			t.Fatalf("design name %q, want %q", res.Design, d)
		}
	}
}

func TestFactoryUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown design")
		}
	}()
	Factory("nope")
}

func TestTableIRenders(t *testing.T) {
	tab := TableI()
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"448.00kB", "8192 x 4", "0.0", "Table I"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3aBreakdownSane(t *testing.T) {
	rows, tab := Fig3a(quickConfig())
	if len(rows) != len(trace.SPEC()) {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		bd := r.Breakdown
		for _, v := range []float64{bd.SHits, bd.SReadMisses, bd.SWriteOverflows,
			bd.CHits, bd.CReadMisses, bd.CWriteOverflows} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: ratio %f out of range", r.Workload, v)
			}
		}
		if s := bd.SHits + bd.SReadMisses + bd.SWriteOverflows; s < 0.99 || s > 1.01 {
			t.Fatalf("%s: S ratios sum to %f", r.Workload, s)
		}
	}
	var sb strings.Builder
	tab.Render(&sb)
	if !strings.Contains(sb.String(), "S.hit") {
		t.Fatal("table malformed")
	}
}

// TestFig3CommittedMoreStable verifies the paper's core claim behind Fig. 3:
// after commit, read-miss and overflow ratios drop versus the stage phase.
func TestFig3CommittedMoreStable(t *testing.T) {
	cfg := quickConfig()
	cfg.AccessesPerCore = 6000
	rows, _ := Fig3a(cfg)
	better := 0
	for _, r := range rows {
		if r.Breakdown.CReadMisses+r.Breakdown.CWriteOverflows <
			r.Breakdown.SReadMisses+r.Breakdown.SWriteOverflows {
			better++
		}
	}
	if better < len(rows)*3/4 {
		t.Fatalf("committed blocks more stable on only %d/%d workloads", better, len(rows))
	}
}

func TestFig4PhaseStabilises(t *testing.T) {
	cfg := quickConfig()
	cfg.AccessesPerCore = 6000
	res, _ := Fig4(cfg)
	if res.Phases == 0 {
		t.Fatal("no phases sampled")
	}
	// The paper's observation: the second half of the phase has much lower
	// median MPKI than the start.
	start := res.Boxes[0].P50
	end := (res.Boxes[7].P50 + res.Boxes[8].P50 + res.Boxes[9].P50) / 3
	if end >= start {
		t.Fatalf("stage phases do not stabilise: start p50 %.1f vs end %.1f", start, end)
	}
}

func TestFig9ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	cfg := quickConfig()
	cfg.AccessesPerCore = 10000
	m, _ := Fig9(cfg)
	// Every design must beat Simple on average, and Baryon must lead. The
	// margin is loose because this test runs at a third of the default
	// access budget, before the steady state fully forms.
	if m.GeoMean[DesignBaryon] <= 1.0 {
		t.Fatalf("Baryon geomean %.3f <= Simple", m.GeoMean[DesignBaryon])
	}
	for _, d := range []string{DesignUnison, DesignDICE, DesignBaryon64B} {
		if m.GeoMean[DesignBaryon] <= m.GeoMean[d]*0.92 {
			t.Fatalf("Baryon (%.3f) well below %s (%.3f); headline shape lost",
				m.GeoMean[DesignBaryon], d, m.GeoMean[d])
		}
	}
}

func TestFig12DefaultIsReference(t *testing.T) {
	cfg := quickConfig()
	rows, _ := Fig12(cfg)
	for _, r := range rows {
		if r.Variant == "default" && r.Speedup != 1.0 {
			t.Fatalf("default variant speedup %.3f != 1", r.Speedup)
		}
		if r.MeanRangeCF < 1 || r.MeanRangeCF > 4 {
			t.Fatalf("mean CF %.2f out of range", r.MeanRangeCF)
		}
	}
}

func TestFig13SweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps in short mode")
	}
	cfg := quickConfig()
	for name, fn := range map[string]func(config.Config) ([]Fig13Row, *Table){
		"a": Fig13a, "b": Fig13b, "c": Fig13c, "d": Fig13d,
	} {
		rows, tab := fn(cfg)
		if len(rows) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("fig13%s empty", name)
		}
		for _, r := range rows {
			if r.Speedup <= 0 {
				t.Fatalf("fig13%s: %s@%s speedup %.3f", name, r.Workload, r.Point, r.Speedup)
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "x", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "note")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== x ==") || !strings.Contains(out, "note") {
		t.Fatalf("render: %s", out)
	}
}
