package experiment

import (
	"baryon/internal/config"
	"baryon/internal/trace"
)

// Fig12Variant is one compression-scheme ablation of Fig. 12.
type Fig12Variant struct {
	Name string
	Mut  func(*config.Config)
}

// Fig12Variants are the compression ablations the paper sweeps: the Z-bit
// zero-block optimisation, cacheline-aligned compression, the decompression
// latency, and (as the paper's Section III-F extra) the compressed
// fast-to-slow writeback.
func Fig12Variants() []Fig12Variant {
	return []Fig12Variant{
		{Name: "default", Mut: func(c *config.Config) {}},
		{Name: "no-zero-bit", Mut: func(c *config.Config) { c.ZeroBlockOpt = false }},
		{Name: "no-cacheline-align", Mut: func(c *config.Config) { c.CachelineAligned = false }},
		{Name: "decompress-0cy", Mut: func(c *config.Config) { c.DecompressLatency = 0 }},
		{Name: "decompress-10cy", Mut: func(c *config.Config) { c.DecompressLatency = 10 }},
		{Name: "no-compr-writeback", Mut: func(c *config.Config) { c.CompressedWriteback = false }},
	}
}

// Fig12Row is one (workload, variant) outcome.
type Fig12Row struct {
	Workload string
	Variant  string
	// Speedup is relative to the default Baryon configuration.
	Speedup float64
	// MeanRangeCF is the average quantised CF of staged ranges.
	MeanRangeCF float64
}

// Fig12 reproduces Fig. 12: the impact of the compression-scheme choices on
// performance and compression factors.
func Fig12(cfg config.Config) ([]Fig12Row, *Table) {
	var rows []Fig12Row
	t := &Table{
		Title:  "Fig 12: compression-scheme ablations (speedup vs default Baryon, mean range CF)",
		Header: []string{"workload", "variant", "speedup", "meanCF"},
		Notes: []string{
			"paper: removing the Z-bit lowers CF (2.00 -> 1.85) and costs up to 8% (YCSB-A);",
			"removing cacheline alignment raises CF but always loses 11-61% performance;",
			"5-cycle decompression costs <1%; compressed writeback is worth ~3%",
		},
	}
	workloads := trace.Representative()
	variants := Fig12Variants()
	pairs := make([]Pair, 0, len(workloads)*len(variants))
	for _, w := range workloads {
		for _, v := range variants {
			c := cfg
			v.Mut(&c)
			pairs = append(pairs, Pair{Cfg: c, Workload: w, Design: DesignBaryon})
		}
	}
	results := RunPairs(pairs)
	for wi, w := range workloads {
		var baseCycles float64
		for vi, v := range variants {
			res := results[wi*len(variants)+vi]
			if v.Name == "default" {
				baseCycles = float64(res.Cycles)
			}
			row := Fig12Row{
				Workload:    w.Name,
				Variant:     v.Name,
				Speedup:     baseCycles / float64(res.Cycles),
				MeanRangeCF: res.MeanRangeCF,
			}
			rows = append(rows, row)
			t.AddRow(w.Name, v.Name, f2(row.Speedup), f2(row.MeanRangeCF))
		}
	}
	return rows, t
}
