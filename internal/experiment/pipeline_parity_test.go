package experiment

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"baryon/internal/compress/pipeline"
)

// diffLine reports the first line where two dumps diverge.
func diffLine(t *testing.T, label string, got, want []byte) {
	t.Helper()
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("%s diverges from serial at line %d:\n got: %s\nwant: %s",
				label, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s diverges from serial in length: got %d lines, want %d", label, len(gl), len(wl))
}

// TestPipelineParityAcrossWorkerCounts pins the compression arena's
// determinism contract end to end: the full cross-design dump (every
// registered design, cache and flat schemes, all counters and histograms)
// must be byte-identical whether fit checks run serially or fanned over any
// number of workers. Run under -race this also exercises the helper pool
// for data races on the shared compressor and result slots.
func TestPipelineParityAcrossWorkerCounts(t *testing.T) {
	defer pipeline.SetDefaultWorkers(0)

	pipeline.SetDefaultWorkers(1)
	serial := designGoldenDump()

	for _, n := range []int{2, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)} {
		pipeline.SetDefaultWorkers(n)
		got := designGoldenDump()
		if !bytes.Equal(got, serial) {
			diffLine(t, fmt.Sprintf("workers=%d dump", n), got, serial)
		}
	}
}

// TestCompressWorkersConfigParity covers the per-run override: pinning
// Config.CompressWorkers must not change a run's observable result either.
func TestCompressWorkersConfigParity(t *testing.T) {
	dump := func(workers int) []byte {
		cfg := designGoldenConfig()
		cfg.CompressWorkers = workers
		var buf bytes.Buffer
		dumpDesignRun(&buf, cfg, "505.mcf_r", DesignBaryon)
		return buf.Bytes()
	}
	serial := dump(1)
	for _, n := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := dump(n); !bytes.Equal(got, serial) {
			diffLine(t, fmt.Sprintf("compressWorkers=%d run", n), got, serial)
		}
	}
}
