package experiment

import (
	"baryon/internal/config"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// EnergyRow holds the memory-system energy of one workload per design.
type EnergyRow struct {
	Workload string
	EnergyPJ map[string]float64
}

// EnergyResult summarises the Section IV-B energy comparison.
type EnergyResult struct {
	CacheRows []EnergyRow
	FlatRows  []EnergyRow
	// Savings of Baryon relative to each baseline (mean of per-workload
	// ratios): positive means Baryon uses less energy.
	SavingsVsUnison, SavingsVsDICE, SavingsVsHybrid2 float64
}

// Energy reproduces the Section IV-B energy numbers: the paper reports mean
// memory-energy reductions of 31.9% vs Unison, 13.0% vs DICE (cache mode)
// and 14.5% vs Hybrid2 (flat mode), mostly from lower slow-memory traffic.
func Energy(cfg config.Config) (EnergyResult, *Table) {
	res := EnergyResult{}
	t := &Table{
		Title:  "Section IV-B: memory-system energy (relative to Baryon = 1.0)",
		Header: []string{"workload", "Unison", "DICE", "Baryon", "Hybrid2", "Baryon-FA"},
		Notes: []string{
			"paper: Baryon saves 31.9% vs Unison, 13.0% vs DICE, 14.5% vs Hybrid2 on average",
		},
	}
	var ru, rd, rh []float64
	// Five jobs per workload: three cache-mode designs plus two flat-mode
	// designs, all independent and run through the worker pool.
	cacheDesigns := []string{DesignUnison, DesignDICE, DesignBaryon}
	flatDesigns := []string{DesignHybrid2, DesignBaryonFA}
	fcfg := cfg
	fcfg.Mode = config.ModeFlat
	workloads := trace.All()
	perW := len(cacheDesigns) + len(flatDesigns)
	pairs := make([]Pair, 0, len(workloads)*perW)
	for _, w := range workloads {
		for _, d := range cacheDesigns {
			pairs = append(pairs, Pair{Cfg: cfg, Workload: w, Design: d})
		}
		for _, d := range flatDesigns {
			pairs = append(pairs, Pair{Cfg: fcfg, Workload: w, Design: d})
		}
	}
	results := RunPairs(pairs)
	for wi, w := range workloads {
		cRow := EnergyRow{Workload: w.Name, EnergyPJ: map[string]float64{}}
		for di, d := range cacheDesigns {
			cRow.EnergyPJ[d] = results[wi*perW+di].EnergyPJ
		}
		fRow := EnergyRow{Workload: w.Name, EnergyPJ: map[string]float64{}}
		for di, d := range flatDesigns {
			fRow.EnergyPJ[d] = results[wi*perW+len(cacheDesigns)+di].EnergyPJ
		}
		res.CacheRows = append(res.CacheRows, cRow)
		res.FlatRows = append(res.FlatRows, fRow)
		b := cRow.EnergyPJ[DesignBaryon]
		fa := fRow.EnergyPJ[DesignBaryonFA]
		ru = append(ru, cRow.EnergyPJ[DesignUnison]/b)
		rd = append(rd, cRow.EnergyPJ[DesignDICE]/b)
		rh = append(rh, fRow.EnergyPJ[DesignHybrid2]/fa)
		t.AddRow(w.Name,
			f2(cRow.EnergyPJ[DesignUnison]/b), f2(cRow.EnergyPJ[DesignDICE]/b), "1.00",
			f2(fRow.EnergyPJ[DesignHybrid2]/fa), "1.00")
	}
	res.SavingsVsUnison = 1 - 1/sim.GeoMean(ru)
	res.SavingsVsDICE = 1 - 1/sim.GeoMean(rd)
	res.SavingsVsHybrid2 = 1 - 1/sim.GeoMean(rh)
	t.AddRow("mean saving", pct(res.SavingsVsUnison), pct(res.SavingsVsDICE), "-",
		pct(res.SavingsVsHybrid2), "-")
	return res, t
}
