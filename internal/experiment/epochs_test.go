package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"baryon/internal/config"
	"baryon/internal/mem"
	"baryon/internal/trace"
)

// epochTestConfig runs long enough to close several epochs.
func epochTestConfig() config.Config {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 1000
	cfg.EpochAccesses = 4000
	cfg.Seed = 1
	return cfg
}

// threeTierConfig puts the far side behind an NVM window plus a CXL
// expander, the topology whose epoch series must carry the per-tier and
// link/internal columns.
func threeTierConfig() config.Config {
	cfg := epochTestConfig()
	cfg.Tiers = []config.TierConfig{
		{Preset: "ddr4"},
		{Preset: "nvm", Bytes: 8 << 20},
		{Preset: "cxl-ibex", CXL: &mem.CXLParams{
			LinkLatencyCycles:     96,
			LinkBytesPerCycle:     8,
			InternalBytesPerCycle: 12,
			Compression:           "best",
		}},
	}
	return cfg
}

func TestEpochSeriesTwoTierOmitsTierColumns(t *testing.T) {
	w, _ := trace.ByName("505.mcf_r")
	res := RunOne(epochTestConfig(), w, DesignBaryon)
	if len(res.Epochs) == 0 {
		t.Fatal("no epochs collected")
	}
	var csvBuf bytes.Buffer
	if err := WriteEpochCSV(&csvBuf, res); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&csvBuf)
	sc.Scan()
	header := strings.Split(sc.Text(), ",")
	idx := map[string]int{}
	for i, h := range header {
		idx[h] = i
	}
	for _, col := range []string{"tierBytes", "cxlLinkBytes", "cxlInternalBytes"} {
		if _, ok := idx[col]; !ok {
			t.Fatalf("epoch CSV header lacks %q: %v", col, header)
		}
	}
	for sc.Scan() {
		f := strings.Split(sc.Text(), ",")
		if f[idx["tierBytes"]] != "" {
			t.Fatalf("two-tier epoch row has tierBytes %q", f[idx["tierBytes"]])
		}
		if f[idx["cxlLinkBytes"]] != "0" || f[idx["cxlInternalBytes"]] != "0" {
			t.Fatalf("two-tier epoch row has CXL traffic: %s", sc.Text())
		}
	}

	// The JSONL shape omits the N-tier fields entirely on two-tier runs.
	var jsonBuf bytes.Buffer
	if err := WriteEpochJSONL(&jsonBuf, res); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(jsonBuf.String(), "tierBytes") || strings.Contains(jsonBuf.String(), "cxlLinkBytes") {
		t.Fatalf("two-tier JSONL carries N-tier fields:\n%s", jsonBuf.String())
	}
}

func TestEpochSeriesThreeTierCXLColumns(t *testing.T) {
	w, _ := trace.ByName("505.mcf_r")
	res := RunOne(threeTierConfig(), w, DesignBaryon)
	if len(res.Epochs) == 0 {
		t.Fatal("no epochs collected")
	}

	var sawTier, sawLink bool
	for _, e := range res.Epochs {
		if len(e.TierBytes) != 3 {
			t.Fatalf("epoch %d: TierBytes has %d entries, want 3", e.Index, len(e.TierBytes))
		}
		var total uint64
		for _, b := range e.TierBytes {
			total += b
		}
		if total > 0 {
			sawTier = true
		}
		if e.CXLLinkBytes > 0 {
			sawLink = true
			if e.CXLInternalBytes > e.CXLLinkBytes {
				t.Fatalf("epoch %d: internal bytes %d exceed link bytes %d (compression can only shrink the internal path)",
					e.Index, e.CXLInternalBytes, e.CXLLinkBytes)
			}
		}
	}
	if !sawTier {
		t.Fatal("no epoch recorded any tier traffic")
	}
	if !sawLink {
		t.Fatal("no epoch recorded CXL link traffic on a CXL topology")
	}

	// CSV rows carry the ";"-joined breakdown and nonzero link bytes.
	var csvBuf bytes.Buffer
	if err := WriteEpochCSV(&csvBuf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	idx := map[string]int{}
	for i, h := range strings.Split(lines[0], ",") {
		idx[h] = i
	}
	var csvLink bool
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if parts := strings.Split(f[idx["tierBytes"]], ";"); len(parts) != 3 {
			t.Fatalf("tierBytes cell %q does not hold 3 tiers", f[idx["tierBytes"]])
		}
		if f[idx["cxlLinkBytes"]] != "0" {
			csvLink = true
		}
	}
	if !csvLink {
		t.Fatal("CSV series shows no CXL link traffic")
	}

	// JSONL rows decode with the same values the Epoch structs carry.
	var jsonBuf bytes.Buffer
	if err := WriteEpochJSONL(&jsonBuf, res); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&jsonBuf)
	for i := 0; dec.More(); i++ {
		var rec struct {
			TierBytes        []uint64 `json:"tierBytes"`
			CXLLinkBytes     uint64   `json:"cxlLinkBytes"`
			CXLInternalBytes uint64   `json:"cxlInternalBytes"`
		}
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.TierBytes) != 3 {
			t.Fatalf("JSONL record %d: tierBytes %v", i, rec.TierBytes)
		}
		if rec.CXLLinkBytes != res.Epochs[i].CXLLinkBytes {
			t.Fatalf("JSONL record %d: link bytes %d != epoch %d", i, rec.CXLLinkBytes, res.Epochs[i].CXLLinkBytes)
		}
	}
}
