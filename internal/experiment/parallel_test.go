package experiment

import (
	"strings"
	"testing"

	"baryon/internal/config"
	"baryon/internal/trace"
)

// parallelConfig is smaller than quickConfig: the determinism tests run the
// same grid twice (serial and parallel) and under -race.
func parallelConfig() config.Config {
	cfg := quickConfig()
	cfg.AccessesPerCore = 800
	return cfg
}

func TestParallelismClamp(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(-3)
	if Parallelism() < 1 {
		t.Fatalf("Parallelism()=%d after negative set", Parallelism())
	}
	SetParallelism(7)
	if Parallelism() != 7 {
		t.Fatalf("Parallelism()=%d, want 7", Parallelism())
	}
}

// TestRunPairsDeterministic asserts the tentpole guarantee: the parallel
// engine produces byte-for-byte the results of serial execution, slotted in
// submission order regardless of completion order.
func TestRunPairsDeterministic(t *testing.T) {
	defer SetParallelism(0)
	cfg := parallelConfig()
	workloads := trace.Representative()
	designs := []string{DesignUnison, DesignDICE, DesignBaryon}
	var pairs []Pair
	for _, w := range workloads {
		for _, d := range designs {
			pairs = append(pairs, Pair{Cfg: cfg, Workload: w, Design: d})
		}
	}

	SetParallelism(1)
	serial := RunPairs(pairs)
	SetParallelism(4)
	parallel := RunPairs(pairs)

	if len(serial) != len(parallel) {
		t.Fatalf("result count: serial=%d parallel=%d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Workload != p.Workload || s.Design != p.Design {
			t.Fatalf("pair %d: slot order differs: serial=%s/%s parallel=%s/%s",
				i, s.Workload, s.Design, p.Workload, p.Design)
		}
		if s.Cycles != p.Cycles || s.Instructions != p.Instructions ||
			s.FastServeRate != p.FastServeRate || s.BloatFactor != p.BloatFactor ||
			s.EnergyPJ != p.EnergyPJ {
			t.Errorf("pair %d (%s/%s): serial and parallel results differ:\nserial:   %+v\nparallel: %+v",
				i, s.Workload, s.Design, s, p)
		}
		if s.Stats.String() != p.Stats.String() {
			t.Errorf("pair %d (%s/%s): stats differ", i, s.Workload, s.Design)
		}
	}
}

// TestFig9TableDeterministic renders a full figure twice — serially and with
// four workers — and requires the rendered tables to match exactly.
func TestFig9TableDeterministic(t *testing.T) {
	defer SetParallelism(0)
	cfg := parallelConfig()

	render := func() string {
		_, tab := Fig9(cfg)
		var sb strings.Builder
		tab.Render(&sb)
		return sb.String()
	}
	SetParallelism(1)
	serial := render()
	SetParallelism(4)
	parallel := render()
	if serial != parallel {
		t.Fatalf("Fig9 table differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
