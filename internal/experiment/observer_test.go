package experiment

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"baryon/internal/trace"
)

// observerPairs is a small grid the observer tests run repeatedly.
func observerPairs(cfg, n int) []Pair {
	c := parallelConfig()
	c.AccessesPerCore = cfg
	w, _ := trace.ByName("505.mcf_r")
	pairs := make([]Pair, n)
	for i := range pairs {
		c.Seed = uint64(i + 1)
		pairs[i] = Pair{Cfg: c, Workload: w, Design: DesignBaryon}
	}
	return pairs
}

// TestPairObserverMultipleOwners is the regression test for the old
// process-global SetPairObserver: two owners observe the same runs without
// clobbering each other, and removing one leaves the other installed.
func TestPairObserverMultipleOwners(t *testing.T) {
	var a, b atomic.Uint64
	ha := AddPairObserver(func(Pair, PairResult) { a.Add(1) })
	hb := AddPairObserver(func(Pair, PairResult) { b.Add(1) })
	defer ha.Remove()
	defer hb.Remove()

	pairs := observerPairs(400, 3)
	for _, pr := range RunPairsCtx(context.Background(), pairs) {
		if pr.Err != nil {
			t.Fatal(pr.Err)
		}
	}
	if a.Load() != 3 || b.Load() != 3 {
		t.Fatalf("observer counts a=%d b=%d, want 3 each", a.Load(), b.Load())
	}

	ha.Remove()
	for _, pr := range RunPairsCtx(context.Background(), pairs) {
		if pr.Err != nil {
			t.Fatal(pr.Err)
		}
	}
	if a.Load() != 3 {
		t.Fatalf("removed observer still fired: a=%d", a.Load())
	}
	if b.Load() != 6 {
		t.Fatalf("surviving observer missed runs: b=%d, want 6", b.Load())
	}
	// Remove is idempotent and a nil add is a safe no-op handle.
	ha.Remove()
	AddPairObserver(nil).Remove()
}

// TestPairObserverConcurrentOwners churns observer registration from many
// goroutines while runs execute — the -race regression for the registry's
// copy-on-write snapshot.
func TestPairObserverConcurrentOwners(t *testing.T) {
	pairs := observerPairs(200, 2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n atomic.Uint64
			for i := 0; i < 5; i++ {
				h := AddPairObserver(func(Pair, PairResult) { n.Add(1) })
				for _, pr := range RunPairsCtx(context.Background(), pairs) {
					if pr.Err != nil {
						t.Errorf("run: %v", pr.Err)
					}
				}
				h.Remove()
			}
			// Each owner sees at least its own runs; concurrent owners' runs
			// may add more.
			if n.Load() < uint64(5*len(pairs)) {
				t.Errorf("observer saw %d pairs, want >= %d", n.Load(), 5*len(pairs))
			}
		}()
	}
	wg.Wait()
}
