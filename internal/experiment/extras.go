package experiment

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/metadata"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// The experiments in this file go beyond the paper's figures: they cover
// the discussion points of Section III-F (higher associativities), the
// sub-block size trade-off beyond the two points the paper evaluates, the
// remap cache sizing claim (">90% hit rates" with 32 kB), and the
// orthogonal-compressor claim (Section III-B: "alternative schemes can also
// be used") via the optional C-Pack algorithm.

// AssocSweep sweeps the fast-memory associativity (the paper fixes 4 and
// discusses higher associativities in Section III-F; fully-associative is
// the Baryon-FA variant of Fig. 10).
func AssocSweep(cfg config.Config) ([]Fig13Row, *Table) {
	points := []string{"2", "4", "8", "FA"}
	return sweepTable(cfg,
		"Extra: fast-memory associativity (Section III-F discussion)",
		[]string{"higher associativity reduces conflicts at higher metadata cost"},
		points,
		func(c *config.Config, p string) {
			if p == "FA" {
				c.FullyAssociative = true
				return
			}
			fmt.Sscanf(p, "%d", &c.Assoc)
		},
		"4")
}

// SubBlockSweep sweeps the sub-block size: the paper evaluates 256 B
// (default) and 64 B (Baryon-64B); 128 B completes the trade-off curve.
// Geometry keeps eight sub-blocks per block, so the block size scales too.
func SubBlockSweep(cfg config.Config) ([]Fig13Row, *Table) {
	points := []string{"64B", "128B", "256B"}
	return sweepTable(cfg,
		"Extra: sub-block size trade-off (Section III-B)",
		[]string{"smaller sub-blocks reduce overfetch, larger amortise metadata;",
			"the paper picks 256 B; xz-like low-locality workloads prefer 64 B"},
		points,
		func(c *config.Config, p string) {
			switch p {
			case "64B":
				c.BlockBytes, c.SubBlockBytes = 512, 64
			case "128B":
				c.BlockBytes, c.SubBlockBytes = 1024, 128
			case "256B":
				c.BlockBytes, c.SubBlockBytes = 2048, 256
			}
		},
		"256B")
}

// CPackRow compares the default FPC+BDI pairing against adding C-Pack.
type CPackRow struct {
	Workload        string
	Speedup         float64 // with C-Pack, relative to FPC+BDI
	MeanCFDefault   float64
	MeanCFWithCPack float64
}

// CompressorComparison evaluates the orthogonal-compressor claim: adding
// C-Pack to the best-of selection should shift CFs slightly without
// changing the design's behaviour.
func CompressorComparison(cfg config.Config) ([]CPackRow, *Table) {
	var rows []CPackRow
	t := &Table{
		Title:  "Extra: compressor choice (FPC+BDI vs FPC+BDI+C-Pack)",
		Header: []string{"workload", "speedup", "meanCF", "meanCF+cpack"},
		Notes:  []string{"the paper: exact algorithm choices are orthogonal to the design"},
	}
	c2 := cfg
	c2.UseCPack = true
	workloads := trace.Representative()
	pairs := make([]Pair, 0, 2*len(workloads))
	for _, w := range workloads {
		pairs = append(pairs,
			Pair{Cfg: cfg, Workload: w, Design: DesignBaryon},
			Pair{Cfg: c2, Workload: w, Design: DesignBaryon})
	}
	results := RunPairs(pairs)
	for wi, w := range workloads {
		base, with := results[2*wi], results[2*wi+1]
		row := CPackRow{
			Workload:        w.Name,
			Speedup:         float64(base.Cycles) / float64(with.Cycles),
			MeanCFDefault:   base.MeanRangeCF,
			MeanCFWithCPack: with.MeanRangeCF,
		}
		rows = append(rows, row)
		t.AddRow(w.Name, f2(row.Speedup), f2(row.MeanCFDefault), f2(row.MeanCFWithCPack))
	}
	return rows, t
}

// RemapCacheRow reports one remap-cache configuration's hit rate.
type RemapCacheRow struct {
	Workload string
	Sets     int
	HitRate  float64
}

// RemapCacheSweep validates the Section III-B sizing claim: the 32 kB remap
// cache (256 sets x 8 ways) achieves typical hit rates over 90%; smaller
// caches degrade.
func RemapCacheSweep(cfg config.Config) ([]RemapCacheRow, *Table) {
	var rows []RemapCacheRow
	t := &Table{
		Title:  "Extra: remap cache sizing (Section III-B: >90% hit rates at 32 kB)",
		Header: []string{"workload", "sets=32", "sets=64", "sets=128", "sets=256"},
	}
	setPoints := []int{32, 64, 128, 256}
	workloads := trace.Representative()
	pairs := make([]Pair, 0, len(workloads)*len(setPoints))
	for _, w := range workloads {
		for _, sets := range setPoints {
			c := cfg
			c.RemapCacheSets = sets
			pairs = append(pairs, Pair{Cfg: c, Workload: w, Design: DesignBaryon})
		}
	}
	results := RunPairs(pairs)
	for wi, w := range workloads {
		cells := []string{w.Name}
		for si, sets := range setPoints {
			hr := results[wi*len(setPoints)+si].RemapCacheHitRate
			rows = append(rows, RemapCacheRow{Workload: w.Name, Sets: sets, HitRate: hr})
			cells = append(cells, pct(hr))
		}
		t.AddRow(cells...)
	}
	return rows, t
}

// SlowMemSweep evaluates Baryon's sensitivity to the slow-memory
// technology: the paper's Table I NVM versus Optane-like and PCM-like
// presets. The speed gap between the tiers is the resource Baryon manages,
// so a slower bottom tier should widen its absolute cycle counts while the
// mechanisms stay effective.
func SlowMemSweep(cfg config.Config) ([]Fig13Row, *Table) {
	points := []string{"nvm", "optane", "pcm"}
	return sweepTable(cfg,
		"Extra: slow-memory technology sensitivity",
		[]string{"values are speedups relative to the Table I NVM (slower devices < 1)"},
		points,
		func(c *config.Config, p string) { c.SlowMemory = p },
		"nvm")
}

// PrefetchAblation toggles the memory-to-LLC prefetching of Section III-E
// (installing decompression by-products in the LLC), which the paper
// credits with up to 5% LLC hit-rate improvement.
func PrefetchAblation(cfg config.Config) ([]Fig13Row, *Table) {
	points := []string{"prefetch-on", "prefetch-off"}
	return sweepTable(cfg,
		"Extra: memory-to-LLC prefetch ablation (Section III-E)",
		[]string{"paper: bandwidth-free prefetch raises LLC hit rate by up to 5%"},
		points,
		func(c *config.Config, p string) { c.NoLLCPrefetch = p == "prefetch-off" },
		"prefetch-on")
}

// DDRFidelitySweep compares the busy-until fast-memory model against the
// protocol-level DDR4 engine (tRCD/tRP/tFAW/refresh): the shape of the
// results should be model-independent, which this sweep lets users verify.
func DDRFidelitySweep(cfg config.Config) ([]Fig13Row, *Table) {
	points := []string{"busy-until", "protocol"}
	return sweepTable(cfg,
		"Extra: fast-memory timing-model fidelity",
		[]string{"speedups relative to the busy-until model; shape should hold across models"},
		points,
		func(c *config.Config, p string) { c.DetailedDDR = p == "protocol" },
		"busy-until")
}

// OSvsHWRow compares the OS-paging baseline against the hardware designs.
type OSvsHWRow struct {
	Workload string
	Speedup  map[string]float64 // over OSPaging
}

// OSvsHW quantifies the Section II-A argument for hardware-based
// management: OS page migration adapts slowly (epochs), at coarse
// granularity (4 kB), and with software overheads, so the hardware designs
// should beat it broadly.
func OSvsHW(cfg config.Config) ([]OSvsHWRow, *Table) {
	designs := []string{DesignOSPaging, DesignUnison, DesignBaryon}
	var rows []OSvsHWRow
	t := &Table{
		Title:  "Extra: OS-based vs hardware-based management (Section II-A)",
		Header: []string{"workload", "OSPaging", "UnisonCache", "Baryon"},
		Notes:  []string{"speedups over the OS-paging baseline"},
	}
	workloads := trace.Representative()
	grid := RunMatrix(cfg, workloads, designs)
	for wi, w := range workloads {
		row := OSvsHWRow{Workload: w.Name, Speedup: map[string]float64{}}
		var base float64
		cells := []string{w.Name}
		for di, d := range designs {
			res := grid[wi][di]
			if d == DesignOSPaging {
				base = float64(res.Cycles)
			}
			row.Speedup[d] = base / float64(res.Cycles)
			cells = append(cells, f2(row.Speedup[d]))
		}
		rows = append(rows, row)
		t.AddRow(cells...)
	}
	return rows, t
}

// MetadataBudget computes the dual-format storage accounting of Section
// III-B/C for an arbitrary configuration, exposed for tests and tools.
type MetadataBudget struct {
	StageTagArrayBytes uint64
	RemapTableBytes    uint64
	RemapCacheBytes    uint64
	TotalSRAMBytes     uint64
	TableFraction      float64 // remap table / total memory capacity
}

// Budget returns the metadata budget of cfg.
func Budget(cfg config.Config) MetadataBudget {
	rc := metadata.NewRemapCache(cfg.RemapCacheSets, cfg.RemapCacheWays, sim.NewStats())
	b := MetadataBudget{
		StageTagArrayBytes: cfg.StageTagArrayBytes(),
		RemapTableBytes:    cfg.RemapTableBytes(),
		RemapCacheBytes:    uint64(rc.StorageBytes()),
	}
	b.TotalSRAMBytes = b.StageTagArrayBytes + b.RemapCacheBytes
	b.TableFraction = float64(b.RemapTableBytes) / float64(cfg.FastBytes+cfg.SlowBytes)
	return b
}
