package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"baryon/internal/config"
	"baryon/internal/trace"
)

// designGoldenConfig is the fixed configuration behind the cross-design
// golden file. Like goldenConfig it must never change: the dump below is the
// byte-identity witness that porting controllers onto the shared kit (the
// hybrid.Dir/Replacer/Engine layer) did not alter any controller's
// behaviour, down to individual counter values and latency histograms.
func designGoldenConfig() config.Config {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 1500
	cfg.Seed = 1
	return cfg
}

// designGoldenRuns lists every (design, mode) pair the golden file pins:
// all cache-scheme designs plus the flat-scheme variants.
func designGoldenRuns() []struct {
	design string
	mode   config.Mode
} {
	return []struct {
		design string
		mode   config.Mode
	}{
		{DesignSimple, config.ModeCache},
		{DesignUnison, config.ModeCache},
		{DesignDICE, config.ModeCache},
		{DesignBaryon, config.ModeCache},
		{DesignBaryon64B, config.ModeCache},
		{DesignHybrid2, config.ModeCache},
		{DesignOSPaging, config.ModeCache},
		{DesignBaryon, config.ModeFlat},
		{DesignBaryonFA, config.ModeFlat},
		{DesignHybrid2, config.ModeFlat},
	}
}

// dumpDesignRun renders one run's full observable state: headline metrics,
// every counter, every float accumulator and every histogram, with names
// sorted so the dump pins values rather than registration order.
func dumpDesignRun(buf *bytes.Buffer, cfg config.Config, workload, design string) {
	w, ok := trace.ByName(workload)
	if !ok {
		panic("designgolden: unknown workload " + workload)
	}
	res := RunOne(cfg, w, design)
	fmt.Fprintf(buf, "== design=%s mode=%s workload=%s\n", design, cfg.Mode, workload)
	fmt.Fprintf(buf, "cycles=%d instructions=%d\n", res.Cycles, res.Instructions)
	fmt.Fprintf(buf, "fastServeRate=%.6f bloatFactor=%.6f\n", res.FastServeRate, res.BloatFactor)
	fmt.Fprintf(buf, "fastBytes=%d slowBytes=%d energyPJ=%.1f\n", res.FastBytes, res.SlowBytes, res.EnergyPJ)
	fmt.Fprintf(buf, "meanRangeCF=%.6f remapCacheHitRate=%.6f\n", res.MeanRangeCF, res.RemapCacheHitRate)

	names := res.Stats.Names()
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(buf, "counter %s=%d\n", name, res.Stats.Get(name))
	}
	fnames := res.Stats.FloatNames()
	sort.Strings(fnames)
	for _, name := range fnames {
		fmt.Fprintf(buf, "float %s=%.3f\n", name, res.Stats.GetFloat(name))
	}
	hnames := res.Stats.HistNames()
	sort.Strings(hnames)
	for _, name := range hnames {
		h := res.Stats.GetHistogram(name)
		fmt.Fprintf(buf, "hist %s count=%d sum=%d max=%d\n", name, h.Count(), h.Sum(), h.Max())
	}
}

// designGoldenDump renders the full cross-design dump: every (design, mode)
// pair over two workloads with different write ratios and value mixes.
func designGoldenDump() []byte {
	var buf bytes.Buffer
	for _, workload := range []string{"505.mcf_r", "YCSB-A"} {
		for _, run := range designGoldenRuns() {
			cfg := designGoldenConfig()
			cfg.Mode = run.mode
			dumpDesignRun(&buf, cfg, workload, run.design)
		}
	}
	return buf.Bytes()
}

// TestDesignsGolden locks every controller's observable behaviour across
// both schemes. The refactor that moved all controllers onto the shared
// hybrid kit (directory, replacement policies, migration engine) was
// performed under this pin; any future restructuring must keep it green or
// regenerate deliberately with
//
//	go test ./internal/experiment -run DesignsGolden -update-golden
func TestDesignsGolden(t *testing.T) {
	path := filepath.Join("testdata", "designs_quick.golden")
	got := designGoldenDump()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		n := len(gl)
		if len(wl) < n {
			n = len(wl)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("design dump diverges from golden at line %d:\n got: %s\nwant: %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("design dump diverges from golden in length: got %d lines, want %d", len(gl), len(wl))
	}
}
