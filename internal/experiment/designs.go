// Package experiment regenerates every table and figure of the paper's
// evaluation (Section IV): the Fig. 3 stage-area access breakdowns, the
// Fig. 4 stage-phase stability distributions, the Fig. 9/10 performance
// comparisons, the Fig. 11 serve-rate and bandwidth-bloat analysis, the
// Fig. 12 compression ablations, the Fig. 13 design-parameter sweeps, the
// Table I configuration/budget summary, and the Section IV-B energy
// comparison. Each harness prints the same rows/series the paper reports.
package experiment

import (
	"baryon/internal/baselines"
	"baryon/internal/config"
	"baryon/internal/core"
	"baryon/internal/cpu"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// Design names used throughout the harnesses.
const (
	DesignSimple    = "Simple"
	DesignUnison    = "UnisonCache"
	DesignDICE      = "DICE"
	DesignBaryon    = "Baryon"
	DesignBaryon64B = "Baryon-64B"
	DesignBaryonFA  = "Baryon-FA"
	DesignHybrid2   = "Hybrid2"
	DesignOSPaging  = "OSPaging"
)

// Designs lists every design name Factory accepts.
func Designs() []string {
	return []string{DesignSimple, DesignUnison, DesignDICE, DesignBaryon,
		DesignBaryon64B, DesignBaryonFA, DesignHybrid2, DesignOSPaging}
}

// IsDesign reports whether name is a design Factory accepts, letting tools
// validate user input up front instead of panicking mid-run.
func IsDesign(name string) bool {
	for _, d := range Designs() {
		if d == name {
			return true
		}
	}
	return false
}

// Factory returns the controller factory for a design name. The baselines
// get the full fast-memory capacity (they reserve no stage area); Baryon
// variants follow cfg.
func Factory(design string) cpu.ControllerFactory {
	switch design {
	case DesignSimple:
		return func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewSimple(cfg.FastBytes/hybrid.BlockSize, cfg.Assoc, store, stats)
		}
	case DesignUnison:
		return func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewUnison(cfg.FastBytes/hybrid.BlockSize, cfg.Assoc, store, stats, cfg.Seed)
		}
	case DesignDICE:
		return func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewDICE(cfg.FastBytes, store, stats, cfg.DecompressLatency)
		}
	case DesignBaryon:
		return func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return core.New(cfg, store, stats)
		}
	case DesignBaryon64B:
		return func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			cfg.BlockBytes = 512
			cfg.SubBlockBytes = 64
			return core.New(cfg, store, stats)
		}
	case DesignBaryonFA:
		return func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			cfg.FullyAssociative = true
			cfg.Mode = config.ModeFlat
			return core.New(cfg, store, stats)
		}
	case DesignHybrid2:
		return func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewHybrid2(cfg, store, stats)
		}
	case DesignOSPaging:
		return func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewOSPaging(cfg.FastBytes, store, stats)
		}
	}
	panic("experiment: unknown design " + design)
}

// RunOne executes one (workload, design) pair and returns its metrics.
func RunOne(cfg config.Config, w trace.Workload, design string) cpu.Result {
	r := cpu.NewRunner(cfg, w, Factory(design))
	res := r.Run()
	res.Design = design
	return res
}
