// Package experiment regenerates every table and figure of the paper's
// evaluation (Section IV): the Fig. 3 stage-area access breakdowns, the
// Fig. 4 stage-phase stability distributions, the Fig. 9/10 performance
// comparisons, the Fig. 11 serve-rate and bandwidth-bloat analysis, the
// Fig. 12 compression ablations, the Fig. 13 design-parameter sweeps, the
// Table I configuration/budget summary, and the Section IV-B energy
// comparison. Each harness prints the same rows/series the paper reports.
package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"baryon/internal/baselines"
	"baryon/internal/config"
	"baryon/internal/core"
	"baryon/internal/cpu"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// Design names used throughout the harnesses.
const (
	DesignSimple    = "Simple"
	DesignUnison    = "UnisonCache"
	DesignDICE      = "DICE"
	DesignBaryon    = "Baryon"
	DesignBaryon64B = "Baryon-64B"
	DesignBaryonFA  = "Baryon-FA"
	DesignHybrid2   = "Hybrid2"
	DesignOSPaging  = "OSPaging"
	// Three-tier variants: the same controllers over the DRAM + NVM +
	// CXL-expander topology (see cxlTiers).
	DesignBaryonCXL = "Baryon-CXL"
	DesignUnisonCXL = "UnisonCache-CXL"
	DesignDICECXL   = "DICE-CXL"
)

// cxlTiers is the canonical DRAM+NVM+CXL topology the three-tier built-ins
// share: the lower 8 MB of the canonical far space stays on NVM and the
// remainder spills to a CXL-attached DRAM expander behind a flit link. The
// window is deliberately smaller than the workloads' footprints (tens of MB
// at the scaled config) so both far tiers see real traffic. Each call
// returns a fresh slice so one design's overrides can never alias
// another's.
func cxlTiers() *[]config.TierConfig {
	return config.Ptr([]config.TierConfig{
		{Preset: "ddr4"},
		{Preset: "nvm", Bytes: 8 << 20},
		{Preset: "cxl-dram"},
	})
}

// Controller kinds a DesignSpec can name. A kind selects the controller
// implementation; everything else about a design is configuration.
const (
	KindSimple   = "simple"
	KindUnison   = "unison"
	KindDICE     = "dice"
	KindBaryon   = "baryon"
	KindHybrid2  = "hybrid2"
	KindOSPaging = "ospaging"
)

// PolicySpec holds controller policy knobs that are not Config fields.
type PolicySpec struct {
	// Replacement selects the replacement policy for kinds that expose one
	// (simple, unison): "", "lru", "fifo", "random" or "two-level". Empty
	// keeps the kind's default.
	Replacement string `json:"replacement,omitempty"`
}

// DesignSpec is the declarative definition of a design: a name, a
// controller kind, the configuration overrides that distinguish it from the
// base config, and policy knobs. Every design the harnesses and commands
// run — built-in or loaded from a -design-file — is one of these; there is
// no hardcoded design switch anywhere else.
type DesignSpec struct {
	Name      string           `json:"name"`
	Kind      string           `json:"kind"`
	Overrides config.Overrides `json:"overrides,omitempty"`
	Policy    PolicySpec       `json:"policy,omitempty"`
}

// builtinSpecs declares the paper's designs. The baselines get the full
// fast-memory capacity (they reserve no stage area); Baryon variants are
// the baryon kind plus the overrides the paper names them by.
var builtinSpecs = []DesignSpec{
	{Name: DesignSimple, Kind: KindSimple},
	{Name: DesignUnison, Kind: KindUnison},
	{Name: DesignDICE, Kind: KindDICE},
	{Name: DesignBaryon, Kind: KindBaryon},
	{Name: DesignBaryon64B, Kind: KindBaryon, Overrides: config.Overrides{
		BlockBytes:    config.Ptr[uint64](512),
		SubBlockBytes: config.Ptr[uint64](64),
	}},
	{Name: DesignBaryonFA, Kind: KindBaryon, Overrides: config.Overrides{
		FullyAssociative: config.Ptr(true),
		Mode:             config.Ptr("flat"),
	}},
	{Name: DesignHybrid2, Kind: KindHybrid2},
	{Name: DesignOSPaging, Kind: KindOSPaging},
	{Name: DesignBaryonCXL, Kind: KindBaryon, Overrides: config.Overrides{Tiers: cxlTiers()}},
	{Name: DesignUnisonCXL, Kind: KindUnison, Overrides: config.Overrides{Tiers: cxlTiers()}},
	{Name: DesignDICECXL, Kind: KindDICE, Overrides: config.Overrides{Tiers: cxlTiers()}},
}

var registry = struct {
	sync.RWMutex
	specs map[string]DesignSpec
	order []string
}{specs: make(map[string]DesignSpec)}

func init() {
	for _, s := range builtinSpecs {
		if err := Register(s); err != nil {
			panic(err)
		}
	}
}

// Register adds a design to the registry. It rejects empty or duplicate
// names, unknown kinds, and unknown replacement-policy names, so a bad
// -design-file fails at load time rather than mid-run.
func Register(spec DesignSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("experiment: design spec has no name")
	}
	switch spec.Kind {
	case KindSimple, KindUnison, KindDICE, KindBaryon, KindHybrid2, KindOSPaging:
	default:
		return fmt.Errorf("experiment: design %q has unknown kind %q (want %s)",
			spec.Name, spec.Kind, strings.Join(Kinds(), ", "))
	}
	if _, ok := hybrid.ReplacerByName(spec.Policy.Replacement, 0); !ok {
		return fmt.Errorf("experiment: design %q has unknown replacement policy %q",
			spec.Name, spec.Policy.Replacement)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.specs[spec.Name]; dup {
		return fmt.Errorf("experiment: design %q already registered", spec.Name)
	}
	registry.specs[spec.Name] = spec
	registry.order = append(registry.order, spec.Name)
	return nil
}

// Kinds lists the controller kinds Register accepts.
func Kinds() []string {
	return []string{KindSimple, KindUnison, KindDICE, KindBaryon, KindHybrid2, KindOSPaging}
}

// Designs lists every registered design name: the built-ins in declaration
// order, then any loaded designs in registration order.
func Designs() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	return out
}

// Lookup returns the registered spec for a design name.
func Lookup(name string) (DesignSpec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.specs[name]
	return s, ok
}

// IsDesign reports whether name is a registered design, letting tools
// validate user input up front instead of panicking mid-run.
func IsDesign(name string) bool {
	_, ok := Lookup(name)
	return ok
}

// UnknownDesignError formats the standard rejection for an unregistered
// design name, listing every registered name (shared by the commands so the
// error reads the same everywhere).
func UnknownDesignError(name string) error {
	known := Designs()
	sorted := make([]string, len(known))
	copy(sorted, known)
	sort.Strings(sorted)
	return fmt.Errorf("unknown design %q; registered designs: %s",
		name, strings.Join(sorted, ", "))
}

// LoadSpecFile reads a DesignSpec from a JSON file (the -design-file
// format) and registers it. It returns the spec so callers can run it by
// name.
func LoadSpecFile(path string) (DesignSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return DesignSpec{}, err
	}
	var spec DesignSpec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return DesignSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := Register(spec); err != nil {
		return DesignSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// SaveSpecFile writes a DesignSpec as indented JSON, the format
// LoadSpecFile reads back.
func SaveSpecFile(path string, spec DesignSpec) error {
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateSpec checks the parts of a spec that Register cannot see because
// they depend on the run configuration: the overrides must apply cleanly to
// the base config, and the policy knobs must be supported by the kind. The
// Ctx runners call it before building a controller so a bad spec surfaces as
// a per-pair error instead of a mid-run panic.
func ValidateSpec(spec DesignSpec, cfg config.Config) error {
	if err := spec.Overrides.Apply(&cfg); err != nil {
		return fmt.Errorf("experiment: design %q: %w", spec.Name, err)
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("experiment: design %q: %w", spec.Name, err)
	}
	if spec.Policy.Replacement != "" && spec.Kind != KindSimple && spec.Kind != KindUnison {
		return fmt.Errorf("experiment: design %q: kind %q has no replacement-policy knob",
			spec.Name, spec.Kind)
	}
	return nil
}

// FactorySpec returns the controller factory for a spec: it applies the
// spec's config overrides, builds the kind's controller on the shared kit,
// applies the policy knobs, and arms fault injection when the (overridden)
// config asks for it. The panics below are programmer-error invariants —
// Register and ValidateSpec reject every user-reachable bad spec first —
// and the harness's per-pair panic isolation contains them regardless.
func FactorySpec(spec DesignSpec) cpu.ControllerFactory {
	return func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
		if err := spec.Overrides.Apply(&cfg); err != nil {
			panic("experiment: design " + spec.Name + ": " + err.Error())
		}
		ctrl := buildKind(spec, cfg, store, stats)
		if spec.Policy.Replacement != "" {
			applyReplacement(spec, ctrl, cfg.Seed)
		}
		if ep, ok := ctrl.(hybrid.EngineProvider); ok {
			if cfg.Fault.Enabled() {
				ep.Engine().EnableFaults(cfg.Fault, cfg.Seed)
			}
			// CXL expander-side compression estimates over the canonical
			// store content; on topologies without a CXL tier the probe is
			// never consulted and the attach is a no-op.
			ep.Engine().SetContentProbe(func(addr, size uint64) []byte {
				return store.Line(addr)
			})
		}
		return ctrl
	}
}

func buildKind(spec DesignSpec, cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
	// The tier list reaches every kind: Baryon/Hybrid2 resolve it inside
	// core.New from the config; the other baselines take it directly. An
	// empty Tiers section yields the canonical two-tier list, whose specs
	// the baselines' nil-default matches device-for-device — but resolving
	// it here (rather than passing nil) keeps SlowMemory/DetailedDDR
	// honoured uniformly across kinds.
	tiers, err := cfg.TierSpecs()
	if err != nil {
		panic("experiment: design " + spec.Name + ": " + err.Error())
	}
	switch spec.Kind {
	case KindSimple:
		return baselines.NewSimple(cfg.FastBytes/hybrid.BlockSize, cfg.Assoc, store, stats, tiers)
	case KindUnison:
		return baselines.NewUnison(cfg.FastBytes/hybrid.BlockSize, cfg.Assoc, store, stats, cfg.Seed, tiers)
	case KindDICE:
		return baselines.NewDICE(cfg.FastBytes, store, stats, cfg.DecompressLatency, tiers)
	case KindBaryon:
		return core.New(cfg, store, stats)
	case KindHybrid2:
		return baselines.NewHybrid2(cfg, store, stats)
	case KindOSPaging:
		return baselines.NewOSPaging(cfg.FastBytes, store, stats, tiers)
	}
	panic("experiment: unknown kind " + spec.Kind)
}

// applyReplacement wires the spec's replacement policy into controllers
// that expose one via SetReplacer.
func applyReplacement(spec DesignSpec, ctrl hybrid.Controller, seed uint64) {
	r, ok := hybrid.ReplacerByName(spec.Policy.Replacement, seed)
	if !ok {
		panic("experiment: design " + spec.Name + ": unknown replacement policy " + spec.Policy.Replacement)
	}
	s, ok := ctrl.(interface{ SetReplacer(hybrid.Replacer) })
	if !ok {
		panic("experiment: design " + spec.Name + ": kind " + spec.Kind + " has no replacement-policy knob")
	}
	s.SetReplacer(r)
}

// Factory returns the controller factory for a registered design name.
func Factory(design string) cpu.ControllerFactory {
	spec, ok := Lookup(design)
	if !ok {
		panic("experiment: unknown design " + design)
	}
	return FactorySpec(spec)
}

// RunOne executes one (workload, design) pair and returns its metrics.
func RunOne(cfg config.Config, w trace.Workload, design string) cpu.Result {
	r := cpu.NewRunner(cfg, w, Factory(design))
	res := r.Run()
	res.Design = design
	return res
}

// RunOneCtx is RunOne with error reporting and cooperative cancellation: an
// unknown design or an invalid spec returns an error instead of panicking,
// and a cancelled ctx stops the replay and returns the partial metrics with
// ctx's error. With a background context the result is bit-identical to
// RunOne.
func RunOneCtx(ctx context.Context, cfg config.Config, w trace.Workload, design string) (cpu.Result, error) {
	return RunPairCtx(ctx, Pair{Cfg: cfg, Workload: w, Design: design})
}
