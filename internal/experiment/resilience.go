package experiment

import (
	"fmt"
	"strconv"

	"baryon/internal/config"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// ResilienceRow is one (design, raw bit error rate) cell of the resilience
// experiment.
type ResilienceRow struct {
	Workload string
	Design   string
	// BER is the injected transient raw bit error rate on the slow device.
	BER float64
	// CleanServe is the fraction of checked 64 B slow-memory lines that read
	// back without any ECC event: 1 - (corrected+uncorrectable)/checked.
	// With injection off it is 1 by definition. It degrades monotonically as
	// BER ramps — the experiment's headline series.
	CleanServe float64
	// Corrected/Uncorrectable/Remaps are the run's ECC event totals.
	Corrected, Uncorrectable, Remaps uint64
	// FastServeRate and P99 show how the degradation path feeds back into
	// the paper's headline metrics (retries consume slow-device bandwidth
	// and inflate the tail).
	FastServeRate float64
	P99           float64
}

// ResilienceBERs is the injected raw-bit-error-rate ramp.
var ResilienceBERs = []float64{0, 1e-6, 1e-5, 1e-4, 1e-3}

// ResilienceDesigns is the analysis set: the Fig. 11 comparison designs, so
// degradation lands on the same systems the serve-rate analysis uses.
var ResilienceDesigns = []string{DesignUnison, DesignDICE, DesignBaryon}

// Resilience measures graceful degradation under injected NVM read errors:
// for each design it ramps the slow device's transient raw bit error rate
// with a 2-bit-correcting ECC and reports the clean-serve rate, the ECC
// event totals, and the feedback into serve rate and tail latency. Runs are
// deterministic per (cfg.Seed, fault seed); the BER=0 column doubles as a
// fault-off control, byte-identical to a run without the fault subsystem.
func Resilience(cfg config.Config) ([]ResilienceRow, *Table) {
	w := trace.Representative()[0]
	pairs := make([]Pair, 0, len(ResilienceDesigns)*len(ResilienceBERs))
	for _, d := range ResilienceDesigns {
		for _, ber := range ResilienceBERs {
			c := cfg
			c.Fault.Slow.BER = ber
			c.Fault.ECCCorrectBits = 2
			pairs = append(pairs, Pair{Cfg: c, Workload: w, Design: d})
		}
	}
	results := RunPairs(pairs)

	var rows []ResilienceRow
	t := &Table{
		Title:  "Resilience: degradation vs slow-memory raw bit error rate (" + w.Name + ", ECC t=2)",
		Header: []string{"design", "ber", "cleanServe", "corrected", "uncorr", "remaps", "fastServeRate", "memLatP99"},
		Notes: []string{
			"cleanServe = 1 - (corrected+uncorrectable)/checked over slow-device 64B line reads;",
			"corrected errors retry with a penalty, uncorrectable errors remap the line to a spare;",
			"ber 0 is the fault-off control (identical to a run without injection)",
		},
	}
	for i, res := range results {
		p := pairs[i]
		checked := sumFaultCounter(res.Stats, "checked")
		corrected := sumFaultCounter(res.Stats, "corrected")
		uncorr := sumFaultCounter(res.Stats, "uncorrectable")
		remaps := sumFaultCounter(res.Stats, "remaps")
		clean := 1.0
		if checked > 0 {
			clean = 1 - float64(corrected+uncorr)/float64(checked)
		}
		row := ResilienceRow{
			Workload:      p.Workload.Name,
			Design:        p.Design,
			BER:           p.Cfg.Fault.Slow.BER,
			CleanServe:    clean,
			Corrected:     corrected,
			Uncorrectable: uncorr,
			Remaps:        remaps,
			FastServeRate: res.FastServeRate,
			P99:           res.Measured.MemLat.P99,
		}
		rows = append(rows, row)
		t.AddRow(p.Design, fmt.Sprintf("%.0e", row.BER),
			fmt.Sprintf("%.6f", row.CleanServe),
			strconv.FormatUint(row.Corrected, 10),
			strconv.FormatUint(row.Uncorrectable, 10),
			strconv.FormatUint(row.Remaps, 10),
			pct(row.FastServeRate),
			fmt.Sprintf("%.1f", row.P99))
	}
	return rows, t
}

// sumFaultCounter totals "<device>.fault.<name>" across every device of a
// run's registry (device names depend on the slow-memory preset, so rows
// match by suffix rather than hardcoding them).
func sumFaultCounter(st *sim.Stats, name string) uint64 {
	return sumCounterSuffix(st, ".fault."+name)
}
