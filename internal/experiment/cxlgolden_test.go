package experiment

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"baryon/internal/compress/pipeline"
	"baryon/internal/trace"
)

// tiersGoldenDump renders the three-tier built-ins (the same controllers
// over the DRAM+NVM+CXL topology) with the full dumpDesignRun detail — the
// byte-identity witness for the N-tier engine path, the far-address routing
// windows and the CXL link model.
func tiersGoldenDump() []byte {
	var buf bytes.Buffer
	for _, workload := range []string{"505.mcf_r", "YCSB-A"} {
		for _, design := range []string{DesignUnisonCXL, DesignDICECXL, DesignBaryonCXL} {
			dumpDesignRun(&buf, designGoldenConfig(), workload, design)
		}
	}
	return buf.Bytes()
}

// compareGolden is the shared pin-or-regenerate body of the tier goldens,
// honouring the package's -update-golden flag.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		diffLine(t, name, got, want)
	}
}

// TestDesignsTiersGolden locks the three-tier designs' observable behaviour:
// every counter, histogram and headline metric of the DRAM+NVM+CXL runs.
// Regenerate deliberately with
//
//	go test ./internal/experiment -run DesignsTiersGolden -update-golden
func TestDesignsTiersGolden(t *testing.T) {
	compareGolden(t, "designs_tiers.golden", tiersGoldenDump())
}

// TestCXLSweepGolden pins the cxl experiment's link-bandwidth sweep table,
// so the expander model's queueing, latency and compression accounting stay
// deterministic and refactor-stable end to end.
func TestCXLSweepGolden(t *testing.T) {
	cfg := designGoldenConfig()
	_, table := CXLSweep(cfg)
	var buf bytes.Buffer
	table.Render(&buf)
	compareGolden(t, "cxl_quick.golden", buf.Bytes())
}

// TestTiersParityAcrossWorkerCounts extends the compression arena's
// determinism contract to the three-tier designs: the full DRAM+NVM+CXL dump
// must be byte-identical whether fit checks run serially or fanned over any
// number of workers. Under -race this also sweeps the CXL link state for
// data races.
func TestTiersParityAcrossWorkerCounts(t *testing.T) {
	defer pipeline.SetDefaultWorkers(0)

	pipeline.SetDefaultWorkers(1)
	serial := tiersGoldenDump()

	for _, n := range []int{2, runtime.GOMAXPROCS(0)} {
		pipeline.SetDefaultWorkers(n)
		if got := tiersGoldenDump(); !bytes.Equal(got, serial) {
			diffLine(t, fmt.Sprintf("workers=%d tiers dump", n), got, serial)
		}
	}
}

// TestTierSpecFilesEndToEnd exercises the -design-file path for three-tier
// topologies: the two shipped DRAM+NVM+CXL spec files load, register and run
// end to end, and the results carry a per-tier traffic breakdown with the
// expander tier actually serving traffic.
func TestTierSpecFilesEndToEnd(t *testing.T) {
	w, ok := trace.ByName("505.mcf_r")
	if !ok {
		t.Fatal("workload missing")
	}
	for _, file := range []string{"design_cxl_baryon.json", "design_cxl_unison.json"} {
		spec, err := LoadSpecFile(filepath.Join("testdata", file))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		cfg := designGoldenConfig()
		cfg.AccessesPerCore = 500
		res, err := RunOneCtx(context.Background(), cfg, w, spec.Name)
		if err != nil {
			t.Fatalf("%s: running %s: %v", file, spec.Name, err)
		}
		if res.Cycles == 0 || res.Instructions == 0 {
			t.Errorf("%s: empty run: %+v", file, res)
		}
		if len(res.TierNames) != 3 || len(res.TierBytes) != 3 {
			t.Fatalf("%s: tier breakdown = %v / %v, want 3 tiers", file, res.TierNames, res.TierBytes)
		}
		if res.TierBytes[0] == 0 {
			t.Errorf("%s: fast tier saw no traffic", file)
		}
		if res.TierBytes[2] == 0 {
			t.Errorf("%s: CXL tier saw no traffic (names %v)", file, res.TierNames)
		}
	}
}
