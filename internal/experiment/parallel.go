package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"baryon/internal/config"
	"baryon/internal/cpu"
	"baryon/internal/trace"
)

// The harnesses in this package regenerate the paper's evaluation from large
// cartesian products of fully independent (config, workload, design)
// simulations. This file is the execution engine they all share: a worker
// pool that fans the runs out across cores while keeping the output
// deterministic — every result is slotted by its input index, so tables and
// figures are byte-identical to a serial run regardless of completion order.

// parallelism holds the configured worker count; 0 means "one worker per
// available CPU" (runtime.GOMAXPROCS).
var parallelism atomic.Int32

// SetParallelism sets the worker count used by RunPairs/RunMatrix and every
// harness built on them. n <= 0 restores the default (one worker per CPU);
// n == 1 forces fully serial execution.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if v := parallelism.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// forEach invokes fn(i) for every i in [0, n) using the configured worker
// count. fn must write its outputs to slots indexed by i only; under that
// contract the observable result is identical to the serial loop. With one
// worker (or one job) it degenerates to the plain loop, with zero goroutine
// overhead.
func forEach(n int, fn func(i int)) {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Pair is one independent simulation job: a full configuration (so sweeps
// can mutate per-job copies), a workload and a design name.
type Pair struct {
	Cfg      config.Config
	Workload trace.Workload
	Design   string
}

// RunPairs executes every job concurrently and returns the results in input
// order. Each job builds its own runner, store, controller and statistics,
// so jobs share no mutable state; the output is bit-identical to calling
// RunOne in a loop.
func RunPairs(pairs []Pair) []cpu.Result {
	out := make([]cpu.Result, len(pairs))
	forEach(len(pairs), func(i int) {
		out[i] = RunOne(pairs[i].Cfg, pairs[i].Workload, pairs[i].Design)
	})
	return out
}

// RunMatrix runs the full workloads x designs grid under cfg and returns
// results indexed as [workload][design], matching the input slices.
func RunMatrix(cfg config.Config, workloads []trace.Workload, designs []string) [][]cpu.Result {
	pairs := make([]Pair, 0, len(workloads)*len(designs))
	for _, w := range workloads {
		for _, d := range designs {
			pairs = append(pairs, Pair{Cfg: cfg, Workload: w, Design: d})
		}
	}
	flat := RunPairs(pairs)
	out := make([][]cpu.Result, len(workloads))
	for wi := range workloads {
		out[wi] = flat[wi*len(designs) : (wi+1)*len(designs)]
	}
	return out
}
