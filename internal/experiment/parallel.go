package experiment

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"baryon/internal/config"
	"baryon/internal/cpu"
	"baryon/internal/obs"
	"baryon/internal/trace"
)

// The harnesses in this package regenerate the paper's evaluation from large
// cartesian products of fully independent (config, workload, design)
// simulations. This file is the execution engine they all share: a worker
// pool that fans the runs out across cores while keeping the output
// deterministic — every result is slotted by its input index, so tables and
// figures are byte-identical to a serial run regardless of completion order.

// parallelism holds the configured worker count; 0 means "one worker per
// available CPU" (runtime.GOMAXPROCS).
var parallelism atomic.Int32

// SetParallelism sets the worker count used by RunPairs/RunMatrix and every
// harness built on them. n <= 0 restores the default (one worker per CPU);
// n == 1 forces fully serial execution.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if v := parallelism.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// forEach invokes fn(i) for every i in [0, n) using the configured worker
// count. fn must write its outputs to slots indexed by i only; under that
// contract the observable result is identical to the serial loop. With one
// worker (or one job) it degenerates to the plain loop, with zero goroutine
// overhead.
func forEach(n int, fn func(i int)) {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runContext holds the package-level context consulted by the legacy
// (context-free) entry points, so existing harness code can be made
// cancellable from one place. The context lives in a single-field struct
// because atomic.Value requires a consistent concrete type and contexts
// come in many.
type ctxBox struct{ ctx context.Context }

var runContext atomic.Value

func init() { runContext.Store(ctxBox{context.Background()}) }

// SetRunContext installs the context the legacy RunPairs/RunMatrix/harness
// entry points run under. The default is context.Background() (never
// cancelled, zero overhead). Commands that own a shutdown context call this
// once at startup; new code should prefer the explicit ...Ctx variants.
func SetRunContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	runContext.Store(ctxBox{ctx})
}

// RunContext returns the context installed by SetRunContext.
func RunContext() context.Context {
	return runContext.Load().(ctxBox).ctx
}

// forEachCtx is forEach with cooperative cancellation: workers stop pulling
// new indices once ctx is cancelled (indices already running finish via the
// runner's own cancellation checks). A non-cancellable context delegates to
// the plain loop.
func forEachCtx(ctx context.Context, n int, fn func(i int)) {
	if ctx.Done() == nil {
		forEach(n, fn)
		return
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// pairObservers is the registry behind AddPairObserver: every installed
// observer keyed by handle id, plus a copy-on-write snapshot slice the hot
// path iterates lock-free. Multiple owners — a CLI's bundle-dir export and a
// server job running concurrently — each hold their own handle, so removing
// one never tears down another's hook (the old process-global
// SetPairObserver atomic.Value made concurrent owners clobber each other).
var pairObservers struct {
	sync.Mutex
	seq  uint64
	m    map[uint64]func(Pair, PairResult)
	snap atomic.Value // []func(Pair, PairResult), rebuilt under the mutex
}

func init() {
	var empty []func(Pair, PairResult)
	pairObservers.snap.Store(empty)
}

// ObserverHandle identifies one installed pair observer; Remove uninstalls
// exactly that observer and no other.
type ObserverHandle struct {
	id   uint64
	once sync.Once
}

// AddPairObserver installs a hook that receives every successfully completed
// pair as it finishes, before the batch returns — the seam export layers
// (e.g. per-run report bundles) use to see each cpu.Result while its Stats
// registry is still reachable, without every harness growing an export
// parameter. The hook runs on worker goroutines, possibly concurrently, and
// must be goroutine-safe; failed pairs are not observed. Any number of
// observers can be installed concurrently; each is removed only through its
// own handle.
func AddPairObserver(fn func(Pair, PairResult)) *ObserverHandle {
	if fn == nil {
		return &ObserverHandle{}
	}
	pairObservers.Lock()
	defer pairObservers.Unlock()
	if pairObservers.m == nil {
		pairObservers.m = make(map[uint64]func(Pair, PairResult))
	}
	pairObservers.seq++
	h := &ObserverHandle{id: pairObservers.seq}
	pairObservers.m[h.id] = fn
	rebuildObserverSnap()
	return h
}

// Remove uninstalls the observer this handle was returned for. Safe to call
// multiple times; a handle from a nil AddPairObserver is a no-op. Pairs
// already in flight when Remove returns may still be observed once.
func (h *ObserverHandle) Remove() {
	h.once.Do(func() {
		if h.id == 0 {
			return
		}
		pairObservers.Lock()
		defer pairObservers.Unlock()
		delete(pairObservers.m, h.id)
		rebuildObserverSnap()
	})
}

// rebuildObserverSnap republishes the snapshot slice. Caller holds the
// mutex. Iteration order is by handle id, so observation order is stable.
func rebuildObserverSnap() {
	ids := make([]uint64, 0, len(pairObservers.m))
	for id := range pairObservers.m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fns := make([]func(Pair, PairResult), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, pairObservers.m[id])
	}
	pairObservers.snap.Store(fns)
}

// observePair invokes every installed observer for a completed job.
func observePair(p Pair, pr PairResult) {
	if pr.Err != nil {
		return
	}
	for _, fn := range pairObservers.snap.Load().([]func(Pair, PairResult)) {
		fn(p, pr)
	}
}

// RunObs optionally attaches live instrumentation to one pair's runner —
// the seam the service layer and cmd/baryonsim use to stream status and
// request lifecycles out of a run without touching its registry.
type RunObs struct {
	// Tracer samples request lifecycles into a ring buffer (obs.Tracer).
	Tracer *obs.Tracer
	// Introspector receives RunStatus snapshots from the run goroutine.
	Introspector *obs.Introspector
	// StatusEvery is the introspector publish interval in accesses
	// (0 = the runner's default).
	StatusEvery uint64
}

// Pair is one independent simulation job: a full configuration (so sweeps
// can mutate per-job copies), a workload and a design name.
type Pair struct {
	Cfg      config.Config
	Workload trace.Workload
	Design   string
	// Source optionally replaces the workload's synthetic generator with a
	// recorded access stream (e.g. cmd/baryonsim -trace-file); Workload
	// still names the run and supplies the value mix.
	Source trace.Source
	// Obs optionally attaches live instrumentation to this pair's runner.
	Obs *RunObs
}

// PairResult is the outcome of one job in a resilient run: the metrics on
// success, or the error that stopped the job — a bad spec, a panic captured
// by the worker's isolation boundary, or the run context's cancellation
// error for jobs that were cut short or never started.
type PairResult struct {
	Result cpu.Result
	Err    error
}

// runPairIsolated executes one job with a panic boundary: a panicking
// controller or workload poisons only its own slot, never the sweep.
func runPairIsolated(ctx context.Context, p Pair) (pr PairResult) {
	defer func() {
		if rec := recover(); rec != nil {
			pr.Err = fmt.Errorf("experiment: %s/%s panicked: %v\n%s",
				p.Workload.Name, p.Design, rec, debug.Stack())
		}
	}()
	pr.Result, pr.Err = RunPairCtx(ctx, p)
	return pr
}

// RunPairCtx executes one fully-described pair — including its optional
// trace source and live instrumentation — with error reporting and
// cooperative cancellation. An unknown design or an invalid spec returns an
// error instead of panicking; a cancelled ctx stops the replay and returns
// the partial metrics with ctx's error.
func RunPairCtx(ctx context.Context, p Pair) (cpu.Result, error) {
	spec, ok := Lookup(p.Design)
	if !ok {
		return cpu.Result{}, UnknownDesignError(p.Design)
	}
	if err := ValidateSpec(spec, p.Cfg); err != nil {
		return cpu.Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return cpu.Result{}, err
	}
	var r *cpu.Runner
	if p.Source != nil {
		r = cpu.NewRunnerSource(p.Cfg, p.Source, FactorySpec(spec))
	} else {
		r = cpu.NewRunner(p.Cfg, p.Workload, FactorySpec(spec))
	}
	if o := p.Obs; o != nil {
		if o.Tracer != nil {
			r.SetTracer(o.Tracer)
		}
		if o.Introspector != nil {
			r.SetIntrospector(o.Introspector, o.StatusEvery)
		}
	}
	res, err := r.RunCtx(ctx)
	res.Design = p.Design
	return res, err
}

// RunPairsCtx executes every job concurrently and returns per-job outcomes
// in input order. Each job builds its own runner, store, controller and
// statistics, so jobs share no mutable state; successful slots are
// bit-identical to calling RunOne in a loop. A job that fails — invalid
// design, panic, cancellation — reports through its slot's Err while every
// other job completes; jobs not yet started when ctx is cancelled get
// ctx's error without running.
func RunPairsCtx(ctx context.Context, pairs []Pair) []PairResult {
	out := make([]PairResult, len(pairs))
	ran := make([]bool, len(pairs))
	forEachCtx(ctx, len(pairs), func(i int) {
		ran[i] = true
		out[i] = runPairIsolated(ctx, pairs[i])
		observePair(pairs[i], out[i])
	})
	for i := range out {
		if !ran[i] {
			out[i].Err = ctx.Err()
		}
	}
	return out
}

// RunPairs executes every job concurrently and returns the results in input
// order, bit-identical to calling RunOne in a loop. It is the legacy strict
// entry point: any per-job error — including cancellation of the
// SetRunContext context — escalates to a panic, which the resilient
// commands catch at their per-harness isolation boundary. Callers that want
// per-job errors use RunPairsCtx.
func RunPairs(pairs []Pair) []cpu.Result {
	prs := RunPairsCtx(RunContext(), pairs)
	out := make([]cpu.Result, len(prs))
	for i, pr := range prs {
		if pr.Err != nil {
			panic(fmt.Sprintf("experiment: pair %s/%s failed: %v",
				pairs[i].Workload.Name, pairs[i].Design, pr.Err))
		}
		out[i] = pr.Result
	}
	return out
}

// RunMatrixCtx runs the full workloads x designs grid under cfg and returns
// per-job outcomes indexed as [workload][design], matching the input slices.
func RunMatrixCtx(ctx context.Context, cfg config.Config, workloads []trace.Workload, designs []string) [][]PairResult {
	pairs := make([]Pair, 0, len(workloads)*len(designs))
	for _, w := range workloads {
		for _, d := range designs {
			pairs = append(pairs, Pair{Cfg: cfg, Workload: w, Design: d})
		}
	}
	flat := RunPairsCtx(ctx, pairs)
	out := make([][]PairResult, len(workloads))
	for wi := range workloads {
		out[wi] = flat[wi*len(designs) : (wi+1)*len(designs)]
	}
	return out
}

// RunMatrix runs the full workloads x designs grid under cfg and returns
// results indexed as [workload][design], matching the input slices. Like
// RunPairs it is strict: per-job errors escalate to panics.
func RunMatrix(cfg config.Config, workloads []trace.Workload, designs []string) [][]cpu.Result {
	pairs := make([]Pair, 0, len(workloads)*len(designs))
	for _, w := range workloads {
		for _, d := range designs {
			pairs = append(pairs, Pair{Cfg: cfg, Workload: w, Design: d})
		}
	}
	flat := RunPairs(pairs)
	out := make([][]cpu.Result, len(workloads))
	for wi := range workloads {
		out[wi] = flat[wi*len(designs) : (wi+1)*len(designs)]
	}
	return out
}
