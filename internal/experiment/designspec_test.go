package experiment

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"baryon/internal/config"
	"baryon/internal/trace"
)

// TestDesignSpecJSONRoundTrip pins the -design-file schema: a spec with
// overrides and policy knobs survives save/load byte-for-byte at the struct
// level, and loading registers the design.
func TestDesignSpecJSONRoundTrip(t *testing.T) {
	spec := DesignSpec{
		Name: "RoundTrip-Baryon",
		Kind: KindBaryon,
		Overrides: config.Overrides{
			Mode:          config.Ptr("flat"),
			BlockBytes:    config.Ptr[uint64](512),
			SubBlockBytes: config.Ptr[uint64](64),
			CommitK:       config.Ptr(2.5),
			CommitAll:     config.Ptr(false),
		},
		Policy: PolicySpec{Replacement: "lru"},
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := SaveSpecFile(path, spec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, spec)
	}
	if !IsDesign(spec.Name) {
		t.Fatalf("LoadSpecFile did not register %q", spec.Name)
	}
}

// TestRegisterRejectsBadSpecs pins the load-time validation: duplicates,
// unknown kinds and unknown policies are errors, not mid-run panics.
func TestRegisterRejectsBadSpecs(t *testing.T) {
	if err := Register(DesignSpec{Name: DesignBaryon, Kind: KindBaryon}); err == nil {
		t.Fatal("Register accepted a duplicate of a built-in design")
	}
	if err := Register(DesignSpec{Name: "X-NoKind", Kind: "alien"}); err == nil {
		t.Fatal("Register accepted an unknown kind")
	}
	if err := Register(DesignSpec{Name: "X-NoPolicy", Kind: KindSimple,
		Policy: PolicySpec{Replacement: "clock"}}); err == nil {
		t.Fatal("Register accepted an unknown replacement policy")
	}
	if err := Register(DesignSpec{Kind: KindSimple}); err == nil {
		t.Fatal("Register accepted an empty name")
	}
}

// TestLoadSpecFileRejectsUnknownFields pins DisallowUnknownFields: a typo'd
// override key fails loudly instead of being silently ignored.
func TestLoadSpecFileRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "typo.json")
	if err := writeFile(path, `{"name":"X-Typo","kind":"baryon","overrides":{"blockBites":512}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpecFile(path); err == nil {
		t.Fatal("LoadSpecFile accepted an unknown override field")
	}
}

// TestUnknownDesignError pins that the rejection lists the registered
// names, which is what both commands print.
func TestUnknownDesignError(t *testing.T) {
	msg := UnknownDesignError("Barion").Error()
	if !strings.Contains(msg, `"Barion"`) {
		t.Fatalf("error does not echo the bad name: %s", msg)
	}
	for _, d := range []string{DesignBaryon, DesignSimple, DesignOSPaging} {
		if !strings.Contains(msg, d) {
			t.Fatalf("error does not list %s: %s", d, msg)
		}
	}
}

// TestBuiltinSpecsMatchNames pins that every historical design name is
// registered and resolvable through the registry.
func TestBuiltinSpecsMatchNames(t *testing.T) {
	want := []string{DesignSimple, DesignUnison, DesignDICE, DesignBaryon,
		DesignBaryon64B, DesignBaryonFA, DesignHybrid2, DesignOSPaging}
	got := Designs()
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("Designs()[%d] = %q, want %q (full: %v)", i, got[i], name, got)
		}
		if _, ok := Lookup(name); !ok {
			t.Fatalf("built-in %q not registered", name)
		}
	}
}

// TestCustomSpecRunsEndToEnd registers a custom design — a Baryon variant
// with commit-all and a Simple variant with random replacement — and runs
// both through the standard harness, the same path the commands use.
func TestCustomSpecRunsEndToEnd(t *testing.T) {
	specs := []DesignSpec{
		{
			Name: "Custom-CommitAll",
			Kind: KindBaryon,
			Overrides: config.Overrides{
				CommitAll: config.Ptr(true),
			},
		},
		{
			Name:   "Custom-SimpleRandom",
			Kind:   KindSimple,
			Policy: PolicySpec{Replacement: "random"},
		},
	}
	cfg := parallelConfig()
	w, _ := trace.ByName("505.mcf_r")
	for _, spec := range specs {
		if err := Register(spec); err != nil {
			t.Fatal(err)
		}
		res := RunOne(cfg, w, spec.Name)
		if res.Cycles == 0 || res.Instructions == 0 {
			t.Fatalf("%s: empty result %+v", spec.Name, res)
		}
	}
	// The commit-all override must actually reach the controller: with
	// CommitAll set, Baryon never evicts a stage frame to slow memory.
	res := RunOne(cfg, w, "Custom-CommitAll")
	if res.Stats.Get("baryon.evictsToSlow") != 0 {
		t.Fatalf("CommitAll design evicted %d frames to slow memory",
			res.Stats.Get("baryon.evictsToSlow"))
	}
}

// TestSpecOverridesDoNotLeak pins that overrides apply to a copy of the run
// config: running Baryon-64B must not mutate the caller's cfg.
func TestSpecOverridesDoNotLeak(t *testing.T) {
	cfg := parallelConfig()
	before := cfg
	w, _ := trace.ByName("505.mcf_r")
	_ = RunOne(cfg, w, DesignBaryon64B)
	if !reflect.DeepEqual(cfg, before) {
		t.Fatalf("RunOne mutated the caller's config:\n got %+v\nwant %+v", cfg, before)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
