package experiment

import (
	"baryon/internal/config"
	"baryon/internal/core"
	"baryon/internal/cpu"
	"baryon/internal/trace"
)

// Fig3aRow is one workload's access-type breakdown for staged (S) and
// committed (C) blocks (Fig. 3(a)).
type Fig3aRow struct {
	Workload  string
	Breakdown core.StageBreakdown
}

// runBaryonForBreakdown runs Baryon in cache mode and extracts the
// controller's stage/commit breakdown.
func runBaryonForBreakdown(cfg config.Config, w trace.Workload) core.StageBreakdown {
	r := cpu.NewRunner(cfg, w, Factory(DesignBaryon))
	r.Run()
	return r.Controller().(*core.Controller).Breakdown()
}

// Fig3a reproduces Fig. 3(a): the hit / read-miss / write-overflow split of
// accesses to just-staged (S) versus committed (C) blocks at the default
// stage size, over the SPEC-like workloads.
func Fig3a(cfg config.Config) ([]Fig3aRow, *Table) {
	t := &Table{
		Title:  "Fig 3(a): access breakdown, staged (S) vs committed (C) blocks",
		Header: []string{"workload", "S.hit", "S.rdMiss", "S.wrOvfl", "C.hit", "C.rdMiss", "C.wrOvfl"},
		Notes: []string{
			"paper: after commit, read misses fall to <5% and overflows to <1% on average",
		},
	}
	workloads := trace.SPEC()
	rows := make([]Fig3aRow, len(workloads))
	forEach(len(workloads), func(i int) {
		rows[i] = Fig3aRow{Workload: workloads[i].Name, Breakdown: runBaryonForBreakdown(cfg, workloads[i])}
	})
	for _, row := range rows {
		bd := row.Breakdown
		t.AddRow(row.Workload, pct(bd.SHits), pct(bd.SReadMisses), pct(bd.SWriteOverflows),
			pct(bd.CHits), pct(bd.CReadMisses), pct(bd.CWriteOverflows))
	}
	return rows, t
}

// Fig3bRow is one (stage size, workload) commit-state breakdown (Fig. 3(b)).
type Fig3bRow struct {
	Workload   string
	StageBytes uint64
	Breakdown  core.StageBreakdown
}

// Fig3bSizes returns the stage-area sweep sizes, scaled from the paper's
// 16/32/64/128 MB by the configuration's scale factor.
func Fig3bSizes(cfg config.Config) []uint64 {
	base := cfg.StageBytes // the "64 MB-equivalent" point
	return []uint64{base / 4, base / 2, base, base * 2}
}

// Fig3b reproduces Fig. 3(b): the committed-block breakdown across stage
// area sizes.
func Fig3b(cfg config.Config) ([]Fig3bRow, *Table) {
	t := &Table{
		Title:  "Fig 3(b): committed-block breakdown vs stage area size",
		Header: []string{"workload", "stage", "C.hit", "C.rdMiss", "C.wrOvfl"},
		Notes: []string{
			"stage sizes are the paper's 16/32/64/128 MB scaled to this run's memory scale",
			"paper: larger stage areas reduce post-commit misses/overflows; 64 MB suffices",
		},
	}
	workloads := trace.SPEC()[:4]
	sizes := Fig3bSizes(cfg)
	rows := make([]Fig3bRow, len(workloads)*len(sizes))
	forEach(len(rows), func(i int) {
		w, sz := workloads[i/len(sizes)], sizes[i%len(sizes)]
		c := cfg
		c.StageBytes = sz
		rows[i] = Fig3bRow{Workload: w.Name, StageBytes: sz, Breakdown: runBaryonForBreakdown(c, w)}
	})
	for _, row := range rows {
		bd := row.Breakdown
		t.AddRow(row.Workload, byteSize(row.StageBytes), pct(bd.CHits), pct(bd.CReadMisses), pct(bd.CWriteOverflows))
	}
	return rows, t
}

func byteSize(b uint64) string {
	switch {
	case b >= 1<<20:
		return f2(float64(b)/(1<<20)) + "MB"
	case b >= 1<<10:
		return f2(float64(b)/(1<<10)) + "kB"
	}
	return f2(float64(b)) + "B"
}
