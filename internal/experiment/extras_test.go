package experiment

import (
	"testing"

	"baryon/internal/config"
	"baryon/internal/trace"
)

func TestBudgetPaperScale(t *testing.T) {
	b := Budget(config.PaperScale())
	if b.StageTagArrayBytes != 448*1024 {
		t.Fatalf("stage tag %d", b.StageTagArrayBytes)
	}
	if b.TableFraction < 0.0005 || b.TableFraction > 0.0015 {
		t.Fatalf("table fraction %f, want ~0.001", b.TableFraction)
	}
	if b.TotalSRAMBytes < 480*1024 || b.TotalSRAMBytes > 512*1024 {
		t.Fatalf("total SRAM %d, want ~488 kB (Section III-B)", b.TotalSRAMBytes)
	}
}

func TestRemapCacheSweepMonotonicIsh(t *testing.T) {
	cfg := quickConfig()
	rows, _ := RemapCacheSweep(cfg)
	// Per workload, the biggest cache must not have a (meaningfully) lower
	// hit rate than the smallest.
	small := map[string]float64{}
	big := map[string]float64{}
	for _, r := range rows {
		switch r.Sets {
		case 32:
			small[r.Workload] = r.HitRate
		case 256:
			big[r.Workload] = r.HitRate
		}
	}
	for w, s := range small {
		if big[w] < s-0.02 {
			t.Fatalf("%s: 256-set hit rate %.3f below 32-set %.3f", w, big[w], s)
		}
	}
}

func TestCompressorComparisonRuns(t *testing.T) {
	cfg := quickConfig()
	rows, tab := CompressorComparison(cfg)
	if len(rows) != len(trace.Representative()) {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		// C-Pack adds an algorithm to a best-of selection: CFs move a
		// little, performance stays in a sane band.
		if r.Speedup < 0.7 || r.Speedup > 1.4 {
			t.Fatalf("%s: C-Pack speedup %.2f out of band", r.Workload, r.Speedup)
		}
		if r.MeanCFWithCPack < r.MeanCFDefault-0.1 {
			t.Fatalf("%s: adding C-Pack reduced mean CF %.2f -> %.2f",
				r.Workload, r.MeanCFDefault, r.MeanCFWithCPack)
		}
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestAssocSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	cfg := quickConfig()
	rows, _ := AssocSweep(cfg)
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Fatalf("%s@%s: speedup %.3f", r.Workload, r.Point, r.Speedup)
		}
	}
}

func TestSubBlockSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	cfg := quickConfig()
	rows, _ := SubBlockSweep(cfg)
	points := map[string]bool{}
	for _, r := range rows {
		points[r.Point] = true
		if r.Speedup <= 0 {
			t.Fatalf("%s@%s: speedup %.3f", r.Workload, r.Point, r.Speedup)
		}
	}
	for _, p := range []string{"64B", "128B", "256B"} {
		if !points[p] {
			t.Fatalf("missing point %s", p)
		}
	}
}
