package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"baryon/internal/cpu"
	"baryon/internal/sim"
)

// Epoch time-series export. A run configured with EpochAccesses > 0 carries
// a per-epoch window series in Result.Epochs; these writers serialise it for
// offline plotting (warmup behaviour, layout stabilisation, phase changes).

// WriteEpochCSV writes the epoch series of res as CSV with a header row.
// EndAccesses is cumulative within the measurement window; all other columns
// are per-epoch deltas.
func WriteEpochCSV(w io.Writer, res cpu.Result) error {
	if _, err := fmt.Fprintln(w,
		"epoch,endAccesses,accesses,instructions,cycles,ipc,fastServeRate,bloatFactor,fastBytes,slowBytes,energyPJ,memLatP50,memLatP99,memLatMax"); err != nil {
		return err
	}
	for _, e := range res.Epochs {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%d,%d,%.1f,%.1f,%.1f,%d\n",
			e.Index, e.EndAccesses, e.Accesses, e.Instructions, e.Cycles,
			e.IPC(), e.FastServeRate, e.BloatFactor,
			e.FastBytes, e.SlowBytes, e.EnergyPJ,
			e.MemLat.P50, e.MemLat.P99, e.MemLat.Max)
		if err != nil {
			return err
		}
	}
	return nil
}

// epochRecord is the JSONL shape of one epoch, stamped with the run's
// workload/design so concatenated streams from sweeps stay self-describing.
type epochRecord struct {
	Workload      string  `json:"workload"`
	Design        string  `json:"design"`
	Epoch         int     `json:"epoch"`
	EndAccesses   uint64  `json:"endAccesses"`
	Accesses      uint64  `json:"accesses"`
	Instructions  uint64  `json:"instructions"`
	Cycles        uint64  `json:"cycles"`
	IPC           float64 `json:"ipc"`
	FastServeRate float64 `json:"fastServeRate"`
	BloatFactor   float64 `json:"bloatFactor"`
	FastBytes     uint64  `json:"fastBytes"`
	SlowBytes     uint64  `json:"slowBytes"`
	EnergyPJ      float64 `json:"energyPJ"`
	// MemLat is the epoch's whole-plane demand-latency summary.
	MemLat sim.HistSummary `json:"memLat"`
}

// WriteEpochJSONL writes the epoch series of res as one JSON object per
// line, suitable for appending across runs of a sweep.
func WriteEpochJSONL(w io.Writer, res cpu.Result) error {
	enc := json.NewEncoder(w)
	for _, e := range res.Epochs {
		rec := epochRecord{
			Workload:      res.Workload,
			Design:        res.Design,
			Epoch:         e.Index,
			EndAccesses:   e.EndAccesses,
			Accesses:      e.Accesses,
			Instructions:  e.Instructions,
			Cycles:        e.Cycles,
			IPC:           e.IPC(),
			FastServeRate: e.FastServeRate,
			BloatFactor:   e.BloatFactor,
			FastBytes:     e.FastBytes,
			SlowBytes:     e.SlowBytes,
			EnergyPJ:      e.EnergyPJ,
			MemLat:        e.MemLat,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
