package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"baryon/internal/cpu"
	"baryon/internal/sim"
)

// Epoch time-series export. A run configured with EpochAccesses > 0 carries
// a per-epoch window series in Result.Epochs; these writers serialise it for
// offline plotting (warmup behaviour, layout stabilisation, phase changes).

// WriteEpochCSV writes the epoch series of res as CSV with a header row.
// EndAccesses is cumulative within the measurement window; all other columns
// are per-epoch deltas. The tierBytes column carries the per-tier traffic
// breakdown of N-tier runs as a ";"-joined cell (empty on classic two-tier
// runs, matching the sweep CSV); cxlLinkBytes/cxlInternalBytes split the
// epoch's CXL-expander traffic (zero without a CXL tier).
func WriteEpochCSV(w io.Writer, res cpu.Result) error {
	if _, err := fmt.Fprintln(w,
		"epoch,endAccesses,accesses,instructions,cycles,ipc,fastServeRate,bloatFactor,fastBytes,slowBytes,tierBytes,cxlLinkBytes,cxlInternalBytes,energyPJ,memLatP50,memLatP99,memLatMax"); err != nil {
		return err
	}
	for _, e := range res.Epochs {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%d,%d,%s,%d,%d,%.1f,%.1f,%.1f,%d\n",
			e.Index, e.EndAccesses, e.Accesses, e.Instructions, e.Cycles,
			e.IPC(), e.FastServeRate, e.BloatFactor,
			e.FastBytes, e.SlowBytes,
			tierBytesField(e.TierBytes), e.CXLLinkBytes, e.CXLInternalBytes,
			e.EnergyPJ,
			e.MemLat.P50, e.MemLat.P99, e.MemLat.Max)
		if err != nil {
			return err
		}
	}
	return nil
}

// tierBytesField renders a per-tier byte breakdown as the ";"-joined cell
// shared by the sweep CSV and the epoch CSV (empty for two-tier runs).
func tierBytesField(b []uint64) string {
	if len(b) == 0 {
		return ""
	}
	parts := make([]string, len(b))
	for i, v := range b {
		parts[i] = strconv.FormatUint(v, 10)
	}
	return strings.Join(parts, ";")
}

// epochRecord is the JSONL shape of one epoch, stamped with the run's
// workload/design so concatenated streams from sweeps stay self-describing.
type epochRecord struct {
	Workload      string  `json:"workload"`
	Design        string  `json:"design"`
	Epoch         int     `json:"epoch"`
	EndAccesses   uint64  `json:"endAccesses"`
	Accesses      uint64  `json:"accesses"`
	Instructions  uint64  `json:"instructions"`
	Cycles        uint64  `json:"cycles"`
	IPC           float64 `json:"ipc"`
	FastServeRate float64 `json:"fastServeRate"`
	BloatFactor   float64 `json:"bloatFactor"`
	FastBytes     uint64  `json:"fastBytes"`
	SlowBytes     uint64  `json:"slowBytes"`
	// TierBytes is the per-tier traffic breakdown of N-tier runs (omitted
	// on two-tier runs); the CXL fields split expander traffic into
	// host-link and expander-internal bytes (omitted without a CXL tier).
	TierBytes        []uint64 `json:"tierBytes,omitempty"`
	CXLLinkBytes     uint64   `json:"cxlLinkBytes,omitempty"`
	CXLInternalBytes uint64   `json:"cxlInternalBytes,omitempty"`
	EnergyPJ         float64  `json:"energyPJ"`
	// MemLat is the epoch's whole-plane demand-latency summary.
	MemLat sim.HistSummary `json:"memLat"`
}

// WriteEpochJSONL writes the epoch series of res as one JSON object per
// line, suitable for appending across runs of a sweep.
func WriteEpochJSONL(w io.Writer, res cpu.Result) error {
	enc := json.NewEncoder(w)
	for _, e := range res.Epochs {
		rec := epochRecord{
			Workload:         res.Workload,
			Design:           res.Design,
			Epoch:            e.Index,
			EndAccesses:      e.EndAccesses,
			Accesses:         e.Accesses,
			Instructions:     e.Instructions,
			Cycles:           e.Cycles,
			IPC:              e.IPC(),
			FastServeRate:    e.FastServeRate,
			BloatFactor:      e.BloatFactor,
			FastBytes:        e.FastBytes,
			SlowBytes:        e.SlowBytes,
			TierBytes:        e.TierBytes,
			CXLLinkBytes:     e.CXLLinkBytes,
			CXLInternalBytes: e.CXLInternalBytes,
			EnergyPJ:         e.EnergyPJ,
			MemLat:           e.MemLat,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
