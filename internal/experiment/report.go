package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple text table used to render the paper's rows and series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 8
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
