package experiment

import (
	"reflect"
	"testing"

	"baryon/internal/config"
	"baryon/internal/fault"
	"baryon/internal/trace"
)

func resilienceConfig() config.Config {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 1500
	cfg.Seed = 1
	return cfg
}

// TestFaultOffByteIdentity pins that a fault config with no fault source —
// even a non-zero one carrying ECC/penalty tuning — is a strict no-op: the
// full stats dump is byte-identical to a run with the zero config. The
// designs_quick.golden test extends the same guarantee to every design.
func TestFaultOffByteIdentity(t *testing.T) {
	w, _ := trace.ByName("505.mcf_r")
	base := resilienceConfig()
	tuned := base
	tuned.Fault = fault.Config{ECCCorrectBits: 2, RetryPenalty: 100, RemapPenalty: 1000, Seed: 7}
	if tuned.Fault.Enabled() {
		t.Fatal("tuning-only fault config reports enabled")
	}
	for _, design := range []string{DesignBaryon, DesignUnison} {
		a := RunOne(base, w, design)
		b := RunOne(tuned, w, design)
		if a.Stats.String() != b.Stats.String() {
			t.Fatalf("%s: disabled fault config changed the run:\n%s\nvs\n%s",
				design, a.Stats.String(), b.Stats.String())
		}
	}
}

// TestFaultSeedDeterminism pins that the same fault seed yields identical
// fault.* counters, and a different fault seed yields a different fault
// stream (while the workload stream stays fixed).
func TestFaultSeedDeterminism(t *testing.T) {
	w, _ := trace.ByName("505.mcf_r")
	run := func(faultSeed uint64) string {
		cfg := resilienceConfig()
		cfg.Fault.Slow.BER = 1e-4
		cfg.Fault.ECCCorrectBits = 2
		cfg.Fault.Seed = faultSeed
		res := RunOne(cfg, w, DesignBaryon)
		return res.Stats.String()
	}
	a1, a2, b := run(7), run(7), run(8)
	if a1 != a2 {
		t.Fatal("same fault seed produced different stats")
	}
	if a1 == b {
		t.Fatal("different fault seeds produced identical stats")
	}
}

// TestResilienceMonotone checks the experiment's headline property: within
// each design, the clean-serve rate degrades monotonically (non-strictly)
// as the injected raw bit error rate ramps, and the fault-off control is
// exactly 1.
func TestResilienceMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full resilience grid")
	}
	cfg := resilienceConfig()
	rows, _ := Resilience(cfg)
	if len(rows) != len(ResilienceDesigns)*len(ResilienceBERs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ResilienceDesigns)*len(ResilienceBERs))
	}
	byDesign := map[string][]ResilienceRow{}
	for _, r := range rows {
		byDesign[r.Design] = append(byDesign[r.Design], r)
	}
	for design, series := range byDesign {
		for i, r := range series {
			if r.BER == 0 && r.CleanServe != 1 {
				t.Errorf("%s: fault-off control cleanServe = %f, want 1", design, r.CleanServe)
			}
			if i > 0 {
				prev := series[i-1]
				if r.BER < prev.BER {
					t.Fatalf("%s: BER series not ascending", design)
				}
				if r.CleanServe > prev.CleanServe {
					t.Errorf("%s: cleanServe rose from %f to %f as BER ramped %g -> %g",
						design, prev.CleanServe, r.CleanServe, prev.BER, r.BER)
				}
			}
		}
		// The top of the ramp must show real degradation, not noise.
		last := series[len(series)-1]
		if last.CleanServe >= 0.99 {
			t.Errorf("%s: cleanServe %f at BER %g shows no degradation", design, last.CleanServe, last.BER)
		}
		if last.Corrected == 0 {
			t.Errorf("%s: no corrected errors at BER %g", design, last.BER)
		}
	}
}

// TestResilienceDeterministic pins that the experiment is a pure function
// of its seed.
func TestResilienceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full resilience grid twice")
	}
	cfg := resilienceConfig()
	a, _ := Resilience(cfg)
	b, _ := Resilience(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical resilience runs diverged")
	}
}
