package metadata

import "baryon/internal/sim"

// RemapCache models the on-chip SRAM remap cache of Table I: 256 sets,
// 8 ways, one line per super-block holding that super-block's eight 2-byte
// remap entries (16 B) plus tag. It tracks presence/dirtiness for timing and
// metadata-traffic accounting; the authoritative entries live in the
// controller's remap table (resident in fast memory).
type RemapCache struct {
	sets, ways int
	// lines is the flat sets*ways tag array; set i occupies
	// lines[i*ways : (i+1)*ways]. One backing array instead of a slice per
	// set keeps construction to a single allocation (controllers are built
	// per run) and the probe loop on one cache-friendly span.
	lines []rcLine
	tick  uint64

	hits, misses, writebacks *sim.Counter
}

type rcLine struct {
	super   uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// NewRemapCache builds a sets x ways remap cache and registers its
// hit/miss/writeback counters on stats. Callers hand in an already-scoped
// view (the controller uses stats.Scope("remapCache")), so the cache itself
// registers bare names.
func NewRemapCache(sets, ways int, stats *sim.Stats) *RemapCache {
	c := &RemapCache{sets: sets, ways: ways}
	c.lines = make([]rcLine, sets*ways)
	c.hits = stats.Counter("hits")
	c.misses = stats.Counter("misses")
	c.writebacks = stats.Counter("writebacks")
	return c
}

func (c *RemapCache) set(super uint64) []rcLine {
	i := int(super%uint64(c.sets)) * c.ways
	return c.lines[i : i+c.ways]
}

// Lookup probes for super's line, updating LRU and counters.
func (c *RemapCache) Lookup(super uint64) bool {
	c.tick++
	set := c.set(super)
	for i := range set {
		if set[i].valid && set[i].super == super {
			set[i].lastUse = c.tick
			c.hits.Inc()
			return true
		}
	}
	c.misses.Inc()
	return false
}

// Insert fills super's line after a miss. It returns whether a dirty victim
// line was written back (16 B of metadata traffic to the off-chip table).
func (c *RemapCache) Insert(super uint64) (wroteBack bool) {
	c.tick++
	set := c.set(super)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].super == super {
			set[i].lastUse = c.tick
			return false
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	wroteBack = set[victim].valid && set[victim].dirty
	if wroteBack {
		c.writebacks.Inc()
	}
	set[victim] = rcLine{super: super, valid: true, lastUse: c.tick}
	return wroteBack
}

// MarkDirty records an update to super's entries. It returns true when the
// line is cached (update absorbed on chip) and false when the update must go
// straight to the off-chip table.
func (c *RemapCache) MarkDirty(super uint64) bool {
	set := c.set(super)
	for i := range set {
		if set[i].valid && set[i].super == super {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// HitRate returns hits/(hits+misses).
func (c *RemapCache) HitRate() float64 {
	return sim.Ratio(c.hits.Value(), c.hits.Value()+c.misses.Value())
}

// StorageBytes returns the SRAM budget of the cache: per line, eight 2-byte
// entries plus a 26-bit tag+state rounded to 4 bytes.
func (c *RemapCache) StorageBytes() int {
	return c.sets * c.ways * (8*RemapEntryBytes + 4)
}
