package metadata

import "math/bits"

// RemapEntry is the compact per-block remap table entry (Fig. 5(b)). It
// packs to exactly 2 bytes for a 4-way design:
//
//	Remap[8]  which sub-blocks are cached/migrated to fast memory
//	Pointer   the physical block (way) holding them (Rule 3)
//	CF2[2]    which aligned half-ranges are compressed at CF=2
//	CF4[1]... see below
//	Z         all-zero block
//
// The hardware format gives CF2 four bits (one per aligned pair) and CF4 two
// bits (one per aligned quad), with the all-ones combination of CF2+CF4
// encoding Z; 8+2+4+2 = 16 bits. This struct keeps the fields explicit and
// Encode/Decode produce the bit-exact layout.
type RemapEntry struct {
	Remap   uint8 // bit i: sub-block i is in fast memory
	Pointer uint8 // way within the set (2 bits at assoc 4)
	CF2     uint8 // bit j: sub-blocks {2j, 2j+1} form one CF=2 range
	CF4     uint8 // bit j: sub-blocks {4j..4j+3} form one CF=4 range
	Z       bool  // whole block is zero; no data stored anywhere
}

// RemapEntryBytes is the per-entry budget from Section III-B.
const RemapEntryBytes = 2

// Valid reports whether any sub-block of the entry is remapped (or Z).
func (e RemapEntry) Valid() bool { return e.Remap != 0 || e.Z }

// SlotsUsed returns how many physical sub-block slots this block occupies in
// its fast physical block: valid remap bits, minus one per CF2 range, minus
// three per CF4 range (the paper's prefix-sum formula in Section III-C).
func (e RemapEntry) SlotsUsed() int {
	if e.Z {
		return 0
	}
	return bits.OnesCount8(e.Remap) - bits.OnesCount8(e.CF2&0xF) - 3*bits.OnesCount8(e.CF4&0x3)
}

// RangeOf returns the (start, cf) of the range containing sub-block sub, as
// implied by the CF2/CF4 bits. The caller must check the Remap bit first.
func (e RemapEntry) RangeOf(sub int) (start, cf int) {
	if e.CF4&(1<<(sub/4)) != 0 {
		return sub &^ 3, 4
	}
	if e.CF2&(1<<(sub/2)) != 0 {
		return sub &^ 1, 2
	}
	return sub, 1
}

// SlotOffsetWithin returns how many slots the ranges of this entry occupy
// before sub-block sub (for the sorted, dense committed layout of Rule 4).
func (e RemapEntry) SlotOffsetWithin(sub int) int {
	n := 0
	for s := 0; s < sub; {
		if e.Remap&(1<<s) == 0 {
			s++
			continue
		}
		start, cf := e.RangeOf(s)
		if start < s { // shouldn't happen with aligned ranges, be safe
			s++
			continue
		}
		n++
		s = start + cf
	}
	return n
}

// Encode packs the entry into its 2-byte hardware format.
func (e RemapEntry) Encode() [RemapEntryBytes]byte {
	if e.Z {
		// All-ones CF2+CF4 is otherwise impossible (a CF4 range covers the
		// sub-blocks a CF2 range would), so it encodes Z.
		return [2]byte{e.Remap, (e.Pointer&3)<<6 | 0xF<<2 | 0x3}
	}
	return [2]byte{e.Remap, (e.Pointer&3)<<6 | (e.CF2&0xF)<<2 | e.CF4&0x3}
}

// DecodeRemapEntry unpacks a 2-byte entry.
func DecodeRemapEntry(b [RemapEntryBytes]byte) RemapEntry {
	e := RemapEntry{
		Remap:   b[0],
		Pointer: b[1] >> 6 & 3,
		CF2:     b[1] >> 2 & 0xF,
		CF4:     b[1] & 0x3,
	}
	if e.CF2 == 0xF && e.CF4 == 0x3 {
		return RemapEntry{Remap: e.Remap, Pointer: e.Pointer, Z: true}
	}
	return e
}

// SuperEntries is the remap-cache line unit: the eight entries of one
// super-block, read together for the position calculation.
type SuperEntries [8]RemapEntry

// SlotPosition computes where sub-block sub of block blkOff lives inside the
// physical block both share: the number of slots used by earlier blocks of
// the super-block with the same Pointer, plus the slot offset within the
// block's own sorted ranges (the prefix-sum decode of Section III-C).
func (se *SuperEntries) SlotPosition(blkOff, sub int) int {
	ptr := se[blkOff].Pointer
	pos := 0
	for b := 0; b < blkOff; b++ {
		if se[b].Valid() && !se[b].Z && se[b].Pointer == ptr {
			pos += se[b].SlotsUsed()
		}
	}
	return pos + se[blkOff].SlotOffsetWithin(sub)
}
