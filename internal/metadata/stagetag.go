// Package metadata implements Baryon's dual-format metadata scheme
// (Section III-C): the flexible 14-byte stage tag entries backing the
// on-chip stage tag array, and the compact 2-byte remap entries backing the
// off-chip remap table with its on-chip super-block-granularity remap cache.
// Both formats encode and decode to their exact bit budgets so the storage
// claims of the paper are verified by tests rather than assumed.
package metadata

import (
	"fmt"

	"baryon/internal/hybrid"
)

// Range describes one contiguous, aligned range of sub-blocks stored in one
// physical sub-block slot of a stage-area block (Rule 2). A range covers CF
// sub-blocks starting at SubOff (SubOff aligned to CF) of block BlkOff
// within the entry's super-block.
type Range struct {
	Valid  bool
	CF     uint8 // 1, 2 or 4
	Dirty  bool
	Zero   bool  // whole range is zero (Z-bit); CF must be 4 when Zero
	BlkOff uint8 // block within super-block (0..7)
	SubOff uint8 // first sub-block of the range (aligned to CF)
}

// Covers reports whether the range includes sub-block sub of block blkOff.
func (r Range) Covers(blkOff, sub int) bool {
	return r.Valid && int(r.BlkOff) == blkOff &&
		sub >= int(r.SubOff) && sub < int(r.SubOff)+int(r.CF)
}

// StageTag is one stage tag array entry: the metadata of one 2 kB physical
// block in the stage area (Fig. 5(a)). It packs to exactly 14 bytes.
type StageTag struct {
	Valid   bool
	Super   hybrid.SuperBlockID // 21-bit tag at paper scale
	Slots   [hybrid.SubBlocks]Range
	LRU     uint8  // 3-bit in-set recency rank
	FIFO    uint8  // 3-bit next sub-block victim pointer
	MissCnt uint16 // selective-commit statistic (Section III-E)
}

// StageTagBytes is the per-entry storage budget from Section III-B.
const StageTagBytes = 14

// encodeSlot packs one Range into 8 bits:
//
//	1 D BBB SSS   CF=1 range at sub-offset SSS
//	01 D BBB SS   CF=2 range at sub-offset 2*SS
//	001 D BBB S   CF=4 range at sub-offset 4*S
//	00001 BBB     all-zero range of block BBB (Z-bit special encoding)
//	0000 0000     empty slot
func encodeSlot(r Range) byte {
	if !r.Valid {
		return 0
	}
	d := byte(0)
	if r.Dirty {
		d = 1
	}
	if r.Zero {
		return 0x08 | r.BlkOff&7 // 0001 1(D folded) BBB — Z ranges are clean by definition
	}
	switch r.CF {
	case 1:
		return 0x80 | d<<6 | (r.BlkOff&7)<<3 | r.SubOff&7
	case 2:
		return 0x40 | d<<5 | (r.BlkOff&7)<<2 | (r.SubOff/2)&3
	case 4:
		return 0x20 | d<<4 | (r.BlkOff&7)<<1 | (r.SubOff/4)&1
	}
	panic(fmt.Sprintf("metadata: bad CF %d", r.CF))
}

func decodeSlot(b byte) Range {
	switch {
	case b == 0:
		return Range{}
	case b&0x80 != 0:
		return Range{Valid: true, CF: 1, Dirty: b&0x40 != 0, BlkOff: b >> 3 & 7, SubOff: b & 7}
	case b&0x40 != 0:
		return Range{Valid: true, CF: 2, Dirty: b&0x20 != 0, BlkOff: b >> 2 & 7, SubOff: (b & 3) * 2}
	case b&0x20 != 0:
		return Range{Valid: true, CF: 4, Dirty: b&0x10 != 0, BlkOff: b >> 1 & 7, SubOff: (b & 1) * 4}
	default:
		return Range{Valid: true, CF: 4, Zero: true, BlkOff: b & 7}
	}
}

// Encode packs the entry into its 14-byte hardware format: 1 valid bit +
// 21-bit super tag + 3-bit LRU + 3-bit FIFO + 16-bit MissCnt + 8x8-bit
// slots = 108 bits, padded to 14 bytes.
func (t *StageTag) Encode() [StageTagBytes]byte {
	var out [StageTagBytes]byte
	v := uint32(0)
	if t.Valid {
		v = 1
	}
	head := v<<31 | uint32(t.Super&0x1FFFFF)<<10 | uint32(t.LRU&7)<<7 | uint32(t.FIFO&7)<<4
	out[0] = byte(head >> 24)
	out[1] = byte(head >> 16)
	out[2] = byte(head >> 8)
	out[3] = byte(head)
	out[4] = byte(t.MissCnt >> 8)
	out[5] = byte(t.MissCnt)
	for i, r := range t.Slots {
		out[6+i] = encodeSlot(r)
	}
	return out
}

// DecodeStageTag unpacks a 14-byte entry. The super tag is truncated to its
// 21-bit field, as in hardware (set index bits reconstruct the rest).
func DecodeStageTag(b [StageTagBytes]byte) StageTag {
	head := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	t := StageTag{
		Valid:   head>>31 != 0,
		Super:   hybrid.SuperBlockID(head >> 10 & 0x1FFFFF),
		LRU:     uint8(head >> 7 & 7),
		FIFO:    uint8(head >> 4 & 7),
		MissCnt: uint16(b[4])<<8 | uint16(b[5]),
	}
	for i := range t.Slots {
		t.Slots[i] = decodeSlot(b[6+i])
	}
	return t
}

// FindRange returns the slot index of the range covering (blkOff, sub), or
// -1 when the sub-block is not staged in this entry.
func (t *StageTag) FindRange(blkOff, sub int) int {
	for i, r := range t.Slots {
		if r.Covers(blkOff, sub) {
			return i
		}
	}
	return -1
}

// FreeSlot returns the index of an empty slot, or -1 when the block is full.
func (t *StageTag) FreeSlot() int {
	for i, r := range t.Slots {
		if !r.Valid {
			return i
		}
	}
	return -1
}

// BlockRanges returns the slot indices holding ranges of block blkOff.
func (t *StageTag) BlockRanges(blkOff int) []int {
	var out []int
	for i, r := range t.Slots {
		if r.Valid && int(r.BlkOff) == blkOff {
			out = append(out, i)
		}
	}
	return out
}

// HasBlock reports whether any slot holds a range of block blkOff — the
// allocation-free form of len(BlockRanges(blkOff)) > 0 for the access hot
// path.
func (t *StageTag) HasBlock(blkOff int) bool {
	for _, r := range t.Slots {
		if r.Valid && int(r.BlkOff) == blkOff {
			return true
		}
	}
	return false
}
