package metadata

import (
	"testing"
	"testing/quick"

	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

func TestStageTagRoundTrip(t *testing.T) {
	entry := StageTag{
		Valid:   true,
		Super:   0x1ABCD,
		LRU:     5,
		FIFO:    3,
		MissCnt: 0xBEEF,
	}
	entry.Slots[0] = Range{Valid: true, CF: 1, Dirty: true, BlkOff: 7, SubOff: 5}
	entry.Slots[1] = Range{Valid: true, CF: 2, BlkOff: 3, SubOff: 6}
	entry.Slots[2] = Range{Valid: true, CF: 4, Dirty: true, BlkOff: 1, SubOff: 4}
	entry.Slots[3] = Range{Valid: true, CF: 4, Zero: true, BlkOff: 2}
	got := DecodeStageTag(entry.Encode())
	if got.Super != entry.Super || got.LRU != entry.LRU || got.FIFO != entry.FIFO ||
		got.MissCnt != entry.MissCnt || !got.Valid {
		t.Fatalf("header mismatch: %+v vs %+v", got, entry)
	}
	for i := range entry.Slots {
		if got.Slots[i] != entry.Slots[i] {
			t.Fatalf("slot %d: %+v vs %+v", i, got.Slots[i], entry.Slots[i])
		}
	}
}

func TestStageTagRoundTripQuick(t *testing.T) {
	f := func(super uint32, lru, fifo uint8, miss uint16, cfSel, dirty, blk, sub [8]uint8) bool {
		entry := StageTag{Valid: true, Super: hybrid.SuperBlockID(super & 0x1FFFFF),
			LRU: lru & 7, FIFO: fifo & 7, MissCnt: miss}
		for i := 0; i < 8; i++ {
			switch cfSel[i] % 5 {
			case 0: // empty
			case 1:
				entry.Slots[i] = Range{Valid: true, CF: 1, Dirty: dirty[i]&1 != 0,
					BlkOff: blk[i] & 7, SubOff: sub[i] & 7}
			case 2:
				entry.Slots[i] = Range{Valid: true, CF: 2, Dirty: dirty[i]&1 != 0,
					BlkOff: blk[i] & 7, SubOff: sub[i] & 3 * 2}
			case 3:
				entry.Slots[i] = Range{Valid: true, CF: 4, Dirty: dirty[i]&1 != 0,
					BlkOff: blk[i] & 7, SubOff: sub[i] & 1 * 4}
			case 4:
				entry.Slots[i] = Range{Valid: true, CF: 4, Zero: true, BlkOff: blk[i] & 7}
			}
		}
		got := DecodeStageTag(entry.Encode())
		return got == entry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStageTagInvalidEntry(t *testing.T) {
	var entry StageTag
	got := DecodeStageTag(entry.Encode())
	if got.Valid {
		t.Fatal("zero entry decoded as valid")
	}
}

func TestRemapEntryRoundTripQuick(t *testing.T) {
	f := func(remap, ptr, cf2, cf4 uint8, z bool) bool {
		e := RemapEntry{Remap: remap, Pointer: ptr & 3}
		if z {
			e.Z = true
		} else {
			e.CF2 = cf2 & 0xF
			e.CF4 = cf4 & 0x3
			if e.CF2 == 0xF && e.CF4 == 0x3 {
				e.CF4 = 0 // the all-ones combination is reserved for Z
			}
		}
		return DecodeRemapEntry(e.Encode()) == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotsUsed(t *testing.T) {
	// A0, A2, A4-A7 (CF4): remap bits 10101111 reading sub 0 as LSB =
	// subs {0,2,4,5,6,7}; CF4 on quad 1. Slots = 6 - 0 - 3 = 3.
	e := RemapEntry{Remap: 0b11110101, CF4: 0b10}
	if got := e.SlotsUsed(); got != 3 {
		t.Fatalf("SlotsUsed=%d, want 3", got)
	}
	z := RemapEntry{Remap: 0xFF, Z: true}
	if got := z.SlotsUsed(); got != 0 {
		t.Fatalf("Z block SlotsUsed=%d, want 0", got)
	}
}

// TestSlotPositionPaperExample reproduces the B3 lookup example from
// Section III-C: A0, A2, A4-A7 and B1 each take one sub-block slot before
// B3, so B3 is in the 5th slot (index 4... the paper counts "the 5th
// sub-block of Z" with A taking 3 slots (A0, A2, A4-A7 compressed) plus B1,
// then B3).
func TestSlotPositionPaperExample(t *testing.T) {
	var se SuperEntries
	// Block A (offset 0): subs 0,2,4,5,6,7 in fast memory; 4-7 at CF4.
	se[0] = RemapEntry{Remap: 0b11110101, CF4: 0b10, Pointer: 2}
	// Block B (offset 1): subs 1 and 3, uncompressed.
	se[1] = RemapEntry{Remap: 0b00001010, Pointer: 2}
	// A uses slots 0..2 (A0, A2, A4-A7); B1 takes slot 3; B3 takes slot 4.
	if got := se.SlotPosition(1, 3); got != 4 {
		t.Fatalf("B3 slot=%d, want 4", got)
	}
	if got := se.SlotPosition(1, 1); got != 3 {
		t.Fatalf("B1 slot=%d, want 3", got)
	}
	if got := se.SlotPosition(0, 4); got != 2 {
		t.Fatalf("A4 slot=%d, want 2", got)
	}
}

// TestSlotPositionPrefixSum cross-checks the prefix-sum decode against a
// brute-force walk of the sorted layout for randomized entries.
func TestSlotPositionPrefixSum(t *testing.T) {
	rng := sim.NewRNG(11)
	for iter := 0; iter < 2000; iter++ {
		var se SuperEntries
		ptr := uint8(rng.Intn(4))
		// Build random consistent entries sharing one pointer.
		for b := range se {
			if rng.Bool(0.4) {
				continue
			}
			e := RemapEntry{Pointer: ptr}
			for q := 0; q < 2; q++ { // quad granularity decisions
				switch rng.Intn(4) {
				case 0: // CF4 quad
					e.Remap |= 0xF << (4 * q)
					e.CF4 |= 1 << q
				case 1: // two CF2 pairs (maybe)
					for p := 0; p < 2; p++ {
						if rng.Bool(0.5) {
							e.Remap |= 0x3 << (4*q + 2*p)
							e.CF2 |= 1 << (2*q + p)
						}
					}
				case 2: // scattered CF1 subs
					for s := 0; s < 4; s++ {
						if rng.Bool(0.4) {
							e.Remap |= 1 << (4*q + s)
						}
					}
				}
			}
			se[b] = e
		}
		// Brute force: walk blocks in order, ranges in order, count slots.
		type key struct{ blk, sub int }
		want := make(map[key]int)
		slot := 0
		for b := 0; b < 8; b++ {
			e := se[b]
			if !e.Valid() || e.Pointer != ptr {
				continue
			}
			for s := 0; s < 8; {
				if e.Remap&(1<<s) == 0 {
					s++
					continue
				}
				start, cf := e.RangeOf(s)
				want[key{b, start}] = slot
				slot++
				s = start + cf
			}
		}
		for k, wantSlot := range want {
			if got := se.SlotPosition(k.blk, k.sub); got != wantSlot {
				t.Fatalf("iter %d: block %d sub %d: slot %d, want %d (entries %+v)",
					iter, k.blk, k.sub, got, wantSlot, se)
			}
		}
	}
}

func TestRemapCacheBasics(t *testing.T) {
	stats := sim.NewStats()
	rc := NewRemapCache(4, 2, stats)
	if rc.Lookup(100) {
		t.Fatal("empty cache hit")
	}
	rc.Insert(100)
	if !rc.Lookup(100) {
		t.Fatal("inserted line missed")
	}
	if !rc.MarkDirty(100) {
		t.Fatal("MarkDirty on cached line returned false")
	}
	// Fill the set of super 100 (sets=4: supers 100, 104 share set 0).
	rc.Insert(104)
	rc.Lookup(104)
	// Next insert to the same set evicts LRU (100, dirty) -> writeback.
	if !rc.Insert(108) {
		t.Fatal("expected dirty writeback on eviction")
	}
	if rc.Lookup(100) {
		t.Fatal("evicted line still present")
	}
}

func TestRemapCacheStorageBudget(t *testing.T) {
	stats := sim.NewStats()
	rc := NewRemapCache(256, 8, stats)
	// Table I: 32 kB remap cache (256 sets x 8 ways x 16 B of entries,
	// plus tag overhead).
	if got := rc.StorageBytes(); got < 32*1024 || got > 42*1024 {
		t.Fatalf("remap cache storage %d B, want ~32-40 kB", got)
	}
}

func TestRangeCovers(t *testing.T) {
	r := Range{Valid: true, CF: 4, BlkOff: 2, SubOff: 4}
	for s := 0; s < 8; s++ {
		want := s >= 4
		if got := r.Covers(2, s); got != want {
			t.Errorf("Covers(2,%d)=%v, want %v", s, got, want)
		}
	}
	if r.Covers(3, 5) {
		t.Error("range covers wrong block")
	}
}
