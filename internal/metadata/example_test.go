package metadata_test

import (
	"fmt"

	"baryon/internal/metadata"
)

// ExampleSuperEntries_SlotPosition reproduces the worked example of
// Section III-C / Fig. 5(e): block A has sub-blocks A0, A2 and the CF-4
// range A4-A7 in fast memory, block B has B1 and B3; looking up B3 walks
// the super-block's remap entries and lands in the 5th slot (index 4).
func ExampleSuperEntries_SlotPosition() {
	var se metadata.SuperEntries
	se[0] = metadata.RemapEntry{Remap: 0b11110101, CF4: 0b10, Pointer: 2} // block A
	se[1] = metadata.RemapEntry{Remap: 0b00001010, Pointer: 2}            // block B
	fmt.Println("B3 is in slot", se.SlotPosition(1, 3))
	// Output: B3 is in slot 4
}

// ExampleStageTag_Encode shows the 14-byte stage tag entry round trip.
func ExampleStageTag_Encode() {
	entry := metadata.StageTag{Valid: true, Super: 0x1234, MissCnt: 7}
	entry.Slots[0] = metadata.Range{Valid: true, CF: 2, BlkOff: 3, SubOff: 6}
	packed := entry.Encode()
	back := metadata.DecodeStageTag(packed)
	fmt.Println(len(packed), "bytes, CF", back.Slots[0].CF, "at sub", back.Slots[0].SubOff)
	// Output: 14 bytes, CF 2 at sub 6
}
