package mem

// This file implements a protocol-level DDR timing engine as an optional
// high-fidelity alternative to the busy-until model in device.go. It tracks
// per-bank state (precharged / activating / row open), enforces the core
// JEDEC timing constraints (tRCD, tCAS/tCWD, tRP, tRAS, tWR, tCCD, tRRD,
// tFAW) and periodic refresh (tREFI / tRFC), and schedules commands at the
// earliest legal cycle. Enable it per device with Config.DetailedTiming or
// use the DDR4DetailedConfig preset.
//
// All parameters are CPU cycles at the Table I 3.2 GHz clock.

// DDRTimings holds the protocol constraints of one device generation.
type DDRTimings struct {
	TRCD uint64 // ACT -> column command
	TCAS uint64 // READ -> first data
	TCWD uint64 // WRITE -> first data
	TRP  uint64 // PRE -> ACT
	TRAS uint64 // ACT -> PRE (minimum row-open time)
	TWR  uint64 // end of write data -> PRE
	TCCD uint64 // column command -> column command (same bank group)
	TRRD uint64 // ACT -> ACT (different banks)
	TFAW uint64 // rolling four-activate window
	TBL  uint64 // data burst length on the bus
	// Refresh.
	TREFI uint64 // average refresh interval
	TRFC  uint64 // refresh cycle time (all banks unavailable)
}

// DDR4Timings3200 returns DDR4-3200 (22-22-22) timings in CPU cycles at
// 3.2 GHz: one DRAM clock at 1600 MHz is two CPU cycles.
func DDR4Timings3200() DDRTimings {
	const clk = 2 // CPU cycles per DRAM cycle
	return DDRTimings{
		TRCD:  22 * clk,
		TCAS:  22 * clk,
		TCWD:  16 * clk,
		TRP:   22 * clk,
		TRAS:  52 * clk,
		TWR:   24 * clk,
		TCCD:  8 * clk,
		TRRD:  8 * clk,
		TFAW:  34 * clk,
		TBL:   4 * clk, // BL8 at two transfers per DRAM clock
		TREFI: 12480,   // 3.9 us
		TRFC:  1120,    // 350 ns
	}
}

// bankState is one bank's protocol state.
type bankState struct {
	rowOpen    bool
	openRow    uint64
	actReadyAt uint64 // earliest next ACT (covers tRP after PRE)
	colReadyAt uint64 // earliest next column command
	preReadyAt uint64 // earliest next PRE (covers tRAS / tWR)
}

// ddrChannel is one channel's protocol state.
type ddrChannel struct {
	banks       []bankState
	busFreeAt   uint64
	actTimes    [4]uint64 // rolling window for tFAW
	actIdx      int
	lastRefresh uint64
}

// DDREngine schedules commands for one device under protocol constraints.
type DDREngine struct {
	t        DDRTimings
	channels []ddrChannel
	rowBytes uint64
	banks    int
}

// NewDDREngine builds an engine for channels x banks with the given row
// size.
func NewDDREngine(t DDRTimings, channels, banks int, rowBytes uint64) *DDREngine {
	e := &DDREngine{t: t, rowBytes: rowBytes, banks: banks}
	e.channels = make([]ddrChannel, channels)
	for i := range e.channels {
		e.channels[i].banks = make([]bankState, banks)
	}
	return e
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// refresh blocks the channel for tRFC every tREFI.
func (e *DDREngine) refresh(ch *ddrChannel, now uint64) uint64 {
	if now < ch.lastRefresh+e.t.TREFI {
		return now
	}
	// One refresh covers the elapsed interval (simplification: no queueing
	// of multiple missed refreshes — the engine is driven densely).
	ch.lastRefresh = now
	end := now + e.t.TRFC
	for b := range ch.banks {
		bk := &ch.banks[b]
		bk.rowOpen = false
		bk.actReadyAt = maxu(bk.actReadyAt, end)
	}
	return end
}

// Access schedules one column access (with ACT/PRE as needed) and returns
// (firstData, lastData, rowHit).
func (e *DDREngine) Access(now uint64, addr uint64, write bool) (uint64, uint64, bool) {
	ch := &e.channels[(addr/256)%uint64(len(e.channels))]
	now = e.refresh(ch, now)
	bk := &ch.banks[(addr/e.rowBytes)%uint64(e.banks)]
	row := addr / e.rowBytes / uint64(e.banks)

	rowHit := bk.rowOpen && bk.openRow == row
	t := now
	if !rowHit {
		// Row miss: PRE (if open) then ACT.
		if bk.rowOpen {
			pre := maxu(t, bk.preReadyAt)
			bk.actReadyAt = maxu(bk.actReadyAt, pre+e.t.TRP)
			bk.rowOpen = false
		}
		act := maxu(t, bk.actReadyAt)
		// tRRD against the channel's last activate and the tFAW window.
		// Window entries store act+1 so zero means "no activate yet".
		if prev := ch.actTimes[(ch.actIdx+3)%4]; prev != 0 {
			act = maxu(act, prev-1+e.t.TRRD)
		}
		if oldest := ch.actTimes[ch.actIdx]; oldest != 0 {
			act = maxu(act, oldest-1+e.t.TFAW)
		}
		ch.actTimes[ch.actIdx] = act + 1
		ch.actIdx = (ch.actIdx + 1) % 4
		bk.rowOpen = true
		bk.openRow = row
		bk.colReadyAt = act + e.t.TRCD
		bk.preReadyAt = act + e.t.TRAS
		t = act
	}

	col := maxu(maxu(t, bk.colReadyAt), ch.busFreeAt)
	bk.colReadyAt = col + e.t.TCCD

	var first, last uint64
	if write {
		first = col + e.t.TCWD
		last = first + e.t.TBL
		bk.preReadyAt = maxu(bk.preReadyAt, last+e.t.TWR)
	} else {
		first = col + e.t.TCAS
		last = first + e.t.TBL
	}
	ch.busFreeAt = last
	return first, last, rowHit
}
