package mem

import (
	"testing"

	"baryon/internal/sim"
)

// cxlTestConfig returns NVM media behind a small expander link so link
// effects dominate quickly in tests.
func cxlTestConfig(p CXLParams) Config {
	cfg := NVMConfig()
	cfg.Name = "CXL-TEST"
	cfg.CXL = &p
	return cfg
}

// TestCXLZeroConfigNoOp pins the back-compat contract: a nil CXL pointer and
// zero-valued params must behave bit-identically to a device without the
// model — same completion times, same counters, no extra metrics registered.
func TestCXLZeroConfigNoOp(t *testing.T) {
	run := func(cfg Config) (*Device, *sim.Stats) {
		stats := sim.NewStats()
		d := NewDevice(cfg, stats)
		var done uint64
		for i := uint64(0); i < 200; i++ {
			addr := (i * 977) % (1 << 20)
			if end := d.Access(i*7, addr, 64, i%3 == 0); end > done {
				done = end
			}
			if i%5 == 0 {
				d.AccessBackground(i*7, addr+4096, 2048, true)
			}
		}
		d.Counters().Reads.Add(done) // fold timing into a comparable counter
		return d, stats
	}

	base := NVMConfig()
	base.Name = "CXL-TEST"
	_, wantStats := run(base)
	for _, cfg := range []Config{cxlTestConfig(CXLParams{}), func() Config {
		c := base
		c.CXL = nil
		return c
	}()} {
		d, stats := run(cfg)
		if d.HasCXL() {
			t.Fatalf("zero-valued CXLParams must not enable the link model")
		}
		for _, name := range wantStats.Names() {
			if got, want := stats.Get(name), wantStats.Get(name); got != want {
				t.Fatalf("counter %s: got %d, want %d", name, got, want)
			}
		}
		if got, want := len(stats.HistNames()), len(wantStats.HistNames()); got != want {
			t.Fatalf("histogram count: got %d, want %d", got, want)
		}
	}
}

// TestCXLLinkFIFOOrdering checks the link queue is FIFO: transfers admitted
// in issue order clear the link in that order, so equal-size reads issued at
// the same cycle complete in strictly non-decreasing times, each at least
// one link occupancy after the previous.
func TestCXLLinkFIFOOrdering(t *testing.T) {
	stats := sim.NewStats()
	d := NewDevice(cxlTestConfig(CXLParams{
		LinkLatencyCycles: 96,
		LinkBytesPerCycle: 4.0,
	}), stats)

	// Same bank/row so media timing cannot reorder anything.
	var prev uint64
	for i := 0; i < 32; i++ {
		done := d.Access(0, 0, 64, false)
		if done < prev {
			t.Fatalf("access %d completed at %d, before predecessor at %d", i, done, prev)
		}
		if i > 0 && done-prev < uint64(64/4.0) {
			t.Fatalf("access %d completed only %d cycles after predecessor; link occupancy is 16",
				i, done-prev)
		}
		prev = done
	}

	// A single read must pay the request and response flit latencies on top
	// of the media path.
	d.Reset()
	stats2 := sim.NewStats()
	bare := NewDevice(NVMConfig(), stats2)
	withLink := d.Access(0, 1<<16, 64, false)
	direct := bare.Access(0, 1<<16, 64, false)
	if withLink < direct+2*96 {
		t.Fatalf("read through link done at %d; want >= direct %d + 2*96", withLink, direct)
	}
}

// TestCXLConservation checks the model moves bytes, it does not create or
// destroy them: media byte counters match a direct-attached device under the
// same access sequence, and the link counter equals total demand+background
// bytes offered.
func TestCXLConservation(t *testing.T) {
	type dev struct {
		d     *Device
		stats *sim.Stats
	}
	mk := func(cfg Config) dev {
		s := sim.NewStats()
		return dev{NewDevice(cfg, s), s}
	}
	linked := mk(cxlTestConfig(CXLParams{LinkLatencyCycles: 50, LinkBytesPerCycle: 2.0, InternalBytesPerCycle: 3.0}))
	direct := mk(Config{Name: "CXL-TEST", Channels: 4, Banks: 8, RowHitLatency: 246,
		RowMissLatency: 246, WriteLatency: 492, BytesPerCycle: 3.33, RowBufferBytes: 2048,
		ReadPJPerBit: 14, WritePJPerBit: 21})

	var offered uint64
	for i := uint64(0); i < 300; i++ {
		addr := (i * 4093) % (1 << 22)
		size := uint64(64)
		if i%7 == 0 {
			size = 2048
		}
		write := i%4 == 0
		linked.d.Access(i*11, addr, size, write)
		direct.d.Access(i*11, addr, size, write)
		offered += size
		if i%3 == 0 {
			linked.d.AccessBackground(i*11, addr+8192, 512, true)
			direct.d.AccessBackground(i*11, addr+8192, 512, true)
			offered += 512
		}
	}
	for _, name := range []string{"CXL-TEST.bytesRead", "CXL-TEST.bytesWritten",
		"CXL-TEST.reads", "CXL-TEST.writes"} {
		if got, want := linked.stats.Get(name), direct.stats.Get(name); got != want {
			t.Fatalf("%s: linked %d, direct %d", name, got, want)
		}
	}
	if got := linked.stats.Get("CXL-TEST.cxlLinkBytes"); got != offered {
		t.Fatalf("cxlLinkBytes = %d, want offered %d", got, offered)
	}
	// Without compression the internal path carries exactly the link bytes.
	if got := linked.stats.Get("CXL-TEST.cxlInternalBytes"); got != offered {
		t.Fatalf("cxlInternalBytes = %d, want %d without compression", got, offered)
	}
}

// TestCXLExpanderCompression checks expander-side compression shrinks only
// the internal path: link bytes stay raw, internal bytes drop on
// compressible content, and without a probe the estimate falls back to raw.
func TestCXLExpanderCompression(t *testing.T) {
	mk := func() (*Device, *sim.Stats) {
		s := sim.NewStats()
		return NewDevice(cxlTestConfig(CXLParams{
			LinkLatencyCycles:     50,
			LinkBytesPerCycle:     4.0,
			InternalBytesPerCycle: 4.0,
			Compression:           "best",
		}), s), s
	}

	// Zero-filled lines compress hard under FPC.
	zeros := make([]byte, 64)
	d, stats := mk()
	d.SetContentProbe(func(addr, size uint64) []byte { return zeros })
	for i := uint64(0); i < 64; i++ {
		d.Access(0, i*64, 64, false)
	}
	link := stats.Get("CXL-TEST.cxlLinkBytes")
	internal := stats.Get("CXL-TEST.cxlInternalBytes")
	if link != 64*64 {
		t.Fatalf("cxlLinkBytes = %d, want %d (link always carries raw bytes)", link, 64*64)
	}
	if internal >= link {
		t.Fatalf("cxlInternalBytes = %d, want < link bytes %d on zero-filled lines", internal, link)
	}

	// No probe attached: fall back to the uncompressed size.
	d2, stats2 := mk()
	for i := uint64(0); i < 64; i++ {
		d2.Access(0, i*64, 64, false)
	}
	if got := stats2.Get("CXL-TEST.cxlInternalBytes"); got != 64*64 {
		t.Fatalf("cxlInternalBytes without probe = %d, want raw %d", got, 64*64)
	}
}

// TestPresetRegistry pins the strict preset lookup the config layer
// validates against, alongside SlowPreset's historical lenient fallback.
func TestPresetRegistry(t *testing.T) {
	for _, name := range Presets() {
		cfg, ok := PresetByName(name)
		if !ok || cfg.Name == "" {
			t.Fatalf("preset %q did not resolve", name)
		}
	}
	if _, ok := PresetByName("bogus"); ok {
		t.Fatalf("unknown preset must not resolve")
	}
	for _, name := range SlowPresetNames() {
		if _, ok := PresetByName(name); !ok {
			t.Fatalf("slow preset %q missing from registry", name)
		}
	}
	if got := len(Presets()); got < 7 {
		t.Fatalf("expected at least 7 registered presets, got %d", got)
	}
	for _, cfg := range []Config{CXLDRAMConfig(), CXLIBEXConfig()} {
		if !cfg.CXL.Enabled() {
			t.Fatalf("preset %s should enable the CXL model", cfg.Name)
		}
	}
	if !ValidCXLCompression("best") || ValidCXLCompression("zip") {
		t.Fatalf("ValidCXLCompression accepts the wrong set")
	}
}
