// Package mem models the two memory devices of the hybrid system: a DDR4
// fast memory and an NVM slow memory, with per-channel bandwidth occupancy,
// per-bank row-buffer timing and the energy accounting of Table I. The model
// is deliberately at the "busy-until" level of detail — enough to produce
// queueing, bandwidth saturation and realistic latency gaps between the
// tiers, which is what the paper's results depend on — rather than a full
// DDR protocol state machine.
package mem

import (
	"baryon/internal/fault"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// Config describes one memory device. All latencies are in CPU cycles
// (3.2 GHz per Table I).
type Config struct {
	Name     string
	Channels int
	Banks    int // banks per channel (rank × bank folded together)

	// RowHitLatency is the access latency when the target row is open
	// (CAS only); RowMissLatency covers PRE+ACT+CAS.
	RowHitLatency  uint64
	RowMissLatency uint64
	WriteLatency   uint64 // additional device write time beyond the read path

	// BytesPerCycle is the peak per-channel transfer rate.
	BytesPerCycle float64

	RowBufferBytes uint64

	// Energy model.
	ReadPJPerBit  float64
	WritePJPerBit float64
	ActivatePJ    float64 // per row activation (ACT+PRE pair)

	// DetailedTiming, when non-nil, replaces the busy-until demand-access
	// model with the protocol-level DDR engine (JEDEC bank-state machine
	// with refresh); background traffic keeps the queue model.
	DetailedTiming *DDRTimings

	// CXL, when it describes any link behaviour (CXLParams.Enabled), puts
	// the device behind a CXL-expander link: every access pays the serdes
	// latency and serialises on the link/internal-bandwidth frontier. Nil
	// or zero-valued params leave the device bit-identical to one without
	// the model.
	CXL *CXLParams
}

// DDR4DetailedConfig returns the Table I fast memory driven by the
// protocol-level DDR4-3200 timing engine.
func DDR4DetailedConfig() Config {
	cfg := DDR4Config()
	t := DDR4Timings3200()
	cfg.DetailedTiming = &t
	return cfg
}

// DDR4Config returns the Table I fast-memory device: DDR4-3200, 4 channels,
// 2 ranks x 16 banks, 22-22-22 timing, 5.0 pJ/bit RD/WR, 535.8 pJ ACT/PRE.
func DDR4Config() Config {
	return Config{
		Name:     "DDR4-3200",
		Channels: 4,
		Banks:    32, // 2 ranks x 16 banks
		// tCAS = 22 DRAM cycles @1600 MHz = 13.75 ns = 44 CPU cycles @3.2 GHz.
		RowHitLatency:  44,
		RowMissLatency: 132, // tRP + tRCD + tCAS
		WriteLatency:   44,
		// 3200 MT/s x 8 B bus = 25.6 GB/s per channel = 8 B per CPU cycle.
		BytesPerCycle:  8.0,
		RowBufferBytes: 2048,
		ReadPJPerBit:   5.0,
		WritePJPerBit:  5.0,
		ActivatePJ:     535.8,
	}
}

// NVMConfig returns the Table I slow-memory device: 1333 MHz, 4 channels,
// 1 rank x 8 banks, 76.92 ns read / 230.77 ns write, 14 / 21 pJ/bit.
func NVMConfig() Config {
	return Config{
		Name:     "NVM",
		Channels: 4,
		Banks:    8,
		// 76.92 ns = 246 CPU cycles @3.2 GHz; NVM row buffers help little.
		RowHitLatency:  246,
		RowMissLatency: 246,
		// 230.77 ns = 738 cycles; extra over the read path.
		WriteLatency: 492,
		// 1333 MT/s x 8 B = 10.66 GB/s per channel = 3.33 B per CPU cycle.
		BytesPerCycle:  3.33,
		RowBufferBytes: 2048,
		ReadPJPerBit:   14.0,
		WritePJPerBit:  21.0,
		ActivatePJ:     0, // folded into per-bit cost for NVM
	}
}

type bank struct {
	busyUntil uint64
	openRow   uint64
	hasRow    bool
}

type channel struct {
	freeAt  float64 // demand bus occupancy frontier, in cycles
	bgBytes float64 // queued background bytes not yet drained
	banks   []bank
}

// bgHighWater is the per-channel background queue depth (bytes) the
// controller can absorb before background traffic starts delaying demand
// accesses. Below it, background transfers drain into idle bus cycles.
const bgHighWater = 32 * 1024

// Device is one memory device instance.
type Device struct {
	cfg      Config
	engine   *DDREngine
	channels []channel

	reads, writes              *sim.Counter
	bytesRead, bytesWritten    *sim.Counter
	rowHits, rowMisses         *sim.Counter
	energy                     *sim.FloatAccum
	readLat                    *sim.Counter
	queueHist, svcHist         *sim.Histogram
	tracer                     *obs.Tracer
	maxQueueing                uint64
	dbgChan, dbgBank, dbgSpill uint64

	// faults, when non-nil, injects read faults and tracks write wear; the
	// outcome of the last demand access is kept for the engine's
	// degradation path. Nil (the default) keeps the hot path fault-free.
	faults    *fault.Injector
	lastFault fault.Class

	// link, when non-nil, is the CXL-expander front end every access goes
	// through (see cxl.go). Nil keeps the direct-attached hot path.
	link *cxlLink
}

// Counters exposes the device's typed metric handles so run harnesses can
// compute window deltas against snapshots without string-keyed lookups.
type Counters struct {
	Reads, Writes           *sim.Counter
	BytesRead, BytesWritten *sim.Counter
	RowHits, RowMisses      *sim.Counter
	// ReadLatCycles accumulates observed demand-read latency.
	ReadLatCycles *sim.Counter
	// EnergyPJ accumulates access energy in picojoules.
	EnergyPJ *sim.FloatAccum
	// CXLLinkBytes/CXLInternalBytes are the expander's host-link and
	// internal-path traffic counters; nil on devices without a CXL link.
	CXLLinkBytes, CXLInternalBytes *sim.Counter
}

// NewDevice builds a device from cfg, registering its counters in stats
// under the device name scope (e.g. "DDR4-3200.bytesRead"). All traffic,
// energy and latency metrics live on the run registry so they participate
// in snapshots and warmup/measurement windows.
func NewDevice(cfg Config, stats *sim.Stats) *Device {
	d := &Device{cfg: cfg}
	if cfg.DetailedTiming != nil {
		d.engine = NewDDREngine(*cfg.DetailedTiming, cfg.Channels, cfg.Banks, cfg.RowBufferBytes)
	}
	d.channels = make([]channel, cfg.Channels)
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.Banks)
	}
	s := stats.Scope(cfg.Name)
	d.reads = s.Counter("reads")
	d.writes = s.Counter("writes")
	d.bytesRead = s.Counter("bytesRead")
	d.bytesWritten = s.Counter("bytesWritten")
	d.rowHits = s.Counter("rowHits")
	d.rowMisses = s.Counter("rowMisses")
	d.readLat = s.Counter("readLatCycles")
	d.energy = s.Float("energyPJ")
	// Queue occupancy (cycles a demand access waits for channel/bank) and
	// end-to-end device service latency, per demand access.
	d.queueHist = s.Histogram("lat.queue")
	d.svcHist = s.Histogram("lat.service")
	if cfg.CXL.Enabled() {
		d.link = newCXLLink(*cfg.CXL, s)
	}
	return d
}

// HasCXL reports whether the device sits behind a CXL-expander link.
func (d *Device) HasCXL() bool { return d.link != nil }

// SetContentProbe attaches a function that returns the current bytes at a
// device address, used by expander-side compression to estimate the
// compressed size crossing the internal path. Only CXL devices with a
// Compression mode consult it; without a probe the internal path carries
// uncompressed bytes. Nil detaches.
func (d *Device) SetContentProbe(fn func(addr, size uint64) []byte) {
	if d.link != nil {
		d.link.probe = fn
	}
}

// SetTracer attaches a request-lifecycle tracer; device service spans are
// recorded for sampled requests. Nil detaches.
func (d *Device) SetTracer(t *obs.Tracer) { d.tracer = t }

// SetFaults attaches a fault injector: demand and background reads draw
// fault outcomes, writes advance wear counters. Nil (the default) detaches;
// a detached device behaves bit-identically to a build without injection.
func (d *Device) SetFaults(in *fault.Injector) { d.faults = in }

// Faults returns the attached injector (nil when injection is off).
func (d *Device) Faults() *fault.Injector { return d.faults }

// TakeFault returns the ECC outcome of the most recent demand access and
// resets it to None. Background accesses never set it.
func (d *Device) TakeFault() fault.Class {
	f := d.lastFault
	d.lastFault = fault.None
	return f
}

// AccessClean performs a demand access with fault injection suppressed: the
// ECC-corrected retry and remapped-spare refetch paths, which re-read known
// good data.
func (d *Device) AccessClean(now uint64, addr uint64, size uint64, write bool) uint64 {
	if d.faults == nil {
		return d.Access(now, addr, size, write)
	}
	d.faults.Suppress(true)
	done := d.Access(now, addr, size, write)
	d.faults.Suppress(false)
	return done
}

// Counters returns the device's typed metric handles.
func (d *Device) Counters() Counters {
	c := Counters{
		Reads: d.reads, Writes: d.writes,
		BytesRead: d.bytesRead, BytesWritten: d.bytesWritten,
		RowHits: d.rowHits, RowMisses: d.rowMisses,
		ReadLatCycles: d.readLat, EnergyPJ: d.energy,
	}
	if d.link != nil {
		c.CXLLinkBytes, c.CXLInternalBytes = d.link.linkBytes, d.link.internalBytes
	}
	return c
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Access performs a read or write of size bytes at device address addr
// starting no earlier than cycle now, and returns the completion cycle.
// Writes are accounted for bandwidth/energy but complete immediately from
// the requester's perspective (posted writes buffered in the controller);
// the returned cycle is when the data has actually been absorbed.
//
// Transfers larger than the 256 B channel-interleave granularity are
// striped across channels, as the address mapping implies: each 256 B chunk
// goes to its own channel and the access completes when the last chunk does.
func (d *Device) Access(now uint64, addr uint64, size uint64, write bool) uint64 {
	if size == 0 {
		return now
	}
	if d.link != nil {
		return d.accessCXL(now, addr, size, write)
	}
	return d.accessStriped(now, addr, size, write)
}

// accessCXL wraps one demand access in the expander link: the transfer is
// admitted FIFO onto the link frontier, the media sees the request one flit
// latency after it clears the link, and reads pay the return flit on top of
// the media completion. Writes are posted at the expander.
func (d *Device) accessCXL(now uint64, addr uint64, size uint64, write bool) uint64 {
	clear := uint64(d.link.admit(now, addr, size))
	issue := clear + d.link.p.LinkLatencyCycles
	d.link.queueHist.Observe(issue - now)
	done := d.accessStriped(issue, addr, size, write)
	if !write {
		done += d.link.p.LinkLatencyCycles
	}
	return done
}

// accessStriped performs the media-side access, striping transfers larger
// than the channel-interleave granularity.
func (d *Device) accessStriped(now uint64, addr uint64, size uint64, write bool) uint64 {
	const interleave = 256
	if size > interleave {
		var done uint64
		for off := uint64(0); off < size; off += interleave {
			n := size - off
			if n > interleave {
				n = interleave
			}
			if end := d.access(now, addr+off, n, write); end > done {
				done = end
			}
		}
		return done
	}
	return d.access(now, addr, size, write)
}

// AccessBackground performs a transfer that is off the critical path
// (fills, writebacks, migrations, commits). Background bytes drain into
// idle bus cycles; they only delay demand accesses once the per-channel
// background queue exceeds its high-water mark — the "replacements are off
// the critical path" behaviour of real memory controllers. The returned
// cycle is a nominal completion time.
func (d *Device) AccessBackground(now uint64, addr uint64, size uint64, write bool) uint64 {
	if size == 0 {
		return now
	}
	nominal := now
	if d.link != nil {
		// Background traffic crosses the same link: it occupies the shared
		// frontier (delaying later demand accesses) and its nominal
		// completion shifts by the queueing + flit latency.
		nominal = uint64(d.link.admit(now, addr, size)) + d.link.p.LinkLatencyCycles
	}
	// Account bytes/energy/op counts identically to demand traffic.
	const interleave = 256
	for off := uint64(0); off < size; off += interleave {
		n := size - off
		if n > interleave {
			n = interleave
		}
		ch := &d.channels[((addr+off)/256)%uint64(d.cfg.Channels)]
		d.drain(ch, now)
		ch.bgBytes += float64(n)
		if write {
			d.writes.Inc()
			d.bytesWritten.Add(n)
			d.energy.Add(float64(n*8) * d.cfg.WritePJPerBit)
		} else {
			d.reads.Inc()
			d.bytesRead.Add(n)
			d.energy.Add(float64(n*8) * d.cfg.ReadPJPerBit)
		}
		if d.faults != nil {
			// Background traffic ages cells and suffers faults like demand
			// traffic, but its nominal completion time absorbs the ECC
			// handling; outcomes are counted, not retimed, and never
			// surface through TakeFault.
			if write {
				d.faults.OnWrite(addr+off, n)
			} else {
				d.faults.OnRead(addr+off, n)
			}
		}
	}
	return nominal + d.cfg.RowMissLatency + uint64(float64(size)/d.cfg.BytesPerCycle)
}

// drain moves queued background bytes into the idle bus time up to now.
func (d *Device) drain(ch *channel, now uint64) {
	if float64(now) > ch.freeAt {
		idle := float64(now) - ch.freeAt
		drained := idle * d.cfg.BytesPerCycle
		if drained > ch.bgBytes {
			drained = ch.bgBytes
		}
		ch.bgBytes -= drained
		ch.freeAt += drained / d.cfg.BytesPerCycle
	}
}

func (d *Device) access(now uint64, addr uint64, size uint64, write bool) uint64 {
	if d.engine != nil {
		return d.accessDetailed(now, addr, size, write)
	}
	ch := &d.channels[(addr/256)%uint64(d.cfg.Channels)]
	bk := &ch.banks[(addr/d.cfg.RowBufferBytes)%uint64(d.cfg.Banks)]
	row := addr / d.cfg.RowBufferBytes / uint64(d.cfg.Banks)

	d.drain(ch, now)
	start := float64(now)
	if ch.freeAt > start {
		start = ch.freeAt
		d.dbgChan++
	}
	// A saturated background queue spills onto the demand path.
	if ch.bgBytes > bgHighWater {
		spill := (ch.bgBytes - bgHighWater) / d.cfg.BytesPerCycle
		start += spill
		ch.bgBytes = bgHighWater
		d.dbgSpill += uint64(spill)
	}
	if float64(bk.busyUntil) > start {
		start = float64(bk.busyUntil)
		d.dbgBank++
	}
	queue := uint64(start) - now
	if queue > d.maxQueueing {
		d.maxQueueing = queue
	}
	d.queueHist.Observe(queue)

	lat := d.cfg.RowHitLatency
	rowClass := "rowHit"
	if !bk.hasRow || bk.openRow != row {
		lat = d.cfg.RowMissLatency
		bk.openRow, bk.hasRow = row, true
		d.rowMisses.Inc()
		d.energy.Add(d.cfg.ActivatePJ)
		rowClass = "rowMiss"
	} else {
		d.rowHits.Inc()
	}
	if write {
		lat += d.cfg.WriteLatency
	}

	xfer := float64(size) / d.cfg.BytesPerCycle
	ch.freeAt = start + xfer
	done := uint64(start+xfer) + lat
	// The bank is occupied for the transfer itself; subsequent row-hit
	// accesses pipeline while earlier data is in flight.
	bk.busyUntil = uint64(start + xfer)

	if write {
		d.writes.Inc()
		d.bytesWritten.Add(size)
		d.energy.Add(float64(size*8) * d.cfg.WritePJPerBit)
	} else {
		d.reads.Inc()
		d.bytesRead.Add(size)
		d.energy.Add(float64(size*8) * d.cfg.ReadPJPerBit)
		d.readLat.Add(done - now)
	}
	d.inject(addr, size, write)
	d.svcHist.Observe(done - now)
	if d.tracer != nil {
		d.tracer.Span(d.cfg.Name, rowClass, now, done)
	}
	return done
}

// inject draws the fault outcome for one demand chunk, accumulating the
// worst outcome across the chunks of a striped access for TakeFault.
func (d *Device) inject(addr, size uint64, write bool) {
	if d.faults == nil {
		return
	}
	if write {
		d.faults.OnWrite(addr, size)
		return
	}
	if f := d.faults.OnRead(addr, size); f > d.lastFault {
		d.lastFault = f
	}
}

// EnergyPJ returns the accumulated access energy in picojoules. It is a
// thin read of the registry accumulator.
func (d *Device) EnergyPJ() float64 { return d.energy.Value() }

// TotalBytes returns the total bytes moved in either direction.
func (d *Device) TotalBytes() uint64 { return d.bytesRead.Value() + d.bytesWritten.Value() }

// AvgReadLatency returns the mean observed read latency in cycles.
func (d *Device) AvgReadLatency() float64 {
	return sim.Ratio(d.readLat.Value(), d.reads.Value())
}

// Reset clears all timing state and the non-registry accumulators. The
// traffic/energy/latency counters live on the run's Stats registry and are
// reset there (Stats.Reset on the device's scope).
func (d *Device) Reset() {
	for i := range d.channels {
		d.channels[i].freeAt = 0
		d.channels[i].bgBytes = 0
		for j := range d.channels[i].banks {
			d.channels[i].banks[j] = bank{}
		}
	}
	d.maxQueueing = 0
	d.dbgChan, d.dbgBank, d.dbgSpill = 0, 0, 0
	d.lastFault = fault.None
	if d.link != nil {
		d.link.freeAt = 0
	}
}

// accessDetailed serves one demand access through the protocol engine,
// keeping the background-queue spill behaviour of the simple model.
func (d *Device) accessDetailed(now uint64, addr uint64, size uint64, write bool) uint64 {
	ch := &d.channels[(addr/256)%uint64(d.cfg.Channels)]
	d.drain(ch, now)
	start := now
	if ch.bgBytes > bgHighWater {
		start += uint64((ch.bgBytes - bgHighWater) / d.cfg.BytesPerCycle)
		ch.bgBytes = bgHighWater
	}
	d.queueHist.Observe(start - now)
	rowClass := "rowHit"
	var done uint64
	for off := uint64(0); off < size; off += 64 {
		_, last, rowHit := d.engine.Access(start, addr+off, write)
		if last > done {
			done = last
		}
		if rowHit {
			d.rowHits.Inc()
		} else {
			d.rowMisses.Inc()
			d.energy.Add(d.cfg.ActivatePJ)
			rowClass = "rowMiss"
		}
	}
	if write {
		d.writes.Inc()
		d.bytesWritten.Add(size)
		d.energy.Add(float64(size*8) * d.cfg.WritePJPerBit)
	} else {
		d.reads.Inc()
		d.bytesRead.Add(size)
		d.energy.Add(float64(size*8) * d.cfg.ReadPJPerBit)
		d.readLat.Add(done - now)
	}
	d.inject(addr, size, write)
	d.svcHist.Observe(done - now)
	if d.tracer != nil {
		d.tracer.Span(d.cfg.Name, rowClass, now, done)
	}
	return done
}

// MaxQueueing returns the worst demand-access queueing delay observed.
func (d *Device) MaxQueueing() uint64 { return d.maxQueueing }

// DebugQueueing reports (channel-queued count, bank-queued count, total spill cycles).
func (d *Device) DebugQueueing() (uint64, uint64, uint64) { return d.dbgChan, d.dbgBank, d.dbgSpill }
