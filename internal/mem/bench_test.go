package mem

import (
	"testing"

	"baryon/internal/sim"
)

func BenchmarkDeviceDemandAccess(b *testing.B) {
	d := NewDevice(DDR4Config(), sim.NewStats())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Access(uint64(i)*10, uint64(i)*64%(1<<24), 64, i%4 == 0)
	}
}

func BenchmarkDeviceBackgroundAccess(b *testing.B) {
	d := NewDevice(NVMConfig(), sim.NewStats())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.AccessBackground(uint64(i)*10, uint64(i)*256%(1<<24), 256, true)
	}
}
