package mem

import (
	"testing"

	"baryon/internal/sim"
)

func TestDDR4FasterThanNVM(t *testing.T) {
	stats := sim.NewStats()
	ddr := NewDevice(DDR4Config(), stats)
	nvm := NewDevice(NVMConfig(), stats)
	dDone := ddr.Access(0, 0, 64, false)
	nDone := nvm.Access(0, 0, 64, false)
	if dDone >= nDone {
		t.Fatalf("DDR4 read (%d cy) not faster than NVM read (%d cy)", dDone, nDone)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	stats := sim.NewStats()
	nvm := NewDevice(NVMConfig(), stats)
	r := nvm.Access(0, 0, 64, false)
	nvm.Reset()
	w := nvm.Access(0, 0, 64, true)
	if w <= r {
		t.Fatalf("NVM write (%d) not slower than read (%d)", w, r)
	}
}

func TestRowBufferHit(t *testing.T) {
	stats := sim.NewStats()
	ddr := NewDevice(DDR4Config(), stats)
	ddr.Access(0, 0, 64, false) // opens the row
	if stats.Get("DDR4-3200.rowMisses") != 1 {
		t.Fatalf("first access should be a row miss")
	}
	// Same row, issue far in the future so the bank is idle.
	ddr.Access(100000, 64, 64, false)
	if stats.Get("DDR4-3200.rowHits") != 1 {
		t.Fatalf("second access to the open row should hit, got hits=%d misses=%d",
			stats.Get("DDR4-3200.rowHits"), stats.Get("DDR4-3200.rowMisses"))
	}
}

func TestBandwidthQueueing(t *testing.T) {
	stats := sim.NewStats()
	ddr := NewDevice(DDR4Config(), stats)
	// Saturate the device: 32 back-to-back 2 kB transfers at cycle 0.
	// Each stripes across the four channels, so the aggregate bandwidth is
	// 4 channels x 8 B/cycle: 64 kB / 32 B/cycle = 2048 cycles minimum.
	var last uint64
	for i := 0; i < 32; i++ {
		last = ddr.Access(0, uint64(i)*1024*4, 2048, false)
	}
	if last < 2048 {
		t.Fatalf("saturated device completed at %d, want >= 2048 (bandwidth not modeled)", last)
	}
}

func TestChannelsParallel(t *testing.T) {
	stats := sim.NewStats()
	ddr := NewDevice(DDR4Config(), stats)
	// Accesses on different channels at the same cycle should not queue on
	// each other.
	d1 := ddr.Access(0, 0, 2048, false)
	ddr.Reset()
	ddr.Access(0, 0, 2048, false)
	d2 := ddr.Access(0, 256, 2048, false) // different channel
	if d2 > d1+ddr.Config().RowMissLatency {
		t.Fatalf("parallel channels serialized: first=%d second=%d", d1, d2)
	}
}

func TestEnergyAccounting(t *testing.T) {
	stats := sim.NewStats()
	nvm := NewDevice(NVMConfig(), stats)
	nvm.Access(0, 0, 64, false)
	wantRead := float64(64*8) * 14.0
	if e := nvm.EnergyPJ(); e < wantRead || e > wantRead*1.1 {
		t.Fatalf("read energy %f pJ, want about %f", e, wantRead)
	}
	nvm.Access(0, 4096, 64, true)
	wantTotal := wantRead + float64(64*8)*21.0
	if e := nvm.EnergyPJ(); e < wantTotal {
		t.Fatalf("total energy %f pJ, want >= %f", e, wantTotal)
	}
}

func TestZeroSizeAccess(t *testing.T) {
	stats := sim.NewStats()
	ddr := NewDevice(DDR4Config(), stats)
	if done := ddr.Access(42, 0, 0, false); done != 42 {
		t.Fatalf("zero-size access advanced time: %d", done)
	}
	if ddr.TotalBytes() != 0 {
		t.Fatal("zero-size access moved bytes")
	}
}

func TestNVMBandwidthGap(t *testing.T) {
	// The defining property of the hybrid system: the NVM has ~2.4x less
	// bandwidth per channel than DDR4. Issue identical streams and compare
	// completion.
	stats := sim.NewStats()
	ddr := NewDevice(DDR4Config(), stats)
	nvm := NewDevice(NVMConfig(), stats)
	var dLast, nLast uint64
	for i := 0; i < 64; i++ {
		addr := uint64(i) * 1024 * 4
		dLast = ddr.Access(0, addr, 2048, false)
		nLast = nvm.Access(0, addr, 2048, false)
	}
	if nLast < dLast*2 {
		t.Fatalf("NVM stream (%d) should take >= 2x DDR4 stream (%d)", nLast, dLast)
	}
}

func TestSlowPresets(t *testing.T) {
	stats := sim.NewStats()
	for _, name := range []string{"nvm", "optane", "pcm"} {
		cfg := SlowPreset(name)
		d := NewDevice(cfg, stats)
		r := d.Access(0, 0, 64, false)
		d.Reset()
		w := d.Access(0, 0, 64, true)
		if w <= r {
			t.Fatalf("%s: write (%d) not slower than read (%d)", name, w, r)
		}
	}
	// Unknown preset falls back to the Table I NVM.
	if SlowPreset("bogus").Name != "NVM" {
		t.Fatal("fallback preset wrong")
	}
	// PCM writes must be the most expensive of the three.
	if PCMConfig().WritePJPerBit <= NVMConfig().WritePJPerBit {
		t.Fatal("PCM write energy should exceed NVM")
	}
}

func TestResetClearsDebugCounters(t *testing.T) {
	// Hammer one channel so demand accesses queue behind each other and
	// behind background traffic, populating every debug accumulator.
	d := NewDevice(DDR4Config(), sim.NewStats())
	d.AccessBackground(0, 0, 16*bgHighWater, true)
	for i := 0; i < 64; i++ {
		d.Access(0, uint64(i%2)*(DDR4Config().RowBufferBytes*32), 64, false)
	}
	ch, bank, spill := d.DebugQueueing()
	if ch == 0 && bank == 0 && spill == 0 {
		t.Fatal("expected some debug queueing before reset")
	}
	d.Reset()
	if ch, bank, spill := d.DebugQueueing(); ch != 0 || bank != 0 || spill != 0 {
		t.Fatalf("Reset left debug counters at (%d, %d, %d)", ch, bank, spill)
	}
	if d.MaxQueueing() != 0 {
		t.Fatalf("Reset left maxQueueing at %d", d.MaxQueueing())
	}
}
