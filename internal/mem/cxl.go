package mem

import (
	"sort"

	"baryon/internal/compress"
	"baryon/internal/sim"
)

// This file models a CXL memory expander in front of a device: the serdes
// link adds latency to every access, transfers serialise FIFO on the link's
// bandwidth frontier, and — following IBEX — the expander-internal path
// between the link interface and the media controllers can be the real
// bottleneck. Optional expander-side compression shrinks the bytes crossing
// that internal path (the host link always carries uncompressed data; the
// expander compresses/decompresses behind it), which is exactly the
// bandwidth lever IBEX argues for.

// CXLParams configures the expander link model of one device. The zero
// value (and a nil pointer) disables the model entirely: a device with
// Enabled() == false behaves bit-identically to one without CXL support.
type CXLParams struct {
	// LinkLatencyCycles is the one-way flit latency over the serdes link in
	// CPU cycles. Demand reads pay it twice (request out, data back); writes
	// are posted and pay it once on the way in.
	LinkLatencyCycles uint64 `json:"linkLatencyCycles,omitempty"`
	// LinkBytesPerCycle is the link's transfer bandwidth. All traffic —
	// demand and background — serialises FIFO on a single link frontier.
	// 0 leaves the link un-serialised (latency only).
	LinkBytesPerCycle float64 `json:"linkBytesPerCycle,omitempty"`
	// InternalBytesPerCycle is the expander-internal bandwidth between the
	// link interface and the media (the IBEX bottleneck). A transfer
	// occupies the link for max(link time, internal time); expander-side
	// compression reduces only the internal bytes. 0 disables the internal
	// constraint.
	InternalBytesPerCycle float64 `json:"internalBytesPerCycle,omitempty"`
	// Compression selects expander-side compression for the internal path:
	// "" (off), "fpc", "bdi" or "best" (best of FPC and BDI). Sizes come
	// from the size-only estimators of internal/compress over the content
	// probe attached with Device.SetContentProbe; without a probe the
	// internal path carries the uncompressed size.
	Compression string `json:"compression,omitempty"`
}

// Enabled reports whether the params describe any link behaviour.
func (p *CXLParams) Enabled() bool {
	return p != nil && (p.LinkLatencyCycles > 0 || p.LinkBytesPerCycle > 0 ||
		p.InternalBytesPerCycle > 0)
}

// CXLCompressionModes lists the accepted Compression values.
func CXLCompressionModes() []string { return []string{"", "fpc", "bdi", "best"} }

// ValidCXLCompression reports whether name is an accepted Compression value.
func ValidCXLCompression(name string) bool {
	for _, m := range CXLCompressionModes() {
		if name == m {
			return true
		}
	}
	return false
}

// cxlEstimator returns the size-only estimator for a Compression mode, nil
// for "" or an unknown mode.
func cxlEstimator(name string) func([]byte) int {
	var fpc compress.FPC
	var bdi compress.BDI
	switch name {
	case "fpc":
		return fpc.CompressedSize
	case "bdi":
		return bdi.CompressedSize
	case "best":
		return func(data []byte) int {
			best := fpc.CompressedSize(data)
			if b := bdi.CompressedSize(data); b < best {
				best = b
			}
			if best > len(data) {
				best = len(data)
			}
			return best
		}
	}
	return nil
}

// cxlLink is the per-device expander link state.
type cxlLink struct {
	p      CXLParams
	freeAt float64 // FIFO link frontier, in cycles
	est    func([]byte) int
	probe  func(addr, size uint64) []byte

	// queueHist observes, per demand access, the cycles between issue and
	// the media seeing the request (link queueing + flit latency).
	queueHist *sim.Histogram
	// linkBytes counts bytes crossing the host link (always uncompressed);
	// internalBytes counts bytes crossing the expander-internal path (the
	// compressed size when expander-side compression is active). Their
	// ratio is the internal-bandwidth amplification IBEX removes.
	linkBytes, internalBytes *sim.Counter
}

func newCXLLink(p CXLParams, scope *sim.Stats) *cxlLink {
	return &cxlLink{
		p:             p,
		est:           cxlEstimator(p.Compression),
		queueHist:     scope.Histogram("lat.cxlQueue"),
		linkBytes:     scope.Counter("cxlLinkBytes"),
		internalBytes: scope.Counter("cxlInternalBytes"),
	}
}

// internalSize returns the bytes a transfer moves over the expander-internal
// path: the best estimated compressed size per 64 B line when expander-side
// compression is on and a content probe is attached, the raw size otherwise.
func (l *cxlLink) internalSize(addr, size uint64) uint64 {
	if l.est == nil || l.probe == nil || size == 0 {
		return size
	}
	var total uint64
	end := addr + size
	for a := addr &^ 63; a < end; a += 64 {
		line := l.probe(a, 64)
		if len(line) < 64 {
			total += 64
			continue
		}
		total += uint64(l.est(line[:64]))
	}
	return total
}

// admit reserves the link for one transfer: FIFO on the frontier, occupied
// for max(link serialisation, internal-path serialisation). It returns the
// cycle the transfer gets the link and accounts the traffic counters.
func (l *cxlLink) admit(now, addr, size uint64) float64 {
	start := float64(now)
	if l.freeAt > start {
		start = l.freeAt
	}
	occ := 0.0
	if l.p.LinkBytesPerCycle > 0 {
		occ = float64(size) / l.p.LinkBytesPerCycle
	}
	internal := l.internalSize(addr, size)
	if l.p.InternalBytesPerCycle > 0 {
		if o := float64(internal) / l.p.InternalBytesPerCycle; o > occ {
			occ = o
		}
	}
	l.freeAt = start + occ
	l.linkBytes.Add(size)
	l.internalBytes.Add(internal)
	return l.freeAt
}

// Preset registry. Names are what config.TierConfig.Preset and the
// -design-file JSON refer to; PresetByName is the strict lookup behind
// config validation, while SlowPreset keeps its historical lenient fallback.
var presetFuncs = map[string]func() Config{
	"ddr4":          DDR4Config,
	"ddr4-detailed": DDR4DetailedConfig,
	"nvm":           NVMConfig,
	"optane":        OptaneConfig,
	"pcm":           PCMConfig,
	"cxl-dram":      CXLDRAMConfig,
	"cxl-ibex":      CXLIBEXConfig,
}

// PresetByName resolves a registered device preset. Unlike SlowPreset it
// reports unknown names instead of falling back.
func PresetByName(name string) (Config, bool) {
	fn, ok := presetFuncs[name]
	if !ok {
		return Config{}, false
	}
	return fn(), true
}

// Presets lists every registered device preset name, sorted.
func Presets() []string {
	out := make([]string, 0, len(presetFuncs))
	for name := range presetFuncs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SlowPresetNames lists the names SlowPreset resolves without falling back —
// the valid values of config.Config.SlowMemory besides "".
func SlowPresetNames() []string { return []string{"nvm", "optane", "pcm"} }

// CXLDRAMConfig returns a CXL-attached DRAM expander: DDR4-class media
// behind a x8 serdes link. The ~30 ns one-way flit latency and the
// link/internal bandwidths follow the CXL-expander characterisations IBEX
// builds on: the media is fast, but every access pays the link, and the
// expander-internal path saturates before the media does.
func CXLDRAMConfig() Config {
	return Config{
		Name:     "CXL-DRAM",
		Channels: 2,
		Banks:    32,
		// DDR4-class media timing behind the link.
		RowHitLatency:  44,
		RowMissLatency: 132,
		WriteLatency:   44,
		BytesPerCycle:  8.0,
		RowBufferBytes: 2048,
		// Expander DRAM pays the serdes in energy too.
		ReadPJPerBit:  6.5,
		WritePJPerBit: 6.5,
		ActivatePJ:    535.8,
		CXL: &CXLParams{
			// ~30 ns one-way = 96 CPU cycles at 3.2 GHz.
			LinkLatencyCycles: 96,
			// x8 lanes ~ 25.6 GB/s per direction = 8 B/cycle.
			LinkBytesPerCycle: 8.0,
			// Expander-internal path: modestly above the link, below the
			// aggregate media bandwidth — the IBEX bottleneck regime.
			InternalBytesPerCycle: 12.0,
		},
	}
}

// CXLIBEXConfig returns the CXL-DRAM expander with IBEX-style expander-side
// compression: the internal path carries best-of(FPC, BDI) compressed bytes,
// raising effective internal bandwidth on compressible data.
func CXLIBEXConfig() Config {
	cfg := CXLDRAMConfig()
	cfg.Name = "CXL-IBEX"
	cfg.CXL.Compression = "best"
	return cfg
}
