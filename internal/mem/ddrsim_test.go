package mem

import (
	"testing"

	"baryon/internal/sim"
)

func newEngine() *DDREngine {
	return NewDDREngine(DDR4Timings3200(), 4, 32, 2048)
}

func TestDDRColdAccessLatency(t *testing.T) {
	e := newEngine()
	t4 := DDR4Timings3200()
	first, last, hit := e.Access(0, 0, false)
	if hit {
		t.Fatal("cold access reported a row hit")
	}
	want := t4.TRCD + t4.TCAS // ACT at 0, column at tRCD, data at +tCAS
	if first != want {
		t.Fatalf("first data at %d, want %d", first, want)
	}
	if last != want+t4.TBL {
		t.Fatalf("last data at %d, want %d", last, want+t4.TBL)
	}
}

func TestDDRRowHitLatency(t *testing.T) {
	e := newEngine()
	t4 := DDR4Timings3200()
	_, last, _ := e.Access(0, 0, false)
	start := last + 100
	first, _, hit := e.Access(start, 64, false)
	if !hit {
		t.Fatal("same-row access missed")
	}
	if first != start+t4.TCAS {
		t.Fatalf("row hit first data at %d, want %d (CAS only)", first, start+t4.TCAS)
	}
}

func TestDDRRowConflictRespectsTRASAndTRP(t *testing.T) {
	e := newEngine()
	t4 := DDR4Timings3200()
	e.Access(0, 0, false) // opens row 0 of bank 0 at cycle 0
	// Immediately access a different row of the same bank: must wait for
	// tRAS (row open time) + tRP (precharge) + tRCD + tCAS.
	otherRow := uint64(32 * 2048) // same bank, next row
	first, _, hit := e.Access(1, otherRow, false)
	if hit {
		t.Fatal("conflict reported as hit")
	}
	min := t4.TRAS + t4.TRP + t4.TRCD + t4.TCAS
	if first < min {
		t.Fatalf("row conflict served at %d, want >= %d (tRAS+tRP+tRCD+tCAS)", first, min)
	}
}

func TestDDRFourActivateWindow(t *testing.T) {
	e := newEngine()
	t4 := DDR4Timings3200()
	// Five activates to distinct banks of one channel at cycle 0: the fifth
	// must start no earlier than tFAW after the first.
	var acts []uint64
	for b := uint64(0); b < 5; b++ {
		first, _, _ := e.Access(0, b*2048, false)
		acts = append(acts, first-t4.TRCD-t4.TCAS) // recover the ACT time
	}
	if acts[4] < acts[0]+t4.TFAW {
		t.Fatalf("5th activate at %d, want >= %d (tFAW)", acts[4], acts[0]+t4.TFAW)
	}
	// And consecutive activates must honour tRRD.
	for i := 1; i < 5; i++ {
		if acts[i] < acts[i-1]+t4.TRRD {
			t.Fatalf("activate %d at %d violates tRRD after %d", i, acts[i], acts[i-1])
		}
	}
}

func TestDDRWriteRecovery(t *testing.T) {
	e := newEngine()
	t4 := DDR4Timings3200()
	_, wlast, _ := e.Access(0, 0, true) // write row 0
	// A different row of the same bank after the write must respect tWR
	// before precharge.
	first, _, _ := e.Access(wlast, 32*2048, false)
	min := wlast + t4.TWR + t4.TRP + t4.TRCD + t4.TCAS
	if first < min {
		t.Fatalf("post-write conflict at %d, want >= %d (tWR honoured)", first, min)
	}
}

func TestDDRRefreshBlocks(t *testing.T) {
	e := newEngine()
	t4 := DDR4Timings3200()
	e.Access(0, 0, false)
	// Jump past tREFI: the next access pays the refresh cycle.
	start := t4.TREFI + 1
	first, _, _ := e.Access(start, 64, false)
	if first < start+t4.TRFC {
		t.Fatalf("access during refresh at %d, want >= %d", first, start+t4.TRFC)
	}
}

func TestDDRBusSerialisation(t *testing.T) {
	e := newEngine()
	// Two row hits to different banks, same channel, same cycle: data
	// bursts must not overlap on the shared bus.
	e.Access(0, 0, false)
	e.Access(0, 2048, false)
	f1, l1, _ := e.Access(10000, 64, false)
	f2, l2, _ := e.Access(10000, 2048+64, false)
	if f2 < l1 && f1 < l2 { // overlap check
		if !(f2 >= l1 || f1 >= l2) {
			t.Fatalf("bus bursts overlap: [%d,%d] and [%d,%d]", f1, l1, f2, l2)
		}
	}
}

func TestDetailedDeviceIntegration(t *testing.T) {
	stats := sim.NewStats()
	d := NewDevice(DDR4DetailedConfig(), stats)
	done := d.Access(0, 0, 64, false)
	t4 := DDR4Timings3200()
	if done < t4.TRCD+t4.TCAS {
		t.Fatalf("detailed device returned %d, below protocol minimum", done)
	}
	if stats.Get("DDR4-3200.rowMisses") == 0 {
		t.Fatal("row miss not counted through the engine")
	}
	// Sequential same-row traffic must be faster than row conflicts.
	hitDone := d.Access(done+10, 64, 64, false) - (done + 10)
	confDone := d.Access(done+10000, 32*2048, 64, false) - (done + 10000)
	if hitDone >= confDone {
		t.Fatalf("row hit (%d) not faster than conflict (%d)", hitDone, confDone)
	}
}

func TestDetailedVsSimpleBallpark(t *testing.T) {
	// The two models must agree within a factor of ~2 on a random demand
	// stream (they share bandwidth and row-buffer assumptions).
	rng := sim.NewRNG(3)
	simple := NewDevice(DDR4Config(), sim.NewStats())
	detailed := NewDevice(DDR4DetailedConfig(), sim.NewStats())
	var sumS, sumD uint64
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		addr := rng.Uint64n(1<<24) &^ 63
		sumS += simple.Access(now, addr, 64, false) - now
		sumD += detailed.Access(now, addr, 64, false) - now
		now += 200
	}
	ratio := float64(sumD) / float64(sumS)
	if ratio < 0.5 || ratio > 2.5 {
		t.Fatalf("detailed/simple latency ratio %.2f out of band", ratio)
	}
	t.Logf("mean latency: simple %.1f, detailed %.1f cycles",
		float64(sumS)/2000, float64(sumD)/2000)
}
