package mem

// Alternative slow-memory presets. Table I's NVM numbers (76.92 ns read,
// 230.77 ns write, 14/21 pJ/bit) sit between these two: hybrid-memory
// papers commonly evaluate against both an Optane-like device (faster
// reads, deeper write penalty) and a PCM-like device (slower overall,
// higher energy). They let users of this library explore how Baryon's
// benefit scales with the speed gap, which the paper identifies as the
// fundamental resource (slow-memory bandwidth).

// OptaneConfig returns an Optane-DCPMM-like slow memory: ~100 ns-class
// random reads, strong sequential bandwidth, expensive writes.
func OptaneConfig() Config {
	return Config{
		Name:     "Optane",
		Channels: 4,
		Banks:    8,
		// ~105 ns read = 336 CPU cycles at 3.2 GHz.
		RowHitLatency:  336,
		RowMissLatency: 336,
		// ~210 ns extra on writes.
		WriteLatency: 672,
		// ~8.5 GB/s per channel = 2.66 B/cycle.
		BytesPerCycle:  2.66,
		RowBufferBytes: 2048,
		ReadPJPerBit:   17.0,
		WritePJPerBit:  27.0,
	}
}

// PCMConfig returns a phase-change-memory-like slow memory following the
// classic PCM literature the paper cites [77]: reads a bit faster than the
// Table I NVM, writes much slower and more energy-hungry.
func PCMConfig() Config {
	return Config{
		Name:     "PCM",
		Channels: 4,
		Banks:    8,
		// ~60 ns array read.
		RowHitLatency:  192,
		RowMissLatency: 192,
		// ~350 ns write (SET/RESET pulses).
		WriteLatency: 1120,
		// 6.4 GB/s per channel = 2.0 B/cycle.
		BytesPerCycle:  2.0,
		RowBufferBytes: 2048,
		ReadPJPerBit:   12.0,
		WritePJPerBit:  49.0,
	}
}

// SlowPreset resolves a named slow-memory preset ("nvm", "optane", "pcm").
// Unknown names fall back to the Table I NVM.
func SlowPreset(name string) Config {
	switch name {
	case "optane":
		return OptaneConfig()
	case "pcm":
		return PCMConfig()
	default:
		return NVMConfig()
	}
}
