package baselines

import (
	"sort"

	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// OSPaging models the OS-based hybrid memory management the paper contrasts
// hardware designs against (Section II-A): the operating system counts page
// accesses and, at epoch boundaries, migrates the hottest 4 kB pages into
// fast memory by rewriting the page table. Its two structural handicaps are
// exactly the ones the paper names — coarse 4 kB granularity and slow,
// software-paced adaptation with per-migration overheads (page copy plus
// TLB shootdown and kernel work).
type OSPaging struct {
	eng   *hybrid.Engine
	store *hybrid.Store
	stats *sim.Stats

	fastPages int // capacity of the fast tier in 4 kB pages

	inFast   map[uint64]bool   // page -> resident in fast memory
	hotness  map[uint64]uint32 // page -> accesses this epoch window
	dirty    map[uint64]bool
	accesses uint64

	// Software overhead: accesses issued before stallUntil pay the
	// remaining migration penalty (kernel time is not overlappable).
	stallUntil uint64

	epochLen   uint64
	migPenalty uint64 // cycles of software overhead per migrated page

	hits, misses, migrations, writebacks *sim.Counter
}

// SetTracer attaches a request-lifecycle tracer (nil detaches).
func (o *OSPaging) SetTracer(t *obs.Tracer) { o.eng.SetTracer(t) }

// osPageSize is the migration granularity (4 kB OS pages = 2 blocks).
const osPageSize = 4096

// Default OS-paging knobs: epochs of 50k accesses, ~3 µs of kernel+TLB
// work per migration at 3.2 GHz.
const (
	osEpochLen   = 50000
	osMigPenalty = 10000
	// osMigBudget bounds migrations per epoch, as real kernels bound
	// migration work per scan interval.
	osMigBudget = 64
)

// NewOSPaging builds the OS-managed baseline with fastBytes of fast memory.
// tiers selects the device topology; nil keeps the classic DDR4-over-NVM
// pair.
func NewOSPaging(fastBytes uint64, store *hybrid.Store, stats *sim.Stats, tiers []hybrid.TierSpec) *OSPaging {
	o := &OSPaging{
		eng:        hybrid.NewEngineFrom(tiers, stats),
		store:      store,
		stats:      stats,
		fastPages:  int(fastBytes / osPageSize),
		inFast:     make(map[uint64]bool),
		hotness:    make(map[uint64]uint32),
		dirty:      make(map[uint64]bool),
		epochLen:   osEpochLen,
		migPenalty: osMigPenalty,
	}
	cstats := stats.Scope("ospaging")
	o.hits = cstats.Counter("hits")
	o.misses = cstats.Counter("misses")
	o.migrations = cstats.Counter("migrations")
	o.writebacks = cstats.Counter("writebacks")
	o.eng.CountWritebacks(o.writebacks)
	o.eng.InstrumentLatency(cstats)
	return o
}

// Name identifies the design.
func (o *OSPaging) Name() string { return "OSPaging" }

// Engine returns the shared migration/writeback engine (hybrid.EngineProvider).
func (o *OSPaging) Engine() *hybrid.Engine { return o.eng }

// Stats returns the counter collection.
func (o *OSPaging) Stats() *sim.Stats { return o.stats }

// FastDevice returns the DDR4 device model.
func (o *OSPaging) FastDevice() *mem.Device { return o.eng.Fast() }

// SlowDevice returns the NVM device model.
func (o *OSPaging) SlowDevice() *mem.Device { return o.eng.Slow() }

// Access implements hybrid.Controller.
func (o *OSPaging) Access(now uint64, addr uint64, write bool, data []byte) hybrid.Result {
	page := addr / osPageSize
	o.accesses++
	o.hotness[page]++

	if write {
		o.store.WriteLine(addr, data)
	}

	issue := now
	if o.stallUntil > issue {
		issue = o.stallUntil // kernel migration work blocks the core
	}

	var res hybrid.Result
	if o.inFast[page] {
		o.hits.Inc()
		if write {
			o.dirty[page] = true
			o.eng.FillFast(issue, page*osPageSize%uint64(o.fastPages*osPageSize)+addr%osPageSize, 64)
			res = hybrid.Result{Done: now}
		} else {
			done := o.eng.FastRead(issue, page*osPageSize%uint64(o.fastPages*osPageSize)+addr%osPageSize, 64)
			o.eng.ObserveFast(now, done, "pageHit")
			res = hybrid.Result{Done: done, ServedByFast: true, Data: o.store.Line(addr)}
		}
	} else {
		o.misses.Inc()
		if write {
			o.eng.WriteSlowBG(issue, addr, 64)
			res = hybrid.Result{Done: now}
		} else {
			done := o.eng.SlowRead(issue, addr, 64)
			o.eng.ObserveSlow(now, done, "pageMiss")
			res = hybrid.Result{Done: done, Data: o.store.Line(addr)}
		}
	}

	if o.accesses%o.epochLen == 0 {
		o.epoch(now)
	}
	return res
}

// epoch performs the OS's periodic migration pass: rank pages by hotness,
// bring the hottest into fast memory, evict the coldest residents.
func (o *OSPaging) epoch(now uint64) {
	type pageHeat struct {
		page uint64
		heat uint32
	}
	var all []pageHeat
	for p, h := range o.hotness {
		all = append(all, pageHeat{p, h})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].heat != all[j].heat {
			return all[i].heat > all[j].heat
		}
		return all[i].page < all[j].page // deterministic tie-break
	})

	// The OS migrates incrementally: at most osMigBudget promotions per
	// epoch (real systems bound migration work per scan interval).
	coldFirst := make([]pageHeat, 0, len(o.inFast))
	for p := range o.inFast {
		coldFirst = append(coldFirst, pageHeat{p, o.hotness[p]})
	}
	sort.Slice(coldFirst, func(i, j int) bool {
		if coldFirst[i].heat != coldFirst[j].heat {
			return coldFirst[i].heat < coldFirst[j].heat
		}
		return coldFirst[i].page < coldFirst[j].page
	})

	migrated := 0
	evictIdx := 0
	for _, cand := range all {
		if migrated >= osMigBudget {
			break
		}
		if o.inFast[cand.page] {
			continue
		}
		if len(o.inFast) >= o.fastPages {
			// Evict the coldest resident, but never for a colder candidate.
			for evictIdx < len(coldFirst) && !o.inFast[coldFirst[evictIdx].page] {
				evictIdx++
			}
			if evictIdx >= len(coldFirst) || coldFirst[evictIdx].heat >= cand.heat {
				break
			}
			victim := coldFirst[evictIdx].page
			evictIdx++
			delete(o.inFast, victim)
			if o.dirty[victim] {
				o.eng.Writeback(now, victim*osPageSize, osPageSize)
				delete(o.dirty, victim)
			}
		}
		o.inFast[cand.page] = true
		o.migrations.Inc()
		o.eng.FetchSlow(now, cand.page*osPageSize, osPageSize)
		o.eng.FillFast(now, cand.page*osPageSize%uint64(o.fastPages*osPageSize), osPageSize)
		migrated++
	}
	// Software overhead: TLB shootdowns and kernel bookkeeping serialise
	// with execution.
	if migrated > 0 {
		o.stallUntil = now + uint64(migrated)*o.migPenalty
	}
	// Decay hotness so the next epoch reflects recent behaviour.
	for p := range o.hotness {
		o.hotness[p] >>= 1
		if o.hotness[p] == 0 {
			delete(o.hotness, p)
		}
	}
}

// PeekLine implements hybrid.DataPeeker.
func (o *OSPaging) PeekLine(addr uint64) []byte { return o.store.Line(addr) }
