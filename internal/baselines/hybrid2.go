package baselines

import (
	"baryon/internal/config"
	"baryon/internal/core"
	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/sim"
)

// Hybrid2 models the flat-scheme baseline of Vasilakis et al. (HPCA 2020):
// fully-associative hybrid memory with 2 kB blocks and 256 B sub-blocking,
// a fixed fast-memory cache portion buffering incoming sub-blocks, and a
// migration policy driven purely by write(back) traffic — no compression,
// no layout stability term.
//
// The paper itself frames Hybrid2's commit policy as the k = 0 special case
// of Baryon's Eq. 1, and its cache portion plays the role of the stage area
// without compression; this model therefore instantiates the core machinery
// with CompressionOff, k = 0, and all compression-dependent optimisations
// disabled, which yields exactly the paper's described behaviour: 256 B
// sub-block fetches, uncompressed one-range-per-slot frames, dirty-count
// migration decisions.
type Hybrid2 struct {
	*core.Controller
}

// Hybrid2Config derives the Hybrid2 configuration from a Baryon config.
func Hybrid2Config(cfg config.Config) config.Config {
	cfg.Mode = config.ModeFlat
	cfg.FullyAssociative = true
	cfg.CompressionOff = true
	cfg.CachelineAligned = false
	cfg.ZeroBlockOpt = false
	cfg.CompressedWriteback = false
	cfg.CommitK = 0
	// Hybrid2 provisions a fixed, larger fast-memory cache portion (its
	// sub-block cache) where Baryon only reserves a small stage area.
	cfg.StageBytes *= 2
	if cfg.StageBytes > cfg.FastBytes/4 {
		cfg.StageBytes = cfg.FastBytes / 4
	}
	return cfg
}

// NewHybrid2 builds the Hybrid2 baseline over the canonical store.
func NewHybrid2(cfg config.Config, store *hybrid.Store, stats *sim.Stats) *Hybrid2 {
	return &Hybrid2{Controller: core.New(Hybrid2Config(cfg), store, stats)}
}

// Name identifies the design.
func (h *Hybrid2) Name() string { return "Hybrid2" }

// FastDevice returns the DDR4 device model.
func (h *Hybrid2) FastDevice() *mem.Device { return h.Controller.FastDevice() }

// SlowDevice returns the NVM device model.
func (h *Hybrid2) SlowDevice() *mem.Device { return h.Controller.SlowDevice() }
