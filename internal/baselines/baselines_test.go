package baselines

import (
	"bytes"
	"testing"

	"baryon/internal/config"
	"baryon/internal/datagen"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

func testStore() *hybrid.Store {
	mix := datagen.UniformMix()
	return hybrid.NewStore(func(b hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		datagen.Filler(mix)(uint64(b), dst)
	})
}

// driveController exercises a controller with mixed traffic and checks read
// data against the store (which baselines use as their data plane).
func driveController(t *testing.T, ctrl hybrid.Controller, accesses int, footprint uint64, seed uint64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	peeker := ctrl.(hybrid.DataPeeker)
	now := uint64(0)
	for i := 0; i < accesses; i++ {
		addr := rng.Uint64n(footprint) &^ 63
		if rng.Bool(0.3) {
			data := make([]byte, 64)
			for j := range data {
				data[j] = byte(rng.Uint32())
			}
			ctrl.Access(now, addr, true, data)
			if got := peeker.PeekLine(addr); !bytes.Equal(got, data) {
				t.Fatalf("%s: write not visible at %x", ctrl.Name(), addr)
			}
		} else {
			res := ctrl.Access(now, addr, false, nil)
			if want := peeker.PeekLine(addr); !bytes.Equal(res.Data, want) {
				t.Fatalf("%s: read mismatch at %x", ctrl.Name(), addr)
			}
			if res.Done < now {
				t.Fatalf("%s: completion %d before issue %d", ctrl.Name(), res.Done, now)
			}
		}
		now += 40
	}
}

func TestSimpleBasics(t *testing.T) {
	store := testStore()
	stats := sim.NewStats()
	s := NewSimple(64, 4, store, stats, nil)
	driveController(t, s, 20000, 1<<20, 7)
	if stats.Get("simple.hits") == 0 || stats.Get("simple.misses") == 0 {
		t.Fatalf("hits=%d misses=%d; want both nonzero",
			stats.Get("simple.hits"), stats.Get("simple.misses"))
	}
	if stats.Get("simple.writebacks") == 0 {
		t.Fatal("no writebacks despite dirty evictions")
	}
}

func TestSimpleWholeBlockTraffic(t *testing.T) {
	store := testStore()
	stats := sim.NewStats()
	s := NewSimple(64, 4, store, stats, nil)
	s.Access(0, 0, false, nil)
	// A single miss fills a whole 2 kB block from slow memory.
	if got := stats.Get("NVM.bytesRead"); got < hybrid.BlockSize {
		t.Fatalf("miss read %d B from slow, want >= %d", got, hybrid.BlockSize)
	}
}

func TestUnisonFootprintLearning(t *testing.T) {
	store := testStore()
	stats := sim.NewStats()
	u := NewUnison(16, 4, store, stats, 1, nil)
	// Touch two sub-blocks of block 0, then force an eviction by filling
	// the set, then return: the footprint should be prefetched.
	u.Access(0, 0, false, nil)
	u.Access(0, 1024, false, nil)
	nsets := uint64(4)
	for i := uint64(1); i <= 4; i++ { // same set: blocks stride nsets
		u.Access(0, i*nsets*hybrid.BlockSize, false, nil)
	}
	before := stats.Get("unison.subMisses")
	u.Access(0, 0, false, nil)    // block miss, fetches learned footprint
	u.Access(0, 1024, false, nil) // should now be present
	if got := stats.Get("unison.subMisses"); got != before {
		t.Fatalf("footprint not learned: subMisses %d -> %d", before, got)
	}
}

func TestUnisonDrive(t *testing.T) {
	store := testStore()
	stats := sim.NewStats()
	u := NewUnison(128, 4, store, stats, 2, nil)
	driveController(t, u, 20000, 2<<20, 8)
	if stats.Get("unison.blockMisses") == 0 || stats.Get("unison.subHits") == 0 {
		t.Fatal("unison did not exercise hit and miss paths")
	}
}

func TestDICECompressionCapacity(t *testing.T) {
	// An all-zero store compresses at CF 4: one slot holds 4 lines, so the
	// second line of a group hits without a second miss.
	store := hybrid.NewStore(nil)
	stats := sim.NewStats()
	d := NewDICE(1<<16, store, stats, 5, nil)
	d.Access(0, 0, false, nil)
	res := d.Access(100, 64, false, nil)
	if !res.ServedByFast {
		t.Fatal("compressed neighbour line missed")
	}
	if stats.Get("dice.hits") != 1 {
		t.Fatalf("hits=%d, want 1", stats.Get("dice.hits"))
	}
}

func TestDICEPrefetchLines(t *testing.T) {
	store := hybrid.NewStore(nil)
	stats := sim.NewStats()
	d := NewDICE(1<<16, store, stats, 5, nil)
	d.Access(0, 0, false, nil)
	res := d.Access(10, 0, false, nil)
	if len(res.Prefetched) == 0 {
		t.Fatal("compressed hit returned no free prefetches")
	}
}

func TestDICEDrive(t *testing.T) {
	store := testStore()
	stats := sim.NewStats()
	d := NewDICE(1<<18, store, stats, 5, nil)
	driveController(t, d, 20000, 2<<20, 9)
	if stats.Get("dice.hits") == 0 || stats.Get("dice.misses") == 0 {
		t.Fatal("DICE did not exercise both paths")
	}
}

func TestHybrid2Drive(t *testing.T) {
	cfg := config.Scaled()
	cfg.FastBytes = 1 << 20
	cfg.StageBytes = 128 << 10
	cfg.SlowBytes = 8 << 20
	store := testStore()
	stats := sim.NewStats()
	h := NewHybrid2(cfg, store, stats)
	driveController(t, h, 10000, 2<<20, 10)
	// The k=0 policy migrates when stage frames carry enough dirty data;
	// write-heavy traffic must trigger it.
	rng := sim.NewRNG(11)
	now := uint64(10000 * 40)
	for i := 0; i < 30000; i++ {
		addr := rng.Uint64n(2<<20) &^ 63
		data := make([]byte, 64)
		for j := range data {
			data[j] = byte(rng.Uint32())
		}
		h.Access(now, addr, true, data)
		now += 40
	}
	if h.Name() != "Hybrid2" {
		t.Fatalf("name=%q", h.Name())
	}
	// Compression must be fully disabled: every staged range is CF 1, so no
	// decompressions can occur.
	if stats.Get("baryon.decompressions") != 0 {
		t.Fatal("Hybrid2 model performed decompressions")
	}
	if stats.Get("baryon.commits") == 0 {
		t.Fatal("Hybrid2 never migrated blocks")
	}
}

func TestControllersImplementInterface(t *testing.T) {
	store := testStore()
	var _ hybrid.Controller = NewSimple(16, 4, store, sim.NewStats(), nil)
	var _ hybrid.Controller = NewUnison(16, 4, store, sim.NewStats(), 1, nil)
	var _ hybrid.Controller = NewDICE(1<<14, store, sim.NewStats(), 5, nil)
	cfg := config.Scaled()
	cfg.FastBytes = 1 << 20
	cfg.StageBytes = 128 << 10
	cfg.SlowBytes = 8 << 20
	var _ hybrid.Controller = NewHybrid2(cfg, store, sim.NewStats())
}

func TestOSPagingDrive(t *testing.T) {
	store := testStore()
	stats := sim.NewStats()
	o := NewOSPaging(1<<20, store, stats, nil)
	driveController(t, o, 120000, 2<<20, 12)
	if stats.Get("ospaging.migrations") == 0 {
		t.Fatal("no migrations across epochs")
	}
	if stats.Get("ospaging.hits") == 0 {
		t.Fatal("migrated pages never hit")
	}
}

func TestOSPagingEpochMigratesHotPages(t *testing.T) {
	store := testStore()
	stats := sim.NewStats()
	o := NewOSPaging(1<<20, store, stats, nil)
	// Hammer a small hot set across an epoch boundary; afterwards it must
	// be fast-resident.
	now := uint64(0)
	for i := 0; i < int(osEpochLen)+10; i++ {
		addr := uint64(i%8) * osPageSize
		o.Access(now, addr, false, nil)
		now += 40
	}
	res := o.Access(now+uint64(osMigBudget)*osMigPenalty, 0, false, nil)
	if !res.ServedByFast {
		t.Fatal("hot page not migrated to fast memory after epoch")
	}
}

func TestOSPagingCoarseGranularity(t *testing.T) {
	// The structural point of the baseline: whole 4 kB pages move, so the
	// migration traffic per epoch is page-sized even when only one line per
	// page is hot.
	store := testStore()
	stats := sim.NewStats()
	o := NewOSPaging(1<<20, store, stats, nil)
	now := uint64(0)
	for i := 0; i < int(osEpochLen)+1; i++ {
		addr := uint64(i%64) * osPageSize // one line per page
		o.Access(now, addr, false, nil)
		now += 40
	}
	perMig := float64(stats.Get("NVM.bytesRead")) / float64(stats.Get("ospaging.migrations"))
	if perMig < osPageSize {
		t.Fatalf("migration moved %.0f B, want >= %d (page granularity)", perMig, osPageSize)
	}
}
