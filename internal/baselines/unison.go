package baselines

import (
	"math/bits"

	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// Unison models Unison Cache (Jevdjic et al., MICRO 2014): a die-stacked
// DRAM cache with 2 kB blocks, 64 B sub-blocking driven by a footprint
// history table, embedded-in-DRAM tags and a way predictor. No compression.
//
//   - On a block miss, the predicted footprint (from the history table,
//     keyed by the block address) is fetched, not the whole block.
//   - On eviction, the block's observed footprint updates the history.
//   - Tags live in DRAM: a hit costs one fast-memory access that returns tag
//     and data together when the way predictor is right, and an extra access
//     when it is wrong.
type Unison struct {
	eng   *hybrid.Engine
	store *hybrid.Store
	stats *sim.Stats
	rng   *sim.RNG

	dir   *hybrid.Dir[unisonWay]
	rep   hybrid.Replacer
	assoc int
	seq   uint64

	// Footprint history. Unison indexes its footprint history table by
	// (PC, page offset) so footprints generalise across pages of the same
	// access pattern; traces carry no PCs, so the same generalisation is
	// approximated with two levels: an exact per-block table, and a
	// class table keyed by the block's first-touched sub-block offset,
	// which captures "streaming pages touched from offset k onward".
	history      map[uint64]uint32
	classHistory [32]uint32

	accesses, blockHits, subHits, subMisses, blockMisses *sim.Counter
	wayMispredicts, writebacks, servedFast               *sim.Counter
}

// SetTracer attaches a request-lifecycle tracer (nil detaches).
func (u *Unison) SetTracer(t *obs.Tracer) { u.eng.SetTracer(t) }

// SetReplacer overrides the replacement policy (default LRU). Intended for
// DesignSpec policy knobs; call before the first access.
func (u *Unison) SetReplacer(r hybrid.Replacer) { u.rep = r }

// unisonWay is the directory payload: sub-block presence/dirty/footprint
// bitmaps plus the class-history key.
type unisonWay struct {
	present  uint32 // 64 B sub-blocks present (32 per 2 kB block)
	dirty    uint32
	accessed uint32 // observed footprint for history update
	firstSub uint8  // first-touched sub (class-history key)
}

// wayPredictAccuracy is the optimistic way-predictor hit rate the paper
// grants Unison's enlarged SRAM structures.
const wayPredictAccuracy = 0.95

// unisonSub is the 64 B sub-block size of Unison Cache.
const unisonSub = 64

// NewUnison builds the Unison baseline. tiers selects the device topology;
// nil keeps the classic DDR4-over-NVM pair.
func NewUnison(fastBlocks uint64, assoc int, store *hybrid.Store, stats *sim.Stats, seed uint64, tiers []hybrid.TierSpec) *Unison {
	u := &Unison{
		store: store, stats: stats, assoc: assoc,
		eng:     hybrid.NewEngineFrom(tiers, stats),
		dir:     hybrid.NewDir[unisonWay](fastBlocks, assoc),
		rep:     hybrid.LRU{},
		rng:     sim.NewRNG(seed ^ 0x0550A11),
		history: make(map[uint64]uint32),
	}
	cstats := stats.Scope("unison")
	u.accesses = cstats.Counter("accesses")
	u.blockHits = cstats.Counter("blockHits")
	u.subHits = cstats.Counter("subHits")
	u.subMisses = cstats.Counter("subMisses")
	u.blockMisses = cstats.Counter("blockMisses")
	u.wayMispredicts = cstats.Counter("wayMispredicts")
	u.writebacks = cstats.Counter("writebacks")
	u.servedFast = cstats.Counter("servedFast")
	u.eng.CountWritebacks(u.writebacks)
	u.eng.InstrumentLatency(cstats)
	return u
}

// Name identifies the design.
func (u *Unison) Name() string { return "UnisonCache" }

// Engine returns the shared migration/writeback engine (hybrid.EngineProvider).
func (u *Unison) Engine() *hybrid.Engine { return u.eng }

// Stats returns the counter collection.
func (u *Unison) Stats() *sim.Stats { return u.stats }

// FastDevice returns the DDR4 device model.
func (u *Unison) FastDevice() *mem.Device { return u.eng.Fast() }

// SlowDevice returns the NVM device model.
func (u *Unison) SlowDevice() *mem.Device { return u.eng.Slow() }

func (u *Unison) frameAddr(set uint64, way int) uint64 {
	return (set*uint64(u.assoc) + uint64(way)) * hybrid.BlockSize
}

// Access implements hybrid.Controller.
func (u *Unison) Access(now uint64, addr uint64, write bool, data []byte) hybrid.Result {
	u.seq++
	u.accesses.Inc()
	block := addr / hybrid.BlockSize
	sub := uint(addr % hybrid.BlockSize / unisonSub)
	si := u.dir.SetIndex(block)
	setIdx := uint64(si)

	if write {
		u.store.WriteLine(addr, data)
	}

	if w := u.dir.Lookup(si, block); w >= 0 {
		meta, way := u.dir.Way(si, w)
		u.blockHits.Inc()
		meta.LastUse = u.seq
		way.accessed |= 1 << sub
		if way.present&(1<<sub) != 0 {
			u.subHits.Inc()
			// Tag+data come back in one access when the way predictor is
			// right; a mispredict costs a second fast-memory probe.
			t := now
			if !u.rng.Bool(wayPredictAccuracy) {
				u.wayMispredicts.Inc()
				t = u.eng.FastRead(t, u.frameAddr(setIdx, w), 64)
			}
			if write {
				way.dirty |= 1 << sub
				u.eng.FillFast(t, u.frameAddr(setIdx, w)+uint64(sub)*unisonSub, 64)
				return hybrid.Result{Done: now}
			}
			done := u.eng.FastRead(t, u.frameAddr(setIdx, w)+uint64(sub)*unisonSub, 64)
			u.servedFast.Inc()
			u.eng.ObserveFast(now, done, "subHit")
			return hybrid.Result{Done: done, ServedByFast: true, Data: u.store.Line(addr)}
		}
		// Sub-block miss within an allocated block: fetch just the sub.
		// The growing footprint feeds the class history incrementally so
		// prediction works before the first evictions.
		u.subMisses.Inc()
		way.present |= 1 << sub
		u.classHistory[way.firstSub] = way.accessed
		if write {
			way.dirty |= 1 << sub
			u.eng.FillFast(now, u.frameAddr(setIdx, w)+uint64(sub)*unisonSub, 64)
			return hybrid.Result{Done: now}
		}
		done := u.eng.SlowRead(now, addr, 64)
		u.eng.ObserveSlow(now, done, "subMiss")
		u.eng.FillFast(now, u.frameAddr(setIdx, w)+uint64(sub)*unisonSub, 64)
		return hybrid.Result{Done: done, Data: u.store.Line(addr)}
	}

	// Block miss: tags are embedded in DRAM, so discovering the miss costs
	// one fast-memory probe; then allocate with the predicted footprint.
	u.blockMisses.Inc()
	probe := u.eng.FastRead(now, u.frameAddr(setIdx, 0), 64)
	var res hybrid.Result
	if write {
		res = hybrid.Result{Done: now}
	} else {
		done := u.eng.SlowRead(probe, addr, 64)
		u.eng.ObserveSlow(now, done, "blockMiss")
		res = hybrid.Result{Done: done, Data: u.store.Line(addr)}
	}

	victim := u.dir.Victim(si, u.rep)
	vm, vw := u.dir.Way(si, victim)
	if vm.Valid {
		// Update both history levels and write dirty sub-blocks back.
		u.history[vm.Key] = vw.accessed
		u.classHistory[vw.firstSub] = vw.accessed
		if vw.dirty != 0 {
			u.eng.Writeback(now, vm.Key*hybrid.BlockSize, uint64(bits.OnesCount32(vw.dirty))*unisonSub)
		}
	}

	footprint, ok := u.history[block]
	if !ok || footprint == 0 {
		footprint = u.classHistory[sub] // generalise across like pages
	}
	footprint |= 1 << sub
	n := uint64(bits.OnesCount32(footprint))
	u.eng.FetchSlow(now, block*hybrid.BlockSize, n*unisonSub)
	u.eng.FillFast(now, u.frameAddr(setIdx, victim), n*unisonSub)
	// Tags and footprint metadata are embedded in DRAM: allocations update
	// them with an extra write (Unison's tag-update bandwidth).
	u.eng.FillFast(now, u.frameAddr(setIdx, victim), 64)
	*vm = hybrid.WayMeta{Key: block, Valid: true, LastUse: u.seq}
	*vw = unisonWay{present: footprint, accessed: 1 << sub, firstSub: uint8(sub)}
	if write {
		vw.dirty = 1 << sub
	}
	return res
}

// PeekLine implements hybrid.DataPeeker.
func (u *Unison) PeekLine(addr uint64) []byte { return u.store.Line(addr) }
