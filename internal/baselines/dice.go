package baselines

import (
	"baryon/internal/compress"
	"baryon/internal/compress/pipeline"
	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// DICE models the compressed DRAM cache of Young et al. (ISCA 2017): 64 B
// blocks in a direct-mapped cache with Dynamic-Indexing Compressed
// Encoding — the cache index depends on the compressibility of the
// spatially-adjacent group, so that compressed neighbours land in the same
// slot while incompressible lines spread over distinct slots. Per the
// paper's setup it gets the same 5-cycle decompression latency as Baryon, a
// perfect way predictor, and (here) a perfect CF predictor, its most
// optimistic configuration.
//
// The model works on aligned 4-line (256 B) groups: the group's quantised
// compression factor cf (1, 2 or 4, from the real FPC/BDI compressors)
// groups cf adjacent lines into one slot at index (line-address / cf).
// A hit on a compressed slot decodes up to four lines per 64 B transfer,
// which become free memory-to-LLC prefetches — DICE's bandwidth benefit.
//
// On the kit, DICE is the direct-mapped special case: a Dir with one way
// per set, keyed by the compression-run id (the CF-dependent index).
type DICE struct {
	eng   *hybrid.Engine
	store *hybrid.Store
	stats *sim.Stats
	comp  *compress.Compressor
	arena *pipeline.Arena

	dir               *hybrid.Dir[diceSlot]
	cfCache           map[uint64]uint8 // group -> current CF (the CF predictor)
	decompressLatency uint64

	accesses, hits, misses, writebacks *sim.Counter
	servedFast, decompressions         *sim.Counter
}

// SetTracer attaches a request-lifecycle tracer (nil detaches).
func (d *DICE) SetTracer(t *obs.Tracer) { d.eng.SetTracer(t) }

// diceSlot is the directory payload of one direct-mapped slot; the run id
// lives in the way's Key.
type diceSlot struct {
	cf      uint8
	present uint8 // bitmask of the run's lines actually present (cf wide)
	dirty   uint8
}

// NewDICE builds the DICE baseline with fastBytes of cache. tiers selects
// the device topology; nil keeps the classic DDR4-over-NVM pair.
func NewDICE(fastBytes uint64, store *hybrid.Store, stats *sim.Stats, decompressLatency uint64, tiers []hybrid.TierSpec) *DICE {
	d := &DICE{
		store: store, stats: stats,
		comp:              compress.New(true),
		eng:               hybrid.NewEngineFrom(tiers, stats),
		dir:               hybrid.NewDirSets[diceSlot](fastBytes/hybrid.CachelineSize, 1),
		cfCache:           make(map[uint64]uint8),
		decompressLatency: decompressLatency,
	}
	d.arena = d.eng.InitCompression(d.comp, 0)
	cstats := stats.Scope("dice")
	d.accesses = cstats.Counter("accesses")
	d.hits = cstats.Counter("hits")
	d.misses = cstats.Counter("misses")
	d.writebacks = cstats.Counter("writebacks")
	d.servedFast = cstats.Counter("servedFast")
	d.decompressions = cstats.Counter("decompressions")
	d.eng.CountWritebacks(d.writebacks)
	d.eng.InstrumentLatency(cstats)
	return d
}

// Name identifies the design.
func (d *DICE) Name() string { return "DICE" }

// Engine returns the shared migration/writeback engine (hybrid.EngineProvider).
func (d *DICE) Engine() *hybrid.Engine { return d.eng }

// Stats returns the counter collection.
func (d *DICE) Stats() *sim.Stats { return d.stats }

// FastDevice returns the DDR4 device model.
func (d *DICE) FastDevice() *mem.Device { return d.eng.Fast() }

// SlowDevice returns the NVM device model.
func (d *DICE) SlowDevice() *mem.Device { return d.eng.Slow() }

// groupCF computes (and caches) the quantised CF of the 4-line group.
func (d *DICE) groupCF(group uint64) uint8 {
	if cf, ok := d.cfCache[group]; ok {
		return cf
	}
	content := d.store.Bytes(group*256, 256)
	// Fan the CF-4 whole-group trial and both CF-2 half trials through the
	// engine's fit arena as one batch. The verdicts are pure predicates, so
	// evaluating the halves even when the whole group fits cannot change
	// the chosen CF.
	a := d.arena
	a.Begin()
	g4 := a.AddWhole(content, 64)
	g2 := a.AddChunked(content, 128, 64)
	a.Run()
	var cf uint8
	switch {
	case a.Fits(g4):
		cf = 4
	case a.Fits(g2):
		cf = 2
	default:
		cf = 1
	}
	d.cfCache[group] = cf
	return cf
}

// slotFor returns the slot halves and run id for a line at the group's CF.
func (d *DICE) slotFor(lineIdx uint64, cf uint8) (*hybrid.WayMeta, *diceSlot, uint64, uint64) {
	run := lineIdx / uint64(cf)
	si := d.dir.SetIndex(run)
	meta, slot := d.dir.Way(si, 0)
	return meta, slot, run, uint64(si) * 64
}

// Access implements hybrid.Controller.
func (d *DICE) Access(now uint64, addr uint64, write bool, data []byte) hybrid.Result {
	d.accesses.Inc()
	lineIdx := addr / 64
	group := addr / 256
	cf := d.groupCF(group)
	meta, slot, run, slotAddr := d.slotFor(lineIdx, cf)
	within := uint8(lineIdx % uint64(cf))

	if write {
		d.store.WriteLine(addr, data)
	}

	if meta.Valid && meta.Key == run && slot.cf == cf && slot.present&(1<<within) != 0 {
		d.hits.Inc()
		if write {
			// The write may change the group's compressibility; with the
			// perfect CF predictor the slot is re-installed under the new
			// CF on the next touch (invalidate the stale cached CF).
			delete(d.cfCache, group)
			newCF := d.groupCF(group)
			if newCF != cf {
				d.writebackSlot(now, meta, slot)
				meta.Valid = false
				d.installRun(now, lineIdx, newCF, true)
			} else {
				slot.dirty |= 1 << within
			}
			d.eng.FillFast(now, slotAddr, 64)
			return hybrid.Result{Done: now}
		}
		done := d.eng.FastRead(now, slotAddr, 64)
		if cf > 1 {
			done += d.decompressLatency
			d.decompressions.Inc()
		}
		d.servedFast.Inc()
		d.eng.ObserveFast(now, done, "hit")
		res := hybrid.Result{Done: done, ServedByFast: true, Data: d.store.Line(addr)}
		base := run * uint64(cf) * 64
		for l := uint8(0); l < cf; l++ {
			if l == within || slot.present&(1<<l) == 0 {
				continue
			}
			laddr := base + uint64(l)*64
			res.Prefetched = append(res.Prefetched, hybrid.PrefetchedLine{Addr: laddr, Data: d.store.Line(laddr)})
		}
		return res
	}

	// Miss: tag-and-data units live in DRAM, so discovering the miss costs
	// one fast probe; then serve from slow memory and install the run.
	d.misses.Inc()
	probe := d.eng.FastRead(now, slotAddr, 64)
	var res hybrid.Result
	if write {
		res = hybrid.Result{Done: now}
	} else {
		done := d.eng.SlowRead(probe, addr, 64)
		d.eng.ObserveSlow(now, done, "miss")
		res = hybrid.Result{Done: done, Data: d.store.Line(addr)}
	}
	d.installRun(now, lineIdx, cf, write)
	return res
}

// installRun installs the compressed run containing lineIdx, evicting any
// dirty occupant of the slot.
func (d *DICE) installRun(now uint64, lineIdx uint64, cf uint8, write bool) {
	meta, slot, run, slotAddr := d.slotFor(lineIdx, cf)
	within := uint8(lineIdx % uint64(cf))
	if meta.Valid && (meta.Key != run || slot.cf != cf) {
		d.writebackSlot(now, meta, slot)
	}
	var present uint8
	for l := uint8(0); l < cf; l++ {
		present |= 1 << l
	}
	// One extra burst brings the rest of the compressed run.
	if cf > 1 {
		d.eng.FetchSlow(now, run*uint64(cf)*64, 64)
	}
	d.eng.FillFast(now, slotAddr, 64)
	*meta = hybrid.WayMeta{Key: run, Valid: true}
	ns := diceSlot{cf: cf, present: present}
	if write {
		ns.dirty = 1 << within
	}
	*slot = ns
}

func (d *DICE) writebackSlot(now uint64, meta *hybrid.WayMeta, slot *diceSlot) {
	if !meta.Valid || slot.dirty == 0 {
		return
	}
	n := uint64(0)
	for l := uint8(0); l < 4; l++ {
		if slot.dirty&(1<<l) != 0 {
			n++
		}
	}
	d.eng.Writeback(now, meta.Key*uint64(slot.cf)*64, n*64)
	slot.dirty = 0
}

// PeekLine implements hybrid.DataPeeker.
func (d *DICE) PeekLine(addr uint64) []byte { return d.store.Line(addr) }
