// Package baselines implements the four designs the paper compares Baryon
// against (Section IV-A): a Simple DRAM cache (2 kB blocks, no compression,
// no sub-blocking), Unison Cache (2 kB blocks with 64 B sub-block footprint
// prediction and way prediction), DICE (a compressed, direct-mapped 64 B
// DRAM cache with a perfect way predictor, per the paper's optimistic
// setup), and Hybrid2 (flat-mode 256 B sub-blocking with a write-traffic
// commit policy, modelled as the paper frames it: Baryon's machinery with
// compression disabled and k = 0).
//
// The baseline controllers have no data-layout transformations, so they use
// the canonical store directly as their data plane and track presence and
// dirtiness for timing and traffic only.
package baselines

import (
	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// Simple is the paper's Simple DRAM cache baseline: 2 kB blocks, 4-way
// set-associative, LRU, whole-block fills and writebacks.
type Simple struct {
	fast, slow *mem.Device
	store      *hybrid.Store
	stats      *sim.Stats

	sets  []simpleSet
	assoc int
	seq   uint64

	accesses, hits, misses, writebacks *sim.Counter
	servedFast                         *sim.Counter
	metaLatency                        uint64
	hooks                              obsHooks
}

// SetTracer attaches a request-lifecycle tracer (nil detaches).
func (s *Simple) SetTracer(t *obs.Tracer) {
	s.hooks.tracer = t
	s.fast.SetTracer(t)
	s.slow.SetTracer(t)
}

type simpleSet struct {
	ways []simpleWay
}

type simpleWay struct {
	block   uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// NewSimple builds the Simple baseline with fastBlocks block frames at the
// given associativity over an osBlocks physical space.
func NewSimple(fastBlocks uint64, assoc int, store *hybrid.Store, stats *sim.Stats) *Simple {
	s := &Simple{
		store: store, stats: stats, assoc: assoc,
		fast: mem.NewDevice(mem.DDR4Config(), stats),
		slow: mem.NewDevice(mem.NVMConfig(), stats),
		// Remap metadata lookup (on-chip remap cache path).
		metaLatency: 3,
	}
	nsets := fastBlocks / uint64(assoc)
	if nsets == 0 {
		nsets = 1
	}
	s.sets = make([]simpleSet, nsets)
	for i := range s.sets {
		s.sets[i] = simpleSet{ways: make([]simpleWay, assoc)}
	}
	cstats := stats.Scope("simple")
	s.accesses = cstats.Counter("accesses")
	s.hits = cstats.Counter("hits")
	s.misses = cstats.Counter("misses")
	s.writebacks = cstats.Counter("writebacks")
	s.servedFast = cstats.Counter("servedFast")
	s.hooks = newObsHooks(cstats)
	return s
}

// Name identifies the design.
func (s *Simple) Name() string { return "Simple" }

// Stats returns the counter collection.
func (s *Simple) Stats() *sim.Stats { return s.stats }

// FastDevice returns the DDR4 device model.
func (s *Simple) FastDevice() *mem.Device { return s.fast }

// SlowDevice returns the NVM device model.
func (s *Simple) SlowDevice() *mem.Device { return s.slow }

// Access implements hybrid.Controller.
func (s *Simple) Access(now uint64, addr uint64, write bool, data []byte) hybrid.Result {
	s.seq++
	s.accesses.Inc()
	block := addr / hybrid.BlockSize
	set := &s.sets[block%uint64(len(s.sets))]

	if write {
		s.store.WriteLine(addr, data)
	}

	for w := range set.ways {
		way := &set.ways[w]
		if way.valid && way.block == block {
			s.hits.Inc()
			way.lastUse = s.seq
			if write {
				way.dirty = true
				s.fast.AccessBackground(now, s.frameAddr(block, w), 64, true)
				return hybrid.Result{Done: now}
			}
			done := s.fast.Access(now+s.metaLatency, s.frameAddr(block, w), 64, false)
			s.servedFast.Inc()
			s.hooks.observeFast(now, done, "hit")
			return hybrid.Result{Done: done, ServedByFast: true, Data: s.store.Line(addr)}
		}
	}
	s.misses.Inc()

	// Critical: the demanded line from slow memory.
	var res hybrid.Result
	if write {
		res = hybrid.Result{Done: now}
		s.slow.AccessBackground(now, addr, 64, true)
	} else {
		done := s.slow.Access(now+s.metaLatency, addr, 64, false)
		s.hooks.observeSlow(now, done, "miss")
		res = hybrid.Result{Done: done, Data: s.store.Line(addr)}
	}

	// Background: fill the whole 2 kB block, evicting the LRU way.
	victim := 0
	for w := range set.ways {
		if !set.ways[w].valid {
			victim = w
			break
		}
		if set.ways[w].lastUse < set.ways[victim].lastUse {
			victim = w
		}
	}
	v := &set.ways[victim]
	if v.valid && v.dirty {
		s.writebacks.Inc()
		s.slow.AccessBackground(now, v.block*hybrid.BlockSize, hybrid.BlockSize, true)
	}
	s.slow.AccessBackground(now, block*hybrid.BlockSize, hybrid.BlockSize, false)
	s.fast.AccessBackground(now, s.frameAddr(block, victim), hybrid.BlockSize, true)
	*v = simpleWay{block: block, valid: true, dirty: write, lastUse: s.seq}
	return res
}

func (s *Simple) frameAddr(block uint64, way int) uint64 {
	return (block%uint64(len(s.sets)))*uint64(s.assoc)*hybrid.BlockSize + uint64(way)*hybrid.BlockSize
}

// PeekLine implements hybrid.DataPeeker (the store is always current).
func (s *Simple) PeekLine(addr uint64) []byte { return s.store.Line(addr) }
