// Package baselines implements the four designs the paper compares Baryon
// against (Section IV-A): a Simple DRAM cache (2 kB blocks, no compression,
// no sub-blocking), Unison Cache (2 kB blocks with 64 B sub-block footprint
// prediction and way prediction), DICE (a compressed, direct-mapped 64 B
// DRAM cache with a perfect way predictor, per the paper's optimistic
// setup), and Hybrid2 (flat-mode 256 B sub-blocking with a write-traffic
// commit policy, modelled as the paper frames it: Baryon's machinery with
// compression disabled and k = 0).
//
// The baseline controllers have no data-layout transformations, so they use
// the canonical store directly as their data plane and track presence and
// dirtiness for timing and traffic only. All of them are built on the
// shared controller kit of package hybrid: the set-associative directory
// (hybrid.Dir), the replacement policies (hybrid.Replacer) and the
// migration/writeback engine with its instrumentation middleware
// (hybrid.Engine).
package baselines

import (
	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// Simple is the paper's Simple DRAM cache baseline: 2 kB blocks, 4-way
// set-associative, LRU, whole-block fills and writebacks.
type Simple struct {
	eng   *hybrid.Engine
	store *hybrid.Store
	stats *sim.Stats

	dir   *hybrid.Dir[simpleWay]
	rep   hybrid.Replacer
	assoc int
	seq   uint64

	accesses, hits, misses, writebacks *sim.Counter
	servedFast                         *sim.Counter
	metaLatency                        uint64
}

// simpleWay is the directory payload: the Simple cache only tracks block
// dirtiness beyond the kit's tag metadata.
type simpleWay struct {
	dirty bool
}

// SetTracer attaches a request-lifecycle tracer (nil detaches).
func (s *Simple) SetTracer(t *obs.Tracer) { s.eng.SetTracer(t) }

// SetReplacer overrides the replacement policy (default LRU). Intended for
// DesignSpec policy knobs; call before the first access.
func (s *Simple) SetReplacer(r hybrid.Replacer) { s.rep = r }

// NewSimple builds the Simple baseline with fastBlocks block frames at the
// given associativity over an osBlocks physical space. tiers selects the
// device topology; nil keeps the classic DDR4-over-NVM pair.
func NewSimple(fastBlocks uint64, assoc int, store *hybrid.Store, stats *sim.Stats, tiers []hybrid.TierSpec) *Simple {
	s := &Simple{
		store: store, stats: stats, assoc: assoc,
		eng: hybrid.NewEngineFrom(tiers, stats),
		dir: hybrid.NewDir[simpleWay](fastBlocks, assoc),
		rep: hybrid.LRU{},
		// Remap metadata lookup (on-chip remap cache path).
		metaLatency: 3,
	}
	cstats := stats.Scope("simple")
	s.accesses = cstats.Counter("accesses")
	s.hits = cstats.Counter("hits")
	s.misses = cstats.Counter("misses")
	s.writebacks = cstats.Counter("writebacks")
	s.servedFast = cstats.Counter("servedFast")
	s.eng.CountWritebacks(s.writebacks)
	s.eng.InstrumentLatency(cstats)
	return s
}

// Name identifies the design.
func (s *Simple) Name() string { return "Simple" }

// Engine returns the shared migration/writeback engine (hybrid.EngineProvider).
func (s *Simple) Engine() *hybrid.Engine { return s.eng }

// Stats returns the counter collection.
func (s *Simple) Stats() *sim.Stats { return s.stats }

// FastDevice returns the DDR4 device model.
func (s *Simple) FastDevice() *mem.Device { return s.eng.Fast() }

// SlowDevice returns the NVM device model.
func (s *Simple) SlowDevice() *mem.Device { return s.eng.Slow() }

// Access implements hybrid.Controller.
func (s *Simple) Access(now uint64, addr uint64, write bool, data []byte) hybrid.Result {
	s.seq++
	s.accesses.Inc()
	block := addr / hybrid.BlockSize
	si := s.dir.SetIndex(block)

	if write {
		s.store.WriteLine(addr, data)
	}

	if w := s.dir.Lookup(si, block); w >= 0 {
		meta, way := s.dir.Way(si, w)
		s.hits.Inc()
		meta.LastUse = s.seq
		if write {
			way.dirty = true
			s.eng.FillFast(now, s.frameAddr(block, w), 64)
			return hybrid.Result{Done: now}
		}
		done := s.eng.FastRead(now+s.metaLatency, s.frameAddr(block, w), 64)
		s.servedFast.Inc()
		s.eng.ObserveFast(now, done, "hit")
		return hybrid.Result{Done: done, ServedByFast: true, Data: s.store.Line(addr)}
	}
	s.misses.Inc()

	// Critical: the demanded line from slow memory.
	var res hybrid.Result
	if write {
		res = hybrid.Result{Done: now}
		s.eng.WriteSlowBG(now, addr, 64)
	} else {
		done := s.eng.SlowRead(now+s.metaLatency, addr, 64)
		s.eng.ObserveSlow(now, done, "miss")
		res = hybrid.Result{Done: done, Data: s.store.Line(addr)}
	}

	// Background: fill the whole 2 kB block, evicting the policy's victim.
	victim := s.dir.Victim(si, s.rep)
	meta, way := s.dir.Way(si, victim)
	if meta.Valid && way.dirty {
		s.eng.Writeback(now, meta.Key*hybrid.BlockSize, hybrid.BlockSize)
	}
	s.eng.FetchSlow(now, block*hybrid.BlockSize, hybrid.BlockSize)
	s.eng.FillFast(now, s.frameAddr(block, victim), hybrid.BlockSize)
	*meta = hybrid.WayMeta{Key: block, Valid: true, LastUse: s.seq}
	*way = simpleWay{dirty: write}
	return res
}

func (s *Simple) frameAddr(block uint64, way int) uint64 {
	return (block%s.dir.Sets())*uint64(s.assoc)*hybrid.BlockSize + uint64(way)*hybrid.BlockSize
}

// PeekLine implements hybrid.DataPeeker (the store is always current).
func (s *Simple) PeekLine(addr uint64) []byte { return s.store.Line(addr) }
