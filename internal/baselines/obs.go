package baselines

import (
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// obsHooks bundles the per-baseline observability state: the fast-hit and
// slow-path read-latency histograms every baseline records, and the
// request-lifecycle tracer handle (nil unless tracing is on). Embedded in
// each baseline controller so they all expose the same "lat.fastHit" /
// "lat.slowPath" names under their own registry scope.
type obsHooks struct {
	latFast, latSlow *sim.Histogram
	tracer           *obs.Tracer
}

func newObsHooks(s *sim.Stats) obsHooks {
	return obsHooks{latFast: s.Histogram("lat.fastHit"), latSlow: s.Histogram("lat.slowPath")}
}

// observeFast records a read served by the fast tier; cat names the
// controller's decision for the trace (e.g. "hit", "subHit").
func (h *obsHooks) observeFast(now, done uint64, cat string) {
	h.latFast.Observe(done - now)
	if h.tracer != nil {
		h.tracer.Instant("decision", cat, now)
	}
}

// observeSlow records a read that went to the slow tier.
func (h *obsHooks) observeSlow(now, done uint64, cat string) {
	h.latSlow.Observe(done - now)
	if h.tracer != nil {
		h.tracer.Instant("decision", cat, now)
	}
}
