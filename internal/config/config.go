// Package config holds the system configurations of Table I, in two sizes:
// the paper-scale parameters (4 GB DDR4 + 32 GB NVM, 64 MB stage area,
// 16 MB LLC) used for metadata-budget verification, and a scaled-down
// default used for timing runs (1/256 capacity; the stage area is scaled
// less aggressively because stage residency time, not capacity ratio, is
// what makes layouts stabilise), with the fast:slow capacity ratio and all
// block/sub-block/super-block sizes preserved.
package config

import (
	"baryon/internal/fault"
	"baryon/internal/hybrid"
)

// Mode selects how the fast memory is used (Section II-A).
type Mode int

// The two hybrid-memory schemes.
const (
	// ModeCache uses the fast memory as an OS-invisible cache.
	ModeCache Mode = iota
	// ModeFlat exposes the fast memory as part of the physical space;
	// migrations are swaps.
	ModeFlat
)

func (m Mode) String() string {
	if m == ModeFlat {
		return "flat"
	}
	return "cache"
}

// Config is the full system configuration for one run.
type Config struct {
	Cores int

	// Memory capacities in bytes. SlowBytes also sizes the OS-visible
	// space in cache mode; in flat mode the OS space is Fast+Slow.
	FastBytes  uint64
	SlowBytes  uint64
	StageBytes uint64 // stage area carved out of fast memory

	Mode             Mode
	Assoc            int  // fast blocks per set (4 default)
	FullyAssociative bool // Baryon-FA / Hybrid2 comparisons

	// Geometry. BlockBytes/SubBlockBytes give the 2 kB/256 B default; the
	// Baryon-64B variant uses 512/64 (eight sub-blocks per block always).
	BlockBytes       uint64
	SubBlockBytes    uint64
	SuperBlockBlocks int

	// Latencies in CPU cycles (Table I).
	StageTagLatency   uint64
	RemapCacheLatency uint64
	DecompressLatency uint64

	// Remap cache organisation (Table I: 256 sets, 8 ways).
	RemapCacheSets, RemapCacheWays int

	// Baryon policy knobs (defaults are the paper's).
	CompressionOff      bool    // disable compression entirely (Hybrid2 model)
	UseCPack            bool    // add C-Pack to the FPC+BDI best-of selection
	CachelineAligned    bool    // Fig. 7 / Fig. 12
	ZeroBlockOpt        bool    // Z-bit, Fig. 12
	CompressedWriteback bool    // Section III-F optimisation
	TwoLevelReplacement bool    // Fig. 13(a)
	CommitK             float64 // selective commit k (Eq. 1); <0 means +inf
	CommitAll           bool    // Fig. 13(d) "commit all"
	UseStageArea        bool    // Fig. 13(c) "no stage area" ablation
	// StageAgeInterval is the per-set access count between right-shift
	// ageings of the stage miss counters (10000 at paper scale; scaled runs
	// shrink it with the stage so counters age a few times per stage-frame
	// lifetime, as the paper's constant does at full scale).
	StageAgeInterval uint32
	// CompressWorkers sizes the fit-check arena that fans compression
	// trials (aligned chunk checks, compressed-writeback batches) across
	// helper goroutines. 0 uses the process default (GOMAXPROCS), 1 forces
	// the serial inline path. Output is byte-identical at any value — the
	// knob trades wall-clock only.
	CompressWorkers int

	// CPU model.
	MLPOverlap float64 // memory stalls divided by this overlap factor
	LLCKB      int     // shared LLC size
	// NoLLCPrefetch disables installing decompression by-products in the
	// LLC (the memory-to-LLC prefetching of Section III-E).
	NoLLCPrefetch bool
	// SlowMemory selects the slow-memory device preset: "nvm" (Table I,
	// default), "optane" or "pcm".
	SlowMemory string
	// DetailedDDR drives the fast memory with the protocol-level DDR4
	// bank-state engine (JEDEC timings + refresh) instead of the busy-until
	// model.
	DetailedDDR bool
	// Tiers, when non-empty, declares the full ordered device topology
	// (tier 0 = fast) and supersedes the SlowMemory/DetailedDDR two-tier
	// shorthand; see TierSpecs. Empty — the default everywhere — keeps the
	// classic DDR4-over-SlowMemory pair.
	Tiers []TierConfig

	// Run shape.
	AccessesPerCore int
	// WarmupAccessesPerCore, when > 0, replays that many accesses per core
	// before measurement starts (the zsim-style warmup-then-measure
	// methodology): caches, stage area and devices reach steady state, the
	// run registry is snapshotted, and the Result's headline metrics are
	// measurement-window deltas. 0 keeps the historical cold-start
	// behaviour bit-for-bit.
	WarmupAccessesPerCore int
	// EpochAccesses, when > 0, snapshots the run registry every that many
	// accesses (total across cores) during the measurement window,
	// producing the per-epoch IPC/serve-rate/bloat time-series in
	// Result.Epochs. 0 disables epoch collection.
	EpochAccesses int
	Seed          uint64

	// Fault configures device fault injection and the ECC degradation path
	// (internal/fault). The zero value — the default everywhere — disables
	// injection entirely and keeps runs byte-identical to historical output.
	Fault fault.Config
}

// Scaled returns the default configuration for timing runs: Table I scaled
// by 1/256 in capacity with all ratios preserved (16 MB fast + 128 MB slow,
// 256 kB stage, 64 kB LLC). The scale is chosen so that steady-state
// capacity pressure — the regime the paper's results live in — is reached
// within runs of a few hundred thousand accesses.
func Scaled() Config {
	return Config{
		Cores:             16,
		FastBytes:         16 << 20,
		SlowBytes:         128 << 20,
		StageBytes:        1 << 20,
		Mode:              ModeCache,
		Assoc:             4,
		BlockBytes:        2048,
		SubBlockBytes:     256,
		SuperBlockBlocks:  8,
		StageTagLatency:   5,
		RemapCacheLatency: 3,
		DecompressLatency: 5,
		RemapCacheSets:    256,
		RemapCacheWays:    8,

		CachelineAligned:    true,
		ZeroBlockOpt:        true,
		CompressedWriteback: true,
		TwoLevelReplacement: true,
		CommitK:             4,
		UseStageArea:        true,
		StageAgeInterval:    64,

		MLPOverlap:      2.0,
		LLCKB:           64,
		AccessesPerCore: 30000,
		Seed:            1,
	}
}

// PaperScale returns the unscaled Table I configuration. It is used for
// metadata storage-budget checks and documentation; timing runs at this
// scale would need the paper's multi-hour simulations.
func PaperScale() Config {
	c := Scaled()
	c.FastBytes = 4 << 30
	c.SlowBytes = 32 << 30
	c.StageBytes = 64 << 20
	c.LLCKB = 16 * 1024
	c.StageAgeInterval = 10000
	return c
}

// FastBlocks returns the number of block frames in the fast memory's
// cache/flat area (stage area excluded).
func (c *Config) FastBlocks() uint64 {
	return (c.FastBytes - c.StageBytes) / c.BlockBytes
}

// OSBlocks returns the number of blocks in the OS-visible physical space.
func (c *Config) OSBlocks() uint64 {
	if c.Mode == ModeFlat {
		return (c.FastBytes - c.StageBytes + c.SlowBytes) / c.BlockBytes
	}
	return c.SlowBytes / c.BlockBytes
}

// Sets returns the number of cache/flat-area sets (super-block indexed:
// caching and migration happen within a set, Section III-A).
func (c *Config) Sets() uint64 {
	if c.FullyAssociative {
		return 1
	}
	n := c.FastBlocks() / uint64(c.Assoc)
	if n == 0 {
		n = 1
	}
	return n
}

// WaysPerSet returns the fast block frames per set.
func (c *Config) WaysPerSet() int {
	if c.FullyAssociative {
		return int(c.FastBlocks())
	}
	return c.Assoc
}

// StageBlocks returns the number of block frames in the stage area.
func (c *Config) StageBlocks() uint64 { return c.StageBytes / c.BlockBytes }

// StageSets returns the stage area's set count (4 ways per set, Table I:
// 8192 sets x 4 ways at paper scale).
func (c *Config) StageSets() uint64 {
	n := c.StageBlocks() / 4
	if n == 0 {
		n = 1
	}
	return n
}

// SubBlocksPerBlock is fixed at eight by the metadata formats.
const SubBlocksPerBlock = 8

// Geometry returns the hybrid geometry implied by the configuration.
func (c *Config) Geometry() hybrid.Geometry {
	return hybrid.Geometry{SuperBlockBlocks: c.SuperBlockBlocks}
}

// StageTagArrayBytes returns the on-chip stage tag array budget: one 14 B
// entry per stage block (448 kB at paper scale).
func (c *Config) StageTagArrayBytes() uint64 { return c.StageBlocks() * 14 }

// RemapTableBytes returns the off-chip remap table budget: one 2 B entry
// per OS-visible block (0.1% of system capacity at paper scale).
func (c *Config) RemapTableBytes() uint64 { return c.OSBlocks() * 2 }
