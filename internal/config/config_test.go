package config

import "testing"

func TestScaledRatiosMatchPaper(t *testing.T) {
	s := Scaled()
	p := PaperScale()
	// The fast:slow and stage:fast ratios must match Table I.
	if p.SlowBytes/p.FastBytes != 8 {
		t.Fatalf("paper fast:slow ratio %d, want 1:8", p.SlowBytes/p.FastBytes)
	}
	if s.SlowBytes/s.FastBytes != 8 {
		t.Fatalf("scaled fast:slow ratio %d, want 1:8", s.SlowBytes/s.FastBytes)
	}
	if p.FastBytes/p.StageBytes != 64 {
		t.Fatalf("paper fast:stage ratio %d, want 64", p.FastBytes/p.StageBytes)
	}
}

func TestPaperScaleBudgets(t *testing.T) {
	p := PaperScale()
	if got := p.StageTagArrayBytes(); got != 448*1024 {
		t.Fatalf("stage tag array %d, want 448 kB (Section III-B)", got)
	}
	if got := p.StageSets(); got != 8192 {
		t.Fatalf("stage sets %d, want 8192 (Table I)", got)
	}
	if got := p.RemapTableBytes(); got != 32*1024*1024 {
		t.Fatalf("remap table %d, want 32 MB (2 B x 16M blocks)", got)
	}
}

func TestGeometryCounts(t *testing.T) {
	s := Scaled()
	if s.FastBlocks() != (s.FastBytes-s.StageBytes)/2048 {
		t.Fatal("FastBlocks wrong")
	}
	if s.Sets()*uint64(s.WaysPerSet()) != s.FastBlocks()/uint64(s.Assoc)*uint64(s.Assoc) {
		t.Fatal("sets x ways != frames")
	}
	fa := s
	fa.FullyAssociative = true
	if fa.Sets() != 1 {
		t.Fatal("FA sets != 1")
	}
	if uint64(fa.WaysPerSet()) != fa.FastBlocks() {
		t.Fatal("FA ways != all frames")
	}
}

func TestFlatModeOSBlocks(t *testing.T) {
	s := Scaled()
	cacheBlocks := s.OSBlocks()
	s.Mode = ModeFlat
	flatBlocks := s.OSBlocks()
	if flatBlocks <= cacheBlocks {
		t.Fatal("flat mode does not expose the fast capacity")
	}
	if flatBlocks != cacheBlocks+s.FastBlocks() {
		t.Fatalf("flat OS blocks %d, want cache (%d) + fast (%d)", flatBlocks, cacheBlocks, s.FastBlocks())
	}
}

func Test64BVariantGeometry(t *testing.T) {
	s := Scaled()
	s.BlockBytes = 512
	s.SubBlockBytes = 64
	if s.FastBlocks() != (s.FastBytes-s.StageBytes)/512 {
		t.Fatal("64B-variant FastBlocks wrong")
	}
	if s.StageBlocks() != s.StageBytes/512 {
		t.Fatal("64B-variant StageBlocks wrong")
	}
}

func TestModeString(t *testing.T) {
	if ModeCache.String() != "cache" || ModeFlat.String() != "flat" {
		t.Fatal("mode strings wrong")
	}
}
