package config

import (
	"fmt"

	"baryon/internal/fault"
)

// Overrides is a partial Config: every field is a pointer, and only non-nil
// fields are applied. It is the serializable half of a design spec — a
// design is a controller kind plus the configuration deltas that define it
// (e.g. Baryon-64B is the baryon kind with BlockBytes 512 and SubBlockBytes
// 64) — and the JSON schema of -design-file.
type Overrides struct {
	// Mode is "cache" or "flat" (string form for JSON friendliness).
	Mode *string `json:"mode,omitempty"`

	FastBytes  *uint64 `json:"fastBytes,omitempty"`
	SlowBytes  *uint64 `json:"slowBytes,omitempty"`
	StageBytes *uint64 `json:"stageBytes,omitempty"`

	Assoc            *int  `json:"assoc,omitempty"`
	FullyAssociative *bool `json:"fullyAssociative,omitempty"`

	BlockBytes       *uint64 `json:"blockBytes,omitempty"`
	SubBlockBytes    *uint64 `json:"subBlockBytes,omitempty"`
	SuperBlockBlocks *int    `json:"superBlockBlocks,omitempty"`

	StageTagLatency   *uint64 `json:"stageTagLatency,omitempty"`
	RemapCacheLatency *uint64 `json:"remapCacheLatency,omitempty"`
	DecompressLatency *uint64 `json:"decompressLatency,omitempty"`

	RemapCacheSets *int `json:"remapCacheSets,omitempty"`
	RemapCacheWays *int `json:"remapCacheWays,omitempty"`

	CompressionOff      *bool    `json:"compressionOff,omitempty"`
	UseCPack            *bool    `json:"useCPack,omitempty"`
	CachelineAligned    *bool    `json:"cachelineAligned,omitempty"`
	ZeroBlockOpt        *bool    `json:"zeroBlockOpt,omitempty"`
	CompressedWriteback *bool    `json:"compressedWriteback,omitempty"`
	TwoLevelReplacement *bool    `json:"twoLevelReplacement,omitempty"`
	CommitK             *float64 `json:"commitK,omitempty"`
	CommitAll           *bool    `json:"commitAll,omitempty"`
	UseStageArea        *bool    `json:"useStageArea,omitempty"`
	StageAgeInterval    *uint32  `json:"stageAgeInterval,omitempty"`
	CompressWorkers     *int     `json:"compressWorkers,omitempty"`

	MLPOverlap    *float64 `json:"mlpOverlap,omitempty"`
	LLCKB         *int     `json:"llcKB,omitempty"`
	NoLLCPrefetch *bool    `json:"noLLCPrefetch,omitempty"`
	SlowMemory    *string  `json:"slowMemory,omitempty"`
	DetailedDDR   *bool    `json:"detailedDDR,omitempty"`

	// Run shape. Designs rarely pin these; they exist so a run's full
	// configuration delta — including the access budget and window layout —
	// can be expressed as one Overrides value (the canonical spec key of
	// run-report bundles, internal/report).
	AccessesPerCore       *int `json:"accessesPerCore,omitempty"`
	WarmupAccessesPerCore *int `json:"warmupAccessesPerCore,omitempty"`
	EpochAccesses         *int `json:"epochAccesses,omitempty"`

	// Tiers replaces the run's device topology wholesale (like Fault, a
	// partial merge of an ordered list would be ambiguous).
	Tiers *[]TierConfig `json:"tiers,omitempty"`

	// Fault replaces the run's fault-injection config wholesale (a partial
	// merge of nested fault fields would be ambiguous between "unset" and
	// "zero").
	Fault *fault.Config `json:"fault,omitempty"`
}

// Apply copies every non-nil override onto c. It returns an error only for
// values that cannot be represented in Config (an unknown Mode string).
func (o *Overrides) Apply(c *Config) error {
	if o == nil {
		return nil
	}
	if o.Mode != nil {
		switch *o.Mode {
		case "cache":
			c.Mode = ModeCache
		case "flat":
			c.Mode = ModeFlat
		default:
			return fmt.Errorf("config: unknown mode %q (want cache or flat)", *o.Mode)
		}
	}
	setIf(&c.FastBytes, o.FastBytes)
	setIf(&c.SlowBytes, o.SlowBytes)
	setIf(&c.StageBytes, o.StageBytes)
	setIf(&c.Assoc, o.Assoc)
	setIf(&c.FullyAssociative, o.FullyAssociative)
	setIf(&c.BlockBytes, o.BlockBytes)
	setIf(&c.SubBlockBytes, o.SubBlockBytes)
	setIf(&c.SuperBlockBlocks, o.SuperBlockBlocks)
	setIf(&c.StageTagLatency, o.StageTagLatency)
	setIf(&c.RemapCacheLatency, o.RemapCacheLatency)
	setIf(&c.DecompressLatency, o.DecompressLatency)
	setIf(&c.RemapCacheSets, o.RemapCacheSets)
	setIf(&c.RemapCacheWays, o.RemapCacheWays)
	setIf(&c.CompressionOff, o.CompressionOff)
	setIf(&c.UseCPack, o.UseCPack)
	setIf(&c.CachelineAligned, o.CachelineAligned)
	setIf(&c.ZeroBlockOpt, o.ZeroBlockOpt)
	setIf(&c.CompressedWriteback, o.CompressedWriteback)
	setIf(&c.TwoLevelReplacement, o.TwoLevelReplacement)
	setIf(&c.CommitK, o.CommitK)
	setIf(&c.CommitAll, o.CommitAll)
	setIf(&c.UseStageArea, o.UseStageArea)
	setIf(&c.StageAgeInterval, o.StageAgeInterval)
	setIf(&c.CompressWorkers, o.CompressWorkers)
	setIf(&c.MLPOverlap, o.MLPOverlap)
	setIf(&c.LLCKB, o.LLCKB)
	setIf(&c.NoLLCPrefetch, o.NoLLCPrefetch)
	setIf(&c.SlowMemory, o.SlowMemory)
	setIf(&c.DetailedDDR, o.DetailedDDR)
	setIf(&c.AccessesPerCore, o.AccessesPerCore)
	setIf(&c.WarmupAccessesPerCore, o.WarmupAccessesPerCore)
	setIf(&c.EpochAccesses, o.EpochAccesses)
	setIf(&c.Tiers, o.Tiers)
	setIf(&c.Fault, o.Fault)
	return nil
}

func setIf[T any](dst *T, src *T) {
	if src != nil {
		*dst = *src
	}
}

// Ptr returns a pointer to v, for declaring Overrides literals.
func Ptr[T any](v T) *T { return &v }
