package config

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"baryon/internal/mem"
)

// TestTierSpecsCanonicalizeTwoTier pins the back-compat contract: an empty
// Tiers section resolves to the exact DDR4-over-SlowMemory pair the engine
// was historically built from.
func TestTierSpecsCanonicalizeTwoTier(t *testing.T) {
	cfg := Scaled()
	specs, err := cfg.TierSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d tiers, want 2", len(specs))
	}
	if specs[0].Cfg.Name != "DDR4-3200" || specs[1].Cfg.Name != "NVM" {
		t.Fatalf("canonical pair = %s/%s, want DDR4-3200/NVM", specs[0].Cfg.Name, specs[1].Cfg.Name)
	}

	cfg.DetailedDDR = true
	cfg.SlowMemory = "optane"
	specs, err = cfg.TierSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Cfg.DetailedTiming == nil {
		t.Fatalf("DetailedDDR not honoured by canonical tier 0")
	}
	if specs[1].Cfg.Name != "Optane" {
		t.Fatalf("SlowMemory not honoured: got %s", specs[1].Cfg.Name)
	}
}

// TestTierSpecsThreeTier resolves an explicit DRAM+NVM+CXL topology.
func TestTierSpecsThreeTier(t *testing.T) {
	cfg := Scaled()
	cfg.Tiers = []TierConfig{
		{Preset: "ddr4"},
		{Preset: "nvm", Bytes: 64 << 20},
		{Preset: "cxl-dram"},
	}
	specs, err := cfg.TierSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d tiers, want 3", len(specs))
	}
	if specs[1].Bytes != 64<<20 {
		t.Fatalf("tier 1 window = %d, want %d", specs[1].Bytes, uint64(64<<20))
	}
	if !specs[2].Cfg.CXL.Enabled() {
		t.Fatalf("cxl-dram tier lost its link params")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid three-tier config rejected: %v", err)
	}
}

// TestValidateRejections checks up-front validation fails with actionable
// messages — including the registered-preset list — instead of deep in
// construction.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown slow preset", func(c *Config) { c.SlowMemory = "mram" }, "unknown slowMemory preset"},
		{"unknown tier preset", func(c *Config) {
			c.Tiers = []TierConfig{{Preset: "ddr4"}, {Preset: "hbm9"}}
		}, "registered:"},
		{"single tier", func(c *Config) {
			c.Tiers = []TierConfig{{Preset: "ddr4"}}
		}, "at least 2"},
		{"intermediate without bytes", func(c *Config) {
			c.Tiers = []TierConfig{{Preset: "ddr4"}, {Preset: "nvm"}, {Preset: "cxl-dram"}}
		}, "needs bytes"},
		{"duplicate names", func(c *Config) {
			c.Tiers = []TierConfig{{Preset: "ddr4"}, {Preset: "nvm", Bytes: 1 << 20}, {Preset: "nvm"}}
		}, "share device name"},
		{"bad cxl compression", func(c *Config) {
			c.Tiers = []TierConfig{{Preset: "ddr4"}, {Preset: "cxl-dram",
				CXL: &mem.CXLParams{LinkLatencyCycles: 10, Compression: "zip"}}}
		}, "unknown cxl compression"},
	}
	for _, tc := range cases {
		cfg := Scaled()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted a bad config", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := Ptr(Scaled()).Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	// The unknown-preset message must name the registry so the fix is
	// discoverable from the error alone.
	cfg := Scaled()
	cfg.Tiers = []TierConfig{{Preset: "ddr4"}, {Preset: "hbm9"}}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "cxl-dram") {
		t.Fatalf("unknown-preset error should list registered presets, got: %v", err)
	}
}

// TestOverridesTiersRoundTrip checks the wholesale-replace semantics and the
// JSON round-trip of the tiers and per-tier fault override fields.
func TestOverridesTiersRoundTrip(t *testing.T) {
	raw := `{
		"tiers": [
			{"preset": "ddr4"},
			{"preset": "nvm", "bytes": 67108864},
			{"preset": "cxl-ibex", "name": "expander",
			 "cxl": {"linkLatencyCycles": 64, "linkBytesPerCycle": 4, "internalBytesPerCycle": 6, "compression": "bdi"}}
		],
		"fault": {"tiers": [{}, {"ber": 1e-6}, {"ber": 1e-5}]}
	}`
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	var o Overrides
	if err := dec.Decode(&o); err != nil {
		t.Fatal(err)
	}

	cfg := Scaled()
	cfg.Tiers = []TierConfig{{Preset: "ddr4"}, {Preset: "pcm"}} // must be replaced wholesale
	if err := o.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tiers) != 3 || cfg.Tiers[2].Name != "expander" {
		t.Fatalf("tiers not replaced wholesale: %+v", cfg.Tiers)
	}
	if cfg.Tiers[2].CXL == nil || cfg.Tiers[2].CXL.Compression != "bdi" {
		t.Fatalf("tier CXL params lost in Apply: %+v", cfg.Tiers[2].CXL)
	}
	if got := cfg.Fault.ForTier(2).BER; got != 1e-5 {
		t.Fatalf("per-tier fault params lost: tier 2 BER = %g", got)
	}
	if beyond := cfg.Fault.ForTier(7); beyond.Enabled() {
		t.Fatalf("fault params beyond the tier list must be disabled")
	}

	// Marshal/decode round-trip preserves the override exactly.
	out, err := json.Marshal(&o)
	if err != nil {
		t.Fatal(err)
	}
	var o2 Overrides
	if err := json.Unmarshal(out, &o2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o, o2) {
		t.Fatalf("overrides changed across JSON round-trip:\n before: %+v\n after:  %+v", o, o2)
	}
}
