package config

import (
	"fmt"
	"strings"

	"baryon/internal/hybrid"
	"baryon/internal/mem"
)

// TierConfig declares one memory tier of a run by preset name plus local
// overrides. It is the JSON schema of the "tiers" section in -design-file
// specs.
type TierConfig struct {
	// Preset names a registered device preset (mem.Presets): "ddr4",
	// "ddr4-detailed", "nvm", "optane", "pcm", "cxl-dram", "cxl-ibex".
	Preset string `json:"preset"`
	// Name overrides the device (and stats scope) name, e.g. to distinguish
	// two tiers built from the same preset.
	Name string `json:"name,omitempty"`
	// Bytes is the capacity window of canonical far addresses this tier
	// owns. Required on intermediate far tiers (1..n-2); ignored on tier 0
	// and optional on the last tier (the catch-all).
	Bytes uint64 `json:"bytes,omitempty"`
	// CXL replaces the preset's expander-link params wholesale (nil keeps
	// the preset's own, which is how "cxl-dram"/"cxl-ibex" get theirs).
	CXL *mem.CXLParams `json:"cxl,omitempty"`
}

// resolve turns the tier declaration into a device config.
func (t *TierConfig) resolve() (mem.Config, error) {
	cfg, ok := mem.PresetByName(t.Preset)
	if !ok {
		return mem.Config{}, fmt.Errorf("config: unknown tier preset %q (registered: %s)",
			t.Preset, strings.Join(mem.Presets(), ", "))
	}
	if t.Name != "" {
		cfg.Name = t.Name
	}
	if t.CXL != nil {
		p := *t.CXL
		cfg.CXL = &p
	}
	return cfg, nil
}

// TierSpecs returns the engine tier list this config describes. An empty
// Tiers section canonicalizes to the classic two-tier topology — DDR4
// (honouring DetailedDDR) over the SlowMemory preset — which is what keeps
// every historical config loading and behaving bit-identically. A non-empty
// section resolves each declared tier in order.
func (c *Config) TierSpecs() ([]hybrid.TierSpec, error) {
	if len(c.Tiers) == 0 {
		fastCfg := mem.DDR4Config()
		if c.DetailedDDR {
			fastCfg = mem.DDR4DetailedConfig()
		}
		return []hybrid.TierSpec{
			{Cfg: fastCfg},
			{Cfg: mem.SlowPreset(c.SlowMemory)},
		}, nil
	}
	if len(c.Tiers) < 2 {
		return nil, fmt.Errorf("config: tiers needs at least 2 entries, got %d", len(c.Tiers))
	}
	specs := make([]hybrid.TierSpec, 0, len(c.Tiers))
	for i := range c.Tiers {
		devCfg, err := c.Tiers[i].resolve()
		if err != nil {
			return nil, fmt.Errorf("tier %d: %w", i, err)
		}
		if i >= 1 && i < len(c.Tiers)-1 && c.Tiers[i].Bytes == 0 {
			return nil, fmt.Errorf("config: tier %d (%s) is an intermediate far tier and needs bytes set",
				i, devCfg.Name)
		}
		specs = append(specs, hybrid.TierSpec{Cfg: devCfg, Bytes: c.Tiers[i].Bytes})
	}
	return specs, nil
}

// Validate checks the configuration's device topology up front, so an
// unknown preset or a malformed tier list fails at config-validation time
// with an actionable message instead of deep in construction. It mirrors
// how unknown -design names are rejected.
func (c *Config) Validate() error {
	if c.SlowMemory != "" {
		known := false
		for _, name := range mem.SlowPresetNames() {
			if c.SlowMemory == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("config: unknown slowMemory preset %q (registered: %s)",
				c.SlowMemory, strings.Join(mem.SlowPresetNames(), ", "))
		}
	}
	if len(c.Tiers) == 0 {
		return nil
	}
	specs, err := c.TierSpecs()
	if err != nil {
		return err
	}
	seen := make(map[string]int, len(specs))
	for i, spec := range specs {
		if prev, dup := seen[spec.Cfg.Name]; dup {
			return fmt.Errorf("config: tiers %d and %d share device name %q; set a distinct name",
				prev, i, spec.Cfg.Name)
		}
		seen[spec.Cfg.Name] = i
		if spec.Cfg.CXL != nil && !mem.ValidCXLCompression(spec.Cfg.CXL.Compression) {
			return fmt.Errorf("config: tier %d (%s): unknown cxl compression %q (want one of: fpc, bdi, best, or empty)",
				i, spec.Cfg.Name, spec.Cfg.CXL.Compression)
		}
	}
	return nil
}
