package config

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzOverridesJSON throws arbitrary JSON at the -design-file Overrides
// schema: anything that decodes must Apply to the base config without
// panicking, and the applied-then-marshalled form must decode again
// (no write-only states).
func FuzzOverridesJSON(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"mode": "flat", "blockBytes": 512, "subBlockBytes": 64}`)
	f.Add(`{"commitK": -1, "fullyAssociative": true}`)
	f.Add(`{"fault": {"slow": {"ber": 1e-4, "stuckAt": [{"addr": 0, "size": 4096}]}, "eccCorrectBits": 2}}`)
	f.Add(`{"mode": "bogus"}`)
	f.Fuzz(func(t *testing.T, raw string) {
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		var o Overrides
		if err := dec.Decode(&o); err != nil {
			t.Skip() // invalid JSON or unknown fields: rejected at load time
		}
		cfg := Scaled()
		if err := o.Apply(&cfg); err != nil {
			// The only representable-but-invalid state is a bad mode string;
			// anything else erroring means Apply grew an undocumented
			// failure path.
			if o.Mode == nil {
				t.Fatalf("Apply failed without a mode override: %v", err)
			}
			return
		}
		// The applied overrides must survive re-marshalling: Overrides is
		// the serialized half of a design spec.
		out, err := json.Marshal(&o)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var o2 Overrides
		if err := json.Unmarshal(out, &o2); err != nil {
			t.Fatalf("re-decode of marshalled overrides failed: %v\njson: %s", err, out)
		}
	})
}
