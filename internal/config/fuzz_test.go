package config

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzOverridesJSON throws arbitrary JSON at the -design-file Overrides
// schema: anything that decodes must Apply to the base config without
// panicking, and the applied-then-marshalled form must decode again
// (no write-only states).
func FuzzOverridesJSON(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"mode": "flat", "blockBytes": 512, "subBlockBytes": 64}`)
	f.Add(`{"commitK": -1, "fullyAssociative": true}`)
	f.Add(`{"fault": {"slow": {"ber": 1e-4, "stuckAt": [{"addr": 0, "size": 4096}]}, "eccCorrectBits": 2}}`)
	f.Add(`{"mode": "bogus"}`)
	f.Add(`{"tiers": [{"preset": "ddr4"}, {"preset": "nvm", "bytes": 67108864}, {"preset": "cxl-dram"}]}`)
	f.Add(`{"tiers": [{"preset": "ddr4"}, {"preset": "cxl-ibex", "name": "far", "cxl": {"linkLatencyCycles": 96, "linkBytesPerCycle": 8, "internalBytesPerCycle": 12, "compression": "best"}}]}`)
	f.Add(`{"fault": {"tiers": [{"ber": 1e-6}, {}, {"ber": 1e-5, "wearUnit": 4, "wearRBERStep": 1e-7}]}}`)
	f.Fuzz(func(t *testing.T, raw string) {
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		var o Overrides
		if err := dec.Decode(&o); err != nil {
			t.Skip() // invalid JSON or unknown fields: rejected at load time
		}
		cfg := Scaled()
		if err := o.Apply(&cfg); err != nil {
			// The only representable-but-invalid state is a bad mode string;
			// anything else erroring means Apply grew an undocumented
			// failure path.
			if o.Mode == nil {
				t.Fatalf("Apply failed without a mode override: %v", err)
			}
			return
		}
		// The applied overrides must survive re-marshalling: Overrides is
		// the serialized half of a design spec.
		out, err := json.Marshal(&o)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var o2 Overrides
		if err := json.Unmarshal(out, &o2); err != nil {
			t.Fatalf("re-decode of marshalled overrides failed: %v\njson: %s", err, out)
		}
	})
}
