// Package cpu is the trace-driven multicore front end that substitutes for
// the paper's zsim setup: sixteen cores replay workload access streams
// through the Table I cache hierarchy into a hybrid-memory controller. Cores
// progress on private clocks (interleaved in global time order), non-memory
// instructions retire at a fixed IPC, and memory stalls are divided by a
// configurable memory-level-parallelism overlap factor. The output is total
// cycles plus the memory-system metrics the paper's figures report.
package cpu

import (
	"baryon/internal/cache"
	"baryon/internal/config"
	"baryon/internal/datagen"
	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// nonMemIPC is the retire rate of non-memory instructions.
const nonMemIPC = 2.0

// DeviceProvider exposes the two memory devices for traffic/energy reports;
// every controller in this repository implements it.
type DeviceProvider interface {
	FastDevice() *mem.Device
	SlowDevice() *mem.Device
}

// Result summarises one run.
type Result struct {
	Workload     string
	Design       string
	Cycles       uint64
	Instructions uint64
	// FastServeRate is the fraction of LLC misses served by fast memory
	// (Fig. 11 left).
	FastServeRate float64
	// BloatFactor is fast-memory traffic divided by useful LLC fill traffic
	// (Fig. 11 right).
	BloatFactor float64
	// EnergyPJ is the total memory-system access energy.
	EnergyPJ float64
	// FastBytes/SlowBytes are total device traffic.
	FastBytes, SlowBytes uint64
	Stats                *sim.Stats
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// world tracks the functional value of dirty lines (written by cores but not
// necessarily propagated to the memory controller yet) and generates write
// values with per-sub-block version counters so compressibility evolves as
// the paper's write-overflow analysis requires.
type world struct {
	mix      datagen.Mix
	store    *hybrid.Store
	versions map[uint64]uint32 // (block<<3|sub) -> version
	dirty    map[uint64][]byte // lineAddr -> latest value
}

// worldSizeHint pre-sizes the world maps: runs touch thousands of distinct
// lines, so starting at a few thousand buckets avoids the incremental map
// growth (and rehashing) of the first accesses without over-reserving for
// tiny test configurations.
const worldSizeHint = 4096

func newWorld(mix datagen.Mix, store *hybrid.Store) *world {
	return &world{
		mix:      mix,
		store:    store,
		versions: make(map[uint64]uint32, worldSizeHint),
		dirty:    make(map[uint64][]byte, worldSizeHint),
	}
}

// writeValue produces the next value of the line at addr. The returned slice
// is the world's own buffer for the line and is rewritten in place by the
// next write to the same line; callers must copy if they need the value to
// outlive that.
func (w *world) writeValue(addr uint64) []byte {
	block := addr / hybrid.BlockSize
	sub := int(addr % hybrid.BlockSize / hybrid.SubBlockSize)
	line := int(addr % hybrid.SubBlockSize / hybrid.CachelineSize)
	key := block<<3 | uint64(sub)
	w.versions[key]++
	buf, ok := w.dirty[addr]
	if !ok {
		buf = make([]byte, hybrid.CachelineSize)
		w.dirty[addr] = buf
	}
	datagen.FillLine(buf, block, sub, line, w.versions[key], w.mix.ClassFor(block))
	return buf
}

// lineData returns the latest functional value of a line (for writebacks).
func (w *world) lineData(addr uint64) []byte {
	if d, ok := w.dirty[addr]; ok {
		return d
	}
	return w.store.Line(addr)
}

// coreClock is one ready core in the scheduling heap.
type coreClock struct {
	time uint64
	core int32
}

// clockHeap is a binary min-heap of core clocks ordered by (time, core).
// The secondary key reproduces the tie-breaking of the straightforward
// "scan all cores, keep the strictly earliest" loop it replaces — among
// equal clocks that scan settles on the lowest core index — so the
// simulated interleaving (and therefore every statistic) is bit-identical.
type clockHeap []coreClock

func (h clockHeap) less(i, j int) bool {
	return h[i].time < h[j].time || (h[i].time == h[j].time && h[i].core < h[j].core)
}

func (h *clockHeap) push(c coreClock) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

// fixMin restores heap order after the root's time was increased in place.
func (h clockHeap) fixMin() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h.less(l, min) {
			min = l
		}
		if r < len(h) && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// popMin removes and returns nothing: the caller reads h[0] directly; this
// drops the root when its core has retired its access budget.
func (h *clockHeap) popMin() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	old[n] = coreClock{}
	(*h).fixMin()
}

// Runner executes one trace source against one controller.
type Runner struct {
	cfg   config.Config
	src   trace.Source
	ctrl  hybrid.Controller
	hier  *cache.Hierarchy
	store *hybrid.Store
	world *world
	stats *sim.Stats
}

// ControllerFactory builds a controller over a canonical store.
type ControllerFactory func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller

// NewRunner wires a synthetic workload, a fresh canonical store filled with
// the workload's value mix, the cache hierarchy and the controller produced
// by factory.
func NewRunner(cfg config.Config, w trace.Workload, factory ControllerFactory) *Runner {
	return NewRunnerSource(cfg, w, factory)
}

// NewRunnerSource is NewRunner for an arbitrary trace source (synthetic
// workloads or recorded replays, see trace.Source).
func NewRunnerSource(cfg config.Config, src trace.Source, factory ControllerFactory) *Runner {
	stats := sim.NewStats()
	mix := src.ValueMix()
	store := hybrid.NewStore(func(b hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		datagen.Filler(mix)(uint64(b), dst)
	})
	ctrl := factory(cfg, store, stats)
	hcfg := cache.DefaultHierarchy(cfg.Cores, cfg.LLCKB)
	hcfg.InstallPrefetched = !cfg.NoLLCPrefetch
	hier := cache.NewHierarchy(hcfg, ctrl, stats)
	r := &Runner{cfg: cfg, src: src, ctrl: ctrl, hier: hier, store: store, stats: stats}
	r.world = newWorld(mix, store)
	hier.LineData = r.world.lineData
	return r
}

// Controller returns the controller under test.
func (r *Runner) Controller() hybrid.Controller { return r.ctrl }

// Hierarchy returns the cache stack.
func (r *Runner) Hierarchy() *cache.Hierarchy { return r.hier }

// Run replays accessesPerCore accesses on each core and returns the metrics.
func (r *Runner) Run() Result {
	cores := r.cfg.Cores
	// Footprints are defined in 2 kB blocks regardless of the controller's
	// internal geometry.
	fp2k := (r.cfg.FastBytes - r.cfg.StageBytes) / 2048

	streams := r.src.Streams(cores, fp2k, r.cfg.Seed)

	sink, _ := r.ctrl.(hybrid.InstructionSink)
	osBytes := r.cfg.OSBlocks() * r.cfg.BlockBytes

	left := make([]int, cores)
	for c := range left {
		left[c] = r.cfg.AccessesPerCore
	}
	var instructions uint64
	var cycles uint64

	// Ready cores live in a min-heap keyed by (clock, core index), so
	// advancing the earliest core is O(log cores) instead of an O(cores)
	// scan per access. All cores start at clock 0; pushing in index order
	// yields the same initial interleaving as the scan it replaces.
	ready := make(clockHeap, 0, cores)
	for c := 0; c < cores; c++ {
		if left[c] > 0 {
			ready.push(coreClock{time: 0, core: int32(c)})
		}
	}

	for len(ready) > 0 {
		core := int(ready[0].core)
		acc := streams[core].Next()
		addr := acc.Addr % osBytes &^ (hybrid.CachelineSize - 1)
		gap := uint64(acc.Gap)
		instructions += gap + 1
		if sink != nil {
			sink.AddInstructions(gap + 1)
		}
		now := ready[0].time + uint64(float64(gap)/nonMemIPC)

		if acc.Write {
			r.world.writeValue(addr)
		}
		done := r.hier.Access(core, now, addr, acc.Write)
		stall := (done - now) / uint64(r.cfg.MLPOverlap)
		finish := now + stall + 1
		if finish > cycles {
			cycles = finish
		}
		left[core]--
		if left[core] == 0 {
			ready.popMin()
		} else {
			ready[0].time = finish
			ready.fixMin()
		}
	}

	res := Result{
		Workload:     r.src.SourceName(),
		Design:       r.ctrl.Name(),
		Cycles:       cycles,
		Instructions: instructions,
		Stats:        r.stats,
	}
	served := r.stats.Get("hierarchy.servedFast")
	total := served + r.stats.Get("hierarchy.servedSlow")
	res.FastServeRate = sim.Ratio(served, total)
	if dp, ok := r.ctrl.(DeviceProvider); ok {
		res.FastBytes = dp.FastDevice().TotalBytes()
		res.SlowBytes = dp.SlowDevice().TotalBytes()
		res.EnergyPJ = dp.FastDevice().EnergyPJ() + dp.SlowDevice().EnergyPJ()
		useful := r.stats.Get("hierarchy.llcMisses") * hybrid.CachelineSize
		res.BloatFactor = sim.Ratio(res.FastBytes, useful)
	}
	return res
}
