// Package cpu is the trace-driven multicore front end that substitutes for
// the paper's zsim setup: sixteen cores replay workload access streams
// through the Table I cache hierarchy into a hybrid-memory controller. Cores
// progress on private clocks (interleaved in global time order), non-memory
// instructions retire at a fixed IPC, and memory stalls are divided by a
// configurable memory-level-parallelism overlap factor. The output is total
// cycles plus the memory-system metrics the paper's figures report.
package cpu

import (
	"baryon/internal/cache"
	"baryon/internal/config"
	"baryon/internal/datagen"
	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// nonMemIPC is the retire rate of non-memory instructions.
const nonMemIPC = 2.0

// DeviceProvider exposes the two memory devices for traffic/energy reports;
// every controller in this repository implements it.
type DeviceProvider interface {
	FastDevice() *mem.Device
	SlowDevice() *mem.Device
}

// Result summarises one run.
type Result struct {
	Workload     string
	Design       string
	Cycles       uint64
	Instructions uint64
	// FastServeRate is the fraction of LLC misses served by fast memory
	// (Fig. 11 left).
	FastServeRate float64
	// BloatFactor is fast-memory traffic divided by useful LLC fill traffic
	// (Fig. 11 right).
	BloatFactor float64
	// EnergyPJ is the total memory-system access energy.
	EnergyPJ float64
	// FastBytes/SlowBytes are total device traffic.
	FastBytes, SlowBytes uint64
	Stats                *sim.Stats
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// world tracks the functional value of dirty lines (written by cores but not
// necessarily propagated to the memory controller yet) and generates write
// values with per-sub-block version counters so compressibility evolves as
// the paper's write-overflow analysis requires.
type world struct {
	mix      datagen.Mix
	store    *hybrid.Store
	versions map[uint64]uint32 // (block<<3|sub) -> version
	dirty    map[uint64][]byte // lineAddr -> latest value
}

func newWorld(mix datagen.Mix, store *hybrid.Store) *world {
	return &world{
		mix:      mix,
		store:    store,
		versions: make(map[uint64]uint32),
		dirty:    make(map[uint64][]byte),
	}
}

// writeValue produces the next value of the line at addr.
func (w *world) writeValue(addr uint64) []byte {
	block := addr / hybrid.BlockSize
	sub := int(addr % hybrid.BlockSize / hybrid.SubBlockSize)
	line := int(addr % hybrid.SubBlockSize / hybrid.CachelineSize)
	key := block<<3 | uint64(sub)
	w.versions[key]++
	data := datagen.LineContent(block, sub, line, w.versions[key], w.mix.ClassFor(block))
	w.dirty[addr] = data
	return data
}

// lineData returns the latest functional value of a line (for writebacks).
func (w *world) lineData(addr uint64) []byte {
	if d, ok := w.dirty[addr]; ok {
		return d
	}
	return w.store.Line(addr)
}

// Runner executes one trace source against one controller.
type Runner struct {
	cfg   config.Config
	src   trace.Source
	ctrl  hybrid.Controller
	hier  *cache.Hierarchy
	store *hybrid.Store
	world *world
	stats *sim.Stats
}

// ControllerFactory builds a controller over a canonical store.
type ControllerFactory func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller

// NewRunner wires a synthetic workload, a fresh canonical store filled with
// the workload's value mix, the cache hierarchy and the controller produced
// by factory.
func NewRunner(cfg config.Config, w trace.Workload, factory ControllerFactory) *Runner {
	return NewRunnerSource(cfg, w, factory)
}

// NewRunnerSource is NewRunner for an arbitrary trace source (synthetic
// workloads or recorded replays, see trace.Source).
func NewRunnerSource(cfg config.Config, src trace.Source, factory ControllerFactory) *Runner {
	stats := sim.NewStats()
	mix := src.ValueMix()
	store := hybrid.NewStore(func(b hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		datagen.Filler(mix)(uint64(b), dst)
	})
	ctrl := factory(cfg, store, stats)
	hcfg := cache.DefaultHierarchy(cfg.Cores, cfg.LLCKB)
	hcfg.InstallPrefetched = !cfg.NoLLCPrefetch
	hier := cache.NewHierarchy(hcfg, ctrl, stats)
	r := &Runner{cfg: cfg, src: src, ctrl: ctrl, hier: hier, store: store, stats: stats}
	r.world = newWorld(mix, store)
	hier.LineData = r.world.lineData
	return r
}

// Controller returns the controller under test.
func (r *Runner) Controller() hybrid.Controller { return r.ctrl }

// Hierarchy returns the cache stack.
func (r *Runner) Hierarchy() *cache.Hierarchy { return r.hier }

// Run replays accessesPerCore accesses on each core and returns the metrics.
func (r *Runner) Run() Result {
	cores := r.cfg.Cores
	// Footprints are defined in 2 kB blocks regardless of the controller's
	// internal geometry.
	fp2k := (r.cfg.FastBytes - r.cfg.StageBytes) / 2048

	streams := r.src.Streams(cores, fp2k, r.cfg.Seed)

	sink, _ := r.ctrl.(hybrid.InstructionSink)
	osBytes := r.cfg.OSBlocks() * r.cfg.BlockBytes

	coreTime := make([]uint64, cores)
	left := make([]int, cores)
	for c := range left {
		left[c] = r.cfg.AccessesPerCore
	}
	var instructions uint64
	remaining := cores

	for remaining > 0 {
		// Advance the core with the earliest clock (simple 16-way scan).
		core := -1
		for c := 0; c < cores; c++ {
			if left[c] > 0 && (core < 0 || coreTime[c] < coreTime[core]) {
				core = c
			}
		}
		if core < 0 {
			break
		}
		acc := streams[core].Next()
		addr := acc.Addr % osBytes &^ (hybrid.CachelineSize - 1)
		gap := uint64(acc.Gap)
		instructions += gap + 1
		if sink != nil {
			sink.AddInstructions(gap + 1)
		}
		now := coreTime[core] + uint64(float64(gap)/nonMemIPC)

		if acc.Write {
			r.world.writeValue(addr)
		}
		done := r.hier.Access(core, now, addr, acc.Write)
		stall := (done - now) / uint64(r.cfg.MLPOverlap)
		coreTime[core] = now + stall + 1
		left[core]--
		if left[core] == 0 {
			remaining--
		}
	}

	var cycles uint64
	for _, t := range coreTime {
		if t > cycles {
			cycles = t
		}
	}

	res := Result{
		Workload:     r.src.SourceName(),
		Design:       r.ctrl.Name(),
		Cycles:       cycles,
		Instructions: instructions,
		Stats:        r.stats,
	}
	served := r.stats.Get("hierarchy.servedFast")
	total := served + r.stats.Get("hierarchy.servedSlow")
	res.FastServeRate = sim.Ratio(served, total)
	if dp, ok := r.ctrl.(DeviceProvider); ok {
		res.FastBytes = dp.FastDevice().TotalBytes()
		res.SlowBytes = dp.SlowDevice().TotalBytes()
		res.EnergyPJ = dp.FastDevice().EnergyPJ() + dp.SlowDevice().EnergyPJ()
		useful := r.stats.Get("hierarchy.llcMisses") * hybrid.CachelineSize
		res.BloatFactor = sim.Ratio(res.FastBytes, useful)
	}
	return res
}
