// Package cpu is the trace-driven multicore front end that substitutes for
// the paper's zsim setup: sixteen cores replay workload access streams
// through the Table I cache hierarchy into a hybrid-memory controller. Cores
// progress on private clocks (interleaved in global time order), non-memory
// instructions retire at a fixed IPC, and memory stalls are divided by a
// configurable memory-level-parallelism overlap factor. The output is total
// cycles plus the memory-system metrics the paper's figures report.
package cpu

import (
	"context"
	"time"

	"baryon/internal/cache"
	"baryon/internal/config"
	"baryon/internal/datagen"
	"baryon/internal/hybrid"
	"baryon/internal/mem"
	"baryon/internal/obs"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// nonMemIPC is the retire rate of non-memory instructions.
const nonMemIPC = 2.0

// DeviceProvider exposes the two memory devices for traffic/energy reports;
// every controller in this repository implements it.
type DeviceProvider interface {
	FastDevice() *mem.Device
	SlowDevice() *mem.Device
}

// Window summarises one interval of a run — the warmup phase, the
// measurement phase, or one epoch of the measurement phase. All values are
// deltas over the interval, computed from registry snapshots.
type Window struct {
	// Accesses is the number of demand accesses issued in the window.
	Accesses uint64 `json:"accesses"`
	// Instructions/Cycles are the retired-instruction and elapsed-cycle
	// deltas (cycles advance on the max-finish watermark across cores).
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// FastServeRate is the fraction of the window's LLC misses served by
	// fast memory.
	FastServeRate float64 `json:"fastServeRate"`
	// BloatFactor is the window's fast-memory traffic divided by its
	// useful LLC fill traffic.
	BloatFactor float64 `json:"bloatFactor"`
	// FastBytes/SlowBytes are the window's device traffic.
	FastBytes uint64 `json:"fastBytes"`
	SlowBytes uint64 `json:"slowBytes"`
	// TierBytes is the per-tier traffic breakdown (tier 0 first), populated
	// only on topologies beyond the classic two tiers — two-tier output is
	// fully described by FastBytes/SlowBytes and stays byte-identical. When
	// set, SlowBytes covers every far tier combined.
	TierBytes []uint64 `json:"tierBytes,omitempty"`
	// CXLLinkBytes/CXLInternalBytes split the window's CXL-expander traffic
	// into host-link bytes (always uncompressed) and expander-internal
	// bytes (compressed when expander-side compression is on), summed over
	// every CXL tier. Zero on topologies without a CXL device.
	CXLLinkBytes     uint64 `json:"cxlLinkBytes,omitempty"`
	CXLInternalBytes uint64 `json:"cxlInternalBytes,omitempty"`
	// EnergyPJ is the window's memory-system access energy.
	EnergyPJ float64 `json:"energyPJ"`
	// MemLat digests the window's whole-plane demand completion-latency
	// histogram ("hierarchy.lat.demand" window delta).
	MemLat sim.HistSummary `json:"memLat"`
}

// IPC returns the window's retired instructions per cycle.
func (w Window) IPC() float64 {
	if w.Cycles == 0 {
		return 0
	}
	return float64(w.Instructions) / float64(w.Cycles)
}

// Epoch is one periodic snapshot of the measurement window: a Window delta
// plus its position in the run.
type Epoch struct {
	// Index is the epoch's ordinal within the measurement window.
	Index int `json:"epoch"`
	// EndAccesses is the cumulative number of measured accesses when the
	// epoch closed.
	EndAccesses uint64 `json:"endAccesses"`
	Window
}

// Result summarises one run. With warmup disabled (the default) the
// headline fields cover the whole run, bit-identical to the historical
// cold-start accounting; with cfg.WarmupAccessesPerCore > 0 they are the
// measurement-window deltas and Warmup holds the discarded transient.
type Result struct {
	Workload     string
	Design       string
	Cycles       uint64
	Instructions uint64
	// FastServeRate is the fraction of LLC misses served by fast memory
	// (Fig. 11 left).
	FastServeRate float64
	// BloatFactor is fast-memory traffic divided by useful LLC fill traffic
	// (Fig. 11 right).
	BloatFactor float64
	// EnergyPJ is the total memory-system access energy.
	EnergyPJ float64
	// FastBytes/SlowBytes are total device traffic.
	FastBytes, SlowBytes uint64
	// TierNames/TierBytes break traffic down per device tier (tier 0
	// first); populated only for topologies beyond the classic two tiers.
	TierNames []string
	TierBytes []uint64
	Stats     *sim.Stats
	// MeanRangeCF is the mean quantised compression factor of staged
	// ranges (Fig. 12); nonzero only for controllers that track it.
	MeanRangeCF float64
	// RemapCacheHitRate is the remap-cache hit rate (Section III-B);
	// nonzero only for controllers with a remap cache.
	RemapCacheHitRate float64
	// Warmup is the warmup-window breakdown (zero when warmup is off).
	Warmup Window
	// Measured mirrors the headline metrics as an explicit window.
	Measured Window
	// Epochs is the per-epoch time-series of the measurement window
	// (nil unless cfg.EpochAccesses > 0).
	Epochs []Epoch
	// Latency holds the measurement-window delta summary of every latency
	// histogram registered on the run (keyed by fully-qualified registry
	// name, e.g. "hierarchy.lat.demand"); empty histograms are omitted.
	Latency map[string]sim.HistSummary
	// MeasureStart is the registry snapshot taken at the measurement-window
	// boundary (after warmup, before the first measured access). Export
	// layers delta the live Stats against it to recover the full
	// measurement-window counter map: Stats.Delta(MeasureStart). With
	// warmup disabled the snapshot is effectively empty, so the delta
	// equals the cumulative registry.
	MeasureStart sim.Snapshot
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MeanRangeCFProvider is implemented by controllers that track staged-range
// compression factors (the Baryon controller).
type MeanRangeCFProvider interface {
	MeanRangeCF() float64
}

// RemapCacheHitRateProvider is implemented by controllers with a remap
// cache.
type RemapCacheHitRateProvider interface {
	RemapCacheHitRate() float64
}

// world tracks the functional value of dirty lines (written by cores but not
// necessarily propagated to the memory controller yet) and generates write
// values with per-sub-block version counters so compressibility evolves as
// the paper's write-overflow analysis requires.
type world struct {
	mix      datagen.Mix
	store    *hybrid.Store
	versions map[uint64]uint32 // (block<<3|sub) -> version
	dirty    map[uint64][]byte // lineAddr -> latest value
	// arena carves dirty-line buffers out of a shared slab, so the first
	// write to each line costs 1/256th of an allocation instead of one.
	arena []byte
}

// worldSizeHint pre-sizes the world maps: runs touch thousands of distinct
// lines, so starting at a few thousand buckets avoids the incremental map
// growth (and rehashing) of the first accesses without over-reserving for
// tiny test configurations.
const worldSizeHint = 4096

func newWorld(mix datagen.Mix, store *hybrid.Store) *world {
	return &world{
		mix:      mix,
		store:    store,
		versions: make(map[uint64]uint32, worldSizeHint),
		dirty:    make(map[uint64][]byte, worldSizeHint),
	}
}

// writeValue produces the next value of the line at addr. The returned slice
// is the world's own buffer for the line and is rewritten in place by the
// next write to the same line; callers must copy if they need the value to
// outlive that.
func (w *world) writeValue(addr uint64) []byte {
	block := addr / hybrid.BlockSize
	sub := int(addr % hybrid.BlockSize / hybrid.SubBlockSize)
	line := int(addr % hybrid.SubBlockSize / hybrid.CachelineSize)
	key := block<<3 | uint64(sub)
	w.versions[key]++
	buf, ok := w.dirty[addr]
	if !ok {
		if len(w.arena) < hybrid.CachelineSize {
			w.arena = make([]byte, 256*hybrid.CachelineSize)
		}
		buf = w.arena[:hybrid.CachelineSize:hybrid.CachelineSize]
		w.arena = w.arena[hybrid.CachelineSize:]
		w.dirty[addr] = buf
	}
	datagen.FillLine(buf, block, sub, line, w.versions[key], w.mix.ClassFor(block))
	return buf
}

// lineData returns the latest functional value of a line (for writebacks).
func (w *world) lineData(addr uint64) []byte {
	if d, ok := w.dirty[addr]; ok {
		return d
	}
	return w.store.Line(addr)
}

// coreClock is one ready core in the scheduling heap.
type coreClock struct {
	time uint64
	core int32
}

// clockHeap is a binary min-heap of core clocks ordered by (time, core).
// The secondary key reproduces the tie-breaking of the straightforward
// "scan all cores, keep the strictly earliest" loop it replaces — among
// equal clocks that scan settles on the lowest core index — so the
// simulated interleaving (and therefore every statistic) is bit-identical.
type clockHeap []coreClock

func (h clockHeap) less(i, j int) bool {
	return h[i].time < h[j].time || (h[i].time == h[j].time && h[i].core < h[j].core)
}

func (h *clockHeap) push(c coreClock) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

// fixMin restores heap order after the root's time was increased in place.
func (h clockHeap) fixMin() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h.less(l, min) {
			min = l
		}
		if r < len(h) && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// popMin removes and returns nothing: the caller reads h[0] directly; this
// drops the root when its core has retired its access budget.
func (h *clockHeap) popMin() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	old[n] = coreClock{}
	(*h).fixMin()
}

// Runner executes one trace source against one controller.
type Runner struct {
	cfg   config.Config
	src   trace.Source
	ctrl  hybrid.Controller
	hier  *cache.Hierarchy
	store *hybrid.Store
	world *world
	stats *sim.Stats

	// tracer, when set, brackets every demand access with request-lifecycle
	// events. Nil (the default) keeps the hot path on a single branch.
	tracer *obs.Tracer
	// intro, when set, receives RunStatus snapshots every progressEvery
	// accesses (published from the run goroutine; readers see immutable
	// copies, never the live registry).
	intro         *obs.Introspector
	progressEvery uint64

	// ctxDone is the cancellation channel of the RunCtx context; nil (the
	// Run path, or a Background context) skips the cancellation checks
	// entirely so uncancellable runs stay bit-identical. aborted records
	// that a window stopped early.
	ctxDone <-chan struct{}
	aborted bool
}

// ControllerFactory builds a controller over a canonical store.
type ControllerFactory func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller

// NewRunner wires a synthetic workload, a fresh canonical store filled with
// the workload's value mix, the cache hierarchy and the controller produced
// by factory.
func NewRunner(cfg config.Config, w trace.Workload, factory ControllerFactory) *Runner {
	return NewRunnerSource(cfg, w, factory)
}

// NewRunnerSource is NewRunner for an arbitrary trace source (synthetic
// workloads or recorded replays, see trace.Source).
func NewRunnerSource(cfg config.Config, src trace.Source, factory ControllerFactory) *Runner {
	stats := sim.NewStats()
	mix := src.ValueMix()
	store := hybrid.NewStore(func(b hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		datagen.Filler(mix)(uint64(b), dst)
	})
	ctrl := factory(cfg, store, stats)
	hcfg := cache.DefaultHierarchy(cfg.Cores, cfg.LLCKB)
	hcfg.InstallPrefetched = !cfg.NoLLCPrefetch
	hier := cache.NewHierarchy(hcfg, ctrl, stats)
	r := &Runner{cfg: cfg, src: src, ctrl: ctrl, hier: hier, store: store, stats: stats}
	r.world = newWorld(mix, store)
	hier.LineData = r.world.lineData
	return r
}

// SetTracer attaches a request-lifecycle tracer to the runner, the cache
// hierarchy and (through obs.TracerSink) the controller and its devices.
// Must be called before Run; nil detaches everywhere.
func (r *Runner) SetTracer(t *obs.Tracer) {
	r.tracer = t
	r.hier.SetTracer(t)
}

// SetIntrospector points the runner at a live-introspection publisher: a
// fresh RunStatus is published every `every` accesses (and at window
// boundaries). The runner remains the only goroutine touching the registry;
// HTTP handlers read only the published immutable snapshots.
func (r *Runner) SetIntrospector(in *obs.Introspector, every uint64) {
	if every == 0 {
		every = 65536
	}
	r.intro = in
	r.progressEvery = every
}

// Controller returns the controller under test.
func (r *Runner) Controller() hybrid.Controller { return r.ctrl }

// Hierarchy returns the cache stack.
func (r *Runner) Hierarchy() *cache.Hierarchy { return r.hier }

// runState carries the simulation frontier across windows: per-core clocks
// survive the warmup/measurement boundary so measurement continues the same
// interleaved timeline the warmup left behind.
type runState struct {
	streams []trace.Streamer
	sink    hybrid.InstructionSink
	osBytes uint64
	clock   []uint64 // per-core next-issue time, carried across windows
	left    []int
	ready   clockHeap
	// Cumulative run totals; windows are deltas between marks of these.
	accesses     uint64
	instructions uint64
	cycles       uint64 // max finish watermark
	phase        string // "warmup" or "measure", for live introspection
	// warmBase, when set, is the registry snapshot at the warmup boundary:
	// published statuses in the measure phase expose the delta against it,
	// so /metrics scrapes stay window-correct across the boundary.
	warmBase *sim.Snapshot
}

// runWindow replays perCore accesses on every core, continuing from the
// clocks the previous window left. Cores are rescheduled in index order at
// their carried clocks, so a run with warmup=0 replays the exact historical
// interleaving. When epochEvery > 0, onEpoch fires after every epochEvery
// accesses (total across cores).
func (r *Runner) runWindow(st *runState, perCore int, epochEvery uint64, onEpoch func()) {
	if perCore <= 0 {
		return
	}
	cores := len(st.clock)
	for c := 0; c < cores; c++ {
		st.left[c] = perCore
	}
	// Ready cores live in a min-heap keyed by (clock, core index), so
	// advancing the earliest core is O(log cores) instead of an O(cores)
	// scan per access. Pushing in index order yields the same interleaving
	// as the scan the heap replaced.
	st.ready = st.ready[:0]
	for c := 0; c < cores; c++ {
		st.ready.push(coreClock{time: st.clock[c], core: int32(c)})
	}
	var sinceEpoch, sinceProgress, sinceCancel uint64
	for len(st.ready) > 0 {
		if r.ctxDone != nil {
			// Poll cancellation every 1024 accesses: cheap enough to be
			// invisible, frequent enough that SIGINT lands within
			// milliseconds of wall time.
			sinceCancel++
			if sinceCancel >= 1024 {
				sinceCancel = 0
				select {
				case <-r.ctxDone:
					r.aborted = true
					return
				default:
				}
			}
		}
		core := int(st.ready[0].core)
		acc := st.streams[core].Next()
		addr := acc.Addr % st.osBytes &^ (hybrid.CachelineSize - 1)
		gap := uint64(acc.Gap)
		st.instructions += gap + 1
		if st.sink != nil {
			st.sink.AddInstructions(gap + 1)
		}
		now := st.ready[0].time + uint64(float64(gap)/nonMemIPC)

		if acc.Write {
			r.world.writeValue(addr)
		}
		if r.tracer != nil {
			r.tracer.BeginReq(core, addr, now)
		}
		done := r.hier.Access(core, now, addr, acc.Write)
		if r.tracer != nil {
			r.tracer.EndReq(done)
		}
		stall := (done - now) / uint64(r.cfg.MLPOverlap)
		finish := now + stall + 1
		if finish > st.cycles {
			st.cycles = finish
		}
		st.clock[core] = finish
		st.accesses++
		st.left[core]--
		if st.left[core] == 0 {
			st.ready.popMin()
		} else {
			st.ready[0].time = finish
			st.ready.fixMin()
		}
		if epochEvery > 0 {
			sinceEpoch++
			if sinceEpoch >= epochEvery {
				onEpoch()
				sinceEpoch = 0
			}
		}
		if r.intro != nil {
			sinceProgress++
			if sinceProgress >= r.progressEvery {
				r.publishStatus(st)
				sinceProgress = 0
			}
		}
	}
	if r.intro != nil {
		r.publishStatus(st)
	}
}

// publishStatus builds and publishes an immutable RunStatus. It runs on the
// run goroutine, which owns the registry, so the reads are race-free; the
// published copy is never mutated afterwards.
func (r *Runner) publishStatus(st *runState) {
	rs := &obs.RunStatus{
		Workload:       r.src.SourceName(),
		Design:         r.ctrl.Name(),
		Seed:           r.cfg.Seed,
		TargetAccesses: uint64(r.cfg.Cores) * uint64(r.cfg.WarmupAccessesPerCore+r.cfg.AccessesPerCore),
		Accesses:       st.accesses,
		Instructions:   st.instructions,
		Cycles:         st.cycles,
		CoreClocks:     append([]uint64(nil), st.clock...),
		Phase:          st.phase,
		UpdatedAt:      time.Now(),
	}
	obs.StatusFromStats(r.stats, rs)
	// The published snapshot is window-correct: raw registry values during
	// warmup, deltas since the warmup boundary once measurement starts.
	if st.phase == "measure" && st.warmBase != nil {
		rs.Snap = r.stats.Delta(*st.warmBase)
	} else {
		rs.Snap = r.stats.Snapshot()
	}
	r.intro.Publish(rs)
}

// mark is a point-in-time reference for window deltas: a registry snapshot
// plus the run-loop totals the registry does not own.
type mark struct {
	snap         sim.Snapshot
	accesses     uint64
	instructions uint64
	cycles       uint64
}

func (r *Runner) mark(st *runState) mark {
	return mark{
		snap:         r.stats.Snapshot(),
		accesses:     st.accesses,
		instructions: st.instructions,
		cycles:       st.cycles,
	}
}

// windowSince computes the metrics accumulated between m and now, reading
// the hierarchy and device deltas through typed counter handles.
func (r *Runner) windowSince(m mark, st *runState) Window {
	hc := r.hier.Counters()
	served := m.snap.DeltaOf(hc.ServedFast)
	servedSlow := m.snap.DeltaOf(hc.ServedSlow)
	w := Window{
		Accesses:      st.accesses - m.accesses,
		Instructions:  st.instructions - m.instructions,
		Cycles:        st.cycles - m.cycles,
		FastServeRate: sim.Ratio(served, served+servedSlow),
	}
	demandLat := m.snap.DeltaOfHist(hc.DemandLat)
	w.MemLat = demandLat.Summary()
	if dp, ok := r.ctrl.(DeviceProvider); ok {
		fc := dp.FastDevice().Counters()
		sc := dp.SlowDevice().Counters()
		w.FastBytes = m.snap.DeltaOf(fc.BytesRead) + m.snap.DeltaOf(fc.BytesWritten)
		w.SlowBytes = m.snap.DeltaOf(sc.BytesRead) + m.snap.DeltaOf(sc.BytesWritten)
		w.EnergyPJ = m.snap.DeltaOfFloat(fc.EnergyPJ) + m.snap.DeltaOfFloat(sc.EnergyPJ)
		useful := m.snap.DeltaOf(hc.LLCMisses) * hybrid.CachelineSize
		w.BloatFactor = sim.Ratio(w.FastBytes, useful)
	}
	if ep, ok := r.ctrl.(hybrid.EngineProvider); ok {
		tiers := ep.Engine().Tiers()
		if len(tiers) > 2 {
			// Beyond two tiers the fast/slow pair under-reports: break
			// traffic down per tier and fold every far tier (and its
			// energy) into the far-side aggregates.
			w.TierBytes = make([]uint64, len(tiers))
		}
		for i, t := range tiers {
			tc := t.Device().Counters()
			if w.TierBytes != nil {
				w.TierBytes[i] = m.snap.DeltaOf(tc.BytesRead) + m.snap.DeltaOf(tc.BytesWritten)
				if i >= 2 {
					w.SlowBytes += w.TierBytes[i]
					w.EnergyPJ += m.snap.DeltaOfFloat(tc.EnergyPJ)
				}
			}
			// The link/internal split exists at any tier count — a two-tier
			// topology can already put its far tier behind a CXL link.
			if tc.CXLLinkBytes != nil {
				w.CXLLinkBytes += m.snap.DeltaOf(tc.CXLLinkBytes)
				w.CXLInternalBytes += m.snap.DeltaOf(tc.CXLInternalBytes)
			}
		}
	}
	return w
}

// newRunState seeds the replay frontier: fresh per-core streams and clocks.
// Footprints are defined in 2 kB blocks regardless of the controller's
// internal geometry.
func (r *Runner) newRunState() *runState {
	cores := r.cfg.Cores
	fp2k := (r.cfg.FastBytes - r.cfg.StageBytes) / 2048
	st := &runState{
		streams: r.src.Streams(cores, fp2k, r.cfg.Seed),
		osBytes: r.cfg.OSBlocks() * r.cfg.BlockBytes,
		clock:   make([]uint64, cores),
		left:    make([]int, cores),
		ready:   make(clockHeap, 0, cores),
	}
	st.sink, _ = r.ctrl.(hybrid.InstructionSink)
	return st
}

// Stepper exposes the replay loop in resumable windows: each Window call
// replays further accesses continuing the same interleaved timeline. This
// is the harness for steady-state measurements — warm the simulation up
// with one window, then probe subsequent windows (e.g. with
// testing.AllocsPerRun) without the per-run construction costs. A Stepper
// and Run/RunCtx must not be mixed on one Runner.
type Stepper struct {
	r  *Runner
	st *runState
}

// Stepper returns a fresh stepping harness over the runner.
func (r *Runner) Stepper() *Stepper {
	return &Stepper{r: r, st: r.newRunState()}
}

// Window replays perCore accesses on every core.
func (s *Stepper) Window(perCore int) {
	s.r.runWindow(s.st, perCore, 0, nil)
}

// Accesses returns the cumulative accesses replayed so far.
func (s *Stepper) Accesses() uint64 { return s.st.accesses }

// Run replays the configured warmup window (if any), snapshots every
// counter in the run registry, then replays accessesPerCore accesses on
// each core and returns measurement-window metrics, plus the per-epoch
// time-series when cfg.EpochAccesses > 0.
func (r *Runner) Run() Result {
	res, _ := r.RunCtx(context.Background())
	return res
}

// RunCtx is Run with cooperative cancellation: when ctx is cancelled the
// replay stops within ~1024 accesses and RunCtx returns the metrics
// accumulated so far together with ctx's error. A context that cannot be
// cancelled (context.Background()) adds zero checks to the hot loop, so Run
// and RunCtx(context.Background()) are bit-identical.
func (r *Runner) RunCtx(ctx context.Context) (Result, error) {
	r.ctxDone = ctx.Done()
	st := r.newRunState()

	start := r.mark(st)
	st.phase = "warmup"
	r.runWindow(st, r.cfg.WarmupAccessesPerCore, 0, nil)
	warmup := r.windowSince(start, st)
	warm := r.mark(st)
	st.phase = "measure"
	st.warmBase = &warm.snap

	var epochs []Epoch
	epochStart := warm
	onEpoch := func() {
		w := r.windowSince(epochStart, st)
		epochs = append(epochs, Epoch{
			Index:       len(epochs),
			EndAccesses: st.accesses - warm.accesses,
			Window:      w,
		})
		epochStart = r.mark(st)
	}
	if !r.aborted {
		r.runWindow(st, r.cfg.AccessesPerCore, uint64(r.cfg.EpochAccesses), onEpoch)
	}
	if r.cfg.EpochAccesses > 0 && st.accesses > epochStart.accesses {
		// Close the partial tail epoch so the series covers the window.
		onEpoch()
	}
	measured := r.windowSince(warm, st)

	res := Result{
		Workload:      r.src.SourceName(),
		Design:        r.ctrl.Name(),
		Cycles:        measured.Cycles,
		Instructions:  measured.Instructions,
		FastServeRate: measured.FastServeRate,
		BloatFactor:   measured.BloatFactor,
		EnergyPJ:      measured.EnergyPJ,
		FastBytes:     measured.FastBytes,
		SlowBytes:     measured.SlowBytes,
		Stats:         r.stats,
		Warmup:        warmup,
		Measured:      measured,
		Epochs:        epochs,
		MeasureStart:  warm.snap,
	}
	if ep, ok := r.ctrl.(hybrid.EngineProvider); ok {
		if tiers := ep.Engine().Tiers(); len(tiers) > 2 {
			res.TierNames = make([]string, len(tiers))
			for i, t := range tiers {
				res.TierNames[i] = t.Name()
			}
			res.TierBytes = measured.TierBytes
		}
	}
	if p, ok := r.ctrl.(MeanRangeCFProvider); ok {
		res.MeanRangeCF = p.MeanRangeCF()
	}
	if p, ok := r.ctrl.(RemapCacheHitRateProvider); ok {
		res.RemapCacheHitRate = p.RemapCacheHitRate()
	}
	res.Latency = make(map[string]sim.HistSummary)
	for _, name := range r.stats.HistNames() {
		h := r.stats.GetHistogram(name)
		d := warm.snap.DeltaOfHist(h)
		if d.Count() == 0 {
			continue
		}
		res.Latency[name] = d.Summary()
	}
	if r.aborted {
		return res, ctx.Err()
	}
	return res, nil
}
