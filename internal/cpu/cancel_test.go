package cpu_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"baryon/internal/cpu"
	"baryon/internal/trace"
)

// TestRunCtxBackgroundIdentity pins that RunCtx with an uncancellable
// context is bit-identical to Run: the cancellation support must be free
// when unused.
func TestRunCtxBackgroundIdentity(t *testing.T) {
	cfg := smallConfig()
	w, _ := trace.ByName("505.mcf_r")
	plain := cpu.NewRunner(cfg, w, baryonFactory).Run()
	viaCtx, err := cpu.NewRunner(cfg, w, baryonFactory).RunCtx(context.Background())
	if err != nil {
		t.Fatalf("RunCtx(Background) returned error: %v", err)
	}
	if plain.Stats.String() != viaCtx.Stats.String() {
		t.Fatal("RunCtx(Background) diverged from Run")
	}
}

// TestRunCtxCancelStopsEarly cancels a long run mid-flight and checks that
// RunCtx returns promptly with the context error and partial metrics.
func TestRunCtxCancelStopsEarly(t *testing.T) {
	cfg := smallConfig()
	cfg.AccessesPerCore = 2_000_000
	w, _ := trace.ByName("505.mcf_r")
	r := cpu.NewRunner(cfg, w, baryonFactory)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := r.RunCtx(ctx)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled run still took %s", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
	total := res.Warmup.Accesses + res.Measured.Accesses
	if total == 0 {
		t.Fatal("cancelled run reports no partial progress")
	}
	if total >= uint64(cfg.Cores)*uint64(cfg.AccessesPerCore) {
		t.Fatal("run completed despite cancellation")
	}
}
