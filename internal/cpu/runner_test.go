package cpu_test

import (
	"testing"

	"baryon/internal/config"
	"baryon/internal/core"
	"baryon/internal/cpu"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

func smallConfig() config.Config {
	cfg := config.Scaled()
	cfg.FastBytes = 8 << 20
	cfg.StageBytes = 256 << 10
	cfg.SlowBytes = 64 << 20
	cfg.LLCKB = 64
	cfg.AccessesPerCore = 2000
	return cfg
}

func baryonFactory(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
	return core.New(cfg, store, stats)
}

func TestRunnerEndToEnd(t *testing.T) {
	cfg := smallConfig()
	w, ok := trace.ByName("505.mcf_r")
	if !ok {
		t.Fatal("workload missing")
	}
	r := cpu.NewRunner(cfg, w, baryonFactory)
	res := r.Run()
	if res.Cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
	wantInstr := uint64(cfg.AccessesPerCore * cfg.Cores)
	if res.Instructions < wantInstr {
		t.Fatalf("instructions %d < accesses %d", res.Instructions, wantInstr)
	}
	if res.FastServeRate <= 0 || res.FastServeRate > 1 {
		t.Fatalf("serve rate %f out of range", res.FastServeRate)
	}
	if res.FastBytes == 0 || res.SlowBytes == 0 {
		t.Fatal("no device traffic recorded")
	}
	if res.EnergyPJ <= 0 {
		t.Fatal("no energy recorded")
	}
	if res.BloatFactor < 1 {
		t.Fatalf("bloat factor %f < 1 (fast traffic below useful traffic)", res.BloatFactor)
	}
}

func TestRunnerDeterministic(t *testing.T) {
	cfg := smallConfig()
	w, _ := trace.ByName("520.omnetpp_r")
	run := func() cpu.Result {
		return cpu.NewRunner(cfg, w, baryonFactory).Run()
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.FastBytes != b.FastBytes || a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a.Cycles, b.Cycles)
	}
}

func TestRunnerAllWorkloadsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in short mode")
	}
	cfg := smallConfig()
	cfg.AccessesPerCore = 500
	for _, w := range trace.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res := cpu.NewRunner(cfg, w, baryonFactory).Run()
			if res.Cycles == 0 {
				t.Fatal("no cycles")
			}
		})
	}
}

func TestWorkloadStreamsDiffer(t *testing.T) {
	// Streams must be deterministic per core and differ across cores for
	// private-copy workloads.
	w, _ := trace.ByName("505.mcf_r")
	s0a := w.NewStream(0, 4096, 1)
	s0b := w.NewStream(0, 4096, 1)
	s1 := w.NewStream(1, 4096, 1)
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		a, b, c := s0a.Next(), s0b.Next(), s1.Next()
		if a.Addr == b.Addr {
			same++
		}
		if a.Addr != c.Addr {
			diff++
		}
	}
	if same != 100 {
		t.Fatalf("same-core streams diverge: %d/100", same)
	}
	if diff < 90 {
		t.Fatalf("cross-core streams too similar: %d/100 differ", diff)
	}
}
