package cpu_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"baryon/internal/cpu"
	"baryon/internal/obs"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// TestTracerDoesNotPerturbSimulation pins the tracing plane's core
// guarantee: attaching a tracer (even at 1-in-1 sampling) observes the
// simulation without changing it. Every architectural output must be
// byte-identical with and without the tracer.
func TestTracerDoesNotPerturbSimulation(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupAccessesPerCore = 500
	w, _ := trace.ByName("505.mcf_r")

	plain := cpu.NewRunner(cfg, w, baryonFactory).Run()

	traced := cpu.NewRunner(cfg, w, baryonFactory)
	tr := obs.NewTracer(1, 0)
	traced.SetTracer(tr)
	res := traced.Run()

	if res.Cycles != plain.Cycles || res.Instructions != plain.Instructions {
		t.Fatalf("tracer perturbed timing: cycles %d vs %d, instr %d vs %d",
			res.Cycles, plain.Cycles, res.Instructions, plain.Instructions)
	}
	if res.FastBytes != plain.FastBytes || res.SlowBytes != plain.SlowBytes {
		t.Fatalf("tracer perturbed traffic: fast %d vs %d, slow %d vs %d",
			res.FastBytes, plain.FastBytes, res.SlowBytes, plain.SlowBytes)
	}
	if res.FastServeRate != plain.FastServeRate || res.EnergyPJ != plain.EnergyPJ {
		t.Fatalf("tracer perturbed metrics: serve %f vs %f, energy %f vs %f",
			res.FastServeRate, plain.FastServeRate, res.EnergyPJ, plain.EnergyPJ)
	}

	if tr.Reqs() == 0 || tr.SampledReqs() != tr.Reqs() {
		t.Fatalf("tracer saw %d reqs, sampled %d (want all at 1-in-1)", tr.Reqs(), tr.SampledReqs())
	}
	// A run must produce at least one request that walked the full plane:
	// issue -> caches -> controller decision -> device -> completion.
	phases := map[uint64]map[string]bool{}
	for _, e := range tr.Events() {
		if phases[e.Req] == nil {
			phases[e.Req] = map[string]bool{}
		}
		phases[e.Req][e.Name] = true
	}
	best := 0
	for _, set := range phases {
		if len(set) > best {
			best = len(set)
		}
	}
	if best < 5 {
		t.Fatalf("deepest request has %d distinct span phases, want >= 5", best)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace JSON invalid")
	}
}

// TestResultLatencyHistograms checks the histogram summaries flow into the
// Result: the whole-plane demand histogram and the per-class controller and
// device histograms all show up with consistent counts.
func TestResultLatencyHistograms(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupAccessesPerCore = 500
	w, _ := trace.ByName("505.mcf_r")
	res := cpu.NewRunner(cfg, w, baryonFactory).Run()

	demand, ok := res.Latency["hierarchy.lat.demand"]
	if !ok {
		t.Fatalf("no hierarchy.lat.demand summary; have %v", keys(res.Latency))
	}
	// Every post-warmup access lands in the demand histogram.
	want := uint64(cfg.AccessesPerCore * cfg.Cores)
	if demand.Count != want {
		t.Fatalf("demand count %d, want %d", demand.Count, want)
	}
	if demand.P50 <= 0 || demand.P999 < demand.P50 || float64(demand.Max) < demand.P999 {
		t.Fatalf("demand summary not ordered: %+v", demand)
	}
	// The measured window summary mirrors the same histogram.
	if res.Measured.MemLat.Count != demand.Count {
		t.Fatalf("Measured.MemLat count %d != %d", res.Measured.MemLat.Count, demand.Count)
	}
	// Device-level histograms exist for both tiers.
	for _, name := range []string{"DDR4-3200.lat.service", "NVM.lat.service"} {
		if s, ok := res.Latency[name]; !ok || s.Count == 0 {
			t.Fatalf("missing device histogram %s (have %v)", name, keys(res.Latency))
		}
	}
}

func keys(m map[string]sim.HistSummary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
