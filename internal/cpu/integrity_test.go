package cpu

import (
	"bytes"
	"testing"

	"baryon/internal/baselines"
	"baryon/internal/config"
	"baryon/internal/core"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
	"baryon/internal/trace"
)

// endToEndIntegrity runs a workload through the full stack (cores -> L1/L2
// -> LLC -> controller), flushes the hierarchy, and verifies that the
// controller's data plane then equals the functional image for every line
// the run wrote — the strongest whole-system correctness check: every
// migration, compression, commit, swap and writeback in between must have
// preserved the bytes.
func endToEndIntegrity(t *testing.T, cfg config.Config, factory ControllerFactory, wname string) {
	t.Helper()
	w, ok := trace.ByName(wname)
	if !ok {
		t.Fatalf("workload %s missing", wname)
	}
	r := NewRunner(cfg, w, factory)
	res := r.Run()
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	r.Hierarchy().Flush(res.Cycles)
	peeker, ok := r.Controller().(hybrid.DataPeeker)
	if !ok {
		t.Fatal("controller does not expose PeekLine")
	}
	checked := 0
	for addr, want := range r.world.dirty {
		if got := peeker.PeekLine(addr); !bytes.Equal(got, want) {
			t.Fatalf("%s/%s: line %#x diverged after flush\n got %x\nwant %x",
				r.ctrl.Name(), wname, addr, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no written lines to check")
	}
	t.Logf("%s on %s: %d written lines verified", r.ctrl.Name(), wname, checked)
}

func smallIntegrityConfig() config.Config {
	cfg := config.Scaled()
	cfg.FastBytes = 2 << 20
	cfg.StageBytes = 128 << 10
	cfg.SlowBytes = 16 << 20
	cfg.LLCKB = 32
	cfg.AccessesPerCore = 2500
	return cfg
}

func TestEndToEndIntegrityBaryon(t *testing.T) {
	factory := func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
		return core.New(cfg, store, stats)
	}
	for _, wname := range []string{"505.mcf_r", "519.lbm_r", "YCSB-A"} {
		t.Run(wname, func(t *testing.T) {
			endToEndIntegrity(t, smallIntegrityConfig(), factory, wname)
		})
	}
}

func TestEndToEndIntegrityDetailedDDR(t *testing.T) {
	cfg := smallIntegrityConfig()
	cfg.DetailedDDR = true
	factory := func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
		return core.New(cfg, store, stats)
	}
	endToEndIntegrity(t, cfg, factory, "549.fotonik3d_r")
}

func TestEndToEndIntegrityBaryonFlat(t *testing.T) {
	cfg := smallIntegrityConfig()
	cfg.Mode = config.ModeFlat
	cfg.FullyAssociative = true
	factory := func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
		return core.New(cfg, store, stats)
	}
	endToEndIntegrity(t, cfg, factory, "520.omnetpp_r")
}

func TestEndToEndIntegrityBaselines(t *testing.T) {
	cfg := smallIntegrityConfig()
	factories := map[string]ControllerFactory{
		"simple": func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewSimple(cfg.FastBytes/hybrid.BlockSize, cfg.Assoc, store, stats, nil)
		},
		"unison": func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewUnison(cfg.FastBytes/hybrid.BlockSize, cfg.Assoc, store, stats, cfg.Seed, nil)
		},
		"dice": func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewDICE(cfg.FastBytes, store, stats, cfg.DecompressLatency, nil)
		},
		"hybrid2": func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewHybrid2(cfg, store, stats)
		},
		"ospaging": func(cfg config.Config, store *hybrid.Store, stats *sim.Stats) hybrid.Controller {
			return baselines.NewOSPaging(cfg.FastBytes, store, stats, nil)
		},
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			endToEndIntegrity(t, cfg, f, "507.cactuBSSN_r")
		})
	}
}

// TestWorldWriteVersioning verifies the functional image: repeated writes to
// a line change its value, and lineData always returns the latest.
func TestWorldWriteVersioning(t *testing.T) {
	w, _ := trace.ByName("505.mcf_r")
	store := hybrid.NewStore(nil)
	wd := newWorld(w.Mix, store)
	addr := uint64(4096)
	v1 := append([]byte(nil), wd.writeValue(addr)...)
	v2 := wd.writeValue(addr)
	if bytes.Equal(v1, v2) {
		t.Fatal("two writes produced identical values")
	}
	if !bytes.Equal(wd.lineData(addr), v2) {
		t.Fatal("lineData not the latest write")
	}
	if !bytes.Equal(wd.lineData(addr+64), store.Line(addr+64)) {
		t.Fatal("clean line not served from store")
	}
}
