package cpu_test

import (
	"strings"
	"testing"

	"baryon/internal/cpu"
	"baryon/internal/trace"
)

// TestRunnerWarmupWindows checks the warmup/measurement split: the two
// windows cover exactly the configured access budgets, the headline metrics
// equal the measurement window, and the warmup traffic is excluded from them.
func TestRunnerWarmupWindows(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupAccessesPerCore = 500
	w, ok := trace.ByName("505.mcf_r")
	if !ok {
		t.Fatal("workload missing")
	}
	res := cpu.NewRunner(cfg, w, baryonFactory).Run()

	wantWarm := uint64(cfg.WarmupAccessesPerCore * cfg.Cores)
	wantMeas := uint64(cfg.AccessesPerCore * cfg.Cores)
	if res.Warmup.Accesses != wantWarm {
		t.Errorf("Warmup.Accesses = %d, want %d", res.Warmup.Accesses, wantWarm)
	}
	if res.Measured.Accesses != wantMeas {
		t.Errorf("Measured.Accesses = %d, want %d", res.Measured.Accesses, wantMeas)
	}
	if res.Warmup.Instructions == 0 || res.Warmup.Cycles == 0 {
		t.Error("warmup window recorded no work")
	}
	if res.Warmup.FastBytes == 0 || res.Warmup.EnergyPJ <= 0 {
		t.Error("warmup window recorded no device traffic")
	}
	// Headline metrics are the measurement window.
	if res.Cycles != res.Measured.Cycles ||
		res.Instructions != res.Measured.Instructions ||
		res.FastServeRate != res.Measured.FastServeRate ||
		res.BloatFactor != res.Measured.BloatFactor ||
		res.FastBytes != res.Measured.FastBytes ||
		res.SlowBytes != res.Measured.SlowBytes ||
		res.EnergyPJ != res.Measured.EnergyPJ {
		t.Error("headline metrics do not equal the measurement window")
	}
	// The registry still holds run totals: both windows' traffic.
	total := res.Stats.Get("hierarchy.demandLines")
	if total != wantWarm+wantMeas {
		t.Errorf("demandLines = %d, want %d (warmup+measured)", total, wantWarm+wantMeas)
	}
}

// TestRunnerWarmupZeroMatchesColdStart pins the compatibility guarantee:
// warmup=0 must reproduce the historical cold-start run bit-for-bit, with
// the measurement window equal to the whole run.
func TestRunnerWarmupZeroMatchesColdStart(t *testing.T) {
	w, _ := trace.ByName("520.omnetpp_r")
	cold := cpu.NewRunner(smallConfig(), w, baryonFactory).Run()

	cfg := smallConfig()
	cfg.WarmupAccessesPerCore = 0
	res := cpu.NewRunner(cfg, w, baryonFactory).Run()

	if res.Cycles != cold.Cycles || res.Instructions != cold.Instructions ||
		res.FastServeRate != cold.FastServeRate ||
		res.FastBytes != cold.FastBytes || res.SlowBytes != cold.SlowBytes ||
		res.EnergyPJ != cold.EnergyPJ || res.BloatFactor != cold.BloatFactor {
		t.Fatal("warmup=0 run differs from cold-start run")
	}
	if res.Warmup.Accesses != 0 || res.Warmup.Cycles != 0 {
		t.Errorf("warmup window not empty: %+v", res.Warmup)
	}
	if res.Measured.Accesses == 0 {
		t.Error("measurement window empty")
	}
	if res.Cycles != res.Measured.Cycles {
		t.Error("headline cycles != measurement window with warmup=0")
	}
}

// TestRunnerEpochSeries checks the per-epoch time-series: non-empty,
// sequentially indexed, covering the measurement window exactly (including
// the partial tail epoch), with cumulative EndAccesses.
func TestRunnerEpochSeries(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupAccessesPerCore = 250
	cfg.EpochAccesses = 7000 // not a divisor of 2000*16: forces a tail epoch
	w, _ := trace.ByName("505.mcf_r")
	res := cpu.NewRunner(cfg, w, baryonFactory).Run()

	if len(res.Epochs) == 0 {
		t.Fatal("no epochs collected")
	}
	var sum uint64
	for i, e := range res.Epochs {
		if e.Index != i {
			t.Errorf("epoch %d has Index %d", i, e.Index)
		}
		if e.Accesses == 0 {
			t.Errorf("epoch %d is empty", i)
		}
		sum += e.Accesses
		if e.EndAccesses != sum {
			t.Errorf("epoch %d EndAccesses = %d, want cumulative %d", i, e.EndAccesses, sum)
		}
	}
	if sum != res.Measured.Accesses {
		t.Errorf("epoch accesses sum %d != measured %d", sum, res.Measured.Accesses)
	}
	want := int((res.Measured.Accesses + uint64(cfg.EpochAccesses) - 1) / uint64(cfg.EpochAccesses))
	if len(res.Epochs) != want {
		t.Errorf("epoch count = %d, want %d", len(res.Epochs), want)
	}
	// Epoch windows delta device traffic too.
	if res.Epochs[0].FastBytes == 0 || res.Epochs[0].EnergyPJ <= 0 {
		t.Error("first epoch has no device traffic")
	}
}

// TestRunnerMeasureStartDelta pins the export-layer contract of
// Result.MeasureStart: deltaing the live registry against it recovers the
// measurement-window counter map, consistent with the Measured window and
// the headline metrics (the recipe report bundles and -metrics-out use).
func TestRunnerMeasureStartDelta(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupAccessesPerCore = 500
	w, _ := trace.ByName("505.mcf_r")
	res := cpu.NewRunner(cfg, w, baryonFactory).Run()

	d := res.Stats.Delta(res.MeasureStart)
	if got := d.Get("hierarchy.demandLines"); got != res.Measured.Accesses {
		t.Errorf("delta demandLines = %d, want measured accesses %d", got, res.Measured.Accesses)
	}
	// Total registry value = warmup + measured, so the delta must be the
	// strictly smaller measurement share.
	if total := res.Stats.Get("hierarchy.demandLines"); d.Get("hierarchy.demandLines") >= total {
		t.Errorf("delta %d not smaller than run total %d despite warmup", d.Get("hierarchy.demandLines"), total)
	}
	// Summed per-device traffic deltas equal the headline traffic.
	var devBytes uint64
	for _, name := range d.CounterNames() {
		if strings.HasSuffix(name, ".bytesRead") || strings.HasSuffix(name, ".bytesWritten") {
			devBytes += d.Get(name)
		}
	}
	if want := res.FastBytes + res.SlowBytes; devBytes != want {
		t.Errorf("delta device traffic %d != headline traffic %d", devBytes, want)
	}

	// With warmup off, MeasureStart is the empty pre-run snapshot and the
	// delta equals the cumulative registry.
	cold := cpu.NewRunner(smallConfig(), w, baryonFactory).Run()
	cd := cold.Stats.Delta(cold.MeasureStart)
	for _, name := range cd.CounterNames() {
		if cd.Get(name) != cold.Stats.Get(name) {
			t.Errorf("cold-start delta %s = %d, want cumulative %d", name, cd.Get(name), cold.Stats.Get(name))
		}
	}
}

// TestRunnerEpochsOffByDefault: no epoch collection unless configured.
func TestRunnerEpochsOffByDefault(t *testing.T) {
	w, _ := trace.ByName("505.mcf_r")
	res := cpu.NewRunner(smallConfig(), w, baryonFactory).Run()
	if len(res.Epochs) != 0 {
		t.Fatalf("epochs collected without EpochAccesses: %d", len(res.Epochs))
	}
}
