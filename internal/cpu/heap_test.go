package cpu

import (
	"math/rand"
	"testing"
)

// naiveSched is the reference scheduler the heap replaced: scan every active
// core and keep the strictly earliest, which among equal clocks settles on
// the lowest core index.
type naiveSched struct {
	time   []uint64
	active []bool
	n      int
}

func (s *naiveSched) min() int {
	best := -1
	for c := 0; c < len(s.time); c++ {
		if !s.active[c] {
			continue
		}
		if best < 0 || s.time[c] < s.time[best] {
			best = c
		}
	}
	return best
}

// TestClockHeapMatchesNaiveScan drives the heap and the naive scan through
// the same randomised schedule and requires them to pick the same core at
// every step — i.e. the heap is access-for-access identical to the loop it
// replaced, including (time, core) tie-breaking.
func TestClockHeapMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		cores := 1 + rng.Intn(12)

		var h clockHeap
		naive := naiveSched{
			time:   make([]uint64, cores),
			active: make([]bool, cores),
			n:      cores,
		}
		left := make([]int, cores)
		for c := 0; c < cores; c++ {
			start := uint64(rng.Intn(4)) // duplicate clocks exercise ties
			left[c] = 1 + rng.Intn(40)
			h.push(coreClock{time: start, core: int32(c)})
			naive.time[c] = start
			naive.active[c] = true
		}

		for step := 0; len(h) > 0; step++ {
			want := naive.min()
			got := int(h[0].core)
			if got != want {
				t.Fatalf("trial %d step %d: heap chose core %d, scan chose %d",
					trial, step, got, want)
			}
			if h[0].time != naive.time[want] {
				t.Fatalf("trial %d step %d: heap time %d, scan time %d",
					trial, step, h[0].time, naive.time[want])
			}
			// Advance by a small random stall; 0 keeps the clock equal to
			// other cores so tie-breaking stays under test.
			finish := h[0].time + uint64(rng.Intn(3))
			left[got]--
			if left[got] == 0 {
				h.popMin()
				naive.active[want] = false
			} else {
				h[0].time = finish
				h.fixMin()
				naive.time[want] = finish
			}
		}
		if got := naive.min(); got != -1 {
			t.Fatalf("trial %d: heap empty but scan still has core %d", trial, got)
		}
	}
}
