package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchdogFiresOnStall checks that a frozen access counter triggers the
// stall callback with the last published status.
func TestWatchdogFiresOnStall(t *testing.T) {
	in := &Introspector{}
	in.Publish(&RunStatus{Accesses: 100})
	fired := make(chan *RunStatus, 1)
	wd := NewWatchdog(in, 80*time.Millisecond, func(last *RunStatus) { fired <- last })
	defer wd.Stop()
	select {
	case last := <-fired:
		if last == nil || last.Accesses != 100 {
			t.Fatalf("stall callback got %+v, want the last published status", last)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a stalled run")
	}
}

// TestWatchdogStaysQuietWithProgress checks that a run publishing fresh
// progress never trips the watchdog, and that Stop retires it cleanly.
func TestWatchdogStaysQuietWithProgress(t *testing.T) {
	in := &Introspector{}
	var firedCount atomic.Int32
	wd := NewWatchdog(in, 150*time.Millisecond, func(*RunStatus) { firedCount.Add(1) })
	stop := make(chan struct{})
	go func() {
		var acc uint64
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				acc += 1000
				in.Publish(&RunStatus{Accesses: acc})
			}
		}
	}()
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wd.Stop()
	wd.Stop() // idempotent
	if n := firedCount.Load(); n != 0 {
		t.Fatalf("watchdog fired %d times on a progressing run", n)
	}
}

// TestWatchdogFiresWithoutAnyPublish checks that a run that wedges before
// its first heartbeat still trips the watchdog (with a nil status).
func TestWatchdogFiresWithoutAnyPublish(t *testing.T) {
	in := &Introspector{}
	fired := make(chan *RunStatus, 1)
	wd := NewWatchdog(in, 80*time.Millisecond, func(last *RunStatus) { fired <- last })
	defer wd.Stop()
	select {
	case last := <-fired:
		if last != nil {
			t.Fatalf("expected nil status before first publish, got %+v", last)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired")
	}
}
