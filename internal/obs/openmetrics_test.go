package obs

import (
	"bytes"
	"flag"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"baryon/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the OpenMetrics golden file")

// omTestSnapshot builds a deterministic snapshot covering every rendering
// path: plain counters, device-scoped counters on two tiers (triggering the
// tier-label fold), a float accumulator, and histograms with linear and
// log-linear buckets.
func omTestSnapshot() sim.Snapshot {
	st := sim.NewStats()
	st.Counter("hierarchy.llcMisses").Add(1234)
	st.Counter("baryon.commits").Add(77)
	fast := st.Scope("HBM")
	fast.Counter("bytesRead").Add(4096)
	fast.Counter("bytesWritten").Add(2048)
	slow := st.Scope("DDR4-3200")
	slow.Counter("bytesRead").Add(8192)
	slow.Counter("bytesWritten").Add(1024)
	st.Float("HBM.energyPJ").Add(12.5)
	h := st.Histogram("hierarchy.lat.demand")
	for v := uint64(1); v <= 20; v++ {
		h.Observe(v) // linear buckets
	}
	h.Observe(100)
	h.Observe(100)
	h.Observe(5000) // log-linear buckets
	return st.Snapshot()
}

func omTestOptions() OMOptions {
	return OMOptions{Labels: []OMLabel{
		{Key: "design", Value: "Baryon"},
		{Key: "workload", Value: "505.mcf_r"},
		{Key: "seed", Value: "1"},
	}}
}

func TestCumBucketsMonotone(t *testing.T) {
	var h sim.Histogram
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		h.Observe(uint64(rng.Intn(1 << 20)))
	}
	h.Observe(0)
	h.Observe(1 << 45) // clamps into the final bucket
	bs := h.CumBuckets(nil)
	if len(bs) == 0 {
		t.Fatal("no buckets for a populated histogram")
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].Le <= bs[i-1].Le {
			t.Fatalf("bucket %d: le %d not strictly increasing after %d", i, bs[i].Le, bs[i-1].Le)
		}
		if bs[i].Cum < bs[i-1].Cum {
			t.Fatalf("bucket %d: cumulative %d decreases after %d", i, bs[i].Cum, bs[i-1].Cum)
		}
	}
	if last := bs[len(bs)-1].Cum; last != h.Count() {
		t.Fatalf("final cumulative %d != count %d", last, h.Count())
	}
}

// TestCumBucketsWindowDelta pins the merge/delta algebra the /metrics
// window correction relies on: the cumulative buckets of a registry delta
// must equal the cumulative buckets of a histogram that observed only the
// window's values.
func TestCumBucketsWindowDelta(t *testing.T) {
	st := sim.NewStats()
	h := st.Histogram("lat")
	warm := []uint64{1, 5, 40, 700, 700, 1 << 30}
	window := []uint64{2, 5, 64, 64, 9000}
	for _, v := range warm {
		h.Observe(v)
	}
	base := st.Snapshot()
	for _, v := range window {
		h.Observe(v)
	}
	delta, ok := st.Delta(base).Hist("lat")
	if !ok {
		t.Fatal("delta snapshot lost the histogram")
	}

	var want sim.Histogram
	for _, v := range window {
		want.Observe(v)
	}
	got := delta.CumBuckets(nil)
	exp := want.CumBuckets(nil)
	if len(got) != len(exp) {
		t.Fatalf("delta buckets %v != fresh-histogram buckets %v", got, exp)
	}
	for i := range got {
		if got[i] != exp[i] {
			t.Fatalf("bucket %d: delta %+v != fresh %+v", i, got[i], exp[i])
		}
	}
	if delta.Count() != uint64(len(window)) {
		t.Fatalf("delta count %d, want %d", delta.Count(), len(window))
	}
}

// TestWriteOpenMetricsGolden pins the rendered exposition byte-for-byte;
// regenerate deliberately with
//
//	go test ./internal/obs -run OpenMetricsGolden -update-golden
func TestWriteOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, omTestSnapshot(), omTestOptions()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	// Whatever the golden says, the output must satisfy the linter.
	if err := LintOpenMetrics(bytes.NewReader(got)); err != nil {
		t.Fatalf("rendered exposition fails lint: %v\n%s", err, got)
	}

	path := filepath.Join("testdata", "openmetrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
		n := len(gl)
		if len(wl) < n {
			n = len(wl)
		}
		for i := 0; i < n; i++ {
			if gl[i] != wl[i] {
				t.Fatalf("exposition diverges from golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("exposition diverges from golden in length: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestWriteOpenMetricsDeviceFold checks the tier-label fold: per-device
// counters share one family with one series per tier, sorted by tier.
func TestWriteOpenMetricsDeviceFold(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, omTestSnapshot(), omTestOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "# TYPE baryon_device_bytesRead counter"); got != 1 {
		t.Fatalf("device_bytesRead TYPE lines = %d, want 1:\n%s", got, out)
	}
	iDDR := strings.Index(out, `baryon_device_bytesRead_total{design="Baryon",workload="505.mcf_r",seed="1",tier="DDR4-3200"} 8192`)
	iHBM := strings.Index(out, `baryon_device_bytesRead_total{design="Baryon",workload="505.mcf_r",seed="1",tier="HBM"} 4096`)
	if iDDR < 0 || iHBM < 0 {
		t.Fatalf("missing tier series:\n%s", out)
	}
	if iDDR > iHBM {
		t.Fatalf("tier series not sorted by tier name:\n%s", out)
	}
	if !strings.Contains(out, `baryon_hierarchy_llcMisses_total{design="Baryon",workload="505.mcf_r",seed="1"} 1234`) {
		t.Fatalf("plain counter missing:\n%s", out)
	}
}

func TestLintOpenMetricsRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"missing EOF", "# TYPE a counter\na_total 1\n", "does not end with # EOF"},
		{"content after EOF", "# EOF\n# TYPE a counter\n", "content after # EOF"},
		{"undeclared family", "a_total 1\n# EOF\n", "no declared metric family"},
		{"bad name", "# TYPE 9bad counter\n# EOF\n", "invalid"},
		{"counter without _total", "# TYPE a counter\na 1\n# EOF\n", "_total"},
		{"duplicate TYPE", "# TYPE a counter\n# TYPE a counter\n# EOF\n", "declared twice"},
		{"interleaved families", "# TYPE a counter\n# TYPE b counter\na_total 1\nb_total 1\na_total 2\n# EOF\n", "interleaved"},
		{"bad value", "# TYPE a counter\na_total x\n# EOF\n", "does not parse"},
		{"le not increasing", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n# EOF\n", "not increasing"},
		{"cum decreasing", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 5\n# EOF\n", "decreases"},
		{"no +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n# EOF\n", "no +Inf"},
		{"+Inf != count", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n# EOF\n", "!= _count"},
		{"unterminated label value", "# TYPE a counter\na_total{x=\"1 1\n# EOF\n", "unterminated"},
		{"blank line", "# TYPE a counter\n\na_total 1\n# EOF\n", "blank"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintOpenMetrics(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("lint accepted invalid doc:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLintOpenMetricsAccepts(t *testing.T) {
	docs := []string{
		"# EOF\n",
		"# TYPE a counter\na_total 1\n# EOF\n",
		"# TYPE a counter\n# HELP a something\na_total{k=\"v\\\"q\\\\x\"} 1.5\n# EOF\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n# EOF\n",
	}
	for i, doc := range docs {
		if err := LintOpenMetrics(strings.NewReader(doc)); err != nil {
			t.Fatalf("doc %d rejected: %v\n%s", i, err, doc)
		}
	}
}

// TestMetricsHandler drives the /metrics route end to end: before any
// publish it serves an empty-but-valid exposition; after a publish it serves
// the snapshot with run-identity labels, and the output lints clean.
func TestMetricsHandler(t *testing.T) {
	var in Introspector
	mux := NewDebugMux(&in)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != omContentType {
		t.Fatalf("content type %q", ct)
	}
	if err := LintOpenMetrics(rec.Body); err != nil {
		t.Fatalf("pre-publish exposition invalid: %v", err)
	}

	rs := sampleStatus()
	rs.Seed = 7
	rs.Snap = omTestSnapshot()
	in.Publish(rs)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if err := LintOpenMetrics(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	if !strings.Contains(body, `seed="7"`) || !strings.Contains(body, `workload="505.mcf_r"`) {
		t.Fatalf("run-identity labels missing:\n%s", body)
	}
	if !strings.Contains(body, "baryon_hierarchy_lat_demand_bucket{") {
		t.Fatalf("histogram buckets missing:\n%s", body)
	}
}

// TestDebugMuxExpvarFollowsLatest is the regression test for the expvar
// rebinding bug: "baryon.run" used to close over the first Introspector ever
// passed to NewDebugMux, so a second run in the same process (tests,
// long-lived harnesses) served the first run's stale status forever. The
// published Func must always read the newest Introspector.
func TestDebugMuxExpvarFollowsLatest(t *testing.T) {
	var first Introspector
	muxA := NewDebugMux(&first)
	stA := sampleStatus()
	stA.Design = "DesignA"
	first.Publish(stA)

	var second Introspector
	muxB := NewDebugMux(&second)
	stB := sampleStatus()
	stB.Design = "DesignB"
	stB.Accesses = 999
	second.Publish(stB)

	// Both muxes share the process-wide expvar handler; after the second
	// NewDebugMux it must report the second run.
	for i, mux := range []*http.ServeMux{muxA, muxB} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
		body := rec.Body.String()
		if !strings.Contains(body, `"design":"DesignB"`) {
			t.Fatalf("mux %d: expvar still serves a stale run:\n%s", i, body)
		}
		if strings.Contains(body, `"design":"DesignA"`) {
			t.Fatalf("mux %d: expvar serves the first run after rebinding:\n%s", i, body)
		}
	}
}
