package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runReq simulates the runner's bracket around one request with a typical
// span set (miss path through three cache levels to a device).
func runReq(t *Tracer, core int, addr, now uint64) {
	t.BeginReq(core, addr, now)
	t.Span("L1", "miss", now, now+4)
	t.Span("L2", "miss", now+4, now+13)
	t.Span("LLC", "miss", now+13, now+51)
	t.Instant("decision", "fastHit", now+51)
	t.Span("ctrl", "fast", now+51, now+200)
	t.Span("DDR4-3200", "rowHit", now+60, now+190)
	t.EndReq(now + 200)
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 0)
	for i := 0; i < 100; i++ {
		runReq(tr, i%16, uint64(i)*64, uint64(i)*300)
	}
	if tr.Reqs() != 100 {
		t.Fatalf("Reqs() = %d, want 100", tr.Reqs())
	}
	// 1-in-4 starting at the first request: 100/4 = 25.
	if tr.SampledReqs() != 25 {
		t.Fatalf("SampledReqs() = %d, want 25", tr.SampledReqs())
	}
	// 8 events per sampled request (issue + 5 spans + decision + req).
	if got := len(tr.Events()); got != 25*8 {
		t.Fatalf("len(Events()) = %d, want %d", got, 25*8)
	}
	// Spans outside a sampled request are dropped.
	reqs := map[uint64]bool{}
	for _, e := range tr.Events() {
		reqs[e.Req] = true
	}
	for r := range reqs {
		if (r-1)%4 != 0 {
			t.Fatalf("unsampled request %d has events", r)
		}
	}
}

func TestTracerSpansOutsideRequestIgnored(t *testing.T) {
	tr := NewTracer(1, 0)
	tr.Span("L1", "hit", 0, 4) // before any BeginReq
	tr.Instant("decision", "x", 1)
	if len(tr.Events()) != 0 {
		t.Fatalf("events recorded outside a request: %d", len(tr.Events()))
	}
	tr.BeginReq(0, 64, 10)
	if !tr.Active() {
		t.Fatal("Active() false during sampled request")
	}
	tr.EndReq(20)
	if tr.Active() {
		t.Fatal("Active() true after EndReq")
	}
	tr.Span("L1", "hit", 20, 24) // after EndReq
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("len(Events()) = %d, want 2 (issue+req only)", got)
	}
}

func TestTracerRingBound(t *testing.T) {
	const capEvents = 64
	tr := NewTracer(1, capEvents)
	for i := 0; i < 100; i++ {
		tr.BeginReq(0, uint64(i), uint64(i)*10)
		tr.EndReq(uint64(i)*10 + 5)
	}
	evs := tr.Events()
	if len(evs) != capEvents {
		t.Fatalf("ring grew past capacity: %d events", len(evs))
	}
	if tr.Dropped() != 200-capEvents {
		t.Fatalf("Dropped() = %d, want %d", tr.Dropped(), 200-capEvents)
	}
	// The ring keeps the newest events in chronological order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatalf("events out of order at %d: %d after %d", i, evs[i].Start, evs[i-1].Start)
		}
	}
	if last := evs[len(evs)-1]; last.Req != 100 {
		t.Fatalf("newest event is req %d, want 100", last.Req)
	}
}

func TestTracerZeroDurationSpanClamped(t *testing.T) {
	tr := NewTracer(1, 0)
	tr.BeginReq(0, 0, 100)
	tr.Span("commit", "", 100, 90) // end before start must not underflow
	tr.EndReq(100)
	for _, e := range tr.Events() {
		if e.Dur > 1<<60 {
			t.Fatalf("span duration underflowed: %d", e.Dur)
		}
	}
}

func TestWriteChromeJSON(t *testing.T) {
	tr := NewTracer(1, 0)
	for i := 0; i < 10; i++ {
		runReq(tr, i, uint64(i)*2048, uint64(i)*500)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("emitted trace is not valid JSON")
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			TID  int32  `json:"tid"`
			S    string `json:"s"`
			Args struct {
				Req  uint64 `json:"req"`
				Addr string `json:"addr"`
			} `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 10*8 {
		t.Fatalf("%d trace events, want %d", len(out.TraceEvents), 10*8)
	}
	phases := map[uint64]map[string]bool{}
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Name != "commit" && e.Name != "writeback" && e.Dur == 0 {
				t.Fatalf("complete event %q without duration", e.Name)
			}
		case "i":
			if e.S != "t" {
				t.Fatalf("instant event %q without thread scope", e.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if !strings.HasPrefix(e.Args.Addr, "0x") {
			t.Fatalf("addr %q not hex-formatted", e.Args.Addr)
		}
		if phases[e.Args.Req] == nil {
			phases[e.Args.Req] = map[string]bool{}
		}
		phases[e.Args.Req][e.Name] = true
	}
	// The acceptance bar: every sampled request shows >= 5 distinct phases.
	for req, set := range phases {
		if len(set) < 5 {
			t.Fatalf("request %d has %d distinct phases, want >= 5", req, len(set))
		}
	}
	if out.OtherData["unit"] == "" {
		t.Fatal("otherData.unit missing")
	}
}

func TestWriteFlameSummary(t *testing.T) {
	tr := NewTracer(1, 0)
	for i := 0; i < 5; i++ {
		runReq(tr, 0, uint64(i)*64, uint64(i)*1000)
	}
	var buf bytes.Buffer
	if err := tr.WriteFlameSummary(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "5 requests seen, 5 sampled (1 in 1)") {
		t.Fatalf("summary header wrong:\n%s", s)
	}
	for _, phase := range []string{"req", "ctrl", "LLC", "L2", "L1", "DDR4-3200"} {
		if !strings.Contains(s, phase) {
			t.Fatalf("summary missing phase %q:\n%s", phase, s)
		}
	}
	// "req" is the covering span (200 cycles x 5), so it sorts first.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 3 || !strings.Contains(lines[2], "req") {
		t.Fatalf("widest phase not first:\n%s", s)
	}
}
