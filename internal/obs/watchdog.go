package obs

import (
	"sync"
	"time"
)

// Watchdog watches an Introspector's progress heartbeats and fires a
// callback when the run stops making progress — the access counter of the
// published RunStatus stays unchanged for stallAfter of wall time. It exists
// for the resilient-harness contract: a wedged simulation (infinite loop in
// a controller, a deadlocked device model) is detected and surfaced instead
// of hanging a sweep forever.
//
// The watchdog only reads published immutable snapshots, so it never races
// with the run goroutine; it is the one place in the repository where wall
// time is consulted, and it feeds back only through the caller's onStall
// action (typically cancelling the run context), never into simulated state.
type Watchdog struct {
	in         *Introspector
	stallAfter time.Duration
	onStall    func(last *RunStatus)

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewWatchdog starts a watchdog over in. onStall is called at most once,
// from the watchdog goroutine, with the last published status (possibly nil
// if nothing was ever published); after firing the watchdog retires. Call
// Stop when the run finishes normally.
func NewWatchdog(in *Introspector, stallAfter time.Duration, onStall func(last *RunStatus)) *Watchdog {
	if stallAfter <= 0 {
		stallAfter = time.Minute
	}
	w := &Watchdog{
		in:         in,
		stallAfter: stallAfter,
		onStall:    onStall,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go w.loop()
	return w
}

// Stop retires the watchdog without firing and waits for its goroutine to
// exit. Safe to call multiple times and after a stall has fired.
func (w *Watchdog) Stop() {
	w.once.Do(func() { close(w.stop) })
	<-w.done
}

func (w *Watchdog) loop() {
	defer close(w.done)
	tick := w.stallAfter / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()

	var lastAccesses uint64
	lastChange := time.Now()
	for {
		select {
		case <-w.stop:
			return
		case now := <-t.C:
			st := w.in.Latest()
			// Before the first publish the run is still setting up (store
			// fill, controller construction); count that against the stall
			// budget too, from watchdog start.
			acc := uint64(0)
			if st != nil {
				acc = st.Accesses
			}
			if acc != lastAccesses {
				lastAccesses = acc
				lastChange = now
				continue
			}
			if now.Sub(lastChange) >= w.stallAfter {
				w.onStall(st)
				return
			}
		}
	}
}
