// Package obs is the observability plane of the simulator: a sampled
// request-lifecycle tracer whose span events export as Chrome trace_event
// JSON (chrome://tracing / Perfetto), and live run introspection for long
// runs (an HTTP debug listener with pprof, expvar and a /runz status page).
//
// Everything in this package is opt-in and zero-cost when disabled: the
// tracer handle threaded through the simulator layers is nil by default and
// every hook is behind a nil check on the hot path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Event is one typed span event of a sampled request's lifecycle.
type Event struct {
	// Req is the request ID (the run-global demand-access ordinal).
	Req uint64
	// Name is the span phase: "req", "L1", "L2", "LLC", "ctrl",
	// "decision", or a device name ("DDR4-3200", "NVM", ...).
	Name string
	// Cat is the outcome class within the phase ("hit", "miss",
	// "stageHit", "rowMiss", ...).
	Cat string
	// Core is the issuing core.
	Core int32
	// Kind is the Chrome trace_event phase: 'X' (complete) or 'i' (instant).
	Kind byte
	// Start is the span's start cycle; Dur its length in cycles.
	Start uint64
	Dur   uint64
	// Addr is the line address of the request.
	Addr uint64
}

// DefaultTraceCapacity bounds the event ring buffer: at ~8 events per
// sampled request this holds the last ~8k sampled requests.
const DefaultTraceCapacity = 1 << 16

// Tracer records typed span events for a sampled subset of requests into a
// bounded ring buffer. It is per-run state owned by the run's goroutine,
// like the sim.Stats registry: not goroutine-safe, and not meant to be.
//
// The runner brackets every demand access with BeginReq/EndReq; the layers
// below (caches, controller, devices) attach spans to the current request
// via Span/Instant, which are no-ops unless the current request is sampled.
type Tracer struct {
	sampleEvery uint64
	events      []Event
	next        int
	wrapped     bool
	dropped     uint64

	reqs     uint64
	sampled  uint64
	sampling bool
	curReq   uint64
	curCore  int32
	curAddr  uint64
	curStart uint64
}

// NewTracer returns a tracer sampling one request in sampleEvery (1 = every
// request) into a ring buffer of the given event capacity (<= 0 selects
// DefaultTraceCapacity).
func NewTracer(sampleEvery uint64, capacity int) *Tracer {
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{sampleEvery: sampleEvery, events: make([]Event, 0, capacity)}
}

// TracerSink is implemented by components that can attach a tracer
// (controllers, devices). Components without it are silently skipped.
type TracerSink interface {
	SetTracer(*Tracer)
}

// BeginReq opens request accounting for one demand access and decides
// whether it is sampled. Must be paired with EndReq.
func (t *Tracer) BeginReq(core int, addr, now uint64) {
	t.reqs++
	t.sampling = (t.reqs-1)%t.sampleEvery == 0
	if !t.sampling {
		return
	}
	t.sampled++
	t.curReq = t.reqs
	t.curCore = int32(core)
	t.curAddr = addr
	t.curStart = now
	t.record(Event{Req: t.curReq, Name: "issue", Kind: 'i', Core: t.curCore, Start: now, Addr: addr})
}

// EndReq closes the current request, emitting its covering "req" span from
// issue to completion.
func (t *Tracer) EndReq(done uint64) {
	if !t.sampling {
		return
	}
	t.record(Event{
		Req: t.curReq, Name: "req", Kind: 'X', Core: t.curCore,
		Start: t.curStart, Dur: span(t.curStart, done), Addr: t.curAddr,
	})
	t.sampling = false
}

// Active reports whether the current request is sampled; layers use it to
// skip building span arguments entirely on unsampled requests.
func (t *Tracer) Active() bool { return t.sampling }

// Span records a complete ('X') span [start, end) on the current request.
// No-op unless the current request is sampled.
func (t *Tracer) Span(name, cat string, start, end uint64) {
	if !t.sampling {
		return
	}
	t.record(Event{
		Req: t.curReq, Name: name, Cat: cat, Kind: 'X', Core: t.curCore,
		Start: start, Dur: span(start, end), Addr: t.curAddr,
	})
}

// Instant records an instant ('i') event at ts on the current request.
func (t *Tracer) Instant(name, cat string, ts uint64) {
	if !t.sampling {
		return
	}
	t.record(Event{Req: t.curReq, Name: name, Cat: cat, Kind: 'i', Core: t.curCore, Start: ts, Addr: t.curAddr})
}

func span(start, end uint64) uint64 {
	if end <= start {
		return 0
	}
	return end - start
}

func (t *Tracer) record(e Event) {
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
		return
	}
	t.events[t.next] = e
	t.next = (t.next + 1) % len(t.events)
	t.wrapped = true
	t.dropped++
}

// Events returns the buffered events in chronological record order.
func (t *Tracer) Events() []Event {
	if !t.wrapped {
		return t.events
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Reqs returns the total number of requests seen; SampledReqs how many were
// sampled; Dropped how many events were overwritten in the ring.
func (t *Tracer) Reqs() uint64        { return t.reqs }
func (t *Tracer) SampledReqs() uint64 { return t.sampled }
func (t *Tracer) Dropped() uint64     { return t.dropped }

// chromeEvent is the trace_event wire format. Timestamps are emitted with
// 1 µs per simulated cycle (trace_event's ts unit is microseconds and has
// no way to carry cycles natively); read "1 µs" as "1 CPU cycle".
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	TS   uint64     `json:"ts"`
	Dur  uint64     `json:"dur,omitempty"`
	PID  int        `json:"pid"`
	TID  int32      `json:"tid"`
	S    string     `json:"s,omitempty"` // instant scope
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Req  uint64 `json:"req"`
	Addr string `json:"addr"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeJSON serialises the buffered events as Chrome trace_event JSON
// loadable in chrome://tracing and Perfetto. Each core is one track (tid).
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	evs := t.Events()
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(evs)),
		DisplayTimeUnit: "ns",
		OtherData: map[string]string{
			"unit":        "1 ts = 1 CPU cycle",
			"sampledReqs": fmt.Sprintf("%d of %d", t.sampled, t.reqs),
		},
	}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: string(e.Kind), TS: e.Start,
			PID: 0, TID: e.Core,
			Args: chromeArgs{Req: e.Req, Addr: fmt.Sprintf("0x%x", e.Addr)},
		}
		if e.Kind == 'X' {
			ce.Dur = e.Dur
		} else if e.Kind == 'i' {
			ce.S = "t" // thread-scoped instant
		}
		if ce.Cat == "" {
			ce.Cat = "sim"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	return json.NewEncoder(w).Encode(out)
}

// flameRow aggregates one phase for the human-readable summary.
type flameRow struct {
	name  string
	count uint64
	total uint64
	max   uint64
}

// WriteFlameSummary renders a per-phase aggregation of the buffered spans —
// a flame-graph-shaped text digest: for every phase name, how many sampled
// spans hit it, total/mean/max cycles inside it.
func (t *Tracer) WriteFlameSummary(w io.Writer) error {
	byName := map[string]*flameRow{}
	for _, e := range t.Events() {
		if e.Kind != 'X' {
			continue
		}
		r := byName[e.Name]
		if r == nil {
			r = &flameRow{name: e.Name}
			byName[e.Name] = r
		}
		r.count++
		r.total += e.Dur
		if e.Dur > r.max {
			r.max = e.Dur
		}
	}
	rows := make([]*flameRow, 0, len(byName))
	for _, r := range byName {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d requests seen, %d sampled (1 in %d), %d events buffered, %d overwritten\n",
		t.reqs, t.sampled, t.sampleEvery, len(t.events), t.dropped)
	fmt.Fprintf(&b, "  %-12s %10s %14s %10s %10s\n", "phase", "spans", "cycles", "mean", "max")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %10d %14d %10.1f %10d\n",
			r.name, r.count, r.total, float64(r.total)/float64(r.count), r.max)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
