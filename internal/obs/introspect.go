package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"baryon/internal/sim"
)

// NamedValue is one counter (or float accumulator) in a published snapshot.
type NamedValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// NamedHist is one histogram summary in a published snapshot.
type NamedHist struct {
	Name    string          `json:"name"`
	Summary sim.HistSummary `json:"summary"`
}

// RunStatus is an immutable point-in-time view of a running simulation,
// published by the run goroutine and read by HTTP handlers. Because the
// sim.Stats registry is per-run and not goroutine-safe, handlers never touch
// live registry state: they only see these published copies.
type RunStatus struct {
	Workload       string       `json:"workload"`
	Design         string       `json:"design"`
	Seed           uint64       `json:"seed"`
	TargetAccesses uint64       `json:"targetAccesses"`
	Accesses       uint64       `json:"accesses"`
	Instructions   uint64       `json:"instructions"`
	Cycles         uint64       `json:"cycles"`
	CoreClocks     []uint64     `json:"coreClocks"`
	Counters       []NamedValue `json:"counters"`
	Floats         []NamedValue `json:"floats"`
	Hists          []NamedHist  `json:"hists"`
	Phase          string       `json:"phase"` // "warmup" or "measure"
	UpdatedAt      time.Time    `json:"updatedAt"`
	// Snap is the full registry snapshot behind the summaries above, the
	// input /metrics renders with complete histogram buckets. During the
	// measurement phase it is the delta since the warmup boundary, so
	// scrapes never conflate warmup transients with measured metrics.
	// Excluded from JSON: expvar/runz consumers read the digests above.
	Snap sim.Snapshot `json:"-"`
}

// Introspector publishes RunStatus snapshots from the run goroutine and
// hands the latest one to any number of concurrent readers.
type Introspector struct {
	latest atomic.Pointer[RunStatus]
}

// Publish installs st as the latest status. Called from the run goroutine.
func (in *Introspector) Publish(st *RunStatus) { in.latest.Store(st) }

// Latest returns the most recently published status, or nil before the
// first publish. The returned value is immutable; do not modify it.
func (in *Introspector) Latest() *RunStatus { return in.latest.Load() }

// StatusFromStats builds the counter/float/histogram sections of a
// RunStatus from a registry. Must be called on the goroutine that owns st.
func StatusFromStats(st *sim.Stats, dst *RunStatus) {
	for _, name := range st.Names() {
		dst.Counters = append(dst.Counters, NamedValue{Name: name, Value: float64(st.Get(name))})
	}
	for _, name := range st.FloatNames() {
		dst.Floats = append(dst.Floats, NamedValue{Name: name, Value: st.GetFloat(name)})
	}
	for _, name := range st.HistNames() {
		if h := st.GetHistogram(name); h != nil {
			dst.Hists = append(dst.Hists, NamedHist{Name: name, Summary: h.Summary()})
		}
	}
}

// expvarIntro is the Introspector behind the process-wide "baryon.run"
// expvar. expvar.Publish is once-per-process (republishing panics), so the
// published Func reads this atomic pointer instead of closing over one
// Introspector: every NewDebugMux call swaps in its own Introspector, and
// /debug/vars always serves the newest run. Before the fix, "baryon.run"
// was bound to the first Introspector ever passed to NewDebugMux and later
// muxes in the same process served a stale run forever.
var (
	expvarOnce  sync.Once
	expvarIntro atomic.Pointer[Introspector]
)

// NewDebugMux builds the -debug-addr HTTP handler: net/http/pprof under
// /debug/pprof/, expvar under /debug/vars (including the latest published
// run status as "baryon.run"), the OpenMetrics exposition under /metrics,
// and a human-readable /runz status page.
func NewDebugMux(in *Introspector) *http.ServeMux {
	expvarIntro.Store(in)
	expvarOnce.Do(func() {
		expvar.Publish("baryon.run", expvar.Func(func() any {
			if cur := expvarIntro.Load(); cur != nil {
				return cur.Latest()
			}
			return nil
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeMetrics(w, in.Latest())
	})
	mux.HandleFunc("/runz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeRunz(w, in.Latest())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "baryonsim debug listener")
		fmt.Fprintln(w, "  /runz         run status")
		fmt.Fprintln(w, "  /metrics      OpenMetrics exposition")
		fmt.Fprintln(w, "  /debug/vars   expvar (includes baryon.run)")
		fmt.Fprintln(w, "  /debug/pprof/ profiling")
	})
	return mux
}

// omContentType is the OpenMetrics media type /metrics responds with.
const omContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// writeMetrics renders the latest published snapshot as OpenMetrics. Before
// the first publish it serves an empty (but valid) exposition, so scrapers
// that race the run's first progress tick see a clean document rather than
// an error.
func writeMetrics(w http.ResponseWriter, st *RunStatus) {
	w.Header().Set("Content-Type", omContentType)
	if st == nil {
		fmt.Fprintln(w, "# EOF")
		return
	}
	opts := OMOptions{Labels: []OMLabel{
		{Key: "design", Value: st.Design},
		{Key: "workload", Value: st.Workload},
		{Key: "seed", Value: strconv.FormatUint(st.Seed, 10)},
	}}
	if err := WriteOpenMetrics(w, st.Snap, opts); err != nil {
		// The exposition is already partially written; nothing better to do
		// than note it (broken pipe from an impatient scraper, usually).
		fmt.Fprintf(w, "# rendering error: %v\n", err)
	}
}

func writeRunz(w http.ResponseWriter, st *RunStatus) {
	if st == nil {
		fmt.Fprintln(w, "no run status published yet")
		return
	}
	fmt.Fprintf(w, "workload %s  design %s  phase %s  updated %s\n",
		st.Workload, st.Design, st.Phase, st.UpdatedAt.Format(time.RFC3339))
	pct := 0.0
	if st.TargetAccesses > 0 {
		pct = 100 * float64(st.Accesses) / float64(st.TargetAccesses)
	}
	fmt.Fprintf(w, "progress %d / %d accesses (%.1f%%)  %d instructions  %d cycles\n\n",
		st.Accesses, st.TargetAccesses, pct, st.Instructions, st.Cycles)
	fmt.Fprintln(w, "per-core clocks:")
	for i, c := range st.CoreClocks {
		fmt.Fprintf(w, "  core %d  %d\n", i, c)
	}
	if len(st.Hists) > 0 {
		fmt.Fprintln(w, "\nlatency histograms (cycles):")
		for _, h := range st.Hists {
			fmt.Fprintf(w, "  %-28s %s\n", h.Name, h.Summary)
		}
	}
	if len(st.Counters) > 0 {
		fmt.Fprintln(w, "\ncounters:")
		sorted := append([]NamedValue(nil), st.Counters...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, c := range sorted {
			fmt.Fprintf(w, "  %-36s %.0f\n", c.Name, c.Value)
		}
	}
	if len(st.Floats) > 0 {
		fmt.Fprintln(w, "\nfloat accumulators:")
		sorted := append([]NamedValue(nil), st.Floats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, f := range sorted {
			fmt.Fprintf(w, "  %-36s %.3f\n", f.Name, f.Value)
		}
	}
}
