package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"baryon/internal/sim"
)

func sampleStatus() *RunStatus {
	st := sim.NewStats()
	st.Counter("baryon.servedFast").Add(9000)
	st.Float("llc.mpki").Add(2.5)
	h := st.Histogram("hierarchy.lat.demand")
	for i := uint64(0); i < 100; i++ {
		h.Observe(100 + i)
	}
	rs := &RunStatus{
		Workload: "505.mcf_r", Design: "Baryon", Phase: "measure",
		TargetAccesses: 1000, Accesses: 250, Instructions: 800, Cycles: 1200,
		CoreClocks: []uint64{1200, 1199},
		UpdatedAt:  time.Unix(1700000000, 0).UTC(),
	}
	StatusFromStats(st, rs)
	return rs
}

func TestStatusFromStats(t *testing.T) {
	rs := sampleStatus()
	if len(rs.Counters) != 1 || rs.Counters[0].Name != "baryon.servedFast" || rs.Counters[0].Value != 9000 {
		t.Fatalf("counters: %+v", rs.Counters)
	}
	if len(rs.Floats) != 1 || rs.Floats[0].Value != 2.5 {
		t.Fatalf("floats: %+v", rs.Floats)
	}
	if len(rs.Hists) != 1 || rs.Hists[0].Summary.Count != 100 || rs.Hists[0].Summary.Max != 199 {
		t.Fatalf("hists: %+v", rs.Hists)
	}
}

func TestIntrospectorPublishLatest(t *testing.T) {
	var in Introspector
	if in.Latest() != nil {
		t.Fatal("Latest() non-nil before first publish")
	}
	first := sampleStatus()
	in.Publish(first)
	second := sampleStatus()
	second.Accesses = 500
	in.Publish(second)
	if got := in.Latest(); got != second {
		t.Fatalf("Latest() = %p, want newest publish %p", got, second)
	}

	// Concurrent readers against a publisher must be race-free (run with
	// -race): readers only ever see complete published snapshots.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if st := in.Latest(); st != nil && st.Workload != "505.mcf_r" {
					panic("torn read")
				}
			}
		}()
	}
	for j := 0; j < 1000; j++ {
		in.Publish(second)
	}
	wg.Wait()
}

func TestDebugMuxRunz(t *testing.T) {
	var in Introspector
	mux := NewDebugMux(&in)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/runz", nil))
	if !strings.Contains(rec.Body.String(), "no run status published yet") {
		t.Fatalf("/runz before publish:\n%s", rec.Body.String())
	}

	in.Publish(sampleStatus())
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/runz", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"workload 505.mcf_r", "design Baryon", "phase measure",
		"250 / 1000 accesses (25.0%)", "core 0  1200",
		"hierarchy.lat.demand", "baryon.servedFast",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/runz missing %q:\n%s", want, body)
		}
	}

	// expvar carries the same status as JSON under "baryon.run".
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	var rs RunStatus
	if err := json.Unmarshal(vars["baryon.run"], &rs); err != nil {
		t.Fatalf("baryon.run: %v", err)
	}
	if rs.Workload != "505.mcf_r" || rs.Accesses != 250 {
		t.Fatalf("baryon.run = %+v", rs)
	}

	// pprof index responds under /debug/pprof/.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status %d", rec.Code)
	}
}
