package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"baryon/internal/sim"
)

// OpenMetrics export of a run's metric registry. The renderer turns an
// immutable sim.Snapshot — counters, float accumulators and histograms —
// into OpenMetrics text (the Prometheus exposition format's standardised
// successor): counters become `<name>_total` counter families, histograms
// become cumulative `_bucket`/`_sum`/`_count` families. Device-scoped
// metrics ("DDR4-3200.bytesRead") are folded into shared families with a
// `tier` label, so a multi-tier run exposes one `baryon_device_bytesRead`
// family with one series per device instead of one family per device name.
//
// Rendering reads only the snapshot, never a live registry, so it follows
// the package's concurrency contract for free: the run goroutine publishes
// snapshots, HTTP handlers render them.

// OMLabel is one key=value label stamped on every rendered sample (run
// identity: design, workload, seed).
type OMLabel struct {
	Key, Value string
}

// OMOptions configures one OpenMetrics rendering.
type OMOptions struct {
	// Labels are stamped on every sample, in the given order, before any
	// per-metric labels (tier). Keys must be valid label names.
	Labels []OMLabel
}

// omNamePrefix namespaces every exported family.
const omNamePrefix = "baryon_"

// omDeviceScopes returns the set of device-name scopes in the snapshot: any
// prefix P with a "P.bytesRead" counter is a device (every mem.Device
// registers that counter at construction).
func omDeviceScopes(snap sim.Snapshot) map[string]bool {
	scopes := map[string]bool{}
	for _, name := range snap.CounterNames() {
		if rest, ok := strings.CutSuffix(name, ".bytesRead"); ok && rest != "" && !strings.Contains(rest, ".") {
			scopes[rest] = true
		}
	}
	return scopes
}

// omSplit maps a registry name to its OpenMetrics family and tier label:
// device-scoped names lose their device prefix to the tier label and gain a
// "device_" family prefix; everything else keeps its full name.
func omSplit(name string, devices map[string]bool) (family, tier string) {
	if dev, rest, ok := strings.Cut(name, "."); ok && devices[dev] {
		return "device_" + rest, dev
	}
	return name, ""
}

// omSanitize rewrites a registry name into a legal OpenMetrics metric or
// label name: every character outside [a-zA-Z0-9_] becomes '_'.
func omSanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// omEscape escapes a label value per the OpenMetrics ABNF.
func omEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// omLabels renders the full label block for one sample: the run-identity
// labels, the optional tier label, and any extra labels (le).
func omLabels(opts OMOptions, tier string, extra ...OMLabel) string {
	var parts []string
	for _, l := range opts.Labels {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Key, omEscape(l.Value)))
	}
	if tier != "" {
		parts = append(parts, fmt.Sprintf("tier=%q", omEscape(tier)))
	}
	for _, l := range extra {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Key, omEscape(l.Value)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// omSeries is one rendered series of a family (one tier, or the unscoped
// series).
type omSeries struct {
	tier string
	name string // original registry name, to read the snapshot
}

// omFamily groups the series that share one sanitized family name.
type omFamily struct {
	family string
	series []omSeries
}

// omGroup buckets registry names into deterministic family order: families
// sorted by name, series within a family sorted by tier.
func omGroup(names []string, devices map[string]bool) []omFamily {
	byFamily := map[string][]omSeries{}
	for _, name := range names {
		fam, tier := omSplit(name, devices)
		fam = omSanitize(fam)
		byFamily[fam] = append(byFamily[fam], omSeries{tier: tier, name: name})
	}
	fams := make([]omFamily, 0, len(byFamily))
	for fam, series := range byFamily {
		sort.Slice(series, func(i, j int) bool { return series[i].tier < series[j].tier })
		fams = append(fams, omFamily{family: fam, series: series})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].family < fams[j].family })
	return fams
}

// WriteOpenMetrics renders the snapshot as an OpenMetrics text exposition:
// counter and float-accumulator families first (both are monotone within a
// window, so both render as counters), then histogram families with
// cumulative buckets, closed by the mandatory "# EOF" terminator. Output is
// deterministic: families and series are sorted, floats use the shortest
// round-trip encoding.
func WriteOpenMetrics(w io.Writer, snap sim.Snapshot, opts OMOptions) error {
	bw := bufio.NewWriter(w)
	devices := omDeviceScopes(snap)

	for _, fam := range omGroup(snap.CounterNames(), devices) {
		name := omNamePrefix + fam.family
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		for _, s := range fam.series {
			fmt.Fprintf(bw, "%s_total%s %d\n", name, omLabels(opts, s.tier), snap.Get(s.name))
		}
	}
	for _, fam := range omGroup(snap.FloatNames(), devices) {
		name := omNamePrefix + fam.family
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		for _, s := range fam.series {
			fmt.Fprintf(bw, "%s_total%s %s\n", name, omLabels(opts, s.tier),
				strconv.FormatFloat(snap.GetFloat(s.name), 'g', -1, 64))
		}
	}
	var buckets []sim.CumBucket
	for _, fam := range omGroup(snap.HistNames(), devices) {
		name := omNamePrefix + fam.family
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		for _, s := range fam.series {
			h, ok := snap.Hist(s.name)
			if !ok {
				continue
			}
			buckets = h.CumBuckets(buckets[:0])
			for _, b := range buckets {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", name,
					omLabels(opts, s.tier, OMLabel{"le", strconv.FormatUint(b.Le, 10)}), b.Cum)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", name,
				omLabels(opts, s.tier, OMLabel{"le", "+Inf"}), h.Count())
			fmt.Fprintf(bw, "%s_sum%s %d\n", name, omLabels(opts, s.tier), h.Sum())
			fmt.Fprintf(bw, "%s_count%s %d\n", name, omLabels(opts, s.tier), h.Count())
		}
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// --- Validator -----------------------------------------------------------
//
// LintOpenMetrics is the in-repo OpenMetrics validator behind cmd/omlint
// and `make metrics-smoke`. It checks the structural subset of the spec the
// exporter relies on — enough to catch every rendering bug that would break
// a real Prometheus scrape — without pulling in an external dependency:
//
//   - the exposition ends with exactly one "# EOF" line, nothing after;
//   - metric and label names match the OpenMetrics ABNF;
//   - every sample belongs to a family declared by a preceding # TYPE line,
//     with the suffix its type demands (_total for counters;
//     _bucket/_sum/_count for histograms);
//   - a family's lines are contiguous and its TYPE is declared once;
//   - sample values parse as numbers;
//   - histogram buckets per series are cumulative: le strictly increasing,
//     counts non-decreasing, a +Inf bucket present and consistent with
//     _count.

type omLinter struct {
	types     map[string]string // family -> type
	closed    map[string]bool   // families whose block has ended
	current   string            // family of the contiguous block being read
	histState map[string]*omHistSeries
	families  int
	samples   int
}

// omHistSeries tracks one histogram series (family + labelset minus le)
// across its bucket lines.
type omHistSeries struct {
	lastLe   float64
	haveLe   bool
	lastCum  float64
	infCum   float64
	haveInf  bool
	count    float64
	haveCnt  bool
	haveSum  bool
	lastLine int
}

var omNameRe = "must match [a-zA-Z_:][a-zA-Z0-9_:]*"

func omValidName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// omParseLabels parses a "{k=\"v\",...}" block, returning the labels and the
// remainder of the line (the value).
func omParseLabels(s string) (labels []OMLabel, rest string, err error) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, nil
	}
	s = s[1:]
	for {
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		key := s[:eq]
		if !omValidName(key) || strings.Contains(key, ":") {
			return nil, "", fmt.Errorf("bad label name %q", key)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("unterminated value for label %q", key)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %q", s[1], key)
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		labels = append(labels, OMLabel{Key: key, Value: val.String()})
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

// omFamilyOf resolves a sample name to (family, suffix) given the declared
// types: "x_total" belongs to counter family "x", "x_bucket"/"x_sum"/
// "x_count" to histogram family "x".
func (l *omLinter) omFamilyOf(sample string) (family, suffix string, err error) {
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		if fam, ok := strings.CutSuffix(sample, suf); ok {
			if _, declared := l.types[fam]; declared {
				return fam, suf, nil
			}
		}
	}
	if _, declared := l.types[sample]; declared {
		return sample, "", nil
	}
	return "", "", fmt.Errorf("sample %q matches no declared metric family", sample)
}

func (l *omLinter) enterFamily(fam string, line int) error {
	if l.current == fam {
		return nil
	}
	if l.current != "" {
		l.closed[l.current] = true
	}
	if l.closed[fam] {
		return fmt.Errorf("line %d: family %q interleaved with other families", line, fam)
	}
	l.current = fam
	return nil
}

func (l *omLinter) sample(line int, text string) error {
	nameEnd := strings.IndexAny(text, "{ ")
	if nameEnd < 0 {
		return fmt.Errorf("line %d: sample %q has no value", line, text)
	}
	name := text[:nameEnd]
	if !omValidName(name) {
		return fmt.Errorf("line %d: metric name %q invalid (%s)", line, name, omNameRe)
	}
	labels, rest, err := omParseLabels(text[nameEnd:])
	if err != nil {
		return fmt.Errorf("line %d: %v", line, err)
	}
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return fmt.Errorf("line %d: sample %q has no value", line, name)
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil && fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
		return fmt.Errorf("line %d: value %q does not parse: %v", line, fields[0], err)
	}
	fam, suffix, err := l.omFamilyOf(name)
	if err != nil {
		return fmt.Errorf("line %d: %v", line, err)
	}
	if err := l.enterFamily(fam, line); err != nil {
		return err
	}
	l.samples++
	typ := l.types[fam]
	switch typ {
	case "counter":
		if suffix != "_total" {
			return fmt.Errorf("line %d: counter sample %q must use the _total suffix", line, name)
		}
		if val < 0 {
			return fmt.Errorf("line %d: counter %q has negative value %v", line, name, val)
		}
	case "histogram":
		key := fam + omSeriesKey(labels)
		hs := l.histState[key]
		if hs == nil {
			hs = &omHistSeries{}
			l.histState[key] = hs
		}
		hs.lastLine = line
		switch suffix {
		case "_bucket":
			le, ok := omFindLabel(labels, "le")
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %q lacks an le label", line, name)
			}
			if le == "+Inf" {
				hs.haveInf = true
				hs.infCum = val
				if val < hs.lastCum {
					return fmt.Errorf("line %d: +Inf bucket of %q below earlier cumulative count", line, name)
				}
				break
			}
			leV, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("line %d: bucket le %q does not parse", line, le)
			}
			if hs.haveInf {
				return fmt.Errorf("line %d: bucket after +Inf in %q", line, name)
			}
			if hs.haveLe && leV <= hs.lastLe {
				return fmt.Errorf("line %d: bucket le %v not increasing (last %v)", line, leV, hs.lastLe)
			}
			if val < hs.lastCum {
				return fmt.Errorf("line %d: cumulative bucket count %v decreases (last %v)", line, val, hs.lastCum)
			}
			hs.lastLe, hs.haveLe, hs.lastCum = leV, true, val
		case "_sum":
			hs.haveSum = true
		case "_count":
			hs.count, hs.haveCnt = val, true
		default:
			return fmt.Errorf("line %d: histogram sample %q needs a _bucket/_sum/_count suffix", line, name)
		}
	default:
		if suffix != "" {
			return fmt.Errorf("line %d: %s sample %q must not use suffix %s", line, typ, name, suffix)
		}
	}
	return nil
}

func omSeriesKey(labels []OMLabel) string {
	var parts []string
	for _, l := range labels {
		if l.Key == "le" {
			continue
		}
		parts = append(parts, l.Key+"="+l.Value)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

func omFindLabel(labels []OMLabel, key string) (string, bool) {
	for _, l := range labels {
		if l.Key == key {
			return l.Value, true
		}
	}
	return "", false
}

// LintOpenMetrics validates an OpenMetrics exposition (see the checklist
// above). It returns the first violation found, or nil for a clean
// document. The error messages carry 1-based line numbers.
func LintOpenMetrics(r io.Reader) error {
	l := &omLinter{
		types:     map[string]string{},
		closed:    map[string]bool{},
		histState: map[string]*omHistSeries{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	sawEOF := false
	for sc.Scan() {
		line++
		text := sc.Text()
		if sawEOF {
			return fmt.Errorf("line %d: content after # EOF", line)
		}
		switch {
		case text == "# EOF":
			sawEOF = true
		case strings.HasPrefix(text, "# TYPE "):
			fields := strings.Fields(text[len("# TYPE "):])
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line", line)
			}
			fam, typ := fields[0], fields[1]
			if !omValidName(fam) {
				return fmt.Errorf("line %d: family name %q invalid (%s)", line, fam, omNameRe)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "unknown", "info", "stateset", "gaugehistogram":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", line, typ)
			}
			if _, dup := l.types[fam]; dup {
				return fmt.Errorf("line %d: family %q declared twice", line, fam)
			}
			l.types[fam] = typ
			l.families++
			if err := l.enterFamily(fam, line); err != nil {
				return err
			}
		case strings.HasPrefix(text, "# HELP "), strings.HasPrefix(text, "# UNIT "):
			// Metadata lines: accepted, not cross-checked.
		case strings.HasPrefix(text, "#"):
			return fmt.Errorf("line %d: unknown comment directive %q", line, text)
		case strings.TrimSpace(text) == "":
			return fmt.Errorf("line %d: blank lines are not allowed", line)
		default:
			if err := l.sample(line, text); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawEOF {
		return fmt.Errorf("exposition does not end with # EOF")
	}
	for key, hs := range l.histState {
		if !hs.haveInf {
			return fmt.Errorf("line %d: histogram series %s has no +Inf bucket", hs.lastLine, key)
		}
		if !hs.haveCnt || !hs.haveSum {
			return fmt.Errorf("line %d: histogram series %s lacks _sum/_count", hs.lastLine, key)
		}
		if hs.infCum != hs.count {
			return fmt.Errorf("line %d: histogram series %s +Inf bucket %v != _count %v",
				hs.lastLine, key, hs.infCum, hs.count)
		}
	}
	if l.families == 0 && l.samples == 0 {
		return nil // an empty exposition (just # EOF) is legal
	}
	return nil
}
