package compress

import "encoding/binary"

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al., PACT
// 2012). A line is carved into fixed-size chunks; each chunk is stored either
// as a small delta from one arbitrary base (the first chunk that is not an
// immediate) or as a delta from an implicit zero base, with a one-bit mask
// choosing between the two. The eight standard configurations plus the
// all-zero and repeated-value special cases are tried and the smallest wins.
//
// BDI is defined on 64-byte cachelines; this implementation accepts any
// length that is a multiple of 8 and applies the same configurations, which
// is what the cacheline-aligned mode of the paper needs (64·n-byte chunks).
type BDI struct{}

// Name returns the algorithm name.
func (BDI) Name() string { return "BDI" }

// bdiConfig is one base-size/delta-size combination.
type bdiConfig struct {
	id    byte
	base  int // bytes per chunk (and per base)
	delta int // bytes per stored delta
}

// The encoding ids below are also the stream header values.
const (
	bdiZeros = 0
	bdiRep8  = 1
	// base-delta configs start at 2; see bdiConfigs.
	bdiUncompressed = 0xFF
)

var bdiConfigs = []bdiConfig{
	{2, 8, 1}, {3, 8, 2}, {4, 8, 4},
	{5, 4, 1}, {6, 4, 2},
	{7, 2, 1},
}

func allZero(data []byte) bool {
	for _, b := range data {
		if b != 0 {
			return false
		}
	}
	return true
}

func isRep8(data []byte) bool {
	if len(data) < 16 || len(data)%8 != 0 {
		return false
	}
	first := binary.LittleEndian.Uint64(data)
	for off := 8; off < len(data); off += 8 {
		if binary.LittleEndian.Uint64(data[off:]) != first {
			return false
		}
	}
	return true
}

func chunkVal(data []byte, off, size int) uint64 {
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(data[off:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(data[off:]))
	case 2:
		return uint64(binary.LittleEndian.Uint16(data[off:]))
	}
	panic("compress: bad BDI chunk size")
}

func putChunk(out []byte, off int, v uint64, size int) {
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(out[off:], v)
	case 4:
		binary.LittleEndian.PutUint32(out[off:], uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(out[off:], uint16(v))
	}
}

// deltaFits reports whether v-base fits in a signed delta of d bytes.
func deltaFits(v, base uint64, size, d int) bool {
	// Work in the chunk's width so wraparound matches hardware behaviour.
	var diff int64
	switch size {
	case 8:
		diff = int64(v - base)
	case 4:
		diff = int64(int32(uint32(v) - uint32(base)))
	case 2:
		diff = int64(int16(uint16(v) - uint16(base)))
	}
	min := -(int64(1) << (uint(d)*8 - 1))
	max := (int64(1) << (uint(d)*8 - 1)) - 1
	return diff >= min && diff <= max
}

// tryConfig returns (size in bytes, ok) for one configuration.
// Layout: header(1) + base(cfg.base) + mask(ceil(n/8)) + n*delta.
func tryConfig(data []byte, cfg bdiConfig) (int, bool) {
	if len(data)%cfg.base != 0 {
		return 0, false
	}
	n := len(data) / cfg.base
	var base uint64
	haveBase := false
	for off := 0; off < len(data); off += cfg.base {
		v := chunkVal(data, off, cfg.base)
		if deltaFits(v, 0, cfg.base, cfg.delta) {
			continue // immediate (zero-base) chunk
		}
		if !haveBase {
			base, haveBase = v, true
			continue
		}
		if !deltaFits(v, base, cfg.base, cfg.delta) {
			return 0, false
		}
	}
	size := 1 + cfg.base + (n+7)/8 + n*cfg.delta
	return size, true
}

// CompressedSize returns the byte size of the best BDI encoding of data,
// clamped to len(data)+1 (header) when nothing applies.
func (BDI) CompressedSize(data []byte) int {
	if allZero(data) {
		return 1
	}
	if isRep8(data) {
		return 1 + 8
	}
	best := 1 + len(data) // uncompressed, with header
	for _, cfg := range bdiConfigs {
		if sz, ok := tryConfig(data, cfg); ok && sz < best {
			best = sz
		}
	}
	return best
}

// SizeAtMost reports whether the best BDI encoding of data fits in budget
// bytes, equivalent to CompressedSize(data) <= budget but cheaper: a
// configuration's encoded size depends only on len(data), so configurations
// that cannot meet the budget are rejected arithmetically before any chunk
// scan, and the scan of the first feasible configuration that applies ends
// the search.
func (BDI) SizeAtMost(data []byte, budget int) bool {
	if allZero(data) {
		return 1 <= budget
	}
	if isRep8(data) {
		return 1+8 <= budget
	}
	if 1+len(data) <= budget {
		return true
	}
	for _, cfg := range bdiConfigs {
		if len(data)%cfg.base != 0 {
			continue
		}
		n := len(data) / cfg.base
		if 1+cfg.base+(n+7)/8+n*cfg.delta > budget {
			continue
		}
		if _, ok := tryConfig(data, cfg); ok {
			return true
		}
	}
	return false
}

// Compress encodes data with the best BDI configuration.
func (b BDI) Compress(data []byte) []byte { return b.AppendCompress(nil, data) }

// AppendCompress appends the best BDI encoding of data to dst and returns
// the extended slice. Passing a reused buffer (sliced to length 0) makes the
// encode allocation-free once the buffer has grown to a steady state.
func (BDI) AppendCompress(dst, data []byte) []byte {
	if allZero(data) {
		return append(dst, bdiZeros)
	}
	if isRep8(data) {
		dst = append(dst, bdiRep8)
		return append(dst, data[:8]...)
	}
	bestSize := 1 + len(data)
	var bestCfg *bdiConfig
	for i := range bdiConfigs {
		if sz, ok := tryConfig(data, bdiConfigs[i]); ok && sz < bestSize {
			bestSize, bestCfg = sz, &bdiConfigs[i]
		}
	}
	if bestCfg == nil {
		dst = append(dst, bdiUncompressed)
		return append(dst, data...)
	}
	cfg := *bestCfg
	n := len(data) / cfg.base
	full := growZero(dst, bestSize)
	out := full[len(full)-bestSize:]
	out[0] = cfg.id
	maskOff := 1 + cfg.base
	deltaOff := maskOff + (n+7)/8
	var base uint64
	haveBase := false
	for i := 0; i < n; i++ {
		v := chunkVal(data, i*cfg.base, cfg.base)
		useZero := deltaFits(v, 0, cfg.base, cfg.delta)
		var d uint64
		if useZero {
			d = v
		} else {
			if !haveBase {
				base, haveBase = v, true
				putChunk(out, 1, base, cfg.base)
			}
			d = v - base
			out[maskOff+i/8] |= 1 << (i % 8) // mask bit 1: use arbitrary base
		}
		for b := 0; b < cfg.delta; b++ {
			out[deltaOff+i*cfg.delta+b] = byte(d >> (8 * b))
		}
	}
	return full
}

// Decompress reconstructs origLen bytes from a BDI stream.
func (b BDI) Decompress(comp []byte, origLen int) []byte {
	return b.AppendDecompress(nil, comp, origLen)
}

// AppendDecompress appends the origLen reconstructed bytes to dst and
// returns the extended slice.
func (BDI) AppendDecompress(dst, comp []byte, origLen int) []byte {
	full := growZero(dst, origLen)
	out := full[len(full)-origLen:]
	if len(comp) == 0 {
		return full
	}
	switch comp[0] {
	case bdiZeros:
		return full
	case bdiRep8:
		for off := 0; off < origLen; off += 8 {
			copy(out[off:], comp[1:9])
		}
		return full
	case bdiUncompressed:
		copy(out, comp[1:])
		return full
	}
	var cfg bdiConfig
	for _, c := range bdiConfigs {
		if c.id == comp[0] {
			cfg = c
			break
		}
	}
	n := origLen / cfg.base
	maskOff := 1 + cfg.base
	deltaOff := maskOff + (n+7)/8
	base := chunkVal(comp, 1, cfg.base)
	for i := 0; i < n; i++ {
		var d uint64
		for b := cfg.delta - 1; b >= 0; b-- {
			d = d<<8 | uint64(comp[deltaOff+i*cfg.delta+b])
		}
		// Sign-extend the delta.
		shift := uint(64 - cfg.delta*8)
		sd := uint64(int64(d<<shift) >> shift)
		v := sd
		if comp[maskOff+i/8]&(1<<(i%8)) != 0 {
			v = base + sd
		}
		putChunk(out, i*cfg.base, v, cfg.base)
	}
	return full
}
