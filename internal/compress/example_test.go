package compress_test

import (
	"encoding/binary"
	"fmt"

	"baryon/internal/compress"
)

// ExampleCompressor_RangeFits shows Baryon's fit rule: a range of four
// sub-blocks holding low-entropy data compresses into one 256 B slot
// (CF = 4), even under the cacheline-aligned restriction.
func ExampleCompressor_RangeFits() {
	c := compress.New(true) // cacheline-aligned mode
	data := make([]byte, 4*compress.SubBlockSize)
	for off := 0; off < len(data); off += 4 {
		binary.LittleEndian.PutUint32(data[off:], uint32(off%8))
	}
	fmt.Println("fits at CF 4:", c.RangeFits(data, 4))
	// Output: fits at CF 4: true
}

// ExampleBDI shows a BDI round trip on a pointer-like cacheline.
func ExampleBDI() {
	var bdi compress.BDI
	line := make([]byte, 64)
	base := uint64(0x7f42_0000_1000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], base+uint64(i)*16)
	}
	comp := bdi.Compress(line)
	back := bdi.Decompress(comp, 64)
	fmt.Println("compressed to", len(comp), "bytes, round trip ok:",
		string(back[0]) == string(line[0]))
	// Output: compressed to 18 bytes, round trip ok: true
}
