// Package compress implements the two hardware compression algorithms Baryon
// uses — FPC (Frequent Pattern Compression, Alameldeen & Wood) and BDI
// (Base-Delta-Immediate, Pekhimenko et al.) — plus the best-of-both selector,
// the quantised compression factors (CF in {1,2,4}) and the cacheline-aligned
// compression mode of Section III-E of the paper.
//
// Both algorithms are implemented for real: Compress produces a byte stream
// and Decompress reconstructs the original data exactly, which lets the test
// suite verify round-trips by property testing rather than trusting size
// formulas. The simulator's hot path only needs CompressedSize, which avoids
// materialising the streams.
package compress

// bitWriter accumulates a big-endian bit stream. Seeding buf with an
// existing slice appends the stream after its contents (the byte-boundary
// start keeps the prefix untouched), which is how the Append* compression
// APIs reuse caller-provided buffers.
type bitWriter struct {
	buf  []byte
	nbit uint // bits used in the last byte (0..7), 0 means byte boundary
}

// writeBits appends the low n bits of v (n <= 64), most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		if w.nbit == 0 {
			w.buf = append(w.buf, 0)
		}
		free := 8 - w.nbit
		take := n
		if take > free {
			take = free
		}
		shift := n - take
		bits := byte((v >> shift) & ((1 << take) - 1))
		w.buf[len(w.buf)-1] |= bits << (free - take)
		w.nbit = (w.nbit + take) % 8
		n -= take
	}
}

// bytes returns the accumulated stream.
func (w *bitWriter) bytes() []byte { return w.buf }

// growZero extends dst by n bytes and returns the extended slice with the
// new region zeroed. The decoders' zero-run and all-zero cases rely on a
// zeroed output, and reused buffers carry stale bytes, so the extension is
// cleared explicitly even when capacity is recycled.
func growZero(dst []byte, n int) []byte {
	total := len(dst) + n
	if cap(dst) >= total {
		out := dst[:total]
		ext := out[len(dst):]
		for i := range ext {
			ext[i] = 0
		}
		return out
	}
	out := make([]byte, total)
	copy(out, dst)
	return out
}

// bitReader consumes a big-endian bit stream produced by bitWriter.
type bitReader struct {
	buf []byte
	pos uint // absolute bit position
}

// readBits returns the next n bits (n <= 64), most significant first.
func (r *bitReader) readBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		byteIdx := r.pos / 8
		bitIdx := r.pos % 8
		if int(byteIdx) >= len(r.buf) {
			return v << n // ran off the end: zero-fill (callers validate sizes)
		}
		free := 8 - bitIdx
		take := n
		if take > free {
			take = free
		}
		bits := (uint64(r.buf[byteIdx]) >> (free - take)) & ((1 << take) - 1)
		v = (v << take) | bits
		r.pos += take
		n -= take
	}
	return v
}
