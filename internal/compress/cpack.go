package compress

import "encoding/binary"

// CPack implements the C-Pack cache compression algorithm (Chen et al.,
// IEEE TVLSI 2010), the main alternative the paper cites to FPC/BDI
// (reference [13]). C-Pack combines static patterns for zero and
// low-magnitude words with a small FIFO dictionary of recently seen words,
// matched fully or partially (upper 2 or 3 bytes).
//
// Pattern codes (per 32-bit word):
//
//	00            zzzz  all-zero word
//	01   + 32     xxxx  uncompressed word (pushed into the dictionary)
//	10   + 4      mmmm  full dictionary match (index)
//	1100 + 4+16   mmxx  dictionary match on the upper 2 bytes
//	1101 + 8      zzzx  only the low byte is non-zero
//	1110 + 4+8    mmmx  dictionary match on the upper 3 bytes
//
// Words encoded as xxxx, mmxx or mmmx are pushed into the 16-entry FIFO
// dictionary, mirroring the hardware's behaviour, so the decompressor can
// rebuild the dictionary in lockstep.
type CPack struct{}

// Name returns the algorithm name.
func (CPack) Name() string { return "C-Pack" }

const cpackDictSize = 16

type cpackDict struct {
	entries [cpackDictSize]uint32
	n       int // valid entries
	head    int // next FIFO slot
}

func (d *cpackDict) push(w uint32) {
	d.entries[d.head] = w
	d.head = (d.head + 1) % cpackDictSize
	if d.n < cpackDictSize {
		d.n++
	}
}

// match returns the best dictionary match for w: 2 = full, 1 = upper three
// bytes, 0 = upper two bytes, -1 = none, plus the index.
func (d *cpackDict) match(w uint32) (kind, idx int) {
	kind, idx = -1, 0
	for i := 0; i < d.n; i++ {
		e := d.entries[i]
		switch {
		case e == w:
			return 2, i
		case e&0xFFFFFF00 == w&0xFFFFFF00 && kind < 1:
			kind, idx = 1, i
		case e&0xFFFF0000 == w&0xFFFF0000 && kind < 0:
			kind, idx = 0, i
		}
	}
	return kind, idx
}

// wordBits returns the encoded size in bits of one word and updates dict.
func cpackWordBits(w uint32, d *cpackDict) int {
	switch {
	case w == 0:
		return 2
	case w&0xFFFFFF00 == 0:
		return 4 + 8 // zzzx
	}
	kind, _ := d.match(w)
	switch kind {
	case 2:
		return 2 + 4
	case 1:
		d.push(w)
		return 4 + 4 + 8
	case 0:
		d.push(w)
		return 4 + 4 + 16
	default:
		d.push(w)
		return 2 + 32
	}
}

// CompressedSize returns the C-Pack encoding size in bytes. len(data) must
// be a multiple of 4.
func (CPack) CompressedSize(data []byte) int {
	var d cpackDict
	bits := 0
	for off := 0; off+4 <= len(data); off += 4 {
		bits += cpackWordBits(binary.LittleEndian.Uint32(data[off:]), &d)
	}
	return (bits + 7) / 8
}

// SizeAtMost reports whether the C-Pack encoding of data fits in budget
// bytes, bailing out as soon as the running bit count exceeds the budget.
// Equivalent to CompressedSize(data) <= budget.
func (CPack) SizeAtMost(data []byte, budget int) bool {
	maxBits := budget * 8
	var d cpackDict
	bits := 0
	for off := 0; off+4 <= len(data); off += 4 {
		bits += cpackWordBits(binary.LittleEndian.Uint32(data[off:]), &d)
		if bits > maxBits {
			return false
		}
	}
	return true
}

// C-Pack stream opcodes for the explicit encoder/decoder.
const (
	cpZZZZ = 0x0 // 00
	cpMMMM = 0x2 // 10
	cpXXXX = 0x1 // 01
	cpMMXX = 0xC // 1100
	cpZZZX = 0xD // 1101
	cpMMMX = 0xE // 1110
)

// Compress encodes data into a C-Pack bit stream.
func (c CPack) Compress(data []byte) []byte { return c.AppendCompress(nil, data) }

// AppendCompress appends the C-Pack encoding of data to dst and returns the
// extended slice.
func (CPack) AppendCompress(dst, data []byte) []byte {
	var d cpackDict
	w := &bitWriter{buf: dst}
	for off := 0; off+4 <= len(data); off += 4 {
		word := binary.LittleEndian.Uint32(data[off:])
		switch {
		case word == 0:
			w.writeBits(cpZZZZ, 2)
			continue
		case word&0xFFFFFF00 == 0:
			w.writeBits(cpZZZX, 4)
			w.writeBits(uint64(word&0xFF), 8)
			continue
		}
		kind, idx := d.match(word)
		switch kind {
		case 2:
			w.writeBits(cpMMMM, 2)
			w.writeBits(uint64(idx), 4)
		case 1:
			w.writeBits(cpMMMX, 4)
			w.writeBits(uint64(idx), 4)
			w.writeBits(uint64(word&0xFF), 8)
			d.push(word)
		case 0:
			w.writeBits(cpMMXX, 4)
			w.writeBits(uint64(idx), 4)
			w.writeBits(uint64(word&0xFFFF), 16)
			d.push(word)
		default:
			w.writeBits(cpXXXX, 2)
			w.writeBits(uint64(word), 32)
			d.push(word)
		}
	}
	return w.bytes()
}

// Decompress reconstructs origLen bytes from a C-Pack stream.
func (c CPack) Decompress(comp []byte, origLen int) []byte {
	return c.AppendDecompress(nil, comp, origLen)
}

// AppendDecompress appends the origLen reconstructed bytes to dst and
// returns the extended slice.
func (CPack) AppendDecompress(dst, comp []byte, origLen int) []byte {
	var d cpackDict
	r := &bitReader{buf: comp}
	full := growZero(dst, origLen)
	out := full[len(full)-origLen:]
	for off := 0; off+4 <= origLen; off += 4 {
		var word uint32
		switch r.readBits(2) {
		case cpZZZZ:
			word = 0
		case cpMMMM:
			word = d.entries[r.readBits(4)]
		case cpXXXX:
			word = uint32(r.readBits(32))
			d.push(word)
		default: // 11xx: one more bit selects among the 4-bit opcodes
			switch r.readBits(2) {
			case 0: // 1100 mmxx
				idx := r.readBits(4)
				low := r.readBits(16)
				word = d.entries[idx]&0xFFFF0000 | uint32(low)
				d.push(word)
			case 1: // 1101 zzzx
				word = uint32(r.readBits(8))
			case 2: // 1110 mmmx
				idx := r.readBits(4)
				low := r.readBits(8)
				word = d.entries[idx]&0xFFFFFF00 | uint32(low)
				d.push(word)
			}
		}
		binary.LittleEndian.PutUint32(out[off:], word)
	}
	return full
}
