package compress

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"baryon/internal/sim"
)

// randomLine synthesises a 64-byte line from one of several value classes so
// property tests exercise both compressible and incompressible paths.
func randomLine(rng *sim.RNG) []byte {
	line := make([]byte, 64)
	switch rng.Intn(5) {
	case 0: // zeros
	case 1: // small integers
		for off := 0; off < 64; off += 4 {
			binary.LittleEndian.PutUint32(line[off:], uint32(rng.Intn(256)))
		}
	case 2: // pointer-like: shared high bits
		base := rng.Uint64() &^ 0xFFFF
		for off := 0; off < 64; off += 8 {
			binary.LittleEndian.PutUint64(line[off:], base|uint64(rng.Intn(1<<16)))
		}
	case 3: // repeated value
		v := rng.Uint64()
		for off := 0; off < 64; off += 8 {
			binary.LittleEndian.PutUint64(line[off:], v)
		}
	default: // random
		for i := range line {
			line[i] = byte(rng.Uint32())
		}
	}
	return line
}

func TestFPCRoundTrip(t *testing.T) {
	rng := sim.NewRNG(1)
	var fpc FPC
	for i := 0; i < 2000; i++ {
		n := (rng.Intn(64) + 1) * 4
		data := make([]byte, n)
		for off := 0; off < n; off += 64 {
			end := off + 64
			if end > n {
				end = n
			}
			copy(data[off:end], randomLine(rng))
		}
		comp := fpc.Compress(data)
		got := fpc.Decompress(comp, n)
		if !bytes.Equal(got, data) {
			t.Fatalf("iter %d: FPC round trip mismatch (n=%d)", i, n)
		}
		if want := fpc.CompressedSize(data); want != len(comp) {
			t.Fatalf("iter %d: CompressedSize=%d but stream is %d bytes", i, want, len(comp))
		}
	}
}

func TestBDIRoundTrip(t *testing.T) {
	rng := sim.NewRNG(2)
	var bdi BDI
	for i := 0; i < 2000; i++ {
		data := randomLine(rng)
		comp := bdi.Compress(data)
		got := bdi.Decompress(comp, len(data))
		if !bytes.Equal(got, data) {
			t.Fatalf("iter %d: BDI round trip mismatch\n in=%x\nout=%x", i, data, got)
		}
		if want := bdi.CompressedSize(data); want != len(comp) {
			t.Fatalf("iter %d: CompressedSize=%d but stream is %d bytes", i, want, len(comp))
		}
	}
}

func TestBDIRoundTripQuick(t *testing.T) {
	var bdi BDI
	f := func(raw [64]byte) bool {
		data := raw[:]
		return bytes.Equal(bdi.Decompress(bdi.Compress(data), 64), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFPCRoundTripQuick(t *testing.T) {
	var fpc FPC
	f := func(raw [64]byte) bool {
		data := raw[:]
		return bytes.Equal(fpc.Decompress(fpc.Compress(data), 64), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLine(t *testing.T) {
	c := New(false)
	zero := make([]byte, 256)
	if !c.IsZero(zero) {
		t.Fatal("zero line not detected")
	}
	if sz := c.CompressedSize(zero); sz > 8 {
		t.Fatalf("zero 256B compresses to %d bytes, want tiny", sz)
	}
	zero[100] = 1
	if c.IsZero(zero) {
		t.Fatal("non-zero line detected as zero")
	}
}

func TestCompressedSizeNeverExpands(t *testing.T) {
	rng := sim.NewRNG(3)
	c := New(false)
	for i := 0; i < 500; i++ {
		data := make([]byte, 256)
		for off := 0; off < 256; off += 64 {
			copy(data[off:], randomLine(rng))
		}
		if sz := c.CompressedSize(data); sz > len(data) {
			t.Fatalf("compressed size %d > original %d", sz, len(data))
		}
	}
}

func TestLineCF(t *testing.T) {
	c := New(false)
	zero := make([]byte, 64)
	if cf := c.LineCF(zero); cf != 4 {
		t.Fatalf("zero line CF=%d, want 4", cf)
	}
	random := make([]byte, 64)
	rng := sim.NewRNG(4)
	for i := range random {
		random[i] = byte(rng.Uint32())
	}
	if cf := c.LineCF(random); cf != 1 {
		t.Fatalf("random line CF=%d, want 1", cf)
	}
}

func TestRangeFitsCF1Always(t *testing.T) {
	c := New(true)
	rng := sim.NewRNG(5)
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(rng.Uint32())
	}
	if !c.RangeFits(data, 1) {
		t.Fatal("CF=1 must always fit")
	}
}

func TestAlignedStricterThanUnaligned(t *testing.T) {
	// Cacheline-aligned compression is a strictly stronger requirement: any
	// range that fits aligned must also fit unaligned-style... not exactly
	// (sizes are per-chunk), but a range the aligned mode accepts must have
	// total compressed size <= 4*64 = 256. Verify on synthetic ranges.
	aligned := New(true)
	plain := New(false)
	rng := sim.NewRNG(6)
	acceptedAligned, acceptedPlain := 0, 0
	for i := 0; i < 300; i++ {
		data := make([]byte, 512)
		for off := 0; off < 512; off += 64 {
			copy(data[off:], randomLine(rng))
		}
		if aligned.RangeFits(data, 2) {
			acceptedAligned++
			if !plain.RangeFits(data, 2) {
				t.Fatal("aligned-accepted range rejected by plain mode")
			}
		}
		if plain.RangeFits(data, 2) {
			acceptedPlain++
		}
	}
	if acceptedAligned > acceptedPlain {
		t.Fatalf("aligned accepted %d > plain %d", acceptedAligned, acceptedPlain)
	}
	if acceptedPlain == 0 {
		t.Fatal("generator produced no compressible ranges; test is vacuous")
	}
}

func TestMaxCF(t *testing.T) {
	c := New(true)
	zero := make([]byte, 256)
	cf := c.MaxCF(func(i int) []byte { return zero })
	if cf != 4 {
		t.Fatalf("all-zero range MaxCF=%d, want 4", cf)
	}
	rng := sim.NewRNG(7)
	random := make([]byte, 256)
	for i := range random {
		random[i] = byte(rng.Uint32())
	}
	cf = c.MaxCF(func(i int) []byte { return random })
	if cf != 1 {
		t.Fatalf("random range MaxCF=%d, want 1", cf)
	}
}

func TestFPCPatterns(t *testing.T) {
	var fpc FPC
	cases := []struct {
		word uint32
		bits uint
	}{
		{0x00000003, 4},          // 4-bit sign-extended
		{0xFFFFFFFF, 4},          // -1 fits 4 bits
		{0x0000007F, 8},          // 8-bit
		{0x00007FFF, 16},         // 16-bit
		{0xABCD0000, 16},         // halfword padded
		{0x007F00FF &^ 0x80, 16}, // two sign-extended bytes
		{0xAAAAAAAA, 8},          // repeated byte
		{0x12345678, 32},         // uncompressed
	}
	for _, tc := range cases {
		data := make([]byte, 4)
		binary.LittleEndian.PutUint32(data, tc.word)
		_, payload := fpcClassify(tc.word)
		if payload != tc.bits {
			t.Errorf("word %#x: payload %d bits, want %d", tc.word, payload, tc.bits)
		}
		comp := fpc.Compress(data)
		if got := fpc.Decompress(comp, 4); binary.LittleEndian.Uint32(got) != tc.word {
			t.Errorf("word %#x: round trip gave %#x", tc.word, binary.LittleEndian.Uint32(got))
		}
	}
}

func TestBDIKnownGood(t *testing.T) {
	var bdi BDI
	// 8 pointers sharing a 48-bit prefix: should compress well under B8D2.
	data := make([]byte, 64)
	base := uint64(0x00007FAB12340000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], base+uint64(i*16))
	}
	sz := bdi.CompressedSize(data)
	if sz > 32 {
		t.Fatalf("pointer line compressed to %d bytes, want <= 32", sz)
	}
	if !bytes.Equal(bdi.Decompress(bdi.Compress(data), 64), data) {
		t.Fatal("pointer line round trip failed")
	}
}

func TestAchievedCF(t *testing.T) {
	c := New(false)
	zero := make([]byte, 256)
	if cf := c.AchievedCF(zero); cf < 4 {
		t.Fatalf("zero range achieved CF %.2f, want >= 4", cf)
	}
}

// TestAppendAPIsPreservePrefix checks the scratch-buffer contract of the
// Append* forms: the dst prefix is kept intact, the appended region equals
// the plain Compress/Decompress output, and recycled capacity with stale
// bytes does not leak into the result.
func TestAppendAPIsPreservePrefix(t *testing.T) {
	rng := sim.NewRNG(77)
	prefix := []byte{0xAA, 0xBB, 0xCC}
	stale := make([]byte, 0, 4096)
	for i := 0; i < cap(stale); i++ {
		stale = append(stale, 0xFF)
	}
	stale = stale[:0]

	type appender interface {
		Compress(data []byte) []byte
		Decompress(comp []byte, origLen int) []byte
		AppendCompress(dst, data []byte) []byte
		AppendDecompress(dst, comp []byte, origLen int) []byte
	}
	algos := []appender{FPC{}, BDI{}, CPack{}}
	for _, a := range algos {
		for trial := 0; trial < 200; trial++ {
			line := randomLine(rng)
			if trial%5 == 0 {
				for i := range line {
					line[i] = 0 // exercise the zero-run/all-zero decoders
				}
			}
			want := a.Compress(line)
			got := a.AppendCompress(append(stale[:0], prefix...), line)
			if !bytes.Equal(got[:len(prefix)], prefix) {
				t.Fatalf("AppendCompress clobbered the prefix")
			}
			if !bytes.Equal(got[len(prefix):], want) {
				t.Fatalf("AppendCompress stream differs from Compress")
			}
			wantPlain := a.Decompress(want, len(line))
			gotPlain := a.AppendDecompress(append(stale[:0], prefix...), want, len(line))
			if !bytes.Equal(gotPlain[:len(prefix)], prefix) {
				t.Fatalf("AppendDecompress clobbered the prefix")
			}
			if !bytes.Equal(gotPlain[len(prefix):], wantPlain) {
				t.Fatalf("AppendDecompress output differs from Decompress")
			}
			if !bytes.Equal(wantPlain, line) {
				t.Fatalf("round trip broken")
			}
		}
	}
}
