package compress

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"baryon/internal/sim"
)

func TestCPackRoundTrip(t *testing.T) {
	rng := sim.NewRNG(31)
	var cp CPack
	for i := 0; i < 3000; i++ {
		n := (rng.Intn(64) + 1) * 4
		data := make([]byte, n)
		for off := 0; off < n; off += 64 {
			end := off + 64
			if end > n {
				end = n
			}
			copy(data[off:end], randomLine(rng))
		}
		comp := cp.Compress(data)
		got := cp.Decompress(comp, n)
		if !bytes.Equal(got, data) {
			t.Fatalf("iter %d: C-Pack round trip mismatch (n=%d)\n in=%x\nout=%x", i, n, data, got)
		}
		if want := cp.CompressedSize(data); want != len(comp) {
			t.Fatalf("iter %d: CompressedSize=%d but stream is %d bytes", i, want, len(comp))
		}
	}
}

func TestCPackRoundTripQuick(t *testing.T) {
	var cp CPack
	f := func(raw [64]byte) bool {
		data := raw[:]
		return bytes.Equal(cp.Decompress(cp.Compress(data), 64), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestCPackZeroLine(t *testing.T) {
	var cp CPack
	zero := make([]byte, 64)
	// 16 zero words x 2 bits = 32 bits = 4 bytes.
	if sz := cp.CompressedSize(zero); sz != 4 {
		t.Fatalf("zero line compresses to %d bytes, want 4", sz)
	}
}

func TestCPackDictionaryMatching(t *testing.T) {
	var cp CPack
	// A line of one repeated 32-bit value: first word xxxx (34 bits), the
	// remaining 15 full matches (6 bits each) = 124 bits = 16 bytes.
	data := make([]byte, 64)
	for off := 0; off < 64; off += 4 {
		binary.LittleEndian.PutUint32(data[off:], 0xDEADBEEF)
	}
	if sz := cp.CompressedSize(data); sz != 16 {
		t.Fatalf("repeated line compresses to %d bytes, want 16", sz)
	}
	if !bytes.Equal(cp.Decompress(cp.Compress(data), 64), data) {
		t.Fatal("repeated line round trip failed")
	}
}

func TestCPackPartialMatch(t *testing.T) {
	var cp CPack
	// Words sharing the upper three bytes: one xxxx then mmmx (16 bits).
	data := make([]byte, 64)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(data[i*4:], 0xABCDEF00|uint32(i))
	}
	sz := cp.CompressedSize(data)
	if sz > 36 { // 34 + 15*16 bits = 274 bits = 35 bytes
		t.Fatalf("partial-match line compresses to %d bytes, want <= 36", sz)
	}
	if !bytes.Equal(cp.Decompress(cp.Compress(data), 64), data) {
		t.Fatal("partial-match round trip failed")
	}
}

func TestCPackLowByteWords(t *testing.T) {
	var cp CPack
	data := make([]byte, 64)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(data[i*4:], uint32(i+1))
	}
	// Each word is zzzx: 12 bits -> 192 bits = 24 bytes.
	if sz := cp.CompressedSize(data); sz != 24 {
		t.Fatalf("low-byte line compresses to %d bytes, want 24", sz)
	}
}

// TestCPackCompetitive sanity-checks that C-Pack lands in the same
// compressibility ballpark as FPC/BDI on mixed content.
func TestCPackCompetitive(t *testing.T) {
	rng := sim.NewRNG(33)
	var cp CPack
	var fpc FPC
	var bdi BDI
	cpTotal, bestTotal := 0, 0
	for i := 0; i < 500; i++ {
		line := randomLine(rng)
		c := cp.CompressedSize(line)
		f := fpc.CompressedSize(line)
		bd := bdi.CompressedSize(line)
		best := f
		if bd < best {
			best = bd
		}
		cpTotal += c
		bestTotal += best
	}
	if float64(cpTotal) > 1.5*float64(bestTotal) {
		t.Fatalf("C-Pack (%d) far worse than best-of-FPC/BDI (%d)", cpTotal, bestTotal)
	}
}
