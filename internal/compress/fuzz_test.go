package compress

import (
	"bytes"
	"testing"
)

// fuzzInput shapes raw fuzz bytes into a legal compressor input: truncated
// to a whole number of 8-byte words (every algorithm's strictest alignment)
// and capped at 2 kB (a Baryon block). Empty after truncation is skipped.
func fuzzInput(data []byte) []byte {
	if len(data) > 2048 {
		data = data[:2048]
	}
	return data[:len(data)/8*8]
}

// FuzzFPCRoundTrip checks Compress/Decompress inverse-ness and the
// CompressedSize contract on arbitrary word-aligned input.
func FuzzFPCRoundTrip(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add(bytes.Repeat([]byte{0xff, 0, 0, 0}, 16))
	f.Add([]byte("the quick brown fox jumps over the dogs!"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		data := fuzzInput(raw)
		if len(data) == 0 {
			t.Skip()
		}
		var c FPC
		comp := c.Compress(data)
		if got := c.CompressedSize(data); got != len(comp) {
			t.Fatalf("CompressedSize=%d but Compress produced %d bytes", got, len(comp))
		}
		back := c.Decompress(comp, len(data))
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", data, back)
		}
	})
}

// FuzzBDIRoundTrip does the same for BDI.
func FuzzBDIRoundTrip(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add(bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 8))
	f.Fuzz(func(t *testing.T, raw []byte) {
		data := fuzzInput(raw)
		if len(data) == 0 {
			t.Skip()
		}
		var c BDI
		comp := c.Compress(data)
		if got := c.CompressedSize(data); got != len(comp) {
			t.Fatalf("CompressedSize=%d but Compress produced %d bytes", got, len(comp))
		}
		back := c.Decompress(comp, len(data))
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", data, back)
		}
	})
}

// FuzzCPackRoundTrip does the same for C-Pack.
func FuzzCPackRoundTrip(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add(bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 16))
	f.Fuzz(func(t *testing.T, raw []byte) {
		data := fuzzInput(raw)
		if len(data) == 0 {
			t.Skip()
		}
		var c CPack
		comp := c.Compress(data)
		if got := c.CompressedSize(data); got != len(comp) {
			t.Fatalf("CompressedSize=%d but Compress produced %d bytes", got, len(comp))
		}
		back := c.Decompress(comp, len(data))
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", data, back)
		}
	})
}
