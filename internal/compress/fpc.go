package compress

import "encoding/binary"

// FPC implements Frequent Pattern Compression over 32-bit words. Each word is
// encoded with a 3-bit prefix selecting one of eight patterns; runs of zero
// words are folded into a single code with a 3-bit run length. This follows
// the original significance-based scheme of Alameldeen & Wood (2004), the
// configuration the paper adopts (Table I: 2 B/4 B/8 B segments).
type FPC struct{}

// FPC word patterns. The 3-bit prefix is the constant's value.
const (
	fpcZeroRun   = 0 // run of 1..8 zero words; 3-bit payload (run length - 1)
	fpcSign4     = 1 // 4-bit sign-extended
	fpcSign8     = 2 // 8-bit sign-extended
	fpcSign16    = 3 // 16-bit sign-extended
	fpcHalfZero  = 4 // lower halfword zero; 16-bit payload holds upper half
	fpcTwoBytes  = 5 // two halfwords, each a sign-extended byte
	fpcRepByte   = 6 // all four bytes identical
	fpcUncompr   = 7 // verbatim 32-bit word
	fpcPrefixLen = 3
)

// Name returns the algorithm name.
func (FPC) Name() string { return "FPC" }

func fitsSigned(v uint32, bits uint) bool {
	s := int32(v)
	min := -(int32(1) << (bits - 1))
	max := (int32(1) << (bits - 1)) - 1
	return s >= min && s <= max
}

// classify returns the pattern and payload bit count for one non-zero-run word.
func fpcClassify(w uint32) (pattern int, payloadBits uint) {
	switch {
	case fitsSigned(w, 4):
		return fpcSign4, 4
	case fitsSigned(w, 8):
		return fpcSign8, 8
	case fitsSigned(w, 16):
		return fpcSign16, 16
	case w&0xFFFF == 0:
		return fpcHalfZero, 16
	case fitsSigned(w>>16, 8) && fitsSigned(w&0xFFFF, 8):
		return fpcTwoBytes, 16
	case byte(w) == byte(w>>8) && byte(w) == byte(w>>16) && byte(w) == byte(w>>24):
		return fpcRepByte, 8
	default:
		return fpcUncompr, 32
	}
}

// CompressedSize returns the size in bytes of the FPC encoding of data.
// len(data) must be a multiple of 4. The result is at most len(data)+len/4
// rounded up (every word uncompressed plus prefixes), and the simulator
// clamps to the original size when compression does not pay off.
func (FPC) CompressedSize(data []byte) int {
	bits := fpcBitSize(data)
	return (bits + 7) / 8
}

// SizeAtMost reports whether the FPC encoding of data fits in budget bytes,
// without materialising the bitstream and bailing out as soon as the running
// bit count exceeds the budget. Equivalent to CompressedSize(data) <= budget.
func (FPC) SizeAtMost(data []byte, budget int) bool {
	maxBits := budget * 8
	bits := 0
	nwords := len(data) / 4
	for i := 0; i < nwords; {
		w := binary.LittleEndian.Uint32(data[i*4:])
		if w == 0 {
			run := 1
			for i+run < nwords && run < 8 && binary.LittleEndian.Uint32(data[(i+run)*4:]) == 0 {
				run++
			}
			bits += fpcPrefixLen + 3
			i += run
		} else {
			_, payload := fpcClassify(w)
			bits += fpcPrefixLen + int(payload)
			i++
		}
		if bits > maxBits {
			return false
		}
	}
	return true
}

func fpcBitSize(data []byte) int {
	bits := 0
	nwords := len(data) / 4
	for i := 0; i < nwords; {
		w := binary.LittleEndian.Uint32(data[i*4:])
		if w == 0 {
			run := 1
			for i+run < nwords && run < 8 && binary.LittleEndian.Uint32(data[(i+run)*4:]) == 0 {
				run++
			}
			bits += fpcPrefixLen + 3
			i += run
			continue
		}
		_, payload := fpcClassify(w)
		bits += fpcPrefixLen + int(payload)
		i++
	}
	return bits
}

// Compress encodes data (len multiple of 4) into an FPC bit stream.
func (f FPC) Compress(data []byte) []byte { return f.AppendCompress(nil, data) }

// AppendCompress appends the FPC encoding of data to dst and returns the
// extended slice.
func (FPC) AppendCompress(dst, data []byte) []byte {
	w := &bitWriter{buf: dst}
	nwords := len(data) / 4
	for i := 0; i < nwords; {
		word := binary.LittleEndian.Uint32(data[i*4:])
		if word == 0 {
			run := 1
			for i+run < nwords && run < 8 && binary.LittleEndian.Uint32(data[(i+run)*4:]) == 0 {
				run++
			}
			w.writeBits(fpcZeroRun, fpcPrefixLen)
			w.writeBits(uint64(run-1), 3)
			i += run
			continue
		}
		pattern, payload := fpcClassify(word)
		w.writeBits(uint64(pattern), fpcPrefixLen)
		switch pattern {
		case fpcSign4, fpcSign8, fpcSign16:
			w.writeBits(uint64(word)&((1<<payload)-1), payload)
		case fpcHalfZero:
			w.writeBits(uint64(word>>16), 16)
		case fpcTwoBytes:
			w.writeBits(uint64(word>>16)&0xFF, 8)
			w.writeBits(uint64(word)&0xFF, 8)
		case fpcRepByte:
			w.writeBits(uint64(word)&0xFF, 8)
		case fpcUncompr:
			w.writeBits(uint64(word), 32)
		}
		i++
	}
	return w.bytes()
}

func signExtend(v uint64, bits uint) uint32 {
	shift := 32 - bits
	return uint32(int32(uint32(v)<<shift) >> shift)
}

// Decompress reconstructs origLen bytes (multiple of 4) from an FPC stream.
func (f FPC) Decompress(comp []byte, origLen int) []byte {
	return f.AppendDecompress(nil, comp, origLen)
}

// AppendDecompress appends the origLen reconstructed bytes to dst and
// returns the extended slice. The zero-run case leaves words unwritten, so
// the growZero extension's explicit clearing is load-bearing here.
func (FPC) AppendDecompress(dst, comp []byte, origLen int) []byte {
	r := &bitReader{buf: comp}
	full := growZero(dst, origLen)
	out := full[len(full)-origLen:]
	nwords := origLen / 4
	for i := 0; i < nwords; {
		pattern := int(r.readBits(fpcPrefixLen))
		switch pattern {
		case fpcZeroRun:
			run := int(r.readBits(3)) + 1
			i += run // words are already zero
		case fpcSign4:
			binary.LittleEndian.PutUint32(out[i*4:], signExtend(r.readBits(4), 4))
			i++
		case fpcSign8:
			binary.LittleEndian.PutUint32(out[i*4:], signExtend(r.readBits(8), 8))
			i++
		case fpcSign16:
			binary.LittleEndian.PutUint32(out[i*4:], signExtend(r.readBits(16), 16))
			i++
		case fpcHalfZero:
			binary.LittleEndian.PutUint32(out[i*4:], uint32(r.readBits(16))<<16)
			i++
		case fpcTwoBytes:
			hi := signExtend(r.readBits(8), 8) & 0xFFFF
			lo := signExtend(r.readBits(8), 8) & 0xFFFF
			binary.LittleEndian.PutUint32(out[i*4:], hi<<16|lo)
			i++
		case fpcRepByte:
			b := uint32(r.readBits(8))
			binary.LittleEndian.PutUint32(out[i*4:], b|b<<8|b<<16|b<<24)
			i++
		case fpcUncompr:
			binary.LittleEndian.PutUint32(out[i*4:], uint32(r.readBits(32)))
			i++
		}
	}
	return full
}
