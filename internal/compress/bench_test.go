package compress

import (
	"testing"

	"baryon/internal/sim"
)

func benchLines(class int) [][]byte {
	rng := sim.NewRNG(uint64(class) + 1)
	out := make([][]byte, 64)
	for i := range out {
		out[i] = randomLine(rng)
	}
	return out
}

func BenchmarkFPCCompressedSize(b *testing.B) {
	var fpc FPC
	lines := benchLines(0)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fpc.CompressedSize(lines[i%len(lines)])
	}
}

func BenchmarkFPCCompress(b *testing.B) {
	var fpc FPC
	lines := benchLines(1)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fpc.Compress(lines[i%len(lines)])
	}
}

func BenchmarkFPCAppendCompress(b *testing.B) {
	var fpc FPC
	lines := benchLines(1)
	var buf []byte
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = fpc.AppendCompress(buf[:0], lines[i%len(lines)])
	}
}

func BenchmarkBDICompressedSize(b *testing.B) {
	var bdi BDI
	lines := benchLines(2)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bdi.CompressedSize(lines[i%len(lines)])
	}
}

func BenchmarkBDIRoundTrip(b *testing.B) {
	var bdi BDI
	lines := benchLines(3)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		line := lines[i%len(lines)]
		bdi.Decompress(bdi.Compress(line), 64)
	}
}

// BenchmarkBDIAppendRoundTrip is the scratch-buffer form of the round trip:
// steady state runs without any heap allocation.
func BenchmarkBDIAppendRoundTrip(b *testing.B) {
	var bdi BDI
	lines := benchLines(3)
	var comp, plain []byte
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		line := lines[i%len(lines)]
		comp = bdi.AppendCompress(comp[:0], line)
		plain = bdi.AppendDecompress(plain[:0], comp, 64)
	}
}

func BenchmarkRangeFitsAligned(b *testing.B) {
	c := New(true)
	rng := sim.NewRNG(9)
	data := make([]byte, 1024)
	for off := 0; off < len(data); off += 64 {
		copy(data[off:], randomLine(rng))
	}
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.RangeFits(data, 4)
	}
}
