package compress

import (
	"fmt"
	"testing"
)

// sizeAlgo is the algorithm surface the size-only fast paths must agree
// with: an exact encoder, an exact size, and the budget predicate.
type sizeAlgo struct {
	name       string
	compress   func([]byte) []byte
	size       func([]byte) int
	sizeAtMost func([]byte, int) bool
}

func sizeAlgos() []sizeAlgo {
	var fpc FPC
	var bdi BDI
	var cp CPack
	return []sizeAlgo{
		{"FPC", fpc.Compress, fpc.CompressedSize, fpc.SizeAtMost},
		{"BDI", bdi.Compress, bdi.CompressedSize, bdi.SizeAtMost},
		{"C-Pack", cp.Compress, cp.CompressedSize, cp.SizeAtMost},
	}
}

// sizeCorpus is the deterministic input corpus the size-only contracts are
// checked against: the fuzz targets' seed inputs plus a generated sweep of
// the value shapes the datagen mixes produce (zero runs, small deltas,
// repeated values, dictionary-friendly repeats, incompressible noise), at
// every length the simulator feeds the compressors (64 B cachelines up to
// 1 kB CF-4 ranges).
func sizeCorpus() [][]byte {
	var corpus [][]byte
	add := func(b []byte) { corpus = append(corpus, b) }

	// Fuzz seed inputs (word-aligned as fuzzInput would shape them).
	add(make([]byte, 64))
	add(repeatPattern([]byte{0xff, 0, 0, 0}, 64))
	add([]byte("the quick brown fox jumps over the dogs!"))
	add(repeatPattern([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 64))
	add(repeatPattern([]byte{0xde, 0xad, 0xbe, 0xef}, 64))

	rng := uint64(0x5eedc0de)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for _, n := range []int{8, 64, 128, 256, 512, 1024} {
		zero := make([]byte, n)
		add(zero)

		smallDelta := make([]byte, n)
		for i := 0; i < n; i += 8 {
			v := uint64(0x1000_0000) + uint64(i/8)
			put64(smallDelta[i:], v)
		}
		add(smallDelta)

		rep := make([]byte, n)
		for i := 0; i < n; i += 8 {
			put64(rep[i:], 0x0102030405060708)
		}
		add(rep)

		dict := make([]byte, n)
		for i := 0; i < n; i += 4 {
			// Few distinct words with shared upper bytes: C-Pack's regime.
			w := uint32(0xCAFE0000) | uint32(i/4%3)
			dict[i], dict[i+1], dict[i+2], dict[i+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		}
		add(dict)

		noise := make([]byte, n)
		for i := 0; i < n; i += 8 {
			put64(noise[i:], next())
		}
		add(noise)

		mixed := make([]byte, n)
		for i := 0; i < n; i += 8 {
			if i/8%3 == 0 {
				put64(mixed[i:], next())
			} else {
				put64(mixed[i:], uint64(i))
			}
		}
		add(mixed)
	}
	return corpus
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func repeatPattern(p []byte, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, p...)
	}
	return out[:n]
}

// TestCompressedSizeMatchesEncoding pins the size-only contract: for every
// algorithm and corpus input, CompressedSize(x) == len(Compress(x)). The
// fast paths never materialise an encoding, so this is the only thing tying
// the simulator's size arithmetic to the actual bitstreams.
func TestCompressedSizeMatchesEncoding(t *testing.T) {
	for _, a := range sizeAlgos() {
		t.Run(a.name, func(t *testing.T) {
			for i, data := range sizeCorpus() {
				if got, want := a.size(data), len(a.compress(data)); got != want {
					t.Fatalf("input %d (len %d): CompressedSize=%d but Compress produced %d bytes",
						i, len(data), got, want)
				}
			}
		})
	}
}

// TestSizeAtMostAgreesWithCompressedSize checks the early-exit budget
// predicates against the exact sizes at every interesting budget: around
// the exact size, the cacheline and sub-block budgets, and degenerate ones.
func TestSizeAtMostAgreesWithCompressedSize(t *testing.T) {
	for _, a := range sizeAlgos() {
		t.Run(a.name, func(t *testing.T) {
			for i, data := range sizeCorpus() {
				sz := a.size(data)
				for _, budget := range []int{0, 1, 16, sz - 1, sz, sz + 1, 64, 256, len(data), len(data) + 8} {
					if budget < 0 {
						continue
					}
					if got, want := a.sizeAtMost(data, budget), sz <= budget; got != want {
						t.Fatalf("input %d (len %d): SizeAtMost(%d)=%v but CompressedSize=%d",
							i, len(data), budget, got, sz)
					}
				}
			}
		})
	}
}

// TestFitsWithinAgreesWithCompressedSize checks the best-of predicate the
// fit trials use against the exact best-of size, for both compressor
// pairings.
func TestFitsWithinAgreesWithCompressedSize(t *testing.T) {
	for _, withCPack := range []bool{false, true} {
		c := &Compressor{WithCPack: withCPack}
		t.Run(fmt.Sprintf("cpack=%v", withCPack), func(t *testing.T) {
			for i, data := range sizeCorpus() {
				sz := c.CompressedSize(data)
				for _, budget := range []int{1, 16, sz - 1, sz, sz + 1, 64, 256, len(data)} {
					if budget < 0 {
						continue
					}
					if got, want := c.FitsWithin(data, budget), sz <= budget; got != want {
						t.Fatalf("input %d (len %d): FitsWithin(%d)=%v but CompressedSize=%d",
							i, len(data), budget, got, sz)
					}
				}
			}
		})
	}
}
