package compress

// The paper feeds to-be-compressed data into both FPC and BDI hardware
// modules and accepts whichever yields the higher compression factor
// (Section III-B). Compressor bundles that policy together with Baryon's CF
// quantisation and the cacheline-aligned restriction of Section III-E.

// Baryon data geometry (Section III-B): 64 B cachelines, 256 B sub-blocks.
const (
	CachelineSize = 64
	SubBlockSize  = 256
)

// CFs supported by Baryon's metadata formats.
var SupportedCFs = [3]int{4, 2, 1}

// Compressor selects the best of its enabled algorithms per unit and
// applies Baryon's fit rules. The zero value is a plain (non-aligned)
// FPC+BDI compressor, the paper's default pairing.
type Compressor struct {
	// Aligned enforces cacheline-aligned compression: every 64·n-byte chunk
	// of a CF=n range must independently compress into 64 bytes, so a single
	// DDRx burst returns decodable data (Fig. 7).
	Aligned bool
	// WithCPack adds the C-Pack algorithm to the best-of selection (the
	// alternative scheme the paper cites; "the exact choices are orthogonal
	// to our design").
	WithCPack bool
	fpc       FPC
	bdi       BDI
	cpack     CPack
	// scratch backs MaxCF's candidate-range assembly; lazily allocated so
	// the zero value stays usable. A Compressor is owned by one controller,
	// so the buffer is never shared across goroutines.
	scratch []byte
}

// New returns a compressor; aligned selects cacheline-aligned mode
// (Baryon's default).
func New(aligned bool) *Compressor { return &Compressor{Aligned: aligned} }

// NewWithCPack returns a compressor that also considers C-Pack.
func NewWithCPack(aligned bool) *Compressor {
	return &Compressor{Aligned: aligned, WithCPack: true}
}

// CompressedSize returns the smallest enabled encoding of data, clamped to
// len(data) (hardware stores the original when compression loses).
func (c *Compressor) CompressedSize(data []byte) int {
	best := c.fpc.CompressedSize(data)
	if b := c.bdi.CompressedSize(data); b < best {
		best = b
	}
	if c.WithCPack {
		if p := c.cpack.CompressedSize(data); p < best {
			best = p
		}
	}
	if best > len(data) {
		best = len(data)
	}
	return best
}

// FitsWithin reports whether the best enabled encoding of data fits in
// budget bytes — exactly CompressedSize(data) <= budget, but without the
// full best-of search: each algorithm's size-only fast path bails out as
// soon as the budget is exceeded, and the first algorithm that fits ends
// the search. This is the predicate behind every fit trial (RangeFits,
// write-hit recompression, compressed writeback), where the exact size is
// irrelevant.
func (c *Compressor) FitsWithin(data []byte, budget int) bool {
	if budget >= len(data) {
		return true // hardware stores the original when compression loses
	}
	if c.fpc.SizeAtMost(data, budget) {
		return true
	}
	if c.bdi.SizeAtMost(data, budget) {
		return true
	}
	return c.WithCPack && c.cpack.SizeAtMost(data, budget)
}

// IsZero reports whether data is entirely zero (the Z-bit special case).
func (c *Compressor) IsZero(data []byte) bool { return allZero(data) }

// RangeFits reports whether a contiguous range of cf sub-blocks (data, with
// len(data) == cf*SubBlockSize) can be stored in a single sub-block slot at
// compression factor cf. CF 1 always fits. In aligned mode each of the four
// 64·cf-byte chunks must independently compress into one cacheline.
func (c *Compressor) RangeFits(data []byte, cf int) bool {
	if len(data) != cf*SubBlockSize {
		panic("compress: RangeFits length mismatch")
	}
	if cf == 1 {
		return true
	}
	if !c.Aligned {
		return c.FitsWithin(data, SubBlockSize)
	}
	chunk := CachelineSize * cf
	for off := 0; off < len(data); off += chunk {
		if !c.FitsWithin(data[off:off+chunk], CachelineSize) {
			return false
		}
	}
	return true
}

// MaxCF returns the largest supported CF at which the range starting with
// the given sub-blocks fits in one slot. sub returns the data of the i-th
// sub-block of the candidate range (i in [0,4)); the caller guarantees the
// range is contiguous and aligned (Rule 2). The result is 4, 2 or 1.
func (c *Compressor) MaxCF(sub func(i int) []byte) int {
	if c.scratch == nil {
		c.scratch = make([]byte, 4*SubBlockSize)
	}
	buf := c.scratch
	for _, cf := range SupportedCFs {
		if cf == 1 {
			return 1
		}
		data := buf[:cf*SubBlockSize]
		for i := 0; i < cf; i++ {
			copy(data[i*SubBlockSize:], sub(i))
		}
		if c.RangeFits(data, cf) {
			return cf
		}
	}
	return 1
}

// AchievedCF returns len(data) divided by its best compressed size — the
// unquantised compression factor used for the CF statistics in Fig. 12.
func (c *Compressor) AchievedCF(data []byte) float64 {
	sz := c.CompressedSize(data)
	if sz == 0 {
		return float64(len(data))
	}
	return float64(len(data)) / float64(sz)
}

// LineCF quantises one 64 B cacheline's compressibility to {1,2,4}: 4 if it
// fits in 16 B, 2 if it fits in 32 B, else 1. DICE packs lines this way.
func (c *Compressor) LineCF(line []byte) int {
	sz := c.CompressedSize(line)
	switch {
	case sz <= CachelineSize/4:
		return 4
	case sz <= CachelineSize/2:
		return 2
	default:
		return 1
	}
}
