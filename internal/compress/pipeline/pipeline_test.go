package pipeline

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"baryon/internal/compress"
)

// testBatch queues a deterministic mix of whole and chunked checks over
// data with a spread of compressibility, returning the per-group
// serial-reference verdicts computed directly with FitsWithin.
func testBatch(t *testing.T, a *Arena, comp *compress.Compressor, rng *rand.Rand) []bool {
	t.Helper()
	var want []bool
	a.Begin()
	nGroups := 1 + rng.Intn(12)
	for g := 0; g < nGroups; g++ {
		cf := []int{1, 2, 4}[rng.Intn(3)]
		data := make([]byte, cf*compress.SubBlockSize)
		switch rng.Intn(4) {
		case 0: // zeros — always fits
		case 1: // noise — never fits
			rng.Read(data)
		case 2: // low-magnitude words — usually fits
			for i := 0; i < len(data); i += 4 {
				data[i] = byte(rng.Intn(16))
			}
		case 3: // half noise
			rng.Read(data[:len(data)/2])
		}
		if rng.Intn(2) == 0 {
			got := a.AddWhole(data, compress.SubBlockSize)
			if got != g {
				t.Fatalf("AddWhole returned group %d, want %d", got, g)
			}
			want = append(want, comp.FitsWithin(data, compress.SubBlockSize))
		} else {
			chunk := compress.CachelineSize * cf
			got := a.AddChunked(data, chunk, compress.CachelineSize)
			if got != g {
				t.Fatalf("AddChunked returned group %d, want %d", got, g)
			}
			fits := true
			for off := 0; off < len(data); off += chunk {
				if !comp.FitsWithin(data[off:off+chunk], compress.CachelineSize) {
					fits = false
					break
				}
			}
			want = append(want, fits)
		}
	}
	return want
}

// TestArenaMatchesSerialReference pins the determinism contract: for any
// worker count, Run's per-group verdicts equal the serial FitsWithin
// reference.
func TestArenaMatchesSerialReference(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			comp := compress.New(true)
			a := New(comp, workers)
			rng := rand.New(rand.NewSource(42))
			for iter := 0; iter < 200; iter++ {
				want := testBatch(t, a, comp, rng)
				a.Run()
				for g, w := range want {
					if got := a.Fits(g); got != w {
						t.Fatalf("iter %d group %d: Fits=%v, serial reference=%v", iter, g, got, w)
					}
				}
			}
		})
	}
}

// TestArenaReuseIsAllocationFree checks that steady-state batches reuse the
// arena's task and result storage.
func TestArenaReuseIsAllocationFree(t *testing.T) {
	comp := compress.New(true)
	a := New(comp, 1) // serial path: fully deterministic alloc accounting
	data := make([]byte, 4*compress.SubBlockSize)
	for i := range data {
		data[i] = byte(i * 131)
	}
	// Warm up storage.
	a.Begin()
	for g := 0; g < 16; g++ {
		a.AddChunked(data, 256, compress.CachelineSize)
	}
	a.Run()
	allocs := testing.AllocsPerRun(100, func() {
		a.Begin()
		for g := 0; g < 16; g++ {
			a.AddChunked(data, 256, compress.CachelineSize)
		}
		a.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena batch allocates %v times per run, want 0", allocs)
	}
}

// TestDefaultWorkers checks the process-default plumbing.
func TestDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers=%d after SetDefaultWorkers(3)", got)
	}
	if a := New(compress.New(true), 0); a.Workers() != 3 {
		t.Fatalf("New(comp, 0).Workers()=%d, want default 3", a.Workers())
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers=%d after reset, want GOMAXPROCS", got)
	}
}

// TestEmptyBatch ensures Run on an empty batch is a no-op.
func TestEmptyBatch(t *testing.T) {
	a := New(compress.New(false), 4)
	a.Begin()
	a.Run()
	a.Begin()
	g := a.AddWhole(make([]byte, compress.SubBlockSize), 1)
	h := a.AddWhole(make([]byte, compress.SubBlockSize), 0)
	a.Run()
	if !a.Fits(g) {
		t.Fatal("256 zero bytes fit a 1-byte budget (BDI zeros encoding)")
	}
	if a.Fits(h) {
		t.Fatal("nothing fits a 0-byte budget")
	}
}
