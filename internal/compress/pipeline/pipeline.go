// Package pipeline provides a parallel fit-check arena for sub-block
// compression trials. Baryon's hot path is dominated by "does this range
// compress into its budget?" questions — the per-chunk checks behind
// cacheline-aligned RangeFits, write-hit recompression and compressed
// writeback (paper Sections III-B/III-E). Each check is a pure function of
// its input bytes, so a batch of them can be fanned across a fixed pool of
// helper goroutines and reassembled index-slotted with a result that is
// byte-identical to evaluating the batch serially.
//
// Determinism contract:
//
//   - Every task is a pure predicate (Compressor.FitsWithin) over bytes the
//     submitter owns; workers never write to shared simulator state.
//   - Results land in per-group slots keyed by the Add order, so assembly
//     order cannot depend on goroutine scheduling.
//   - A group's verdict is the AND of its chunk verdicts, which is
//     schedule-independent even with the early-abandon optimisation: once
//     one chunk of a group fails, remaining chunks may be skipped, but the
//     group verdict is already pinned to "does not fit".
//
// The helper pool is process-global and lazily started: controllers are
// created per run (benchmarks create thousands), so per-arena goroutines
// would leak. Arenas themselves are per-controller and reuse their task and
// result storage, so steady-state batches allocate nothing. Helper
// recruitment is non-blocking: if all helpers are busy (e.g. many
// experiment workers each running their own arena), the submitter simply
// drains its own batch serially — parallelism degrades, correctness and
// output never change.
package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"

	"baryon/internal/compress"
)

// defaultWorkers is the process-wide worker count used by arenas created
// with workers <= 0. Zero means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the worker count for arenas that do not pin one
// explicitly. n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the effective default worker count.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// task is one chunk-fit predicate: does data compress into budget bytes?
type task struct {
	data   []byte
	budget int
	group  int32
}

// Arena batches fit checks for one controller. It is not safe for
// concurrent use by multiple submitters; one controller owns one arena.
// The zero value is not usable — construct with New.
type Arena struct {
	comp    *compress.Compressor
	workers int

	tasks  []task
	fail   []atomic.Bool // per-group "some chunk did not fit"
	groups int

	next atomic.Int64
	wg   sync.WaitGroup
}

// New returns an arena evaluating fit checks with comp. workers <= 0 uses
// the process default. workers == 1 makes Run a purely serial inline loop
// (no goroutines, no atomics on the pickup path).
//
// comp is shared with helper goroutines during Run; that is safe because
// FitsWithin touches only the stateless algorithm implementations and the
// WithCPack flag, never the compressor's scratch buffer.
func New(comp *compress.Compressor, workers int) *Arena {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Arena{comp: comp, workers: workers}
}

// Workers returns the arena's worker count (including the submitter).
func (a *Arena) Workers() int { return a.workers }

// Begin resets the arena for a new batch, reusing prior storage.
func (a *Arena) Begin() {
	a.tasks = a.tasks[:0]
	a.groups = 0
}

// AddWhole queues a single whole-range check: does data compress into
// budget bytes? It returns the group handle for Fits.
func (a *Arena) AddWhole(data []byte, budget int) int {
	g := a.groups
	a.groups++
	a.tasks = append(a.tasks, task{data: data, budget: budget, group: int32(g)})
	return g
}

// AddChunked queues a cacheline-aligned range check: every chunkBytes-sized
// piece of data must independently compress into budget bytes (Fig. 7's
// DDRx-burst decodability rule). It returns the group handle for Fits.
func (a *Arena) AddChunked(data []byte, chunkBytes, budget int) int {
	g := a.groups
	a.groups++
	for off := 0; off < len(data); off += chunkBytes {
		end := off + chunkBytes
		if end > len(data) {
			end = len(data)
		}
		a.tasks = append(a.tasks, task{data: data[off:end], budget: budget, group: int32(g)})
	}
	return g
}

// Run evaluates every queued check. After Run, Fits reports each group's
// verdict. The result is identical for any worker count.
func (a *Arena) Run() {
	for len(a.fail) < a.groups {
		a.fail = append(a.fail, atomic.Bool{})
	}
	for i := 0; i < a.groups; i++ {
		a.fail[i].Store(false)
	}
	n := len(a.tasks)
	if n == 0 {
		return
	}
	helpers := a.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	if helpers <= 0 || n < minParallelTasks {
		a.drainSerial()
		return
	}
	a.next.Store(0)
	reqs := poolReqs()
	for i := 0; i < helpers; i++ {
		a.wg.Add(1)
		select {
		case reqs <- a:
		default:
			// Pool saturated; the submitter covers the remaining work.
			a.wg.Done()
		}
	}
	a.drain()
	a.wg.Wait()
}

// minParallelTasks is the batch size below which helper handoff costs more
// than it saves and Run stays inline.
const minParallelTasks = 3

// Fits reports whether group g's range fits its budget. Valid after Run
// until the next Begin.
func (a *Arena) Fits(g int) bool { return !a.fail[g].Load() }

// drainSerial evaluates tasks in queue order, skipping the rest of a group
// once it has failed — the exact early-exit shape of the serial code paths.
func (a *Arena) drainSerial() {
	for i := range a.tasks {
		t := &a.tasks[i]
		if a.fail[t.group].Load() {
			continue
		}
		if !a.comp.FitsWithin(t.data, t.budget) {
			a.fail[t.group].Store(true)
		}
	}
}

// drain pulls tasks via the shared atomic cursor until the batch is empty.
// Called by the submitter and by recruited helpers.
func (a *Arena) drain() {
	for {
		i := int(a.next.Add(1)) - 1
		if i >= len(a.tasks) {
			return
		}
		t := &a.tasks[i]
		if a.fail[t.group].Load() {
			continue // group already failed; skipping cannot change the AND
		}
		if !a.comp.FitsWithin(t.data, t.budget) {
			a.fail[t.group].Store(true)
		}
	}
}

// pool is the process-global helper pool: GOMAXPROCS-1 goroutines started
// on first parallel Run, shared by every arena in the process.
var pool struct {
	once sync.Once
	reqs chan *Arena
}

func poolReqs() chan *Arena {
	pool.once.Do(func() {
		n := runtime.GOMAXPROCS(0) - 1
		if n < 1 {
			n = 1
		}
		pool.reqs = make(chan *Arena)
		for i := 0; i < n; i++ {
			go func() {
				for a := range pool.reqs {
					a.drain()
					a.wg.Done()
				}
			}()
		}
	})
	return pool.reqs
}
