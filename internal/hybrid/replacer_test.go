package hybrid

import (
	"testing"

	"baryon/internal/sim"
)

// randomSet builds a set of n ways with pseudo-random validity and ranks.
func randomSet(rng *sim.RNG, n int) []WayMeta {
	set := make([]WayMeta, n)
	for i := range set {
		set[i] = WayMeta{
			Key:      uint64(rng.Intn(1000)),
			Valid:    rng.Intn(4) != 0,
			LastUse:  uint64(rng.Intn(100)),
			AllocSeq: uint64(rng.Intn(100)),
		}
	}
	return set
}

// TestVictimWithinSet is the basic property every policy must satisfy: for
// any non-empty set the victim index is in range.
func TestVictimWithinSet(t *testing.T) {
	policies := []Replacer{LRU{}, FIFO{}, NewRandom(7), TwoLevelBlock{}}
	rng := sim.NewRNG(42)
	for _, p := range policies {
		for n := 1; n <= 8; n++ {
			for trial := 0; trial < 200; trial++ {
				set := randomSet(rng, n)
				v := p.Victim(set)
				if v < 0 || v >= n {
					t.Fatalf("%s: victim %d out of range for %d-way set", p.Name(), v, n)
				}
			}
		}
	}
}

// TestLRUPicksOldest pins LRU semantics: first invalid way wins, otherwise
// the smallest LastUse with earliest-way tie-breaking.
func TestLRUPicksOldest(t *testing.T) {
	set := []WayMeta{
		{Valid: true, LastUse: 5},
		{Valid: true, LastUse: 2},
		{Valid: true, LastUse: 9},
		{Valid: true, LastUse: 2},
	}
	if v := (LRU{}).Victim(set); v != 1 {
		t.Fatalf("LRU victim = %d, want 1 (smallest LastUse, earliest tie)", v)
	}
	set[2].Valid = false
	if v := (LRU{}).Victim(set); v != 2 {
		t.Fatalf("LRU victim = %d, want invalid way 2", v)
	}
}

// TestFIFOPicksOldestAlloc pins FIFO semantics on AllocSeq.
func TestFIFOPicksOldestAlloc(t *testing.T) {
	set := []WayMeta{
		{Valid: true, AllocSeq: 30},
		{Valid: true, AllocSeq: 10},
		{Valid: true, AllocSeq: 20},
	}
	if v := (FIFO{}).Victim(set); v != 1 {
		t.Fatalf("FIFO victim = %d, want 1", v)
	}
}

// TestTwoLevelBlockMatchesStageOrder pins the stage tag array's historical
// victim order (Fig. 13(a) behaviour): invalid ways are found scanning from
// way 1, so an all-invalid set yields way 1, and way 0's staleness is only
// caught by the LastUse comparison.
func TestTwoLevelBlockMatchesStageOrder(t *testing.T) {
	// reference reimplementation of the pre-kit stageLRUWay
	ref := func(set []WayMeta) int {
		lru := 0
		for w := 1; w < len(set); w++ {
			if !set[w].Valid {
				return w
			}
			if set[w].LastUse < set[lru].LastUse {
				lru = w
			}
		}
		return lru
	}
	rng := sim.NewRNG(99)
	for trial := 0; trial < 2000; trial++ {
		set := randomSet(rng, 4)
		if got, want := (TwoLevelBlock{}).Victim(set), ref(set); got != want {
			t.Fatalf("TwoLevelBlock victim = %d, want %d for %+v", got, want, set)
		}
	}
	empty := make([]WayMeta, 4)
	if v := (TwoLevelBlock{}).Victim(empty); v != 1 {
		t.Fatalf("all-invalid set: victim = %d, want 1 (scan starts at way 1)", v)
	}
}

// TestRandomDeterministic pins that the random policy is seeded (two
// replacers with the same seed produce the same victim stream) and prefers
// invalid ways in way order.
func TestRandomDeterministic(t *testing.T) {
	a, b := NewRandom(5), NewRandom(5)
	set := []WayMeta{{Valid: true}, {Valid: true}, {Valid: true}, {Valid: true}}
	for i := 0; i < 100; i++ {
		if va, vb := a.Victim(set), b.Victim(set); va != vb {
			t.Fatalf("same-seed Random diverged at step %d: %d vs %d", i, va, vb)
		}
	}
	set[2].Valid = false
	set[3].Valid = false
	if v := a.Victim(set); v != 2 {
		t.Fatalf("Random victim = %d, want first invalid way 2", v)
	}
}

// TestSlotFIFO pins the sub-block half of the two-level policy: the pointer
// skips invalid slots and always advances past the victim.
func TestSlotFIFO(t *testing.T) {
	valid := [8]bool{false, false, true, true, false, true, false, false}
	slot, next := SlotFIFO(0, 8, func(i int) bool { return valid[i] })
	if slot != 2 || next != 3 {
		t.Fatalf("SlotFIFO(0) = (%d, %d), want (2, 3)", slot, next)
	}
	slot, next = SlotFIFO(6, 8, func(i int) bool { return valid[i] })
	if slot != 2 || next != 3 {
		t.Fatalf("SlotFIFO(6) = (%d, %d), want wrap to (2, 3)", slot, next)
	}
	// No valid slot: the pointer itself is the victim after a full scan.
	slot, next = SlotFIFO(5, 8, func(i int) bool { return false })
	if slot != 5 || next != 6 {
		t.Fatalf("SlotFIFO all-invalid = (%d, %d), want (5, 6)", slot, next)
	}
}

// TestReplacerByName pins the DesignSpec policy-name mapping.
func TestReplacerByName(t *testing.T) {
	for name, want := range map[string]string{
		"": "lru", "lru": "lru", "fifo": "fifo",
		"random": "random", "two-level": "two-level",
	} {
		r, ok := ReplacerByName(name, 1)
		if !ok {
			t.Fatalf("ReplacerByName(%q) not found", name)
		}
		if r.Name() != want {
			t.Fatalf("ReplacerByName(%q).Name() = %q, want %q", name, r.Name(), want)
		}
	}
	if _, ok := ReplacerByName("clock", 1); ok {
		t.Fatal("ReplacerByName accepted unknown policy")
	}
}

// TestDirVictimAndLookup exercises the directory with each policy: Lookup
// finds what was installed, Victim stays in range, and evicting the victim
// keeps the set consistent.
func TestDirVictimAndLookup(t *testing.T) {
	for _, p := range []Replacer{LRU{}, FIFO{}, NewRandom(3), TwoLevelBlock{}} {
		d := NewDirSets[int](8, 4)
		seq := uint64(0)
		rng := sim.NewRNG(11)
		for i := 0; i < 500; i++ {
			key := uint64(rng.Intn(64))
			si := d.SetIndex(key)
			w := d.Lookup(si, key)
			if w < 0 {
				w = d.Victim(si, p)
				if w < 0 || w >= d.Assoc() {
					t.Fatalf("%s: victim %d out of range", p.Name(), w)
				}
				m, _ := d.Way(si, w)
				*m = WayMeta{Key: key, Valid: true, AllocSeq: seq}
			}
			m, _ := d.Way(si, w)
			if !m.Valid || m.Key != key {
				t.Fatalf("%s: way (%d,%d) holds key %d valid=%v, want %d", p.Name(), si, w, m.Key, m.Valid, key)
			}
			m.LastUse = seq
			seq++
			if again := d.Lookup(si, key); again != w {
				t.Fatalf("%s: Lookup after install = %d, want %d", p.Name(), again, w)
			}
		}
	}
}
