package hybrid

// This file is the first layer of the shared controller kit: a generic
// set-associative tag directory. Every controller in this repository — the
// Baryon core's cache/flat area and each baseline's own organisation — is a
// directory of (key, payload) ways grouped into sets, differing only in
// geometry, payload type and replacement policy. The directory keeps the
// replacement-relevant state (WayMeta) separate from the controller-specific
// payload so that policies can be written once, against WayMeta alone, and
// shared by every design (see replacer.go).

// WayMeta is the design-independent state of one directory way: the tag key,
// a valid bit, and the recency/age ranks replacement policies order by.
type WayMeta struct {
	// Key tags the way: a block ID, super-block ID or compression-run ID,
	// depending on the controller's indexing granularity.
	Key uint64
	// Valid marks the way as holding live data.
	Valid bool
	// LastUse is the owner's sequence number at the most recent touch
	// (LRU rank).
	LastUse uint64
	// AllocSeq is the owner's sequence number at allocation (FIFO rank,
	// used by the fully-associative configurations).
	AllocSeq uint64
}

// Dir is a set-associative tag directory with payload type P. Meta and
// payload are kept in parallel flat arrays (set-major) so a set's ways are
// contiguous in memory and policy code can work on a plain []WayMeta slice
// without per-call allocation.
type Dir[P any] struct {
	meta    []WayMeta
	payload []P
	nsets   uint64
	assoc   int
}

// NewDir builds a directory of `frames` total ways grouped into sets of
// `assoc`; a capacity smaller than one set still yields one set.
func NewDir[P any](frames uint64, assoc int) *Dir[P] {
	nsets := frames / uint64(assoc)
	if nsets == 0 {
		nsets = 1
	}
	return NewDirSets[P](nsets, assoc)
}

// NewDirSets builds a directory with an explicit (sets, ways) shape. A
// fully-associative directory is the nsets == 1 special case.
func NewDirSets[P any](nsets uint64, assoc int) *Dir[P] {
	return &Dir[P]{
		meta:    make([]WayMeta, nsets*uint64(assoc)),
		payload: make([]P, nsets*uint64(assoc)),
		nsets:   nsets,
		assoc:   assoc,
	}
}

// Sets returns the number of sets.
func (d *Dir[P]) Sets() uint64 { return d.nsets }

// Assoc returns the ways per set.
func (d *Dir[P]) Assoc() int { return d.assoc }

// SetIndex maps a key to its set.
func (d *Dir[P]) SetIndex(key uint64) int { return int(key % d.nsets) }

// SetMeta returns the metadata slice of one set, in way order. The slice
// aliases the directory; mutations through it are mutations of the
// directory.
func (d *Dir[P]) SetMeta(si int) []WayMeta {
	base := si * d.assoc
	return d.meta[base : base+d.assoc]
}

// Meta returns the metadata of way w of set si.
func (d *Dir[P]) Meta(si, w int) *WayMeta { return &d.meta[si*d.assoc+w] }

// Payload returns the payload of way w of set si.
func (d *Dir[P]) Payload(si, w int) *P { return &d.payload[si*d.assoc+w] }

// Way returns both halves of way w of set si.
func (d *Dir[P]) Way(si, w int) (*WayMeta, *P) {
	i := si*d.assoc + w
	return &d.meta[i], &d.payload[i]
}

// Lookup scans set si in way order and returns the first valid way tagged
// with key, or -1.
func (d *Dir[P]) Lookup(si int, key uint64) int {
	base := si * d.assoc
	for w := 0; w < d.assoc; w++ {
		m := &d.meta[base+w]
		if m.Valid && m.Key == key {
			return w
		}
	}
	return -1
}

// Victim asks the replacement policy for set si's victim way.
func (d *Dir[P]) Victim(si int, r Replacer) int { return r.Victim(d.SetMeta(si)) }
