package hybrid

import (
	"baryon/internal/compress"
	"baryon/internal/compress/pipeline"
	"baryon/internal/fault"
	"baryon/internal/mem"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// Engine is the shared migration/writeback engine of the controller kit: it
// owns the two memory devices of the hybrid system and issues all fast/slow
// traffic on behalf of a controller, with the instrumentation middleware —
// the per-design "lat.fastHit"/"lat.slowPath" read-latency histograms, the
// writeback counter and the request-lifecycle tracer hooks — attached once
// here instead of being re-implemented by every controller.
//
// Demand reads go through FastRead/SlowRead (critical path, returns the
// completion cycle); fills, writebacks and migrations go through the
// background methods, which model traffic that drains into idle bus cycles
// (see mem.Device.AccessBackground).
type Engine struct {
	fast, slow *mem.Device
	stats      *sim.Stats

	latFast, latSlow *sim.Histogram
	writebacks       *sim.Counter
	tracer           *obs.Tracer

	// Fault-degradation path (EnableFaults). faultsOn keeps the fault-free
	// hot path on a single branch; with it false the engine is
	// bit-identical to a build without fault support.
	faultsOn     bool
	retryPenalty uint64
	remapPenalty uint64
	latRetry     map[*mem.Device]*sim.Histogram

	// arena batches compression fit checks across helper goroutines
	// (InitCompression). Nil when the controller does no compression.
	arena *pipeline.Arena
}

// NewEngine builds the engine and its two devices, registering device
// counters on stats (fast first, then slow, matching every controller's
// historical registration order).
func NewEngine(fastCfg, slowCfg mem.Config, stats *sim.Stats) *Engine {
	return &Engine{
		fast:  mem.NewDevice(fastCfg, stats),
		slow:  mem.NewDevice(slowCfg, stats),
		stats: stats,
	}
}

// EnableFaults attaches seeded fault injectors to the devices that have a
// fault source configured and arms the engine's degradation path: demand
// reads whose ECC outcome is Corrected are retried once (injection
// suppressed) with a timing penalty; Uncorrectable reads quarantine the
// affected lines in the injector (the line-remap-to-spare of a real
// controller) and refetch from the spare. All outcomes land in the
// "<device>.fault.*" counters and the "<device>.fault.lat.retry"
// histograms. A no-op when fc describes no fault source.
func (e *Engine) EnableFaults(fc fault.Config, seed uint64) {
	if !fc.Enabled() {
		return
	}
	e.faultsOn = true
	e.retryPenalty = fc.RetryPenaltyCycles()
	e.remapPenalty = fc.RemapPenaltyCycles()
	e.latRetry = make(map[*mem.Device]*sim.Histogram, 2)
	attach := func(d *mem.Device, p fault.Params, salt uint64) {
		if !p.Enabled() {
			return
		}
		scope := e.stats.Scope(d.Config().Name)
		d.SetFaults(fault.NewInjector(p, fc.CorrectBits(), seed^fc.Seed^salt, scope))
		e.latRetry[d] = scope.Histogram("fault.lat.retry")
	}
	attach(e.fast, fc.Fast, 0xFA57FA57)
	attach(e.slow, fc.Slow, 0x510A510A)
}

// FaultsEnabled reports whether the degradation path is armed.
func (e *Engine) FaultsEnabled() bool { return e.faultsOn }

// InitCompression attaches a fit-check arena evaluating compression trials
// with comp across workers goroutines (0 = process default, 1 = serial) and
// returns it. Part of the kit so every compressing controller — Baryon and
// the compressed baselines alike — shares the same parallel pipeline.
func (e *Engine) InitCompression(comp *compress.Compressor, workers int) *pipeline.Arena {
	e.arena = pipeline.New(comp, workers)
	return e.arena
}

// CompressArena returns the arena attached by InitCompression, or nil.
func (e *Engine) CompressArena() *pipeline.Arena { return e.arena }

// demandRead issues one demand read and applies the ECC degradation path to
// its outcome.
func (e *Engine) demandRead(d *mem.Device, issue, addr, size uint64) uint64 {
	done := d.Access(issue, addr, size, false)
	if !e.faultsOn {
		return done
	}
	switch d.TakeFault() {
	case fault.Corrected:
		// ECC caught flips within budget: the controller re-reads the line
		// and pays the correction pipeline's penalty.
		d.Faults().CountRetry()
		done = d.AccessClean(done, addr, size, false) + e.retryPenalty
		e.latRetry[d].Observe(done - issue)
		if e.tracer != nil {
			e.tracer.Instant("fault", "corrected", issue)
		}
	case fault.Uncorrectable:
		// Beyond the ECC budget: quarantine the lines (remap to spares) so
		// they stop faulting, then refetch from the spare. Without this the
		// simulation would silently serve corrupted data.
		d.Faults().Quarantine(addr, size)
		done = d.AccessClean(done+e.remapPenalty, addr, size, false)
		e.latRetry[d].Observe(done - issue)
		if e.tracer != nil {
			e.tracer.Instant("fault", "remap", issue)
		}
	}
	return done
}

// InstrumentLatency registers the kit's read-latency histograms under the
// controller's scope: "lat.fastHit" for reads served by the fast tier and
// "lat.slowPath" for reads that went to slow memory. The histograms are
// returned for controllers that observe them directly.
func (e *Engine) InstrumentLatency(scope *sim.Stats) (latFast, latSlow *sim.Histogram) {
	e.latFast = scope.Histogram("lat.fastHit")
	e.latSlow = scope.Histogram("lat.slowPath")
	return e.latFast, e.latSlow
}

// CountWritebacks points the engine's Writeback method at the controller's
// writeback counter (each controller registers it among its own counters so
// counter order is design-controlled).
func (e *Engine) CountWritebacks(c *sim.Counter) { e.writebacks = c }

// Fast returns the fast-memory device.
func (e *Engine) Fast() *mem.Device { return e.fast }

// Slow returns the slow-memory device.
func (e *Engine) Slow() *mem.Device { return e.slow }

// SetTracer attaches a request-lifecycle tracer to the engine and both
// devices. Nil detaches.
func (e *Engine) SetTracer(t *obs.Tracer) {
	e.tracer = t
	e.fast.SetTracer(t)
	e.slow.SetTracer(t)
}

// Tracer returns the attached tracer (nil when tracing is off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Decision records the controller's access-flow case for the current
// sampled request as an instant event (no-op when tracing is off).
func (e *Engine) Decision(now uint64, cat string) {
	if e.tracer != nil {
		e.tracer.Instant("decision", cat, now)
	}
}

// LatFast records the end-to-end latency of a read served by the fast tier.
func (e *Engine) LatFast(now, done uint64) { e.latFast.Observe(done - now) }

// LatSlow records the end-to-end latency of a read served by the slow tier.
func (e *Engine) LatSlow(now, done uint64) { e.latSlow.Observe(done - now) }

// ObserveFast records a fast-tier read: latency histogram plus the decision
// instant (cat names the controller's case, e.g. "hit", "subHit").
func (e *Engine) ObserveFast(now, done uint64, cat string) {
	e.latFast.Observe(done - now)
	e.Decision(now, cat)
}

// ObserveSlow records a slow-tier read.
func (e *Engine) ObserveSlow(now, done uint64, cat string) {
	e.latSlow.Observe(done - now)
	e.Decision(now, cat)
}

// FastRead is a demand read from fast memory issued at cycle issue.
func (e *Engine) FastRead(issue, addr, size uint64) uint64 {
	return e.demandRead(e.fast, issue, addr, size)
}

// SlowRead is a demand read from slow memory issued at cycle issue.
func (e *Engine) SlowRead(issue, addr, size uint64) uint64 {
	return e.demandRead(e.slow, issue, addr, size)
}

// FillFast writes size bytes into fast memory in the background (fills,
// commits, posted write hits).
func (e *Engine) FillFast(now, addr, size uint64) uint64 {
	return e.fast.AccessBackground(now, addr, size, true)
}

// ReadFastBG reads fast memory off the critical path (stage reads during
// commits, probe traffic).
func (e *Engine) ReadFastBG(now, addr, size uint64) uint64 {
	return e.fast.AccessBackground(now, addr, size, false)
}

// FetchSlow reads size bytes from slow memory in the background (block and
// range fills).
func (e *Engine) FetchSlow(now, addr, size uint64) uint64 {
	return e.slow.AccessBackground(now, addr, size, false)
}

// WriteSlowBG writes slow memory in the background without counting a
// writeback (posted demand writes, partial-line updates).
func (e *Engine) WriteSlowBG(now, addr, size uint64) uint64 {
	return e.slow.AccessBackground(now, addr, size, true)
}

// Writeback writes a dirty victim's bytes to slow memory in the background
// and counts one writeback (the per-design "writebacks" counter).
func (e *Engine) Writeback(now, addr, size uint64) uint64 {
	e.writebacks.Inc()
	return e.slow.AccessBackground(now, addr, size, true)
}
