package hybrid

import (
	"fmt"

	"baryon/internal/compress"
	"baryon/internal/compress/pipeline"
	"baryon/internal/fault"
	"baryon/internal/mem"
	"baryon/internal/obs"
	"baryon/internal/sim"
)

// Tier is one device in the engine's ordered tier list. Tier 0 is the near
// (fast) tier; tiers 1..n-1 partition the far address space in order: each
// intermediate far tier owns a window of Bytes() canonical far addresses and
// the last tier is the catch-all for everything beyond. With exactly two
// tiers the far space maps to tier 1 unchanged, which is what keeps the
// historical two-tier behaviour bit-identical.
type Tier struct {
	name  string
	dev   *mem.Device
	bytes uint64 // far-window capacity; 0 on tier 0 and on the catch-all
	base  uint64 // first canonical far address this tier owns (tiers >= 1)

	// lat observes demand-read latency for tiers beyond the classic two
	// ("lat.tier<i>", registered by InstrumentLatency only when the engine
	// has more than two tiers).
	lat *sim.Histogram
}

// Name returns the tier's device name.
func (t *Tier) Name() string { return t.name }

// Device returns the tier's memory device.
func (t *Tier) Device() *mem.Device { return t.dev }

// Bytes returns the tier's far-window capacity (0 = catch-all or near tier).
func (t *Tier) Bytes() uint64 { return t.bytes }

// TierSpec describes one tier when building an engine: the device config
// plus, for intermediate far tiers, the capacity window it serves. Bytes is
// ignored on tier 0 and on the last tier (the catch-all).
type TierSpec struct {
	Cfg   mem.Config
	Bytes uint64
}

// Engine is the shared migration/writeback engine of the controller kit: it
// owns the ordered memory-tier list of the hybrid system and issues all
// device traffic on behalf of a controller, with the instrumentation
// middleware — the per-design "lat.fastHit"/"lat.slowPath" read-latency
// histograms, the writeback counter and the request-lifecycle tracer hooks —
// attached once here instead of being re-implemented by every controller.
//
// Controllers address the far space canonically; the engine routes each far
// access to the owning tier and rebases it into that device's local address
// space. Fast()/Slow() and the *Fast/*Slow traffic methods are the two-tier
// API every controller was written against: they alias tiers 0 and 1 (with
// far routing underneath), so a controller needs no changes to run on a
// three-tier topology.
//
// Demand reads go through FastRead/SlowRead (critical path, returns the
// completion cycle); fills, writebacks and migrations go through the
// background methods, which model traffic that drains into idle bus cycles
// (see mem.Device.AccessBackground).
type Engine struct {
	tiers []*Tier
	stats *sim.Stats

	latFast, latSlow *sim.Histogram
	writebacks       *sim.Counter
	tracer           *obs.Tracer

	// Fault-degradation path (EnableFaults). faultsOn keeps the fault-free
	// hot path on a single branch; with it false the engine is
	// bit-identical to a build without fault support.
	faultsOn     bool
	retryPenalty uint64
	remapPenalty uint64
	latRetry     map[*mem.Device]*sim.Histogram

	// arena batches compression fit checks across helper goroutines
	// (InitCompression). Nil when the controller does no compression.
	arena *pipeline.Arena
}

// NewEngine builds a classic two-tier engine, registering device counters on
// stats (fast first, then slow, matching every controller's historical
// registration order). It is NewEngineTiers with a two-entry list.
func NewEngine(fastCfg, slowCfg mem.Config, stats *sim.Stats) *Engine {
	return NewEngineTiers([]TierSpec{{Cfg: fastCfg}, {Cfg: slowCfg}}, stats)
}

// DefaultTierSpecs returns the classic Table I two-tier topology (DDR4 over
// NVM) every baseline historically hard-coded.
func DefaultTierSpecs() []TierSpec {
	return []TierSpec{{Cfg: mem.DDR4Config()}, {Cfg: mem.NVMConfig()}}
}

// NewEngineFrom builds the engine over tiers, falling back to
// DefaultTierSpecs for an empty list — the constructor baselines use so a
// nil tier argument keeps their historical devices.
func NewEngineFrom(tiers []TierSpec, stats *sim.Stats) *Engine {
	if len(tiers) == 0 {
		tiers = DefaultTierSpecs()
	}
	return NewEngineTiers(tiers, stats)
}

// NewEngineTiers builds the engine over an ordered tier list. Devices are
// constructed (and their counters registered) in tier order. At least two
// tiers are required; intermediate far tiers (1..n-2) must declare a Bytes
// window. Both are programming errors at this layer — config.TierSpecs
// validates user input before it gets here.
func NewEngineTiers(specs []TierSpec, stats *sim.Stats) *Engine {
	if len(specs) < 2 {
		panic(fmt.Sprintf("hybrid: engine needs at least 2 tiers, got %d", len(specs)))
	}
	e := &Engine{stats: stats, tiers: make([]*Tier, 0, len(specs))}
	var base uint64
	for i, spec := range specs {
		t := &Tier{
			name:  spec.Cfg.Name,
			dev:   mem.NewDevice(spec.Cfg, stats),
			bytes: spec.Bytes,
		}
		if i >= 1 {
			t.base = base
			if i < len(specs)-1 {
				if spec.Bytes == 0 {
					panic(fmt.Sprintf("hybrid: intermediate far tier %d (%s) needs a Bytes window", i, t.name))
				}
				base += spec.Bytes
			}
		}
		e.tiers = append(e.tiers, t)
	}
	return e
}

// Tiers returns the ordered tier list.
func (e *Engine) Tiers() []*Tier { return e.tiers }

// farFor routes a canonical far address to its owning tier and the
// device-local address. With two tiers this is the identity onto tier 1.
func (e *Engine) farFor(addr uint64) (*Tier, uint64) {
	last := len(e.tiers) - 1
	for _, t := range e.tiers[1:last] {
		if addr < t.base+t.bytes {
			return t, addr - t.base
		}
	}
	t := e.tiers[last]
	return t, addr - t.base
}

// tierFaultSalt keeps each tier's fault stream independent. Tiers 0 and 1
// keep their historical salts (part of the determinism contract pinned by
// the fault goldens); higher tiers get fixed derived constants.
func tierFaultSalt(i int) uint64 {
	switch i {
	case 0:
		return 0xFA57FA57
	case 1:
		return 0x510A510A
	}
	return 0x71E20000 + uint64(i)
}

// EnableFaults attaches seeded fault injectors to the tiers that have a
// fault source configured and arms the engine's degradation path: demand
// reads whose ECC outcome is Corrected are retried once (injection
// suppressed) with a timing penalty; Uncorrectable reads quarantine the
// affected lines in the injector (the line-remap-to-spare of a real
// controller) and refetch from the spare. All outcomes land in the
// "<device>.fault.*" counters and the "<device>.fault.lat.retry"
// histograms. A no-op when fc describes no fault source.
func (e *Engine) EnableFaults(fc fault.Config, seed uint64) {
	if !fc.Enabled() {
		return
	}
	e.faultsOn = true
	e.retryPenalty = fc.RetryPenaltyCycles()
	e.remapPenalty = fc.RemapPenaltyCycles()
	e.latRetry = make(map[*mem.Device]*sim.Histogram, len(e.tiers))
	for i, t := range e.tiers {
		p := fc.ForTier(i)
		if !p.Enabled() {
			continue
		}
		scope := e.stats.Scope(t.dev.Config().Name)
		t.dev.SetFaults(fault.NewInjector(p, fc.CorrectBits(), seed^fc.Seed^tierFaultSalt(i), scope))
		e.latRetry[t.dev] = scope.Histogram("fault.lat.retry")
	}
}

// FaultsEnabled reports whether the degradation path is armed.
func (e *Engine) FaultsEnabled() bool { return e.faultsOn }

// InitCompression attaches a fit-check arena evaluating compression trials
// with comp across workers goroutines (0 = process default, 1 = serial) and
// returns it. Part of the kit so every compressing controller — Baryon and
// the compressed baselines alike — shares the same parallel pipeline.
func (e *Engine) InitCompression(comp *compress.Compressor, workers int) *pipeline.Arena {
	e.arena = pipeline.New(comp, workers)
	return e.arena
}

// CompressArena returns the arena attached by InitCompression, or nil.
func (e *Engine) CompressArena() *pipeline.Arena { return e.arena }

// SetContentProbe attaches a content probe, addressed canonically, to every
// tier device: each tier's probe re-adds its base so a CXL expander's
// compression estimator sees the bytes actually stored at the canonical
// address it serves. Only CXL devices consult the probe; on the rest the
// attach is a no-op. Nil detaches.
func (e *Engine) SetContentProbe(fn func(addr, size uint64) []byte) {
	for _, t := range e.tiers {
		if fn == nil {
			t.dev.SetContentProbe(nil)
			continue
		}
		base := t.base
		t.dev.SetContentProbe(func(addr, size uint64) []byte {
			return fn(addr+base, size)
		})
	}
}

// demandRead issues one demand read and applies the ECC degradation path to
// its outcome.
func (e *Engine) demandRead(d *mem.Device, issue, addr, size uint64) uint64 {
	done := d.Access(issue, addr, size, false)
	if !e.faultsOn {
		return done
	}
	switch d.TakeFault() {
	case fault.Corrected:
		// ECC caught flips within budget: the controller re-reads the line
		// and pays the correction pipeline's penalty.
		d.Faults().CountRetry()
		done = d.AccessClean(done, addr, size, false) + e.retryPenalty
		e.latRetry[d].Observe(done - issue)
		if e.tracer != nil {
			e.tracer.Instant("fault", "corrected", issue)
		}
	case fault.Uncorrectable:
		// Beyond the ECC budget: quarantine the lines (remap to spares) so
		// they stop faulting, then refetch from the spare. Without this the
		// simulation would silently serve corrupted data.
		d.Faults().Quarantine(addr, size)
		done = d.AccessClean(done+e.remapPenalty, addr, size, false)
		e.latRetry[d].Observe(done - issue)
		if e.tracer != nil {
			e.tracer.Instant("fault", "remap", issue)
		}
	}
	return done
}

// InstrumentLatency registers the kit's read-latency histograms under the
// controller's scope: "lat.fastHit" for reads served by the fast tier and
// "lat.slowPath" for reads that went to the far tiers. Engines with more
// than two tiers additionally register a per-tier "lat.tier<i>" breakdown
// for tiers 2..n-1 (two-tier engines register exactly the historical pair).
// The classic histograms are returned for controllers that observe them
// directly.
func (e *Engine) InstrumentLatency(scope *sim.Stats) (latFast, latSlow *sim.Histogram) {
	e.latFast = scope.Histogram("lat.fastHit")
	e.latSlow = scope.Histogram("lat.slowPath")
	for i, t := range e.tiers {
		if i >= 2 {
			t.lat = scope.Histogram(fmt.Sprintf("lat.tier%d", i))
		}
	}
	return e.latFast, e.latSlow
}

// CountWritebacks points the engine's Writeback method at the controller's
// writeback counter (each controller registers it among its own counters so
// counter order is design-controlled).
func (e *Engine) CountWritebacks(c *sim.Counter) { e.writebacks = c }

// Fast returns the near-tier (tier 0) device.
func (e *Engine) Fast() *mem.Device { return e.tiers[0].dev }

// Slow returns the first far-tier (tier 1) device. Far traffic methods
// route by address and may hit later tiers; Slow is the device handle for
// code that reports on the classic slow tier.
func (e *Engine) Slow() *mem.Device { return e.tiers[1].dev }

// SetTracer attaches a request-lifecycle tracer to the engine and every
// tier device. Nil detaches.
func (e *Engine) SetTracer(t *obs.Tracer) {
	e.tracer = t
	for _, tier := range e.tiers {
		tier.dev.SetTracer(t)
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Decision records the controller's access-flow case for the current
// sampled request as an instant event (no-op when tracing is off).
func (e *Engine) Decision(now uint64, cat string) {
	if e.tracer != nil {
		e.tracer.Instant("decision", cat, now)
	}
}

// LatFast records the end-to-end latency of a read served by the fast tier.
func (e *Engine) LatFast(now, done uint64) { e.latFast.Observe(done - now) }

// LatSlow records the end-to-end latency of a read served by the far path.
func (e *Engine) LatSlow(now, done uint64) { e.latSlow.Observe(done - now) }

// ObserveFast records a fast-tier read: latency histogram plus the decision
// instant (cat names the controller's case, e.g. "hit", "subHit").
func (e *Engine) ObserveFast(now, done uint64, cat string) {
	e.latFast.Observe(done - now)
	e.Decision(now, cat)
}

// ObserveSlow records a far-path read.
func (e *Engine) ObserveSlow(now, done uint64, cat string) {
	e.latSlow.Observe(done - now)
	e.Decision(now, cat)
}

// FastRead is a demand read from fast memory issued at cycle issue.
func (e *Engine) FastRead(issue, addr, size uint64) uint64 {
	return e.demandRead(e.tiers[0].dev, issue, addr, size)
}

// SlowRead is a demand read from the far path issued at cycle issue: the
// canonical address routes to its owning tier.
func (e *Engine) SlowRead(issue, addr, size uint64) uint64 {
	t, local := e.farFor(addr)
	done := e.demandRead(t.dev, issue, local, size)
	if t.lat != nil {
		t.lat.Observe(done - issue)
	}
	return done
}

// FillFast writes size bytes into fast memory in the background (fills,
// commits, posted write hits).
func (e *Engine) FillFast(now, addr, size uint64) uint64 {
	return e.tiers[0].dev.AccessBackground(now, addr, size, true)
}

// ReadFastBG reads fast memory off the critical path (stage reads during
// commits, probe traffic).
func (e *Engine) ReadFastBG(now, addr, size uint64) uint64 {
	return e.tiers[0].dev.AccessBackground(now, addr, size, false)
}

// FetchSlow reads size bytes from the far path in the background (block and
// range fills).
func (e *Engine) FetchSlow(now, addr, size uint64) uint64 {
	t, local := e.farFor(addr)
	return t.dev.AccessBackground(now, local, size, false)
}

// WriteSlowBG writes the far path in the background without counting a
// writeback (posted demand writes, partial-line updates).
func (e *Engine) WriteSlowBG(now, addr, size uint64) uint64 {
	t, local := e.farFor(addr)
	return t.dev.AccessBackground(now, local, size, true)
}

// Writeback writes a dirty victim's bytes to the far path in the background
// and counts one writeback (the per-design "writebacks" counter).
func (e *Engine) Writeback(now, addr, size uint64) uint64 {
	e.writebacks.Inc()
	t, local := e.farFor(addr)
	return t.dev.AccessBackground(now, local, size, true)
}
