// Package hybrid defines what every memory controller in this repository
// shares: the address geometry of the baseline hybrid memory system
// (Section III-A of the paper — 2 kB blocks, 256 B sub-blocks, 16 kB
// super-blocks, set-associative fast memory), the controller interface the
// CPU cache hierarchy drives, and the physical slow-memory backing store
// that holds canonical data bytes.
package hybrid

import "baryon/internal/sim"

// Geometry constants (Sections III-A and III-B).
const (
	CachelineSize = 64
	BlockSize     = 2048
	SubBlockSize  = 256
	SubBlocks     = BlockSize / SubBlockSize     // 8
	LinesPerSub   = SubBlockSize / CachelineSize // 4
)

// BlockID identifies a 2 kB data block in the OS-visible physical space.
type BlockID uint64

// SuperBlockID identifies a group of contiguous blocks (default 8 = 16 kB).
type SuperBlockID uint64

// BlockOf returns the block containing the physical address.
func BlockOf(addr uint64) BlockID { return BlockID(addr / BlockSize) }

// SubOf returns the sub-block index (0..7) of the address within its block.
func SubOf(addr uint64) int { return int(addr % BlockSize / SubBlockSize) }

// LineOf returns the cacheline index (0..3) within the sub-block.
func LineOf(addr uint64) int { return int(addr % SubBlockSize / CachelineSize) }

// LineAddr returns the address truncated to its cacheline.
func LineAddr(addr uint64) uint64 { return addr &^ (CachelineSize - 1) }

// SubAddr returns the base address of block b's sub-block s.
func SubAddr(b BlockID, s int) uint64 {
	return uint64(b)*BlockSize + uint64(s)*SubBlockSize
}

// Geometry carries the configurable super-block grouping (Fig. 13(b)).
type Geometry struct {
	// SuperBlockBlocks is the number of 2 kB blocks per super-block
	// (default 8, i.e. 16 kB).
	SuperBlockBlocks int
}

// DefaultGeometry returns the paper's default 8-block super-blocks.
func DefaultGeometry() Geometry { return Geometry{SuperBlockBlocks: 8} }

// SuperOf returns the super-block containing block b.
func (g Geometry) SuperOf(b BlockID) SuperBlockID {
	return SuperBlockID(uint64(b) / uint64(g.SuperBlockBlocks))
}

// BlockOffset returns b's index within its super-block (the BlkOff field).
func (g Geometry) BlockOffset(b BlockID) int {
	return int(uint64(b) % uint64(g.SuperBlockBlocks))
}

// BlockAt returns the blkOff-th block of super-block sb.
func (g Geometry) BlockAt(sb SuperBlockID, blkOff int) BlockID {
	return BlockID(uint64(sb)*uint64(g.SuperBlockBlocks) + uint64(blkOff))
}

// Result reports the outcome of one memory-controller access, consumed by
// the cache hierarchy and the statistics harness.
type Result struct {
	// Done is the cycle at which the demanded cacheline is available.
	Done uint64
	// ServedByFast is true when the demanded data came from fast memory
	// (the "fast memory serve rate" of Fig. 11).
	ServedByFast bool
	// Data is the 64 B content of the demanded cacheline (reads only).
	Data []byte
	// Prefetched lists additional cacheline addresses whose data became
	// available for free (memory-to-LLC prefetch from decompression,
	// Section III-E); the hierarchy may install them in the LLC.
	Prefetched []PrefetchedLine
}

// PrefetchedLine is one bandwidth-free extra line from decompression.
type PrefetchedLine struct {
	Addr uint64
	Data []byte
}

// Controller is a hybrid-memory controller: it owns both memory devices and
// the canonical data plane below the processor caches.
type Controller interface {
	// Access performs a 64 B read or write at physical address addr (already
	// line-aligned) starting at cycle now. For writes, data is the new line
	// content. For reads, Result.Data is the line content. Result.Data and
	// Result.Prefetched are read-only and may alias controller-owned scratch:
	// consume (or copy) them before the next Access on the same controller.
	Access(now uint64, addr uint64, write bool, data []byte) Result
	// Stats exposes the controller's counters.
	Stats() *sim.Stats
	// Name identifies the design (for reports).
	Name() string
}

// EngineProvider is implemented by controllers built on the shared
// migration/writeback Engine. It lets run setup reach the engine for
// cross-cutting concerns — fault injection, tracing — without knowing the
// concrete controller type.
type EngineProvider interface {
	Engine() *Engine
}

// DataPeeker is implemented by controllers that can expose the current
// canonical content of a line for integrity testing (reads with no timing
// or statistics side effects).
type DataPeeker interface {
	PeekLine(addr uint64) []byte
}

// InstructionSink is implemented by controllers that keep MPKI-style
// statistics and need the retired-instruction clock.
type InstructionSink interface {
	AddInstructions(n uint64)
}
