package hybrid

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGeometryHelpers(t *testing.T) {
	addr := uint64(5*BlockSize + 3*SubBlockSize + 2*CachelineSize + 17)
	if BlockOf(addr) != 5 {
		t.Fatalf("BlockOf=%d", BlockOf(addr))
	}
	if SubOf(addr) != 3 {
		t.Fatalf("SubOf=%d", SubOf(addr))
	}
	if LineOf(addr) != 2 {
		t.Fatalf("LineOf=%d", LineOf(addr))
	}
	if LineAddr(addr)%CachelineSize != 0 {
		t.Fatal("LineAddr unaligned")
	}
	if SubAddr(5, 3) != 5*BlockSize+3*SubBlockSize {
		t.Fatal("SubAddr wrong")
	}
}

func TestGeometryRoundTripQuick(t *testing.T) {
	f := func(raw uint32) bool {
		addr := uint64(raw)
		b, s, l := BlockOf(addr), SubOf(addr), LineOf(addr)
		base := uint64(b)*BlockSize + uint64(s)*SubBlockSize + uint64(l)*CachelineSize
		return base <= addr && addr < base+CachelineSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSuperBlockGeometry(t *testing.T) {
	g := DefaultGeometry()
	if g.SuperOf(7) != 0 || g.SuperOf(8) != 1 {
		t.Fatal("SuperOf wrong")
	}
	if g.BlockOffset(13) != 5 {
		t.Fatalf("BlockOffset=%d", g.BlockOffset(13))
	}
	if g.BlockAt(1, 5) != 13 {
		t.Fatalf("BlockAt=%d", g.BlockAt(1, 5))
	}
	// Round trip: BlockAt(SuperOf(b), BlockOffset(b)) == b.
	for b := BlockID(0); b < 100; b++ {
		if g.BlockAt(g.SuperOf(b), g.BlockOffset(b)) != b {
			t.Fatalf("round trip failed for block %d", b)
		}
	}
}

func TestStoreLazyFill(t *testing.T) {
	fills := 0
	s := NewStore(func(b BlockID, dst *[BlockSize]byte) {
		fills++
		for i := range dst {
			dst[i] = byte(b)
		}
	})
	if s.Touched() != 0 {
		t.Fatal("store not empty")
	}
	line := s.Line(3 * BlockSize)
	if line[0] != 3 {
		t.Fatalf("fill content wrong: %d", line[0])
	}
	s.Line(3*BlockSize + 512)
	if fills != 1 {
		t.Fatalf("block filled %d times", fills)
	}
	if s.Touched() != 1 {
		t.Fatalf("touched=%d", s.Touched())
	}
}

func TestStoreNilFillZero(t *testing.T) {
	s := NewStore(nil)
	for _, b := range s.Line(999 * 64) {
		if b != 0 {
			t.Fatal("nil-fill store not zero")
		}
	}
}

func TestStoreWriteRead(t *testing.T) {
	s := NewStore(nil)
	data := bytes.Repeat([]byte{0xAB}, 64)
	s.WriteLine(5*BlockSize+128, data)
	if !bytes.Equal(s.Line(5*BlockSize+128), data) {
		t.Fatal("line write lost")
	}
	sub := bytes.Repeat([]byte{0xCD}, SubBlockSize)
	s.WriteSub(5, 2, sub)
	if !bytes.Equal(s.Sub(5, 2), sub) {
		t.Fatal("sub write lost")
	}
	// The line write at sub 0 must be untouched by the sub-2 write.
	if !bytes.Equal(s.Line(5*BlockSize+128), data) {
		t.Fatal("unrelated write clobbered line")
	}
}

func TestStoreBytesWithinBlock(t *testing.T) {
	s := NewStore(nil)
	if got := s.Bytes(BlockSize+100, 200); len(got) != 200 {
		t.Fatalf("Bytes len=%d", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-block Bytes did not panic")
		}
	}()
	s.Bytes(BlockSize-10, 20)
}
