package hybrid

import "baryon/internal/sim"

// Replacement policies of the controller kit. A Replacer picks the victim
// way of a full (or partially invalid) set; it sees only the
// design-independent WayMeta, so the same policies serve every controller.
// All policies return an in-range way index for any non-empty set.

// Replacer selects the way to evict from a set.
type Replacer interface {
	// Victim returns the index of the way to replace. set is never empty.
	Victim(set []WayMeta) int
	// Name identifies the policy (for DesignSpec serialisation and reports).
	Name() string
}

// LRU is least-recently-used replacement: the first invalid way wins,
// otherwise the way with the strictly smallest LastUse (earliest way on
// ties). This is the policy of the Simple and Unison baselines and of
// Baryon's set-associative cache/flat area.
type LRU struct{}

// Victim implements Replacer.
func (LRU) Victim(set []WayMeta) int {
	victim := 0
	for w := range set {
		if !set[w].Valid {
			return w
		}
		if set[w].LastUse < set[victim].LastUse {
			victim = w
		}
	}
	return victim
}

// Name implements Replacer.
func (LRU) Name() string { return "lru" }

// FIFO is first-in-first-out replacement: the first invalid way wins,
// otherwise the way with the smallest AllocSeq. Baryon's fully-associative
// area replaces in allocation order (Section III-E).
type FIFO struct{}

// Victim implements Replacer.
func (FIFO) Victim(set []WayMeta) int {
	victim := 0
	for w := range set {
		if !set[w].Valid {
			return w
		}
		if set[w].AllocSeq < set[victim].AllocSeq {
			victim = w
		}
	}
	return victim
}

// Name implements Replacer.
func (FIFO) Name() string { return "fifo" }

// Random replacement fills invalid ways first (in way order) and otherwise
// evicts a uniformly random way. It is not used by any paper design; it
// exists as a DesignSpec policy knob for custom baseline variants.
type Random struct{ rng *sim.RNG }

// NewRandom builds a Random policy with its own deterministic stream.
func NewRandom(seed uint64) *Random { return &Random{rng: sim.NewRNG(seed ^ 0x5EED5EED)} }

// Victim implements Replacer.
func (r *Random) Victim(set []WayMeta) int {
	for w := range set {
		if !set[w].Valid {
			return w
		}
	}
	return r.rng.Intn(len(set))
}

// Name implements Replacer.
func (r *Random) Name() string { return "random" }

// TwoLevelBlock is the block-level half of Baryon's two-level stage
// replacement (Fig. 8): LRU over stage frames, scanning for invalid frames
// from way 1 upward. The scan deliberately starts at 1 — way 0's staleness
// is caught by the LastUse comparison instead — reproducing the stage tag
// array's historical victim order exactly; the byte-identity goldens pin
// this behaviour. The sub-block-level half is SlotFIFO below.
type TwoLevelBlock struct{}

// Victim implements Replacer.
func (TwoLevelBlock) Victim(set []WayMeta) int {
	victim := 0
	for w := 1; w < len(set); w++ {
		if !set[w].Valid {
			return w
		}
		if set[w].LastUse < set[victim].LastUse {
			victim = w
		}
	}
	return victim
}

// Name implements Replacer.
func (TwoLevelBlock) Name() string { return "two-level" }

// SlotFIFO is the sub-block-level half of the two-level policy: it rotates
// a FIFO pointer over a frame's n slots, skipping invalid slots, and
// returns the victim slot plus the advanced pointer. valid reports whether
// a slot currently holds a live range.
func SlotFIFO(fifo uint8, n int, valid func(int) bool) (int, uint8) {
	slot := int(fifo)
	for i := 0; i < n; i++ {
		if valid(slot) {
			break
		}
		slot = (slot + 1) % n
	}
	return slot, uint8((slot + 1) % n)
}

// ReplacerByName resolves a DesignSpec replacement-policy name. The empty
// name defaults to LRU. seed feeds the random policy's stream.
func ReplacerByName(name string, seed uint64) (Replacer, bool) {
	switch name {
	case "", "lru":
		return LRU{}, true
	case "fifo":
		return FIFO{}, true
	case "random":
		return NewRandom(seed), true
	case "two-level":
		return TwoLevelBlock{}, true
	}
	return nil, false
}
