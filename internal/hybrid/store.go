package hybrid

// Store is the canonical slow-memory data plane: a lazily materialised map
// from block to its 2 kB content. Controllers copy bytes out of and into the
// store as they cache, migrate, stage and write back blocks, so the store
// plus the controller's fast-memory copies always describe the current
// memory image. Blocks are materialised on first touch from a deterministic
// fill function supplied by the workload (see internal/datagen).
type Store struct {
	blocks map[BlockID]*[BlockSize]byte
	fill   func(b BlockID, dst *[BlockSize]byte)
	// slab batches block materialisation: blocks are carved from 64-block
	// chunks instead of allocated one by one, cutting first-touch
	// allocations by the chunk factor on the access hot path.
	slab     *[storeSlabBlocks][BlockSize]byte
	slabUsed int
}

const storeSlabBlocks = 64

// NewStore creates a store whose untouched blocks are produced by fill.
// A nil fill yields all-zero blocks.
func NewStore(fill func(b BlockID, dst *[BlockSize]byte)) *Store {
	return &Store{blocks: make(map[BlockID]*[BlockSize]byte, 256), fill: fill}
}

// Block returns the content of block b, materialising it if needed.
func (s *Store) Block(b BlockID) *[BlockSize]byte {
	if blk, ok := s.blocks[b]; ok {
		return blk
	}
	if s.slab == nil || s.slabUsed == storeSlabBlocks {
		s.slab = new([storeSlabBlocks][BlockSize]byte)
		s.slabUsed = 0
	}
	blk := &s.slab[s.slabUsed]
	s.slabUsed++
	if s.fill != nil {
		s.fill(b, blk)
	}
	s.blocks[b] = blk
	return blk
}

// Sub returns the 256 B content of sub-block sub of block b.
func (s *Store) Sub(b BlockID, sub int) []byte {
	blk := s.Block(b)
	return blk[sub*SubBlockSize : (sub+1)*SubBlockSize]
}

// Line returns the 64 B cacheline at addr.
func (s *Store) Line(addr uint64) []byte {
	blk := s.Block(BlockOf(addr))
	off := addr % BlockSize &^ (CachelineSize - 1)
	return blk[off : off+CachelineSize]
}

// WriteSub replaces sub-block sub of block b with data (256 B).
func (s *Store) WriteSub(b BlockID, sub int, data []byte) {
	copy(s.Sub(b, sub), data)
}

// WriteLine replaces the 64 B line at addr with data.
func (s *Store) WriteLine(addr uint64, data []byte) {
	copy(s.Line(addr), data)
}

// Bytes returns n bytes starting at addr. The span must lie within one 2 kB
// store block, which holds for every sub-block range of every geometry used
// here (controller block sizes divide 2 kB).
func (s *Store) Bytes(addr uint64, n int) []byte {
	off := addr % BlockSize
	if off+uint64(n) > BlockSize {
		panic("hybrid: Bytes spans store blocks")
	}
	blk := s.Block(BlockOf(addr))
	return blk[off : off+uint64(n)]
}

// Touched returns the number of materialised blocks (footprint tracking).
func (s *Store) Touched() int { return len(s.blocks) }
