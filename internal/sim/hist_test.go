package sim

import (
	"math"
	"testing"
)

// TestHistBucketExactBelowLinearMax pins the contract that small values get
// one exact bucket each: every latency under 32 cycles survives the
// histogram without quantisation.
func TestHistBucketExactBelowLinearMax(t *testing.T) {
	for v := uint64(0); v < histLinearMax; v++ {
		if got := histBucket(v); got != int(v) {
			t.Fatalf("histBucket(%d) = %d, want %d", v, got, v)
		}
		lo, hi := histBucketBounds(int(v))
		if lo != v || hi != v+1 {
			t.Fatalf("histBucketBounds(%d) = [%d,%d), want [%d,%d)", v, lo, hi, v, v+1)
		}
	}
}

// TestHistBucketBoundsRoundTrip checks bucket geometry consistency: every
// bucket's bounds map back to that bucket, bounds tile the value space with
// no gaps, and relative width stays within the documented 12.5%.
func TestHistBucketBoundsRoundTrip(t *testing.T) {
	var prevHi uint64
	for i := 0; i < HistBuckets; i++ {
		lo, hi := histBucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, previous ended at %d (gap/overlap)", i, lo, prevHi)
		}
		if histBucket(lo) != i {
			t.Fatalf("histBucket(lo=%d) = %d, want bucket %d", lo, histBucket(lo), i)
		}
		if histBucket(hi-1) != i {
			t.Fatalf("histBucket(hi-1=%d) = %d, want bucket %d", hi-1, histBucket(hi-1), i)
		}
		if lo >= histLinearMax {
			if rel := float64(hi-lo) / float64(lo); rel > 1.0/histSubBuckets+1e-12 {
				t.Fatalf("bucket %d [%d,%d) relative width %.4f > %.4f", i, lo, hi, rel, 1.0/histSubBuckets)
			}
		}
		prevHi = hi
	}
	if prevHi != 1<<histMaxOctave {
		t.Fatalf("buckets tile up to %d, want %d", prevHi, uint64(1)<<histMaxOctave)
	}
}

// TestHistBucketClamp checks that values at and beyond 2^histMaxOctave fold
// into the final bucket instead of indexing out of range.
func TestHistBucketClamp(t *testing.T) {
	for _, v := range []uint64{1<<histMaxOctave - 1, 1 << histMaxOctave, 1<<histMaxOctave + 1,
		1 << 50, math.MaxUint64} {
		got := histBucket(v)
		if got < 0 || got >= HistBuckets {
			t.Fatalf("histBucket(%d) = %d out of range", v, got)
		}
		if v >= 1<<histMaxOctave && got != HistBuckets-1 {
			t.Fatalf("histBucket(%d) = %d, want clamp bucket %d", v, got, HistBuckets-1)
		}
	}
	var h Histogram
	h.Observe(math.MaxUint64)
	if h.Max() != math.MaxUint64 || h.Count() != 1 {
		t.Fatalf("after Observe(MaxUint64): max=%d count=%d", h.Max(), h.Count())
	}
	if got := h.Percentile(100); got != float64(math.MaxUint64) {
		t.Fatalf("Percentile(100) = %g, want exact max", got)
	}
}

// TestHistogramEmpty pins the zero-value behaviour the summary paths rely on.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Percentile(100) != 0 {
		t.Fatalf("empty histogram not all-zero: mean=%g p50=%g p100=%g",
			h.Mean(), h.Percentile(50), h.Percentile(100))
	}
	s := h.Summary()
	if s.Count != 0 || s.Max != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

// histDistributions are the known shapes the percentile-accuracy test draws:
// uniform (flat), geometric (heavy head, thin tail — the shape cache-hit
// latencies take), constant (degenerate), and bimodal (fast-hit vs slow-path
// split, the distribution the tail-latency experiment exists to expose).
var histDistributions = []struct {
	name string
	gen  func(r *RNG) uint64
}{
	{"uniform", func(r *RNG) uint64 { return r.Uint64n(10000) }},
	{"geometric", func(r *RNG) uint64 {
		v := uint64(0)
		for r.Bool(0.95) && v < 60 {
			v++
		}
		return v * v * 7 // spread across octaves
	}},
	{"constant", func(r *RNG) uint64 { return 199 }},
	{"bimodal", func(r *RNG) uint64 {
		if r.Bool(0.9) {
			return 20 + r.Uint64n(15) // fast hit
		}
		return 4000 + r.Uint64n(2000) // slow path
	}},
}

// TestHistogramPercentilesVsExact draws seeded values from known
// distributions into both a Histogram and an exact Sample reference, then
// checks every percentile estimate stays within the documented 12.5%
// relative error (plus one-value slack for the interpolation convention
// difference between the two estimators).
func TestHistogramPercentilesVsExact(t *testing.T) {
	for _, dist := range histDistributions {
		t.Run(dist.name, func(t *testing.T) {
			r := NewRNG(42)
			var h Histogram
			var ref Sample
			for i := 0; i < 20000; i++ {
				v := dist.gen(r)
				h.Observe(v)
				ref.Observe(float64(v))
			}
			if h.Count() != uint64(ref.N()) {
				t.Fatalf("count mismatch: hist %d, ref %d", h.Count(), ref.N())
			}
			if gotMean, want := h.Mean(), ref.Mean(); math.Abs(gotMean-want) > 0.5+1e-9 {
				t.Fatalf("mean: hist %.3f, exact %.3f", gotMean, want)
			}
			for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 99.9, 100} {
				got := h.Percentile(p)
				want := ref.Percentile(p)
				tol := want/histSubBuckets + 1.5
				if math.Abs(got-want) > tol {
					t.Errorf("p%.1f: hist %.1f, exact %.1f (tolerance %.1f)", p, got, want, tol)
				}
			}
			if h.Percentile(100) != float64(h.Max()) {
				t.Errorf("p100 %.1f != exact max %d", h.Percentile(100), h.Max())
			}
		})
	}
}

// TestHistogramPercentileMonotonic checks estimates never decrease as p
// grows, across all the test distributions.
func TestHistogramPercentileMonotonic(t *testing.T) {
	r := NewRNG(7)
	for _, dist := range histDistributions {
		var h Histogram
		for i := 0; i < 5000; i++ {
			h.Observe(dist.gen(r))
		}
		prev := -1.0
		for p := 0.0; p <= 100; p += 0.5 {
			v := h.Percentile(p)
			if v < prev {
				t.Fatalf("%s: Percentile(%g) = %.2f < Percentile(%g) = %.2f",
					dist.name, p, v, p-0.5, prev)
			}
			prev = v
		}
	}
}

// randHist builds a histogram of n seeded draws mixing all distributions.
func randHist(seed uint64, n int) *Histogram {
	r := NewRNG(seed)
	h := &Histogram{}
	for i := 0; i < n; i++ {
		h.Observe(histDistributions[r.Intn(len(histDistributions))].gen(r))
	}
	return h
}

// TestHistogramMergeProperties checks Merge is commutative and associative
// bucket-for-bucket, the property window deltas and parallel reduction rely
// on. Buckets are fixed arrays, so struct equality compares every bucket.
func TestHistogramMergeProperties(t *testing.T) {
	a, b, c := randHist(1, 3000), randHist(2, 4000), randHist(3, 5000)

	ab := *a
	ab.Merge(b)
	ba := *b
	ba.Merge(a)
	ba.name = ab.name
	if ab != ba {
		t.Fatal("Merge is not commutative")
	}

	abc1 := ab // (a+b)+c
	abc1.Merge(c)
	bc := *b
	bc.Merge(c)
	abc2 := *a // a+(b+c)
	abc2.Merge(&bc)
	if abc1 != abc2 {
		t.Fatal("Merge is not associative")
	}
	if abc1.Count() != a.Count()+b.Count()+c.Count() {
		t.Fatalf("merged count %d, want %d", abc1.Count(), a.Count()+b.Count()+c.Count())
	}
	if abc1.Sum() != a.Sum()+b.Sum()+c.Sum() {
		t.Fatalf("merged sum %d, want %d", abc1.Sum(), a.Sum()+b.Sum()+c.Sum())
	}

	// Merging an empty histogram is the identity.
	var empty Histogram
	id := *a
	id.Merge(&empty)
	if id != *a {
		t.Fatal("merging an empty histogram changed the receiver")
	}
}

// TestHistogramDeltaWindow checks snapshot deltas: the delta of a window
// holds exactly the window's observations, and its max is a bucket-derived
// upper bound never below the true window max nor above the lifetime max.
func TestHistogramDeltaWindow(t *testing.T) {
	st := NewStats()
	h := st.Histogram("lat")
	r := NewRNG(99)
	for i := 0; i < 1000; i++ {
		h.Observe(r.Uint64n(500))
	}
	snap := st.Snapshot()
	var trueMax uint64
	var winSum uint64
	for i := 0; i < 2000; i++ {
		v := 1000 + r.Uint64n(8000)
		if v > trueMax {
			trueMax = v
		}
		winSum += v
		h.Observe(v)
	}
	d := snap.DeltaOfHist(h)
	if d.Count() != 2000 || d.Sum() != winSum {
		t.Fatalf("delta count=%d sum=%d, want 2000/%d", d.Count(), d.Sum(), winSum)
	}
	if d.Max() < trueMax {
		t.Fatalf("delta max %d below true window max %d", d.Max(), trueMax)
	}
	if d.Max() > h.Max() {
		t.Fatalf("delta max %d above lifetime max %d", d.Max(), h.Max())
	}
	if rel := float64(d.Max()-trueMax) / float64(trueMax); rel > 1.0/histSubBuckets {
		t.Fatalf("delta max %d overshoots true max %d by %.3f", d.Max(), trueMax, rel)
	}
	// A delta over an idle window is empty.
	idle := st.Snapshot().DeltaOfHist(h)
	if idle.Count() != 0 || idle.Max() != 0 {
		t.Fatalf("idle delta not empty: count=%d max=%d", idle.Count(), idle.Max())
	}
}

// TestStatsHistogramRegistry checks registry integration: name scoping,
// idempotent lookup, enumeration order, and Reset.
func TestStatsHistogramRegistry(t *testing.T) {
	st := NewStats()
	sc := st.Scope("dev")
	h1 := sc.Histogram("lat.queue")
	h2 := sc.Histogram("lat.queue")
	if h1 != h2 {
		t.Fatal("Histogram lookup not idempotent")
	}
	if h1.Name() != "dev.lat.queue" {
		t.Fatalf("scoped name %q, want dev.lat.queue", h1.Name())
	}
	st.Histogram("alat") // registered after, sorts before — order must be registration order
	names := st.HistNames()
	if len(names) != 2 || names[0] != "dev.lat.queue" || names[1] != "alat" {
		t.Fatalf("HistNames() = %v, want registration order", names)
	}
	h1.Observe(10)
	st.Reset()
	if h1.Count() != 0 || h1.Max() != 0 || h1.Percentile(50) != 0 {
		t.Fatalf("Reset left data: count=%d max=%d", h1.Count(), h1.Max())
	}
}
