package sim

import (
	"math"
	"testing"
)

func TestStatsScopeSharesRegistry(t *testing.T) {
	root := NewStats()
	a := root.Scope("l1.core0")
	b := root.Scope("l1").Scope("core0")

	c1 := a.Counter("hits")
	c2 := b.Counter("hits")
	if c1 != c2 {
		t.Fatal("nested scopes with the same prefix must resolve to the same counter")
	}
	c1.Add(3)
	if got := root.Get("l1.core0.hits"); got != 3 {
		t.Fatalf("root sees %d, want 3", got)
	}
	if got := a.Get("hits"); got != 3 {
		t.Fatalf("scoped view sees %d, want 3", got)
	}
}

func TestStatsScopeEmptyReturnsSame(t *testing.T) {
	root := NewStats()
	if root.Scope("") != root {
		t.Fatal(`Scope("") must return the receiver`)
	}
}

func TestStatsNamesFilteredByScope(t *testing.T) {
	root := NewStats()
	root.Counter("top")
	s := root.Scope("mem")
	s.Counter("reads")
	s.Counter("writes")

	names := s.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Fatalf("scoped Names = %v, want [reads writes]", names)
	}
	all := root.Names()
	if len(all) != 3 || all[0] != "top" || all[1] != "mem.reads" || all[2] != "mem.writes" {
		t.Fatalf("root Names = %v", all)
	}
}

func TestSnapshotDelta(t *testing.T) {
	root := NewStats()
	c := root.Counter("x")
	f := root.Float("e")
	c.Add(10)
	f.Add(1.5)

	snap := root.Snapshot()
	c.Add(7)
	f.Add(2.5)

	if got := snap.DeltaOf(c); got != 7 {
		t.Fatalf("DeltaOf = %d, want 7", got)
	}
	if got := snap.DeltaOfFloat(f); got != 2.5 {
		t.Fatalf("DeltaOfFloat = %v, want 2.5", got)
	}
	d := root.Delta(snap)
	if got := d.Get("x"); got != 7 {
		t.Fatalf("Delta.Get(x) = %d, want 7", got)
	}
	if got := d.GetFloat("e"); got != 2.5 {
		t.Fatalf("Delta.GetFloat(e) = %v, want 2.5", got)
	}
}

func TestSnapshotOfScopedView(t *testing.T) {
	root := NewStats()
	c := root.Scope("dev").Counter("reads")
	c.Add(4)
	// Snapshot through a scoped view still covers the whole registry, so
	// window deltas work no matter which view took the snapshot.
	snap := root.Scope("dev").Snapshot()
	c.Add(5)
	if got := snap.DeltaOf(c); got != 5 {
		t.Fatalf("DeltaOf through scoped snapshot = %d, want 5", got)
	}
}

func TestSnapshotUnknownCounterDeltaIsFullValue(t *testing.T) {
	root := NewStats()
	snap := root.Snapshot()
	c := root.Counter("late") // registered after the snapshot
	c.Add(9)
	if got := snap.DeltaOf(c); got != 9 {
		t.Fatalf("DeltaOf late-registered counter = %d, want 9", got)
	}
}

func TestFloatAccum(t *testing.T) {
	root := NewStats()
	f := root.Float("energy")
	f.Add(0.25)
	f.Add(0.5)
	if f.Value() != 0.75 {
		t.Fatalf("FloatAccum value = %v, want 0.75", f.Value())
	}
	if got := root.GetFloat("energy"); got != 0.75 {
		t.Fatalf("GetFloat = %v, want 0.75", got)
	}
	if same := root.Float("energy"); same != f {
		t.Fatal("re-registering a float must return the same accumulator")
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 {
		t.Fatalf("empty N = %d", s.N())
	}
	if s.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", s.Mean())
	}
	for _, p := range []float64{0, 50, 100} {
		if got := s.Percentile(p); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	box := s.Box()
	if box.N != 0 || box.P50 != 0 {
		t.Fatalf("empty Box = %+v", box)
	}
}

func TestSamplePercentileBounds(t *testing.T) {
	var s Sample
	for _, x := range []float64{5, 1, 3} {
		s.Observe(x)
	}
	// Out-of-range percentiles clamp to the extremes.
	if got := s.Percentile(-10); got != 1 {
		t.Fatalf("Percentile(-10) = %v, want min 1", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("Percentile(0) = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("Percentile(100) = %v, want 5", got)
	}
	if got := s.Percentile(200); got != 5 {
		t.Fatalf("Percentile(200) = %v, want 5", got)
	}
	// Interpolation between ranks: 25th percentile of {1,3,5} sits halfway
	// between 1 and 3.
	if got := s.Percentile(25); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Percentile(25) = %v, want 2", got)
	}
}

func TestSampleMergeAfterPercentile(t *testing.T) {
	var a, b Sample
	for _, x := range []float64{9, 1} {
		a.Observe(x)
	}
	// Force a sort so the merge below must invalidate the sorted flag.
	if got := a.Percentile(50); got != 5 {
		t.Fatalf("pre-merge median = %v, want 5", got)
	}
	for _, x := range []float64{2, 0} {
		b.Observe(x)
	}
	a.Merge(&b)
	if a.N() != 4 {
		t.Fatalf("merged N = %d, want 4", a.N())
	}
	// {0,1,2,9}: median interpolates between 1 and 2.
	if got := a.Percentile(50); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("post-merge median = %v, want 1.5", got)
	}
	// Merging an empty sample is a no-op.
	var empty Sample
	a.Merge(&empty)
	if a.N() != 4 {
		t.Fatalf("N after empty merge = %d, want 4", a.N())
	}
}
