package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatal("different seeds too similar")
	}
}

func TestRNGUniformity(t *testing.T) {
	rng := NewRNG(7)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[rng.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10*8/10 || b > n/10*12/10 {
			t.Fatalf("bucket %d has %d of %d (non-uniform)", i, b, n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	rng := NewRNG(9)
	f := func(_ uint8) bool {
		x := rng.Float64()
		return x >= 0 && x < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(11)
	z := NewZipf(rng, 1000, 0.99, false)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be the hottest by far, and the head must dominate.
	if counts[0] < counts[500]*10 {
		t.Fatalf("rank 0 (%d) not much hotter than rank 500 (%d)", counts[0], counts[500])
	}
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if float64(head)/n < 0.5 {
		t.Fatalf("top 10%% of items got only %.2f of accesses", float64(head)/n)
	}
}

func TestZipfScrambleSpreads(t *testing.T) {
	rng := NewRNG(12)
	z := NewZipf(rng, 1<<20, 0.99, true)
	low := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if z.Next() < 1<<10 {
			low++
		}
	}
	// With scrambling, the hot ranks land anywhere, so the first 0.1% of
	// the space should not receive a large share.
	if float64(low)/n > 0.05 {
		t.Fatalf("scrambled zipf concentrated at low ids: %d/%d", low, n)
	}
}

func TestZipfDegenerateThetaClamped(t *testing.T) {
	rng := NewRNG(13)
	z := NewZipf(rng, 1000, 1.0, false) // clamped internally to < 1
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		seen[z.Next()] = true
	}
	if len(seen) < 50 {
		t.Fatalf("theta clamp failed: only %d distinct values", len(seen))
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStats()
	c := s.Counter("a")
	c.Inc()
	c.Add(4)
	if s.Get("a") != 5 {
		t.Fatalf("counter=%d", s.Get("a"))
	}
	if s.Counter("a") != c {
		t.Fatal("Counter not idempotent")
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter nonzero")
	}
	s.Reset()
	if s.Get("a") != 0 {
		t.Fatal("reset failed")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("names=%v", names)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if p := s.Percentile(50); math.Abs(p-50.5) > 1 {
		t.Fatalf("p50=%f", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0=%f", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100=%f", p)
	}
	box := s.Box()
	if box.P25 >= box.P75 || box.P5 >= box.P95 {
		t.Fatalf("box out of order: %+v", box)
	}
	if box.N != 100 {
		t.Fatalf("box N=%d", box.N)
	}
}

func TestSamplePercentileMonotonic(t *testing.T) {
	rng := NewRNG(20)
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Observe(rng.Float64() * 100)
	}
	f := func(a, b uint8) bool {
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean=%f", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("empty geomean=%f", g)
	}
	if g := GeoMean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-9 {
		t.Fatalf("unit geomean=%f", g)
	}
	// Non-positive entries are ignored.
	if g := GeoMean([]float64{0, -1, 4}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("filtered geomean=%f", g)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("ratio wrong")
	}
}
