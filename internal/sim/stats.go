package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Stats is a named collection of counters. Controllers and devices register
// their counters here so experiments can render uniform reports.
type Stats struct {
	order    []string
	counters map[string]*Counter
}

// NewStats returns an empty collection.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Stats) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Get returns the value of a counter, or 0 if it was never registered.
func (s *Stats) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.v
	}
	return 0
}

// Names returns the counter names in registration order.
func (s *Stats) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Reset zeroes every counter but keeps the registrations.
func (s *Stats) Reset() {
	for _, c := range s.counters {
		c.v = 0
	}
}

// String renders the counters as "name=value" lines in registration order.
func (s *Stats) String() string {
	var b strings.Builder
	for _, name := range s.order {
		fmt.Fprintf(&b, "%s=%d\n", name, s.counters[name].v)
	}
	return b.String()
}

// Ratio returns num/den as a float, or 0 when den is zero.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Sample accumulates float observations and reports distribution summaries.
// It keeps every observation; the workloads in this repository produce at
// most a few hundred thousand samples per run.
type Sample struct {
	xs     []float64
	sorted bool
}

// Observe records one observation.
func (s *Sample) Observe(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Merge folds every observation of o into s. Percentile summaries sort the
// observations, so the merged summaries do not depend on merge order.
func (s *Sample) Merge(o *Sample) {
	if o.N() == 0 {
		return
	}
	s.xs = append(s.xs, o.xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	pos := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Box summarises the sample as the 5/25/50/75/95 percentiles, the box-plot
// shape used by the paper's Fig. 4.
type Box struct {
	P5, P25, P50, P75, P95 float64
	N                      int
}

// Box returns the five-number summary of the sample.
func (s *Sample) Box() Box {
	return Box{
		P5:  s.Percentile(5),
		P25: s.Percentile(25),
		P50: s.Percentile(50),
		P75: s.Percentile(75),
		P95: s.Percentile(95),
		N:   len(s.xs),
	}
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
// It is the aggregation the paper uses for cross-workload speedups.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
