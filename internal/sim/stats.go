package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Name returns the counter's fully-qualified registered name.
func (c *Counter) Name() string { return c.name }

// FloatAccum is a monotonically accumulating float metric (energy,
// latency-weighted sums). It lives in the same registry as Counters so
// snapshots and window deltas cover it.
type FloatAccum struct {
	name string
	v    float64
}

// Add accumulates x.
func (f *FloatAccum) Add(x float64) { f.v += x }

// Value returns the accumulated total.
func (f *FloatAccum) Value() float64 { return f.v }

// Name returns the accumulator's fully-qualified registered name.
func (f *FloatAccum) Name() string { return f.name }

// registry is the single shared store behind every Stats view of a run:
// one registry owns every counter, however deep the component that
// registered it sits in the hierarchy.
type registry struct {
	order    []string
	counters map[string]*Counter
	forder   []string
	floats   map[string]*FloatAccum
	horder   []string
	hists    map[string]*Histogram
}

// Stats is a view onto a run's metric registry. The root view (NewStats)
// sees every counter; Scope derives prefixed child views that register and
// read under "prefix." while still sharing the same registry, so per-core
// or per-component counters stay visible to run-level snapshots.
//
// Concurrency contract: a registry is per-run state, NOT goroutine-safe.
// Every run (cpu.Runner) builds its own registry via NewStats and mutates it
// from the single goroutine executing that run; parallel harnesses
// (experiment.RunPairs) get isolation by never sharing a registry between
// jobs, not by locking. Cross-goroutine readers (e.g. a live debug server)
// must consume immutable Snapshot values published by the run goroutine,
// never the live Stats.
type Stats struct {
	reg    *registry
	prefix string
}

// NewStats returns the root view of a fresh, empty registry.
func NewStats() *Stats {
	return &Stats{reg: &registry{
		counters: make(map[string]*Counter),
		floats:   make(map[string]*FloatAccum),
		hists:    make(map[string]*Histogram),
	}}
}

// Scope returns a child view whose registrations and reads are prefixed by
// "name." on the same underlying registry. Scope("l1").Scope("core0") and
// Scope("l1.core0") are equivalent; an empty name returns the view itself.
func (s *Stats) Scope(name string) *Stats {
	if name == "" {
		return s
	}
	return &Stats{reg: s.reg, prefix: s.prefix + name + "."}
}

// Counter returns the counter with the given name under this view's scope,
// creating it on first use.
func (s *Stats) Counter(name string) *Counter {
	full := s.prefix + name
	if c, ok := s.reg.counters[full]; ok {
		return c
	}
	c := &Counter{name: full}
	s.reg.counters[full] = c
	s.reg.order = append(s.reg.order, full)
	return c
}

// Float returns the float accumulator with the given name under this view's
// scope, creating it on first use.
func (s *Stats) Float(name string) *FloatAccum {
	full := s.prefix + name
	if f, ok := s.reg.floats[full]; ok {
		return f
	}
	f := &FloatAccum{name: full}
	s.reg.floats[full] = f
	s.reg.forder = append(s.reg.forder, full)
	return f
}

// Histogram returns the latency histogram with the given name under this
// view's scope, creating it on first use.
func (s *Stats) Histogram(name string) *Histogram {
	full := s.prefix + name
	if h, ok := s.reg.hists[full]; ok {
		return h
	}
	h := &Histogram{name: full}
	s.reg.hists[full] = h
	s.reg.horder = append(s.reg.horder, full)
	return h
}

// GetHistogram returns the live histogram registered under this view's
// scope, or nil if it was never registered.
func (s *Stats) GetHistogram(name string) *Histogram {
	return s.reg.hists[s.prefix+name]
}

// HistNames returns the histogram names visible to this view in
// registration order, relative to the view's scope.
func (s *Stats) HistNames() []string {
	out := make([]string, 0, len(s.reg.horder))
	for _, name := range s.reg.horder {
		if strings.HasPrefix(name, s.prefix) {
			out = append(out, name[len(s.prefix):])
		}
	}
	return out
}

// Get returns the value of a counter under this view's scope, or 0 if it
// was never registered.
func (s *Stats) Get(name string) uint64 {
	if c, ok := s.reg.counters[s.prefix+name]; ok {
		return c.v
	}
	return 0
}

// GetFloat returns the value of a float accumulator under this view's
// scope, or 0 if it was never registered.
func (s *Stats) GetFloat(name string) float64 {
	if f, ok := s.reg.floats[s.prefix+name]; ok {
		return f.v
	}
	return 0
}

// Names returns the counter names visible to this view in registration
// order, relative to the view's scope (so Get(name) resolves each of them).
// The root view sees every fully-qualified name.
func (s *Stats) Names() []string {
	out := make([]string, 0, len(s.reg.order))
	for _, name := range s.reg.order {
		if strings.HasPrefix(name, s.prefix) {
			out = append(out, name[len(s.prefix):])
		}
	}
	return out
}

// FloatNames returns the float-accumulator names visible to this view in
// registration order, relative to the view's scope.
func (s *Stats) FloatNames() []string {
	out := make([]string, 0, len(s.reg.forder))
	for _, name := range s.reg.forder {
		if strings.HasPrefix(name, s.prefix) {
			out = append(out, name[len(s.prefix):])
		}
	}
	return out
}

// Reset zeroes every counter, accumulator and histogram visible to this
// view but keeps the registrations.
func (s *Stats) Reset() {
	for name, c := range s.reg.counters {
		if strings.HasPrefix(name, s.prefix) {
			c.v = 0
		}
	}
	for name, f := range s.reg.floats {
		if strings.HasPrefix(name, s.prefix) {
			f.v = 0
		}
	}
	for name, h := range s.reg.hists {
		if strings.HasPrefix(name, s.prefix) {
			*h = Histogram{name: h.name}
		}
	}
}

// String renders the visible counters as "name=value" lines in registration
// order, followed by any float accumulators.
func (s *Stats) String() string {
	var b strings.Builder
	for _, name := range s.Names() {
		fmt.Fprintf(&b, "%s=%d\n", name, s.Get(name))
	}
	for _, name := range s.FloatNames() {
		fmt.Fprintf(&b, "%s=%g\n", name, s.GetFloat(name))
	}
	return b.String()
}

// Snapshot is a point-in-time copy of every metric visible to one view.
// Snapshots are value copies of the registry's numbers (including full
// histogram bucket arrays); they do not keep the registry alive beyond the
// maps they hold. Unlike the live Stats, a Snapshot is immutable after
// capture and therefore safe to hand to other goroutines — this is the only
// supported way to expose run metrics outside the run's own goroutine.
type Snapshot struct {
	counters map[string]uint64
	floats   map[string]float64
	hists    map[string]Histogram
}

// Snapshot captures the current value of every counter, accumulator and
// histogram visible to this view. It must be called from the run's own
// goroutine (the registry is not goroutine-safe); the returned value can
// then be shared freely.
func (s *Stats) Snapshot() Snapshot {
	sn := Snapshot{
		counters: make(map[string]uint64, len(s.reg.counters)),
		floats:   make(map[string]float64, len(s.reg.floats)),
		hists:    make(map[string]Histogram, len(s.reg.hists)),
	}
	for name, c := range s.reg.counters {
		if strings.HasPrefix(name, s.prefix) {
			sn.counters[name] = c.v
		}
	}
	for name, f := range s.reg.floats {
		if strings.HasPrefix(name, s.prefix) {
			sn.floats[name] = f.v
		}
	}
	for name, h := range s.reg.hists {
		if strings.HasPrefix(name, s.prefix) {
			sn.hists[name] = *h
		}
	}
	return sn
}

// Delta returns the per-metric change since snap, as a new Snapshot whose
// values are current-minus-snapshotted. Counters registered after snap was
// taken delta against zero. Like Snapshot, Delta reads the live registry
// and must run on the run's own goroutine.
func (s *Stats) Delta(snap Snapshot) Snapshot {
	d := Snapshot{
		counters: make(map[string]uint64, len(s.reg.counters)),
		floats:   make(map[string]float64, len(s.reg.floats)),
		hists:    make(map[string]Histogram, len(s.reg.hists)),
	}
	for name, c := range s.reg.counters {
		if strings.HasPrefix(name, s.prefix) {
			d.counters[name] = c.v - snap.counters[name]
		}
	}
	for name, f := range s.reg.floats {
		if strings.HasPrefix(name, s.prefix) {
			d.floats[name] = f.v - snap.floats[name]
		}
	}
	for name, h := range s.reg.hists {
		if strings.HasPrefix(name, s.prefix) {
			d.hists[name] = h.delta(snap.hists[name])
		}
	}
	return d
}

// Get returns the snapshotted value of a fully-qualified counter name.
func (sn Snapshot) Get(name string) uint64 { return sn.counters[name] }

// GetFloat returns the snapshotted value of a fully-qualified accumulator
// name.
func (sn Snapshot) GetFloat(name string) float64 { return sn.floats[name] }

// DeltaOf returns how much counter c has advanced since the snapshot was
// taken. Counters registered after the snapshot delta against zero.
func (sn Snapshot) DeltaOf(c *Counter) uint64 { return c.v - sn.counters[c.name] }

// DeltaOfFloat returns how much accumulator f has advanced since the
// snapshot was taken.
func (sn Snapshot) DeltaOfFloat(f *FloatAccum) float64 { return f.v - sn.floats[f.name] }

// DeltaOfHist returns the bucket-wise advance of histogram h since the
// snapshot was taken, as a standalone Histogram whose summaries describe
// just that window. Histograms registered after the snapshot delta against
// an empty histogram.
func (sn Snapshot) DeltaOfHist(h *Histogram) Histogram { return h.delta(sn.hists[h.name]) }

// Hist returns the snapshotted copy of a fully-qualified histogram name.
func (sn Snapshot) Hist(name string) (Histogram, bool) {
	h, ok := sn.hists[name]
	return h, ok
}

// CounterNames returns every counter name in the snapshot, sorted. Snapshots
// drop the registry's registration order, so sorted names are the snapshot's
// deterministic iteration order — the one exporters rely on.
func (sn Snapshot) CounterNames() []string { return sortedKeys(sn.counters) }

// FloatNames returns every float-accumulator name in the snapshot, sorted.
func (sn Snapshot) FloatNames() []string { return sortedKeys(sn.floats) }

// HistNames returns every histogram name in the snapshot, sorted.
func (sn Snapshot) HistNames() []string { return sortedKeys(sn.hists) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Ratio returns num/den as a float, or 0 when den is zero.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Sample accumulates float observations and reports distribution summaries.
// It keeps every observation; the workloads in this repository produce at
// most a few hundred thousand samples per run.
type Sample struct {
	xs     []float64
	sorted bool
}

// Observe records one observation.
func (s *Sample) Observe(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Merge folds every observation of o into s. Percentile summaries sort the
// observations, so the merged summaries do not depend on merge order.
func (s *Sample) Merge(o *Sample) {
	if o.N() == 0 {
		return
	}
	s.xs = append(s.xs, o.xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	pos := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Box summarises the sample as the 5/25/50/75/95 percentiles, the box-plot
// shape used by the paper's Fig. 4.
type Box struct {
	P5, P25, P50, P75, P95 float64
	N                      int
}

// Box returns the five-number summary of the sample.
func (s *Sample) Box() Box {
	return Box{
		P5:  s.Percentile(5),
		P25: s.Percentile(25),
		P50: s.Percentile(50),
		P75: s.Percentile(75),
		P95: s.Percentile(95),
		N:   len(s.xs),
	}
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
// It is the aggregation the paper uses for cross-workload speedups.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
