// Package sim provides the deterministic simulation substrate shared by all
// of the memory-system models: a seeded pseudo-random number generator,
// Zipfian samplers for skewed workloads, statistics counters and histograms.
//
// Nothing in this package (or in anything built on it) consults wall-clock
// time or global randomness: a run is a pure function of its configuration
// and seed, so every experiment in this repository is exactly reproducible.
package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// each simulated core or generator owns its own RNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Poisson returns a sample from a Poisson distribution with mean lambda,
// using Knuth's product-of-uniforms method. It is exact for the small means
// the fault models use (lambda well below ~30); larger lambdas are clamped
// to 64 draws to bound worst-case work, which only matters for absurd error
// rates. Non-positive lambda returns 0.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l || k >= 64 {
			return k
		}
		k++
	}
}

// Zipf samples integers in [0, n) with a Zipfian (power-law) distribution of
// exponent theta, using the Gray et al. rejection-free method. Rank 0 is the
// hottest item. The mapping from rank to item is scrambled with a fixed
// multiplicative hash so hot items are spread across the address space.
type Zipf struct {
	rng      *RNG
	n        uint64
	theta    float64
	alpha    float64
	zetan    float64
	eta      float64
	zeta2    float64
	scramble bool
}

// NewZipf creates a Zipfian sampler over [0, n) with exponent theta
// (typically 0.99 for YCSB). If scramble is true, ranks are permuted through
// a hash so that popularity is uncorrelated with address order.
func NewZipf(rng *RNG, n uint64, theta float64, scramble bool) *Zipf {
	if n == 0 {
		panic("sim: NewZipf with zero n")
	}
	if theta >= 0.99 {
		theta = 0.99 // Gray's method needs theta < 1
	}
	z := &Zipf{rng: rng, n: n, theta: theta, scramble: scramble}
	z.zetan = zetaStatic(n, theta)
	z.zeta2 = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	// For large n, approximate the tail of the generalized harmonic number
	// with an integral; exact summation for the head keeps the error tiny
	// while avoiding O(n) setup for multi-million-item spaces.
	const exact = 10000
	sum := 0.0
	limit := n
	if limit > exact {
		limit = exact
	}
	for i := uint64(1); i <= limit; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	if n > exact {
		// Integral of x^-theta from `exact` to n.
		if theta == 1 {
			sum += math.Log(float64(n) / float64(exact))
		} else {
			sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(exact), 1-theta)) / (1 - theta)
		}
	}
	return sum
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	if !z.scramble {
		return rank
	}
	// Fibonacci-hash permutation of the rank within [0, n); the offset keeps
	// the hottest rank away from item 0.
	return ((rank + 12345) * 0x9e3779b97f4a7c15) % z.n
}
