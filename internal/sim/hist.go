package sim

import (
	"fmt"
	"math/bits"
)

// Histogram bucket geometry. Values below histLinearMax get one exact
// bucket each; above that, every power-of-two octave is split into
// histSubBuckets log-linear sub-buckets, so the relative bucket width — and
// therefore the worst-case relative error of any percentile estimate — is
// 1/histSubBuckets (12.5%). Values at or beyond 2^histMaxOctave clamp into
// the final bucket; at one cycle per unit that is ~3.8 minutes of simulated
// time at 3.2 GHz, far beyond any single-access latency.
const (
	histLinearMax  = 32
	histSubBuckets = 8
	histMinOctave  = 5 // log2(histLinearMax)
	histMaxOctave  = 40
	// HistBuckets is the fixed bucket count of every Histogram.
	HistBuckets = histLinearMax + (histMaxOctave-histMinOctave)*histSubBuckets
)

// Histogram is a fixed-bucket latency histogram: Observe is allocation-free
// and costs a handful of integer ops, buckets are mergeable (and therefore
// window-deltable via snapshots), and percentile estimates carry a bounded
// relative error of 1/8 set by the log-linear bucket geometry. Histograms
// live on the run registry next to Counters and FloatAccums and follow the
// same concurrency contract: one registry per run, no cross-goroutine
// sharing.
type Histogram struct {
	name    string
	count   uint64
	sum     uint64
	max     uint64
	buckets [HistBuckets]uint64
}

// histBucket maps a value to its bucket index.
func histBucket(v uint64) int {
	if v < histLinearMax {
		return int(v)
	}
	o := bits.Len64(v) - 1 // >= histMinOctave
	if o >= histMaxOctave {
		return HistBuckets - 1
	}
	sub := (v >> (uint(o) - 3)) & (histSubBuckets - 1)
	return histLinearMax + (o-histMinOctave)*histSubBuckets + int(sub)
}

// histBucketBounds returns bucket i's value range [lo, hi).
func histBucketBounds(i int) (lo, hi uint64) {
	if i < histLinearMax {
		return uint64(i), uint64(i) + 1
	}
	j := i - histLinearMax
	o := uint(j/histSubBuckets + histMinOctave)
	sub := uint64(j % histSubBuckets)
	width := uint64(1) << (o - 3)
	lo = (histSubBuckets + sub) * width
	return lo, lo + width
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[histBucket(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Name returns the histogram's fully-qualified registered name (empty for
// histograms created outside a registry, e.g. snapshot deltas).
func (h *Histogram) Name() string { return h.name }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observed value (exact, not bucket-quantised).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge folds every bucket of o into h. Merging is associative and
// commutative bucket-for-bucket, so summaries of merged histograms do not
// depend on merge order.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// delta returns the per-bucket change of h since the snapshotted copy prev.
// The exact max of the window is unknowable from bucket subtraction, so the
// delta's max is the tightest bucket-derived upper bound, capped by the
// histogram's lifetime max.
func (h *Histogram) delta(prev Histogram) Histogram {
	d := Histogram{name: h.name, count: h.count - prev.count, sum: h.sum - prev.sum}
	top := -1
	for i := range h.buckets {
		d.buckets[i] = h.buckets[i] - prev.buckets[i]
		if d.buckets[i] > 0 {
			top = i
		}
	}
	if top >= 0 {
		_, hi := histBucketBounds(top)
		d.max = hi - 1
		if h.max < d.max {
			d.max = h.max
		}
	}
	return d
}

// Percentile returns the p-th percentile (0 <= p <= 100) estimated from the
// buckets, interpolating linearly inside the selected bucket. The estimate
// is exact for values below 32 and within 12.5% relative error above;
// p >= 100 returns the exact observed max. Returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p >= 100 {
		return float64(h.max)
	}
	if p < 0 {
		p = 0
	}
	// Nearest-rank position, matching Sample.Percentile's convention.
	pos := p / 100 * float64(h.count-1)
	rank := uint64(pos)
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		if cum > rank {
			lo, hi := histBucketBounds(i)
			frac := (float64(rank) - float64(cum-n)) / float64(n)
			v := float64(lo) + frac*float64(hi-1-lo)
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
	}
	return float64(h.max)
}

// CumBucket is one cumulative histogram bucket in export order: Cum
// observations had a value <= Le. This is the Prometheus/OpenMetrics bucket
// shape; Le is the inclusive integer upper bound of the underlying
// log-linear bucket.
type CumBucket struct {
	Le  uint64
	Cum uint64
}

// CumBuckets converts the histogram's bucket array to cumulative
// Prometheus-style buckets, appending to dst and returning it. Only buckets
// that actually hold observations are emitted (the cumulative sequence is
// unchanged by omitting empty buckets); the final entry's Cum always equals
// Count, so renderers can close the sequence with a +Inf bucket. The
// sequence is monotone in both Le and Cum by construction.
func (h *Histogram) CumBuckets(dst []CumBucket) []CumBucket {
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		_, hi := histBucketBounds(i)
		dst = append(dst, CumBucket{Le: hi - 1, Cum: cum})
	}
	return dst
}

// HistSummary is the exported fixed-percentile digest of one histogram, the
// shape that flows into Result, experiment tables and epoch series.
type HistSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   uint64  `json:"max"`
}

// Summary digests the histogram into the standard percentile set.
func (h *Histogram) Summary() HistSummary {
	return HistSummary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.max,
	}
}

// String renders the summary on one line.
func (s HistSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%d",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}
