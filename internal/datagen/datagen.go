// Package datagen synthesises deterministic memory contents with controlled
// compressibility. The paper's workloads carry real program data whose value
// locality drives FPC/BDI compression factors from ~1.0 (lbm) to ~2.4
// (fotonik3d); this package substitutes value classes — zero-heavy, small
// integers, pointer arrays, shared-exponent floats, incompressible — mixed
// per workload so the real compressors in internal/compress observe the same
// CF spectrum. Contents are a pure function of (block, sub-block, version,
// class): a write bumps a version, which both changes the bytes and, with a
// deterministic per-version probability, degrades compressibility — the
// source of the paper's write-overflow events (Fig. 3).
package datagen

import "encoding/binary"

// Class is a value-locality class for generated data.
type Class uint8

// The five value classes, from most to least compressible.
const (
	ClassZero     Class = iota // almost entirely zero words
	ClassSmallInt              // small 32-bit integers (FPC-friendly)
	ClassPointer               // 64-bit pointers with a shared base (BDI-friendly)
	ClassFloat                 // floats with shared exponents, moderate CF
	ClassRandom                // incompressible
	numClasses
)

// Mix is a distribution over value classes; weights need not be normalised.
type Mix struct {
	Weights [5]float64
}

// UniformMix spreads weight equally (useful in tests).
func UniformMix() Mix { return Mix{Weights: [5]float64{1, 1, 1, 1, 1}} }

// hash64 is a fixed avalanche hash (splitmix64 finaliser).
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ClassFor deterministically assigns block b a class drawn from the mix.
func (m Mix) ClassFor(block uint64) Class {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	if total == 0 {
		return ClassRandom
	}
	u := float64(hash64(block^0xC1A55)%1e9) / 1e9 * total
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return Class(i)
		}
	}
	return ClassRandom
}

// DegradeProb is the per-write-version probability that a block's data
// becomes one class less compressible, producing write overflows.
const DegradeProb = 0.12

// effectiveClass applies version-driven degradation: each version step has a
// deterministic chance of pushing the class one step toward ClassRandom.
func effectiveClass(c Class, block uint64, version uint32) Class {
	for v := uint32(1); v <= version && c < ClassRandom; v++ {
		if hash64(block*2654435761+uint64(v))%1000 < uint64(DegradeProb*1000) {
			c++
		}
		if v > 8 { // degradation saturates; avoid O(version) cost
			break
		}
	}
	return c
}

// FillSub writes the 256-byte content of (block, sub) at the given version
// and base class into dst. len(dst) must be 256.
func FillSub(dst []byte, block uint64, sub int, version uint32, base Class) {
	if len(dst) != 256 {
		panic("datagen: FillSub needs a 256-byte destination")
	}
	c := effectiveClass(base, block, version)
	seed := hash64(block<<8 | uint64(sub)<<3 | uint64(version)<<32 | uint64(c))
	switch c {
	case ClassZero:
		for i := range dst {
			dst[i] = 0
		}
		// A sparse handful of small values so the data is not pure zero.
		if seed%4 == 0 {
			off := int(seed % 63 * 4)
			binary.LittleEndian.PutUint32(dst[off:], uint32(seed%100+1))
		}
	case ClassSmallInt:
		x := seed
		for off := 0; off < 256; off += 4 {
			x = hash64(x)
			binary.LittleEndian.PutUint32(dst[off:], uint32(x%256))
		}
	case ClassPointer:
		// Pointers into one allocation arena: a shared 48-bit base with
		// cacheline-aligned offsets spanning 32 kB, so BDI's 8-byte-base /
		// 2-byte-delta configuration reaches CF about 2.4 (CF 2 after
		// quantisation, including on 128-byte aligned chunks).
		base := (seed &^ 0xFFFF) | 0x7F0000000000
		x := seed
		for off := 0; off < 256; off += 8 {
			x = hash64(x)
			binary.LittleEndian.PutUint64(dst[off:], base|(x%(1<<9))*64)
		}
	case ClassFloat:
		// Truncated-mantissa floats (stencil grids, quantised NN weights):
		// the low mantissa half is zero, which FPC's padded-halfword
		// pattern captures at ~19 bits/word; sparse exact zeros bring the
		// chunk under CF 2 on 128-byte aligned chunks.
		x := seed
		for off := 0; off < 256; off += 4 {
			x = hash64(x)
			if x%4 == 0 {
				binary.LittleEndian.PutUint32(dst[off:], 0)
				continue
			}
			binary.LittleEndian.PutUint32(dst[off:], (0x3F80+uint32(x%(1<<7)))<<16)
		}
	default: // ClassRandom
		x := seed
		for off := 0; off < 256; off += 8 {
			x = hash64(x)
			binary.LittleEndian.PutUint64(dst[off:], x)
		}
	}
}

// Filler builds a block-fill function (for hybrid.Store) over a mix, with
// all blocks at version 0.
func Filler(mix Mix) func(block uint64, dst *[2048]byte) {
	return func(block uint64, dst *[2048]byte) {
		c := mix.ClassFor(block)
		for sub := 0; sub < 8; sub++ {
			FillSub(dst[sub*256:(sub+1)*256], block, sub, 0, c)
		}
	}
}

// FillLine writes the 64-byte line content for a write at the given version
// into dst (len(dst) must be at least 64), derived from the sub-block
// content so written data stays consistent with the block's class. It is the
// allocation-free form of LineContent.
func FillLine(dst []byte, block uint64, sub, line int, version uint32, base Class) {
	var buf [256]byte
	FillSub(buf[:], block, sub, version, base)
	copy(dst, buf[line*64:(line+1)*64])
}

// LineContent returns the 64-byte line content for a write at the given
// version, derived from the sub-block content so written data stays
// consistent with the block's class.
func LineContent(block uint64, sub, line int, version uint32, base Class) []byte {
	out := make([]byte, 64)
	FillLine(out, block, sub, line, version, base)
	return out
}
