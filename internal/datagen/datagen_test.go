package datagen

import (
	"bytes"
	"testing"
	"testing/quick"

	"baryon/internal/compress"
)

func TestFillDeterministic(t *testing.T) {
	var a, b [256]byte
	FillSub(a[:], 7, 3, 2, ClassPointer)
	FillSub(b[:], 7, 3, 2, ClassPointer)
	if !bytes.Equal(a[:], b[:]) {
		t.Fatal("same inputs produced different data")
	}
	FillSub(b[:], 7, 3, 3, ClassPointer)
	if bytes.Equal(a[:], b[:]) {
		t.Fatal("version bump did not change data")
	}
}

func TestFillDeterministicQuick(t *testing.T) {
	f := func(block uint64, sub uint8, version uint16, cls uint8) bool {
		var a, b [256]byte
		c := Class(cls % uint8(numClasses))
		FillSub(a[:], block, int(sub%8), uint32(version), c)
		FillSub(b[:], block, int(sub%8), uint32(version), c)
		return bytes.Equal(a[:], b[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestClassCompressibilityOrdering verifies the value classes actually span
// the CF spectrum the paper's workloads need: zero-heavy data compresses
// best and random data not at all, with the structured classes in between.
func TestClassCompressibilityOrdering(t *testing.T) {
	comp := compress.New(false)
	meanCF := func(c Class) float64 {
		total := 0.0
		var buf [256]byte
		for b := uint64(0); b < 64; b++ {
			FillSub(buf[:], b, int(b%8), 0, c)
			total += comp.AchievedCF(buf[:])
		}
		return total / 64
	}
	zero := meanCF(ClassZero)
	smallInt := meanCF(ClassSmallInt)
	pointer := meanCF(ClassPointer)
	float := meanCF(ClassFloat)
	random := meanCF(ClassRandom)
	t.Logf("CFs: zero=%.2f smallInt=%.2f pointer=%.2f float=%.2f random=%.2f",
		zero, smallInt, pointer, float, random)
	if zero < 4 {
		t.Fatalf("zero class CF %.2f < 4", zero)
	}
	if smallInt < 2 {
		t.Fatalf("small-int class CF %.2f < 2", smallInt)
	}
	if pointer < 1.5 || float < 1.3 {
		t.Fatalf("structured classes too incompressible: ptr %.2f float %.2f", pointer, float)
	}
	if random > 1.1 {
		t.Fatalf("random class CF %.2f > 1.1", random)
	}
	if random >= pointer || pointer > zero {
		t.Fatal("class ordering violated")
	}
}

func TestMixClassDistribution(t *testing.T) {
	mix := Mix{Weights: [5]float64{0, 0, 1, 0, 0}}
	for b := uint64(0); b < 100; b++ {
		if c := mix.ClassFor(b); c != ClassPointer {
			t.Fatalf("single-weight mix gave class %d", c)
		}
	}
	uniform := UniformMix()
	counts := map[Class]int{}
	for b := uint64(0); b < 10000; b++ {
		counts[uniform.ClassFor(b)]++
	}
	for c := ClassZero; c < numClasses; c++ {
		if counts[c] < 1200 || counts[c] > 2800 {
			t.Fatalf("class %d count %d far from uniform", c, counts[c])
		}
	}
}

func TestZeroWeightMix(t *testing.T) {
	var empty Mix
	if c := empty.ClassFor(5); c != ClassRandom {
		t.Fatalf("zero-weight mix gave class %d, want ClassRandom", c)
	}
}

// TestVersionDegradation verifies that repeated writes eventually make some
// blocks less compressible — the source of write-overflow events.
func TestVersionDegradation(t *testing.T) {
	comp := compress.New(false)
	degraded := 0
	var buf [256]byte
	for b := uint64(0); b < 200; b++ {
		FillSub(buf[:], b, 0, 0, ClassZero)
		cf0 := comp.AchievedCF(buf[:])
		FillSub(buf[:], b, 0, 8, ClassZero)
		cf8 := comp.AchievedCF(buf[:])
		if cf8 < cf0/2 {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no block ever degraded in compressibility after writes")
	}
	if degraded > 180 {
		t.Fatalf("almost all blocks degraded (%d/200); DegradeProb miscalibrated", degraded)
	}
}

func TestFillerCoversBlock(t *testing.T) {
	fill := Filler(Mix{Weights: [5]float64{0, 1, 0, 0, 0}})
	var blk [2048]byte
	fill(3, &blk)
	var sub [256]byte
	FillSub(sub[:], 3, 5, 0, ClassSmallInt)
	if !bytes.Equal(blk[5*256:6*256], sub[:]) {
		t.Fatal("Filler disagrees with FillSub")
	}
}

func TestLineContentConsistent(t *testing.T) {
	line := LineContent(9, 2, 1, 4, ClassFloat)
	var sub [256]byte
	FillSub(sub[:], 9, 2, 4, ClassFloat)
	if !bytes.Equal(line, sub[64:128]) {
		t.Fatal("LineContent disagrees with FillSub")
	}
	if len(line) != 64 {
		t.Fatalf("line length %d", len(line))
	}
}

func TestFillSubPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong destination size")
		}
	}()
	FillSub(make([]byte, 100), 0, 0, 0, ClassZero)
}
