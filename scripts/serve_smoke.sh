#!/bin/sh
# Serve smoke test: the end-to-end contract of cmd/baryonsimd + cmd/loadgen.
# Start the daemon on loopback, drive it with loadgen, and assert the
# acceptance properties of the run-service core:
#   1. back-to-back identical submissions: the second is a cache hit with a
#      byte-identical bundle (-verify-bytes), so 2 requests hit >= 50%;
#   2. the live /metrics exposition lints clean (cmd/omlint);
#   3. SIGTERM drains cleanly with exit status 0;
#   4. a restarted daemon over the same -cache-dir serves its predecessor's
#      results without simulating (cold-start reload: hit rate 1.0);
#   5. a mixed concurrent load sustains >= 50% cache hit rate.
# Everything runs against 127.0.0.1 — no external network — so the smoke
# passes offline. The service core and HTTP API are covered in-process by
# internal/service's tests; this script is the end-to-end check of the
# daemon binary, its drain path and the on-disk store.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/baryonsimd" ./cmd/baryonsimd
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/omlint" ./cmd/omlint

# start_daemon LOGFILE: launches the daemon on an ephemeral port against the
# shared cache dir and sets $pid/$addr. The listener address is announced on
# stderr as "baryonsimd listening on http://HOST:PORT".
start_daemon() {
    log=$1
    "$tmp/baryonsimd" -addr 127.0.0.1:0 -cache-dir "$tmp/cache" 2>"$log" &
    pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's|^baryonsimd listening on http://\(.*\)$|\1|p' "$log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: baryonsimd never announced its listener" >&2
        cat "$log" >&2
        exit 1
    fi
}

start_daemon "$tmp/d1.err"
trap 'kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT

# 1. Same job twice: the second request must be served from the result cache
# (hit rate 0.50 of 2 requests) and -verify-bytes asserts the cached bundle
# is byte-identical to the simulated one.
if ! "$tmp/loadgen" -addr "http://$addr" -clients 1 -requests 2 -seeds 1 \
    -accesses 2000 -verify-bytes -min-hit-rate 0.5 >"$tmp/pass1.out"; then
    echo "FAIL: back-to-back identical submissions did not hit the cache" >&2
    cat "$tmp/pass1.out" >&2
    exit 1
fi
cat "$tmp/pass1.out"

# 2. The daemon's live /metrics must pass the OpenMetrics linter.
if ! "$tmp/omlint" -url "http://$addr/metrics"; then
    echo "FAIL: /metrics exposition is not valid OpenMetrics" >&2
    exit 1
fi

# 3. SIGTERM must drain cleanly: exit status 0 and the drain log line.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "FAIL: daemon did not exit 0 on SIGTERM" >&2
    cat "$tmp/d1.err" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$tmp/d1.err"; then
    echo "FAIL: daemon exited without draining" >&2
    cat "$tmp/d1.err" >&2
    exit 1
fi
trap 'rm -rf "$tmp"' EXIT

# 4. Cold-start reload: a fresh daemon over the same cache dir serves the
# same job from disk — every request is a hit, none simulates.
start_daemon "$tmp/d2.err"
trap 'kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
if ! "$tmp/loadgen" -addr "http://$addr" -clients 1 -requests 2 -seeds 1 \
    -accesses 2000 -verify-bytes -min-hit-rate 1.0 >"$tmp/pass2.out"; then
    echo "FAIL: restarted daemon did not serve the stored results" >&2
    cat "$tmp/pass2.out" "$tmp/d2.err" >&2
    exit 1
fi
cat "$tmp/pass2.out"

# 5. Mixed concurrent load: 40 requests over a 2-job mix cost at most 2
# simulations, so the hit rate must clear 50% comfortably.
if ! "$tmp/loadgen" -addr "http://$addr" -clients 4 -requests 40 -seeds 2 \
    -accesses 2000 -verify-bytes -min-hit-rate 0.5 >"$tmp/pass3.out"; then
    echo "FAIL: mixed load fell below a 50% cache hit rate" >&2
    cat "$tmp/pass3.out" >&2
    exit 1
fi
cat "$tmp/pass3.out"

kill -TERM "$pid"
wait "$pid" || { echo "FAIL: daemon did not exit 0 on final SIGTERM" >&2; exit 1; }
trap 'rm -rf "$tmp"' EXIT

echo "serve-smoke OK: cache hit + byte-identity, clean drain, cold-start reload, >=50% mixed hit rate on $addr"
