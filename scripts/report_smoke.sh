#!/bin/sh
# Run-report smoke test: the determinism and regression-detection contract of
# the bundle pipeline, end to end through the built commands. Two identical
# runs must produce byte-identical bundles, cmd/runreport must accept the
# pair as clean (exit 0), and a tampered counter must make it exit non-zero.
# `make report-smoke` and CI run this; the same contract is covered
# in-process by internal/report's and cmd/runreport's tests.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/baryonsim" ./cmd/baryonsim
go build -o "$tmp/runreport" ./cmd/runreport

run_bundle() {
    "$tmp/baryonsim" -workload 505.mcf_r -design Baryon \
        -accesses 5000 -warmup 1000 -bundle-out "$1" >/dev/null
}

run_bundle "$tmp/a.bundle.json"
run_bundle "$tmp/b.bundle.json"

if ! cmp -s "$tmp/a.bundle.json" "$tmp/b.bundle.json"; then
    echo "FAIL: identical runs produced different bundle bytes" >&2
    diff "$tmp/a.bundle.json" "$tmp/b.bundle.json" >&2 || true
    exit 1
fi

if ! "$tmp/runreport" "$tmp/a.bundle.json" "$tmp/b.bundle.json" >"$tmp/clean.out"; then
    echo "FAIL: runreport flagged two identical runs" >&2
    cat "$tmp/clean.out" >&2
    exit 1
fi

# Inject a regression: rewrite the headline cycle count and expect a
# non-zero exit naming the metric.
sed 's/"cycles": [0-9]*/"cycles": 1/' "$tmp/b.bundle.json" >"$tmp/tampered.bundle.json"
status=0
"$tmp/runreport" "$tmp/a.bundle.json" "$tmp/tampered.bundle.json" \
    >"$tmp/diff.out" || status=$?
if [ "$status" -eq 0 ]; then
    echo "FAIL: runreport exited 0 on a tampered bundle" >&2
    cat "$tmp/diff.out" >&2
    exit 1
fi
if ! grep -q "cycles" "$tmp/diff.out"; then
    echo "FAIL: runreport did not attribute the regression to cycles" >&2
    cat "$tmp/diff.out" >&2
    exit 1
fi

echo "report-smoke OK: bundles byte-identical, self-diff clean, tamper caught (exit $status)"
