#!/bin/sh
# Cancellation smoke test: SIGINT a running sweep and assert the graceful
# shutdown contract — a valid partial CSV with cancelled rows, a summary on
# stderr, and a non-zero exit. `make cancel-smoke` and CI run this; the same
# contract is covered in-process by cmd/sweep's tests, so this script is the
# end-to-end check that the signal path itself works.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/sweep" ./cmd/sweep

# A grid long enough that SIGINT lands mid-run on any machine.
"$tmp/sweep" -workloads 505.mcf_r -designs Simple,UnisonCache,DICE,Baryon \
    -accesses 500000 -seeds 1,2,3,4 \
    >"$tmp/out.csv" 2>"$tmp/err.log" &
pid=$!

sleep 3
kill -INT "$pid"

# The sweep must exit on its own (non-zero) after the signal.
status=0
wait "$pid" || status=$?
if [ "$status" -eq 0 ]; then
    echo "FAIL: sweep exited 0 after SIGINT" >&2
    exit 1
fi

# The partial CSV must be valid (header + consistent field count) and carry
# cancelled rows.
header=$(head -n1 "$tmp/out.csv")
case "$header" in
workload,design,mode,seed,status,*) ;;
*)
    echo "FAIL: missing/NAK CSV header: $header" >&2
    exit 1
    ;;
esac
fields=$(head -n1 "$tmp/out.csv" | awk -F, '{print NF}')
bad=$(awk -F, -v n="$fields" 'NF != n' "$tmp/out.csv" | wc -l)
if [ "$bad" -ne 0 ]; then
    echo "FAIL: $bad CSV rows with ragged field counts" >&2
    cat "$tmp/out.csv" >&2
    exit 1
fi
if ! awk -F, 'NR > 1 && $5 == "cancelled" { found = 1 } END { exit !found }' "$tmp/out.csv"; then
    echo "FAIL: no cancelled rows in partial CSV" >&2
    cat "$tmp/out.csv" >&2
    exit 1
fi
if ! grep -q "cancelled" "$tmp/err.log"; then
    echo "FAIL: stderr missing cancellation summary" >&2
    cat "$tmp/err.log" >&2
    exit 1
fi

echo "cancel-smoke OK: exit $status, $(wc -l <"$tmp/out.csv") CSV lines, summary: $(tail -n1 "$tmp/err.log")"
