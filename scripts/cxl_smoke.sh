#!/bin/sh
# Three-tier smoke test: the two shipped DRAM+NVM+CXL design files must run
# end to end through `cmd/baryonsim -design-file`, produce a per-tier traffic
# breakdown with real expander traffic, and the run must be deterministic
# (two invocations byte-identical). `make cxl-smoke` and CI run this; the
# in-process coverage lives in internal/experiment's tier golden tests, so
# this script is the end-to-end check of the command path itself.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/baryonsim" ./cmd/baryonsim

for spec in internal/experiment/testdata/design_cxl_baryon.json \
    internal/experiment/testdata/design_cxl_unison.json; do
    name=$(basename "$spec" .json)
    "$tmp/baryonsim" -design-file "$spec" -accesses 1000 -json \
        >"$tmp/$name.json"
    for key in '"tiers"' '"tierBytes"' 'CXL'; do
        if ! grep -q "$key" "$tmp/$name.json"; then
            echo "FAIL: $spec output missing $key" >&2
            cat "$tmp/$name.json" >&2
            exit 1
        fi
    done
    # Determinism: a second run must be byte-identical.
    "$tmp/baryonsim" -design-file "$spec" -accesses 1000 -json \
        >"$tmp/$name.rerun.json"
    if ! cmp -s "$tmp/$name.json" "$tmp/$name.rerun.json"; then
        echo "FAIL: $spec runs are not deterministic" >&2
        exit 1
    fi
done

echo "cxl-smoke OK: $(ls "$tmp"/*.json | grep -cv rerun) design files ran with tier breakdowns"
